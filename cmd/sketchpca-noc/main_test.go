package main

import (
	"testing"

	"streampca/internal/core"
)

func TestParseRankMode(t *testing.T) {
	tests := []struct {
		in      string
		want    core.RankMode
		wantErr bool
	}{
		{in: "fixed", want: core.RankFixed},
		{in: "FIXED", want: core.RankFixed},
		{in: "3sigma", want: core.RankThreeSigma},
		{in: "energy", want: core.RankEnergy},
		{in: "bogus", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseRankMode(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("%q: want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tt.in, err)
		}
		if got != tt.want {
			t.Fatalf("%q = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cases := [][]string{
		{"-rank-mode", "bogus"},
		{"-flows", "0"},
		{"-alpha", "2"},
		{"-rank", "999"},
		{"-listen", "999.999.999.999:1"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): want error", i, args)
		}
	}
}
