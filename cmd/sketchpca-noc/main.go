// Command sketchpca-noc runs the Network Operation Center daemon: it
// listens for local monitors, assembles network-wide measurement vectors
// from their per-interval volume reports, and runs the lazy sketch-PCA
// detection protocol, printing one CSV line per decision and raising alarms.
//
// Usage:
//
//	sketchpca-noc -listen 127.0.0.1:7100 -flows 81 -window 4032 \
//	    -sketch 200 -alpha 0.01 -rank 6 -seed 42
//
// Monitors must be started with the same -window, -sketch, -sketcher and
// (randproj only) -seed. With -sketcher fd, -sketch carries the Frequent
// Directions basis budget ℓ instead of the projection length l.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streampca/internal/core"
	"streampca/internal/noc"
	"streampca/internal/obs"
	sketchpkg "streampca/internal/sketch"
	"streampca/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sketchpca-noc:", err)
		os.Exit(1)
	}
}

// parseRankMode maps the -rank-mode flag to a core.RankMode.
func parseRankMode(s string) (core.RankMode, error) {
	switch strings.ToLower(s) {
	case "fixed":
		return core.RankFixed, nil
	case "3sigma":
		return core.RankThreeSigma, nil
	case "energy":
		return core.RankEnergy, nil
	default:
		return 0, fmt.Errorf("unknown rank mode %q (want fixed, 3sigma or energy)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sketchpca-noc", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7100", "listen address")
		flows    = fs.Int("flows", 81, "network-wide number of aggregated flows (m)")
		window   = fs.Int("window", 4032, "sliding-window length in intervals (n)")
		sketch   = fs.Int("sketch", 200, "sketch length (l for -sketcher randproj, basis budget ℓ for fd)")
		family   = fs.String("sketcher", "randproj", "sketcher family: randproj or fd")
		builder  = fs.String("modelbuilder", "jacobi", "model eigensolver: jacobi or rsvd (randproj only)")
		rsvdOver = fs.Int("rsvd-oversample", 10, "randomized SVD oversampling columns (with -modelbuilder rsvd)")
		rsvdPow  = fs.Int("rsvd-power", 1, "randomized SVD power iterations (with -modelbuilder rsvd)")
		rsvdSeed = fs.Uint64("rsvd-seed", 1, "randomized SVD test-matrix seed (with -modelbuilder rsvd)")
		alpha    = fs.Float64("alpha", 0.01, "Q-statistic false-alarm rate")
		rankMode = fs.String("rank-mode", "fixed", "rank selection: fixed, 3sigma or energy")
		rank     = fs.Int("rank", 6, "normal-subspace size for -rank-mode fixed")
		energy   = fs.Float64("energy", 0.9, "retained energy for -rank-mode energy")
		seed     = fs.Uint64("seed", 42, "shared randomness seed")
		quiet    = fs.Bool("quiet", false, "print only alarms, not every decision")
		fetchTO  = fs.Duration("fetch-timeout", 5*time.Second, "timeout for one sketch-pull round")
		retries  = fs.Int("fetch-retries", 2, "extra sketch-pull rounds re-requesting missing responses (-1 disables)")
		backoff  = fs.Duration("fetch-backoff", 50*time.Millisecond, "initial retry backoff (doubles per round, jittered)")
		backoffM = fs.Duration("fetch-backoff-max", time.Second, "retry backoff cap")
		brkThr   = fs.Int("breaker-threshold", 3, "consecutive fetch failures that open a monitor's circuit breaker (-1 disables)")
		brkCool  = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker skips its monitor")
		degraded = fs.Bool("degraded", false, "keep deciding on cached volumes/sketches when monitors are missing")
		maxStale = fs.Int64("max-staleness", 0, "degraded mode: max cache age in intervals (0 = window/4)")
		selfchk  = fs.Int("selfcheck", 0, "validate every Nth interval against an exact batch-PCA oracle (0 = off)")
		metrics  = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (off when empty)")
		statsEvr = fs.Duration("stats-every", 0, "log a one-line stats summary at this period (off when 0)")
		workers  = fs.Int("workers", 0, "worker goroutines for the retrain kernels (0 = all CPUs)")
		traceOn  = fs.Bool("trace", false, "record interval-lineage spans, served on /debug/trace (needs -metrics-addr to be visible)")
		traceSm  = fs.Int("trace-sample", 1, "with -trace, keep every trace whose id %% N == 0 (1 = all)")
		flight   = fs.String("flight-recorder", "", "append one JSONL audit record per alarm/degraded decision to this file (off when empty)")
		flightK  = fs.Int("flight-topk", 0, "residual flows attributed per alarm flight record (0 = default 5, -1 disables)")
		identK   = fs.Int("identify-topk", 0, "max anomography culprits identified per alarm (0 = default, -1 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mode, err := parseRankMode(*rankMode)
	if err != nil {
		return err
	}
	fam, err := sketchpkg.ParseFamily(*family)
	if err != nil {
		return fmt.Errorf("-sketcher: %w", err)
	}
	bld, err := core.ParseModelBuilder(*builder)
	if err != nil {
		return fmt.Errorf("-modelbuilder: %w", err)
	}

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(trace.Config{Component: "noc", Sample: *traceSm})
	}
	var recorder *trace.FlightRecorder
	if *flight != "" {
		recorder, err = trace.OpenFlightRecorder(*flight)
		if err != nil {
			return fmt.Errorf("-flight-recorder: %w", err)
		}
		defer func() { _ = recorder.Close() }()
	}

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, "noc")
	svc, err := noc.New(noc.Config{
		Log:            logger,
		MetricsAddr:    *metrics,
		Trace:          tracer,
		FlightRecorder: recorder,
		FlightTopK:     *flightK,
		IdentifyMaxK:   *identK,
		Detector: core.DetectorConfig{
			Family:         fam,
			Builder:        bld,
			NumFlows:       *flows,
			WindowLen:      *window,
			SketchLen:      *sketch,
			Alpha:          *alpha,
			Mode:           mode,
			FixedRank:      *rank,
			EnergyFrac:     *energy,
			RSVDOversample: *rsvdOver,
			RSVDPowerIters: *rsvdPow,
			RSVDSeed:       *rsvdSeed,
		},
		Seed:             *seed,
		Workers:          *workers,
		SelfCheckEvery:   *selfchk,
		FetchTimeout:     *fetchTO,
		FetchRetries:     *retries,
		FetchBackoff:     *backoff,
		FetchBackoffMax:  *backoffM,
		BreakerThreshold: *brkThr,
		BreakerCooldown:  *brkCool,
		Degraded: noc.DegradedPolicy{
			Enabled:      *degraded,
			MaxStaleness: *maxStale,
		},
		OnDecision: func(d noc.Decision) {
			flag := ""
			if d.Degraded {
				flag = ",degraded=true"
			}
			if d.Result.Anomalous {
				culprits := ""
				if d.Identified != nil && len(d.Identified.Flows) > 0 {
					ids := make([]string, len(d.Identified.Flows))
					for i, f := range d.Identified.Flows {
						ids[i] = strconv.Itoa(f.Flow)
					}
					culprits = ",culprits=" + strings.Join(ids, "+")
				}
				fmt.Printf("ALARM,interval=%d,distance=%.4g,threshold=%.4g%s%s\n",
					d.Interval, d.Result.Distance, d.Result.Threshold, culprits, flag)
				return
			}
			if !*quiet {
				fmt.Printf("ok,interval=%d,distance=%.4g,threshold=%.4g,refreshed=%t%s\n",
					d.Interval, d.Result.Distance, d.Result.Threshold, d.Result.Refreshed, flag)
			}
		},
	})
	if err != nil {
		return err
	}
	if err := svc.Serve(*listen); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchpca-noc: listening on %s (m=%d n=%d sketch=%d family=%s builder=%s)\n",
		svc.Addr(), *flows, *window, *sketch, fam, bld)
	if addr := svc.DiagAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "sketchpca-noc: diagnostics on http://%s/metrics\n", addr)
	}

	stopStats := make(chan struct{})
	if *statsEvr > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvr)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					svc.LogSummary()
				case <-stopStats:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sketchpca-noc: shutting down")
	close(stopStats)
	svc.Shutdown()
	obs, fetches, alarms := svc.DetectorStats()
	fmt.Fprintf(os.Stderr, "sketchpca-noc: %d observations, %d sketch fetches, %d alarms\n",
		obs, fetches, alarms)
	return nil
}
