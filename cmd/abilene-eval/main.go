// Command abilene-eval regenerates the paper's evaluation figures (§VI) on
// the synthetic Abilene substrate. Each figure prints the same rows/series
// the paper reports; EXPERIMENTS.md records the comparison.
//
// Usage:
//
//	abilene-eval -figure 5          # coordinated-anomaly time series
//	abilene-eval -figure 7          # Type I/II surface, 5-minute intervals
//	abilene-eval -figure 8          # Type I/II surface, 1-minute intervals
//	abilene-eval -figure 9          # errors vs sketch length at r = 6
//	abilene-eval -figure 10         # NOC computation overhead
//	abilene-eval -bounds            # empirical Lemma 5/6, Theorem 2 checks
//	abilene-eval -shootout          # three-way sketcher family comparison
//	abilene-eval -identify          # per-flow identification scorecard
//	abilene-eval -figure 7 -full    # paper-scale run (hours)
//
// The default runs use a documented scaled-down grid so the whole suite
// completes in minutes; -full switches to the paper's dimensions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"streampca/internal/core"
	"streampca/internal/eval"
	"streampca/internal/randproj"
	"streampca/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abilene-eval:", err)
		os.Exit(1)
	}
}

type params struct {
	figure       string
	bounds       bool
	oracle       bool
	comm         bool
	shootout     bool
	identify     bool
	idMinP3      float64
	idMinRecall  float64
	idFDMonitors int
	full         bool
	seed         int64
	refitEvery   int
	epsilon      float64
	alpha        float64
	shootSketch  int
	fdEll        int
	monitors     int
	trace        string
	traceWindow  int
	dist         randproj.Distribution
}

// parseDist maps the -dist flag to a projection family.
func parseDist(s string) (randproj.Distribution, error) {
	switch strings.ToLower(s) {
	case "", "gaussian":
		return randproj.Gaussian, nil
	case "tugofwar", "tug-of-war":
		return randproj.TugOfWar, nil
	case "sparse":
		return randproj.Sparse, nil
	case "verysparse", "very-sparse":
		return randproj.VerySparse, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (want gaussian, tugofwar, sparse or verysparse)", s)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("abilene-eval", flag.ContinueOnError)
	var p params
	fs.StringVar(&p.figure, "figure", "", "figure to regenerate: 5, 7, 8, 9, 10 or all")
	fs.BoolVar(&p.bounds, "bounds", false, "run the empirical error-bound checks")
	fs.BoolVar(&p.oracle, "oracle", false, "differentially validate the streaming pipeline against exact oracles")
	fs.BoolVar(&p.full, "full", false, "paper-scale dimensions (slow)")
	fs.Int64Var(&p.seed, "seed", 2008, "workload seed")
	fs.IntVar(&p.refitEvery, "refit", 8, "retraining cadence in intervals (1 = paper cost model)")
	fs.Float64Var(&p.epsilon, "epsilon", 0.01, "variance-histogram ε (paper: 0.01)")
	fs.Float64Var(&p.alpha, "alpha", 0.01, "Q-statistic false-alarm rate (paper: 0.01)")
	fs.BoolVar(&p.comm, "comm", false, "report the lazy protocol's communication cost")
	fs.BoolVar(&p.shootout, "shootout", false, "run the three-way sketcher shoot-out (randproj+jacobi, randproj+rsvd, fd) with per-family oracle checks")
	fs.BoolVar(&p.identify, "identify", false, "score per-flow identification on the labeled attack suite (online pursuit per family + offline PCP comparator)")
	fs.Float64Var(&p.idMinP3, "identify-min-p3", 0, "gate: fail unless every online family's precision@3 meets this floor (0 = no gate)")
	fs.Float64Var(&p.idMinRecall, "identify-min-recall", 0, "gate: fail unless every online family's recall meets this floor (0 = no gate)")
	fs.IntVar(&p.idFDMonitors, "identify-fd-monitors", 1, "monitor count for the fd identification row (narrow fd shards cannot hold rank r plus residual spectrum)")
	fs.IntVar(&p.shootSketch, "shootout-sketch", 100, "random-projection l for the shoot-out's randproj variants")
	fs.IntVar(&p.fdEll, "fd-ell", 0, "per-monitor Frequent Directions basis budget ℓ for the shoot-out (0 = 2·⌈√w⌉ per monitor)")
	fs.IntVar(&p.monitors, "monitors", 9, "monitors partitioning the flows in the shoot-out")
	fs.StringVar(&p.trace, "trace", "", "replay a trafficgen-format CSV instead of the synthetic workload (figures 7–9)")
	fs.IntVar(&p.traceWindow, "trace-window", 0, "sliding-window length when -trace is set")
	distName := fs.String("dist", "gaussian", "projection family: gaussian, tugofwar, sparse or verysparse")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dist, err := parseDist(*distName)
	if err != nil {
		return err
	}
	p.dist = dist
	if p.figure == "" && !p.bounds && !p.oracle && !p.comm && !p.shootout && !p.identify {
		return fmt.Errorf("nothing to do: pass -figure N, -bounds, -oracle, -comm, -shootout and/or -identify")
	}
	if p.trace != "" && p.traceWindow < 2 {
		return fmt.Errorf("-trace requires -trace-window >= 2")
	}

	figures := []string{p.figure}
	if p.figure == "all" {
		figures = []string{"5", "7", "8", "9", "10"}
	}
	for _, f := range figures {
		switch f {
		case "":
		case "5":
			if err := figure5(p, out); err != nil {
				return fmt.Errorf("figure 5: %w", err)
			}
		case "7":
			if err := errorSurface(p, out, false); err != nil {
				return fmt.Errorf("figure 7: %w", err)
			}
		case "8":
			if err := errorSurface(p, out, true); err != nil {
				return fmt.Errorf("figure 8: %w", err)
			}
		case "9":
			if err := figure9(p, out); err != nil {
				return fmt.Errorf("figure 9: %w", err)
			}
		case "10":
			if err := figure10(p, out); err != nil {
				return fmt.Errorf("figure 10: %w", err)
			}
		default:
			return fmt.Errorf("unknown figure %q", f)
		}
	}
	if p.bounds {
		if err := boundsReport(p, out); err != nil {
			return fmt.Errorf("bounds: %w", err)
		}
	}
	if p.oracle {
		if err := oracleReport(p, out); err != nil {
			return fmt.Errorf("oracle: %w", err)
		}
	}
	if p.comm {
		if err := commReport(p, out); err != nil {
			return fmt.Errorf("comm: %w", err)
		}
	}
	if p.shootout {
		if err := shootoutReport(p, out); err != nil {
			return fmt.Errorf("shootout: %w", err)
		}
	}
	if p.identify {
		if err := identifyReport(p, out); err != nil {
			return fmt.Errorf("identify: %w", err)
		}
	}
	return nil
}

// loadWorkload returns the evaluation trace and window: either a replayed
// CSV (-trace) or the synthetic default.
func loadWorkload(p params, perDay, window, total int) (*traffic.Trace, int, error) {
	if p.trace == "" {
		tr, err := eval.BuildEvalTrace(p.seed, total, perDay, window)
		return tr, window, err
	}
	f, err := os.Open(p.trace)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	tr, err := traffic.ReadCSV(f)
	if err != nil {
		return nil, 0, fmt.Errorf("parse %s: %w", p.trace, err)
	}
	return tr, p.traceWindow, nil
}

// figure5 prints the coordinated-anomaly time series of four OD flows.
func figure5(p params, out io.Writer) error {
	n := 4 * traffic.IntervalsPerDay5Min
	if p.full {
		n = 30 * traffic.IntervalsPerDay5Min
	}
	tr, start, end, err := eval.BuildFig5Trace(p.seed, n)
	if err != nil {
		return err
	}
	lo, hi := start-50, end+50
	if lo < 0 {
		lo = 0
	}
	if hi > tr.NumIntervals() {
		hi = tr.NumIntervals()
	}
	series, err := eval.ExtractSeries(tr, eval.Fig5Flows, lo, hi)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Figure 5 — coordinated low-profile anomaly, intervals [%d,%d) anomalous\n", start, end)
	fmt.Fprintf(out, "interval,%s\n", strings.Join(eval.Fig5Flows, ","))
	for i := lo; i < hi; i++ {
		row := make([]string, 0, 1+len(series))
		row = append(row, strconv.Itoa(i))
		for _, s := range series {
			row = append(row, strconv.FormatFloat(s.Values[i-lo], 'f', 0, 64))
		}
		fmt.Fprintln(out, strings.Join(row, ","))
	}
	return nil
}

// surfaceDims returns workload dimensions for the error surfaces.
func surfaceDims(p params, oneMinute bool) (perDay, window, total int, sketchLens []int) {
	if oneMinute {
		perDay = traffic.IntervalsPerDay1Min
	} else {
		perDay = traffic.IntervalsPerDay5Min
	}
	if p.full {
		window = 14 * perDay // two weeks, as in the paper
		total = 30 * perDay  // one month
		for l := 10; l <= 400; l += 10 {
			sketchLens = append(sketchLens, l)
		}
		return perDay, window, total, sketchLens
	}
	// Scaled: two "days" of window, six of trace, sparse l grid.
	window = 2 * perDay / 4
	total = 6 * perDay / 4
	sketchLens = []int{10, 25, 50, 100, 200, 400}
	return perDay, window, total, sketchLens
}

// errorSurface regenerates Fig. 7 (5-minute) or Fig. 8 (1-minute).
func errorSurface(p params, out io.Writer, oneMinute bool) error {
	perDay, window, total, sketchLens := surfaceDims(p, oneMinute)
	figure := "7"
	label := "5-minute"
	if oneMinute {
		figure, label = "8", "1-minute"
	}
	tr, window, err := loadWorkload(p, perDay, window, total)
	if err != nil {
		return err
	}
	total = tr.NumIntervals()
	truth, err := eval.GroundTruth(tr.Volumes, eval.TruthConfig{
		WindowLen: window, Rank: 6, Alpha: p.alpha, RefitEvery: p.refitEvery,
	})
	if err != nil {
		return err
	}
	ranks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	points, err := eval.SweepErrors(tr.Volumes, truth, eval.SweepConfig{
		WindowLen: window, Epsilon: p.epsilon, Alpha: p.alpha, Seed: uint64(p.seed),
		Ranks: ranks, SketchLens: sketchLens, RefitEvery: p.refitEvery,
		Dist: p.dist,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Figure %s — Type I and Type II errors vs (r, l), %s intervals\n", figure, label)
	fmt.Fprintf(out, "# window n=%d, trace %d intervals, epsilon=%v, alpha=%v, truth rank r*=6, %d true anomalies, %d true normals\n",
		window, total, p.epsilon, p.alpha, truth.NumAnomalous, truth.NumNormal)
	fmt.Fprintln(out, "r,l,typeI,typeII")
	for _, pt := range points {
		fmt.Fprintf(out, "%d,%d,%.4f,%.4f\n", pt.Rank, pt.SketchLen, pt.TypeI, pt.TypeII)
	}
	return nil
}

// figure9 fixes r = 6 and sweeps l for both interval resolutions.
func figure9(p params, out io.Writer) error {
	fmt.Fprintln(out, "# Figure 9 — Type I and Type II errors vs sketch length l at r = 6")
	fmt.Fprintln(out, "resolution,l,typeI,typeII")
	for _, oneMinute := range []bool{false, true} {
		perDay, window, total, _ := surfaceDims(p, oneMinute)
		sketchLens := []int{10, 20, 50, 100, 200, 400, 700, 1000}
		if p.full {
			sketchLens = nil
			for l := 10; l <= 1000; l += 10 {
				sketchLens = append(sketchLens, l)
			}
		}
		tr, window, err := loadWorkload(p, perDay, window, total)
		if err != nil {
			return err
		}
		truth, err := eval.GroundTruth(tr.Volumes, eval.TruthConfig{
			WindowLen: window, Rank: 6, Alpha: p.alpha, RefitEvery: p.refitEvery,
		})
		if err != nil {
			return err
		}
		points, err := eval.SweepErrors(tr.Volumes, truth, eval.SweepConfig{
			WindowLen: window, Epsilon: p.epsilon, Alpha: p.alpha, Seed: uint64(p.seed),
			Ranks: []int{6}, SketchLens: sketchLens, RefitEvery: p.refitEvery,
			Dist: p.dist,
		})
		if err != nil {
			return err
		}
		label := "5min"
		if oneMinute {
			label = "1min"
		}
		for _, pt := range points {
			fmt.Fprintf(out, "%s,%d,%.4f,%.4f\n", label, pt.SketchLen, pt.TypeI, pt.TypeII)
		}
	}
	return nil
}

// figure10 prints the NOC computation-overhead comparison in the paper's
// m²·n vs m²·l operation counts plus measured rebuild times.
func figure10(p params, out io.Writer) error {
	m := 81
	sketchLens := []int{10, 50, 100, 200, 400, 700, 1000}
	if p.full {
		sketchLens = nil
		for l := 10; l <= 1000; l += 10 {
			sketchLens = append(sketchLens, l)
		}
	}
	fmt.Fprintln(out, "# Figure 10 — NOC computation overhead (log scale in the paper)")
	fmt.Fprintln(out, "l,lakhina_ops_1min,lakhina_ops_5min,sketch_ops,lakhina_ns_5min,sketch_ns")
	n5 := 14 * traffic.IntervalsPerDay5Min
	n1 := 14 * traffic.IntervalsPerDay1Min
	pts5, err := eval.Overhead(m, n5, sketchLens, true)
	if err != nil {
		return err
	}
	pts1, err := eval.Overhead(m, n1, sketchLens, false)
	if err != nil {
		return err
	}
	for i, pt := range pts5 {
		fmt.Fprintf(out, "%d,%.0f,%.0f,%.0f,%d,%d\n",
			pt.SketchLen, pts1[i].LakhinaOps, pt.LakhinaOps, pt.SketchOps, pt.LakhinaNs, pt.SketchNs)
	}
	return nil
}

// commReport runs the in-process cluster over the scaled workload and
// prints the communication-cost breakdown of the lazy protocol.
func commReport(p params, out io.Writer) error {
	perDay, window, total, _ := surfaceDims(p, false)
	tr, window, err := loadWorkload(p, perDay, window, total)
	if err != nil {
		return err
	}
	const monitors = 9
	const sketchLen = 200
	cl, err := core.NewCluster(core.ClusterConfig{
		NumFlows:    tr.NumFlows(),
		NumMonitors: monitors,
		WindowLen:   window,
		Epsilon:     p.epsilon,
		Alpha:       p.alpha,
		Sketch:      randproj.Config{Seed: uint64(p.seed), SketchLen: sketchLen},
		Mode:        core.RankFixed,
		FixedRank:   6,
	})
	if err != nil {
		return err
	}
	for i := 0; i < tr.NumIntervals(); i++ {
		if _, err := cl.Step(int64(i+1), tr.Volumes.RowView(i)); err != nil {
			return err
		}
	}
	obs, fetches, alarms := cl.Detector().Stats()
	model := eval.CommModel{NumFlows: tr.NumFlows(), NumMonitors: monitors, SketchLen: sketchLen}
	cost, err := model.Bytes(obs, fetches)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "# Communication cost — lazy sketch pulls vs eager per-interval pushes")
	fmt.Fprintf(out, "observations,%d\nfetches,%d\nalarms,%d\n", obs, fetches, alarms)
	fmt.Fprintf(out, "volume_bytes,%d\nlazy_sketch_bytes,%d\neager_sketch_bytes,%d\nsavings_factor,%.1f\n",
		cost.VolumeBytes, cost.LazyBytes, cost.EagerBytes,
		float64(cost.EagerBytes)/float64(maxInt64(cost.LazyBytes, 1)))
	return nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// oracleReport prints one bound-violation row per projection family: the
// full streaming pipeline is driven over the evaluation workload and
// differentially validated (exactness, Lemma 1, Lemmas 5–6, Theorem 2,
// alarm agreement) on sampled intervals. Any nonzero violation count is a
// numerical-correctness bug, not a statistical miss.
func oracleReport(p params, out io.Writer) error {
	perDay, window, total, _ := surfaceDims(p, false)
	tr, err := eval.BuildEvalTrace(p.seed, total, perDay, window)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "# Oracle — differential validation of the streaming pipeline vs exact references")
	fmt.Fprintln(out, "dist,l,checks,violations,max_rel_err,worst")
	for _, l := range []int{16, 64} {
		rows, err := eval.OracleSweep(tr.Volumes, eval.OracleConfig{
			WindowLen: window, SketchLen: l, Rank: 6,
			Epsilon: p.epsilon, Alpha: p.alpha, Seed: uint64(p.seed),
		})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(out, "%v,%d,%d,%d,%.3e,%s\n",
				r.Dist, r.SketchLen, r.Checks, r.Violations, r.MaxRelErr, r.Worst)
		}
	}
	return nil
}

// shootoutReport runs the three sketcher/builder families over the same
// trace and ground truth and prints one scorecard row each: detection
// accuracy, the size of one sketch pull, the measured retrain bill, and the
// per-family oracle outcome (exact-batch model checks for randproj, the
// deterministic ‖AᵀA−BᵀB‖₂ ≤ Δ ≤ ‖A‖²_F/ℓ replay for fd).
func shootoutReport(p params, out io.Writer) error {
	perDay, window, total, _ := surfaceDims(p, false)
	tr, window, err := loadWorkload(p, perDay, window, total)
	if err != nil {
		return err
	}
	truth, err := eval.GroundTruth(tr.Volumes, eval.TruthConfig{
		WindowLen: window, Rank: 6, Alpha: p.alpha, RefitEvery: p.refitEvery,
	})
	if err != nil {
		return err
	}
	rows, err := eval.Shootout(tr.Volumes, truth, eval.ShootoutConfig{
		WindowLen: window, Epsilon: p.epsilon, Alpha: p.alpha, Seed: uint64(p.seed),
		SketchLen: p.shootSketch, FDEll: p.fdEll, Rank: 6,
		NumMonitors: p.monitors, Oracle: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "# Shoot-out — sketcher families on one trace, same ground truth")
	fmt.Fprintf(out, "# window n=%d, trace %d intervals, m=%d flows, %d monitors, %d true anomalies, %d true normals\n",
		window, tr.NumIntervals(), tr.NumFlows(), p.monitors, truth.NumAnomalous, truth.NumNormal)
	fmt.Fprintln(out, "variant,sketch_param,typeI,typeII,false_alarms,misses,threshold_unavail,retrains,retrain_ms,pull_bytes,oracle_checks,oracle_violations,oracle_max_rel_err")
	for _, r := range rows {
		fmt.Fprintf(out, "%s,%d,%.4f,%.4f,%d,%d,%d,%d,%.1f,%d,%d,%d,%.3e\n",
			r.Variant, r.SketchParam, r.TypeI, r.TypeII, r.FalseAlarms, r.Misses,
			r.ThresholdUnavail, r.Retrains, float64(r.RetrainNanos)/1e6,
			r.SketchBytes, r.OracleChecks, r.OracleViolations, r.OracleMaxRelErr)
		if r.OracleViolations > 0 {
			fmt.Fprintf(out, "# %s worst violation: %s\n", r.Variant, r.OracleWorst)
		}
	}
	return nil
}

// identifyReport scores per-flow anomaly identification on the labeled
// attack suite at Abilene scale: the online greedy pursuit once per
// CI-gated sketcher family, plus the offline relaxed-PCP comparator. The
// -identify-min-p3 / -identify-min-recall gates turn the scorecard into a
// CI check: any online family below a floor fails the run.
func identifyReport(p params, out io.Writer) error {
	perDay, window, total, _ := surfaceDims(p, false)
	tr, err := eval.BuildIdentifyTrace(p.seed, total, perDay, window, nil)
	if err != nil {
		return err
	}
	rows, err := eval.IdentifySuite(tr, eval.IdentifyConfig{
		WindowLen: window, Epsilon: p.epsilon, Alpha: p.alpha, Seed: uint64(p.seed),
		SketchLen: p.shootSketch, FDEll: p.fdEll, Rank: 6,
		NumMonitors: p.monitors, FDMonitors: p.idFDMonitors,
		PCP: true, PCPFrom: window,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "# Identification — per-flow anomography on the labeled attack suite")
	fmt.Fprintf(out, "# window n=%d, trace %d intervals, m=%d flows, %d injected scenarios\n",
		window, tr.NumIntervals(), tr.NumFlows(), len(tr.Injections))
	fmt.Fprintln(out, "variant,sketch_param,scored,missed,false_alarms,precision@1,precision@3,recall,mean_explained,mean_culprits")
	var gateErrs []string
	for _, r := range rows {
		fmt.Fprintf(out, "%s,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.1f\n",
			r.Variant, r.SketchParam, r.Scored, r.Missed, r.FalseAlarms,
			r.Precision1, r.Precision3, r.Recall, r.MeanExplained, r.MeanCulprits)
		for _, ks := range r.Kinds {
			fmt.Fprintf(out, "#   %s/%s: scored=%d missed=%d precision@3=%.3f recall=%.3f\n",
				r.Variant, ks.Kind, ks.Scored, ks.Missed, ks.Precision3, ks.Recall)
		}
		if r.Variant == "pcp-offline" {
			continue // the comparator is context, not a gated family
		}
		if p.idMinP3 > 0 && r.Precision3 < p.idMinP3 {
			gateErrs = append(gateErrs, fmt.Sprintf("%s precision@3 %.4f < %.4f", r.Variant, r.Precision3, p.idMinP3))
		}
		if p.idMinRecall > 0 && r.Recall < p.idMinRecall {
			gateErrs = append(gateErrs, fmt.Sprintf("%s recall %.4f < %.4f", r.Variant, r.Recall, p.idMinRecall))
		}
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("identification gate failed: %s", strings.Join(gateErrs, "; "))
	}
	return nil
}

// boundsReport prints the empirical Lemma 5/6 and Theorem 2 checks.
func boundsReport(p params, out io.Writer) error {
	perDay, window, total, _ := surfaceDims(p, false)
	tr, err := eval.BuildEvalTrace(p.seed, total, perDay, window)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "# Error bounds — empirical Lemma 5 (singular ratios), Lemma 6 (covariance), Theorem 2 (distance)")
	fmt.Fprintln(out, "l,min_sv_ratio,max_sv_ratio,cov_rel_err,mean_dist_rel_err,max_dist_rel_err,spectral_gap")
	for _, l := range []int{8, 32, 128, 512} {
		rep, err := eval.CheckBounds(tr.Volumes, window, l, 6, uint64(p.seed))
		if err != nil {
			return err
		}
		lo, hi := rep.SingularRatios[0], rep.SingularRatios[0]
		for _, r := range rep.SingularRatios {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		fmt.Fprintf(out, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.3e\n",
			l, lo, hi, rep.CovRelError, rep.MeanDistRelError, rep.MaxDistRelError, rep.SpectralGap)
	}
	return nil
}
