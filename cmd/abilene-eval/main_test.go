package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"streampca/internal/traffic"
)

func TestRunRequiresWork(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no -figure/-bounds must fail")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "12"}, &buf); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestFigure5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Figure 5") {
		t.Fatal("missing figure header")
	}
	if !strings.Contains(out, "ATLA→CHIC") {
		t.Fatal("missing flow names")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 50 {
		t.Fatalf("only %d lines", len(lines))
	}
	// Data rows have 5 comma-separated fields.
	fields := strings.Split(lines[3], ",")
	if len(fields) != 5 {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestFigure10Output(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Figure 10") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "l,lakhina_ops_1min") {
		t.Fatal("missing column header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+7 { // two headers + seven sketch lengths
		t.Fatalf("lines = %d", len(lines))
	}
}

// writeTraceCSV renders tr in the trafficgen CSV format and returns the
// file's path.
func writeTraceCSV(t *testing.T, tr *traffic.Trace) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("interval")
	for _, n := range tr.FlowNames {
		sb.WriteString("," + n)
	}
	sb.WriteString("\n")
	for i := 0; i < tr.NumIntervals(); i++ {
		sb.WriteString(strconv.Itoa(i))
		for j := 0; j < tr.NumFlows(); j++ {
			sb.WriteString("," + strconv.FormatFloat(tr.Volumes.At(i, j), 'f', 0, 64))
		}
		sb.WriteString("\n")
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceReplay(t *testing.T) {
	// Generate a small CSV with the traffic substrate and replay it
	// through the figure-9 pipeline.
	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectCoordinated([]int{1, 5, 9}, 40, 44, 1.5); err != nil {
		t.Fatal(err)
	}
	path := writeTraceCSV(t, tr)

	var buf bytes.Buffer
	if err := run([]string{"-figure", "9", "-trace", path, "-trace-window", "20"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "5min,10,") {
		t.Fatalf("missing sweep rows in output:\n%s", buf.String())
	}

	// -trace without a window is rejected.
	if err := run([]string{"-figure", "9", "-trace", path}, &buf); err == nil {
		t.Fatal("missing -trace-window must fail")
	}
	// Unreadable trace path.
	if err := run([]string{"-figure", "9", "-trace", "/nonexistent", "-trace-window", "20"}, &buf); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestShootoutReport(t *testing.T) {
	// Replay a small trace so the three-way shoot-out completes quickly; 3
	// monitors split the 81 flows evenly, which lets the FD variant default
	// its basis budget ℓ.
	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectCoordinated([]int{1, 5, 9}, 90, 94, 1.5); err != nil {
		t.Fatal(err)
	}
	path := writeTraceCSV(t, tr)

	var buf bytes.Buffer
	args := []string{"-shootout", "-trace", path, "-trace-window", "40",
		"-monitors", "3", "-shootout-sketch", "16"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Shoot-out") || !strings.Contains(out, "variant,sketch_param,") {
		t.Fatalf("missing headers in:\n%s", out)
	}
	for _, variant := range []string{"randproj+jacobi,16,", "randproj+rsvd,16,", "fd,"} {
		if !strings.Contains(out, "\n"+variant) {
			t.Fatalf("missing %q row in:\n%s", variant, out)
		}
	}

	// 4 monitors cannot split 81 flows evenly: the FD variant must refuse
	// to guess a shared ℓ.
	if err := run([]string{"-shootout", "-trace", path, "-trace-window", "40",
		"-monitors", "4"}, &buf); err == nil {
		t.Fatal("uneven FD split must fail")
	}
}

func TestCommReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-comm"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"observations,", "fetches,", "lazy_sketch_bytes,", "savings_factor,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSurfaceDims(t *testing.T) {
	p := params{}
	perDay, window, total, ls := surfaceDims(p, false)
	if perDay != 288 || window <= 0 || total <= window || len(ls) == 0 {
		t.Fatalf("scaled dims = %d %d %d %v", perDay, window, total, ls)
	}
	p.full = true
	perDay, window, total, ls = surfaceDims(p, true)
	if perDay != 1440 || window != 14*1440 || total != 30*1440 || len(ls) != 40 {
		t.Fatalf("full dims = %d %d %d (%d ls)", perDay, window, total, len(ls))
	}
}
