package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseInjection(t *testing.T) {
	tests := []struct {
		name    string
		spec    string
		wantIDs []int
		start   int
		end     int
		mag     float64
		wantErr bool
	}{
		{name: "single", spec: "3:10:20:1.5", wantIDs: []int{3}, start: 10, end: 20, mag: 1.5},
		{name: "multi", spec: "1,2,3:5:6:0.5", wantIDs: []int{1, 2, 3}, start: 5, end: 6, mag: 0.5},
		{name: "spaces", spec: "1, 2:5:6:0.5", wantIDs: []int{1, 2}, start: 5, end: 6, mag: 0.5},
		{name: "too few parts", spec: "1:2:3", wantErr: true},
		{name: "bad id", spec: "x:1:2:3", wantErr: true},
		{name: "bad start", spec: "1:x:2:3", wantErr: true},
		{name: "bad end", spec: "1:2:x:3", wantErr: true},
		{name: "bad magnitude", spec: "1:2:3:x", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ids, start, end, mag, err := parseInjection(tt.spec)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(tt.wantIDs) {
				t.Fatalf("ids = %v", ids)
			}
			for i := range ids {
				if ids[i] != tt.wantIDs[i] {
					t.Fatalf("ids = %v, want %v", ids, tt.wantIDs)
				}
			}
			if start != tt.start || end != tt.end || mag != tt.mag {
				t.Fatalf("got %d %d %v", start, end, mag)
			}
		})
	}
}

func TestRunGeneratesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-intervals", "20",
		"-seed", "3",
		"-spike", "2:5:8:2.0",
		"-coordinated", "1,4:10:12:0.5",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 21 { // header + 20 rows
		t.Fatalf("lines = %d", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "interval" || header[len(header)-1] != "label" || len(header) != 83 {
		t.Fatalf("header = %v…", header[:3])
	}
	// Labels mark exactly [5,8) ∪ [10,12).
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		label := fields[len(fields)-1]
		want := "0"
		if (i >= 5 && i < 8) || (i >= 10 && i < 12) {
			want = "1"
		}
		if label != want {
			t.Fatalf("interval %d label = %s, want %s", i, label, want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-intervals", "0"},
		{"-intervals", "20", "-spike", "nonsense"},
		{"-intervals", "20", "-spike", "1,2:0:5:1"}, // spike wants one flow
		{"-intervals", "20", "-coordinated", "bad"},
		{"-intervals", "20", "-flash", "1,2:0:5:1"}, // flash wants one router
		{"-intervals", "20", "-flash", "99:0:5:1"},  // bad router
		{"-intervals", "20", "-spike", "1:50:60:1"}, // out of range
	}
	for i, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Fatalf("case %d (%v): want error", i, args)
		}
	}
}

func TestFlashInjection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-intervals", "30", "-flash", "2:10:20:1.5"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fields := strings.Split(lines[15], ",")
	if fields[len(fields)-1] != "1" {
		t.Fatal("flash interval not labeled")
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a;b" {
		t.Fatalf("String = %q", m.String())
	}
}
