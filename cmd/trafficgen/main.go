// Command trafficgen generates a synthetic Abilene OD-flow trace as CSV:
// one row per interval, one column per OD flow, with optional injected
// anomalies recorded in a trailing "label" column.
//
// Usage:
//
//	trafficgen -intervals 8064 -seed 42 \
//	    -spike 3:5000:5010:4.0 \
//	    -coordinated 1,10,33:6000:6012:0.5 \
//	    -flash 5:7000:7060:2.0 > trace.csv
//
// Injection specs use interval indices of the generated trace:
//
//	-spike       flow:start:end:magnitude
//	-coordinated f1,f2,...:start:end:magnitude
//	-flash       destRouter:start:end:peakMagnitude
//
// -netflow switches the output to NetFlow v5 datagrams for the ingest path
// (sketchpca-monitor -ingest-listen): a file of concatenated datagrams
// ("-" for stdout), or a live UDP replay with "udp:host:port", optionally
// paced to -rate records per second:
//
//	trafficgen -intervals 288 -netflow udp:127.0.0.1:2055 -rate 50000
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"streampca/internal/ingest"
	"streampca/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ";") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trafficgen", flag.ContinueOnError)
	var (
		intervals  = fs.Int("intervals", 4*traffic.IntervalsPerDay5Min, "number of intervals to generate")
		perDay     = fs.Int("per-day", traffic.IntervalsPerDay5Min, "intervals per day (288 = 5-minute, 1440 = 1-minute)")
		seed       = fs.Int64("seed", 1, "generator seed")
		totalVol   = fs.Float64("volume", 1e8, "network-wide mean bytes per interval")
		spikes     multiFlag
		coordinate multiFlag
		flashes    multiFlag

		netflow  = fs.String("netflow", "", `emit NetFlow v5 datagrams instead of CSV: a file path, "-" for stdout, or udp:host:port for live replay`)
		rate     = fs.Float64("rate", 0, "pace the -netflow replay to this many records per second (0 = unpaced)")
		nfIntvl  = fs.Int("netflow-interval", 300, "seconds per trace interval in -netflow timestamps")
		nfPerFlw = fs.Int("netflow-records-per-flow", 1, "split each flow's per-interval volume across this many records")
	)
	fs.Var(&spikes, "spike", "high-profile injection flow:start:end:magnitude (repeatable)")
	fs.Var(&coordinate, "coordinated", "coordinated injection f1,f2,...:start:end:magnitude (repeatable)")
	fs.Var(&flashes, "flash", "flash-crowd injection destRouter:start:end:peak (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := traffic.Generate(traffic.GeneratorConfig{
		NumIntervals:    *intervals,
		IntervalsPerDay: *perDay,
		Seed:            *seed,
		TotalVolume:     *totalVol,
	})
	if err != nil {
		return err
	}

	for _, spec := range spikes {
		flow, start, end, mag, err := parseInjection(spec)
		if err != nil {
			return fmt.Errorf("spike %q: %w", spec, err)
		}
		if len(flow) != 1 {
			return fmt.Errorf("spike %q: exactly one flow", spec)
		}
		if err := tr.InjectSpike(flow[0], start, end, mag); err != nil {
			return fmt.Errorf("spike %q: %w", spec, err)
		}
	}
	for _, spec := range coordinate {
		flows, start, end, mag, err := parseInjection(spec)
		if err != nil {
			return fmt.Errorf("coordinated %q: %w", spec, err)
		}
		if err := tr.InjectCoordinated(flows, start, end, mag); err != nil {
			return fmt.Errorf("coordinated %q: %w", spec, err)
		}
	}
	for _, spec := range flashes {
		dest, start, end, mag, err := parseInjection(spec)
		if err != nil {
			return fmt.Errorf("flash %q: %w", spec, err)
		}
		if len(dest) != 1 {
			return fmt.Errorf("flash %q: exactly one destination router", spec)
		}
		if err := tr.InjectFlashCrowd(dest[0], start, end, mag); err != nil {
			return fmt.Errorf("flash %q: %w", spec, err)
		}
	}

	if *netflow != "" {
		return writeNetFlow(*netflow, out, tr, netFlowOptions{
			rate:           *rate,
			intervalSec:    *nfIntvl,
			recordsPerFlow: *nfPerFlw,
			seed:           *seed,
		})
	}
	return writeCSV(out, tr)
}

type netFlowOptions struct {
	rate           float64
	intervalSec    int
	recordsPerFlow int
	seed           int64
}

// writeNetFlow serializes the trace as NetFlow v5 datagrams to dest: a file
// path ("-" meaning stdout), or "udp:host:port" for a live replay. A
// positive rate paces emission to that many flow records per second, so a
// replay against a collector approximates a real exporter instead of a
// single burst.
func writeNetFlow(dest string, stdout io.Writer, tr *traffic.Trace, o netFlowOptions) error {
	var (
		emit  func([]byte) error
		flush = func() error { return nil }
	)
	switch {
	case strings.HasPrefix(dest, "udp:"):
		conn, err := net.Dial("udp", strings.TrimPrefix(dest, "udp:"))
		if err != nil {
			return err
		}
		defer conn.Close()
		emit = func(d []byte) error {
			_, err := conn.Write(d)
			return err
		}
	case dest == "-":
		w := bufio.NewWriter(stdout)
		emit = func(d []byte) error {
			_, err := w.Write(d)
			return err
		}
		flush = w.Flush
	default:
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		emit = func(d []byte) error {
			_, err := w.Write(d)
			return err
		}
		flush = w.Flush
	}
	if o.rate > 0 {
		inner := emit
		start := time.Now()
		var sent int64
		emit = func(d []byte) error {
			sent += int64(binary.BigEndian.Uint16(d[2:4])) // header record count
			due := start.Add(time.Duration(float64(sent) / o.rate * float64(time.Second)))
			time.Sleep(time.Until(due))
			return inner(d)
		}
	}
	if err := ingest.ExportTrace(tr, ingest.ExportOptions{
		IntervalSec:    o.intervalSec,
		RecordsPerFlow: o.recordsPerFlow,
		Seed:           o.seed,
	}, emit); err != nil {
		return err
	}
	return flush()
}

// parseInjection parses "ids:start:end:magnitude" with ids a comma list.
func parseInjection(spec string) (ids []int, start, end int, mag float64, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return nil, 0, 0, 0, fmt.Errorf("want ids:start:end:magnitude")
	}
	for _, s := range strings.Split(parts[0], ",") {
		id, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("id %q: %w", s, err)
		}
		ids = append(ids, id)
	}
	if start, err = strconv.Atoi(parts[1]); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("start %q: %w", parts[1], err)
	}
	if end, err = strconv.Atoi(parts[2]); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("end %q: %w", parts[2], err)
	}
	if mag, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("magnitude %q: %w", parts[3], err)
	}
	return ids, start, end, mag, nil
}

// writeCSV emits interval, per-flow volumes and the ground-truth label.
func writeCSV(out io.Writer, tr *traffic.Trace) error {
	w := bufio.NewWriter(out)
	defer w.Flush()

	w.WriteString("interval")
	for _, name := range tr.FlowNames {
		w.WriteByte(',')
		w.WriteString(name)
	}
	w.WriteString(",label\n")

	labels := tr.Labels()
	for i := 0; i < tr.NumIntervals(); i++ {
		w.WriteString(strconv.Itoa(i))
		row := tr.Volumes.RowView(i)
		for _, v := range row {
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(v, 'f', 0, 64))
		}
		w.WriteByte(',')
		if labels[i] {
			w.WriteByte('1')
		} else {
			w.WriteByte('0')
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}
