package main

import (
	"bytes"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streampca/internal/flow"
	"streampca/internal/ingest"
	"streampca/internal/traffic"
)

// netflowArgs generates a tiny Abilene trace; the same settings regenerate
// the reference trace for volume checks.
func netflowArgs(extra ...string) []string {
	return append([]string{"-intervals", "3", "-seed", "9", "-volume", "1.21e6"}, extra...)
}

func referenceTrace(t *testing.T) *traffic.Trace {
	t.Helper()
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		NumIntervals: 3,
		Seed:         9,
		TotalVolume:  1.21e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// sumVolumes tallies total exported octets per flow across a datagram
// stream, mapping addresses back to OD flows via the Abilene topology.
func sumVolumes(t *testing.T, stream []byte) []float64 {
	t.Helper()
	agg, err := traffic.NewAbileneAggregator()
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, agg.NumFlows())
	var d ingest.Datagram
	if err := ingest.ReadDatagrams(bytes.NewReader(stream), func(buf []byte) error {
		if err := ingest.DecodeDatagram(buf, &d); err != nil {
			return err
		}
		for _, r := range d.Records {
			id, err := agg.FlowID(flow.Packet{Src: r.SrcAddr, Dst: r.DstAddr})
			if err != nil {
				return err
			}
			totals[id] += float64(r.Octets)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return totals
}

func assertTotalsMatch(t *testing.T, tr *traffic.Trace, totals []float64) {
	t.Helper()
	for j := range totals {
		var want float64
		for i := 0; i < tr.NumIntervals(); i++ {
			want += math.Round(tr.Volumes.RowView(i)[j])
		}
		if totals[j] != want {
			t.Fatalf("flow %d: exported %v octets, trace has %v", j, totals[j], want)
		}
	}
}

func TestRunNetFlowStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run(netflowArgs("-netflow", "-"), &out); err != nil {
		t.Fatal(err)
	}
	assertTotalsMatch(t, referenceTrace(t), sumVolumes(t, out.Bytes()))
}

func TestRunNetFlowFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.nf5")
	if err := run(netflowArgs("-netflow", path, "-netflow-records-per-flow", "3"), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	stream, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertTotalsMatch(t, referenceTrace(t), sumVolumes(t, stream))
}

func TestRunNetFlowUDPReplay(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var (
		recv    = make(chan []byte, 1024)
		readErr = make(chan error, 1)
	)
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				readErr <- err
				return
			}
			recv <- append([]byte(nil), buf[:n]...)
		}
	}()

	// A rate well above the record count keeps pacing overhead negligible
	// while still exercising the pacer code path.
	if err := run(netflowArgs("-netflow", "udp:"+pc.LocalAddr().String(), "-rate", "1e7"), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Loopback UDP: drain until the stream goes quiet, then verify totals.
	var stream bytes.Buffer
	for {
		select {
		case d := <-recv:
			stream.Write(d)
		case <-time.After(500 * time.Millisecond):
			if stream.Len() == 0 {
				t.Fatal("no datagrams received")
			}
			assertTotalsMatch(t, referenceTrace(t), sumVolumes(t, stream.Bytes()))
			return
		}
	}
}

func TestRunNetFlowPacerSlowsReplay(t *testing.T) {
	// 3 intervals × 121 flows ≈ 363 records; at 2000 records/s the replay
	// must take at least ~150ms. Generous bounds keep this robust on slow
	// machines while still proving the pacer engages.
	var out bytes.Buffer
	start := time.Now()
	if err := run(netflowArgs("-netflow", "-", "-rate", "2000"), &out); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("paced replay finished in %v, pacer not engaged", elapsed)
	}
}

func TestRunNetFlowBadDest(t *testing.T) {
	if err := run(netflowArgs("-netflow", filepath.Join(t.TempDir(), "no", "such", "dir", "x")), &bytes.Buffer{}); err == nil {
		t.Fatal("want error for uncreatable file")
	}
	if err := run(netflowArgs("-netflow", "udp:127.0.0.1:not-a-port"), &bytes.Buffer{}); err == nil {
		t.Fatal("want error for bad UDP address")
	}
}
