package main

import (
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/faults"
	"streampca/internal/flow"
	"streampca/internal/ingest"
	"streampca/internal/monitor"
	"streampca/internal/noc"
	"streampca/internal/randproj"
	"streampca/internal/traffic"
)

const (
	e2eRouters   = 3
	e2eFlows     = e2eRouters * e2eRouters
	e2eIntervals = 24
	e2eWindow    = 8
	e2eSketch    = 6
	e2eSeed      = 5
)

func e2eTrace(t testing.TB) *traffic.Trace {
	t.Helper()
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		Routers:      []string{"A", "B", "C"},
		NumIntervals: e2eIntervals,
		Seed:         11,
		TotalVolume:  9e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func e2eNOC(t testing.TB) (*noc.Service, chan noc.Decision) {
	t.Helper()
	decisions := make(chan noc.Decision, e2eIntervals*2)
	svc, err := noc.New(noc.Config{
		Detector: core.DetectorConfig{
			NumFlows: e2eFlows, WindowLen: e2eWindow, SketchLen: e2eSketch,
			Alpha: 0.01, FixedRank: 1,
		},
		Seed:       e2eSeed,
		OnDecision: func(d noc.Decision) { decisions <- d },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return svc, decisions
}

// collectInto drains decisions from ch into out until out holds n distinct
// intervals.
func collectInto(t testing.TB, ch chan noc.Decision, out map[int64]noc.Decision, n int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case d := <-ch:
			out[d.Interval] = d
		case <-deadline:
			t.Fatalf("only %d/%d decisions arrived", len(out), n)
		}
	}
}

func collectDecisions(t testing.TB, ch chan noc.Decision, n int) map[int64]noc.Decision {
	t.Helper()
	out := make(map[int64]noc.Decision, n)
	collectInto(t, ch, out, n)
	return out
}

// freeUDPAddr reserves an ephemeral UDP port and releases it for the caller.
// The tiny reuse race is acceptable in tests.
func freeUDPAddr(t testing.TB) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

func freeTCPAddr(t testing.TB) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// waitCollectorReady sends undecodable probe datagrams at the collector until
// the daemon's decode-error counter moves, proving the UDP socket is bound
// and the ingest pipeline is consuming. UDP "connects" never fail, so
// without this probe the first real datagrams could race the bind and be
// lost silently.
func waitCollectorReady(t testing.TB, conn net.Conn, metricsAddr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _ = conn.Write([]byte("probe"))
		resp, err := http.Get("http://" + metricsAddr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				for _, line := range strings.Split(string(body), "\n") {
					if !strings.HasPrefix(line, "streampca_ingest_decode_errors_total") {
						continue
					}
					fields := strings.Fields(line)
					if v, perr := strconv.ParseFloat(fields[len(fields)-1], 64); perr == nil && v > 0 {
						return
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitDecision blocks until a decision for exactly interval appears on ch
// and records it in out.
func waitDecision(t testing.TB, ch chan noc.Decision, out map[int64]noc.Decision, interval int64) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if _, ok := out[interval]; ok {
			return
		}
		select {
		case d := <-ch:
			out[d.Interval] = d
		case <-deadline:
			t.Fatalf("decision for interval %d never arrived", interval)
		}
	}
}

// exportByInterval renders the trace as NetFlow datagrams grouped by source
// interval (ExportTrace flushes at interval boundaries, so no datagram
// spans two).
func exportByInterval(t testing.TB, tr *traffic.Trace) [][][]byte {
	t.Helper()
	out := make([][][]byte, tr.NumIntervals())
	const base = 1_200_000_000
	var d ingest.Datagram
	if err := ingest.ExportTrace(tr, ingest.ExportOptions{}, func(buf []byte) error {
		if err := ingest.DecodeDatagram(buf, &d); err != nil {
			return err
		}
		i := (int64(d.Header.UnixSecs) - base) / 300
		out[i] = append(out[i], append([]byte(nil), buf...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunIngestMatchesDirectFeed is the end-to-end equivalence check: the
// same trace fed (a) as NetFlow v5 datagrams over UDP through the ingest
// pipeline and (b) as CSV rows through the classic stdin path must produce
// the same alarm decisions at the NOC — the export rounds volumes to whole
// bytes, so the CSV side feeds the same rounded values. Both feeds run in
// lockstep (send an interval, await its decision) because the NOC's lazy
// sketch pull captures the monitor's current state: a free-running feed
// would let the sketch race ahead of the interval under decision, making
// the outcome pacing-dependent rather than data-dependent.
func TestRunIngestMatchesDirectFeed(t *testing.T) {
	tr := e2eTrace(t)

	// (a) NetFlow replay through run()'s ingest mode.
	nocA, decA := e2eNOC(t)
	defer nocA.Shutdown()
	listen := freeUDPAddr(t)
	metricsAddr := freeTCPAddr(t)
	sig := make(chan os.Signal, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-noc", nocA.Addr(),
			"-id", "ingest-e2e",
			"-flows", "0,1,2,3,4,5,6,7,8",
			"-window", itoa(e2eWindow),
			"-sketch", itoa(e2eSketch),
			"-seed", itoa(e2eSeed),
			"-ingest-listen", listen,
			"-routers", itoa(e2eRouters),
			"-interval", "300s",
			"-ingest-shards", "2",
			"-metrics-addr", metricsAddr,
		}, strings.NewReader(""), sig)
	}()

	conn, err := net.Dial("udp", listen)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitCollectorReady(t, conn, metricsAddr)
	// Interval i seals (and is decided as interval i, 1-based) once interval
	// i+1's datagrams advance the record-clock watermark; the final interval
	// seals partial during graceful shutdown.
	gotA := make(map[int64]noc.Decision, e2eIntervals)
	for i, dgrams := range exportByInterval(t, tr) {
		for _, d := range dgrams {
			if _, err := conn.Write(d); err != nil {
				t.Fatal(err)
			}
		}
		if i >= 1 {
			waitDecision(t, decA, gotA, int64(i))
		}
	}
	sig <- os.Interrupt
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	waitDecision(t, decA, gotA, e2eIntervals)

	// (b) The same rounded volumes through the CSV stdin path.
	nocB, decB := e2eNOC(t)
	defer nocB.Shutdown()
	pr, pw := io.Pipe()
	runErrB := make(chan error, 1)
	go func() {
		runErrB <- run([]string{
			"-noc", nocB.Addr(),
			"-id", "csv-e2e",
			"-flows", "0,1,2,3,4,5,6,7,8",
			"-window", itoa(e2eWindow),
			"-sketch", itoa(e2eSketch),
			"-seed", itoa(e2eSeed),
		}, pr, nil)
	}()
	gotB := make(map[int64]noc.Decision, e2eIntervals)
	for i := 0; i < tr.NumIntervals(); i++ {
		var sb strings.Builder
		sb.WriteString(itoa(i))
		for _, v := range tr.Volumes.RowView(i) {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(math.Round(v), 'f', -1, 64))
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(pw, sb.String()); err != nil {
			t.Fatal(err)
		}
		waitDecision(t, decB, gotB, int64(i+1))
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-runErrB; err != nil {
		t.Fatal(err)
	}

	for i := int64(1); i <= e2eIntervals; i++ {
		a, okA := gotA[i]
		b, okB := gotB[i]
		if !okA || !okB {
			t.Fatalf("interval %d missing (ingest=%v csv=%v)", i, okA, okB)
		}
		for j := range b.Vector {
			if a.Vector[j] != b.Vector[j] {
				t.Errorf("interval %d: vector[%d] %v vs %v", i, j, a.Vector[j], b.Vector[j])
			}
		}
		if a.Result.Anomalous != b.Result.Anomalous {
			t.Errorf("interval %d: alarm mismatch ingest=%v csv=%v", i, a.Result.Anomalous, b.Result.Anomalous)
		}
		if diff := math.Abs(a.Result.Distance - b.Result.Distance); diff > 1e-6*(1+math.Abs(b.Result.Distance)) {
			t.Errorf("interval %d: distance %g vs %g", i, a.Result.Distance, b.Result.Distance)
		}
	}
}

// TestChaosIngestFaultyDatagrams replays a trace through an ingest pipeline
// wired to a real monitor→NOC deployment while a fault plan drops and
// corrupts datagrams. The detector sees degraded volumes, but every sealed
// interval must still produce a NOC decision with contiguous numbering, and
// shutdown must stay clean.
func TestChaosIngestFaultyDatagrams(t *testing.T) {
	tr := e2eTrace(t)
	nocSvc, decisions := e2eNOC(t)
	defer nocSvc.Shutdown()

	svc, err := monitor.New(monitor.Config{
		ID:        "chaos-ingest",
		FlowIDs:   []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
		WindowLen: e2eWindow,
		Epsilon:   0.01,
		Sketch:    randproj.Config{Seed: e2eSeed, SketchLen: e2eSketch, WindowLen: e2eWindow},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Connect(nocSvc.Addr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	tbl, err := traffic.BuildRoutingTable(e2eRouters)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := flow.NewAggregator(tbl, e2eRouters, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.MustPlan(17,
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", Prob: 0.2, Drop: true},
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", Prob: 0.1, Corrupt: true},
	)
	p, err := ingest.NewPipeline(ingest.Config{
		Aggregator: agg,
		Interval:   300 * time.Second,
		Shards:     2,
		Faults:     plan,
		Sink: func(iv ingest.Interval) error {
			return svc.ReportInterval(iv.Seq, iv.Volumes)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ingest.ExportTrace(tr, ingest.ExportOptions{RecordsPerFlow: 3, MaxRecords: 10}, func(d []byte) error {
		return p.HandleDatagram(d)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	sealed := int(p.Metrics().EpochsSealed.Value())
	if sealed == 0 {
		t.Fatal("chaos dropped every interval")
	}
	dropped := p.Metrics().FaultDrops.Value()
	corrupted := p.Metrics().DecodeErrors.Value()
	if dropped == 0 || corrupted == 0 {
		t.Fatalf("fault plan never fired (dropped=%d corrupted=%d)", dropped, corrupted)
	}
	got := collectDecisions(t, decisions, sealed)
	for i := int64(1); i <= int64(sealed); i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("interval %d missing from NOC decisions", i)
		}
	}
}
