package main

import (
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/noc"
)

func TestParseIntList(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "", want: nil},
		{in: "1,2,3", want: []int{1, 2, 3}},
		{in: " 4 , 5 ", want: []int{4, 5}},
		{in: "1,x", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseIntList(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("%q: want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tt.in, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("%q: got %v", tt.in, got)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("%q: got %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestIsNumeric(t *testing.T) {
	if !isNumeric("3.5") || !isNumeric("-1") || isNumeric("interval") {
		t.Fatal("isNumeric misclassifies")
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                     // missing -flows
		{"-flows", "0,1", "-columns", "0"},     // count mismatch
		{"-flows", "bad"},                      // unparseable flows
		{"-flows", "0", "-columns", "x"},       // unparseable columns
		{"-flows", "0", "-noc", "127.0.0.1:1"}, // NOC unreachable
	}
	for i, args := range cases {
		args = append(args, "-dial-timeout", "50ms")
		if err := run(args, strings.NewReader(""), nil); err == nil {
			t.Fatalf("case %d (%v): want error", i, args)
		}
	}
}

// End-to-end CLI glue: a real NOC service, the monitor run() fed CSV on a
// reader, decisions observed at the NOC.
func TestRunFeedsNOC(t *testing.T) {
	const (
		flows  = 4
		window = 8
		sketch = 6
		seed   = 5
	)
	decisions := make(chan noc.Decision, 64)
	svc, err := noc.New(noc.Config{
		Detector: core.DetectorConfig{
			NumFlows: flows, WindowLen: window, SketchLen: sketch,
			Alpha: 0.01, FixedRank: 1,
		},
		Seed:       seed,
		OnDecision: func(d noc.Decision) { decisions <- d },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()

	// CSV with a header and 20 intervals of 4 columns (+ a label column the
	// monitor must ignore via -columns). The pipe stays open until the NOC
	// has delivered every decision, keeping the monitor connected for the
	// lazy sketch pulls.
	pr, pw := io.Pipe()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-noc", svc.Addr(),
			"-id", "cli-test",
			"-flows", "0,1,2,3",
			"-columns", "0,1,2,3",
			"-window", itoa(window),
			"-sketch", itoa(sketch),
			"-seed", itoa(seed),
		}, pr, nil)
	}()
	var sb strings.Builder
	sb.WriteString("interval,f0,f1,f2,f3,label\n")
	for i := 0; i < 20; i++ {
		sb.WriteString(strings.Join([]string{
			itoa(i),
			ftoa(100 + i), ftoa(200 + i), ftoa(300 + i), ftoa(400 + i),
			"0",
		}, ","))
		sb.WriteByte('\n')
	}
	if _, err := pw.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}

	// All 20 intervals must produce decisions (warm-up + detections).
	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < 20 {
		select {
		case <-decisions:
			seen++
		case <-deadline:
			t.Fatalf("only %d/20 decisions arrived", seen)
		}
	}
	if !svc.HasModel() {
		t.Fatal("NOC never built a model from the CLI monitor")
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v int) string { return strconv.Itoa(v) }
