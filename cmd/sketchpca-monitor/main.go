// Command sketchpca-monitor runs a local-monitor daemon: it maintains the
// per-flow variance-histogram sketches, streams per-interval volume reports
// to the NOC and answers its sketch pulls.
//
// Volumes arrive on stdin as CSV rows "interval,v0,v1,..." (for example a
// column slice of trafficgen output); -columns selects which CSV columns
// (0-based, after the interval column) map to this monitor's -flows.
//
// Usage:
//
//	trafficgen -intervals 8064 | sketchpca-monitor \
//	    -noc 127.0.0.1:7100 -id mon-east \
//	    -flows 0,1,2,9,10,11 -columns 0,1,2,9,10,11 \
//	    -window 4032 -sketch 200 -seed 42
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"streampca/internal/monitor"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "sketchpca-monitor:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader) error {
	fs := flag.NewFlagSet("sketchpca-monitor", flag.ContinueOnError)
	var (
		nocAddr = fs.String("noc", "127.0.0.1:7100", "NOC address")
		id      = fs.String("id", "monitor-1", "monitor identifier")
		flowStr = fs.String("flows", "", "comma-separated global flow ids owned by this monitor")
		colStr  = fs.String("columns", "", "comma-separated stdin CSV columns feeding those flows (defaults to -flows)")
		window  = fs.Int("window", 4032, "sliding-window length (n)")
		sketch  = fs.Int("sketch", 200, "sketch length (l)")
		epsilon = fs.Float64("epsilon", 0.01, "variance-histogram ε")
		seed    = fs.Uint64("seed", 42, "shared randomness seed")
		dialTO  = fs.Duration("dial-timeout", 5*time.Second, "NOC dial timeout")
		reconn  = fs.Bool("reconnect", true, "redial the NOC automatically when the link drops")
		reconnB = fs.Duration("reconnect-backoff", 200*time.Millisecond, "initial redial backoff (doubles per attempt)")
		reconnM = fs.Duration("reconnect-backoff-max", 5*time.Second, "redial backoff cap")
		selfchk = fs.Int("selfcheck", 0, "validate the sketch state against an exact-window oracle every Nth interval (0 = off)")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (off when empty)")
		statsEv = fs.Duration("stats-every", 0, "log a one-line stats summary at this period (off when 0)")
		workers = fs.Int("workers", 0, "worker goroutines for the sketch-update path (0 = all CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	flows, err := parseIntList(*flowStr)
	if err != nil {
		return fmt.Errorf("-flows: %w", err)
	}
	if len(flows) == 0 {
		return fmt.Errorf("-flows is required")
	}
	cols := flows
	if *colStr != "" {
		cols, err = parseIntList(*colStr)
		if err != nil {
			return fmt.Errorf("-columns: %w", err)
		}
	}
	if len(cols) != len(flows) {
		return fmt.Errorf("%d columns for %d flows", len(cols), len(flows))
	}

	svc, err := monitor.New(monitor.Config{
		ID:                  *id,
		FlowIDs:             flows,
		WindowLen:           *window,
		Epsilon:             *epsilon,
		Sketch:              randproj.Config{Seed: *seed, SketchLen: *sketch, WindowLen: *window},
		Workers:             *workers,
		SelfCheckEvery:      *selfchk,
		Reconnect:           *reconn,
		ReconnectBackoff:    *reconnB,
		ReconnectBackoffMax: *reconnM,
		Log:                 obs.NewLogger(os.Stderr, slog.LevelInfo, "monitor"),
		MetricsAddr:         *metrics,
		OnAlarm: func(a transport.Alarm) {
			degraded := ""
			if a.Degraded {
				degraded = " degraded=true"
			}
			fmt.Fprintf(os.Stderr, "%s: ALARM interval=%d distance=%.4g threshold=%.4g%s\n",
				*id, a.Interval, a.Distance, a.Threshold, degraded)
		},
	})
	if err != nil {
		return err
	}
	if err := svc.Connect(*nocAddr, *dialTO); err != nil {
		return err
	}
	defer func() { _ = svc.Close() }()
	fmt.Fprintf(os.Stderr, "%s: connected to %s, feeding %d flows from stdin\n", *id, *nocAddr, len(flows))
	if addr := svc.DiagAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "%s: diagnostics on http://%s/metrics\n", *id, addr)
	}
	if *statsEv > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(*statsEv)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					svc.LogSummary()
				case <-stop:
					return
				}
			}
		}()
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if lineNo == 1 && !isNumeric(fields[0]) {
			continue // header row
		}
		interval, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: interval %q: %w", lineNo, fields[0], err)
		}
		volumes := make([]float64, len(cols))
		for i, c := range cols {
			idx := c + 1 // skip the interval column
			if idx >= len(fields) {
				return fmt.Errorf("line %d: column %d beyond %d fields", lineNo, c, len(fields))
			}
			v, err := strconv.ParseFloat(fields[idx], 64)
			if err != nil {
				return fmt.Errorf("line %d column %d: %w", lineNo, c, err)
			}
			volumes[i] = v
		}
		// Interval indices start at 1 on the wire (0 is "never updated").
		if err := svc.ReportInterval(interval+1, volumes); err != nil {
			if *reconn {
				// The link is down and being redialed; shedding intervals
				// beats killing the daemon (the NOC degrades gracefully).
				fmt.Fprintf(os.Stderr, "%s: interval %d not reported: %v\n", *id, interval+1, err)
				continue
			}
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("stdin: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%s: input exhausted\n", *id)
	return nil
}

func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
