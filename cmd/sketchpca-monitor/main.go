// Command sketchpca-monitor runs a local-monitor daemon: it maintains the
// local sketch state (-sketcher randproj: per-flow variance histograms;
// -sketcher fd: a Frequent Directions buffer), streams per-interval volume
// reports to the NOC and answers its sketch pulls.
//
// Volumes arrive on stdin as CSV rows "interval,v0,v1,..." (for example a
// column slice of trafficgen output); -columns selects which CSV columns
// (0-based, after the interval column) map to this monitor's -flows.
// Alternatively -ingest-listen switches the daemon to live ingestion: it
// collects NetFlow v5 datagrams over UDP, aggregates them into per-interval
// OD volume rows (internal/ingest) and reports this monitor's -flows slice
// of each sealed row. SIGINT/SIGTERM shut down gracefully: the collector
// stops reading, queued batches drain, and the current partial interval is
// sealed and reported before the NOC link closes.
//
// Usage:
//
//	trafficgen -intervals 8064 | sketchpca-monitor \
//	    -noc 127.0.0.1:7100 -id mon-east \
//	    -flows 0,1,2,9,10,11 -columns 0,1,2,9,10,11 \
//	    -window 4032 -sketch 200 -seed 42
//
//	sketchpca-monitor -noc 127.0.0.1:7100 -id mon-east \
//	    -flows 0,1,2 -ingest-listen 127.0.0.1:2055 -interval 5m
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streampca/internal/agg"
	"streampca/internal/flow"
	"streampca/internal/ingest"
	"streampca/internal/monitor"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	sketchpkg "streampca/internal/sketch"
	"streampca/internal/trace"
	"streampca/internal/traffic"
	"streampca/internal/transport"
)

func main() {
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdin, shutdown); err != nil {
		fmt.Fprintln(os.Stderr, "sketchpca-monitor:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, shutdown <-chan os.Signal) error {
	fs := flag.NewFlagSet("sketchpca-monitor", flag.ContinueOnError)
	var (
		nocAddr = fs.String("noc", "127.0.0.1:7100", "NOC address")
		aggsStr = fs.String("aggs", "", "comma-separated aggregator candidate addresses; when set the monitor registers with its rendezvous-preferred aggregator instead of -noc (federated topology)")
		id      = fs.String("id", "monitor-1", "monitor identifier")
		flowStr = fs.String("flows", "", "comma-separated global flow ids owned by this monitor")
		colStr  = fs.String("columns", "", "comma-separated stdin CSV columns feeding those flows (defaults to -flows)")
		window  = fs.Int("window", 4032, "sliding-window length (n)")
		sketch  = fs.Int("sketch", 200, "sketch length (l for -sketcher randproj, basis budget ℓ for fd)")
		family  = fs.String("sketcher", "randproj", "sketcher family: randproj or fd (must match the NOC)")
		epsilon = fs.Float64("epsilon", 0.01, "variance-histogram ε (randproj only)")
		seed    = fs.Uint64("seed", 42, "shared randomness seed (randproj only)")
		dialTO  = fs.Duration("dial-timeout", 5*time.Second, "NOC dial timeout")
		reconn  = fs.Bool("reconnect", true, "redial the NOC automatically when the link drops")
		reconnB = fs.Duration("reconnect-backoff", 200*time.Millisecond, "initial redial backoff (doubles per attempt)")
		reconnM = fs.Duration("reconnect-backoff-max", 5*time.Second, "redial backoff cap")
		selfchk = fs.Int("selfcheck", 0, "validate the sketch state against an exact-window oracle every Nth interval (0 = off)")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (off when empty)")
		statsEv = fs.Duration("stats-every", 0, "log a one-line stats summary at this period (off when 0)")
		workers = fs.Int("workers", 0, "worker goroutines for the sketch-update path (0 = all CPUs)")
		traceOn = fs.Bool("trace", false, "record interval-lineage spans, served on /debug/trace (needs -metrics-addr to be visible)")
		traceSm = fs.Int("trace-sample", 1, "with -trace, keep every trace whose id %% N == 0 (1 = all)")
		flight  = fs.String("flight-recorder", "", "append one JSONL audit record per received alarm to this file (off when empty)")

		ingListen = fs.String("ingest-listen", "", "UDP address for live NetFlow v5 ingestion (off when empty; replaces the stdin CSV path)")
		ingColl   = fs.Int("ingest-collectors", 1, "UDP collector sockets (SO_REUSEPORT where available; falls back to shared-socket readers)")
		ingShards = fs.Int("ingest-shards", 0, "ingest aggregation shards (0 = all CPUs)")
		ingQueue  = fs.Int("ingest-queue", 256, "per-shard ingest queue length, in record batches")
		ingPolicy = fs.String("ingest-policy", "block", "ingest backpressure policy: block, drop-oldest or drop-newest")
		ingIntvl  = fs.Duration("interval", 5*time.Minute, "measurement interval length (ingest mode)")
		ingLate   = fs.Duration("ingest-lateness", 0, "accept records up to this much older than the stream head before sealing their interval")
		ingClock  = fs.String("ingest-clock", "record", "interval clock: record (exporter timestamps) or wall")
		routers   = fs.Int("routers", 0, "router count for the ingest routing table (0 = the Abilene topology)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	flows, err := parseIntList(*flowStr)
	if err != nil {
		return fmt.Errorf("-flows: %w", err)
	}
	if len(flows) == 0 {
		return fmt.Errorf("-flows is required")
	}
	cols := flows
	if *colStr != "" {
		cols, err = parseIntList(*colStr)
		if err != nil {
			return fmt.Errorf("-columns: %w", err)
		}
	}
	if len(cols) != len(flows) {
		return fmt.Errorf("%d columns for %d flows", len(cols), len(flows))
	}

	if *ingListen == "" {
		// CSV mode ignores the ingest tuning flags; catch accidental mixes.
		if *ingShards != 0 || *routers != 0 || *ingColl != 1 {
			return fmt.Errorf("-ingest-shards/-ingest-collectors/-routers need -ingest-listen")
		}
	}

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(trace.Config{Component: "monitor/" + *id, Sample: *traceSm})
	}
	var recorder *trace.FlightRecorder
	if *flight != "" {
		recorder, err = trace.OpenFlightRecorder(*flight)
		if err != nil {
			return fmt.Errorf("-flight-recorder: %w", err)
		}
		defer func() { _ = recorder.Close() }()
	}

	fam, err := sketchpkg.ParseFamily(*family)
	if err != nil {
		return fmt.Errorf("-sketcher: %w", err)
	}
	var aggs []string
	if strings.TrimSpace(*aggsStr) != "" {
		for _, a := range strings.Split(*aggsStr, ",") {
			if a = strings.TrimSpace(a); a != "" {
				aggs = append(aggs, a)
			}
		}
	}
	svc, err := monitor.New(monitor.Config{
		ID:                  *id,
		Family:              fam,
		FlowIDs:             flows,
		WindowLen:           *window,
		Epsilon:             *epsilon,
		Sketch:              randproj.Config{Seed: *seed, SketchLen: *sketch, WindowLen: *window},
		FDEll:               *sketch,
		Workers:             *workers,
		SelfCheckEvery:      *selfchk,
		Reconnect:           *reconn,
		ReconnectBackoff:    *reconnB,
		ReconnectBackoffMax: *reconnM,
		Candidates:          aggs,
		Log:                 obs.NewLogger(os.Stderr, slog.LevelInfo, "monitor"),
		MetricsAddr:         *metrics,
		Trace:               tracer,
		FlightRecorder:      recorder,
		OnAlarm: func(a transport.Alarm) {
			degraded := ""
			if a.Degraded {
				degraded = " degraded=true"
			}
			fmt.Fprintf(os.Stderr, "%s: ALARM interval=%d distance=%.4g threshold=%.4g%s\n",
				*id, a.Interval, a.Distance, a.Threshold, degraded)
		},
	})
	if err != nil {
		return err
	}
	// With -aggs, dial the rendezvous order for this monitor's ID so every
	// monitor independently lands on its agreed aggregator; otherwise the
	// classic flat topology dials the NOC directly.
	upstream := *nocAddr
	if len(aggs) > 0 {
		var dialErr error
		connected := false
		for _, addr := range agg.Rendezvous(*id, aggs) {
			if dialErr = svc.Connect(addr, *dialTO); dialErr == nil {
				upstream = addr
				connected = true
				break
			}
			fmt.Fprintf(os.Stderr, "%s: aggregator %s unavailable: %v\n", *id, addr, dialErr)
		}
		if !connected {
			return fmt.Errorf("no aggregator reachable: %w", dialErr)
		}
	} else if err := svc.Connect(upstream, *dialTO); err != nil {
		return err
	}
	defer func() { _ = svc.Close() }()
	feed := "stdin"
	if *ingListen != "" {
		feed = "live ingest"
	}
	fmt.Fprintf(os.Stderr, "%s: connected to %s, feeding %d flows from %s\n", *id, upstream, len(flows), feed)
	if addr := svc.DiagAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "%s: diagnostics on http://%s/metrics\n", *id, addr)
	}
	if *statsEv > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(*statsEv)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					svc.LogSummary()
				case <-stop:
					return
				}
			}
		}()
	}

	if *ingListen != "" {
		return runIngest(svc, ingestOptions{
			listen:     *ingListen,
			collectors: *ingColl,
			shards:     *ingShards,
			queueLen:   *ingQueue,
			policy:     *ingPolicy,
			interval:   *ingIntvl,
			lateness:   *ingLate,
			clock:      *ingClock,
			routers:    *routers,
			id:         *id,
			flows:      flows,
			shed:       *reconn,
			trace:      tracer,
		}, shutdown)
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if lineNo == 1 && !isNumeric(fields[0]) {
			continue // header row
		}
		interval, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: interval %q: %w", lineNo, fields[0], err)
		}
		volumes := make([]float64, len(cols))
		for i, c := range cols {
			idx := c + 1 // skip the interval column
			if idx >= len(fields) {
				return fmt.Errorf("line %d: column %d beyond %d fields", lineNo, c, len(fields))
			}
			v, err := strconv.ParseFloat(fields[idx], 64)
			if err != nil {
				return fmt.Errorf("line %d column %d: %w", lineNo, c, err)
			}
			volumes[i] = v
		}
		// Interval indices start at 1 on the wire (0 is "never updated").
		if err := svc.ReportInterval(interval+1, volumes); err != nil {
			if *reconn {
				// The link is down and being redialed; shedding intervals
				// beats killing the daemon (the NOC degrades gracefully).
				fmt.Fprintf(os.Stderr, "%s: interval %d not reported: %v\n", *id, interval+1, err)
				continue
			}
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("stdin: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%s: input exhausted\n", *id)
	return nil
}

// ingestOptions carries the -ingest-* flag values into runIngest.
type ingestOptions struct {
	listen     string
	collectors int
	shards     int
	queueLen   int
	policy     string
	interval   time.Duration
	lateness   time.Duration
	clock      string
	routers    int
	id         string
	flows      []int
	shed       bool // shed intervals instead of failing while the NOC link redials
	trace      *trace.Tracer
}

// runIngest runs the live-ingestion loop: a UDP NetFlow collector feeding a
// sharded aggregation pipeline whose sealed interval rows are sliced down to
// this monitor's flows and reported to the NOC. It blocks until shutdown
// fires, then drains: collector first (stop reading), pipeline second (flush
// queues, seal the partial interval), so every received record still reaches
// the NOC before the link closes.
func runIngest(svc *monitor.Service, o ingestOptions, shutdown <-chan os.Signal) error {
	var (
		agg *flow.Aggregator
		err error
	)
	if o.routers == 0 {
		agg, err = traffic.NewAbileneAggregator()
	} else {
		var tbl *flow.Table
		tbl, err = traffic.BuildRoutingTable(o.routers)
		if err == nil {
			agg, err = flow.NewAggregator(tbl, o.routers, nil)
		}
	}
	if err != nil {
		return fmt.Errorf("ingest topology: %w", err)
	}
	for _, f := range o.flows {
		if f < 0 || f >= agg.NumFlows() {
			return fmt.Errorf("-flows: %d outside the %d-flow topology", f, agg.NumFlows())
		}
	}
	policy, err := ingest.ParsePolicy(o.policy)
	if err != nil {
		return fmt.Errorf("-ingest-policy: %w", err)
	}
	clock, err := ingest.ParseClock(o.clock)
	if err != nil {
		return fmt.Errorf("-ingest-clock: %w", err)
	}

	// The pipeline tags its own records component=ingest; only add the
	// monitor identity here.
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})).
		With("monitor", o.id)
	sink := func(iv ingest.Interval) error {
		local := make([]float64, len(o.flows))
		for i, f := range o.flows {
			local[i] = iv.Volumes[f]
		}
		if err := svc.ReportInterval(iv.Seq, local); err != nil {
			if o.shed {
				log.Warn("interval not reported", "interval", iv.Seq, "err", err)
				return nil
			}
			return err
		}
		return nil
	}
	p, err := ingest.NewPipeline(ingest.Config{
		Aggregator: agg,
		Interval:   o.interval,
		Shards:     o.shards,
		QueueLen:   o.queueLen,
		Policy:     policy,
		Clock:      clock,
		Lateness:   o.lateness,
		Sink:       sink,
		Obs:        svc.Registry(),
		Log:        log,
		Trace:      o.trace,
	})
	if err != nil {
		return err
	}
	// Fold the pipeline's counters into the monitor's -stats-every summary
	// line, so one log line covers the whole daemon.
	met := p.Metrics()
	svc.SetIngestStats(func() monitor.IngestStats {
		return monitor.IngestStats{
			QueueDepth:     int64(met.QueueDepth.Value()),
			DroppedRecords: met.DroppedOldest.Value() + met.DroppedNewest.Value(),
			FutureDrops:    met.FutureDrops.Value(),
			LateRecords:    met.LateRecords.Value(),
			EpochsSealed:   met.EpochsSealed.Value(),
			PartialEpochs:  met.PartialEpochs.Value(),
		}
	})
	c, err := ingest.ListenN(o.listen, o.collectors, p)
	if err != nil {
		_ = p.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: ingesting NetFlow v5 on %s (%d socket(s), interval %s, %d flows of %d)\n",
		o.id, c.Addr(), c.Sockets(), o.interval, len(o.flows), agg.NumFlows())

	<-shutdown
	fmt.Fprintf(os.Stderr, "%s: shutting down: draining ingest and sealing the open interval\n", o.id)
	cerr := c.Close()
	perr := p.Close()
	if cerr != nil {
		return cerr
	}
	return perr
}

func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
