// Command sketchpca-agg runs a mid-tier aggregator daemon of the federated
// topology: it fronts a shard of local monitors exactly like a NOC (Hello
// registrations, per-interval volume reports, sketch pulls) and presents the
// shard to the real NOC as one monitor whose flows are the union of its
// monitors' and whose sketch responses are interval-aligned merges
// (sketch.Merge — lossless column union for randproj, deterministic-bound
// re-insertion for fd).
//
// Usage:
//
//	sketchpca-agg -listen 127.0.0.1:7201 -noc 127.0.0.1:7100 \
//	    -id agg-east -flows 81 -window 4032 -sketch 200 -seed 42 \
//	    -peers 127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203
//
// -window, -sketch, -sketcher and (randproj only) -seed must match both the
// NOC's and the monitors'. -peers lists every aggregator fronting the same
// NOC (including this one); it is pushed to registering monitors so they can
// re-place themselves by rendezvous hashing if this aggregator dies.
// Monitors pick their aggregator with sketchpca-monitor -aggs.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streampca/internal/agg"
	"streampca/internal/obs"
	sketchpkg "streampca/internal/sketch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sketchpca-agg:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sketchpca-agg", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7200", "listen address for downstream monitors")
		nocAddr  = fs.String("noc", "127.0.0.1:7100", "upstream NOC address")
		id       = fs.String("id", "agg-1", "aggregator identifier (the monitor id the NOC sees)")
		flows    = fs.Int("flows", 81, "network-wide number of aggregated flows (m)")
		window   = fs.Int("window", 4032, "sliding-window length in intervals (n)")
		sketch   = fs.Int("sketch", 200, "sketch length (l for -sketcher randproj, basis budget ℓ for fd)")
		family   = fs.String("sketcher", "randproj", "sketcher family: randproj or fd (must match NOC and monitors)")
		seed     = fs.Uint64("seed", 42, "shared randomness seed (randproj only)")
		peersStr = fs.String("peers", "", "comma-separated aggregator candidate addresses (incl. this one) pushed to monitors for failover")
		epoch    = fs.Uint64("shard-epoch", 1, "version of the pushed candidate list (bump when -peers changes)")
		workers  = fs.Int("workers", 0, "worker goroutines for the sketch-merge path (0 = all CPUs)")
		dialTO   = fs.Duration("dial-timeout", 5*time.Second, "NOC dial timeout")
		fetchTO  = fs.Duration("fetch-timeout", 2*time.Second, "timeout for one downstream sketch-pull round")
		retries  = fs.Int("fetch-retries", 1, "extra downstream pull rounds re-requesting missing responses")
		backoff  = fs.Duration("fetch-backoff", 50*time.Millisecond, "initial retry backoff (doubles per round, jittered)")
		backoffM = fs.Duration("fetch-backoff-max", time.Second, "retry backoff cap")
		degraded = fs.Bool("degraded", true, "serve unresponsive monitors' flows from cached snapshots (flagged upstream)")
		maxStale = fs.Int64("max-staleness", 0, "degraded mode: max snapshot age in intervals (0 = window/4)")
		pendIntv = fs.Int("pending-intervals", 8, "partially-reported intervals buffered for the merged volume forward")
		reconn   = fs.Bool("reconnect", true, "redial the NOC automatically when the link drops")
		reconnB  = fs.Duration("reconnect-backoff", 200*time.Millisecond, "initial redial backoff (doubles per attempt)")
		reconnM  = fs.Duration("reconnect-backoff-max", 5*time.Second, "redial backoff cap")
		metrics  = fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (off when empty)")
		statsEvr = fs.Duration("stats-every", 0, "log a one-line stats summary at this period (off when 0)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := sketchpkg.ParseFamily(*family)
	if err != nil {
		return fmt.Errorf("-sketcher: %w", err)
	}
	var peers []string
	if strings.TrimSpace(*peersStr) != "" {
		for _, p := range strings.Split(*peersStr, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	staleness := *maxStale
	if staleness == 0 {
		staleness = int64(*window / 4)
	}

	svc, err := agg.New(agg.Config{
		ID:                  *id,
		Family:              fam,
		NumFlows:            *flows,
		WindowLen:           *window,
		SketchLen:           *sketch,
		Seed:                *seed,
		Workers:             *workers,
		Peers:               peers,
		ShardEpoch:          *epoch,
		FetchTimeout:        *fetchTO,
		FetchRetries:        *retries,
		FetchBackoff:        *backoff,
		FetchBackoffMax:     *backoffM,
		Degraded:            agg.DegradedPolicy{Enabled: *degraded, MaxStaleness: staleness},
		MaxPendingIntervals: *pendIntv,
		Reconnect:           *reconn,
		ReconnectBackoff:    *reconnB,
		ReconnectBackoffMax: *reconnM,
		Log:                 obs.NewLogger(os.Stderr, slog.LevelInfo, "agg"),
		MetricsAddr:         *metrics,
	})
	if err != nil {
		return err
	}
	if err := svc.Serve(*listen); err != nil {
		return err
	}
	if err := svc.ConnectNOC(*nocAddr, *dialTO); err != nil {
		_ = svc.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchpca-agg: %s listening on %s, upstream %s (m=%d n=%d sketch=%d family=%s peers=%d)\n",
		*id, svc.Addr(), *nocAddr, *flows, *window, *sketch, fam, len(peers))

	stopStats := make(chan struct{})
	if *statsEvr > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvr)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					svc.LogSummary()
				case <-stopStats:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sketchpca-agg: shutting down")
	close(stopStats)
	svc.LogSummary()
	return svc.Close()
}
