#!/usr/bin/env sh
# Guards the tracked benchmarks — the kernel worker sweeps (Gram, Mul,
# SymEigen, MonitorUpdate), the PR8 sketcher-family cells (FDUpdate,
# FDModelBuild, RSVDBuild), the ingest cells (IngestDecode, IngestPipeline,
# IngestCollectors), the PR6 tracing cells (TracedSketchUpdate at
# mode=base/off/on), the PR9 aggregator-merge cells (AggregatorMerge at
# l=64/128, both families) and the PR10 identification cells (Identify at
# m=64/256, k=1/8) — against performance regressions: re-runs each cell
# BENCHCHECK_COUNT times, takes the per-cell minimum (least-noise estimate),
# and fails when any cell is more than BENCHCHECK_TOLERANCE percent slower
# than the recorded median in BENCH_PR10.json (written by scripts/bench.sh on
# the reference host).
#
# The tracing cells additionally gate the disabled-tracing overhead: the
# mode=off cell (nil tracer threaded through the instrumented call site)
# must stay within BENCHCHECK_TRACE_TOLERANCE percent of mode=base (no
# trace calls at all), compared min-to-min within the same run so host
# speed cancels out.
#
# The scaling gates (PR7) compare cells within the same run, so they are
# host-speed independent but do need cores: the 4-worker Gram at m=256 must
# be >= BENCHCHECK_GRAM_SPEEDUP x its 1-worker cell (only when the host has
# >= 4 CPUs), and 8-collector ingest must be >= BENCHCHECK_INGEST_SPEEDUP x
# single-collector throughput (only with >= 8 CPUs). Hosts with fewer cores
# print a skip line — the sweep still runs, guarding against overhead
# regressions via the plain tolerance gate above.
#
# The FD-retrain gate (PR8) is also within-run: the single-worker FD model
# build at m=256 (per-block 2l x 2l eigensolves) must beat the Jacobi full
# rebuild at the same m — Gram + SymEigen, both at m=256/workers=1 — by
# BENCHCHECK_FD_SPEEDUP x. This is the retrain-cost claim the FD family
# rides on; tiny runners (< 2 CPUs), where single-iteration cells are too
# noisy to trust a ratio, print a skip line instead.
#
# Environment:
#   BENCHCHECK_COUNT            runs per cell (default 3)
#   BENCHCHECK_TOLERANCE        allowed slowdown in percent (default 20)
#   BENCHCHECK_TRACE_TOLERANCE  allowed disabled-tracing overhead in percent
#                               (default 5, the PR6 acceptance bound)
#   BENCHCHECK_GRAM_SPEEDUP     required 4-vs-1-worker Gram speedup at m=256
#                               (default 2.0; needs >= 4 CPUs)
#   BENCHCHECK_INGEST_SPEEDUP   required 8-vs-1-collector ingest speedup
#                               (default 4.0; needs >= 8 CPUs)
#   BENCHCHECK_FD_SPEEDUP       required FD-retrain-vs-Jacobi-rebuild speedup
#                               at m=256 (default 2.0; needs >= 2 CPUs)
#   BENCHCHECK_MERGE_FLOOR      minimum aggregator merge throughput in shard
#                               snapshots/s for the randproj cells (default
#                               500; each merge consumes 4 snapshots)
#   BENCHCHECK_MERGE_FLOOR_FD   same floor for the FD cells (default 5 —
#                               an FD merge re-compresses the union, so its
#                               unit cost is ~100x a randproj column union)
#   BENCHCHECK_IDENTIFY_FLOOR   minimum identifications/s for the worst-case
#                               Identify cell, m=256/k=8 (default 500; the
#                               reference host clears 7000/s — the floor
#                               catches an accidental O(m^2)-per-round
#                               selection loop, not host variance)
#   BENCHCHECK_SCALING=0        disable the scaling gates regardless of cores
#   SKIP_BENCHCHECK=1           skip entirely (e.g. on known-noisy hosts)
#
# Cells present in only one of {baseline, current run} are reported but do
# not fail the check, so adding or retiring a benchmark does not require a
# lockstep baseline refresh.
set -eu
cd "$(dirname "$0")/.."

if [ "${SKIP_BENCHCHECK:-0}" = "1" ]; then
    echo "benchcheck: skipped (SKIP_BENCHCHECK=1)"
    exit 0
fi
if [ ! -f BENCH_PR10.json ]; then
    echo "benchcheck: no BENCH_PR10.json baseline; run scripts/bench.sh first" >&2
    exit 1
fi

COUNT="${BENCHCHECK_COUNT:-3}"
TOLERANCE="${BENCHCHECK_TOLERANCE:-20}"
TRACE_TOLERANCE="${BENCHCHECK_TRACE_TOLERANCE:-5}"
GRAM_SPEEDUP="${BENCHCHECK_GRAM_SPEEDUP:-2.0}"
INGEST_SPEEDUP="${BENCHCHECK_INGEST_SPEEDUP:-4.0}"
FD_SPEEDUP="${BENCHCHECK_FD_SPEEDUP:-2.0}"
MERGE_FLOOR="${BENCHCHECK_MERGE_FLOOR:-500}"
MERGE_FLOOR_FD="${BENCHCHECK_MERGE_FLOOR_FD:-5}"
IDENTIFY_FLOOR="${BENCHCHECK_IDENTIFY_FLOOR:-500}"
SCALING="${BENCHCHECK_SCALING:-1}"
NPROC="$(nproc 2>/dev/null || echo 1)"

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "benchcheck: $COUNT runs/cell, tolerance ${TOLERANCE}% vs BENCH_PR10.json, trace overhead <= ${TRACE_TOLERANCE}%"
go test . -run 'XXXnone' \
    -bench 'BenchmarkGram/|BenchmarkMul/|BenchmarkSymEigen/m=|BenchmarkMonitorUpdate/|BenchmarkFDUpdate/|BenchmarkFDModelBuild/|BenchmarkRSVDBuild/|BenchmarkIdentify/' \
    -benchtime 1x -count "$COUNT" > "$RAW"
# One ingest iteration is a single ~µs datagram and the shard queues
# buffer up to 1024 of them, so these cells measure 20000 iterations per
# run (matching scripts/bench.sh) to capture steady state.
go test ./internal/ingest -run 'XXXnone' \
    -bench 'BenchmarkIngestDecode$|BenchmarkIngestPipeline/|BenchmarkIngestCollectors/' \
    -benchtime 20000x -count "$COUNT" >> "$RAW"
# Tracing cells at 5000 iterations (one iteration is a ~130µs sketch
# update), matching scripts/bench.sh. These run as COUNT separate
# single-count invocations rather than one -count=COUNT run: go test runs
# all COUNT measurements of one sub-benchmark before the next, so host
# drift (thermal, noisy neighbours) over the run would bias whichever mode
# runs later and break the off-vs-base comparison below. Interleaving puts
# every mode in each invocation, so drift cancels out of the gate.
i=0
while [ "$i" -lt "$COUNT" ]; do
    go test . -run 'XXXnone' \
        -bench 'BenchmarkTracedSketchUpdate/' \
        -benchtime 5000x >> "$RAW"
    i=$((i + 1))
done
# Aggregator merge cells at 20 iterations (one FD merge is ~50-100ms),
# matching scripts/bench.sh.
go test ./internal/agg -run 'XXXnone' \
    -bench 'BenchmarkAggregatorMerge/' \
    -benchtime 20x -count "$COUNT" >> "$RAW"

python3 - "$RAW" "$TOLERANCE" "$TRACE_TOLERANCE" \
    "$GRAM_SPEEDUP" "$INGEST_SPEEDUP" "$SCALING" "$NPROC" "$FD_SPEEDUP" \
    "$MERGE_FLOOR" "$MERGE_FLOOR_FD" "$IDENTIFY_FLOOR" <<'EOF'
import json, re, sys

kernel = re.compile(
    r'^Benchmark(Gram|SymEigen|MonitorUpdate|FDUpdate|FDModelBuild|RSVDBuild)/'
    r'(?:m|flows)=(\d+)/workers=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
mul = re.compile(
    r'^BenchmarkMul/shape=\d+x(\d+)x\d+/workers=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
ingest = re.compile(
    r'^Benchmark(IngestDecode|IngestPipeline|IngestCollectors)'
    r'(?:/(?:shards|collectors)=(\d+))?(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
traced = re.compile(
    r'^BenchmarkTracedSketchUpdate/(mode=\w+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
merge = re.compile(
    r'^BenchmarkAggregatorMerge/family=(\w+)/l=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
identify = re.compile(
    r'^BenchmarkIdentify/m=(\d+)/k=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
cells = {}
for line in open(sys.argv[1]):
    m = kernel.match(line)
    if m:
        key = (m.group(1), int(m.group(2)), int(m.group(3)))
        cells.setdefault(key, []).append(float(m.group(4)))
        continue
    m = mul.match(line)
    if m:
        key = ("Mul", int(m.group(1)), int(m.group(2)))
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = ingest.match(line)
    if m:
        key = (m.group(1), 0, int(m.group(2) or 1))
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = traced.match(line)
    if m:
        key = ("TracedSketchUpdate/" + m.group(1), 0, 1)
        cells.setdefault(key, []).append(float(m.group(2)))
        continue
    m = merge.match(line)
    if m:
        key = ("AggregatorMerge/family=" + m.group(1), int(m.group(2)), 1)
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = identify.match(line)
    if m:
        key = ("Identify", int(m.group(1)), int(m.group(2)))
        cells.setdefault(key, []).append(float(m.group(3)))

baseline = {
    (r["op"], r["m"], r["workers"]): r["ns_op"]
    for r in json.load(open("BENCH_PR10.json"))
}
tolerance = float(sys.argv[2])
trace_tolerance = float(sys.argv[3])
gram_speedup = float(sys.argv[4])
ingest_speedup = float(sys.argv[5])
scaling = sys.argv[6] == "1"
nproc = int(sys.argv[7])
fd_speedup = float(sys.argv[8])
merge_floor = float(sys.argv[9])
merge_floor_fd = float(sys.argv[10])
identify_floor = float(sys.argv[11])

failed = False
for key in sorted(set(cells) | set(baseline)):
    name = "%s/m=%d/workers=%d" % key
    if key not in baseline:
        print("benchcheck: %-34s new cell, no baseline (ok)" % name)
        continue
    if key not in cells:
        print("benchcheck: %-34s baseline cell did not run (ok)" % name)
        continue
    best, base = min(cells[key]), baseline[key]
    delta = 100.0 * (best - base) / base
    verdict = "ok"
    if delta > tolerance:
        verdict = "REGRESSION"
        failed = True
    print("benchcheck: %-34s %12.0f ns/op vs %12.0f baseline (%+6.1f%%) %s"
          % (name, best, base, delta, verdict))

# Disabled-tracing overhead: off vs base within THIS run, so the check is
# host-independent. min-of-COUNT on both sides suppresses scheduler noise.
untraced = cells.get(("TracedSketchUpdate/mode=base", 0, 1))
disabled = cells.get(("TracedSketchUpdate/mode=off", 0, 1))
if untraced and disabled:
    overhead = 100.0 * (min(disabled) - min(untraced)) / min(untraced)
    verdict = "ok"
    if overhead > trace_tolerance:
        verdict = "REGRESSION"
        failed = True
    print("benchcheck: disabled-tracing overhead (off vs base) %+6.1f%% "
          "(bound %g%%) %s" % (overhead, trace_tolerance, verdict))
else:
    print("benchcheck: disabled-tracing overhead not measured "
          "(traced cells missing)")

# Scaling gates: within-run ratios, so host speed cancels; core count does
# not, hence the nproc conditions. ns/op is inversely proportional to
# throughput in both sweeps (fixed work per op), so speedup = ns1 / nsN.
def gate(label, slow_key, fast_key, need_cores, required):
    global failed
    if not scaling:
        print("benchcheck: %s skipped (BENCHCHECK_SCALING=0)" % label)
        return
    if nproc < need_cores:
        print("benchcheck: %s skipped (host has %d cores, need >= %d)"
              % (label, nproc, need_cores))
        return
    slow, fast = cells.get(slow_key), cells.get(fast_key)
    if not slow or not fast:
        print("benchcheck: %s not measured (cells missing)" % label)
        return
    speedup = min(slow) / min(fast)
    verdict = "ok"
    if speedup < required:
        verdict = "FAILED"
        failed = True
    print("benchcheck: %s %.2fx (required %.2fx) %s"
          % (label, speedup, required, verdict))

gate("Gram scaling 4w vs 1w at m=256",
     ("Gram", 256, 1), ("Gram", 256, 4), 4, gram_speedup)
gate("ingest scaling 8 vs 1 collectors",
     ("IngestCollectors", 0, 1), ("IngestCollectors", 0, 8), 8, ingest_speedup)

# FD-retrain gate (PR8): the single-worker FD model build at m=256 must beat
# the Jacobi full rebuild at the same m, composed within this run from its
# two tracked kernels (Gram over the 200x256 sketch matrix + the 256x256
# eigensolve). Within-run and single-worker on both sides, so host speed and
# core count cancel; tiny runners still skip — their 1x-benchtime cells are
# too noisy for a trustworthy ratio.
label = "FD retrain vs Jacobi rebuild at m=256"
if not scaling:
    print("benchcheck: %s skipped (BENCHCHECK_SCALING=0)" % label)
elif nproc < 2:
    print("benchcheck: %s skipped (host has %d cores, need >= 2)"
          % (label, nproc))
else:
    gram = cells.get(("Gram", 256, 1))
    eigen = cells.get(("SymEigen", 256, 1))
    fd = cells.get(("FDModelBuild", 256, 1))
    if not gram or not eigen or not fd:
        print("benchcheck: %s not measured (cells missing)" % label)
    else:
        speedup = (min(gram) + min(eigen)) / min(fd)
        verdict = "ok"
        if speedup < fd_speedup:
            verdict = "FAILED"
            failed = True
        print("benchcheck: %s %.2fx (required %.2fx) %s"
              % (label, speedup, fd_speedup, verdict))

# Merge-throughput floor (PR9): each AggregatorMerge op consumes 4 shard
# snapshots, so throughput = 4e9 / ns_op. Absolute floors (not within-run
# ratios) set far below the reference host's numbers — they catch
# catastrophic slowdowns (an accidental O(m^2) in the union path, FD merge
# re-running per row) on any host while the 20% tolerance above guards the
# fine-grained budget on calibrated ones.
for (op, l, _w), v in sorted(cells.items()):
    if not op.startswith("AggregatorMerge/"):
        continue
    floor = merge_floor_fd if op.endswith("=fd") else merge_floor
    sps = 4e9 / min(v)
    verdict = "ok"
    if sps < floor:
        verdict = "FAILED"
        failed = True
    print("benchcheck: merge throughput %-26s %10.1f sketches/s "
          "(floor %g) %s" % ("%s/l=%d" % (op, l), sps, floor, verdict))

# Identification-latency floor (PR10): the worst-case pursuit cell
# (m=256 flows, culprit budget k=8) must sustain identify_floor
# identifications per second. Like the merge floors this is an absolute
# bound set far below the reference host — it catches algorithmic blowups
# in the selection loop, not host variance.
ident = cells.get(("Identify", 256, 8))
if ident:
    ips = 1e9 / min(ident)
    verdict = "ok"
    if ips < identify_floor:
        verdict = "FAILED"
        failed = True
    print("benchcheck: identify throughput m=256/k=8 %10.1f identifications/s "
          "(floor %g) %s" % (ips, identify_floor, verdict))
else:
    print("benchcheck: identify throughput not measured (cell missing)")

if failed:
    print("benchcheck: FAILED (>%g%% regression or scaling gate miss; rerun "
          "scripts/bench.sh to refresh the baseline if the change is "
          "intentional)" % tolerance)
    sys.exit(1)
print("benchcheck: all cells within %g%% of baseline" % tolerance)
EOF
