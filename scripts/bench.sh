#!/usr/bin/env bash
# Runs the tracked benchmark cells — the kernel worker sweeps (Gram, Mul,
# SymEigen, MonitorUpdate at workers 1/2/4/8), the PR8 sketcher-family cells
# (FDUpdate, FDModelBuild, RSVDBuild at m=64/256, workers 1/4), the ingest
# benchmarks (IngestDecode, IngestPipeline at 1/2/4 shards, IngestCollectors
# at 1/2/4/8 concurrent producers), the PR6 tracing cells
# (TracedSketchUpdate at mode=base/off/on) and the PR9 aggregator-merge
# cells (AggregatorMerge at l=64/128, both sketcher families) and the PR10
# identification cells (Identify at m=64/256, culprit budget k=1/8) — and
# writes BENCH_PR10.json at the repo root: one record per cell with the
# median ns/op over COUNT runs.
#
# Usage: scripts/bench.sh [-count N] [-benchtime D] [-cpuprofile]
#
# -benchtime applies to the kernel cells (whose single iterations are large
# enough to time); the ingest cells always run 20000 iterations per
# measurement — one iteration is a single ~µs datagram, and the run must be
# long enough to amortize the shard queues' capacity (up to 1024 buffered
# datagrams) so the cell reflects steady-state producer↔shard coupling, not
# just enqueue cost.
#
# -cpuprofile switches to a short profile-capture mode: each benchmark group
# runs once (count=1) with -cpuprofile, writing pprof files and test
# binaries under ci-artifacts/bench-profiles/ for artifact upload (the same
# pattern as the chaos flight-recorder JSONL). No JSON baseline is written
# in this mode — profiles and medians come from separate runs by design.
#
# The absolute numbers and the parallel speedup depend on the host's core
# count; run `nproc` alongside and record it (EXPERIMENTS.md does). On a
# single-core host the worker and collector sweeps measure overhead, not
# speedup — see the PR7 section of EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=1x
PROFILE=0
while [ $# -gt 0 ]; do
  case "$1" in
    -count) COUNT="$2"; shift 2 ;;
    -benchtime) BENCHTIME="$2"; shift 2 ;;
    -cpuprofile) PROFILE=1; shift ;;
    *) echo "unknown flag $1" >&2; exit 2 ;;
  esac
done

KERNEL_BENCH='BenchmarkGram/|BenchmarkMul/|BenchmarkSymEigen/m=|BenchmarkMonitorUpdate/|BenchmarkFDUpdate/|BenchmarkFDModelBuild/|BenchmarkRSVDBuild/|BenchmarkIdentify/'
INGEST_BENCH='BenchmarkIngestDecode$|BenchmarkIngestPipeline/|BenchmarkIngestCollectors/'
MERGE_BENCH='BenchmarkAggregatorMerge/'

if [ "$PROFILE" = "1" ]; then
  PROFDIR=ci-artifacts/bench-profiles
  mkdir -p "$PROFDIR"
  echo "capturing CPU profiles into $PROFDIR (benchtime=$BENCHTIME)..." >&2
  go test . -run 'XXX' -bench "$KERNEL_BENCH" -benchtime "$BENCHTIME" \
    -cpuprofile "$PROFDIR/kernel.pprof" -o "$PROFDIR/kernel.test" >&2
  go test ./internal/ingest -run 'XXX' -bench "$INGEST_BENCH" -benchtime 20000x \
    -cpuprofile "$PROFDIR/ingest.pprof" -o "$PROFDIR/ingest.test" >&2
  go test . -run 'XXX' -bench 'BenchmarkTracedSketchUpdate/' -benchtime 5000x \
    -cpuprofile "$PROFDIR/traced.pprof" -o "$PROFDIR/traced.test" >&2
  go test ./internal/agg -run 'XXX' -bench "$MERGE_BENCH" -benchtime 20x \
    -cpuprofile "$PROFDIR/merge.pprof" -o "$PROFDIR/merge.test" >&2
  echo "wrote $(ls "$PROFDIR"/*.pprof | wc -l) profiles to $PROFDIR" >&2
  exit 0
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running kernel benchmarks (count=$COUNT benchtime=$BENCHTIME, GOMAXPROCS=$(nproc))..." >&2
go test . -run 'XXX' \
  -bench "$KERNEL_BENCH" \
  -benchtime "$BENCHTIME" -count "$COUNT" | tee "$RAW" >&2

echo "running ingest benchmarks (count=$COUNT benchtime=20000x)..." >&2
go test ./internal/ingest -run 'XXX' \
  -bench "$INGEST_BENCH" \
  -benchtime 20000x -count "$COUNT" | tee -a "$RAW" >&2

# One traced iteration is a single ~130µs sketch update; 5000 iterations per
# measurement keeps the base/off/on comparison above the timer noise floor.
# COUNT separate invocations (not one -count=COUNT run) interleave the three
# modes in time, so host drift over the run can't bias the later modes — the
# off-vs-base overhead gate in benchcheck.sh depends on that comparison
# staying honest.
echo "running tracing benchmarks ($COUNT interleaved runs, benchtime=5000x)..." >&2
for _ in $(seq "$COUNT"); do
  go test . -run 'XXX' \
    -bench 'BenchmarkTracedSketchUpdate/' \
    -benchtime 5000x | tee -a "$RAW" >&2
done

# One merge iteration combines 4 shard snapshots; the FD cells rebuild a
# fresh FD per merge (~50-100ms each), so 20 iterations per measurement is
# already seconds of work — enough to dominate timer noise without
# stretching CI.
echo "running aggregator merge benchmarks (count=$COUNT benchtime=20x)..." >&2
go test ./internal/agg -run 'XXX' \
  -bench "$MERGE_BENCH" \
  -benchtime 20x -count "$COUNT" | tee -a "$RAW" >&2

python3 - "$RAW" <<'EOF' > BENCH_PR10.json
import json, re, statistics, sys

# Benchmark lines look like (the -N GOMAXPROCS suffix is absent when
# GOMAXPROCS is 1):
#   BenchmarkGram/m=256/workers=4-8            100   1234567 ns/op
#   BenchmarkMul/shape=200x1024x256/workers=4   50   2345678 ns/op
#   BenchmarkIngestCollectors/collectors=8-8  1000      9107 ns/op ...
kernel = re.compile(
    r'^Benchmark(Gram|SymEigen|MonitorUpdate|FDUpdate|FDModelBuild|RSVDBuild)/'
    r'(?:m|flows)=(\d+)/workers=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Mul carries its shape in the op name; m records the inner dimension.
mul = re.compile(
    r'^BenchmarkMul/shape=\d+x(\d+)x\d+/workers=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Ingest cells reuse the same record shape: m=0 (no size sweep), workers =
# shard/collector count (1 for the decode microbenchmark).
ingest = re.compile(
    r'^Benchmark(IngestDecode|IngestPipeline|IngestCollectors)'
    r'(?:/(?:shards|collectors)=(\d+))?(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Tracing cells: the op carries the mode (base = raw update, off = nil
# tracer through the call site, on = recording); m=0, workers=1.
traced = re.compile(
    r'^BenchmarkTracedSketchUpdate/(mode=\w+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Aggregator merge cells (PR9): the op carries the family, m records the
# shared sketch parameter l, workers=1 (serveFetch's merge cost per fetch).
merge = re.compile(
    r'^BenchmarkAggregatorMerge/family=(\w+)/l=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Identification cells (PR10): m is the flow count, the workers slot holds
# the culprit budget k (each cell is a serial pursuit).
identify = re.compile(
    r'^BenchmarkIdentify/m=(\d+)/k=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
cells = {}
for line in open(sys.argv[1]):
    m = kernel.match(line)
    if m:
        key = (m.group(1), int(m.group(2)), int(m.group(3)))
        cells.setdefault(key, []).append(float(m.group(4)))
        continue
    m = mul.match(line)
    if m:
        key = ("Mul", int(m.group(1)), int(m.group(2)))
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = ingest.match(line)
    if m:
        key = (m.group(1), 0, int(m.group(2) or 1))
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = traced.match(line)
    if m:
        key = ("TracedSketchUpdate/" + m.group(1), 0, 1)
        cells.setdefault(key, []).append(float(m.group(2)))
        continue
    m = merge.match(line)
    if m:
        key = ("AggregatorMerge/family=" + m.group(1), int(m.group(2)), 1)
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = identify.match(line)
    if m:
        key = ("Identify", int(m.group(1)), int(m.group(2)))
        cells.setdefault(key, []).append(float(m.group(3)))

records = [
    {"op": op, "m": size, "workers": w,
     "ns_op": statistics.median(v), "runs": len(v)}
    for (op, size, w), v in sorted(cells.items())
]
json.dump(records, sys.stdout, indent=2)
print()
EOF

echo "wrote BENCH_PR10.json ($(python3 -c 'import json;print(len(json.load(open("BENCH_PR10.json"))))') cells)" >&2
