#!/usr/bin/env bash
# Runs the PR2 worker-sweep benchmarks (Gram, SymEigen, MonitorUpdate) and
# writes BENCH_PR2.json at the repo root: one record per (op, m, workers)
# cell with the median ns/op over COUNT runs.
#
# Usage: scripts/bench.sh [-count N] [-benchtime D]
#
# The absolute numbers and the parallel speedup depend on the host's core
# count; run `nproc` alongside and record it (EXPERIMENTS.md does).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=1x
while [ $# -gt 0 ]; do
  case "$1" in
    -count) COUNT="$2"; shift 2 ;;
    -benchtime) BENCHTIME="$2"; shift 2 ;;
    *) echo "unknown flag $1" >&2; exit 2 ;;
  esac
done

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (count=$COUNT benchtime=$BENCHTIME, GOMAXPROCS=$(nproc))..." >&2
go test . -run 'XXX' \
  -bench 'BenchmarkGram/|BenchmarkSymEigen/m=|BenchmarkMonitorUpdate/' \
  -benchtime "$BENCHTIME" -count "$COUNT" | tee "$RAW" >&2

python3 - "$RAW" <<'EOF' > BENCH_PR2.json
import json, re, statistics, sys

# Benchmark lines look like (the -N GOMAXPROCS suffix is absent when
# GOMAXPROCS is 1):
#   BenchmarkGram/m=256/workers=4-8   100   1234567 ns/op
pat = re.compile(
    r'^Benchmark(Gram|SymEigen|MonitorUpdate)/'
    r'(?:m|flows)=(\d+)/workers=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
cells = {}
for line in open(sys.argv[1]):
    m = pat.match(line)
    if m:
        key = (m.group(1), int(m.group(2)), int(m.group(3)))
        cells.setdefault(key, []).append(float(m.group(4)))

records = [
    {"op": op, "m": size, "workers": w,
     "ns_op": statistics.median(v), "runs": len(v)}
    for (op, size, w), v in sorted(cells.items())
]
json.dump(records, sys.stdout, indent=2)
print()
EOF

echo "wrote BENCH_PR2.json ($(python3 -c 'import json;print(len(json.load(open("BENCH_PR2.json"))))') cells)" >&2
