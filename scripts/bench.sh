#!/usr/bin/env bash
# Runs the tracked benchmark cells — the PR2 worker-sweep kernels (Gram,
# SymEigen, MonitorUpdate), the PR5 ingest benchmarks (IngestDecode,
# IngestPipeline at 1/2/4 shards) and the PR6 tracing cells
# (TracedSketchUpdate at mode=base/off/on) — and writes BENCH_PR6.json at
# the repo root: one record per cell with the median ns/op over COUNT runs.
#
# Usage: scripts/bench.sh [-count N] [-benchtime D]
#
# -benchtime applies to the kernel cells (whose single iterations are large
# enough to time); the ingest cells always run 20000 iterations per
# measurement — one iteration is a single ~µs datagram, and the run must be
# long enough to amortize the shard queues' capacity (up to 1024 buffered
# datagrams) so the cell reflects steady-state producer↔shard coupling, not
# just enqueue cost.
#
# The absolute numbers and the parallel speedup depend on the host's core
# count; run `nproc` alongside and record it (EXPERIMENTS.md does).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=1x
while [ $# -gt 0 ]; do
  case "$1" in
    -count) COUNT="$2"; shift 2 ;;
    -benchtime) BENCHTIME="$2"; shift 2 ;;
    *) echo "unknown flag $1" >&2; exit 2 ;;
  esac
done

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running kernel benchmarks (count=$COUNT benchtime=$BENCHTIME, GOMAXPROCS=$(nproc))..." >&2
go test . -run 'XXX' \
  -bench 'BenchmarkGram/|BenchmarkSymEigen/m=|BenchmarkMonitorUpdate/' \
  -benchtime "$BENCHTIME" -count "$COUNT" | tee "$RAW" >&2

echo "running ingest benchmarks (count=$COUNT benchtime=20000x)..." >&2
go test ./internal/ingest -run 'XXX' \
  -bench 'BenchmarkIngestDecode$|BenchmarkIngestPipeline/' \
  -benchtime 20000x -count "$COUNT" | tee -a "$RAW" >&2

# One traced iteration is a single ~130µs sketch update; 5000 iterations per
# measurement keeps the base/off/on comparison above the timer noise floor.
# COUNT separate invocations (not one -count=COUNT run) interleave the three
# modes in time, so host drift over the run can't bias the later modes — the
# off-vs-base overhead gate in benchcheck.sh depends on that comparison
# staying honest.
echo "running tracing benchmarks ($COUNT interleaved runs, benchtime=5000x)..." >&2
for _ in $(seq "$COUNT"); do
  go test . -run 'XXX' \
    -bench 'BenchmarkTracedSketchUpdate/' \
    -benchtime 5000x | tee -a "$RAW" >&2
done

python3 - "$RAW" <<'EOF' > BENCH_PR6.json
import json, re, statistics, sys

# Benchmark lines look like (the -N GOMAXPROCS suffix is absent when
# GOMAXPROCS is 1):
#   BenchmarkGram/m=256/workers=4-8            100   1234567 ns/op
#   BenchmarkIngestPipeline/shards=4-8        1000      9107 ns/op ...
kernel = re.compile(
    r'^Benchmark(Gram|SymEigen|MonitorUpdate)/'
    r'(?:m|flows)=(\d+)/workers=(\d+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Ingest cells reuse the same record shape: m=0 (no size sweep), workers =
# shard count (1 for the decode microbenchmark).
ingest = re.compile(
    r'^Benchmark(IngestDecode|IngestPipeline)'
    r'(?:/shards=(\d+))?(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
# Tracing cells: the op carries the mode (base = raw update, off = nil
# tracer through the call site, on = recording); m=0, workers=1.
traced = re.compile(
    r'^BenchmarkTracedSketchUpdate/(mode=\w+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op')
cells = {}
for line in open(sys.argv[1]):
    m = kernel.match(line)
    if m:
        key = (m.group(1), int(m.group(2)), int(m.group(3)))
        cells.setdefault(key, []).append(float(m.group(4)))
        continue
    m = ingest.match(line)
    if m:
        key = (m.group(1), 0, int(m.group(2) or 1))
        cells.setdefault(key, []).append(float(m.group(3)))
        continue
    m = traced.match(line)
    if m:
        key = ("TracedSketchUpdate/" + m.group(1), 0, 1)
        cells.setdefault(key, []).append(float(m.group(2)))

records = [
    {"op": op, "m": size, "workers": w,
     "ns_op": statistics.median(v), "runs": len(v)}
    for (op, size, w), v in sorted(cells.items())
]
json.dump(records, sys.stdout, indent=2)
print()
EOF

echo "wrote BENCH_PR6.json ($(python3 -c 'import json;print(len(json.load(open("BENCH_PR6.json"))))') cells)" >&2
