package streampca

// Benchmark harness: one benchmark per evaluation figure of the paper plus
// the Theorem 1 complexity microbenchmarks and ablations over the design
// choices called out in DESIGN.md. The figure benchmarks run the same code
// paths as cmd/abilene-eval on reduced dimensions so the whole suite
// completes in minutes; the binary regenerates the full-size figures.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/eval"
	"streampca/internal/ewma"
	"streampca/internal/filter"
	"streampca/internal/markov"
	"streampca/internal/mat"
	"streampca/internal/obs"
	"streampca/internal/pca"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
	"streampca/internal/stats"
	"streampca/internal/trace"
	"streampca/internal/traffic"
	"streampca/internal/vh"
)

// benchTrace caches one eval workload across benchmarks.
func benchTrace(b *testing.B, perDay, total, warmup int) *traffic.Trace {
	b.Helper()
	tr, err := eval.BuildEvalTrace(2008, total, perDay, warmup)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkFig05CoordinatedTrace regenerates the Fig. 5 workload: a
// synthetic Abilene trace with a coordinated low-profile anomaly and the
// four plotted OD-flow series.
func BenchmarkFig05CoordinatedTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, start, end, err := eval.BuildFig5Trace(3, 2*traffic.IntervalsPerDay5Min)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eval.ExtractSeries(tr, eval.Fig5Flows, start-10, end+10); err != nil {
			b.Fatal(err)
		}
	}
}

// errorSurfaceBench runs the Fig. 7/8 pipeline (ground truth + (r,l) error
// sweep) on a reduced grid.
func errorSurfaceBench(b *testing.B, perDay int) {
	window := perDay / 4
	total := perDay
	tr := benchTrace(b, perDay, total, window)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truth, err := eval.GroundTruth(tr.Volumes, eval.TruthConfig{
			WindowLen: window, Rank: 6, Alpha: 0.01, RefitEvery: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		points, err := eval.SweepErrors(tr.Volumes, truth, eval.SweepConfig{
			WindowLen: window, Epsilon: 0.01, Alpha: 0.01, Seed: 9,
			Ranks:      []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			SketchLens: []int{10, 50},
			RefitEvery: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 20 {
			b.Fatalf("points = %d", len(points))
		}
	}
}

// BenchmarkFig07ErrorSurface5Min exercises the Fig. 7 pipeline (5-minute
// intervals).
func BenchmarkFig07ErrorSurface5Min(b *testing.B) {
	errorSurfaceBench(b, traffic.IntervalsPerDay5Min)
}

// BenchmarkFig08ErrorSurface1Min exercises the Fig. 8 pipeline (1-minute
// intervals; same algorithmic path, finer-grained workload).
func BenchmarkFig08ErrorSurface1Min(b *testing.B) {
	errorSurfaceBench(b, traffic.IntervalsPerDay1Min/4)
}

// BenchmarkFig09ErrorsVsSketchLen exercises the Fig. 9 pipeline: r fixed at
// 6, sweeping the sketch length.
func BenchmarkFig09ErrorsVsSketchLen(b *testing.B) {
	perDay := traffic.IntervalsPerDay5Min
	window := perDay / 4
	tr := benchTrace(b, perDay, perDay, window)
	truth, err := eval.GroundTruth(tr.Volumes, eval.TruthConfig{
		WindowLen: window, Rank: 6, Alpha: 0.01, RefitEvery: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.SweepErrors(tr.Volumes, truth, eval.SweepConfig{
			WindowLen: window, Epsilon: 0.01, Alpha: 0.01, Seed: 9,
			Ranks: []int{6}, SketchLens: []int{10, 50, 200}, RefitEvery: 16,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10NOCOverhead regenerates the Fig. 10 comparison: the NOC's
// model rebuild from raw windows (m²·n work) vs from sketches (m²·l work),
// measured on the real Gram+eigendecomposition pipeline.
func BenchmarkFig10NOCOverhead(b *testing.B) {
	const m = 81
	for _, rows := range []int{50, 200, 1000, 4032} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := mat.NewMatrix(rows, m)
			for i := 0; i < rows; i++ {
				r := x.RowView(i)
				for j := range r {
					r[j] = rng.NormFloat64()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mat.SymEigen(x.Gram()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalMonitorUpdate measures the Theorem 1 local-monitor cost
// O(w·log n) per interval across window lengths and sketch sizes.
func BenchmarkLocalMonitorUpdate(b *testing.B) {
	const w = 9 // flows per monitor
	for _, n := range []int{512, 4096} {
		for _, l := range []int{32, 200} {
			b.Run(fmt.Sprintf("n=%d/l=%d", n, l), func(b *testing.B) {
				gen, err := randproj.NewGenerator(randproj.Config{Seed: 1, SketchLen: l, WindowLen: n})
				if err != nil {
					b.Fatal(err)
				}
				flowIDs := make([]int, w)
				for j := range flowIDs {
					flowIDs[j] = j
				}
				mon, err := core.NewMonitor(core.MonitorConfig{
					FlowIDs: flowIDs, WindowLen: n, Epsilon: 0.1, Gen: gen,
				})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(2))
				volumes := make([]float64, w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range volumes {
						volumes[j] = 1000 + 50*rng.NormFloat64()
					}
					if err := mon.Update(int64(i+1), volumes); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInstrumentedSketchUpdate is BenchmarkLocalMonitorUpdate plus the
// exact per-interval observability work internal/monitor performs (latency
// histogram observe, interval counter, VH state-size and last-interval
// gauges). Comparing the two quantifies the instrumentation overhead, which
// must stay under ~5%; EXPERIMENTS.md records the measured numbers.
func BenchmarkInstrumentedSketchUpdate(b *testing.B) {
	const w = 9 // flows per monitor, matching BenchmarkLocalMonitorUpdate
	for _, n := range []int{512, 4096} {
		for _, l := range []int{32, 200} {
			b.Run(fmt.Sprintf("n=%d/l=%d", n, l), func(b *testing.B) {
				gen, err := randproj.NewGenerator(randproj.Config{Seed: 1, SketchLen: l, WindowLen: n})
				if err != nil {
					b.Fatal(err)
				}
				flowIDs := make([]int, w)
				for j := range flowIDs {
					flowIDs[j] = j
				}
				mon, err := core.NewMonitor(core.MonitorConfig{
					FlowIDs: flowIDs, WindowLen: n, Epsilon: 0.1, Gen: gen,
				})
				if err != nil {
					b.Fatal(err)
				}
				reg := obs.NewRegistry()
				updateSeconds := reg.Histogram("streampca_monitor_update_seconds", "", nil)
				intervals := reg.Counter("streampca_monitor_intervals_total", "")
				vhBuckets := reg.Gauge("streampca_monitor_vh_buckets", "")
				lastInterval := reg.Gauge("streampca_monitor_last_interval", "")
				rng := rand.New(rand.NewSource(2))
				volumes := make([]float64, w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range volumes {
						volumes[j] = 1000 + 50*rng.NormFloat64()
					}
					start := time.Now()
					if err := mon.Update(int64(i+1), volumes); err != nil {
						b.Fatal(err)
					}
					updateSeconds.Observe(time.Since(start).Seconds())
					vhBuckets.Set(float64(mon.NumBucketsTotal()))
					intervals.Inc()
					lastInterval.Set(float64(i + 1))
				}
			})
		}
	}
}

// tracedBenchUpdate is one sketch update through the exact span pattern
// monitor.ReportInterval uses: a "monitor.update" span with the interval
// attrs, a sketch_updated event, End. With a nil tracer every trace call is
// a pointer-check no-op — the "off" cell measures precisely that disabled
// cost at a live call site.
func tracedBenchUpdate(tr *trace.Tracer, mon *core.Monitor, t int64, volumes []float64) error {
	sp := tr.Start(trace.ForInterval(t), 0, "monitor.update",
		trace.S("monitor", "bench"),
		trace.I("interval", t),
		trace.I("flows", int64(len(volumes))))
	if err := mon.Update(t, volumes); err != nil {
		sp.Event("update_error", trace.S("err", err.Error()))
		sp.End()
		return err
	}
	sp.Event("sketch_updated", trace.I("vh_buckets", int64(mon.NumBucketsTotal())))
	sp.End()
	return nil
}

// BenchmarkTracedSketchUpdate quantifies the lineage-tracing tax on the
// monitor's hot path. Three cells, same workload: "base" is the raw sketch
// update with no trace calls at all; "off" threads a nil tracer through the
// instrumented call site (what every untraced deployment pays — the ≤5%
// acceptance bound from PR 6); "on" records the span into an enabled
// tracer's ring. scripts/bench.sh and scripts/benchcheck.sh parse these
// cells into BENCH_PR6.json, and benchcheck additionally fails when
// off-vs-base exceeds BENCHCHECK_TRACE_TOLERANCE percent.
func BenchmarkTracedSketchUpdate(b *testing.B) {
	const w, n, l = 9, 4096, 32
	newMon := func(b *testing.B) *core.Monitor {
		gen, err := randproj.NewGenerator(randproj.Config{Seed: 1, SketchLen: l, WindowLen: n})
		if err != nil {
			b.Fatal(err)
		}
		flowIDs := make([]int, w)
		for j := range flowIDs {
			flowIDs[j] = j
		}
		mon, err := core.NewMonitor(core.MonitorConfig{
			FlowIDs: flowIDs, WindowLen: n, Epsilon: 0.1, Gen: gen,
		})
		if err != nil {
			b.Fatal(err)
		}
		return mon
	}
	b.Run("mode=base", func(b *testing.B) {
		mon := newMon(b)
		rng := rand.New(rand.NewSource(2))
		volumes := make([]float64, w)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range volumes {
				volumes[j] = 1000 + 50*rng.NormFloat64()
			}
			if err := mon.Update(int64(i+1), volumes); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []struct {
		name   string
		tracer *trace.Tracer
	}{
		{"mode=off", nil},
		{"mode=on", trace.New(trace.Config{Component: "bench"})},
	} {
		b.Run(mode.name, func(b *testing.B) {
			mon := newMon(b)
			rng := rand.New(rand.NewSource(2))
			volumes := make([]float64, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range volumes {
					volumes[j] = 1000 + 50*rng.NormFloat64()
				}
				if err := tracedBenchUpdate(mode.tracer, mon, int64(i+1), volumes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNOCRecompute measures the NOC-side sketch-PCA rebuild
// (O(m²·l) + eigendecomposition) across sketch lengths.
func BenchmarkNOCRecompute(b *testing.B) {
	const m = 81
	for _, l := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			sketches := make([][]float64, m)
			means := make([]float64, m)
			for j := range sketches {
				s := make([]float64, l)
				for k := range s {
					s[k] = rng.NormFloat64()
				}
				sketches[j] = s
				means[j] = 1000
			}
			det, err := core.NewDetector(core.DetectorConfig{
				NumFlows: m, WindowLen: 4032, SketchLen: l, Alpha: 0.01, FixedRank: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := det.RebuildModel(sketches, means, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLakhinaRecompute measures the exact method's per-retraining cost
// for contrast with BenchmarkNOCRecompute (the n-vs-l gap of Fig. 10).
func BenchmarkLakhinaRecompute(b *testing.B) {
	const m = 81
	for _, n := range []int{576, 4032} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			x := mat.NewMatrix(n, m)
			for i := 0; i < n; i++ {
				row := x.RowView(i)
				for j := range row {
					row[j] = 1000 + 50*rng.NormFloat64()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pca.Fit(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVHUpdate isolates a single variance histogram's per-element cost
// across ε (ablation: merge aggressiveness vs bucket count).
func BenchmarkVHUpdate(b *testing.B) {
	for _, eps := range []float64{0.01, 0.1, 0.5} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			gen, err := randproj.NewGenerator(randproj.Config{Seed: 1, SketchLen: 64})
			if err != nil {
				b.Fatal(err)
			}
			h, err := vh.New(vh.Config{WindowLen: 2048, Epsilon: eps, Gen: gen})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Update(int64(i+1), 100+rng.NormFloat64()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.NumBuckets()), "buckets")
		})
	}
}

// BenchmarkSketchDistributions ablates the projection family (§V-B): the
// Gaussian draw needs an inverse-CDF evaluation, tug-of-war a coin flip and
// the sparse families mostly skip work.
func BenchmarkSketchDistributions(b *testing.B) {
	configs := map[string]randproj.Config{
		"gaussian":    {Seed: 1, SketchLen: 256},
		"tug-of-war":  {Seed: 1, SketchLen: 256, Dist: randproj.TugOfWar},
		"sparse-s3":   {Seed: 1, SketchLen: 256, Dist: randproj.Sparse, SparseS: 3},
		"very-sparse": {Seed: 1, SketchLen: 256, Dist: randproj.VerySparse, WindowLen: 4096},
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			gen, err := randproj.NewGenerator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.Row(int64(i))
			}
		})
	}
}

// BenchmarkQStatistic measures the threshold computation.
func BenchmarkQStatistic(b *testing.B) {
	sv := make([]float64, 81)
	v := 1000.0
	for i := range sv {
		sv[i] = v
		v *= 0.85
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.QStatistic(sv, 4032, 6, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorDistance measures the per-interval O(m²) detection cost
// at the NOC.
func BenchmarkDetectorDistance(b *testing.B) {
	const m, l = 81, 128
	rng := rand.New(rand.NewSource(6))
	sketches := make([][]float64, m)
	means := make([]float64, m)
	for j := range sketches {
		s := make([]float64, l)
		for k := range s {
			s[k] = rng.NormFloat64()
		}
		sketches[j] = s
	}
	det, err := core.NewDetector(core.DetectorConfig{
		NumFlows: m, WindowLen: 4032, SketchLen: l, Alpha: 0.01, FixedRank: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := det.RebuildModel(sketches, means, 1); err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Distance(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdentify measures the anomography pursuit on an alarmed
// measurement: per selection round an m-coordinate residual read plus a
// k×k least-squares refit, so the cost grows with both the flow count and
// the culprit budget. Twelve spiked flows keep the residual above the
// Q-threshold through every round, so the k=8 cells do the full eight
// selections rather than stopping early — the worst case the
// identification-latency floor in scripts/benchcheck.sh guards.
func BenchmarkIdentify(b *testing.B) {
	for _, m := range []int{64, 256} {
		const l = 128
		rng := rand.New(rand.NewSource(11))
		sketches := make([][]float64, m)
		means := make([]float64, m)
		for j := range sketches {
			s := make([]float64, l)
			for k := range s {
				s[k] = rng.NormFloat64()
			}
			sketches[j] = s
		}
		det, err := core.NewDetector(core.DetectorConfig{
			NumFlows: m, WindowLen: 4032, SketchLen: l, Alpha: 0.01, FixedRank: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := det.RebuildModel(sketches, means, 1); err != nil {
			b.Fatal(err)
		}
		x := make([]float64, m)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		for s := 0; s < 12; s++ {
			x[(s*m)/12] += 500
		}
		for _, k := range []int{1, 8} {
			b.Run(fmt.Sprintf("m=%d/k=%d", m, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					id, err := det.Identify(x, k)
					if err != nil {
						b.Fatal(err)
					}
					if len(id.Flows) == 0 {
						b.Fatal("pursuit identified nothing — the cell is not measuring selection work")
					}
				}
			})
		}
	}
}

// BenchmarkSymEigen and BenchmarkSVD size the linear-algebra substrate. The
// legacy sizes (n=20, 81) run serial; the PR2 sizes (n=64, 256) sweep the
// worker count of the round-robin Jacobi solver — scripts/bench.sh parses
// these into the tracked baseline (BENCH_PR5.json). n=64 sits below the parEigenMinN fallback, so
// its worker variants document the (flat) serial-fallback cost.
func BenchmarkSymEigen(b *testing.B) {
	bench := func(n, workers int) func(b *testing.B) {
		return func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			a := mat.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					v := rng.NormFloat64()
					a.Set(i, j, v)
					a.Set(j, i, v)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mat.SymEigenWorkers(a, workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for _, n := range []int{20, 81} {
		b.Run(fmt.Sprintf("n=%d", n), bench(n, 1))
	}
	for _, n := range []int{64, 256} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("m=%d/workers=%d", n, w), bench(n, w))
		}
	}
}

// BenchmarkGram sweeps the row-parallel Gram kernel over the PR2 grid: the
// sketch matrix shape is l×m with l=200 (the paper's default sketch length)
// and m the network-wide flow count.
func BenchmarkGram(b *testing.B) {
	const l = 200
	rng := rand.New(rand.NewSource(14))
	for _, m := range []int{64, 256} {
		z := mat.NewMatrix(l, m)
		for i := 0; i < l; i++ {
			row := z.RowView(i)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("m=%d/workers=%d", m, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = z.GramWorkers(w)
				}
			})
		}
	}
}

// BenchmarkMul sweeps the blocked-tile MulWorkers kernel over the worker
// grid on a NOC-shaped product (model projection: a tall window panel times
// a flow-space operator). The inner dimension exceeds one L2 panel of the
// right operand, so the k-blocking path is exercised, not just sharding.
func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	const rows, inner, cols = 200, 1024, 256
	a := mat.NewMatrix(rows, inner)
	for i := 0; i < rows; i++ {
		row := a.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	o := mat.NewMatrix(inner, cols)
	for i := 0; i < inner; i++ {
		row := o.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shape=%dx%dx%d/workers=%d", rows, inner, cols, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.MulWorkers(o, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorUpdate sweeps the sharded per-interval sketch update over
// the worker grid at a fat-monitor flow count (1024 flows on one box is the
// regime the parallel update path targets).
func BenchmarkMonitorUpdate(b *testing.B) {
	const flows = 1024
	const window = 4096
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("flows=%d/workers=%d", flows, w), func(b *testing.B) {
			gen, err := randproj.NewGenerator(randproj.Config{Seed: 1, SketchLen: 100, WindowLen: window})
			if err != nil {
				b.Fatal(err)
			}
			flowIDs := make([]int, flows)
			for j := range flowIDs {
				flowIDs[j] = j
			}
			mon, err := core.NewMonitor(core.MonitorConfig{
				FlowIDs: flowIDs, WindowLen: window, Epsilon: 0.1, Gen: gen, Workers: w,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			volumes := make([]float64, flows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range volumes {
					volumes[j] = 1000 + 50*rng.NormFloat64()
				}
				if err := mon.Update(int64(i+1), volumes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFDUpdate measures the Frequent Directions sketcher's per-interval
// cost at fat-monitor flow counts. Each iteration appends one centered row;
// the ℓ-amortized shrink (a 2ℓ×2ℓ eigensolve plus the buffer rescale through
// the blocked-tile kernels) is folded into the average, so the cell reports
// the steady-state per-interval cost, not the append-only fast path.
// scripts/bench.sh tracks these cells in the BENCH_PR8.json baseline.
func BenchmarkFDUpdate(b *testing.B) {
	for _, m := range []int{64, 256} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("m=%d/workers=%d", m, w), func(b *testing.B) {
				flowIDs := make([]int, m)
				for j := range flowIDs {
					flowIDs[j] = j
				}
				fd, err := sketch.NewFD(sketch.Config{FlowIDs: flowIDs, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(16))
				volumes := make([]float64, m)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range volumes {
						volumes[j] = 1000 + 50*rng.NormFloat64()
					}
					if err := fd.Update(int64(i+1), volumes); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRSVDBuild measures the NOC model rebuild through the randomized
// range-finder SVD on the l×m sketch matrix (never forming the m×m Gram),
// for contrast with the Jacobi cells (BenchmarkGram + BenchmarkSymEigen at
// the same m cover the full-rebuild path benchcheck.sh gates against).
func BenchmarkRSVDBuild(b *testing.B) {
	const l = 200
	for _, m := range []int{64, 256} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("m=%d/workers=%d", m, w), func(b *testing.B) {
				rng := rand.New(rand.NewSource(17))
				sketches := make([][]float64, m)
				means := make([]float64, m)
				for j := range sketches {
					s := make([]float64, l)
					for k := range s {
						s[k] = rng.NormFloat64()
					}
					sketches[j] = s
				}
				det, err := core.NewDetector(core.DetectorConfig{
					NumFlows: m, WindowLen: 4032, SketchLen: l, Alpha: 0.01,
					FixedRank: 6, Builder: core.BuildRSVD, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := det.RebuildModel(sketches, means, int64(i+1)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFDModelBuild measures the FD-family NOC retrain: per-block
// small-side eigensolves (≤ 2ℓ×2ℓ each) over the monitors' basis blocks plus
// the global spectrum merge. benchcheck.sh's FD-retrain gate requires the
// m=256 single-worker cell to beat the Jacobi full rebuild at the same m
// (BenchmarkGram + BenchmarkSymEigen, both at m=256/workers=1) by
// BENCHCHECK_FD_SPEEDUP — the headline retrain-cost advantage of the family.
func BenchmarkFDModelBuild(b *testing.B) {
	const flowsPerBlock = 32 // ℓ = DefaultEll(32) = 12, so 2ℓ < w: real truncation
	for _, m := range []int{64, 256} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("m=%d/workers=%d", m, w), func(b *testing.B) {
				rng := rand.New(rand.NewSource(18))
				numBlocks := m / flowsPerBlock
				blocks := make([]sketch.Snapshot, numBlocks)
				for bi := 0; bi < numBlocks; bi++ {
					flowIDs := make([]int, flowsPerBlock)
					for j := range flowIDs {
						flowIDs[j] = bi*flowsPerBlock + j
					}
					fd, err := sketch.NewFD(sketch.Config{FlowIDs: flowIDs})
					if err != nil {
						b.Fatal(err)
					}
					volumes := make([]float64, flowsPerBlock)
					for t := 1; t <= 96; t++ { // several shrink cycles deep
						for j := range volumes {
							volumes[j] = 1000 + 50*rng.NormFloat64()
						}
						if err := fd.Update(int64(t), volumes); err != nil {
							b.Fatal(err)
						}
					}
					blocks[bi] = fd.Snapshot()
				}
				det, err := core.NewDetector(core.DetectorConfig{
					NumFlows: m, WindowLen: 4032,
					SketchLen: sketch.DefaultEll(flowsPerBlock), Alpha: 0.01,
					FixedRank: 6, Family: sketch.FamilyFD, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := det.RebuildFD(blocks, int64(i+1)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := mat.NewMatrix(128, 32)
	for i := 0; i < 128; i++ {
		row := a.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.ComputeSVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalVsBatchPCA ablates the incremental sliding-window PCA
// against refitting from scratch (the trick that makes exact ground-truth
// labeling affordable).
func BenchmarkIncrementalVsBatchPCA(b *testing.B) {
	const n, m = 576, 81
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 2*n)
	for i := range rows {
		row := make([]float64, m)
		for j := range row {
			row[j] = 1000 + 50*rng.NormFloat64()
		}
		rows[i] = row
	}
	b.Run("incremental", func(b *testing.B) {
		inc, err := pca.NewIncremental(n, m)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows[:n] {
			if err := inc.Push(row); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := inc.Push(rows[n+i%n]); err != nil {
				b.Fatal(err)
			}
			if _, err := inc.Model(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		x := mat.NewMatrix(n, m)
		for i := 0; i < n; i++ {
			copy(x.RowView(i), rows[i])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(x.RowView(i%n), rows[n+i%n]) // slide one row
			if _, err := pca.Fit(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEWMAObserve sizes the per-interval cost of the classical
// per-flow baseline for contrast with the subspace detectors.
func BenchmarkEWMAObserve(b *testing.B) {
	const m = 81
	d, err := ewma.New(ewma.Config{NumFlows: m, Lambda: 0.1, K: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	row := make([]float64, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range row {
			row[j] = 1000 + 30*rng.NormFloat64()
		}
		if _, err := d.Observe(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarkovObserve sizes the §VII Markov-extension layer per interval.
func BenchmarkMarkovObserve(b *testing.B) {
	c, err := markov.New(markov.Config{NumStates: 5, WindowLen: 512, MinProb: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Observe(100 + 5*rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterObserve sizes the Huang-style tolerance filter.
func BenchmarkFilterObserve(b *testing.B) {
	const m = 81
	f, err := filter.NewMonitor(filter.Config{NumFlows: m, Tolerance: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	row := make([]float64, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range row {
			row[j] = 1000 + 30*rng.NormFloat64()
		}
		if _, err := f.Observe(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterStep measures one full interval through the in-process
// cluster (monitor updates + lazy NOC observation).
func BenchmarkClusterStep(b *testing.B) {
	const m, window = 81, 288
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 9, WindowLen: window, Epsilon: 0.05, Alpha: 0.01,
		Sketch: SketchConfig{Seed: 1, SketchLen: 100}, FixedRank: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	base := make([]float64, m)
	for j := range base {
		base[j] = 1e6 * (1 + 0.5*rng.Float64())
	}
	volumes := make([]float64, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range volumes {
			volumes[j] = base[j] * (1 + 0.05*rng.NormFloat64())
		}
		if _, err := cl.Step(int64(i+1), volumes); err != nil {
			b.Fatal(err)
		}
	}
}
