package streampca

import (
	"errors"
	"math/rand"
	"testing"
)

// facadeRow synthesizes a structured volume vector for the facade tests.
func facadeRow(rng *rand.Rand, m int) []float64 {
	f1 := 1000 + 100*rng.NormFloat64()
	f2 := 400 + 60*rng.NormFloat64()
	row := make([]float64, m)
	for j := range row {
		row[j] = float64(j%3+1)*f1 + float64(j%2+1)*f2 + 5*rng.NormFloat64()
	}
	return row
}

func TestFacadeClusterLifecycle(t *testing.T) {
	const (
		m      = 12
		window = 96
	)
	cl, err := NewCluster(ClusterConfig{
		NumFlows:    m,
		NumMonitors: 3,
		WindowLen:   window,
		Epsilon:     0.05,
		Alpha:       0.005,
		Sketch:      SketchConfig{Seed: 17, SketchLen: 48},
		Mode:        RankFixed,
		FixedRank:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var interval int64
	for i := 0; i < 2*window; i++ {
		interval++
		if _, err := cl.Step(interval, facadeRow(rng, m)); err != nil {
			t.Fatal(err)
		}
	}
	// Inject and detect.
	interval++
	bad := facadeRow(rng, m)
	bad[1] += 4e4
	bad[7] += 3e4
	if err := cl.Update(interval, facadeRow(rng, m)); err != nil {
		t.Fatal(err)
	}
	dec, err := cl.Detector().Observe(bad, cl.Fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Anomalous {
		t.Fatalf("anomaly missed: %+v", dec)
	}
}

func TestFacadeConstructorsAndErrors(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("monitor: %v", err)
	}
	if _, err := NewDetector(DetectorConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("detector: %v", err)
	}
	if _, err := NewCluster(ClusterConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("cluster: %v", err)
	}
	if _, err := NewSketchGenerator(SketchConfig{}); err == nil {
		t.Fatal("generator without sketch length must fail")
	}
	det, err := NewDetector(DetectorConfig{
		NumFlows: 2, WindowLen: 10, SketchLen: 4, Alpha: 0.01, FixedRank: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Distance([]float64{1, 2}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("no model: %v", err)
	}
}

func TestFacadeDistributionConstants(t *testing.T) {
	for _, d := range []SketchDistribution{Gaussian, TugOfWar, Sparse, VerySparse} {
		if d.String() == "unknown" {
			t.Fatalf("distribution %d unnamed", int(d))
		}
	}
	for _, m := range []RankMode{RankFixed, RankThreeSigma, RankEnergy} {
		if m.String() == "unknown" {
			t.Fatalf("rank mode %d unnamed", int(m))
		}
	}
}
