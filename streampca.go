// Package streampca is a sketch-based streaming PCA library for
// network-wide traffic anomaly detection, reproducing Liu, Zhang & Guan,
// "Sketch-based Streaming PCA Algorithm for Network-wide Traffic Anomaly
// Detection" (ICDCS 2010).
//
// # Overview
//
// The classical subspace method (Lakhina et al.) fits PCA to a sliding
// window of n traffic measurement vectors over m aggregated flows and flags
// a measurement whose residual outside the top-r principal subspace exceeds
// a Q-statistic threshold. That costs O(n·m) space and O(n·m²) time per
// retraining. This library replaces the raw window with per-flow variance
// histograms carrying random-projection sums, so local monitors run in
// O(w·log n) time and O(w·log²n) space, and the NOC retrains from an l×m
// sketch matrix (l = O(log n)) in O(m²·log n) time — with provable error
// bounds on the recovered subspace and anomaly distances.
//
// # Quick start
//
// The simplest entry point is a Cluster, which wires local monitors and the
// NOC detector in-process:
//
//	cl, err := streampca.NewCluster(streampca.ClusterConfig{
//		NumFlows:    81,
//		NumMonitors: 9,
//		WindowLen:   4032, // two weeks of 5-minute intervals
//		Epsilon:     0.01,
//		Alpha:       0.01,
//		Sketch:      streampca.SketchConfig{Seed: 42, SketchLen: 200},
//		FixedRank:   6,
//	})
//	...
//	decision, err := cl.Step(interval, volumes) // one call per interval
//	if decision.Anomalous { ... }
//
// For a real deployment, run one monitor service per measurement site and a
// NOC service; see the examples/distributed program and the
// internal/monitor and internal/noc packages.
//
// The exact (Lakhina) baseline, the synthetic Abilene traffic substrate and
// the experiment harness that regenerates the paper's figures live in
// internal/pca, internal/traffic and internal/eval; the cmd/abilene-eval
// binary drives them.
package streampca

import (
	"streampca/internal/core"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
)

// Re-exported core types: these aliases are the library's public API; the
// implementation lives in internal packages.
type (
	// Monitor is the local-monitor sketch state: one variance histogram
	// with random-projection sums per assigned flow.
	Monitor = core.Monitor
	// MonitorConfig configures a Monitor.
	MonitorConfig = core.MonitorConfig
	// SketchReport carries a monitor's sketches to the NOC.
	SketchReport = core.SketchReport
	// Detector is the NOC-side sketch-PCA detector with the lazy
	// model-refresh protocol.
	Detector = core.Detector
	// DetectorConfig configures a Detector.
	DetectorConfig = core.DetectorConfig
	// Model is a fitted sketch-PCA model.
	Model = core.Model
	// Decision is the outcome of observing one measurement vector.
	Decision = core.Decision
	// FetchFunc pulls fresh sketches from local monitors.
	FetchFunc = core.FetchFunc
	// RankMode selects how the normal-subspace size is chosen.
	RankMode = core.RankMode
	// SketchFamily selects the streaming-summary implementation monitors
	// run (random projection or Frequent Directions).
	SketchFamily = sketch.Family
	// ModelBuilder selects how the NOC decomposes the sketch matrix
	// (Jacobi Gram eigensolve or randomized range-finder SVD).
	ModelBuilder = core.ModelBuilder
	// Cluster wires monitors and a detector in-process.
	Cluster = core.Cluster
	// ClusterConfig configures a Cluster.
	ClusterConfig = core.ClusterConfig

	// SketchConfig configures the shared random projection (seed,
	// sketch length l, distribution family).
	SketchConfig = randproj.Config
	// SketchDistribution selects the projection family.
	SketchDistribution = randproj.Distribution
	// SketchGenerator deterministically produces the shared random
	// numbers r_{tk}.
	SketchGenerator = randproj.Generator
)

// Rank-selection modes (paper §IV-D).
const (
	// RankFixed uses a configured fixed r.
	RankFixed = core.RankFixed
	// RankThreeSigma applies the 3σ-heuristic to the sketch projections.
	RankThreeSigma = core.RankThreeSigma
	// RankEnergy retains a configured fraction of spectral energy.
	RankEnergy = core.RankEnergy
)

// Sketcher families (-sketcher flag spellings via ParseSketchFamily).
const (
	// FamilyRandProj is the paper's random projection over per-flow
	// variance histograms — sliding-window semantics, probabilistic
	// (Theorem 2) error bound. The zero value.
	FamilyRandProj = sketch.FamilyRandProj
	// FamilyFD is Frequent Directions — full-prefix semantics,
	// deterministic ‖AᵀA − BᵀB‖₂ ≤ Δ bound in O(ℓ·w) space.
	FamilyFD = sketch.FamilyFD
)

// Model builders (-modelbuilder flag spellings via ParseModelBuilder).
const (
	// BuildJacobi eigendecomposes the m×m sketch Gram matrix (exact; the
	// default).
	BuildJacobi = core.BuildJacobi
	// BuildRSVD runs the randomized range-finder SVD on the sketch matrix.
	BuildRSVD = core.BuildRSVD
)

// Random-projection families (paper §V-B).
const (
	// Gaussian draws projections from the standard normal distribution.
	Gaussian = randproj.Gaussian
	// TugOfWar draws ±1 coins (Alon et al.).
	TugOfWar = randproj.TugOfWar
	// Sparse is Achlioptas' {−1,0,+1} family with parameter s.
	Sparse = randproj.Sparse
	// VerySparse is Li's s=√n variant.
	VerySparse = randproj.VerySparse
)

// Sentinel errors re-exported for matching with errors.Is.
var (
	// ErrConfig indicates an invalid configuration.
	ErrConfig = core.ErrConfig
	// ErrInput indicates structurally invalid runtime input.
	ErrInput = core.ErrInput
	// ErrNoModel indicates a detector query before any model was built.
	ErrNoModel = core.ErrNoModel
)

// NewMonitor builds a local-monitor sketch state.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	return core.NewMonitor(cfg)
}

// NewDetector builds a NOC-side sketch-PCA detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	return core.NewDetector(cfg)
}

// NewCluster builds an in-process monitors+NOC assembly.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return core.NewCluster(cfg)
}

// NewSketchGenerator builds the shared deterministic random-projection
// generator all monitors and the NOC must agree on.
func NewSketchGenerator(cfg SketchConfig) (*SketchGenerator, error) {
	return randproj.NewGenerator(cfg)
}

// ParseSketchFamily maps a -sketcher flag spelling ("randproj", "fd", or
// empty for the default) to a SketchFamily.
func ParseSketchFamily(s string) (SketchFamily, error) {
	return sketch.ParseFamily(s)
}

// ParseModelBuilder maps a -modelbuilder flag spelling ("jacobi", "rsvd", or
// empty for the default) to a ModelBuilder.
func ParseModelBuilder(s string) (ModelBuilder, error) {
	return core.ParseModelBuilder(s)
}
