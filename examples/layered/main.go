// Layered detection: the paper's future-work direction (§VII) — feeding the
// sketch-PCA statistics into further statistical detectors. Three detectors
// run side by side on the same traffic:
//
//   - per-flow EWMA control bands (the classical single-link baseline);
//   - the sketch-based subspace detector (this library's core);
//   - a Markov chain over the subspace detector's distance stream, which
//     flags improbable temporal transitions even below the spatial
//     threshold δ.
//
// The scenario contains a high-profile spike (all three should see it), a
// coordinated low-profile anomaly (EWMA should miss it) and a slow ramp
// that stays under δ but shifts the distance regime (the Markov layer's
// target).
//
//	go run ./examples/layered
package main

import (
	"fmt"
	"log"

	"streampca"

	"streampca/internal/ewma"
	"streampca/internal/markov"
	"streampca/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type event struct {
	name       string
	start, end int
}

func run() error {
	const (
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay / 2
		total     = 2 * perDay
		rank      = 6
	)

	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: total, Seed: 404})
	if err != nil {
		return err
	}
	m := tr.NumFlows()

	events := []event{
		{name: "high-profile spike", start: windowLen + 120, end: windowLen + 124},
		{name: "coordinated low-profile", start: windowLen + 240, end: windowLen + 246},
		{name: "slow ramp (sub-threshold)", start: total - 80, end: total - 20},
	}
	// Note the moderate magnitude: a spike that dwarfs the window's total
	// energy would hijack a principal component when the lazy refresh
	// absorbs the interval (the poisoning effect of Rubinstein et al. the
	// paper cites) — realistic at this demo's short window. 1.5× baseline
	// is large for one flow yet stays safely inside the residual subspace.
	if err := tr.InjectSpike(7, events[0].start, events[0].end, 1.5); err != nil {
		return err
	}
	if err := tr.InjectCoordinated([]int{3, 21, 39, 57, 75}, events[1].start, events[1].end, 0.5); err != nil {
		return err
	}
	// The ramp: gentle flash crowd toward router 4.
	if err := tr.InjectFlashCrowd(4, events[2].start, events[2].end, 0.35); err != nil {
		return err
	}

	// Detector 1: per-flow EWMA bands.
	ew, err := ewma.New(ewma.Config{NumFlows: m, Lambda: 0.08, K: 4, Warmup: windowLen / 2})
	if err != nil {
		return err
	}
	// Detector 2: sketch-based subspace method.
	cl, err := streampca.NewCluster(streampca.ClusterConfig{
		NumFlows:    m,
		NumMonitors: 9,
		WindowLen:   windowLen,
		Epsilon:     0.01,
		Alpha:       0.005,
		Sketch:      streampca.SketchConfig{Seed: 11, SketchLen: 150},
		Mode:        streampca.RankFixed,
		FixedRank:   rank,
	})
	if err != nil {
		return err
	}
	// Detector 3: Markov chain over the subspace distance stream.
	chain, err := markov.New(markov.Config{
		NumStates: 5, WindowLen: windowLen, MinProb: 0.02, Warmup: windowLen / 2,
	})
	if err != nil {
		return err
	}

	hits := make(map[string][3]int, len(events))
	for i := 0; i < total; i++ {
		row := tr.Volumes.Row(i)
		eres, err := ew.Observe(row)
		if err != nil {
			return err
		}
		dec, err := cl.Step(int64(i+1), row)
		if err != nil {
			return err
		}
		var mres markov.Result
		if i >= windowLen {
			if mres, err = chain.Observe(dec.Distance); err != nil {
				return err
			}
		}
		for _, e := range events {
			if i < e.start || i >= e.end {
				continue
			}
			h := hits[e.name]
			if eres.Ready && eres.Anomalous {
				h[0]++
			}
			if i >= windowLen && dec.Anomalous {
				h[1]++
			}
			if mres.Ready && mres.Anomalous {
				h[2]++
			}
			hits[e.name] = h
		}
	}

	fmt.Println("layered detection: intervals flagged per detector")
	fmt.Printf("%-28s %8s %10s %8s\n", "event", "ewma", "sketchPCA", "markov")
	for _, e := range events {
		h := hits[e.name]
		span := e.end - e.start
		fmt.Printf("%-28s %5d/%-3d %7d/%-3d %5d/%-3d\n", e.name, h[0], span, h[1], span, h[2], span)
	}
	fmt.Println("\nreading: EWMA sees per-flow volume excursions; the subspace method")
	fmt.Println("adds the coordinated low-profile case; the Markov layer reacts to")
	fmt.Println("regime changes in the residual-distance stream (paper §VII).")
	return nil
}
