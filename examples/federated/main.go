// Federated scenario: the Fig. 1 deployment grown one tier — three
// mid-tier aggregators shard the flow space between the monitors and the
// NOC. Six monitors each own a stripe of the OD flows and register with
// their rendezvous-preferred aggregator; each aggregator merges its shard's
// sketches (lossless column union for randproj) and volume reports, and the
// NOC sees exactly three "monitors" whose flows partition the network.
//
// Sketch linearity makes the tier transparent: the merged randproj columns
// are byte-identical to what the flat topology would deliver, so models,
// thresholds and alarm decisions match the single-NOC deployment exactly
// (the differential e2e test in internal/noc pins this).
//
// Pass -sketcher fd for the Frequent Directions family (per-shard merged
// blocks; see DESIGN.md §16 for the semantic difference).
//
//	go run ./examples/federated
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"streampca/internal/agg"
	"streampca/internal/core"
	"streampca/internal/monitor"
	"streampca/internal/noc"
	"streampca/internal/randproj"
	sketchpkg "streampca/internal/sketch"
	"streampca/internal/traffic"
	"streampca/internal/transport"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve NOC diagnostics (/metrics, /healthz, /debug/pprof) on this address")
	workers := flag.Int("workers", 0, "worker goroutines for sketch updates, merges and retrains (0 = all CPUs)")
	sketcher := flag.String("sketcher", "randproj", "sketcher family: randproj or fd")
	flag.Parse()
	if err := run(*metricsAddr, *workers, *sketcher); err != nil {
		log.Fatal(err)
	}
}

func run(metricsAddr string, workers int, sketcher string) error {
	const (
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay / 2
		total     = perDay * 3 / 2
		sketchLen = 100
		seed      = 777
		numAggs   = 3
		numMons   = 6
	)
	fam, err := sketchpkg.ParseFamily(sketcher)
	if err != nil {
		return fmt.Errorf("-sketcher: %w", err)
	}

	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: total, Seed: 60})
	if err != nil {
		return err
	}
	anomalyStart, anomalyEnd := total-40, total-35
	if err := tr.InjectCoordinated([]int{4, 22, 40, 58, 76}, anomalyStart, anomalyEnd, 0.8); err != nil {
		return err
	}
	m := tr.NumFlows()

	// Shared sketch parameter: projection length l for randproj, per-monitor
	// basis budget ℓ for FD (2ℓ must stay below the per-monitor flow count).
	sketchParam := sketchLen
	if fam == sketchpkg.FamilyFD {
		sketchParam = sketchpkg.DefaultEll(m / numMons)
	}

	// NOC — completely unchanged from the flat deployment: it just sees
	// three registrants whose flows happen to partition the network.
	decisions := make(chan noc.Decision, total)
	nocSvc, err := noc.New(noc.Config{
		Detector: core.DetectorConfig{
			Family:    fam,
			NumFlows:  m,
			WindowLen: windowLen,
			SketchLen: sketchParam,
			Alpha:     0.01,
			Mode:      core.RankFixed,
			FixedRank: 6,
		},
		Seed:         seed,
		Workers:      workers,
		FetchRetries: 2,
		Degraded:     noc.DegradedPolicy{Enabled: true},
		OnDecision:   func(d noc.Decision) { decisions <- d },
		MetricsAddr:  metricsAddr,
	})
	if err != nil {
		return err
	}
	if err := nocSvc.Serve("127.0.0.1:0"); err != nil {
		return err
	}
	defer nocSvc.Shutdown()
	fmt.Printf("NOC listening on %s (sketcher=%s sketch=%d)\n", nocSvc.Addr(), fam, sketchParam)

	// Aggregator tier. Ports are dynamic, so the full candidate list is
	// installed with SetPeers once every listener is up, then each
	// aggregator dials the NOC and announces its (initially empty) shard.
	aggs := make([]*agg.Service, numAggs)
	aggAddrs := make([]string, numAggs)
	for i := range aggs {
		a, err := agg.New(agg.Config{
			ID:           fmt.Sprintf("agg-%d", i+1),
			Family:       fam,
			NumFlows:     m,
			WindowLen:    windowLen,
			SketchLen:    sketchParam,
			Seed:         seed,
			Workers:      workers,
			FetchRetries: 2,
			Degraded:     agg.DegradedPolicy{Enabled: true, MaxStaleness: int64(windowLen / 4)},
			Reconnect:    true,
		})
		if err != nil {
			return err
		}
		if err := a.Serve("127.0.0.1:0"); err != nil {
			return err
		}
		defer func() { _ = a.Close() }()
		aggs[i] = a
		aggAddrs[i] = a.Addr()
	}
	for _, a := range aggs {
		a.SetPeers(aggAddrs, 1)
		if err := a.ConnectNOC(nocSvc.Addr(), 2*time.Second); err != nil {
			return err
		}
	}
	fmt.Printf("%d aggregators up: %v\n", numAggs, aggAddrs)

	// Monitors, striping the flows. Each dials its rendezvous-preferred
	// aggregator — the same independent placement the daemons compute from
	// sketchpca-monitor -aggs.
	var alarmsSeen atomic.Int64
	assign := make([][]int, numMons)
	for f := 0; f < m; f++ {
		assign[f%numMons] = append(assign[f%numMons], f)
	}
	mons := make([]*monitor.Service, numMons)
	for i := range mons {
		id := fmt.Sprintf("monitor-%d", i+1)
		svc, err := monitor.New(monitor.Config{
			ID:         id,
			Family:     fam,
			FlowIDs:    assign[i],
			WindowLen:  windowLen,
			Epsilon:    0.02,
			Sketch:     randproj.Config{Seed: seed, SketchLen: sketchParam, WindowLen: windowLen},
			FDEll:      sketchParam,
			Workers:    workers,
			Reconnect:  true,
			Candidates: aggAddrs,
			OnAlarm:    func(transport.Alarm) { alarmsSeen.Add(1) },
		})
		if err != nil {
			return err
		}
		home := agg.Rendezvous(id, aggAddrs)[0]
		if err := svc.Connect(home, 2*time.Second); err != nil {
			return err
		}
		defer func() { _ = svc.Close() }()
		mons[i] = svc
		fmt.Printf("%s -> %s (%d flows)\n", id, home, len(assign[i]))
	}

	// Stream the trace, tallying the NOC's verdicts against ground truth.
	var hits, falseAlarms int
	for i := 0; i < total; i++ {
		row := tr.Volumes.RowView(i)
		for mi, mon := range mons {
			local := make([]float64, len(assign[mi]))
			for k, f := range assign[mi] {
				local[k] = row[f]
			}
			if err := mon.ReportInterval(int64(i+1), local); err != nil {
				return fmt.Errorf("%s interval %d: %w", mon.ID(), i, err)
			}
		}
		d := waitDecision(decisions, int64(i+1))
		if i < windowLen || !d.Result.Anomalous {
			continue
		}
		if i >= anomalyStart && i < anomalyEnd {
			hits++
			fmt.Printf("  ALARM interval %d: distance %.3g > δ %.3g (inside injection)\n",
				i, d.Result.Distance, d.Result.Threshold)
		} else {
			falseAlarms++
		}
	}

	// Alarm broadcasts hop NOC -> aggregator -> monitor; give them a beat.
	time.Sleep(300 * time.Millisecond)
	obs, fetches, alarms := nocSvc.DetectorStats()
	fmt.Printf("\nNOC: %d observations, %d lazy sketch pulls, %d alarms raised\n", obs, fetches, alarms)
	for _, a := range aggs {
		st := a.Stats()
		fmt.Printf("%s: %d monitors, %d volume forwards, %d merged pulls, %d alarms relayed\n",
			a.ID(), st.Monitors, st.VolumeForwards, st.Fetches, st.AlarmsRelayed)
	}
	fmt.Printf("monitors received %d alarm broadcasts (via the aggregator tier)\n", alarmsSeen.Load())
	fmt.Printf("detection: %d/%d injected intervals flagged, %d false alarms\n",
		hits, anomalyEnd-anomalyStart, falseAlarms)
	if hits > 0 {
		fmt.Println("result: federated lazy protocol detected the coordinated anomaly ✔")
	}
	return nil
}

// waitDecision drains the decision stream until the given interval appears.
func waitDecision(ch <-chan noc.Decision, interval int64) noc.Decision {
	for {
		select {
		case d := <-ch:
			if d.Interval == interval {
				return d
			}
		case <-time.After(10 * time.Second):
			log.Fatalf("timed out waiting for interval %d", interval)
		}
	}
}
