// Quickstart: run the sketch-based streaming PCA detector end to end on a
// synthetic Abilene trace with one injected coordinated anomaly.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streampca"

	"streampca/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		days      = 4
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay // one day of history
		sketchLen = 120
	)

	// 1. Synthesize four days of Abilene OD-flow volumes and inject a
	//    coordinated low-profile anomaly on four flows.
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		NumIntervals: days * perDay,
		Seed:         7,
	})
	if err != nil {
		return err
	}
	anomalyStart := 3 * perDay
	anomalyEnd := anomalyStart + 6 // half an hour
	flows := []int{1, 12, 30, 61}
	if err := tr.InjectCoordinated(flows, anomalyStart, anomalyEnd, 0.9); err != nil {
		return err
	}
	fmt.Printf("trace: %d intervals × %d OD flows, anomaly on %v at [%d,%d)\n",
		tr.NumIntervals(), tr.NumFlows(), flows, anomalyStart, anomalyEnd)

	// 2. Build an in-process cluster: 9 local monitors (one per router's
	//    measurement site) plus the NOC detector.
	cl, err := streampca.NewCluster(streampca.ClusterConfig{
		NumFlows:    tr.NumFlows(),
		NumMonitors: 9,
		WindowLen:   windowLen,
		Epsilon:     0.01,
		Alpha:       0.01,
		Sketch:      streampca.SketchConfig{Seed: 42, SketchLen: sketchLen},
		Mode:        streampca.RankFixed,
		FixedRank:   6,
	})
	if err != nil {
		return err
	}

	// 3. Stream the trace interval by interval.
	var hits, falseAlarms, evaluated, refreshes int
	for i := 0; i < tr.NumIntervals(); i++ {
		dec, err := cl.Step(int64(i+1), tr.Volumes.Row(i))
		if err != nil {
			return err
		}
		if i < windowLen {
			continue // warm-up
		}
		evaluated++
		if dec.Refreshed {
			refreshes++
		}
		if !dec.Anomalous {
			continue
		}
		if i >= anomalyStart && i < anomalyEnd {
			hits++
			fmt.Printf("  ALARM at interval %d (inside injection): distance %.3g > threshold %.3g\n",
				i, dec.Distance, dec.Threshold)
		} else {
			falseAlarms++
		}
	}

	obs, fetches, _ := cl.Detector().Stats()
	fmt.Printf("\nprotocol: %d observations, %d sketch fetches (lazy pulls), %d model refreshes\n",
		obs, fetches, refreshes)
	fmt.Printf("detection: %d/%d injected intervals flagged; %d false alarms over %d normal intervals (%.1f%%)\n",
		hits, anomalyEnd-anomalyStart, falseAlarms, evaluated-(anomalyEnd-anomalyStart),
		100*float64(falseAlarms)/float64(evaluated-(anomalyEnd-anomalyStart)))
	if hits > 0 {
		fmt.Println("result: the coordinated low-profile anomaly was caught as it happened ✔")
	} else {
		fmt.Println("result: anomaly missed — try a longer sketch or lower alpha")
	}
	return nil
}
