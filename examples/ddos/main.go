// DDoS scenario: exercises the full local-monitor data path — packet
// headers → longest-prefix-match OD aggregation → volume counter →
// variance-histogram sketches — and detects a high-profile volumetric
// attack against one destination.
//
//	go run ./examples/ddos
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streampca"

	"streampca/internal/traffic"
	"streampca/internal/volume"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay / 2 // half a day
		total     = 2 * perDay
		sketchLen = 100
	)

	// The packet-facing substrate: routing table + OD aggregator + volume
	// counter, exactly the Fig. 2/4 pipeline.
	agg, err := traffic.NewAbileneAggregator()
	if err != nil {
		return err
	}
	counter, err := volume.NewCounter(agg.NumFlows())
	if err != nil {
		return err
	}

	// Baseline traffic with a DDoS against WASH (router 8) near the end:
	// every OD flow into WASH surges 5× its baseline for 30 minutes.
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		NumIntervals: total,
		Seed:         2024,
		TotalVolume:  2e6, // keep packet counts small for the demo
	})
	if err != nil {
		return err
	}
	washIdx := 8
	attackStart, attackEnd := total-perDay/4, total-perDay/4+6
	if err := tr.InjectFlashCrowd(washIdx, attackStart, attackEnd, 5); err != nil {
		return err
	}

	cl, err := streampca.NewCluster(streampca.ClusterConfig{
		NumFlows:    agg.NumFlows(),
		NumMonitors: 3,
		WindowLen:   windowLen,
		Epsilon:     0.02,
		Alpha:       0.01,
		Sketch:      streampca.SketchConfig{Seed: 99, SketchLen: sketchLen},
		Mode:        streampca.RankFixed,
		FixedRank:   6,
	})
	if err != nil {
		return err
	}

	fmt.Printf("ddos demo: %d flows, window %d, attack on %s at [%d,%d)\n",
		agg.NumFlows(), windowLen, traffic.AbileneRouters[washIdx], attackStart, attackEnd)

	rng := rand.New(rand.NewSource(5))
	var detected []int
	for i := 0; i < total; i++ {
		// Replay the interval as packets through the aggregation path.
		pkts, err := tr.Packetize(i, traffic.PacketizeOptions{MaxPackets: 4, Seed: 11})
		if err != nil {
			return err
		}
		// Shuffle to mimic interleaved arrivals.
		rng.Shuffle(len(pkts), func(a, b int) { pkts[a], pkts[b] = pkts[b], pkts[a] })
		for _, p := range pkts {
			id, err := agg.FlowID(p)
			if err != nil {
				return fmt.Errorf("aggregate packet: %w", err)
			}
			if err := counter.Add(id, float64(p.Size)); err != nil {
				return err
			}
		}
		snap := counter.Roll()

		dec, err := cl.Step(int64(i+1), snap.Volumes)
		if err != nil {
			return err
		}
		if i >= windowLen && dec.Anomalous {
			detected = append(detected, i)
		}
	}

	var inWindow int
	for _, i := range detected {
		if i >= attackStart && i < attackEnd {
			inWindow++
		}
	}
	fmt.Printf("alarms: %d total, %d inside the attack window\n", len(detected), inWindow)
	if inWindow > 0 {
		fmt.Println("result: high-profile DDoS detected through the packet→sketch pipeline ✔")
	} else {
		fmt.Println("result: attack missed — inspect parameters")
	}
	return nil
}
