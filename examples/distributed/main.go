// Distributed scenario: the full Fig. 1 deployment on loopback TCP — one
// NOC service plus three local-monitor services, each owning a third of the
// OD flows. Monitors stream per-interval volume reports; the NOC assembles
// network-wide vectors and pulls sketches lazily; alarms are broadcast back
// to every monitor.
//
// Pass -metrics-addr 127.0.0.1:9090 to watch the NOC's /metrics,
// /healthz and /debug/pprof while the scenario streams.
//
// Pass -ingest to feed each monitor through an internal/ingest pipeline
// instead of direct volume rows: the trace is serialized to NetFlow v5
// datagrams (each monitor sees only its own flows) and re-aggregated into
// interval rows by the sharded ingestion path before reporting.
//
// Pass -sketcher fd for the Frequent Directions family. Expect it to miss
// this scenario's low-profile coordinated anomaly: FD models the full stream
// prefix per monitor block with no cross-monitor covariance, so a subtle
// shift spread across all three monitors stays inside each block's residual
// budget (the trade-off DESIGN.md §15 documents; compare the families
// head-to-head with abilene-eval -shootout).
//
//	go run ./examples/distributed
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"streampca/internal/core"
	"streampca/internal/ingest"
	"streampca/internal/monitor"
	"streampca/internal/noc"
	"streampca/internal/randproj"
	sketchpkg "streampca/internal/sketch"
	"streampca/internal/trace"
	"streampca/internal/traffic"
	"streampca/internal/transport"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve NOC diagnostics (/metrics, /healthz, /debug/pprof, /debug/trace) on this address")
	workers := flag.Int("workers", 0, "worker goroutines for sketch updates and retrains (0 = all CPUs)")
	ingestMode := flag.Bool("ingest", false, "feed monitors through NetFlow v5 ingest pipelines instead of direct volume rows")
	sketcher := flag.String("sketcher", "randproj", "sketcher family: randproj or fd")
	builder := flag.String("modelbuilder", "jacobi", "model eigensolver: jacobi or rsvd (randproj only)")
	traceOn := flag.Bool("trace", false, "record interval-lineage spans on the NOC (served on /debug/trace with -metrics-addr)")
	traceSm := flag.Int("trace-sample", 1, "with -trace, keep every trace whose id % N == 0 (1 = all)")
	flight := flag.String("flight-recorder", "", "append one JSONL audit record per alarm/degraded decision to this file")
	flag.Parse()
	if err := run(*metricsAddr, *workers, *ingestMode, *sketcher, *builder, *traceOn, *traceSm, *flight); err != nil {
		log.Fatal(err)
	}
}

func run(metricsAddr string, workers int, ingestMode bool, sketcher, builder string, traceOn bool, traceSample int, flightPath string) error {
	const (
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay / 2
		total     = perDay * 3 / 2
		sketchLen = 100
		seed      = 777
		numMons   = 3
	)
	fam, err := sketchpkg.ParseFamily(sketcher)
	if err != nil {
		return fmt.Errorf("-sketcher: %w", err)
	}
	bld, err := core.ParseModelBuilder(builder)
	if err != nil {
		return fmt.Errorf("-modelbuilder: %w", err)
	}

	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: total, Seed: 60})
	if err != nil {
		return err
	}
	anomalyStart, anomalyEnd := total-40, total-35
	if err := tr.InjectCoordinated([]int{4, 22, 40, 58, 76}, anomalyStart, anomalyEnd, 0.8); err != nil {
		return err
	}
	m := tr.NumFlows()

	// The sketch parameter is the projection length l for randproj and the
	// per-monitor basis budget ℓ for Frequent Directions (all monitors must
	// announce the same value, which the NOC's detector also carries). Keep
	// 2ℓ below the per-monitor flow count: a buffer that can hold the whole
	// local column space makes every block full-rank and the full-spectrum
	// Q-statistic degenerate (see the abilene-eval -shootout harness).
	sketchParam := sketchLen
	if fam == sketchpkg.FamilyFD {
		sketchParam = sketchpkg.DefaultEll(m / numMons)
	}

	var tracer *trace.Tracer
	if traceOn {
		tracer = trace.New(trace.Config{Component: "noc", Sample: traceSample})
	}
	var recorder *trace.FlightRecorder
	if flightPath != "" {
		var err error
		recorder, err = trace.OpenFlightRecorder(flightPath)
		if err != nil {
			return fmt.Errorf("-flight-recorder: %w", err)
		}
		defer func() { _ = recorder.Close() }()
	}

	// NOC.
	decisions := make(chan noc.Decision, total)
	nocSvc, err := noc.New(noc.Config{
		Detector: core.DetectorConfig{
			Family:    fam,
			Builder:   bld,
			NumFlows:  m,
			WindowLen: windowLen,
			SketchLen: sketchParam,
			Alpha:     0.01,
			Mode:      core.RankFixed,
			FixedRank: 6,
		},
		Seed:    seed,
		Workers: workers,
		// Fault tolerance: retry missing sketch responses and, should a
		// monitor vanish mid-run, keep deciding on its cached state.
		FetchRetries:   2,
		Degraded:       noc.DegradedPolicy{Enabled: true},
		OnDecision:     func(d noc.Decision) { decisions <- d },
		MetricsAddr:    metricsAddr,
		Trace:          tracer,
		FlightRecorder: recorder,
	})
	if err != nil {
		return err
	}
	if err := nocSvc.Serve("127.0.0.1:0"); err != nil {
		return err
	}
	defer nocSvc.Shutdown()
	fmt.Printf("NOC listening on %s (sketcher=%s builder=%s sketch=%d)\n",
		nocSvc.Addr(), fam, bld, sketchParam)
	if addr := nocSvc.DiagAddr(); addr != "" {
		fmt.Printf("NOC diagnostics on http://%s/metrics\n", addr)
	}

	// Monitors, partitioning the flows round-robin.
	var alarmsSeen atomic.Int64
	assign := make([][]int, numMons)
	for f := 0; f < m; f++ {
		assign[f%numMons] = append(assign[f%numMons], f)
	}
	mons := make([]*monitor.Service, numMons)
	for i := range mons {
		svc, err := monitor.New(monitor.Config{
			ID:        fmt.Sprintf("monitor-%d", i+1),
			Family:    fam,
			FlowIDs:   assign[i],
			WindowLen: windowLen,
			Epsilon:   0.02,
			Sketch:    randproj.Config{Seed: seed, SketchLen: sketchParam, WindowLen: windowLen},
			FDEll:     sketchParam,
			Workers:   workers,
			Reconnect: true,
			OnAlarm: func(a transport.Alarm) {
				alarmsSeen.Add(1)
			},
		})
		if err != nil {
			return err
		}
		if err := svc.Connect(nocSvc.Addr(), 2*time.Second); err != nil {
			return err
		}
		defer func() { _ = svc.Close() }()
		mons[i] = svc
		fmt.Printf("%s connected, owns %d flows\n", svc.ID(), len(assign[i]))
	}

	// Stream the trace, tallying the NOC's verdicts against ground truth.
	var hits, falseAlarms int
	tally := func(i int, d noc.Decision) {
		if i < windowLen || !d.Result.Anomalous {
			return
		}
		if i >= anomalyStart && i < anomalyEnd {
			hits++
			fmt.Printf("  ALARM interval %d: distance %.3g > δ %.3g (inside injection)\n",
				i, d.Result.Distance, d.Result.Threshold)
		} else {
			falseAlarms++
		}
	}
	if ingestMode {
		if err := streamViaIngest(tr, mons, assign, workers, decisions, tally); err != nil {
			return err
		}
	} else {
		// Direct path: each monitor reports its slice of each interval.
		for i := 0; i < total; i++ {
			row := tr.Volumes.RowView(i)
			for mi, mon := range mons {
				local := make([]float64, len(assign[mi]))
				for k, f := range assign[mi] {
					local[k] = row[f]
				}
				if err := mon.ReportInterval(int64(i+1), local); err != nil {
					return fmt.Errorf("%s interval %d: %w", mon.ID(), i, err)
				}
			}
			// Wait for the NOC's verdict on this interval to keep the demo
			// deterministic.
			tally(i, waitDecision(decisions, int64(i+1)))
		}
	}

	// Alarm broadcasts race the final report; give them a beat.
	time.Sleep(200 * time.Millisecond)
	obs, fetches, alarms := nocSvc.DetectorStats()
	fmt.Printf("\nNOC: %d observations, %d lazy sketch pulls, %d alarms raised\n", obs, fetches, alarms)
	fmt.Printf("monitor-1 received %d alarm broadcasts\n", alarmsSeen.Load())
	fmt.Printf("detection: %d/%d injected intervals flagged, %d false alarms\n",
		hits, anomalyEnd-anomalyStart, falseAlarms)
	if hits > 0 {
		fmt.Println("result: distributed lazy protocol detected the coordinated anomaly ✔")
	}
	if tracer != nil {
		fmt.Printf("trace: %d spans retained (GET /debug/trace on the NOC diagnostics address)\n",
			tracer.Recorder().Len())
	}
	if recorder != nil {
		fmt.Printf("flight recorder: %d audit records appended to %s\n", recorder.Count(), flightPath)
	}
	return nil
}

// streamViaIngest replays the trace as NetFlow v5 datagrams through one
// ingest pipeline per monitor (each seeing only its own flows) in lockstep:
// interval i's datagrams advance every pipeline's record-clock watermark,
// sealing interval i-1 network-wide, and the NOC's verdict is awaited
// before moving on. Closing the pipelines drains and seals the final
// (partial) interval — the same graceful-shutdown path the daemons use.
func streamViaIngest(tr *traffic.Trace, mons []*monitor.Service, assign [][]int,
	workers int, decisions chan noc.Decision, tally func(int, noc.Decision)) error {
	agg, err := traffic.NewAbileneAggregator()
	if err != nil {
		return err
	}
	total := tr.NumIntervals()
	pipes := make([]*ingest.Pipeline, len(mons))
	for mi := range pipes {
		mon, mine := mons[mi], assign[mi]
		p, err := ingest.NewPipeline(ingest.Config{
			Aggregator: agg,
			Interval:   300 * time.Second,
			Shards:     workers,
			Sink: func(iv ingest.Interval) error {
				local := make([]float64, len(mine))
				for k, f := range mine {
					local[k] = iv.Volumes[f]
				}
				return mon.ReportInterval(iv.Seq, local)
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		pipes[mi] = p
	}
	byMon := make([][][][]byte, len(mons)) // [monitor][interval][k]datagram
	for mi := range byMon {
		grouped, err := exportGrouped(tr, assign[mi])
		if err != nil {
			return err
		}
		byMon[mi] = grouped
	}
	fmt.Printf("ingest mode: replaying %d intervals as NetFlow v5 through %d pipelines\n",
		total, len(pipes))
	for i := 0; i < total; i++ {
		for mi, p := range pipes {
			for _, d := range byMon[mi][i] {
				if err := p.HandleDatagram(d); err != nil {
					return fmt.Errorf("%s datagram (interval %d): %w", mons[mi].ID(), i, err)
				}
			}
		}
		if i >= 1 {
			// Interval i's datagrams sealed interval i-1 (reported as i).
			tally(i-1, waitDecision(decisions, int64(i)))
		}
	}
	for _, p := range pipes {
		if err := p.Close(); err != nil {
			return err
		}
	}
	tally(total-1, waitDecision(decisions, int64(total)))
	return nil
}

// exportGrouped serializes the flows of one monitor to NetFlow v5
// datagrams, grouped by source interval (ExportTrace flushes at interval
// boundaries, so no datagram spans two).
func exportGrouped(tr *traffic.Trace, flows []int) ([][][]byte, error) {
	owned := make(map[int]bool, len(flows))
	for _, f := range flows {
		owned[f] = true
	}
	out := make([][][]byte, tr.NumIntervals())
	const base = 1_200_000_000 // ExportOptions' default BaseTime
	var d ingest.Datagram
	err := ingest.ExportTrace(tr, ingest.ExportOptions{
		FlowFilter: func(id int) bool { return owned[id] },
	}, func(buf []byte) error {
		if err := ingest.DecodeDatagram(buf, &d); err != nil {
			return err
		}
		i := (int64(d.Header.UnixSecs) - base) / 300
		out[i] = append(out[i], append([]byte(nil), buf...))
		return nil
	})
	return out, err
}

// waitDecision drains the decision stream until the given interval appears.
func waitDecision(ch <-chan noc.Decision, interval int64) noc.Decision {
	for {
		select {
		case d := <-ch:
			if d.Interval == interval {
				return d
			}
		case <-time.After(10 * time.Second):
			log.Fatalf("timed out waiting for interval %d", interval)
		}
	}
}
