// Distributed scenario: the full Fig. 1 deployment on loopback TCP — one
// NOC service plus three local-monitor services, each owning a third of the
// OD flows. Monitors stream per-interval volume reports; the NOC assembles
// network-wide vectors and pulls sketches lazily; alarms are broadcast back
// to every monitor.
//
// Pass -metrics-addr 127.0.0.1:9090 to watch the NOC's /metrics,
// /healthz and /debug/pprof while the scenario streams.
//
//	go run ./examples/distributed
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"streampca/internal/core"
	"streampca/internal/monitor"
	"streampca/internal/noc"
	"streampca/internal/randproj"
	"streampca/internal/traffic"
	"streampca/internal/transport"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve NOC diagnostics (/metrics, /healthz, /debug/pprof) on this address")
	workers := flag.Int("workers", 0, "worker goroutines for sketch updates and retrains (0 = all CPUs)")
	flag.Parse()
	if err := run(*metricsAddr, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(metricsAddr string, workers int) error {
	const (
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay / 2
		total     = perDay * 3 / 2
		sketchLen = 100
		seed      = 777
		numMons   = 3
	)

	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: total, Seed: 60})
	if err != nil {
		return err
	}
	anomalyStart, anomalyEnd := total-40, total-35
	if err := tr.InjectCoordinated([]int{4, 22, 40, 58, 76}, anomalyStart, anomalyEnd, 0.8); err != nil {
		return err
	}
	m := tr.NumFlows()

	// NOC.
	decisions := make(chan noc.Decision, total)
	nocSvc, err := noc.New(noc.Config{
		Detector: core.DetectorConfig{
			NumFlows:  m,
			WindowLen: windowLen,
			SketchLen: sketchLen,
			Alpha:     0.01,
			Mode:      core.RankFixed,
			FixedRank: 6,
		},
		Seed:    seed,
		Workers: workers,
		// Fault tolerance: retry missing sketch responses and, should a
		// monitor vanish mid-run, keep deciding on its cached state.
		FetchRetries: 2,
		Degraded:     noc.DegradedPolicy{Enabled: true},
		OnDecision:   func(d noc.Decision) { decisions <- d },
		MetricsAddr:  metricsAddr,
	})
	if err != nil {
		return err
	}
	if err := nocSvc.Serve("127.0.0.1:0"); err != nil {
		return err
	}
	defer nocSvc.Shutdown()
	fmt.Printf("NOC listening on %s\n", nocSvc.Addr())
	if addr := nocSvc.DiagAddr(); addr != "" {
		fmt.Printf("NOC diagnostics on http://%s/metrics\n", addr)
	}

	// Monitors, partitioning the flows round-robin.
	var alarmsSeen atomic.Int64
	assign := make([][]int, numMons)
	for f := 0; f < m; f++ {
		assign[f%numMons] = append(assign[f%numMons], f)
	}
	mons := make([]*monitor.Service, numMons)
	for i := range mons {
		svc, err := monitor.New(monitor.Config{
			ID:        fmt.Sprintf("monitor-%d", i+1),
			FlowIDs:   assign[i],
			WindowLen: windowLen,
			Epsilon:   0.02,
			Sketch:    randproj.Config{Seed: seed, SketchLen: sketchLen, WindowLen: windowLen},
			Workers:   workers,
			Reconnect: true,
			OnAlarm: func(a transport.Alarm) {
				alarmsSeen.Add(1)
			},
		})
		if err != nil {
			return err
		}
		if err := svc.Connect(nocSvc.Addr(), 2*time.Second); err != nil {
			return err
		}
		defer func() { _ = svc.Close() }()
		mons[i] = svc
		fmt.Printf("%s connected, owns %d flows\n", svc.ID(), len(assign[i]))
	}

	// Stream the trace: each monitor reports its slice of each interval.
	var hits, falseAlarms int
	for i := 0; i < total; i++ {
		row := tr.Volumes.RowView(i)
		for mi, mon := range mons {
			local := make([]float64, len(assign[mi]))
			for k, f := range assign[mi] {
				local[k] = row[f]
			}
			if err := mon.ReportInterval(int64(i+1), local); err != nil {
				return fmt.Errorf("%s interval %d: %w", mon.ID(), i, err)
			}
		}
		// Wait for the NOC's verdict on this interval to keep the demo
		// deterministic.
		d := waitDecision(decisions, int64(i+1))
		if i < windowLen || !d.Result.Anomalous {
			continue
		}
		if i >= anomalyStart && i < anomalyEnd {
			hits++
			fmt.Printf("  ALARM interval %d: distance %.3g > δ %.3g (inside injection)\n",
				i, d.Result.Distance, d.Result.Threshold)
		} else {
			falseAlarms++
		}
	}

	// Alarm broadcasts race the final report; give them a beat.
	time.Sleep(200 * time.Millisecond)
	obs, fetches, alarms := nocSvc.DetectorStats()
	fmt.Printf("\nNOC: %d observations, %d lazy sketch pulls, %d alarms raised\n", obs, fetches, alarms)
	fmt.Printf("monitor-1 received %d alarm broadcasts\n", alarmsSeen.Load())
	fmt.Printf("detection: %d/%d injected intervals flagged, %d false alarms\n",
		hits, anomalyEnd-anomalyStart, falseAlarms)
	if hits > 0 {
		fmt.Println("result: distributed lazy protocol detected the coordinated anomaly ✔")
	}
	return nil
}

// waitDecision drains the decision stream until the given interval appears.
func waitDecision(ch <-chan noc.Decision, interval int64) noc.Decision {
	for {
		select {
		case d := <-ch:
			if d.Interval == interval {
				return d
			}
		case <-time.After(10 * time.Second):
			log.Fatalf("timed out waiting for interval %d", interval)
		}
	}
}
