// Botnet scenario: coordinated low-profile anomalies — the paper's headline
// target. Several OD flows shift simultaneously by amounts too small to
// stand out on any single link; the subspace method catches the correlated
// deviation. The example runs BOTH the exact Lakhina baseline and the
// sketch-based streaming detector and compares their verdicts per event,
// plus prints a Fig. 5-style view of the affected flows.
//
//	go run ./examples/botnet
package main

import (
	"fmt"
	"log"

	"streampca"

	"streampca/internal/pca"
	"streampca/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		perDay    = traffic.IntervalsPerDay5Min
		windowLen = perDay
		total     = 3 * perDay
		sketchLen = 150
		rank      = 6
		alpha     = 0.01
	)

	tr, err := traffic.Generate(traffic.GeneratorConfig{NumIntervals: total, Seed: 31337})
	if err != nil {
		return err
	}
	// Three command-and-control bursts: each nudges a different bot set of
	// OD flows by ~50–70% of baseline for 20–30 minutes.
	events := []struct {
		flows      []int
		start, end int
		mag        float64
	}{
		{flows: []int{2, 20, 47, 66}, start: windowLen + 60, end: windowLen + 66, mag: 0.7},
		{flows: []int{5, 14, 23, 59, 71}, start: windowLen + 200, end: windowLen + 204, mag: 0.5},
		{flows: []int{8, 33, 52}, start: 2*perDay + 100, end: 2*perDay + 105, mag: 0.6},
	}
	for _, e := range events {
		if err := tr.InjectCoordinated(e.flows, e.start, e.end, e.mag); err != nil {
			return err
		}
	}

	// Exact Lakhina baseline (full window, O(nm) space at the NOC).
	exact, err := pca.NewSlidingDetector(pca.SlidingConfig{
		WindowLen:  windowLen,
		NumFlows:   tr.NumFlows(),
		Rank:       rank,
		Alpha:      alpha,
		RefitEvery: 8,
	})
	if err != nil {
		return err
	}

	// Sketch-based streaming detector (O(m log n) space at the NOC).
	cl, err := streampca.NewCluster(streampca.ClusterConfig{
		NumFlows:    tr.NumFlows(),
		NumMonitors: 9,
		WindowLen:   windowLen,
		Epsilon:     0.01,
		Alpha:       alpha,
		Sketch:      streampca.SketchConfig{Seed: 1, SketchLen: sketchLen},
		Mode:        streampca.RankFixed,
		FixedRank:   rank,
	})
	if err != nil {
		return err
	}

	exactFlags := make([]bool, total)
	sketchFlags := make([]bool, total)
	for i := 0; i < total; i++ {
		row := tr.Volumes.Row(i)
		res, err := exact.Observe(row)
		if err != nil {
			return err
		}
		exactFlags[i] = res.Ready && res.Anomalous
		dec, err := cl.Step(int64(i+1), row)
		if err != nil {
			return err
		}
		sketchFlags[i] = i >= windowLen && dec.Anomalous
	}

	fmt.Println("botnet demo: coordinated low-profile anomalies, exact vs sketch detector")
	fmt.Printf("%-28s %-10s %-10s\n", "event", "exact", "sketch")
	for _, e := range events {
		exactHit, sketchHit := 0, 0
		for i := e.start; i < e.end; i++ {
			if exactFlags[i] {
				exactHit++
			}
			if sketchFlags[i] {
				sketchHit++
			}
		}
		span := e.end - e.start
		fmt.Printf("flows %v [%d,%d): %8d/%d %8d/%d\n",
			e.flows, e.start, e.end, exactHit, span, sketchHit, span)
	}

	// Agreement between the two detectors on non-event intervals — the
	// sketch method is an approximation of the exact one (Theorem 2).
	labels := tr.Labels()
	var agree, count int
	for i := windowLen; i < total; i++ {
		if labels[i] {
			continue
		}
		count++
		if exactFlags[i] == sketchFlags[i] {
			agree++
		}
	}
	fmt.Printf("\nexact/sketch agreement on background traffic: %.1f%% of %d intervals\n",
		100*float64(agree)/float64(count), count)

	// Fig. 5-style view of the first event's flows.
	fmt.Println("\nvolume series around event 1 (cf. paper Fig. 5):")
	e := events[0]
	names := make([]string, len(e.flows))
	for i, f := range e.flows {
		names[i] = tr.FlowNames[f]
	}
	fmt.Printf("interval")
	for _, n := range names {
		fmt.Printf(",%s", n)
	}
	fmt.Println()
	for i := e.start - 5; i < e.end+5; i++ {
		fmt.Printf("%d", i)
		for _, f := range e.flows {
			fmt.Printf(",%.0f", tr.Volumes.At(i, f))
		}
		if i >= e.start && i < e.end {
			fmt.Print("  <- anomalous")
		}
		fmt.Println()
	}
	return nil
}
