#!/usr/bin/env sh
# Tier-1+ check: everything CI (or a reviewer) needs to trust a change.
#   ./ci.sh    fmt + vet (linux & darwin) + build + tests + race + benchcheck
#
# Environment: SKIP_BENCHCHECK=1, BENCHCHECK_COUNT, BENCHCHECK_TOLERANCE and
# BENCHCHECK_TRACE_TOLERANCE are forwarded to scripts/benchcheck.sh;
# CHAOS_FLIGHT_DIR overrides where the chaos e2e's flight-recorder JSONL
# artifacts land (default ci-artifacts/chaos-flight).
set -eu

cd "$(dirname "$0")"

STEP_START=0
step() {
    STEP_START=$(date +%s)
    echo "== $* =="
}
step_done() {
    echo "   (step took $(( $(date +%s) - STEP_START ))s)"
}

step "gofmt"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
step_done

# Vet under both first-class GOOS targets: the tree is pure Go, so a
# darwin-only breakage (build tags, syscall drift) should fail CI on linux.
step "go vet (GOOS=linux)"
GOOS=linux go vet ./...
step_done

step "go vet (GOOS=darwin)"
GOOS=darwin go vet ./...
step_done

step "go build"
go build ./...
GOOS=darwin go build ./...
step_done

step "go test"
go test ./...
step_done

# Whole-tree race pass. This replaces the hand-maintained package lists that
# accumulated over PRs 2-7 (par/transport/monitor/noc/obs/faults/ingest/trace,
# then the ingest e2e cmds, then oracle): every new concurrent package — the
# PR8 sketcher families included — is covered the day it lands instead of
# waiting for someone to remember the list. The differential-validation
# (oracle) and live-ingestion e2e suites ride along; their scenarios are
# seeded, so a failure here is a reproducible bug, not flake. EXPERIMENTS.md
# records the timing delta vs the old three-step split.
step "go test -race ./..."
go test -race ./...
step_done

# The chaos e2e suite (fault-injected NOC/monitor deployments, the
# trace-lineage e2e, and the PR9 aggregator-failover scenario) is where the
# retry, breaker and reconnect goroutines actually contend; run it under the
# race detector explicitly so a -run filter change elsewhere can't drop it. CHAOS_FLIGHT_DIR redirects the
# suite's flight-recorder JSONL to a kept directory; on failure the audit
# records are dumped so the workflow can collect them as artifacts.
step "go test -race chaos e2e"
CHAOS_FLIGHT_DIR="${CHAOS_FLIGHT_DIR:-$(pwd)/ci-artifacts/chaos-flight}"
export CHAOS_FLIGHT_DIR
mkdir -p "$CHAOS_FLIGHT_DIR"
rm -f "$CHAOS_FLIGHT_DIR"/*.jsonl
if ! go test -race -run 'TestChaos' ./internal/noc/ ./cmd/sketchpca-monitor/; then
    echo "chaos e2e FAILED; flight-recorder JSONL from $CHAOS_FLIGHT_DIR:" >&2
    for f in "$CHAOS_FLIGHT_DIR"/*.jsonl; do
        [ -f "$f" ] || continue
        echo "--- $f ---" >&2
        cat "$f" >&2
    done
    exit 1
fi
unset CHAOS_FLIGHT_DIR
step_done

# The federated differential e2e is the correctness bar of the PR9
# aggregator tier: a 3-aggregator topology must produce byte-identical
# alarm decisions to the flat NOC (randproj exactly; FD in the
# one-monitor-per-aggregator pass-through configuration). Since PR10 the
# same regex also gates the identification differential — federated and
# flat deployments must name identical culprit sets. Run it explicitly so
# the merge path is gated even if someone narrows the package test filters
# above.
step "go test -race federated differential e2e"
go test -race -run 'TestFederated' ./internal/noc/
step_done

# Identification-quality gate (PR10): the anomography suite replays five
# labeled attack scenarios over a synthetic Abilene-like week (m=81 flows)
# and scores the culprits each online family names against the injected
# ground truth. Both randproj and fd must clear precision@3 >= 0.8 and
# recall >= 0.7 or the eval exits non-zero. The offline PCP comparator row
# is informational (printed, not gated). ~4s; fully seeded, so a failure
# is a real quality regression, not flake.
step "identification quality gate (abilene-eval -identify)"
go run ./cmd/abilene-eval -identify -identify-min-p3 0.8 -identify-min-recall 0.7
step_done

# Fuzz smokes: ten seconds of coverage-guided input on each hostile decoder
# (NetFlow v5 datagrams off the wire, trace CSVs off disk, FD snapshots from
# peer monitors). Go allows one -fuzz target per invocation.
step "fuzz smoke (NetFlow decoder, 10s)"
go test -run 'XXXnone' -fuzz '^FuzzDecodeDatagram$' -fuzztime 10s ./internal/ingest/ > /dev/null
step_done

step "fuzz smoke (trace CSV reader, 10s)"
go test -run 'XXXnone' -fuzz '^FuzzReadCSV$' -fuzztime 10s ./internal/traffic/ > /dev/null
step_done

step "fuzz smoke (FD snapshot absorb, 10s)"
go test -run 'XXXnone' -fuzz '^FuzzFDAbsorbSnapshot$' -fuzztime 10s ./internal/sketch/ > /dev/null
step_done

# The parallel kernels promise identical results for any worker count and any
# scheduling; re-run their determinism property tests under the race detector
# at two GOMAXPROCS settings so shard handoffs actually interleave.
step "go test -race, GOMAXPROCS=2 and 4 (par, mat, core, randproj, sketch)"
GOMAXPROCS=2 go test -race ./internal/par/... ./internal/mat/... ./internal/core/... ./internal/randproj/... ./internal/sketch/...
GOMAXPROCS=4 go test -race ./internal/par/... ./internal/mat/... ./internal/core/... ./internal/randproj/... ./internal/sketch/...
step_done

step "bench smoke (1 iteration per benchmark)"
go test . ./internal/... -run 'XXXnone' -bench . -benchtime 1x > /dev/null
step_done

step "benchcheck (vs BENCH_PR10.json)"
sh scripts/benchcheck.sh
step_done

# Short CPU-profile capture: one pprof per benchmark group under
# ci-artifacts/bench-profiles/, uploaded by the workflow alongside the chaos
# flight JSONL so a regression flagged above can be diagnosed offline.
step "bench CPU profiles (scripts/bench.sh -cpuprofile)"
bash scripts/bench.sh -cpuprofile 2> /dev/null
step_done

echo "ci.sh: all checks passed"
