#!/usr/bin/env sh
# Tier-1+ check: everything CI (or a reviewer) needs to trust a change.
#   ./ci.sh          vet + build + full test suite + race on the concurrent packages
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (par, transport, monitor, noc) =="
go test -race ./internal/par/... ./internal/transport/... ./internal/monitor/... ./internal/noc/...

# The parallel kernels promise identical results for any worker count and any
# scheduling; re-run their determinism property tests under the race detector
# at two GOMAXPROCS settings so shard handoffs actually interleave.
echo "== go test -race, GOMAXPROCS=2 and 4 (par, mat, core, randproj) =="
GOMAXPROCS=2 go test -race ./internal/par/... ./internal/mat/... ./internal/core/... ./internal/randproj/...
GOMAXPROCS=4 go test -race ./internal/par/... ./internal/mat/... ./internal/core/... ./internal/randproj/...

echo "== bench smoke (1 iteration per benchmark) =="
go test . ./internal/... -run 'XXXnone' -bench . -benchtime 1x > /dev/null

echo "ci.sh: all checks passed"
