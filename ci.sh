#!/usr/bin/env sh
# Tier-1+ check: everything CI (or a reviewer) needs to trust a change.
#   ./ci.sh          vet + build + full test suite + race on the concurrent packages
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (transport, monitor, noc) =="
go test -race ./internal/transport/... ./internal/monitor/... ./internal/noc/...

echo "ci.sh: all checks passed"
