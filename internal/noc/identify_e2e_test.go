package noc

import (
	"path/filepath"
	"reflect"
	"testing"

	"streampca/internal/sketch"
	"streampca/internal/trace"
)

// TestAlarmFlightRecordsCarryIdentification drives the full monitor → NOC
// deployment with the flight recorder on and asserts the identification leg
// of the alarm audit trail: every alarmed decision's flight record must
// carry the same culprit set (flows, amounts, confidences), explained
// fraction and stop reason the OnDecision callback saw, and the culprits
// must include a spiked flow.
func TestAlarmFlightRecordsCarryIdentification(t *testing.T) {
	const n = testWindow + 12
	const spikeAt = n - 4
	rows := genRows(n, testFlows, spikeAt)

	dir := flightDir(t)
	path := filepath.Join(dir, "identify-flight.jsonl")
	flight, err := trace.OpenFlightRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = flight.Close() })

	cfg := nocConfig()
	cfg.FlightRecorder = flight
	cfg.FlightTopK = 3
	svc, decisions := startNOC(t, cfg)
	mons := startMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	alarms := make(map[int64]Decision)
	for i := 0; i < n; i++ {
		iv := int64(i + 1)
		feedInterval(t, mons, iv, rows[i])
		d := nextDecision(t, decisions, iv)
		if d.Result.Anomalous {
			alarms[iv] = d
		}
	}
	if len(alarms) == 0 {
		t.Fatal("the spike burst raised no alarm — nothing to audit")
	}

	identified, spikedHits := 0, 0
	recs := readFlightRecords(t, path)
	byInterval := make(map[int64]*FlightRecord, len(recs))
	for i := range recs {
		byInterval[recs[i].Interval] = &recs[i]
	}
	for iv, d := range alarms {
		rec := byInterval[iv]
		if rec == nil {
			t.Fatalf("no flight record for alarm interval %d", iv)
		}
		if d.Identified == nil {
			if len(rec.Identified) != 0 {
				t.Fatalf("interval %d: flight record names %v but the decision carried no identification",
					iv, rec.Identified)
			}
			continue
		}
		if len(rec.Identified) != len(d.Identified.Flows) {
			t.Fatalf("interval %d: flight record names %d culprits, decision %d",
				iv, len(rec.Identified), len(d.Identified.Flows))
		}
		for j, f := range d.Identified.Flows {
			got := rec.Identified[j]
			if got.Flow != f.Flow || got.Amount != f.Amount || got.Confidence != f.Confidence {
				t.Fatalf("interval %d culprit %d: flight record %+v, decision %+v", iv, j, got, f)
			}
		}
		if rec.IdentifyExplained != d.Identified.ExplainedFrac || rec.IdentifyStop != d.Identified.Stop {
			t.Fatalf("interval %d: flight record explained=%v stop=%q, decision %v/%q",
				iv, rec.IdentifyExplained, rec.IdentifyStop, d.Identified.ExplainedFrac, d.Identified.Stop)
		}
		if len(d.Identified.Flows) == 0 {
			continue
		}
		identified++
		// Count intervals whose culprits include a flow spiked at that
		// interval ((2k)%m and (2k+1)%m for k = interval-1-spikeAt). A later
		// alarm may instead finger an earlier spike's direction left over in
		// the refreshed model, so the hit is asserted in aggregate below.
		k := int(iv-1) - spikeAt
		want := map[int]bool{(2 * k) % testFlows: true, (2*k + 1) % testFlows: true}
		for _, f := range d.Identified.Flows {
			if want[f.Flow] {
				spikedHits++
				break
			}
		}
	}
	if identified == 0 {
		t.Fatal("no alarm carried a non-empty identification — the audit is vacuous")
	}
	if spikedHits == 0 {
		t.Error("no identification named a flow spiked at its own interval")
	}
}

// TestFederatedIdentificationMatchesFlat extends the federated correctness
// bar to the identification path: the pursuit consumes only the in-force
// model and the assembled measurement vector, both byte-identical between
// the flat 6-monitor topology and 3 aggregators × 6 monitors (sketch
// linearity, Theorem 1) — so the identified culprit sets, amounts,
// confidences and stop reasons must match exactly too.
func TestFederatedIdentificationMatchesFlat(t *testing.T) {
	const n = testWindow + 40
	rows := genRows(n, testFlows, n-4)

	run := func(federated bool) []Decision {
		svc, decisions := startNOC(t, nocConfig())
		var feed func(iv int64, row []float64)
		if federated {
			fed := startFederation(t, svc.Addr(), 3, 6, testFlows, sketch.FamilyRandProj, testSketch, false, nil)
			waitMonitors(t, svc, 3)
			feed = func(iv int64, row []float64) { feedAssigned(t, fed.mons, testFlows, iv, row) }
			defer func() {
				for _, m := range fed.mons {
					_ = m.Close()
				}
			}()
		} else {
			flatMons := startMonitors(t, svc.Addr(), 6)
			waitMonitors(t, svc, 6)
			feed = func(iv int64, row []float64) { feedAssigned(t, flatMons, testFlows, iv, row) }
			defer func() {
				for _, m := range flatMons {
					_ = m.Close()
				}
			}()
		}
		out := make([]Decision, 0, n)
		for i := 0; i < n; i++ {
			iv := int64(i + 1)
			feed(iv, rows[i])
			out = append(out, nextDecision(t, decisions, iv))
		}
		svc.Shutdown()
		return out
	}

	flat := run(false)
	fed := run(true)

	withCulprits := 0
	for i := range flat {
		f, g := flat[i], fed[i]
		if f.Result.Anomalous != g.Result.Anomalous || f.Result.Distance != g.Result.Distance {
			t.Fatalf("interval %d: decisions diverged before identification:\n flat %+v\n fed  %+v",
				f.Interval, f.Result, g.Result)
		}
		if !reflect.DeepEqual(f.Identified, g.Identified) {
			t.Fatalf("interval %d: identifications diverged:\n flat %+v\n fed  %+v",
				f.Interval, f.Identified, g.Identified)
		}
		if f.Identified != nil && len(f.Identified.Flows) > 0 {
			withCulprits++
		}
	}
	if withCulprits == 0 {
		t.Fatal("no interval produced a non-empty identification — the differential is vacuous")
	}
}
