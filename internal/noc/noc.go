// Package noc implements the Network Operation Center service of Fig. 1:
// it accepts monitor connections, assembles per-interval network-wide
// measurement vectors from their volume reports, and drives the lazy
// sketch-PCA detection protocol (core.Detector) — pulling sketches from all
// monitors only when a measurement exceeds the current threshold.
package noc

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"streampca/internal/core"
	"streampca/internal/faults"
	"streampca/internal/obs"
	"streampca/internal/oracle"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
	"streampca/internal/trace"
	"streampca/internal/transport"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid service configuration.
	ErrConfig = errors.New("noc: invalid configuration")
	// ErrFetchTimeout indicates a sketch pull did not complete in time.
	ErrFetchTimeout = errors.New("noc: sketch fetch timed out")
	// ErrCoverage indicates the registered monitors do not cover all flows.
	ErrCoverage = errors.New("noc: incomplete flow coverage")
)

// Decision couples a detector decision with the interval it concerns.
type Decision struct {
	Interval int64
	Vector   []float64
	// Warmup is true for intervals before a full window has elapsed:
	// detection was skipped and Result is zero.
	Warmup bool
	// Degraded marks a decision made on incomplete inputs: missing volumes
	// were filled from each flow's last report and/or the model in force
	// was rebuilt from cached sketch reports (see DegradedPolicy).
	Degraded bool
	// StaleFlows counts the flows whose volumes came from cache for this
	// interval; the model's own substitution count is Result.StaleFlows.
	StaleFlows int
	Result     core.Decision
	// Identified is the anomography identification run on this decision
	// (alarmed decisions only; nil when the decision did not alarm, when
	// identification is disabled, or when it failed).
	Identified *core.Identification
}

// DegradedPolicy configures graceful degradation: instead of stalling when
// monitors are missing, the NOC substitutes each missing flow's last
// validated data — volumes when assembling the measurement vector, sketch
// reports when rebuilding the model — and flags the resulting decisions
// Degraded. Sharan et al. show sketch-based detection tolerates approximate
// inputs; the substitution trades Theorem 2's freshness for availability.
type DegradedPolicy struct {
	// Enabled turns degradation on. Off (the default), incomplete coverage
	// stalls interval assembly and sketch fetches fail with ErrCoverage.
	Enabled bool
	// MaxStaleness bounds, in intervals, how old cached volumes and sketch
	// reports may be and still stand in for a missing flow. Flows staler
	// than this block the interval (or fail the fetch) as before.
	// Defaults to WindowLen/4.
	MaxStaleness int64
}

// Config parameterizes the NOC service.
type Config struct {
	// Detector configures the sketch-PCA detector (flows, window, sketch
	// length, alpha, rank policy, sketcher family and model builder).
	Detector core.DetectorConfig
	// Seed is the shared randomness seed monitors must announce (randproj
	// family; FD monitors carry no shared randomness and announce 0). It
	// also seeds the fetch-backoff jitter for reproducible chaos tests.
	Seed uint64
	// FetchTimeout bounds one sketch-pull round; defaults to 5s.
	FetchTimeout time.Duration
	// FetchRetries is the number of additional pull rounds after the first
	// when responses are missing. Each round re-requests only the monitors
	// owning still-missing flows — partial results from earlier rounds are
	// kept, not discarded. 0 selects the default of 2; negative disables
	// retries.
	FetchRetries int
	// FetchBackoff is the pause before the first retry round; it doubles
	// each round (plus deterministic jitter) up to FetchBackoffMax.
	// Defaults: 50ms and 1s.
	FetchBackoff    time.Duration
	FetchBackoffMax time.Duration
	// BreakerThreshold opens a monitor's circuit breaker after this many
	// consecutive fetch failures (request send error, invalid report, or
	// response timeout). Open monitors are skipped by the fetch path until
	// BreakerCooldown elapses, then given one half-open probe; a success
	// closes the breaker, a failure re-arms the cooldown. 0 selects the
	// default of 3; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker excludes its monitor
	// before the half-open probe; defaults to 5s.
	BreakerCooldown time.Duration
	// Degraded configures graceful degradation when monitors are missing.
	Degraded DegradedPolicy
	// Faults, when non-nil, is installed on every accepted monitor
	// connection — the chaos-testing hook. Production leaves it nil.
	Faults faults.Injector
	// OnDecision, when set, receives every completed-interval decision.
	// It is called from the processing goroutine; keep it fast.
	OnDecision func(Decision)
	// MaxPendingIntervals bounds partially assembled intervals kept while
	// waiting for stragglers; defaults to 64.
	MaxPendingIntervals int
	// LocalSketches enables the paper's §V-A variant for thin monitors:
	// the NOC maintains the sketch state itself from the volume reports
	// (variance histograms for randproj, one FD buffer for FD), so monitors
	// need only run volume counters and are never asked for sketches. Costs
	// the NOC O(m·log n) extra time per interval and O(m·log²n) space for
	// randproj, O(ℓ·m) for FD.
	LocalSketches bool
	// Epsilon is the VH parameter when LocalSketches is set; defaults to
	// 0.01 (the paper's setting).
	Epsilon float64
	// Workers bounds the goroutines the retrain kernels (and the local
	// sketch state under LocalSketches) shard across; 0 selects
	// runtime.GOMAXPROCS(0). Fills Detector.Workers when that is unset.
	// Results are identical for any value (see internal/par).
	Workers int
	// SelfCheckEvery, when ≥ 1, enables the internal/oracle differential
	// validator: the NOC shadows every non-degraded completed interval
	// vector and every SelfCheckEvery-th interval validates the model in
	// force against an exact batch-PCA reference (Lemmas 5–6, Theorem 2,
	// alarm agreement), recording streampca_noc_oracle_* metrics and
	// logging violations. Costs a window-plus-slack copy of the interval
	// vectors and an O(n·m² + m³) pass per sampled interval; 0 (the
	// default) disables.
	SelfCheckEvery int
	// Obs is the metrics registry the service instruments into; nil creates
	// a private registry (instrumentation is always on).
	Obs *obs.Registry
	// Log receives structured logs; nil discards them.
	Log *slog.Logger
	// MetricsAddr, when non-empty, serves /metrics, /healthz and
	// /debug/pprof on that address once Serve is called; Shutdown closes
	// it. Empty (the default) opens no listener. With Trace set it also
	// serves the span ring on /debug/trace.
	MetricsAddr string
	// Trace, when non-nil, emits interval-lineage spans: one "noc.decide"
	// per completed interval with a child "noc.fetch" covering the §IV-C
	// sketch pull (retry rounds, breaker transitions and degraded
	// fallbacks recorded as events). Sketch requests carry the fetch
	// span's TraceContext so monitor-side serving spans parent under it.
	// Nil (the default) costs one pointer check per call site.
	Trace *trace.Tracer
	// FlightRecorder, when non-nil, appends one JSONL FlightRecord per
	// alarm and per degraded decision: trace ID, SPE vs threshold, top-k
	// residual flows and the contributing monitor set with sketch ages —
	// enough to reconstruct the decision offline. Nil disables.
	FlightRecorder *trace.FlightRecorder
	// FlightTopK is how many residual flows the flight recorder attributes
	// on alarm records (core.Detector.Attribute). 0 selects the default of
	// 5; negative disables the attribution. Attribution runs only on
	// alarmed decisions — quiet and merely-degraded intervals skip it.
	FlightTopK int
	// IdentifyMaxK caps the anomography culprits identified per alarmed
	// decision (core.Detector.Identify). 0 selects anomography's default;
	// negative disables identification entirely. Identifications are
	// attached to alarm broadcasts, flight records, OnDecision and the
	// streampca_noc_identify_* metrics.
	IdentifyMaxK int
}

// metrics is the NOC's instrumentation surface. All names are under
// streampca_noc_ and documented in README.md "Observability".
type metrics struct {
	observations *obs.Counter
	// retrains counts lazy-protocol model rebuilds; retrainSeconds times
	// the O(m²·log n) rebuild (fetch RTT excluded) and fetchSeconds the
	// §IV-C sketch-pull round trip.
	retrains       *obs.Counter
	retrainSeconds *obs.Histogram
	fetchSeconds   *obs.Histogram
	fetchErrors    *obs.Counter
	alarms         *obs.Counter
	alarmSends     *obs.Counter
	// spe and threshold expose the latest squared-prediction-error distance
	// d(y) and the Q-statistic control limit δ it was compared against.
	spe       *obs.Gauge
	threshold *obs.Gauge
	monitors  *obs.Gauge
	// aggregators counts the subset of registered peers that announced
	// RoleAggregator — per-shard accounting for the federated topology.
	aggregators *obs.Gauge
	rejects     *obs.Counter
	warmups     *obs.Counter
	intervals   *obs.Counter
	drops       *obs.Counter
	// workers exposes the resolved parallelism of the retrain kernels.
	workers *obs.Gauge
	// Fault-tolerance surface: retry rounds, degraded decisions, stale
	// substitutions and circuit-breaker state.
	fetchRetries *obs.Counter
	staleFlows   *obs.Gauge
	degraded     *obs.Counter
	breakerOpen  *obs.Gauge
	breakerOpens *obs.Counter
	// thresholdUnavailable counts intervals decided without a usable δ
	// (degenerate residual spectrum — the detector is blind, not "normal").
	thresholdUnavailable *obs.Counter
	// thresholdCapped gauges how many trailing residual components the
	// current model's Q threshold dropped to escape h0 ≤ 0 degeneracy
	// (0 = exact Jackson–Mudholkar limit).
	thresholdCapped *obs.Gauge
	// flightRecords counts audit lines written by the alarm flight recorder.
	flightRecords *obs.Counter
	// Anomography surface: identifications run on alarmed decisions, their
	// latency, the culprit count of the latest one, and failures.
	identifies      *obs.Counter
	identifySeconds *obs.Histogram
	identifiedFlows *obs.Gauge
	identifyErrors  *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		observations: reg.Counter("streampca_noc_observations_total",
			"Completed intervals run through the lazy detection protocol."),
		retrains: reg.Counter("streampca_noc_retrains_total",
			"Model rebuilds triggered by the lazy protocol (§IV-C fetch+retrain)."),
		retrainSeconds: reg.Histogram("streampca_noc_retrain_seconds",
			"Sketch-PCA model rebuild latency, fetch round-trip excluded (O(m^2 log n)).", nil),
		fetchSeconds: reg.Histogram("streampca_noc_fetch_seconds",
			"Sketch-pull round-trip latency across all monitors (§IV-C).", nil),
		fetchErrors: reg.Counter("streampca_noc_fetch_errors_total",
			"Sketch pulls that failed (timeout, coverage gap, bad report)."),
		alarms: reg.Counter("streampca_noc_alarms_total",
			"Anomaly alarms raised after a fresh-model re-check."),
		alarmSends: reg.Counter("streampca_noc_alarm_broadcasts_total",
			"Per-monitor alarm broadcast sends attempted."),
		spe: reg.Gauge("streampca_noc_spe",
			"Latest anomaly distance d(y) (residual-subspace magnitude)."),
		threshold: reg.Gauge("streampca_noc_threshold",
			"Current Q-statistic control limit delta_alpha."),
		monitors: reg.Gauge("streampca_noc_monitors_connected",
			"Currently registered local monitors."),
		aggregators: reg.Gauge("streampca_noc_aggregators_connected",
			"Currently registered mid-tier aggregators (subset of connected peers)."),
		rejects: reg.Counter("streampca_noc_registrations_rejected_total",
			"Monitor registrations refused (config or flow-ownership mismatch)."),
		warmups: reg.Counter("streampca_noc_warmup_intervals_total",
			"Completed intervals skipped during window warm-up."),
		intervals: reg.Counter("streampca_noc_intervals_total",
			"Completed network-wide measurement vectors assembled."),
		drops: reg.Counter("streampca_noc_dropped_intervals_total",
			"Intervals discarded (straggler eviction or saturated detector)."),
		workers: reg.Gauge("streampca_noc_workers",
			"Resolved worker count for the sharded retrain kernels."),
		fetchRetries: reg.Counter("streampca_noc_fetch_retries_total",
			"Sketch-pull retry rounds issued (re-requests of missing responses)."),
		staleFlows: reg.Gauge("streampca_noc_stale_flows",
			"Flows served from the sketch cache in the most recent model rebuild."),
		degraded: reg.Counter("streampca_noc_degraded_decisions_total",
			"Decisions emitted on substituted (cached) volumes or a stale-sketch model."),
		breakerOpen: reg.Gauge("streampca_noc_breaker_open",
			"Monitors currently excluded from sketch pulls by an open circuit breaker."),
		breakerOpens: reg.Counter("streampca_noc_breaker_opens_total",
			"Circuit-breaker open transitions (consecutive-failure threshold crossed)."),
		thresholdUnavailable: reg.Counter("streampca_noc_threshold_unavailable_total",
			"Intervals with no usable Q threshold (degenerate residual spectrum)."),
		thresholdCapped: reg.Gauge("streampca_noc_threshold_capped_components",
			"Trailing residual components dropped by residual-rank capping for the current model's Q threshold (0 = exact)."),
		flightRecords: reg.Counter("streampca_noc_flight_records_total",
			"Alarm/degraded-decision audit records appended to the flight recorder."),
		identifies: reg.Counter("streampca_noc_identify_total",
			"Anomography identifications run on alarmed decisions."),
		identifySeconds: reg.Histogram("streampca_noc_identify_seconds",
			"Anomography pursuit latency per alarmed decision.", nil),
		identifiedFlows: reg.Gauge("streampca_noc_identified_flows",
			"Culprit flows returned by the most recent identification."),
		identifyErrors: reg.Counter("streampca_noc_identify_errors_total",
			"Anomography identifications that failed."),
	}
}

type monitorEntry struct {
	id    string
	flows []int
	conn  *transport.Conn
	// role is what the peer announced in its Hello: a leaf monitor or a
	// mid-tier aggregator fronting a shard of monitors (federated topology).
	role transport.Role
}

type pendingFetch struct {
	respCh chan *transport.SketchResponse
}

type intervalAccum struct {
	volumes []float64
	seen    map[int]struct{}
}

// breakerState tracks a monitor's consecutive fetch failures. The breaker
// is open while failures >= Config.BreakerThreshold; openUntil gates the
// half-open probe.
type breakerState struct {
	failures  int
	openUntil time.Time
}

// sketchEntry is one flow's last validated sketch report, kept for
// DegradedPolicy fallback. Touched only from the processing goroutine.
type sketchEntry struct {
	sketch []float64
	mean   float64
	at     int64
}

// Service is the NOC. Start it with Serve, stop with Shutdown.
type Service struct {
	cfg    Config
	server *transport.Server
	log    *slog.Logger

	reg     *obs.Registry
	health  *obs.Health
	met     *metrics
	wireMet *transport.Metrics
	diag    *obs.Server

	mu        sync.Mutex
	monitors  map[*transport.Conn]*monitorEntry
	flowOwner map[int]*transport.Conn
	pending   map[uint64]*pendingFetch
	nextReq   uint64
	intervals map[int64]*intervalAccum
	// breakers is keyed by monitor ID (so it survives reconnects of the
	// same identity until a registration or success resets it).
	breakers map[string]*breakerState
	// lastVol/lastVolAt cache each flow's most recent reported volume for
	// degraded interval assembly; lastVolAt is -1 until first seen.
	lastVol      []float64
	lastVolAt    []int64
	lastInterval int64

	detMu sync.Mutex
	det   *core.Detector
	// oracle is the -selfcheck differential validator; nil when disabled.
	// Touched only from the processing goroutine.
	oracle *oracle.Checker
	// localMon holds the NOC-side variance histograms when LocalSketches
	// is enabled; accessed only from the processing goroutine.
	localMon *core.Monitor
	// sketchCache and rng are likewise processing-goroutine-only (the
	// fetch path): per-flow cached sketch reports and the backoff jitter
	// source, seeded from Config.Seed for reproducible chaos tests.
	sketchCache []sketchEntry
	// fdCache is the FD-family counterpart of sketchCache: each monitor's
	// last validated block snapshot, kept whole because FD blocks only merge
	// at block granularity. Processing-goroutine only.
	fdCache map[string]core.SketchReport
	rng     *rand.Rand
	// lastSketch remembers each monitor's most recent validated sketch
	// report interval, for flight-record sketch ages. Processing-goroutine
	// only (fetchRound writes, flight records read).
	lastSketch map[string]int64

	completeCh chan Decision // buffered channel feeding the processor
	workCh     chan workItem
	procDone   chan struct{}

	// serving records whether processLoop was started; Shutdown must not
	// wait on procDone otherwise. shutdownOnce makes Shutdown idempotent.
	serving      bool
	shutdownOnce sync.Once
}

type workItem struct {
	interval int64
	volumes  []float64
	// degraded marks intervals assembled with cached volumes for
	// staleFlows unowned flows (see DegradedPolicy).
	degraded   bool
	staleFlows int
}

// New validates cfg and builds the service (not yet listening).
func New(cfg Config) (*Service, error) {
	if cfg.Detector.Workers == 0 {
		cfg.Detector.Workers = cfg.Workers
	}
	det, err := core.NewDetector(cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 5 * time.Second
	}
	switch {
	case cfg.FetchRetries == 0:
		cfg.FetchRetries = 2
	case cfg.FetchRetries < 0:
		cfg.FetchRetries = 0
	}
	if cfg.FetchBackoff <= 0 {
		cfg.FetchBackoff = 50 * time.Millisecond
	}
	if cfg.FetchBackoffMax <= 0 {
		cfg.FetchBackoffMax = time.Second
	}
	if cfg.FetchBackoffMax < cfg.FetchBackoff {
		cfg.FetchBackoffMax = cfg.FetchBackoff
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 3
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.Degraded.Enabled && cfg.Degraded.MaxStaleness <= 0 {
		cfg.Degraded.MaxStaleness = int64(cfg.Detector.WindowLen / 4)
		if cfg.Degraded.MaxStaleness < 1 {
			cfg.Degraded.MaxStaleness = 1
		}
	}
	if cfg.MaxPendingIntervals <= 0 {
		cfg.MaxPendingIntervals = 64
	}
	if cfg.FlightTopK == 0 {
		cfg.FlightTopK = defaultFlightTopK
	}
	if cfg.SelfCheckEvery > 0 && cfg.Detector.Family == sketch.FamilyFD {
		return nil, fmt.Errorf("%w: the oracle self-check shadows variance histograms and only supports the randproj family", ErrConfig)
	}
	var localMon *core.Monitor
	if cfg.LocalSketches {
		mcfg := core.MonitorConfig{
			Family:    cfg.Detector.Family,
			WindowLen: cfg.Detector.WindowLen,
			Workers:   cfg.Workers,
		}
		switch cfg.Detector.Family {
		case sketch.FamilyRandProj:
			if cfg.Epsilon == 0 {
				cfg.Epsilon = 0.01
			}
			gen, err := randproj.NewGenerator(randproj.Config{
				Seed:      cfg.Seed,
				SketchLen: cfg.Detector.SketchLen,
				WindowLen: cfg.Detector.WindowLen,
			})
			if err != nil {
				return nil, fmt.Errorf("local sketch generator: %w", err)
			}
			mcfg.Epsilon = cfg.Epsilon
			mcfg.Gen = gen
		case sketch.FamilyFD:
			// One NOC-side FD buffer over all flows; the detector's
			// SketchLen carries the basis budget ℓ for this family.
			mcfg.FDEll = cfg.Detector.SketchLen
		}
		flowIDs := make([]int, cfg.Detector.NumFlows)
		for j := range flowIDs {
			flowIDs[j] = j
		}
		mcfg.FlowIDs = flowIDs
		var err error
		localMon, err = core.NewMonitor(mcfg)
		if err != nil {
			return nil, fmt.Errorf("local sketch state: %w", err)
		}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	m := cfg.Detector.NumFlows
	lastVolAt := make([]int64, m)
	for i := range lastVolAt {
		lastVolAt[i] = -1
	}
	s := &Service{
		cfg:         cfg,
		log:         log,
		reg:         reg,
		health:      obs.NewHealth(),
		met:         newMetrics(reg),
		wireMet:     transport.NewMetrics(reg),
		monitors:    make(map[*transport.Conn]*monitorEntry),
		flowOwner:   make(map[int]*transport.Conn),
		pending:     make(map[uint64]*pendingFetch),
		intervals:   make(map[int64]*intervalAccum),
		breakers:    make(map[string]*breakerState),
		lastVol:     make([]float64, m),
		lastVolAt:   lastVolAt,
		sketchCache: make([]sketchEntry, m),
		fdCache:     make(map[string]core.SketchReport),
		rng:         rand.New(rand.NewSource(int64(cfg.Seed) + 1)),
		lastSketch:  make(map[string]int64),
		det:         det,
		localMon:    localMon,
		workCh:      make(chan workItem, 256),
		procDone:    make(chan struct{}),
	}
	if cfg.SelfCheckEvery > 0 {
		eps := cfg.Epsilon
		if eps == 0 {
			eps = 0.01 // the paper's default; monitors own the real value
		}
		chk, err := oracle.NewChecker(oracle.CheckerConfig{
			Every:     cfg.SelfCheckEvery,
			WindowLen: cfg.Detector.WindowLen,
			Epsilon:   eps,
			Alpha:     cfg.Detector.Alpha,
			SketchLen: cfg.Detector.SketchLen,
			NumFlows:  m,
			Component: "noc",
			Log:       log,
			Reg:       reg,
		})
		if err != nil {
			return nil, fmt.Errorf("oracle checker: %w", err)
		}
		s.oracle = chk
	}
	s.met.workers.Set(float64(det.Config().Workers))
	s.health.Set("noc", obs.StatusDegraded, "not serving yet")
	s.health.Set("detector", obs.StatusDegraded, "no model built")
	return s, nil
}

// Registry exposes the metrics registry (shared when Config.Obs was set).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Health exposes the component health tracker backing /healthz.
func (s *Service) Health() *obs.Health { return s.health }

// DiagAddr returns the diagnostics server address, or "" when disabled.
func (s *Service) DiagAddr() string {
	if s.diag == nil {
		return ""
	}
	return s.diag.Addr()
}

// Serve starts listening on addr and processing intervals; when
// Config.MetricsAddr is set it also starts the diagnostics HTTP server.
func (s *Service) Serve(addr string) error {
	srv, err := transport.ListenWithOptions(addr, s.handleConn, s.wireMet, s.cfg.Faults)
	if err != nil {
		return err
	}
	if s.cfg.MetricsAddr != "" {
		diag, err := obs.StartServerWith(s.cfg.MetricsAddr, s.reg, s.health, s.cfg.Trace.Recorder(), s.log)
		if err != nil {
			srv.Shutdown()
			return err
		}
		s.diag = diag
	}
	s.mu.Lock()
	s.server = srv
	s.serving = true
	s.mu.Unlock()
	s.health.Set("noc", obs.StatusOK, "serving")
	s.log.Info("NOC serving", "addr", srv.Addr(),
		"flows", s.cfg.Detector.NumFlows, "window", s.cfg.Detector.WindowLen,
		"sketch", s.cfg.Detector.SketchLen)
	go s.processLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string { return s.server.Addr() }

// Shutdown stops the listener, drops all monitors, stops the processor and
// closes the diagnostics server after flushing a final stats summary. It is
// idempotent and safe to call even if Serve was never invoked.
func (s *Service) Shutdown() {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		srv, serving := s.server, s.serving
		s.mu.Unlock()
		if srv != nil {
			// Shutdown waits for every handleConn to return, so no sender
			// can race the close of workCh below.
			srv.Shutdown()
		}
		close(s.workCh)
		if serving {
			<-s.procDone
		}
		s.health.Set("noc", obs.StatusDown, "shut down")
		s.LogSummary()
		if s.diag != nil {
			_ = s.diag.Close()
		}
	})
}

// LogSummary emits the one-line slog stats summary daemons print
// periodically; Shutdown flushes it once more as the final snapshot.
func (s *Service) LogSummary() {
	observations, fetches, alarms := s.DetectorStats()
	s.log.Info("noc stats",
		"observations", observations,
		"fetches", fetches,
		"alarms", alarms,
		"intervals", s.met.intervals.Value(),
		"dropped", s.met.drops.Value(),
		"fetch_errors", s.met.fetchErrors.Value(),
		"fetch_retries", s.met.fetchRetries.Value(),
		"degraded", s.met.degraded.Value(),
		"monitors", int64(s.met.monitors.Value()),
	)
}

// HasModel reports whether the detector has built a model yet.
func (s *Service) HasModel() bool {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	return s.det.HasModel()
}

// DetectorStats returns the lazy-protocol counters. It is a compatibility
// shim over the registry-backed metrics: observations maps to
// streampca_noc_observations_total, fetches to streampca_noc_retrains_total
// (every successful fetch triggers exactly one rebuild) and alarms to
// streampca_noc_alarms_total.
func (s *Service) DetectorStats() (observations, fetches, alarms int64) {
	return s.met.observations.Value(), s.met.retrains.Value(), s.met.alarms.Value()
}

// Monitors returns the ids of currently registered monitors, sorted.
func (s *Service) Monitors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.monitors))
	for _, e := range s.monitors {
		out = append(out, e.id)
	}
	sort.Strings(out)
	return out
}

// handleConn is the per-connection reader: Hello registration, then volume
// reports and sketch responses until the peer drops.
func (s *Service) handleConn(conn *transport.Conn) {
	env, err := conn.Recv()
	if err != nil {
		return
	}
	if env.Hello == nil {
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: "first frame must be hello"}})
		return
	}
	if err := s.register(conn, env.Hello); err != nil {
		s.met.rejects.Inc()
		s.log.Warn("monitor rejected", "monitor", env.Hello.MonitorID, "err", err)
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: err.Error()}})
		return
	}
	defer s.unregister(conn)

	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		switch {
		case env.Volume != nil:
			s.addVolumes(env.Volume)
		case env.Response != nil:
			s.routeResponse(env.Response)
		case env.Hello != nil:
			// Re-hello on a live connection: an aggregator re-announces when
			// its flow union changes after a re-shard. A conflicting claim
			// gets the same reject-and-close as an initial Hello — the
			// peer's reconnect loop retries once the conflict clears.
			if err := s.register(conn, env.Hello); err != nil {
				s.met.rejects.Inc()
				s.log.Warn("re-registration rejected", "monitor", env.Hello.MonitorID, "err", err)
				_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: err.Error()}})
				return
			}
			// Flows that left the union are unowned now: pending intervals
			// blocked on them may be completable in degraded mode, exactly
			// as when their owner disconnects.
			s.mu.Lock()
			ready := s.completePendingLocked()
			s.mu.Unlock()
			for _, item := range ready {
				s.enqueue(item)
			}
		default:
			// Tolerate well-formed but unexpected frames.
		}
	}
}

// register validates a monitor's announced configuration and claims its flows.
func (s *Service) register(conn *transport.Conn, h *transport.Hello) error {
	d := s.cfg.Detector
	if h.Family != d.Family {
		return fmt.Errorf("%w: monitor %q runs sketcher family %v, NOC %v", ErrConfig, h.MonitorID, h.Family, d.Family)
	}
	if h.SketchLen != d.SketchLen {
		return fmt.Errorf("%w: monitor %q sketch length %d, NOC %d", ErrConfig, h.MonitorID, h.SketchLen, d.SketchLen)
	}
	if h.WindowLen != d.WindowLen {
		return fmt.Errorf("%w: monitor %q window %d, NOC %d", ErrConfig, h.MonitorID, h.WindowLen, d.WindowLen)
	}
	// Only the randproj family carries shared randomness; FD monitors
	// announce Seed 0 and there is nothing to agree on.
	if d.Family == sketch.FamilyRandProj && h.Seed != s.cfg.Seed {
		return fmt.Errorf("%w: monitor %q seed mismatch", ErrConfig, h.MonitorID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-registration on a live connection (an aggregator whose flow union
	// changed after a re-shard) first releases the old claim, so shrinking
	// unions free their flows for the peer that inherited them. A failed
	// re-hello leaves the connection unregistered; handleConn closes it and
	// the peer's reconnect loop retries with a fresh Hello.
	if old, ok := s.monitors[conn]; ok {
		delete(s.monitors, conn)
		for _, f := range old.flows {
			if s.flowOwner[f] == conn {
				delete(s.flowOwner, f)
			}
		}
	}
	for _, f := range h.FlowIDs {
		if f < 0 || f >= d.NumFlows {
			return fmt.Errorf("%w: monitor %q flow %d of %d", ErrConfig, h.MonitorID, f, d.NumFlows)
		}
		if owner, taken := s.flowOwner[f]; taken && owner != conn {
			return fmt.Errorf("%w: flow %d already owned", ErrConfig, f)
		}
	}
	entry := &monitorEntry{id: h.MonitorID, flows: append([]int(nil), h.FlowIDs...), conn: conn, role: h.Role}
	s.monitors[conn] = entry
	for _, f := range h.FlowIDs {
		s.flowOwner[f] = conn
	}
	// A (re-)registration is proof of life: forget past failures so the
	// fetch path asks this monitor again immediately.
	if _, tripped := s.breakers[h.MonitorID]; tripped {
		delete(s.breakers, h.MonitorID)
		s.breakerGaugeLocked()
	}
	s.peerGaugesLocked()
	s.log.Info("monitor registered", "monitor", h.MonitorID, "role", h.Role.String(),
		"flows", len(h.FlowIDs), "covered", len(s.flowOwner), "of", d.NumFlows)
	return nil
}

// peerGaugesLocked refreshes the connected-peer gauges. Caller holds s.mu.
func (s *Service) peerGaugesLocked() {
	aggs := 0
	for _, e := range s.monitors {
		if e.role == transport.RoleAggregator {
			aggs++
		}
	}
	s.met.monitors.Set(float64(len(s.monitors)))
	s.met.aggregators.Set(float64(aggs))
}

func (s *Service) unregister(conn *transport.Conn) {
	s.mu.Lock()
	entry, ok := s.monitors[conn]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.monitors, conn)
	for _, f := range entry.flows {
		if s.flowOwner[f] == conn {
			delete(s.flowOwner, f)
		}
	}
	s.peerGaugesLocked()
	// Losing an owner can make pending intervals completable in degraded
	// mode (its flows fall back to cached volumes); flush them oldest-first
	// so decisions stay ordered.
	ready := s.completePendingLocked()
	s.mu.Unlock()
	s.log.Info("monitor dropped", "monitor", entry.id, "flows", len(entry.flows))
	for _, item := range ready {
		s.enqueue(item)
	}
}

// completePendingLocked re-examines every pending interval after an
// ownership change and returns the newly completable ones in interval
// order. Caller holds s.mu.
func (s *Service) completePendingLocked() []workItem {
	var ready []workItem
	for iv, acc := range s.intervals {
		if item, ok := s.tryCompleteLocked(iv, acc); ok {
			ready = append(ready, item)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].interval < ready[j].interval })
	return ready
}

// addVolumes folds a volume report into its interval accumulator; a complete
// interval is queued for detection.
func (s *Service) addVolumes(v *transport.VolumeReport) {
	if len(v.FlowIDs) != len(v.Volumes) {
		return // malformed; drop
	}
	m := s.cfg.Detector.NumFlows

	s.mu.Lock()
	if v.Interval > s.lastInterval {
		s.lastInterval = v.Interval
	}
	acc, ok := s.intervals[v.Interval]
	if !ok {
		// Bound the number of partial intervals (drop the oldest).
		if len(s.intervals) >= s.cfg.MaxPendingIntervals {
			var oldest int64 = 1<<63 - 1
			for iv := range s.intervals {
				if iv < oldest {
					oldest = iv
				}
			}
			delete(s.intervals, oldest)
			s.met.drops.Inc()
		}
		acc = &intervalAccum{volumes: make([]float64, m), seen: make(map[int]struct{}, m)}
		s.intervals[v.Interval] = acc
	}
	for i, f := range v.FlowIDs {
		if f < 0 || f >= m {
			continue
		}
		if v.Interval >= s.lastVolAt[f] {
			s.lastVol[f] = v.Volumes[i]
			s.lastVolAt[f] = v.Interval
		}
		if _, dup := acc.seen[f]; dup {
			continue
		}
		acc.seen[f] = struct{}{}
		acc.volumes[f] = v.Volumes[i]
	}
	item, complete := s.tryCompleteLocked(v.Interval, acc)
	s.mu.Unlock()

	if complete {
		s.enqueue(item)
	}
}

// tryCompleteLocked decides whether interval iv can be dispatched: either
// every flow has reported, or — under DegradedPolicy — every currently-owned
// flow has reported and each unowned flow has a cached volume no staler than
// MaxStaleness to stand in. Owned-but-silent flows always block (their
// monitor is alive and its report is coming). Caller holds s.mu; on success
// the accumulator is removed from s.intervals.
func (s *Service) tryCompleteLocked(iv int64, acc *intervalAccum) (workItem, bool) {
	m := s.cfg.Detector.NumFlows
	if len(acc.seen) == m {
		delete(s.intervals, iv)
		return workItem{interval: iv, volumes: acc.volumes}, true
	}
	if !s.cfg.Degraded.Enabled {
		return workItem{}, false
	}
	// Check every missing flow is substitutable before mutating anything.
	stale := 0
	for f := 0; f < m; f++ {
		if _, ok := acc.seen[f]; ok {
			continue
		}
		if _, owned := s.flowOwner[f]; owned {
			return workItem{}, false
		}
		// Symmetric distance: a monitor that raced ahead before vanishing
		// leaves cache entries newer than iv, and backfilling an old
		// interval from the far future is as wrong as from the far past.
		age := iv - s.lastVolAt[f]
		if age < 0 {
			age = -age
		}
		if s.lastVolAt[f] < 0 || age > s.cfg.Degraded.MaxStaleness {
			return workItem{}, false
		}
		stale++
	}
	if stale == 0 {
		return workItem{}, false
	}
	for f := 0; f < m; f++ {
		if _, ok := acc.seen[f]; !ok {
			acc.volumes[f] = s.lastVol[f]
		}
	}
	delete(s.intervals, iv)
	return workItem{interval: iv, volumes: acc.volumes, degraded: true, staleFlows: stale}, true
}

// enqueue hands a completed interval to the processing goroutine,
// dropping it if the detector is saturated (never stall a monitor reader).
func (s *Service) enqueue(item workItem) {
	s.met.intervals.Inc()
	select {
	case s.workCh <- item:
	default:
		s.met.drops.Inc()
	}
}

// routeResponse hands a sketch response to the fetch waiting for it.
func (s *Service) routeResponse(r *transport.SketchResponse) {
	s.mu.Lock()
	p, ok := s.pending[r.RequestID]
	s.mu.Unlock()
	if !ok {
		return // late or unknown; ignore
	}
	select {
	case p.respCh <- r:
	default:
	}
}

// processLoop serializes detection over completed intervals. Intervals
// before a full window are reported as warm-up without running the detector
// — models built from partial sketches would be unreliable.
func (s *Service) processLoop() {
	defer close(s.procDone)
	for item := range s.workCh {
		// §V-A variant: the NOC owns the histograms, so it can test the
		// incoming vector BEFORE folding it in (detect-then-absorb, which
		// also limits model poisoning by the anomalous interval itself);
		// the fold happens after the decision below.
		absorb := func() {
			if s.localMon != nil && item.interval > s.localMon.Now() {
				_ = s.localMon.Update(item.interval, item.volumes)
			}
		}
		// Feed the oracle's exact shadow window. Degraded intervals are
		// withheld: their vectors contain cache-substituted volumes, and a
		// gap just makes the affected exact windows non-reconstructible
		// (checks skip) instead of silently comparing against wrong data.
		shadow := func(dec core.Decision, model *core.Model) {
			if s.oracle != nil && !item.degraded {
				s.oracle.ObserveNOC(item.interval, item.volumes, dec, model)
			}
		}
		sp := s.cfg.Trace.Start(trace.ForInterval(item.interval), 0, "noc.decide",
			trace.I("interval", item.interval),
			trace.B("vector_degraded", item.degraded),
			trace.I("stale_volume_flows", int64(item.staleFlows)))
		if item.interval < int64(s.cfg.Detector.WindowLen) {
			absorb()
			shadow(core.Decision{ThresholdUnavailable: true}, nil)
			s.met.warmups.Inc()
			sp.Event("warmup")
			if item.degraded {
				s.met.degraded.Inc()
				s.flightRecord(item, core.Decision{ThresholdUnavailable: true}, true, true, nil)
			}
			sp.End()
			if s.cfg.OnDecision != nil {
				s.cfg.OnDecision(Decision{Interval: item.interval, Vector: item.volumes,
					Warmup: true, Degraded: item.degraded, StaleFlows: item.staleFlows})
			}
			continue
		}
		fetch := s.fetchSketches
		if s.localMon != nil {
			fetch = s.fetchLocal
		}
		// Time the fetch round trip separately from the whole observation;
		// on a refresh, observe-minus-fetch is the rebuild cost (the
		// O(m²·log n) retrain the paper bounds).
		var fetchDur time.Duration
		timedFetch := func() (core.Fetch, error) {
			fsp := s.cfg.Trace.Start(sp.Trace(), sp.ID(), "noc.fetch")
			t0 := time.Now()
			f, err := fetch(fsp)
			fetchDur = time.Since(t0)
			s.met.fetchSeconds.Observe(fetchDur.Seconds())
			if err != nil {
				s.met.fetchErrors.Inc()
				fsp.Event("fetch_error", trace.S("err", err.Error()))
			} else {
				fsp.SetAttr(
					trace.I("sketch_interval", f.Interval),
					trace.B("degraded", f.Degraded),
					trace.I("stale_flows", int64(f.StaleFlows)))
			}
			fsp.End()
			return f, err
		}
		s.met.observations.Inc()
		start := time.Now()
		s.detMu.Lock()
		res, err := s.det.Observe(item.volumes, timedFetch)
		s.detMu.Unlock()
		total := time.Since(start)
		absorb()
		if err != nil {
			s.log.Warn("observation failed", "interval", item.interval, "err", err)
			sp.Event("observation_failed", trace.S("err", err.Error()))
			sp.End()
			continue // fetch failed (e.g. monitor churn); next interval retries
		}
		if res.Refreshed {
			s.met.retrains.Inc()
			retrain := total - fetchDur
			if retrain < 0 {
				retrain = 0
			}
			s.met.retrainSeconds.Observe(retrain.Seconds())
			sp.Event("retrain",
				trace.F("seconds", retrain.Seconds()),
				trace.B("model_degraded", res.Degraded),
				trace.I("model_stale_flows", int64(res.StaleFlows)))
			if res.Degraded {
				s.health.Set("detector", obs.StatusDegraded,
					fmt.Sprintf("model rebuilt with %d cached flows", res.StaleFlows))
			} else {
				s.health.Set("detector", obs.StatusOK, "model fresh")
			}
		}
		s.detMu.Lock()
		model := s.det.Model()
		s.detMu.Unlock()
		shadow(res, model)
		if model != nil {
			s.met.thresholdCapped.Set(float64(model.ThresholdCapped))
		}
		degraded := item.degraded || res.Degraded
		if degraded {
			s.met.degraded.Inc()
		}
		s.met.spe.Set(res.Distance)
		if res.ThresholdUnavailable {
			// The spectrum admits no Jackson–Mudholkar limit: the detector
			// could not compare d(y) against anything this interval. Surface
			// it loudly (the old behavior compared against NaN, which is
			// always false and silently never alarms) and leave the
			// threshold gauge at its last usable value.
			s.met.thresholdUnavailable.Inc()
			sp.Event("threshold_unavailable")
			s.health.Set("detector", obs.StatusDegraded,
				"threshold unavailable: degenerate residual spectrum")
			s.log.Warn("threshold unavailable, interval not classified",
				"interval", item.interval, "distance", res.Distance)
		} else {
			s.met.threshold.Set(res.Threshold)
		}
		sp.Event("decision",
			trace.F("spe", res.Distance),
			trace.F("threshold", res.Threshold),
			trace.B("anomalous", res.Anomalous),
			trace.B("degraded", degraded),
			trace.B("refreshed", res.Refreshed))
		var ident *core.Identification
		if res.Anomalous {
			s.met.alarms.Inc()
			ident = s.identify(item, sp)
			culprits := make([]int, 0, 8)
			if ident != nil {
				for _, f := range ident.Flows {
					culprits = append(culprits, f.Flow)
				}
			}
			s.log.Warn("anomaly detected", "interval", item.interval,
				"distance", res.Distance, "threshold", res.Threshold, "degraded", degraded,
				"culprits", culprits)
			var tc *transport.TraceContext
			if sp != nil {
				tc = &transport.TraceContext{TraceID: uint64(sp.Trace()), SpanID: uint64(sp.ID())}
			}
			sent := s.broadcastAlarm(transport.Alarm{
				Interval:   item.interval,
				Distance:   res.Distance,
				Threshold:  res.Threshold,
				Degraded:   degraded,
				Identified: wireIdentified(ident),
			}, tc)
			sp.Event("alarm_broadcast", trace.I("monitors", int64(sent)))
		}
		if res.Anomalous || degraded {
			s.flightRecord(item, res, false, degraded, ident)
		}
		sp.End()
		if s.cfg.OnDecision != nil {
			s.cfg.OnDecision(Decision{Interval: item.interval, Vector: item.volumes,
				Degraded: degraded, StaleFlows: item.staleFlows, Result: res,
				Identified: ident})
		}
	}
}

// fetchLocal implements core.FetchFunc from the NOC-side sketch state
// (§V-A variant). Called only from the processing goroutine.
func (s *Service) fetchLocal(sp *trace.Span) (core.Fetch, error) {
	sp.Event("local_sketches")
	rep := s.localMon.Report()
	if err := rep.Validate(s.cfg.Detector.SketchLen); err != nil {
		return core.Fetch{}, err
	}
	if s.cfg.Detector.Family == sketch.FamilyFD {
		return core.Fetch{Blocks: []core.SketchReport{rep}, Interval: rep.Interval}, nil
	}
	return core.Fetch{Sketches: rep.Sketches, Means: rep.Means, Interval: rep.Interval}, nil
}

// missingFlows lists the flows a pull has not yet covered.
func missingFlows(sketches [][]float64) []int {
	var miss []int
	for f, sk := range sketches {
		if sk == nil {
			miss = append(miss, f)
		}
	}
	return miss
}

// fdCovered marks a flow as covered by an FD block in the per-flow coverage
// bookkeeping (FD blocks are kept whole; there is no per-flow sketch vector
// to store, only the fact that some validated block owns the flow).
var fdCovered = []float64{}

// sortedBlocks flattens the per-monitor FD block map into a slice ordered by
// each block's smallest flow id — the same canonical key sketch.Merge uses.
// Ordering by content rather than registrant name keeps FD model assembly
// identical across topologies: a federated tier renames the registrants
// (aggregator ids instead of monitor ids) and rendezvous placement permutes
// which name fronts which shard, but the shards themselves are fixed, so a
// content key yields the same insertion order either way. Monitor id breaks
// the (never expected) tie of two blocks sharing a minimum flow.
func sortedBlocks(blocks map[string]core.SketchReport) []core.SketchReport {
	ids := make([]string, 0, len(blocks))
	for id := range blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := minBlockFlow(blocks[ids[a]]), minBlockFlow(blocks[ids[b]])
		if fa != fb {
			return fa < fb
		}
		return ids[a] < ids[b]
	})
	out := make([]core.SketchReport, 0, len(ids))
	for _, id := range ids {
		out = append(out, blocks[id])
	}
	return out
}

// minBlockFlow returns the smallest flow id a block covers (MaxInt for an
// empty block, which validation rejects upstream anyway).
func minBlockFlow(b core.SketchReport) int {
	min := math.MaxInt
	for _, id := range b.FlowIDs {
		if id < min {
			min = id
		}
	}
	return min
}

// fetchSketches implements core.FetchFunc over the registered monitors.
// It runs up to 1+FetchRetries rounds with capped exponential backoff,
// each round re-requesting only the monitors that still owe flows (partial
// results are kept across rounds, and each round uses a fresh request ID so
// a late response to an earlier round is dropped, never misattributed).
// If flows remain uncovered afterwards and DegradedPolicy allows it, each
// missing flow is served from its last validated sketch report (randproj:
// per-flow cache entries; FD: each absent monitor's whole cached block, since
// FD state only merges at block granularity).
//
// sp is the enclosing "noc.fetch" span (nil when tracing is off); retry
// rounds, per-monitor failures, breaker transitions and the degraded
// fallback are recorded on it as events.
func (s *Service) fetchSketches(sp *trace.Span) (core.Fetch, error) {
	m := s.cfg.Detector.NumFlows
	fd := s.cfg.Detector.Family == sketch.FamilyFD
	sketches := make([][]float64, m)
	means := make([]float64, m)
	var blocks map[string]core.SketchReport
	if fd {
		blocks = make(map[string]core.SketchReport)
	}
	var newest int64
	// up accumulates degradation reported by the responses themselves: an
	// aggregator that served part of its merge from its own degraded cache
	// tags the response, and the resulting model must be flagged exactly
	// like one rebuilt from this NOC's cache.
	var up fetchDegradation

	rounds := 1 + s.cfg.FetchRetries
	backoff := s.cfg.FetchBackoff
	attempted := 0
	for round := 0; round < rounds; round++ {
		miss := missingFlows(sketches)
		if len(miss) == 0 {
			break
		}
		if round > 0 {
			s.met.fetchRetries.Inc()
			// Capped exponential backoff with jitter in [0, backoff/2).
			d := backoff
			if j := int64(backoff / 2); j > 0 {
				d += time.Duration(s.rng.Int63n(j))
			}
			sp.Event("retry",
				trace.I("round", int64(round)),
				trace.I("missing_flows", int64(len(miss))),
				trace.F("backoff_ms", float64(d)/float64(time.Millisecond)))
			time.Sleep(d)
			if backoff *= 2; backoff > s.cfg.FetchBackoffMax {
				backoff = s.cfg.FetchBackoffMax
			}
			s.log.Info("sketch fetch retry", "round", round, "missing_flows", len(miss))
		}
		attempted = round + 1
		if s.fetchRound(sp, miss, sketches, means, blocks, &newest, &up) == 0 {
			// Nothing askable: the missing flows are unowned or their
			// monitors are breaker-open / unreachable. More rounds cannot
			// make progress within this fetch.
			break
		}
	}

	miss := missingFlows(sketches)
	if len(miss) == 0 {
		s.met.staleFlows.Set(float64(up.stale))
		if up.degraded {
			sp.Event("upstream_degraded", trace.I("stale_flows", int64(up.stale)))
			s.log.Warn("degraded upstream sketch fetch", "stale_flows", up.stale, "interval", newest)
		}
		f := core.Fetch{Interval: newest, Degraded: up.degraded, StaleFlows: up.stale}
		if fd {
			f.Blocks = sortedBlocks(blocks)
		} else {
			f.Sketches, f.Means = sketches, means
		}
		return f, nil
	}

	if s.cfg.Degraded.Enabled {
		s.mu.Lock()
		ref := s.lastInterval
		s.mu.Unlock()
		if newest > ref {
			ref = newest
		}
		var filled int
		var cachedNewest int64
		if fd {
			filled, cachedNewest = s.fdDegradedFill(sketches, blocks, ref)
		} else {
			for _, f := range miss {
				e := &s.sketchCache[f]
				if e.sketch == nil || ref-e.at > s.cfg.Degraded.MaxStaleness {
					continue
				}
				sketches[f] = e.sketch
				means[f] = e.mean
				if e.at > cachedNewest {
					cachedNewest = e.at
				}
				filled++
			}
		}
		if filled > 0 && len(missingFlows(sketches)) == 0 {
			if cachedNewest > newest && newest == 0 {
				newest = cachedNewest
			}
			s.met.staleFlows.Set(float64(filled + up.stale))
			sp.Event("degraded_fallback",
				trace.I("stale_flows", int64(filled+up.stale)),
				trace.I("rounds", int64(attempted)))
			s.log.Warn("degraded sketch fetch", "stale_flows", filled+up.stale,
				"rounds", attempted, "interval", newest)
			f := core.Fetch{Interval: newest, Degraded: true, StaleFlows: filled + up.stale}
			if fd {
				f.Blocks = sortedBlocks(blocks)
			} else {
				f.Sketches, f.Means = sketches, means
			}
			return f, nil
		}
	}
	return core.Fetch{}, fmt.Errorf("%w: %d of %d flows missing after %d rounds",
		ErrCoverage, len(miss), m, attempted)
}

// fdDegradedFill substitutes cached FD blocks for monitors that did not
// answer this fetch. A cached block is usable only whole: every flow it
// names must still be uncovered (a partially superseded block cannot merge
// without double-counting) and it must be no staler than MaxStaleness
// relative to ref. Blocks are considered in monitor-ID order for
// determinism. Returns the number of flows filled and the newest cached
// block interval used.
func (s *Service) fdDegradedFill(sketches [][]float64, blocks map[string]core.SketchReport, ref int64) (filled int, cachedNewest int64) {
	m := s.cfg.Detector.NumFlows
	ids := make([]string, 0, len(s.fdCache))
	for id := range s.fdCache {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, fresh := blocks[id]; fresh {
			continue
		}
		snap := s.fdCache[id]
		// Symmetric distance, matching tryCompleteLocked: a cached block from
		// the far future is as wrong as one from the far past.
		age := ref - snap.Interval
		if age < 0 {
			age = -age
		}
		if age > s.cfg.Degraded.MaxStaleness {
			continue
		}
		usable := len(snap.FlowIDs) > 0
		for _, f := range snap.FlowIDs {
			if f < 0 || f >= m || sketches[f] != nil {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		for _, f := range snap.FlowIDs {
			sketches[f] = fdCovered
		}
		blocks[id] = snap
		if snap.Interval > cachedNewest {
			cachedNewest = snap.Interval
		}
		filled += len(snap.FlowIDs)
	}
	return filled, cachedNewest
}

// fetchRound issues one sketch pull for the given missing flows and folds
// every validated response that arrives before FetchTimeout into
// sketches/means (randproj) or blocks (FD, with sketches as per-flow
// coverage bookkeeping). A failed send or bad report from one monitor never
// aborts the round — it is charged to that monitor's breaker and the others
// proceed. Returns the number of monitors successfully asked.
func (s *Service) fetchRound(sp *trace.Span, missing []int, sketches [][]float64, means []float64, blocks map[string]core.SketchReport, newest *int64, up *fetchDegradation) int {
	m := s.cfg.Detector.NumFlows
	now := time.Now()

	s.mu.Lock()
	targets := make(map[*transport.Conn]*monitorEntry)
	var skipped []string
	for _, f := range missing {
		if c, ok := s.flowOwner[f]; ok {
			if e, live := s.monitors[c]; live {
				if s.breakerAllowLocked(e.id, now) {
					targets[c] = e
				} else if _, seen := targets[c]; !seen {
					skipped = append(skipped, e.id)
				}
			}
		}
	}
	if len(targets) == 0 {
		s.mu.Unlock()
		for _, id := range dedupSorted(skipped) {
			sp.Event("breaker_skip", trace.S("monitor", id))
		}
		return 0
	}
	s.nextReq++
	id := s.nextReq
	p := &pendingFetch{respCh: make(chan *transport.SketchResponse, len(targets))}
	s.pending[id] = p
	s.mu.Unlock()
	for _, mid := range dedupSorted(skipped) {
		sp.Event("breaker_skip", trace.S("monitor", mid))
	}
	defer func() {
		// Deleting the entry makes routeResponse drop any straggler reply
		// to this round's ID.
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}()

	// Requests carry the fetch span's context so the monitor's serving
	// span parents under it (cross-process lineage).
	var tc *transport.TraceContext
	if sp != nil {
		tc = &transport.TraceContext{TraceID: uint64(sp.Trace()), SpanID: uint64(sp.ID())}
	}
	awaiting := make(map[string]bool, len(targets))
	for c, e := range targets {
		if err := c.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: id}, Trace: tc}); err != nil {
			s.log.Warn("sketch request send failed", "monitor", e.id, "err", err)
			sp.Event("request_send_failed", trace.S("monitor", e.id))
			if s.breakerFailure(e.id) {
				sp.Event("breaker_open", trace.S("monitor", e.id))
			}
			continue
		}
		awaiting[e.id] = true
	}
	asked := len(awaiting)
	if asked == 0 {
		return 0
	}

	timer := time.NewTimer(s.cfg.FetchTimeout)
	defer timer.Stop()
	for remaining := asked; remaining > 0; {
		select {
		case r := <-p.respCh:
			if !awaiting[r.MonitorID] {
				continue // duplicate or unknown responder
			}
			awaiting[r.MonitorID] = false
			remaining--
			if err := r.Report.Validate(s.cfg.Detector.SketchLen); err != nil {
				s.log.Warn("invalid sketch report", "monitor", r.MonitorID, "err", err)
				sp.Event("invalid_report", trace.S("monitor", r.MonitorID))
				if s.breakerFailure(r.MonitorID) {
					sp.Event("breaker_open", trace.S("monitor", r.MonitorID))
				}
				continue
			}
			if r.Report.Family != s.cfg.Detector.Family {
				s.log.Warn("sketch report from wrong family", "monitor", r.MonitorID,
					"family", r.Report.Family)
				sp.Event("invalid_report", trace.S("monitor", r.MonitorID))
				if s.breakerFailure(r.MonitorID) {
					sp.Event("breaker_open", trace.S("monitor", r.MonitorID))
				}
				continue
			}
			ok := true
			for _, f := range r.Report.FlowIDs {
				if f < 0 || f >= m {
					ok = false
					break
				}
			}
			if !ok {
				s.log.Warn("sketch report names unknown flow", "monitor", r.MonitorID)
				sp.Event("invalid_report", trace.S("monitor", r.MonitorID))
				if s.breakerFailure(r.MonitorID) {
					sp.Event("breaker_open", trace.S("monitor", r.MonitorID))
				}
				continue
			}
			if blocks != nil {
				for _, f := range r.Report.FlowIDs {
					sketches[f] = fdCovered
				}
				blocks[r.MonitorID] = r.Report
				s.fdCache[r.MonitorID] = r.Report
			} else {
				for i, f := range r.Report.FlowIDs {
					sketches[f] = r.Report.Sketches[i]
					means[f] = r.Report.Means[i]
				}
				s.cacheReport(&r.Report)
			}
			if r.Degraded {
				up.degraded = true
				up.stale += r.StaleFlows
			}
			if r.Report.Interval > *newest {
				*newest = r.Report.Interval
			}
			s.lastSketch[r.MonitorID] = r.Report.Interval
			sp.Event("report", trace.S("monitor", r.MonitorID),
				trace.I("sketch_interval", r.Report.Interval))
			if s.breakerSuccess(r.MonitorID) {
				sp.Event("breaker_close", trace.S("monitor", r.MonitorID))
			}
		case <-timer.C:
			for mid, waiting := range awaiting {
				if waiting {
					s.log.Warn("sketch response timed out", "monitor", mid,
						"request", id, "timeout", s.cfg.FetchTimeout)
					sp.Event("response_timeout", trace.S("monitor", mid))
					if s.breakerFailure(mid) {
						sp.Event("breaker_open", trace.S("monitor", mid))
					}
				}
			}
			return asked
		}
	}
	return asked
}

// fetchDegradation accumulates degradation carried by the sketch responses
// themselves (a federated aggregator serving part of its merge from cache),
// as opposed to degradation introduced by this NOC's own cache fallback.
type fetchDegradation struct {
	degraded bool
	stale    int
}

// dedupSorted sorts ids and removes duplicates (stable breaker_skip event
// order regardless of map iteration).
func dedupSorted(ids []string) []string {
	if len(ids) < 2 {
		return ids
	}
	sort.Strings(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// cacheReport remembers a validated report's per-flow sketches for the
// degraded fallback. Processing-goroutine only; Monitor.Report allocates
// fresh slices per call, so retaining them is safe.
func (s *Service) cacheReport(rep *core.SketchReport) {
	for i, f := range rep.FlowIDs {
		e := &s.sketchCache[f]
		if rep.Interval >= e.at || e.sketch == nil {
			e.sketch = rep.Sketches[i]
			e.mean = rep.Means[i]
			e.at = rep.Interval
		}
	}
}

// breakerAllowLocked reports whether monitor id may be asked for sketches:
// always while closed; once open, only after the cooldown (the half-open
// probe). Caller holds s.mu.
func (s *Service) breakerAllowLocked(id string, now time.Time) bool {
	b := s.breakers[id]
	if b == nil || s.cfg.BreakerThreshold <= 0 || b.failures < s.cfg.BreakerThreshold {
		return true
	}
	return !now.Before(b.openUntil)
}

// breakerFailure charges one consecutive failure to monitor id, opening
// (or re-arming) its breaker at the threshold. Reports whether this call
// performed the closed→open transition (for span events).
func (s *Service) breakerFailure(id string) bool {
	if s.cfg.BreakerThreshold <= 0 {
		return false
	}
	opened := false
	s.mu.Lock()
	b := s.breakers[id]
	if b == nil {
		b = &breakerState{}
		s.breakers[id] = b
	}
	b.failures++
	if b.failures >= s.cfg.BreakerThreshold {
		opened = b.failures == s.cfg.BreakerThreshold
		b.openUntil = time.Now().Add(s.cfg.BreakerCooldown)
		if opened {
			s.met.breakerOpens.Inc()
			s.log.Warn("circuit breaker opened", "monitor", id,
				"failures", b.failures, "cooldown", s.cfg.BreakerCooldown)
		}
		s.breakerGaugeLocked()
	}
	s.mu.Unlock()
	return opened
}

// breakerSuccess clears monitor id's failure streak. Reports whether an
// open breaker actually closed (for span events).
func (s *Service) breakerSuccess(id string) bool {
	closed := false
	s.mu.Lock()
	if b := s.breakers[id]; b != nil {
		if s.cfg.BreakerThreshold > 0 && b.failures >= s.cfg.BreakerThreshold {
			closed = true
			s.log.Info("circuit breaker closed", "monitor", id)
		}
		delete(s.breakers, id)
		s.breakerGaugeLocked()
	}
	s.mu.Unlock()
	return closed
}

// breakerGaugeLocked recomputes the open-breaker gauge. Caller holds s.mu.
func (s *Service) breakerGaugeLocked() {
	open := 0
	for _, b := range s.breakers {
		if s.cfg.BreakerThreshold > 0 && b.failures >= s.cfg.BreakerThreshold {
			open++
		}
	}
	s.met.breakerOpen.Set(float64(open))
}

// broadcastAlarm pushes an alarm to every monitor (with the decision
// span's trace context attached when tracing is on) and returns the number
// of sends attempted.
func (s *Service) broadcastAlarm(a transport.Alarm, tc *transport.TraceContext) int {
	s.mu.Lock()
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		s.met.alarmSends.Inc()
		_ = c.Send(transport.Envelope{Alarm: &a, Trace: tc}) // best effort
	}
	return len(conns)
}
