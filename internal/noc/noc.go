// Package noc implements the Network Operation Center service of Fig. 1:
// it accepts monitor connections, assembles per-interval network-wide
// measurement vectors from their volume reports, and drives the lazy
// sketch-PCA detection protocol (core.Detector) — pulling sketches from all
// monitors only when a measurement exceeds the current threshold.
package noc

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"streampca/internal/core"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid service configuration.
	ErrConfig = errors.New("noc: invalid configuration")
	// ErrFetchTimeout indicates a sketch pull did not complete in time.
	ErrFetchTimeout = errors.New("noc: sketch fetch timed out")
	// ErrCoverage indicates the registered monitors do not cover all flows.
	ErrCoverage = errors.New("noc: incomplete flow coverage")
)

// Decision couples a detector decision with the interval it concerns.
type Decision struct {
	Interval int64
	Vector   []float64
	// Warmup is true for intervals before a full window has elapsed:
	// detection was skipped and Result is zero.
	Warmup bool
	Result core.Decision
}

// Config parameterizes the NOC service.
type Config struct {
	// Detector configures the sketch-PCA detector (flows, window, sketch
	// length, alpha, rank policy).
	Detector core.DetectorConfig
	// Seed is the shared randomness seed monitors must announce.
	Seed uint64
	// FetchTimeout bounds a sketch pull; defaults to 5s.
	FetchTimeout time.Duration
	// OnDecision, when set, receives every completed-interval decision.
	// It is called from the processing goroutine; keep it fast.
	OnDecision func(Decision)
	// MaxPendingIntervals bounds partially assembled intervals kept while
	// waiting for stragglers; defaults to 64.
	MaxPendingIntervals int
	// LocalSketches enables the paper's §V-A variant for thin monitors:
	// the NOC maintains the variance histograms itself from the volume
	// reports, so monitors need only run volume counters and are never
	// asked for sketches. Costs the NOC O(m·log n) extra time per interval
	// and O(m·log²n) space.
	LocalSketches bool
	// Epsilon is the VH parameter when LocalSketches is set; defaults to
	// 0.01 (the paper's setting).
	Epsilon float64
	// Workers bounds the goroutines the retrain kernels (and the local
	// sketch state under LocalSketches) shard across; 0 selects
	// runtime.GOMAXPROCS(0). Fills Detector.Workers when that is unset.
	// Results are identical for any value (see internal/par).
	Workers int
	// Obs is the metrics registry the service instruments into; nil creates
	// a private registry (instrumentation is always on).
	Obs *obs.Registry
	// Log receives structured logs; nil discards them.
	Log *slog.Logger
	// MetricsAddr, when non-empty, serves /metrics, /healthz and
	// /debug/pprof on that address once Serve is called; Shutdown closes
	// it. Empty (the default) opens no listener.
	MetricsAddr string
}

// metrics is the NOC's instrumentation surface. All names are under
// streampca_noc_ and documented in README.md "Observability".
type metrics struct {
	observations *obs.Counter
	// retrains counts lazy-protocol model rebuilds; retrainSeconds times
	// the O(m²·log n) rebuild (fetch RTT excluded) and fetchSeconds the
	// §IV-C sketch-pull round trip.
	retrains       *obs.Counter
	retrainSeconds *obs.Histogram
	fetchSeconds   *obs.Histogram
	fetchErrors    *obs.Counter
	alarms         *obs.Counter
	alarmSends     *obs.Counter
	// spe and threshold expose the latest squared-prediction-error distance
	// d(y) and the Q-statistic control limit δ it was compared against.
	spe       *obs.Gauge
	threshold *obs.Gauge
	monitors  *obs.Gauge
	rejects   *obs.Counter
	warmups   *obs.Counter
	intervals *obs.Counter
	drops     *obs.Counter
	// workers exposes the resolved parallelism of the retrain kernels.
	workers *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		observations: reg.Counter("streampca_noc_observations_total",
			"Completed intervals run through the lazy detection protocol."),
		retrains: reg.Counter("streampca_noc_retrains_total",
			"Model rebuilds triggered by the lazy protocol (§IV-C fetch+retrain)."),
		retrainSeconds: reg.Histogram("streampca_noc_retrain_seconds",
			"Sketch-PCA model rebuild latency, fetch round-trip excluded (O(m^2 log n)).", nil),
		fetchSeconds: reg.Histogram("streampca_noc_fetch_seconds",
			"Sketch-pull round-trip latency across all monitors (§IV-C).", nil),
		fetchErrors: reg.Counter("streampca_noc_fetch_errors_total",
			"Sketch pulls that failed (timeout, coverage gap, bad report)."),
		alarms: reg.Counter("streampca_noc_alarms_total",
			"Anomaly alarms raised after a fresh-model re-check."),
		alarmSends: reg.Counter("streampca_noc_alarm_broadcasts_total",
			"Per-monitor alarm broadcast sends attempted."),
		spe: reg.Gauge("streampca_noc_spe",
			"Latest anomaly distance d(y) (residual-subspace magnitude)."),
		threshold: reg.Gauge("streampca_noc_threshold",
			"Current Q-statistic control limit delta_alpha."),
		monitors: reg.Gauge("streampca_noc_monitors_connected",
			"Currently registered local monitors."),
		rejects: reg.Counter("streampca_noc_registrations_rejected_total",
			"Monitor registrations refused (config or flow-ownership mismatch)."),
		warmups: reg.Counter("streampca_noc_warmup_intervals_total",
			"Completed intervals skipped during window warm-up."),
		intervals: reg.Counter("streampca_noc_intervals_total",
			"Completed network-wide measurement vectors assembled."),
		drops: reg.Counter("streampca_noc_dropped_intervals_total",
			"Intervals discarded (straggler eviction or saturated detector)."),
		workers: reg.Gauge("streampca_noc_workers",
			"Resolved worker count for the sharded retrain kernels."),
	}
}

type monitorEntry struct {
	id    string
	flows []int
	conn  *transport.Conn
}

type pendingFetch struct {
	expect int
	respCh chan *transport.SketchResponse
}

type intervalAccum struct {
	volumes []float64
	seen    map[int]struct{}
}

// Service is the NOC. Start it with Serve, stop with Shutdown.
type Service struct {
	cfg    Config
	server *transport.Server
	log    *slog.Logger

	reg     *obs.Registry
	health  *obs.Health
	met     *metrics
	wireMet *transport.Metrics
	diag    *obs.Server

	mu        sync.Mutex
	monitors  map[*transport.Conn]*monitorEntry
	flowOwner map[int]*transport.Conn
	pending   map[uint64]*pendingFetch
	nextReq   uint64
	intervals map[int64]*intervalAccum

	detMu sync.Mutex
	det   *core.Detector
	// localMon holds the NOC-side variance histograms when LocalSketches
	// is enabled; accessed only from the processing goroutine.
	localMon *core.Monitor

	completeCh chan Decision // buffered channel feeding the processor
	workCh     chan workItem
	procDone   chan struct{}

	// serving records whether processLoop was started; Shutdown must not
	// wait on procDone otherwise. shutdownOnce makes Shutdown idempotent.
	serving      bool
	shutdownOnce sync.Once
}

type workItem struct {
	interval int64
	volumes  []float64
}

// New validates cfg and builds the service (not yet listening).
func New(cfg Config) (*Service, error) {
	if cfg.Detector.Workers == 0 {
		cfg.Detector.Workers = cfg.Workers
	}
	det, err := core.NewDetector(cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 5 * time.Second
	}
	if cfg.MaxPendingIntervals <= 0 {
		cfg.MaxPendingIntervals = 64
	}
	var localMon *core.Monitor
	if cfg.LocalSketches {
		if cfg.Epsilon == 0 {
			cfg.Epsilon = 0.01
		}
		gen, err := randproj.NewGenerator(randproj.Config{
			Seed:      cfg.Seed,
			SketchLen: cfg.Detector.SketchLen,
			WindowLen: cfg.Detector.WindowLen,
		})
		if err != nil {
			return nil, fmt.Errorf("local sketch generator: %w", err)
		}
		flowIDs := make([]int, cfg.Detector.NumFlows)
		for j := range flowIDs {
			flowIDs[j] = j
		}
		localMon, err = core.NewMonitor(core.MonitorConfig{
			FlowIDs:   flowIDs,
			WindowLen: cfg.Detector.WindowLen,
			Epsilon:   cfg.Epsilon,
			Gen:       gen,
			Workers:   cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("local sketch state: %w", err)
		}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	s := &Service{
		cfg:       cfg,
		log:       log,
		reg:       reg,
		health:    obs.NewHealth(),
		met:       newMetrics(reg),
		wireMet:   transport.NewMetrics(reg),
		monitors:  make(map[*transport.Conn]*monitorEntry),
		flowOwner: make(map[int]*transport.Conn),
		pending:   make(map[uint64]*pendingFetch),
		intervals: make(map[int64]*intervalAccum),
		det:       det,
		localMon:  localMon,
		workCh:    make(chan workItem, 256),
		procDone:  make(chan struct{}),
	}
	s.met.workers.Set(float64(det.Config().Workers))
	s.health.Set("noc", obs.StatusDegraded, "not serving yet")
	s.health.Set("detector", obs.StatusDegraded, "no model built")
	return s, nil
}

// Registry exposes the metrics registry (shared when Config.Obs was set).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Health exposes the component health tracker backing /healthz.
func (s *Service) Health() *obs.Health { return s.health }

// DiagAddr returns the diagnostics server address, or "" when disabled.
func (s *Service) DiagAddr() string {
	if s.diag == nil {
		return ""
	}
	return s.diag.Addr()
}

// Serve starts listening on addr and processing intervals; when
// Config.MetricsAddr is set it also starts the diagnostics HTTP server.
func (s *Service) Serve(addr string) error {
	srv, err := transport.ListenWithMetrics(addr, s.handleConn, s.wireMet)
	if err != nil {
		return err
	}
	if s.cfg.MetricsAddr != "" {
		diag, err := obs.StartServer(s.cfg.MetricsAddr, s.reg, s.health, s.log)
		if err != nil {
			srv.Shutdown()
			return err
		}
		s.diag = diag
	}
	s.mu.Lock()
	s.server = srv
	s.serving = true
	s.mu.Unlock()
	s.health.Set("noc", obs.StatusOK, "serving")
	s.log.Info("NOC serving", "addr", srv.Addr(),
		"flows", s.cfg.Detector.NumFlows, "window", s.cfg.Detector.WindowLen,
		"sketch", s.cfg.Detector.SketchLen)
	go s.processLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string { return s.server.Addr() }

// Shutdown stops the listener, drops all monitors, stops the processor and
// closes the diagnostics server after flushing a final stats summary. It is
// idempotent and safe to call even if Serve was never invoked.
func (s *Service) Shutdown() {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		srv, serving := s.server, s.serving
		s.mu.Unlock()
		if srv != nil {
			// Shutdown waits for every handleConn to return, so no sender
			// can race the close of workCh below.
			srv.Shutdown()
		}
		close(s.workCh)
		if serving {
			<-s.procDone
		}
		s.health.Set("noc", obs.StatusDown, "shut down")
		s.LogSummary()
		if s.diag != nil {
			_ = s.diag.Close()
		}
	})
}

// LogSummary emits the one-line slog stats summary daemons print
// periodically; Shutdown flushes it once more as the final snapshot.
func (s *Service) LogSummary() {
	observations, fetches, alarms := s.DetectorStats()
	s.log.Info("noc stats",
		"observations", observations,
		"fetches", fetches,
		"alarms", alarms,
		"intervals", s.met.intervals.Value(),
		"dropped", s.met.drops.Value(),
		"fetch_errors", s.met.fetchErrors.Value(),
		"monitors", int64(s.met.monitors.Value()),
	)
}

// HasModel reports whether the detector has built a model yet.
func (s *Service) HasModel() bool {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	return s.det.HasModel()
}

// DetectorStats returns the lazy-protocol counters. It is a compatibility
// shim over the registry-backed metrics: observations maps to
// streampca_noc_observations_total, fetches to streampca_noc_retrains_total
// (every successful fetch triggers exactly one rebuild) and alarms to
// streampca_noc_alarms_total.
func (s *Service) DetectorStats() (observations, fetches, alarms int64) {
	return s.met.observations.Value(), s.met.retrains.Value(), s.met.alarms.Value()
}

// Monitors returns the ids of currently registered monitors, sorted.
func (s *Service) Monitors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.monitors))
	for _, e := range s.monitors {
		out = append(out, e.id)
	}
	sort.Strings(out)
	return out
}

// handleConn is the per-connection reader: Hello registration, then volume
// reports and sketch responses until the peer drops.
func (s *Service) handleConn(conn *transport.Conn) {
	env, err := conn.Recv()
	if err != nil {
		return
	}
	if env.Hello == nil {
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: "first frame must be hello"}})
		return
	}
	if err := s.register(conn, env.Hello); err != nil {
		s.met.rejects.Inc()
		s.log.Warn("monitor rejected", "monitor", env.Hello.MonitorID, "err", err)
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: err.Error()}})
		return
	}
	defer s.unregister(conn)

	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		switch {
		case env.Volume != nil:
			s.addVolumes(env.Volume)
		case env.Response != nil:
			s.routeResponse(env.Response)
		default:
			// Tolerate well-formed but unexpected frames.
		}
	}
}

// register validates a monitor's announced configuration and claims its flows.
func (s *Service) register(conn *transport.Conn, h *transport.Hello) error {
	d := s.cfg.Detector
	if h.SketchLen != d.SketchLen {
		return fmt.Errorf("%w: monitor %q sketch length %d, NOC %d", ErrConfig, h.MonitorID, h.SketchLen, d.SketchLen)
	}
	if h.WindowLen != d.WindowLen {
		return fmt.Errorf("%w: monitor %q window %d, NOC %d", ErrConfig, h.MonitorID, h.WindowLen, d.WindowLen)
	}
	if h.Seed != s.cfg.Seed {
		return fmt.Errorf("%w: monitor %q seed mismatch", ErrConfig, h.MonitorID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range h.FlowIDs {
		if f < 0 || f >= d.NumFlows {
			return fmt.Errorf("%w: monitor %q flow %d of %d", ErrConfig, h.MonitorID, f, d.NumFlows)
		}
		if owner, taken := s.flowOwner[f]; taken && owner != conn {
			return fmt.Errorf("%w: flow %d already owned", ErrConfig, f)
		}
	}
	entry := &monitorEntry{id: h.MonitorID, flows: append([]int(nil), h.FlowIDs...), conn: conn}
	s.monitors[conn] = entry
	for _, f := range h.FlowIDs {
		s.flowOwner[f] = conn
	}
	s.met.monitors.Set(float64(len(s.monitors)))
	s.log.Info("monitor registered", "monitor", h.MonitorID, "flows", len(h.FlowIDs),
		"covered", len(s.flowOwner), "of", d.NumFlows)
	return nil
}

func (s *Service) unregister(conn *transport.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.monitors[conn]
	if !ok {
		return
	}
	delete(s.monitors, conn)
	for _, f := range entry.flows {
		if s.flowOwner[f] == conn {
			delete(s.flowOwner, f)
		}
	}
	s.met.monitors.Set(float64(len(s.monitors)))
	s.log.Info("monitor dropped", "monitor", entry.id, "flows", len(entry.flows))
}

// addVolumes folds a volume report into its interval accumulator; a complete
// interval is queued for detection.
func (s *Service) addVolumes(v *transport.VolumeReport) {
	if len(v.FlowIDs) != len(v.Volumes) {
		return // malformed; drop
	}
	m := s.cfg.Detector.NumFlows

	s.mu.Lock()
	acc, ok := s.intervals[v.Interval]
	if !ok {
		// Bound the number of partial intervals (drop the oldest).
		if len(s.intervals) >= s.cfg.MaxPendingIntervals {
			var oldest int64 = 1<<63 - 1
			for iv := range s.intervals {
				if iv < oldest {
					oldest = iv
				}
			}
			delete(s.intervals, oldest)
			s.met.drops.Inc()
		}
		acc = &intervalAccum{volumes: make([]float64, m), seen: make(map[int]struct{}, m)}
		s.intervals[v.Interval] = acc
	}
	for i, f := range v.FlowIDs {
		if f < 0 || f >= m {
			continue
		}
		if _, dup := acc.seen[f]; dup {
			continue
		}
		acc.seen[f] = struct{}{}
		acc.volumes[f] = v.Volumes[i]
	}
	complete := len(acc.seen) == m
	var item workItem
	if complete {
		item = workItem{interval: v.Interval, volumes: acc.volumes}
		delete(s.intervals, v.Interval)
	}
	s.mu.Unlock()

	if complete {
		s.met.intervals.Inc()
		select {
		case s.workCh <- item:
		default:
			// Detector is saturated; drop the interval rather than stall
			// every monitor connection.
			s.met.drops.Inc()
		}
	}
}

// routeResponse hands a sketch response to the fetch waiting for it.
func (s *Service) routeResponse(r *transport.SketchResponse) {
	s.mu.Lock()
	p, ok := s.pending[r.RequestID]
	s.mu.Unlock()
	if !ok {
		return // late or unknown; ignore
	}
	select {
	case p.respCh <- r:
	default:
	}
}

// processLoop serializes detection over completed intervals. Intervals
// before a full window are reported as warm-up without running the detector
// — models built from partial sketches would be unreliable.
func (s *Service) processLoop() {
	defer close(s.procDone)
	for item := range s.workCh {
		// §V-A variant: the NOC owns the histograms, so it can test the
		// incoming vector BEFORE folding it in (detect-then-absorb, which
		// also limits model poisoning by the anomalous interval itself);
		// the fold happens after the decision below.
		absorb := func() {
			if s.localMon != nil && item.interval > s.localMon.Now() {
				_ = s.localMon.Update(item.interval, item.volumes)
			}
		}
		if item.interval < int64(s.cfg.Detector.WindowLen) {
			absorb()
			s.met.warmups.Inc()
			if s.cfg.OnDecision != nil {
				s.cfg.OnDecision(Decision{Interval: item.interval, Vector: item.volumes, Warmup: true})
			}
			continue
		}
		fetch := s.fetchSketches
		if s.localMon != nil {
			fetch = s.fetchLocal
		}
		// Time the fetch round trip separately from the whole observation;
		// on a refresh, observe-minus-fetch is the rebuild cost (the
		// O(m²·log n) retrain the paper bounds).
		var fetchDur time.Duration
		timedFetch := func() ([][]float64, []float64, int64, error) {
			t0 := time.Now()
			sketches, means, interval, err := fetch()
			fetchDur = time.Since(t0)
			s.met.fetchSeconds.Observe(fetchDur.Seconds())
			if err != nil {
				s.met.fetchErrors.Inc()
			}
			return sketches, means, interval, err
		}
		s.met.observations.Inc()
		start := time.Now()
		s.detMu.Lock()
		res, err := s.det.Observe(item.volumes, timedFetch)
		s.detMu.Unlock()
		total := time.Since(start)
		absorb()
		if err != nil {
			s.log.Warn("observation failed", "interval", item.interval, "err", err)
			continue // fetch failed (e.g. monitor churn); next interval retries
		}
		if res.Refreshed {
			s.met.retrains.Inc()
			retrain := total - fetchDur
			if retrain < 0 {
				retrain = 0
			}
			s.met.retrainSeconds.Observe(retrain.Seconds())
			s.health.Set("detector", obs.StatusOK, "model fresh")
		}
		s.met.spe.Set(res.Distance)
		s.met.threshold.Set(res.Threshold)
		if res.Anomalous {
			s.met.alarms.Inc()
			s.log.Warn("anomaly detected", "interval", item.interval,
				"distance", res.Distance, "threshold", res.Threshold)
			s.broadcastAlarm(transport.Alarm{
				Interval:  item.interval,
				Distance:  res.Distance,
				Threshold: res.Threshold,
			})
		}
		if s.cfg.OnDecision != nil {
			s.cfg.OnDecision(Decision{Interval: item.interval, Vector: item.volumes, Result: res})
		}
	}
}

// fetchLocal implements core.FetchFunc from the NOC-side histograms
// (§V-A variant). Called only from the processing goroutine.
func (s *Service) fetchLocal() ([][]float64, []float64, int64, error) {
	rep := s.localMon.Report()
	if err := rep.Validate(s.cfg.Detector.SketchLen); err != nil {
		return nil, nil, 0, err
	}
	return rep.Sketches, rep.Means, rep.Interval, nil
}

// fetchSketches implements core.FetchFunc over the registered monitors.
func (s *Service) fetchSketches() ([][]float64, []float64, int64, error) {
	m := s.cfg.Detector.NumFlows

	s.mu.Lock()
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	covered := len(s.flowOwner)
	s.nextReq++
	id := s.nextReq
	p := &pendingFetch{expect: len(conns), respCh: make(chan *transport.SketchResponse, len(conns))}
	s.pending[id] = p
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}()

	if covered < m {
		return nil, nil, 0, fmt.Errorf("%w: %d of %d flows owned", ErrCoverage, covered, m)
	}

	for _, c := range conns {
		if err := c.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: id}}); err != nil {
			return nil, nil, 0, fmt.Errorf("sketch request: %w", err)
		}
	}

	sketches := make([][]float64, m)
	means := make([]float64, m)
	var newest int64
	timer := time.NewTimer(s.cfg.FetchTimeout)
	defer timer.Stop()
	for got := 0; got < p.expect; got++ {
		select {
		case r := <-p.respCh:
			if err := r.Report.Validate(s.cfg.Detector.SketchLen); err != nil {
				return nil, nil, 0, fmt.Errorf("monitor %q report: %w", r.MonitorID, err)
			}
			for i, f := range r.Report.FlowIDs {
				if f < 0 || f >= m {
					return nil, nil, 0, fmt.Errorf("%w: reported flow %d", ErrConfig, f)
				}
				sketches[f] = r.Report.Sketches[i]
				means[f] = r.Report.Means[i]
			}
			if r.Report.Interval > newest {
				newest = r.Report.Interval
			}
		case <-timer.C:
			return nil, nil, 0, fmt.Errorf("%w after %v (%d/%d responses)",
				ErrFetchTimeout, s.cfg.FetchTimeout, got, p.expect)
		}
	}
	for f, sk := range sketches {
		if sk == nil {
			return nil, nil, 0, fmt.Errorf("%w: flow %d missing from responses", ErrCoverage, f)
		}
	}
	return sketches, means, newest, nil
}

// broadcastAlarm pushes an alarm to every monitor.
func (s *Service) broadcastAlarm(a transport.Alarm) {
	s.mu.Lock()
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		s.met.alarmSends.Inc()
		_ = c.Send(transport.Envelope{Alarm: &a}) // best effort
	}
}
