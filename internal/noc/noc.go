// Package noc implements the Network Operation Center service of Fig. 1:
// it accepts monitor connections, assembles per-interval network-wide
// measurement vectors from their volume reports, and drives the lazy
// sketch-PCA detection protocol (core.Detector) — pulling sketches from all
// monitors only when a measurement exceeds the current threshold.
package noc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"streampca/internal/core"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid service configuration.
	ErrConfig = errors.New("noc: invalid configuration")
	// ErrFetchTimeout indicates a sketch pull did not complete in time.
	ErrFetchTimeout = errors.New("noc: sketch fetch timed out")
	// ErrCoverage indicates the registered monitors do not cover all flows.
	ErrCoverage = errors.New("noc: incomplete flow coverage")
)

// Decision couples a detector decision with the interval it concerns.
type Decision struct {
	Interval int64
	Vector   []float64
	// Warmup is true for intervals before a full window has elapsed:
	// detection was skipped and Result is zero.
	Warmup bool
	Result core.Decision
}

// Config parameterizes the NOC service.
type Config struct {
	// Detector configures the sketch-PCA detector (flows, window, sketch
	// length, alpha, rank policy).
	Detector core.DetectorConfig
	// Seed is the shared randomness seed monitors must announce.
	Seed uint64
	// FetchTimeout bounds a sketch pull; defaults to 5s.
	FetchTimeout time.Duration
	// OnDecision, when set, receives every completed-interval decision.
	// It is called from the processing goroutine; keep it fast.
	OnDecision func(Decision)
	// MaxPendingIntervals bounds partially assembled intervals kept while
	// waiting for stragglers; defaults to 64.
	MaxPendingIntervals int
	// LocalSketches enables the paper's §V-A variant for thin monitors:
	// the NOC maintains the variance histograms itself from the volume
	// reports, so monitors need only run volume counters and are never
	// asked for sketches. Costs the NOC O(m·log n) extra time per interval
	// and O(m·log²n) space.
	LocalSketches bool
	// Epsilon is the VH parameter when LocalSketches is set; defaults to
	// 0.01 (the paper's setting).
	Epsilon float64
}

type monitorEntry struct {
	id    string
	flows []int
	conn  *transport.Conn
}

type pendingFetch struct {
	expect int
	respCh chan *transport.SketchResponse
}

type intervalAccum struct {
	volumes []float64
	seen    map[int]struct{}
}

// Service is the NOC. Start it with Serve, stop with Shutdown.
type Service struct {
	cfg    Config
	server *transport.Server

	mu        sync.Mutex
	monitors  map[*transport.Conn]*monitorEntry
	flowOwner map[int]*transport.Conn
	pending   map[uint64]*pendingFetch
	nextReq   uint64
	intervals map[int64]*intervalAccum

	detMu sync.Mutex
	det   *core.Detector
	// localMon holds the NOC-side variance histograms when LocalSketches
	// is enabled; accessed only from the processing goroutine.
	localMon *core.Monitor

	completeCh chan Decision // buffered channel feeding the processor
	workCh     chan workItem
	procDone   chan struct{}
}

type workItem struct {
	interval int64
	volumes  []float64
}

// New validates cfg and builds the service (not yet listening).
func New(cfg Config) (*Service, error) {
	det, err := core.NewDetector(cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 5 * time.Second
	}
	if cfg.MaxPendingIntervals <= 0 {
		cfg.MaxPendingIntervals = 64
	}
	var localMon *core.Monitor
	if cfg.LocalSketches {
		if cfg.Epsilon == 0 {
			cfg.Epsilon = 0.01
		}
		gen, err := randproj.NewGenerator(randproj.Config{
			Seed:      cfg.Seed,
			SketchLen: cfg.Detector.SketchLen,
			WindowLen: cfg.Detector.WindowLen,
		})
		if err != nil {
			return nil, fmt.Errorf("local sketch generator: %w", err)
		}
		flowIDs := make([]int, cfg.Detector.NumFlows)
		for j := range flowIDs {
			flowIDs[j] = j
		}
		localMon, err = core.NewMonitor(core.MonitorConfig{
			FlowIDs:   flowIDs,
			WindowLen: cfg.Detector.WindowLen,
			Epsilon:   cfg.Epsilon,
			Gen:       gen,
		})
		if err != nil {
			return nil, fmt.Errorf("local sketch state: %w", err)
		}
	}
	return &Service{
		cfg:       cfg,
		monitors:  make(map[*transport.Conn]*monitorEntry),
		flowOwner: make(map[int]*transport.Conn),
		pending:   make(map[uint64]*pendingFetch),
		intervals: make(map[int64]*intervalAccum),
		det:       det,
		localMon:  localMon,
		workCh:    make(chan workItem, 256),
		procDone:  make(chan struct{}),
	}, nil
}

// Serve starts listening on addr and processing intervals.
func (s *Service) Serve(addr string) error {
	srv, err := transport.Listen(addr, s.handleConn)
	if err != nil {
		return err
	}
	s.server = srv
	go s.processLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string { return s.server.Addr() }

// Shutdown stops the listener, drops all monitors and stops the processor.
func (s *Service) Shutdown() {
	if s.server != nil {
		s.server.Shutdown()
	}
	close(s.workCh)
	<-s.procDone
}

// HasModel reports whether the detector has built a model yet.
func (s *Service) HasModel() bool {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	return s.det.HasModel()
}

// DetectorStats returns the lazy-protocol counters.
func (s *Service) DetectorStats() (observations, fetches, alarms int64) {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	return s.det.Stats()
}

// Monitors returns the ids of currently registered monitors, sorted.
func (s *Service) Monitors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.monitors))
	for _, e := range s.monitors {
		out = append(out, e.id)
	}
	sort.Strings(out)
	return out
}

// handleConn is the per-connection reader: Hello registration, then volume
// reports and sketch responses until the peer drops.
func (s *Service) handleConn(conn *transport.Conn) {
	env, err := conn.Recv()
	if err != nil {
		return
	}
	if env.Hello == nil {
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: "first frame must be hello"}})
		return
	}
	if err := s.register(conn, env.Hello); err != nil {
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: err.Error()}})
		return
	}
	defer s.unregister(conn)

	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		switch {
		case env.Volume != nil:
			s.addVolumes(env.Volume)
		case env.Response != nil:
			s.routeResponse(env.Response)
		default:
			// Tolerate well-formed but unexpected frames.
		}
	}
}

// register validates a monitor's announced configuration and claims its flows.
func (s *Service) register(conn *transport.Conn, h *transport.Hello) error {
	d := s.cfg.Detector
	if h.SketchLen != d.SketchLen {
		return fmt.Errorf("%w: monitor %q sketch length %d, NOC %d", ErrConfig, h.MonitorID, h.SketchLen, d.SketchLen)
	}
	if h.WindowLen != d.WindowLen {
		return fmt.Errorf("%w: monitor %q window %d, NOC %d", ErrConfig, h.MonitorID, h.WindowLen, d.WindowLen)
	}
	if h.Seed != s.cfg.Seed {
		return fmt.Errorf("%w: monitor %q seed mismatch", ErrConfig, h.MonitorID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range h.FlowIDs {
		if f < 0 || f >= d.NumFlows {
			return fmt.Errorf("%w: monitor %q flow %d of %d", ErrConfig, h.MonitorID, f, d.NumFlows)
		}
		if owner, taken := s.flowOwner[f]; taken && owner != conn {
			return fmt.Errorf("%w: flow %d already owned", ErrConfig, f)
		}
	}
	entry := &monitorEntry{id: h.MonitorID, flows: append([]int(nil), h.FlowIDs...), conn: conn}
	s.monitors[conn] = entry
	for _, f := range h.FlowIDs {
		s.flowOwner[f] = conn
	}
	return nil
}

func (s *Service) unregister(conn *transport.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.monitors[conn]
	if !ok {
		return
	}
	delete(s.monitors, conn)
	for _, f := range entry.flows {
		if s.flowOwner[f] == conn {
			delete(s.flowOwner, f)
		}
	}
}

// addVolumes folds a volume report into its interval accumulator; a complete
// interval is queued for detection.
func (s *Service) addVolumes(v *transport.VolumeReport) {
	if len(v.FlowIDs) != len(v.Volumes) {
		return // malformed; drop
	}
	m := s.cfg.Detector.NumFlows

	s.mu.Lock()
	acc, ok := s.intervals[v.Interval]
	if !ok {
		// Bound the number of partial intervals (drop the oldest).
		if len(s.intervals) >= s.cfg.MaxPendingIntervals {
			var oldest int64 = 1<<63 - 1
			for iv := range s.intervals {
				if iv < oldest {
					oldest = iv
				}
			}
			delete(s.intervals, oldest)
		}
		acc = &intervalAccum{volumes: make([]float64, m), seen: make(map[int]struct{}, m)}
		s.intervals[v.Interval] = acc
	}
	for i, f := range v.FlowIDs {
		if f < 0 || f >= m {
			continue
		}
		if _, dup := acc.seen[f]; dup {
			continue
		}
		acc.seen[f] = struct{}{}
		acc.volumes[f] = v.Volumes[i]
	}
	complete := len(acc.seen) == m
	var item workItem
	if complete {
		item = workItem{interval: v.Interval, volumes: acc.volumes}
		delete(s.intervals, v.Interval)
	}
	s.mu.Unlock()

	if complete {
		select {
		case s.workCh <- item:
		default:
			// Detector is saturated; drop the interval rather than stall
			// every monitor connection.
		}
	}
}

// routeResponse hands a sketch response to the fetch waiting for it.
func (s *Service) routeResponse(r *transport.SketchResponse) {
	s.mu.Lock()
	p, ok := s.pending[r.RequestID]
	s.mu.Unlock()
	if !ok {
		return // late or unknown; ignore
	}
	select {
	case p.respCh <- r:
	default:
	}
}

// processLoop serializes detection over completed intervals. Intervals
// before a full window are reported as warm-up without running the detector
// — models built from partial sketches would be unreliable.
func (s *Service) processLoop() {
	defer close(s.procDone)
	for item := range s.workCh {
		// §V-A variant: the NOC owns the histograms, so it can test the
		// incoming vector BEFORE folding it in (detect-then-absorb, which
		// also limits model poisoning by the anomalous interval itself);
		// the fold happens after the decision below.
		absorb := func() {
			if s.localMon != nil && item.interval > s.localMon.Now() {
				_ = s.localMon.Update(item.interval, item.volumes)
			}
		}
		if item.interval < int64(s.cfg.Detector.WindowLen) {
			absorb()
			if s.cfg.OnDecision != nil {
				s.cfg.OnDecision(Decision{Interval: item.interval, Vector: item.volumes, Warmup: true})
			}
			continue
		}
		fetch := s.fetchSketches
		if s.localMon != nil {
			fetch = s.fetchLocal
		}
		s.detMu.Lock()
		res, err := s.det.Observe(item.volumes, fetch)
		s.detMu.Unlock()
		absorb()
		if err != nil {
			continue // fetch failed (e.g. monitor churn); next interval retries
		}
		if res.Anomalous {
			s.broadcastAlarm(transport.Alarm{
				Interval:  item.interval,
				Distance:  res.Distance,
				Threshold: res.Threshold,
			})
		}
		if s.cfg.OnDecision != nil {
			s.cfg.OnDecision(Decision{Interval: item.interval, Vector: item.volumes, Result: res})
		}
	}
}

// fetchLocal implements core.FetchFunc from the NOC-side histograms
// (§V-A variant). Called only from the processing goroutine.
func (s *Service) fetchLocal() ([][]float64, []float64, int64, error) {
	rep := s.localMon.Report()
	if err := rep.Validate(s.cfg.Detector.SketchLen); err != nil {
		return nil, nil, 0, err
	}
	return rep.Sketches, rep.Means, rep.Interval, nil
}

// fetchSketches implements core.FetchFunc over the registered monitors.
func (s *Service) fetchSketches() ([][]float64, []float64, int64, error) {
	m := s.cfg.Detector.NumFlows

	s.mu.Lock()
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	covered := len(s.flowOwner)
	s.nextReq++
	id := s.nextReq
	p := &pendingFetch{expect: len(conns), respCh: make(chan *transport.SketchResponse, len(conns))}
	s.pending[id] = p
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}()

	if covered < m {
		return nil, nil, 0, fmt.Errorf("%w: %d of %d flows owned", ErrCoverage, covered, m)
	}

	for _, c := range conns {
		if err := c.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: id}}); err != nil {
			return nil, nil, 0, fmt.Errorf("sketch request: %w", err)
		}
	}

	sketches := make([][]float64, m)
	means := make([]float64, m)
	var newest int64
	timer := time.NewTimer(s.cfg.FetchTimeout)
	defer timer.Stop()
	for got := 0; got < p.expect; got++ {
		select {
		case r := <-p.respCh:
			if err := r.Report.Validate(s.cfg.Detector.SketchLen); err != nil {
				return nil, nil, 0, fmt.Errorf("monitor %q report: %w", r.MonitorID, err)
			}
			for i, f := range r.Report.FlowIDs {
				if f < 0 || f >= m {
					return nil, nil, 0, fmt.Errorf("%w: reported flow %d", ErrConfig, f)
				}
				sketches[f] = r.Report.Sketches[i]
				means[f] = r.Report.Means[i]
			}
			if r.Report.Interval > newest {
				newest = r.Report.Interval
			}
		case <-timer.C:
			return nil, nil, 0, fmt.Errorf("%w after %v (%d/%d responses)",
				ErrFetchTimeout, s.cfg.FetchTimeout, got, p.expect)
		}
	}
	for f, sk := range sketches {
		if sk == nil {
			return nil, nil, 0, fmt.Errorf("%w: flow %d missing from responses", ErrCoverage, f)
		}
	}
	return sketches, means, newest, nil
}

// broadcastAlarm pushes an alarm to every monitor.
func (s *Service) broadcastAlarm(a transport.Alarm) {
	s.mu.Lock()
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(transport.Envelope{Alarm: &a}) // best effort
	}
}
