package noc

import (
	"time"

	"streampca/internal/core"
	"streampca/internal/trace"
	"streampca/internal/transport"
)

// identify runs the anomography pursuit for an alarmed decision. Called
// only from the processing goroutine; returns nil when identification is
// disabled or failed. The pursuit consumes only the in-force model and the
// assembled measurement vector — both are byte-identical between flat and
// federated topologies (DESIGN.md §16), so identifications are too
// (DESIGN.md §17, gated by the federated identification differential e2e).
func (s *Service) identify(item workItem, sp *trace.Span) *core.Identification {
	if s.cfg.IdentifyMaxK < 0 {
		return nil
	}
	t0 := time.Now()
	s.detMu.Lock()
	id, err := s.det.Identify(item.volumes, s.cfg.IdentifyMaxK)
	s.detMu.Unlock()
	s.met.identifySeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.met.identifyErrors.Inc()
		s.log.Warn("identification failed", "interval", item.interval, "err", err)
		sp.Event("identify_failed", trace.S("err", err.Error()))
		return nil
	}
	s.met.identifies.Inc()
	s.met.identifiedFlows.Set(float64(len(id.Flows)))
	sp.Event("identify",
		trace.I("culprits", int64(len(id.Flows))),
		trace.F("explained_frac", id.ExplainedFrac),
		trace.F("residual_spe", id.ResidualSPE),
		trace.S("stop", id.Stop))
	return id
}

// wireIdentified converts an identification to the alarm-broadcast shape.
func wireIdentified(id *core.Identification) []transport.IdentifiedFlow {
	if id == nil || len(id.Flows) == 0 {
		return nil
	}
	out := make([]transport.IdentifiedFlow, len(id.Flows))
	for i, f := range id.Flows {
		out[i] = transport.IdentifiedFlow{Flow: f.Flow, Amount: f.Amount, Confidence: f.Confidence}
	}
	return out
}
