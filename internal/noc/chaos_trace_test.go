package noc

// Chaos trace-lineage end-to-end test: the full ingest → monitor → NOC
// deployment with tracing and flight recorders on, plus an injected fault
// that delays one sketch response. Every alarm must leave a complete,
// reconstructable lineage: ingest.seal and monitor.update spans on each
// monitor, a noc.decide span with a child noc.fetch on the NOC,
// cross-process monitor.sketch_report spans parented under the fetch, a
// retry event on the faulted fetch round, and a flight-recorder line whose
// SPE/threshold/flags match the decision the NOC actually emitted.
//
// When CHAOS_FLIGHT_DIR is set (CI does this) the flight-recorder JSONL
// files land there instead of t.TempDir(), so a failing run leaves its
// audit trail behind as a build artifact.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streampca/internal/faults"
	"streampca/internal/flow"
	"streampca/internal/ingest"
	"streampca/internal/monitor"
	"streampca/internal/randproj"
	"streampca/internal/trace"
	"streampca/internal/traffic"
)

// flightDir resolves where flight-recorder JSONL files go: CHAOS_FLIGHT_DIR
// when set (kept after the run, collectable as a CI artifact), a test temp
// dir otherwise.
func flightDir(t *testing.T) string {
	t.Helper()
	dir := os.Getenv("CHAOS_FLIGHT_DIR")
	if dir == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

// snapshotSpans gathers every retained span across the deployment's tracers.
func snapshotSpans(tracers ...*trace.Tracer) []trace.Record {
	var all []trace.Record
	for _, tr := range tracers {
		spans, _ := tr.Recorder().Snapshot(0)
		all = append(all, spans...)
	}
	return all
}

// spansNamed filters spans by trace id and name.
func spansNamed(spans []trace.Record, id trace.ID, name string) []trace.Record {
	var out []trace.Record
	for _, sp := range spans {
		if sp.Trace == id && sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// hasEvent reports whether the span carries an event of the given kind.
func hasEvent(sp trace.Record, kind string) bool {
	for _, ev := range sp.Events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func TestChaosTraceLineage(t *testing.T) {
	const (
		numMons  = 3
		total    = testWindow + 12
		anomaly  = int64(testWindow + 6)
		baseTime = int64(1_200_000_000)
		stepSec  = 300
	)
	dir := flightDir(t)

	rows := chaosRows(53, total+1)
	// Structure-breaking shifts on flows 2 (mon-c) and 6 (mon-a): big enough
	// to clear the threshold, attributable by the flight recorder's top-k.
	rows[anomaly-1][2] += 4000
	rows[anomaly-1][6] += 3000

	nocTracer := trace.New(trace.Config{Component: "noc"})
	nocFlight, err := trace.OpenFlightRecorder(filepath.Join(dir, "noc-flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nocFlight.Close() })

	cfg := chaosConfig()
	cfg.FetchBackoff = 25 * time.Millisecond
	// Delay the first sketch response past the round timeout: the first
	// model fetch must recover via a retry round and record it on its span.
	plan := faults.MustPlan(7, faults.Rule{
		Dir: faults.DirRecv, Type: "sketch_response", Count: 1, Delay: 400 * time.Millisecond,
	})
	cfg.Faults = plan
	cfg.Trace = nocTracer
	cfg.FlightRecorder = nocFlight
	svc, decisions := startNOC(t, cfg)

	// Monitors with per-component tracers; mon-a also keeps an alarm flight
	// recorder so the broadcast leg of the lineage is audited too.
	monFlight, err := trace.OpenFlightRecorder(filepath.Join(dir, "mon-a-flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = monFlight.Close() })
	assign := make([][]int, numMons)
	for f := 0; f < testFlows; f++ {
		assign[f%numMons] = append(assign[f%numMons], f)
	}
	monTracers := make([]*trace.Tracer, numMons)
	mons := make([]*monitor.Service, numMons)
	for i := range mons {
		id := "mon-" + string(rune('a'+i))
		monTracers[i] = trace.New(trace.Config{Component: "monitor/" + id})
		mcfg := monitor.Config{
			ID:        id,
			FlowIDs:   assign[i],
			WindowLen: testWindow,
			Epsilon:   0.05,
			Sketch:    randproj.Config{Seed: testSeed, SketchLen: testSketch},
			Trace:     monTracers[i],
		}
		if i == 0 {
			mcfg.FlightRecorder = monFlight
		}
		m, err := monitor.New(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(svc.Addr(), 2*time.Second); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = m.Close() })
		mons[i] = m
	}
	waitMonitors(t, svc, numMons)

	// One NetFlow v5 ingest pipeline per monitor (each sees only its own
	// flows), sharing the monitor's tracer so ingest.seal spans carry the
	// monitor's component label.
	tbl, err := traffic.BuildRoutingTable(numMons)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := flow.NewAggregator(tbl, numMons, nil)
	if err != nil {
		t.Fatal(err)
	}
	pipes := make([]*ingest.Pipeline, numMons)
	for i := range pipes {
		mon, mine := mons[i], assign[i]
		p, err := ingest.NewPipeline(ingest.Config{
			Aggregator: agg,
			Interval:   stepSec * time.Second,
			Shards:     2,
			Sink: func(iv ingest.Interval) error {
				local := make([]float64, len(mine))
				for k, f := range mine {
					local[k] = iv.Volumes[f]
				}
				return mon.ReportInterval(iv.Seq, local)
			},
			Trace: monTracers[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		pipes[i] = p
	}

	// Feed interval k's datagrams to every pipeline; the record clock seals
	// interval k-1 network-wide (delivered as Seq k), so interval k's
	// datagrams release decision k-1.
	seqs := make([]uint32, numMons)
	feed := func(k int) {
		unixSecs := uint32(baseTime + int64(k)*stepSec)
		for i, p := range pipes {
			recs := make([]ingest.Record, 0, len(assign[i]))
			for _, f := range assign[i] {
				o, d := f/numMons, f%numMons
				src, err := traffic.RouterAddr(o, uint16(k+1))
				if err != nil {
					t.Fatal(err)
				}
				dst, err := traffic.RouterAddr(d, uint16(k+2))
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, ingest.Record{
					SrcAddr: src, DstAddr: dst, Packets: 1,
					Octets: uint32(math.Round(rows[k][f])),
				})
			}
			buf, err := ingest.AppendDatagram(nil, ingest.Header{
				UnixSecs: unixSecs, FlowSequence: seqs[i],
			}, recs)
			if err != nil {
				t.Fatal(err)
			}
			seqs[i] += uint32(len(recs))
			if err := p.HandleDatagram(buf); err != nil {
				t.Fatalf("pipeline %d interval %d: %v", i, k, err)
			}
		}
	}

	alarms := make(map[int64]Decision)
	for k := 0; k <= total; k++ {
		feed(k)
		if k == 0 {
			continue
		}
		d := nextDecision(t, decisions, int64(k))
		if d.Result.Anomalous {
			alarms[int64(k)] = d
		}
	}
	alarmDec, ok := alarms[anomaly]
	if !ok {
		t.Fatalf("injected anomaly at interval %d not flagged (alarms: %v)", anomaly, alarms)
	}
	if plan.Fired(0) != 1 {
		t.Fatalf("delay rule fired %d times, want 1 (%s)", plan.Fired(0), plan)
	}

	// --- Span lineage: every alarm's trace must be complete. ---
	spans := snapshotSpans(append([]*trace.Tracer{nocTracer}, monTracers...)...)
	for iv, d := range alarms {
		tid := trace.ForInterval(iv)
		decide := spansNamed(spans, tid, "noc.decide")
		if len(decide) != 1 {
			t.Fatalf("interval %d: %d noc.decide spans, want 1", iv, len(decide))
		}
		if !hasEvent(decide[0], "decision") || !hasEvent(decide[0], "alarm_broadcast") {
			t.Errorf("interval %d: decide span missing decision/alarm_broadcast events: %+v", iv, decide[0].Events)
		}
		fetches := spansNamed(spans, tid, "noc.fetch")
		if len(fetches) == 0 {
			t.Fatalf("interval %d: alarm lineage has no noc.fetch span", iv)
		}
		for _, f := range fetches {
			if f.Parent != decide[0].Span {
				t.Errorf("interval %d: fetch span parent %s, want decide span %s", iv, f.Parent, decide[0].Span)
			}
		}
		if got := spansNamed(spans, tid, "ingest.seal"); len(got) != numMons {
			t.Errorf("interval %d: %d ingest.seal spans, want %d", iv, len(got), numMons)
		}
		if got := spansNamed(spans, tid, "monitor.update"); len(got) != numMons {
			t.Errorf("interval %d: %d monitor.update spans, want %d", iv, len(got), numMons)
		}
		// Cross-process parenting: the monitors' sketch_report spans must
		// hang under one of this trace's fetch spans.
		reports := spansNamed(spans, tid, "monitor.sketch_report")
		if len(reports) == 0 {
			t.Fatalf("interval %d: no monitor.sketch_report spans in alarm lineage", iv)
		}
		fetchIDs := make(map[trace.SpanID]bool, len(fetches))
		for _, f := range fetches {
			fetchIDs[f.Span] = true
		}
		for _, r := range reports {
			if r.Parent == 0 || !fetchIDs[r.Parent] {
				t.Errorf("interval %d: sketch_report parent %s not a fetch span of this trace", iv, r.Parent)
			}
		}
		if d.Interval != iv {
			t.Fatalf("decision bookkeeping: %d != %d", d.Interval, iv)
		}
	}
	// The injected delay must surface as a retry event on some fetch span
	// (the first model fetch, at the warmup boundary).
	sawRetry := false
	for _, sp := range spans {
		if sp.Name == "noc.fetch" && hasEvent(sp, "retry") {
			sawRetry = true
			break
		}
	}
	if !sawRetry {
		t.Error("no noc.fetch span carries a retry event despite the injected delay")
	}

	// --- Flight recorder: the alarm's audit line must match the decision. ---
	recs := readFlightRecords(t, filepath.Join(dir, "noc-flight.jsonl"))
	var rec *FlightRecord
	for i := range recs {
		if recs[i].Interval == anomaly {
			rec = &recs[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("no flight record for alarm interval %d (%d records)", anomaly, len(recs))
	}
	if rec.Kind != "noc.decision" {
		t.Errorf("flight record kind %q", rec.Kind)
	}
	if rec.Trace != trace.ForInterval(anomaly) {
		t.Errorf("flight record trace %s, want %s", rec.Trace, trace.ForInterval(anomaly))
	}
	if !rec.Anomalous || rec.Warmup {
		t.Errorf("flight record anomalous=%t warmup=%t, want alarm", rec.Anomalous, rec.Warmup)
	}
	if rec.SPE != alarmDec.Result.Distance || rec.Threshold != alarmDec.Result.Threshold {
		t.Errorf("flight record spe=%v threshold=%v, decision had %v/%v",
			rec.SPE, rec.Threshold, alarmDec.Result.Distance, alarmDec.Result.Threshold)
	}
	if rec.Degraded || rec.ModelDegraded || rec.VectorDegraded {
		t.Errorf("flight record flags degraded (%+v) on a healthy run", rec)
	}
	if rec.Refreshed != alarmDec.Result.Refreshed {
		t.Errorf("flight record refreshed=%t, decision had %t", rec.Refreshed, alarmDec.Result.Refreshed)
	}
	if len(rec.Monitors) != numMons {
		t.Fatalf("flight record lists %d monitors, want %d", len(rec.Monitors), numMons)
	}
	for _, fm := range rec.Monitors {
		if fm.SketchAge < 0 || fm.Stale || fm.BreakerOpen {
			t.Errorf("monitor %s: age=%d stale=%t breaker=%t, want fresh post-refresh state",
				fm.ID, fm.SketchAge, fm.Stale, fm.BreakerOpen)
		}
	}
	// Attribution must finger the injected flows (2 and 6).
	got := make(map[int]bool, len(rec.TopFlows))
	for _, tf := range rec.TopFlows {
		got[tf.Flow] = true
	}
	if !got[2] || !got[6] {
		t.Errorf("top residual flows %v must include the injected flows 2 and 6", rec.TopFlows)
	}
	if len(rec.TopFlows) > 0 && rec.TopFlows[0].Flow != 2 && rec.TopFlows[0].Flow != 6 {
		t.Errorf("top residual flow %v is not one of the injected flows", rec.TopFlows[0])
	}

	// --- Broadcast leg: mon-a's alarm flight record links the same trace. ---
	deadline := time.Now().Add(3 * time.Second)
	for monFlight.Count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mon-a never flight-recorded the alarm broadcast")
		}
		time.Sleep(10 * time.Millisecond)
	}
	data, err := os.ReadFile(filepath.Join(dir, "mon-a-flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var monRec struct {
		Kind     string   `json:"kind"`
		Monitor  string   `json:"monitor"`
		Trace    trace.ID `json:"trace"`
		Interval int64    `json:"interval"`
		SPE      float64  `json:"spe"`
	}
	found := false
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &monRec); err != nil {
			t.Fatalf("mon-a flight record: %v", err)
		}
		if monRec.Interval == anomaly {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("mon-a has no flight record for alarm interval %d", anomaly)
	}
	if monRec.Kind != "monitor.alarm_received" || monRec.Monitor != "mon-a" {
		t.Errorf("mon-a flight record kind=%q monitor=%q", monRec.Kind, monRec.Monitor)
	}
	if monRec.Trace != trace.ForInterval(anomaly) {
		t.Errorf("mon-a flight record trace %s does not match the NOC's %s",
			monRec.Trace, trace.ForInterval(anomaly))
	}
	if monRec.SPE != alarmDec.Result.Distance {
		t.Errorf("mon-a flight record spe=%v, alarm carried %v", monRec.SPE, alarmDec.Result.Distance)
	}
}

// readFlightRecords parses a JSONL flight-recorder file.
func readFlightRecords(t *testing.T, path string) []FlightRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []FlightRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var rec FlightRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, rec)
	}
	return out
}
