package noc

// Chaos end-to-end tests: fault-injected deployments exercising the
// retry/backoff fetch path, the per-monitor circuit breaker, degraded-mode
// operation on cached state, and monitor auto-reconnect. All faults come
// from internal/faults plans installed on the NOC's accepted connections
// (Config.Faults) or from killing monitors outright.

import (
	"math/rand"
	"testing"
	"time"

	"streampca/internal/faults"
	"streampca/internal/monitor"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

// chaosConfig is nocConfig tuned for fast fault handling in tests.
func chaosConfig() Config {
	cfg := nocConfig()
	cfg.FetchTimeout = 300 * time.Millisecond
	cfg.FetchRetries = 3
	cfg.FetchBackoff = 10 * time.Millisecond
	cfg.FetchBackoffMax = 50 * time.Millisecond
	cfg.Degraded = DegradedPolicy{Enabled: true} // MaxStaleness -> window/4 = 16
	return cfg
}

// chaosRows pre-generates the interval volume vectors so a no-fault twin
// deployment can replay the identical trace.
func chaosRows(seed int64, total int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, total)
	for i := range rows {
		rows[i] = trafficRow(rng, int64(i+1))
	}
	return rows
}

// feedAlive pushes one interval through the monitors whose alive flag is
// set, preserving the round-robin flow layout of feedInterval.
func feedAlive(t *testing.T, mons []*monitor.Service, alive []bool, interval int64, volumes []float64) {
	t.Helper()
	for i, mon := range mons {
		if !alive[i] {
			continue
		}
		var local []float64
		for f := i; f < testFlows; f += len(mons) {
			local = append(local, volumes[f])
		}
		if err := mon.ReportInterval(interval, local); err != nil {
			t.Fatalf("monitor %d interval %d: %v", i, interval, err)
		}
	}
}

func waitMonitors(t *testing.T, svc *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for len(svc.Monitors()) != n {
		if time.Now().After(deadline) {
			t.Fatalf("monitors = %v, want %d", svc.Monitors(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosMonitorLossDegradedRecovery is the headline scenario: one of
// three monitors dies mid-run. The NOC must keep emitting a decision for
// every interval (flagged degraded, missing volumes from cache), serve an
// anomaly-triggered model rebuild from the sketch cache, and return to
// healthy non-degraded decisions once a replacement registers. The
// post-recovery alarm verdicts must match a no-fault twin fed the same
// trace.
func TestChaosMonitorLossDegradedRecovery(t *testing.T) {
	const (
		healthyEnd  = testWindow + 2 // 1..66 with all monitors
		outageEnd   = healthyEnd + 5 // 67..71 with monitor 1 dead
		total       = 80
		anomalyDown = int64(healthyEnd + 3) // 69: during the outage
		anomalyUp   = int64(outageEnd + 5)  // 76: after recovery
	)
	rows := chaosRows(99, total)
	// Moderate structure-breaking shifts: large enough to clear the
	// threshold, small enough not to hijack a principal component once the
	// lazy refresh absorbs the interval.
	rows[anomalyDown-1][2] += 4000
	rows[anomalyDown-1][7] += 3000
	// The post-recovery shift avoids the replacement monitor's flows
	// (1, 4, 7): its sketch window covers only a few intervals, so a shift
	// there would dominate its variance and hijack a component.
	rows[anomalyUp-1][2] += 4000
	rows[anomalyUp-1][6] += 3000

	svc, decisions := startNOC(t, chaosConfig())
	mons := startMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)
	alive := []bool{true, true, true}

	var interval int64
	for ; interval < healthyEnd; interval++ {
		feedAlive(t, mons, alive, interval+1, rows[interval])
		d := nextDecision(t, decisions, interval+1)
		if d.Degraded {
			t.Fatalf("interval %d degraded with all monitors up", interval+1)
		}
	}

	// Kill monitor 1 (flows 1, 4, 7).
	if err := mons[1].Close(); err != nil {
		t.Fatal(err)
	}
	alive[1] = false
	waitMonitors(t, svc, 2)

	for ; interval < outageEnd; interval++ {
		iv := interval + 1
		feedAlive(t, mons, alive, iv, rows[interval])
		d := nextDecision(t, decisions, iv)
		if !d.Degraded || d.StaleFlows != 3 {
			t.Fatalf("outage interval %d: degraded=%t stale=%d, want degraded with 3 stale flows",
				iv, d.Degraded, d.StaleFlows)
		}
		if iv == anomalyDown {
			if !d.Result.Anomalous {
				t.Fatalf("interval %d: injected anomaly not flagged during outage", iv)
			}
			if !d.Result.Degraded || d.Result.StaleFlows != 3 {
				t.Fatalf("interval %d: model degraded=%t stale=%d, want stale-sketch rebuild",
					iv, d.Result.Degraded, d.Result.StaleFlows)
			}
		}
	}
	if got := svc.met.staleFlows.Value(); got != 3 {
		t.Fatalf("stale_flows gauge = %v after degraded fetch, want 3", got)
	}
	if svc.met.fetchRetries.Value() == 0 {
		t.Fatal("fetch_retries_total must reflect re-request rounds")
	}
	if got := svc.met.degraded.Value(); got < 5 {
		t.Fatalf("degraded_decisions_total = %d, want >= 5", got)
	}
	if got := svc.met.fetchErrors.Value(); got != 0 {
		t.Fatalf("fetch_errors_total = %d; degraded fallback must keep fetches succeeding", got)
	}

	// Recovery: a replacement monitor claims the dead monitor's flows.
	repl, err := monitor.New(monitor.Config{
		ID:        "mon-b2",
		FlowIDs:   []int{1, 4, 7},
		WindowLen: testWindow,
		Epsilon:   0.05,
		Sketch:    randproj.Config{Seed: testSeed, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repl.Close() })
	mons[1] = repl
	alive[1] = true
	waitMonitors(t, svc, 3)

	chaosAlarms := make(map[int64]bool)
	for ; interval < total; interval++ {
		iv := interval + 1
		feedAlive(t, mons, alive, iv, rows[interval])
		d := nextDecision(t, decisions, iv)
		chaosAlarms[iv] = d.Result.Anomalous
		if iv == anomalyUp {
			if !d.Result.Anomalous {
				t.Fatalf("interval %d: post-recovery anomaly not flagged", iv)
			}
			if d.Degraded {
				t.Fatalf("interval %d: full-coverage rebuild must clear the degraded flag", iv)
			}
		}
		if iv > anomalyUp && d.Degraded {
			t.Fatalf("interval %d still degraded after healthy rebuild", iv)
		}
	}
	if got := svc.met.staleFlows.Value(); got != 0 {
		t.Fatalf("stale_flows gauge = %v after healthy fetch, want 0", got)
	}

	// No-fault twin: same trace, three healthy monitors throughout. Alarm
	// verdicts must agree once the chaos deployment is healthy again.
	twin, twinDecisions := startNOC(t, chaosConfig())
	twinMons := startMonitors(t, twin.Addr(), 3)
	waitMonitors(t, twin, 3)
	twinAlarms := make(map[int64]bool)
	for i := 0; i < total; i++ {
		iv := int64(i + 1)
		feedAlive(t, twinMons, []bool{true, true, true}, iv, rows[i])
		d := nextDecision(t, twinDecisions, iv)
		twinAlarms[iv] = d.Result.Anomalous
	}
	for iv := anomalyUp; iv <= total; iv++ {
		if chaosAlarms[iv] != twinAlarms[iv] {
			t.Errorf("interval %d: chaos alarm=%t, no-fault alarm=%t", iv, chaosAlarms[iv], twinAlarms[iv])
		}
	}
}

// TestChaosDelayedResponseDropped delays one sketch response beyond the
// round timeout: the retry round must re-request only that monitor with a
// fresh request ID, and the late response to the old ID must be discarded,
// not misattributed to the new round. The fetch still completes healthy.
func TestChaosDelayedResponseDropped(t *testing.T) {
	cfg := chaosConfig()
	cfg.FetchBackoff = 25 * time.Millisecond
	plan := faults.MustPlan(7, faults.Rule{
		Dir: faults.DirRecv, Type: "sketch_response", Count: 1, Delay: 400 * time.Millisecond,
	})
	cfg.Faults = plan
	svc, decisions := startNOC(t, cfg)
	mons := startMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	rows := chaosRows(31, testWindow+1)
	alive := []bool{true, true, true}
	for i, row := range rows {
		iv := int64(i + 1)
		feedAlive(t, mons, alive, iv, row)
		d := nextDecision(t, decisions, iv)
		if iv == testWindow { // first non-warmup interval: model fetch
			if d.Degraded {
				t.Fatalf("interval %d: retried fetch must complete healthy, got degraded", iv)
			}
		}
	}
	if plan.Fired(0) != 1 {
		t.Fatalf("delay rule fired %d times, want 1 (%s)", plan.Fired(0), plan)
	}
	if svc.met.fetchRetries.Value() == 0 {
		t.Fatal("delayed response must cost at least one retry round")
	}
	if got := svc.met.fetchErrors.Value(); got != 0 {
		t.Fatalf("fetch_errors_total = %d, want 0 (retry must recover)", got)
	}
	if got := svc.met.staleFlows.Value(); got != 0 {
		t.Fatalf("stale_flows gauge = %v, want 0 (no cache fallback needed)", got)
	}
}

// TestChaosCorruptReportRetried corrupts one sketch response in flight: the
// NOC must reject it, keep the two good monitors' partial results, and
// recover the bad monitor's flows in a retry round.
func TestChaosCorruptReportRetried(t *testing.T) {
	cfg := chaosConfig()
	plan := faults.MustPlan(3, faults.Rule{
		Dir: faults.DirRecv, Type: "sketch_response", Count: 1, Corrupt: true,
	})
	cfg.Faults = plan
	svc, decisions := startNOC(t, cfg)
	mons := startMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	rows := chaosRows(45, testWindow+1)
	alive := []bool{true, true, true}
	for i, row := range rows {
		iv := int64(i + 1)
		feedAlive(t, mons, alive, iv, row)
		d := nextDecision(t, decisions, iv)
		if iv == testWindow && d.Degraded {
			t.Fatalf("interval %d: corrupt report must be recovered by retry, got degraded", iv)
		}
	}
	if plan.Fired(0) != 1 {
		t.Fatalf("corrupt rule fired %d times, want 1", plan.Fired(0))
	}
	if svc.met.fetchRetries.Value() == 0 {
		t.Fatal("corrupt response must cost at least one retry round")
	}
	if got := svc.met.fetchErrors.Value(); got != 0 {
		t.Fatalf("fetch_errors_total = %d, want 0", got)
	}
}

// TestChaosBreakerOpensAndRecovers replaces one monitor with a registered
// but mute peer: it reports volumes and never answers sketch pulls. Two
// consecutive timeouts must open its breaker, after which fetches skip it
// and rebuild from the sketch cache; a real monitor re-registering under
// the same identity resets the breaker and restores healthy fetches.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	cfg := chaosConfig()
	cfg.FetchTimeout = 200 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Minute // stays open for the whole test
	svc, decisions := startNOC(t, cfg)
	mons := startMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	const total = 80
	anomalyMute, anomalyHealed := int64(testWindow+5), int64(total-2)
	rows := chaosRows(77, total)
	rows[anomalyMute-1][2] += 4000
	rows[anomalyMute-1][7] += 3000
	rows[anomalyHealed-1][2] += 4000
	rows[anomalyHealed-1][7] += 3000

	muteFlows := []int{1, 4, 7}
	alive := []bool{true, true, true}
	var interval int64
	// Healthy through the first model fetch so the sketch cache is primed.
	for ; interval < testWindow+2; interval++ {
		feedAlive(t, mons, alive, interval+1, rows[interval])
		nextDecision(t, decisions, interval+1)
	}

	// Swap monitor 1 for a mute impostor with the same identity and flows.
	muteID := mons[1].ID()
	if err := mons[1].Close(); err != nil {
		t.Fatal(err)
	}
	alive[1] = false
	waitMonitors(t, svc, 2)
	mute, err := transport.Dial(svc.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mute.Close() })
	if err := mute.Send(transport.Envelope{Hello: &transport.Hello{
		MonitorID: muteID, FlowIDs: muteFlows,
		SketchLen: testSketch, WindowLen: testWindow, Seed: testSeed,
	}}); err != nil {
		t.Fatal(err)
	}
	go func() { // drain requests and alarms; answer nothing
		for {
			if _, err := mute.Recv(); err != nil {
				return
			}
		}
	}()
	waitMonitors(t, svc, 3)

	feedMute := func(iv int64) {
		vols := make([]float64, len(muteFlows))
		for k, f := range muteFlows {
			vols[k] = rows[iv-1][f]
		}
		if err := mute.Send(transport.Envelope{Volume: &transport.VolumeReport{
			MonitorID: muteID, Interval: iv, FlowIDs: muteFlows, Volumes: vols,
		}}); err != nil {
			t.Fatalf("mute volume %d: %v", iv, err)
		}
	}

	for ; interval < total-10; interval++ {
		iv := interval + 1
		feedAlive(t, mons, alive, iv, rows[interval])
		feedMute(iv)
		d := nextDecision(t, decisions, iv)
		if iv == anomalyMute {
			if !d.Result.Anomalous || !d.Result.Degraded || d.Result.StaleFlows != 3 {
				t.Fatalf("interval %d: anomalous=%t degraded=%t stale=%d, want degraded rebuild around the mute monitor",
					iv, d.Result.Anomalous, d.Result.Degraded, d.Result.StaleFlows)
			}
		}
	}
	if got := svc.met.breakerOpens.Value(); got != 1 {
		t.Fatalf("breaker_opens_total = %d, want 1", got)
	}
	if got := svc.met.breakerOpen.Value(); got != 1 {
		t.Fatalf("breaker_open gauge = %v while mute, want 1", got)
	}

	// Heal: the real monitor returns under the same identity, which resets
	// the breaker on registration.
	_ = mute.Close()
	waitMonitors(t, svc, 2)
	repl, err := monitor.New(monitor.Config{
		ID: muteID, FlowIDs: muteFlows,
		WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: testSeed, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repl.Close() })
	mons[1] = repl
	alive[1] = true
	waitMonitors(t, svc, 3)
	if got := svc.met.breakerOpen.Value(); got != 0 {
		t.Fatalf("breaker_open gauge = %v after re-registration, want 0", got)
	}

	for ; interval < total; interval++ {
		iv := interval + 1
		feedAlive(t, mons, alive, iv, rows[interval])
		d := nextDecision(t, decisions, iv)
		if iv == anomalyHealed {
			if !d.Result.Anomalous {
				t.Fatalf("interval %d: anomaly not flagged after healing", iv)
			}
			if d.Degraded {
				t.Fatalf("interval %d: fetch must be healthy after breaker reset", iv)
			}
		}
	}
	if got := svc.met.staleFlows.Value(); got != 0 {
		t.Fatalf("stale_flows gauge = %v after healing, want 0", got)
	}
}

// TestChaosMonitorAutoReconnect injects a server-side disconnect on a
// volume receive: the victim monitor's link drops mid-stream, its
// reconnect loop redials and re-registers, and the NOC emits a decision
// for every interval throughout (the severed interval via degraded
// volume fill).
func TestChaosMonitorAutoReconnect(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faults.MustPlan(11, faults.Rule{
		Dir: faults.DirRecv, Type: "volume", After: 30, Count: 1, Disconnect: true,
	})
	svc, decisions := startNOC(t, cfg)

	reg := obs.NewRegistry()
	assign := make([][]int, 3)
	for f := 0; f < testFlows; f++ {
		assign[f%3] = append(assign[f%3], f)
	}
	mons := make([]*monitor.Service, 3)
	for i := range mons {
		m, err := monitor.New(monitor.Config{
			ID:               "mon-" + string(rune('a'+i)),
			FlowIDs:          assign[i],
			WindowLen:        testWindow,
			Epsilon:          0.05,
			Sketch:           randproj.Config{Seed: testSeed, SketchLen: testSketch},
			Reconnect:        true,
			ReconnectBackoff: 20 * time.Millisecond,
			Obs:              reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(svc.Addr(), 2*time.Second); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = m.Close() })
		mons[i] = m
	}
	waitMonitors(t, svc, 3)

	// Resilient feeder: a monitor mid-reconnect refuses reports briefly.
	feed := func(iv int64, row []float64) {
		for i, mon := range mons {
			var local []float64
			for f := i; f < testFlows; f += 3 {
				local = append(local, row[f])
			}
			deadline := time.Now().Add(3 * time.Second)
			for {
				err := mon.ReportInterval(iv, local)
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("monitor %d interval %d: %v", i, iv, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}

	const total = 40 // all warm-up; decision continuity is the point
	rows := chaosRows(12, total)
	sawDegraded := false
	for i, row := range rows {
		iv := int64(i + 1)
		feed(iv, row)
		if d := nextDecision(t, decisions, iv); d.Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("the severed interval should have completed degraded")
	}
	reconnects := reg.Counter("streampca_monitor_reconnects_total", "").Value()
	if reconnects != 1 {
		t.Fatalf("reconnects_total = %d, want 1", reconnects)
	}
	waitMonitors(t, svc, 3)
}
