package noc

import (
	"sort"
	"time"

	"streampca/internal/core"
	"streampca/internal/trace"
)

// defaultFlightTopK is how many residual flows a flight record attributes
// when Config.FlightTopK is unset; five covers the paper's evaluation
// scenarios (1–2 injected flows) with room for collateral contributions.
const defaultFlightTopK = 5

// FlightFlow is one flow's contribution to the anomalous residual, from
// core.Detector.Attribute (paper eq. 4).
type FlightFlow struct {
	Flow     int     `json:"flow"`
	Residual float64 `json:"residual"`
	Share    float64 `json:"share"`
}

// FlightMonitor describes one registered monitor's state at decision time:
// how fresh its last validated sketch report was and whether its circuit
// breaker currently excludes it from fetches.
type FlightMonitor struct {
	ID    string `json:"id"`
	Flows int    `json:"flows"`
	// SketchInterval is the interval of the monitor's last validated
	// sketch report and SketchAge the decision interval minus it; both are
	// -1 when the NOC has never validated a report from this monitor.
	SketchInterval int64 `json:"sketch_interval"`
	SketchAge      int64 `json:"sketch_age"`
	// Stale marks a sketch older than DegradedPolicy.MaxStaleness.
	Stale       bool `json:"stale,omitempty"`
	BreakerOpen bool `json:"breaker_open,omitempty"`
}

// FlightRecord is one line of the NOC's alarm flight recorder: everything
// needed to reconstruct an alarm (or a degraded decision) offline — the
// trace to look up in /debug/trace, the SPE-vs-threshold comparison, which
// flows drove the residual, and how fresh each monitor's contribution was.
type FlightRecord struct {
	Kind      string   `json:"kind"` // "noc.decision"
	Trace     trace.ID `json:"trace"`
	Interval  int64    `json:"interval"`
	UnixNanos int64    `json:"unix_ns"`
	// SPE is the distance d(y) and Threshold the Q-statistic limit δ_α it
	// was compared against (unset when ThresholdUnavailable or Warmup).
	SPE                  float64 `json:"spe"`
	Threshold            float64 `json:"threshold"`
	ThresholdUnavailable bool    `json:"threshold_unavailable,omitempty"`
	Anomalous            bool    `json:"anomalous"`
	Warmup               bool    `json:"warmup,omitempty"`
	// Degraded is the decision-level flag; VectorDegraded/ModelDegraded
	// split it into its two causes (cached volumes vs cached sketches).
	Degraded         bool `json:"degraded"`
	VectorDegraded   bool `json:"vector_degraded,omitempty"`
	StaleVolumeFlows int  `json:"stale_volume_flows,omitempty"`
	ModelDegraded    bool `json:"model_degraded,omitempty"`
	ModelStaleFlows  int  `json:"model_stale_flows,omitempty"`
	Refreshed        bool `json:"refreshed,omitempty"`
	// TopFlows ranks the flows driving the anomalous residual (alarmed
	// decisions only — quiet and merely-degraded records skip the
	// attribution; empty during warmup, when no model exists).
	TopFlows []FlightFlow `json:"top_flows,omitempty"`
	// Identified is the anomography pursuit's culprit set for an alarmed
	// decision, ranked by confidence; IdentifyExplained and IdentifyStop
	// are the pursuit's explained-energy fraction and stop reason.
	Identified        []FlightIdentified `json:"identified,omitempty"`
	IdentifyExplained float64            `json:"identify_explained,omitempty"`
	IdentifyStop      string             `json:"identify_stop,omitempty"`
	// Monitors is the contributing monitor set, sorted by ID.
	Monitors []FlightMonitor `json:"monitors,omitempty"`
}

// FlightIdentified is one anomography culprit on a flight record.
type FlightIdentified struct {
	Flow       int     `json:"flow"`
	Amount     float64 `json:"amount"`
	Confidence float64 `json:"confidence"`
}

// flightRecord appends one audit line for this decision. Called only from
// the processing goroutine (lastSketch and detMu discipline). ident is the
// identification already computed for an alarmed decision (nil otherwise).
func (s *Service) flightRecord(item workItem, res core.Decision, warmup, degraded bool, ident *core.Identification) {
	fr := s.cfg.FlightRecorder
	if fr == nil {
		return
	}
	rec := FlightRecord{
		Kind:                 "noc.decision",
		Trace:                trace.ForInterval(item.interval),
		Interval:             item.interval,
		UnixNanos:            time.Now().UnixNano(),
		SPE:                  res.Distance,
		Threshold:            res.Threshold,
		ThresholdUnavailable: res.ThresholdUnavailable,
		Anomalous:            res.Anomalous,
		Warmup:               warmup,
		Degraded:             degraded,
		VectorDegraded:       item.degraded,
		StaleVolumeFlows:     item.staleFlows,
		ModelDegraded:        res.Degraded,
		ModelStaleFlows:      res.StaleFlows,
		Refreshed:            res.Refreshed,
	}
	// Attribution is alarm-only: quiet and merely-degraded records carry no
	// residual ranking, so the common path never pays the projection.
	if !warmup && res.Anomalous && s.cfg.FlightTopK > 0 {
		s.detMu.Lock()
		top, err := s.det.Attribute(item.volumes, s.cfg.FlightTopK)
		s.detMu.Unlock()
		if err == nil {
			for _, c := range top {
				rec.TopFlows = append(rec.TopFlows, FlightFlow{Flow: c.Flow, Residual: c.Residual, Share: c.Share})
			}
		}
	}
	if ident != nil {
		rec.IdentifyExplained = ident.ExplainedFrac
		rec.IdentifyStop = ident.Stop
		for _, f := range ident.Flows {
			rec.Identified = append(rec.Identified, FlightIdentified{Flow: f.Flow, Amount: f.Amount, Confidence: f.Confidence})
		}
	}
	s.mu.Lock()
	now := time.Now()
	for _, e := range s.monitors {
		fm := FlightMonitor{ID: e.id, Flows: len(e.flows), SketchInterval: -1, SketchAge: -1}
		if at, ok := s.lastSketch[e.id]; ok {
			fm.SketchInterval = at
			fm.SketchAge = item.interval - at
			if s.cfg.Degraded.MaxStaleness > 0 && fm.SketchAge > s.cfg.Degraded.MaxStaleness {
				fm.Stale = true
			}
		}
		if b := s.breakers[e.id]; b != nil && s.cfg.BreakerThreshold > 0 &&
			b.failures >= s.cfg.BreakerThreshold && now.Before(b.openUntil) {
			fm.BreakerOpen = true
		}
		rec.Monitors = append(rec.Monitors, fm)
	}
	s.mu.Unlock()
	sort.Slice(rec.Monitors, func(i, j int) bool { return rec.Monitors[i].ID < rec.Monitors[j].ID })
	if err := fr.Record(rec); err != nil {
		s.log.Warn("flight record failed", "interval", item.interval, "err", err)
		return
	}
	s.met.flightRecords.Inc()
}
