package noc

import (
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"streampca/internal/monitor"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

// counterValue reads a transport message counter from a registry via the
// get-or-create identity of obs.Registry.
func counterValue(reg *obs.Registry, name string, labels ...obs.Label) int64 {
	return reg.Counter(name, "", labels...).Value()
}

// TestPipeTransportCountersEndToEnd drives the full monitor→NOC protocol
// over an in-memory pipe and asserts the wire counters on both ends.
func TestPipeTransportCountersEndToEnd(t *testing.T) {
	monReg := obs.NewRegistry()
	nocReg := obs.NewRegistry()
	cfg := nocConfig()
	cfg.Obs = nocReg
	svc, decisions := startNOC(t, cfg)

	monMet := transport.NewMetrics(monReg)
	monEnd, nocEnd := transport.PipeWithMetrics(monMet, svc.wireMet)
	handleDone := make(chan struct{})
	go func() {
		defer close(handleDone)
		defer func() { _ = nocEnd.Close() }() // what acceptLoop does for TCP conns
		svc.handleConn(nocEnd)
	}()

	flowIDs := make([]int, testFlows)
	for j := range flowIDs {
		flowIDs[j] = j
	}
	mon, err := monitor.New(monitor.Config{
		ID:        "pipe-mon",
		FlowIDs:   flowIDs,
		WindowLen: testWindow,
		Epsilon:   0.05,
		Sketch:    randproj.Config{Seed: testSeed, SketchLen: testSketch},
		Obs:       monReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Attach(monEnd); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	total := testWindow + 3 // past warm-up so at least one sketch pull happens
	for i := 1; i <= total; i++ {
		if err := mon.ReportInterval(int64(i), trafficRow(rng, int64(i))); err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		nextDecision(t, decisions, int64(i))
	}
	if err := mon.Close(); err != nil {
		t.Fatalf("close monitor: %v", err)
	}
	select {
	case <-handleDone:
	case <-time.After(2 * time.Second):
		t.Fatal("NOC handler did not exit after monitor close")
	}

	const msgs = "streampca_transport_messages_total"
	sent := func(typ string) obs.Label { return obs.L("type", typ) }
	// Monitor side: one hello and `total` volume reports out; the lazy
	// protocol pulled sketches at least once.
	if got := counterValue(monReg, msgs, obs.L("direction", "sent"), sent("hello")); got != 1 {
		t.Fatalf("monitor sent hello = %d", got)
	}
	if got := counterValue(monReg, msgs, obs.L("direction", "sent"), sent("volume")); got != int64(total) {
		t.Fatalf("monitor sent volume = %d, want %d", got, total)
	}
	reqs := counterValue(monReg, msgs, obs.L("direction", "recv"), sent("sketch_request"))
	if reqs < 1 {
		t.Fatalf("monitor received %d sketch requests, want >= 1", reqs)
	}
	if got := counterValue(monReg, msgs, obs.L("direction", "sent"), sent("sketch_response")); got != reqs {
		t.Fatalf("monitor sent %d responses for %d requests", got, reqs)
	}
	// NOC side mirrors it.
	if got := counterValue(nocReg, msgs, obs.L("direction", "recv"), sent("hello")); got != 1 {
		t.Fatalf("NOC received hello = %d", got)
	}
	if got := counterValue(nocReg, msgs, obs.L("direction", "recv"), sent("volume")); got != int64(total) {
		t.Fatalf("NOC received volume = %d, want %d", got, total)
	}
	if got := counterValue(nocReg, msgs, obs.L("direction", "sent"), sent("sketch_request")); got != reqs {
		t.Fatalf("NOC sent %d sketch requests, monitor saw %d", got, reqs)
	}
	// Bytes moved and connection lifecycle.
	for _, reg := range []*obs.Registry{monReg, nocReg} {
		if got := counterValue(reg, "streampca_transport_bytes_total", obs.L("direction", "sent")); got == 0 {
			t.Fatal("no bytes counted as sent")
		}
		if got := counterValue(reg, "streampca_transport_connections_total", obs.L("event", "opened")); got != 1 {
			t.Fatalf("connections opened = %d", got)
		}
		if got := counterValue(reg, "streampca_transport_connections_total", obs.L("event", "closed")); got != 1 {
			t.Fatalf("connections closed = %d", got)
		}
	}
	// The monitor-side registry also carries the monitor service metrics.
	if st := mon.Stats(); st.Intervals != int64(total) || st.SketchRequests != reqs {
		t.Fatalf("monitor stats = %+v", st)
	}
	// And the NOC's DetectorStats shim reads the same registry the alarms
	// counter lives in.
	observations, fetches, _ := svc.DetectorStats()
	if observations == 0 || fetches == 0 {
		t.Fatalf("detector stats = %d obs, %d fetches", observations, fetches)
	}
}

// TestMetricsEndpoint boots a NOC with the diagnostics server enabled and
// asserts the acceptance-criteria metrics appear in /metrics.
func TestMetricsEndpoint(t *testing.T) {
	cfg := nocConfig()
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.SelfCheckEvery = 1 // register the oracle metrics surface too
	svc, _ := startNOC(t, cfg)
	if svc.DiagAddr() == "" {
		t.Fatal("diagnostics server not started")
	}

	resp, err := http.Get("http://" + svc.DiagAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"streampca_transport_messages_total",
		"streampca_noc_retrain_seconds",
		"streampca_noc_alarms_total",
		"streampca_noc_monitors_connected",
		"streampca_noc_fetch_seconds",
		"streampca_noc_oracle_checks_total",
		"streampca_noc_oracle_violations_total",
		"streampca_noc_oracle_max_rel_err",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}

	hresp, err := http.Get("http://" + svc.DiagAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	hbody, _ := io.ReadAll(hresp.Body)
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), `"noc"`) {
		t.Fatalf("/healthz status=%d body=%s", hresp.StatusCode, hbody)
	}
}

// TestNoListenerWithoutMetricsAddr pins the default-off behavior.
func TestNoListenerWithoutMetricsAddr(t *testing.T) {
	svc, _ := startNOC(t, nocConfig())
	if svc.DiagAddr() != "" {
		t.Fatalf("diagnostics server unexpectedly at %q", svc.DiagAddr())
	}
}

// TestShutdownWithoutServe pins the audit fix: Shutdown must not hang (or
// panic) when Serve was never called, and must be idempotent.
func TestShutdownWithoutServe(t *testing.T) {
	svc, err := New(nocConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		svc.Shutdown()
		svc.Shutdown() // second call must be a no-op, not a double close
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown hung without Serve")
	}
}

// TestShutdownLeavesNoGoroutines runs a full NOC+monitors cycle and checks
// processLoop, handleConn and monitor readers all exit.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	decisions := make(chan Decision, 1024)
	cfg := nocConfig()
	cfg.OnDecision = func(d Decision) { decisions <- d }
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	mons := startMonitors(t, svc.Addr(), 3)
	rng := rand.New(rand.NewSource(13))
	for i := 1; i <= 8; i++ {
		feedInterval(t, mons, int64(i), trafficRow(rng, int64(i)))
		nextDecision(t, decisions, int64(i))
	}
	for _, m := range mons {
		_ = m.Close()
	}
	svc.Shutdown()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
