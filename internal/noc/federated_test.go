package noc

import (
	"math/rand"
	"testing"
	"time"

	"streampca/internal/agg"
	"streampca/internal/monitor"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
)

// federation is one running aggregator tier plus its monitors.
type federation struct {
	aggs []*agg.Service
	mons []*monitor.Service
}

// startFederation boots nAgg aggregators fronting nocAddr and nMon monitors
// (striping numFlows flows f%nMon). With pinOneToOne false each monitor
// registers with its rendezvous-preferred aggregator (placement may be
// uneven — that is the point of hashing); with true (requires nMon == nAgg)
// monitor i is pinned to aggregator i, which forces single-input merges —
// the FD pass-through configuration. family/sketchParam/seed must match the
// NOC's detector.
func startFederation(t *testing.T, nocAddr string, nAgg, nMon, numFlows int,
	family sketch.Family, sketchParam int, pinOneToOne bool, monCfg func(*monitor.Config)) *federation {
	t.Helper()
	fed := &federation{}
	addrs := make([]string, nAgg)
	for i := 0; i < nAgg; i++ {
		a, err := agg.New(agg.Config{
			ID:           "agg-" + string(rune('1'+i)),
			Family:       family,
			NumFlows:     numFlows,
			WindowLen:    testWindow,
			SketchLen:    sketchParam,
			Seed:         testSeed,
			FetchTimeout: 2 * time.Second,
			FetchRetries: 1,
			Degraded:     agg.DegradedPolicy{Enabled: true, MaxStaleness: 1 << 40},
			Reconnect:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Serve("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		fed.aggs = append(fed.aggs, a)
		addrs[i] = a.Addr()
	}
	for _, a := range fed.aggs {
		a.SetPeers(addrs, 1)
		if err := a.ConnectNOC(nocAddr, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	assign := make([][]int, nMon)
	for f := 0; f < numFlows; f++ {
		assign[f%nMon] = append(assign[f%nMon], f)
	}
	for i := 0; i < nMon; i++ {
		cfg := monitor.Config{
			ID:         "mon-" + string(rune('a'+i)),
			Family:     family,
			FlowIDs:    assign[i],
			WindowLen:  testWindow,
			Epsilon:    0.05,
			Sketch:     randproj.Config{Seed: testSeed, SketchLen: sketchParam},
			FDEll:      sketchParam,
			Candidates: addrs,
		}
		if monCfg != nil {
			monCfg(&cfg)
		}
		svc, err := monitor.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		home := agg.Rendezvous(cfg.ID, addrs)[0]
		if pinOneToOne {
			if nMon != nAgg {
				t.Fatalf("pinOneToOne needs nMon == nAgg, got %d/%d", nMon, nAgg)
			}
			home = addrs[i]
		}
		if err := svc.Connect(home, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		fed.mons = append(fed.mons, svc)
	}
	// Every flow must be claimed upstream before traffic flows: each
	// aggregator re-hellos as monitors register, so poll the coverage.
	deadline := time.Now().Add(3 * time.Second)
	for {
		covered := 0
		for _, a := range fed.aggs {
			covered += len(a.FlowUnion())
		}
		if covered == numFlows {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flow unions cover %d of %d flows", covered, numFlows)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fed
}

// monitorsAcross sums the registered monitor count over the aggregators.
func monitorsAcross(aggs []*agg.Service) int {
	n := 0
	for _, a := range aggs {
		n += len(a.Monitors())
	}
	return n
}

// genRows pre-generates identical traffic for differential runs: rank-2
// background plus a burst of large spikes near the end so the alarm path is
// compared too, not just the quiet path. The burst rotates its direction
// each interval — a single spiked interval can be absorbed wholesale by the
// rank-2 refresh (it becomes a principal component and leaves no residual),
// but the refresh can only absorb one direction, so the following
// differently-aimed spikes alarm decisively.
func genRows(n, numFlows int, spikeAt int) [][]float64 {
	rng := rand.New(rand.NewSource(777))
	rows := make([][]float64, n)
	for i := range rows {
		f1 := 1000 + 200*rng.NormFloat64()
		f2 := 500 + 100*rng.NormFloat64()
		row := make([]float64, numFlows)
		for j := range row {
			w1 := float64(j%3) + 1
			w2 := float64(j%4) + 1
			row[j] = w1*f1 + w2*f2 + 10*rng.NormFloat64()
		}
		if i >= spikeAt && i < spikeAt+4 {
			k := i - spikeAt
			row[(2*k)%numFlows] += 5e5
			row[(2*k+1)%numFlows] += 3e5
		}
		rows[i] = row
	}
	return rows
}

// feedAssigned reports one interval through monitors striped f%len(mons).
func feedAssigned(t *testing.T, mons []*monitor.Service, numFlows int, interval int64, row []float64) {
	t.Helper()
	for i, mon := range mons {
		var local []float64
		for f := i; f < numFlows; f += len(mons) {
			local = append(local, row[f])
		}
		if err := mon.ReportInterval(interval, local); err != nil {
			t.Fatalf("monitor %d interval %d: %v", i, interval, err)
		}
	}
}

// TestFederatedMatchesFlatDecisions is the correctness bar of the federated
// tier: the same traffic driven through 3 aggregators × 6 monitors must
// yield byte-identical alarm decisions to the flat 6-monitor topology,
// because randproj sketches over disjoint flow shards merge by exact column
// union (sketch linearity, Theorem 1). Both runs carry the oracle
// (CheckModel-backed) self-check, which must stay violation-free.
func TestFederatedMatchesFlatDecisions(t *testing.T) {
	const n = testWindow + 40
	rows := genRows(n, testFlows, n-4)

	run := func(federated bool) ([]Decision, *obs.Registry) {
		reg := obs.NewRegistry()
		cfg := nocConfig()
		cfg.Obs = reg
		cfg.SelfCheckEvery = 16
		svc, decisions := startNOC(t, cfg)
		var mons []*monitor.Service
		if federated {
			fed := startFederation(t, svc.Addr(), 3, 6, testFlows, sketch.FamilyRandProj, testSketch, false, nil)
			mons = fed.mons
			waitMonitors(t, svc, 3) // the NOC sees 3 aggregator registrants
		} else {
			mons = startMonitors(t, svc.Addr(), 6)
			waitMonitors(t, svc, 6)
		}
		out := make([]Decision, 0, n)
		for i := 0; i < n; i++ {
			iv := int64(i + 1)
			feedAssigned(t, mons, testFlows, iv, rows[i])
			out = append(out, nextDecision(t, decisions, iv))
		}
		for _, m := range mons {
			_ = m.Close()
		}
		svc.Shutdown()
		return out, reg
	}

	flat, flatReg := run(false)
	fed, fedReg := run(true)

	alarms := 0
	for i := range flat {
		f, g := flat[i], fed[i]
		if f.Result.Anomalous != g.Result.Anomalous ||
			f.Result.Distance != g.Result.Distance ||
			f.Result.Threshold != g.Result.Threshold ||
			f.Result.Refreshed != g.Result.Refreshed {
			t.Fatalf("interval %d diverged:\n flat %+v\n fed  %+v", f.Interval, f.Result, g.Result)
		}
		if g.Degraded || g.Result.StaleFlows != 0 {
			t.Fatalf("federated decision %d degraded with all peers alive: %+v", g.Interval, g)
		}
		if f.Result.Anomalous {
			alarms++
		}
	}
	if alarms == 0 {
		t.Fatal("the injected spike raised no alarm in either topology — the comparison is vacuous")
	}
	for name, reg := range map[string]*obs.Registry{"flat": flatReg, "federated": fedReg} {
		if v := reg.Counter("streampca_noc_oracle_violations_total", "").Value(); v != 0 {
			t.Fatalf("%s run: %d oracle violations", name, v)
		}
	}
}

// TestFederatedFDOneMonitorPerAggMatchesFlat pins the FD pass-through
// guarantee: with exactly one monitor per aggregator, sketch.Merge is a
// verbatim deep copy, so even the non-linear FD family is byte-identical to
// the flat topology. (Multi-monitor FD shards merge per aggregator and
// legitimately differ from flat — DESIGN.md §16.)
func TestFederatedFDOneMonitorPerAggMatchesFlat(t *testing.T) {
	const n = testWindow + 24
	rows := genRows(n, fdTestFlows, n-4)

	run := func(federated bool) []Decision {
		svc, decisions := startNOC(t, fdNocConfig())
		var mons []*monitor.Service
		if federated {
			fed := startFederation(t, svc.Addr(), 3, 3, fdTestFlows, sketch.FamilyFD, testFDEll, true, nil)
			mons = fed.mons
		} else {
			mons = startFDMonitors(t, svc.Addr(), 3)
		}
		waitMonitors(t, svc, 3)
		out := make([]Decision, 0, n)
		for i := 0; i < n; i++ {
			iv := int64(i + 1)
			feedAssigned(t, mons, fdTestFlows, iv, rows[i])
			out = append(out, nextDecision(t, decisions, iv))
		}
		for _, m := range mons {
			_ = m.Close()
		}
		svc.Shutdown()
		return out
	}

	flat := run(false)
	fed := run(true)
	for i := range flat {
		f, g := flat[i], fed[i]
		if f.Result.Anomalous != g.Result.Anomalous ||
			f.Result.Distance != g.Result.Distance ||
			f.Result.Threshold != g.Result.Threshold {
			t.Fatalf("interval %d diverged:\n flat %+v\n fed  %+v", f.Interval, f.Result, g.Result)
		}
	}
}

// TestChaosAggregatorFailover kills one of three aggregators mid-run. The
// NOC must keep deciding (the dead shard's flows come from the PR-3
// degraded caches, flagged on the decision), and the orphaned monitors must
// re-place themselves onto the survivors via the pushed shard map — after
// which the survivors' grown flow unions cover the whole network again and
// decisions return to non-degraded.
func TestChaosAggregatorFailover(t *testing.T) {
	cfg := nocConfig()
	cfg.FetchTimeout = 500 * time.Millisecond
	cfg.Degraded = DegradedPolicy{Enabled: true, MaxStaleness: 1 << 40}
	svc, decisions := startNOC(t, cfg)
	fed := startFederation(t, svc.Addr(), 3, 6, testFlows, sketch.FamilyRandProj, testSketch, false,
		func(c *monitor.Config) {
			c.Reconnect = true
			// Big enough that the kill-to-failover window spans a few fed
			// intervals (the degraded phase below), small enough to converge
			// fast once asserted.
			c.ReconnectBackoff = 300 * time.Millisecond
			c.ReconnectBackoffMax = 300 * time.Millisecond
		})
	waitMonitors(t, svc, 3)

	rng := rand.New(rand.NewSource(99))
	var interval int64
	for i := 0; i < testWindow+5; i++ {
		interval++
		feedAssigned(t, fed.mons, testFlows, interval, trafficRow(rng, interval))
		nextDecision(t, decisions, interval)
	}
	if !svc.HasModel() {
		t.Fatal("warmup must have built a model")
	}

	// Kill the first aggregator that owns at least one monitor.
	victim := -1
	for i, a := range fed.aggs {
		if len(a.Monitors()) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no aggregator owns a monitor")
	}
	orphans := len(fed.aggs[victim].Monitors())
	lostFlows := len(fed.aggs[victim].FlowUnion())
	_ = fed.aggs[victim].Close()
	waitMonitors(t, svc, 2)

	// Degraded phase: the orphans are still backing off, so their flows are
	// missing and must come from the NOC's volume cache.
	interval++
	sawStale := 0
	for i, mon := range fed.mons {
		var local []float64
		for f := i; f < testFlows; f += len(fed.mons) {
			local = append(local, trafficRow(rng, interval)[f])
		}
		if err := mon.ReportInterval(interval, local); err != nil {
			continue // orphaned monitor, link down — the NOC covers its flows
		}
	}
	d := nextDecision(t, decisions, interval)
	if !d.Degraded || d.Result.StaleFlows != lostFlows {
		t.Fatalf("kill-window decision: degraded=%v stale=%d, want true/%d",
			d.Degraded, d.Result.StaleFlows, lostFlows)
	}
	sawStale = d.Result.StaleFlows

	// Failover: every orphan must land on a survivor, and the survivors'
	// unions must cover the whole flow space again.
	survivors := append([]*agg.Service(nil), fed.aggs[:victim]...)
	survivors = append(survivors, fed.aggs[victim+1:]...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		covered := 0
		for _, a := range survivors {
			covered += len(a.FlowUnion())
		}
		if monitorsAcross(survivors) == 6 && covered == testFlows {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover incomplete: %d monitors on survivors, %d flows covered",
				monitorsAcross(survivors), covered)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Recovery phase: the degraded flags live on the in-force model and only
	// clear at the next sketch refresh, so quiet traffic would report the
	// kill-window model forever. Spike each recovery interval (rotating the
	// direction so refresh absorption can't mute later rounds) to force a
	// threshold crossing — the refreshed model, rebuilt from full live
	// coverage, must come back non-degraded.
	recovered := false
	for r := 0; r < 10 && !recovered; r++ {
		interval++
		row := trafficRow(rng, interval)
		row[(2*r)%testFlows] += 5e5
		for i, mon := range fed.mons {
			var local []float64
			for f := i; f < testFlows; f += len(fed.mons) {
				local = append(local, row[f])
			}
			// Retry: a just-failed-over monitor can race its re-registration.
			var err error
			for a := 0; a < 50; a++ {
				if err = mon.ReportInterval(interval, local); err == nil {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				t.Fatalf("monitor %d never recovered: %v", i, err)
			}
		}
		d := nextDecision(t, decisions, interval)
		recovered = !d.Degraded && d.Result.StaleFlows == 0
	}
	if !recovered {
		t.Fatalf("decisions never returned to non-degraded after failover (%d orphans, %d stale flows seen)",
			orphans, sawStale)
	}
}
