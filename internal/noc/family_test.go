package noc

import (
	"math/rand"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/monitor"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
)

const (
	testFDEll = 6
	// fdTestFlows keeps each of the three striped monitor shards wider than
	// the 2ℓ = 12 row buffer, as the FD compression bound 2ℓ < w demands.
	fdTestFlows = 39
)

// fdNocConfig mirrors nocConfig for the Frequent Directions family: the
// detector's SketchLen carries the basis budget ℓ monitors must announce.
func fdNocConfig() Config {
	return Config{
		Detector: core.DetectorConfig{
			Family:    sketch.FamilyFD,
			NumFlows:  fdTestFlows,
			WindowLen: testWindow,
			SketchLen: testFDEll,
			Alpha:     0.002,
			Mode:      core.RankFixed,
			FixedRank: 2,
		},
		FetchTimeout: 2 * time.Second,
	}
}

// startFDMonitors spins nMon FD monitor services partitioning fdTestFlows
// flows (same striped assignment as startMonitors) and connects them.
func startFDMonitors(t *testing.T, addr string, nMon int) []*monitor.Service {
	t.Helper()
	assign := make([][]int, nMon)
	for f := 0; f < fdTestFlows; f++ {
		assign[f%nMon] = append(assign[f%nMon], f)
	}
	mons := make([]*monitor.Service, nMon)
	for i := range mons {
		svc, err := monitor.New(monitor.Config{
			ID:        "fd-" + string(rune('a'+i)),
			Family:    sketch.FamilyFD,
			FlowIDs:   assign[i],
			WindowLen: testWindow,
			FDEll:     testFDEll,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Connect(addr, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		mons[i] = svc
	}
	return mons
}

// fdFeedInterval pushes one interval's fdTestFlows-wide volume row through
// the striped FD monitors.
func fdFeedInterval(t *testing.T, mons []*monitor.Service, interval int64, volumes []float64) {
	t.Helper()
	for i, mon := range mons {
		var local []float64
		for f := i; f < fdTestFlows; f += len(mons) {
			local = append(local, volumes[f])
		}
		if err := mon.ReportInterval(interval, local); err != nil {
			t.Fatalf("monitor %d interval %d: %v", i, interval, err)
		}
	}
}

// fdTrafficRow synthesizes a rank-2-plus-noise volume vector over the FD
// tests' wider flow space.
func fdTrafficRow(rng *rand.Rand) []float64 {
	f1 := 1000 + 200*rng.NormFloat64()
	f2 := 500 + 100*rng.NormFloat64()
	row := make([]float64, fdTestFlows)
	for j := range row {
		w1 := float64(j%3) + 1
		w2 := float64(j%4) + 1
		row[j] = w1*f1 + w2*f2 + 10*rng.NormFloat64()
	}
	return row
}

func TestFDEndToEndDetection(t *testing.T) {
	// The full distributed loop on the FD family: per-monitor block
	// snapshots are pulled over the wire, merged at the NOC by RebuildFD,
	// and the lazy protocol raises an alarm on a structured spike.
	svc, decisions := startNOC(t, fdNocConfig())
	mons := startFDMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	rng := rand.New(rand.NewSource(54))
	var interval int64
	for i := 0; i < testWindow+10; i++ {
		interval++
		fdFeedInterval(t, mons, interval, fdTrafficRow(rng))
		nextDecision(t, decisions, interval)
	}
	if !svc.HasModel() {
		t.Fatal("NOC must have built a model from FD blocks")
	}

	var alarms int
	for i := 0; i < 20; i++ {
		interval++
		fdFeedInterval(t, mons, interval, fdTrafficRow(rng))
		if d := nextDecision(t, decisions, interval); d.Result.Anomalous {
			alarms++
		}
	}
	if alarms > 5 {
		t.Fatalf("%d/20 alarms on normal traffic", alarms)
	}

	// Moderate, structure-breaking shift: the monitors fold the interval
	// into their FD buffers before serving the pull, so an overwhelming
	// spike would hijack a top principal component of the refreshed model;
	// this one clears the threshold without capturing the subspace.
	interval++
	bad := fdTrafficRow(rng)
	bad[0] += 8000
	bad[5] += 6000
	fdFeedInterval(t, mons, interval, bad)
	if d := nextDecision(t, decisions, interval); !d.Result.Anomalous {
		t.Fatalf("injected anomaly missed: %+v", d.Result)
	}
}

func TestFDLocalSketchesMode(t *testing.T) {
	// §V-A variant on the FD family: the NOC folds volume reports into one
	// FD buffer over all flows and never pulls sketches.
	cfg := fdNocConfig()
	cfg.LocalSketches = true
	svc, decisions := startNOC(t, cfg)
	mons := startFDMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	rng := rand.New(rand.NewSource(55))
	var interval int64
	for i := 0; i < testWindow+10; i++ {
		interval++
		fdFeedInterval(t, mons, interval, fdTrafficRow(rng))
		nextDecision(t, decisions, interval)
	}
	if !svc.HasModel() {
		t.Fatal("NOC must build a model from its own FD buffer")
	}
	interval++
	bad := fdTrafficRow(rng)
	bad[1] += 5e5
	bad[6] += 3e5
	fdFeedInterval(t, mons, interval, bad)
	if d := nextDecision(t, decisions, interval); !d.Result.Anomalous {
		t.Fatalf("anomaly missed in FD local-sketch mode: %+v", d.Result)
	}
}

func TestFDDegradedBlockFallback(t *testing.T) {
	// When an FD monitor vanishes, the degraded fetch path substitutes its
	// whole cached block (FD state only merges at block granularity) and the
	// rebuilt model is flagged degraded with that monitor's flows stale.
	cfg := fdNocConfig()
	cfg.FetchTimeout = 500 * time.Millisecond
	cfg.Degraded = DegradedPolicy{Enabled: true, MaxStaleness: 1 << 40}
	svc, decisions := startNOC(t, cfg)
	mons := startFDMonitors(t, svc.Addr(), 3)
	waitMonitors(t, svc, 3)

	rng := rand.New(rand.NewSource(56))
	var interval int64
	for i := 0; i < testWindow+5; i++ {
		interval++
		fdFeedInterval(t, mons, interval, fdTrafficRow(rng))
		nextDecision(t, decisions, interval)
	}
	if !svc.HasModel() {
		t.Fatal("warmup must have built a model (populating the block cache)")
	}

	_ = mons[2].Close()
	waitMonitors(t, svc, 2)

	// A spike forces a sketch pull; the dead monitor's 13 striped flows come
	// from its cached block, and its volumes from the last-volume cache.
	interval++
	bad := fdTrafficRow(rng)
	bad[0] += 5e5
	bad[4] += 3e5
	for i := 0; i < 2; i++ {
		var local []float64
		for f := i; f < fdTestFlows; f += 3 {
			local = append(local, bad[f])
		}
		if err := mons[i].ReportInterval(interval, local); err != nil {
			t.Fatal(err)
		}
	}
	d := nextDecision(t, decisions, interval)
	if !d.Degraded {
		t.Fatalf("decision not degraded: %+v", d)
	}
	if !d.Result.Refreshed || !d.Result.Degraded || d.Result.StaleFlows != 13 {
		t.Fatalf("model not rebuilt from the cached block: %+v", d.Result)
	}
}

func TestFamilyMismatchRejected(t *testing.T) {
	// A randproj NOC refuses an FD monitor and vice versa; an FD monitor
	// with the wrong basis budget ℓ is refused too.
	rpSvc, _ := startNOC(t, nocConfig())
	fdMon, err := monitor.New(monitor.Config{
		ID: "fd", Family: sketch.FamilyFD, FlowIDs: []int{0, 1, 2},
		WindowLen: testWindow, FDEll: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fdMon.Connect(rpSvc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer fdMon.Close()

	fdSvc, _ := startNOC(t, fdNocConfig())
	rpMon, err := monitor.New(monitor.Config{
		ID: "rp", FlowIDs: []int{0, 1, 2}, WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: testSeed, SketchLen: testFDEll},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rpMon.Connect(fdSvc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer rpMon.Close()

	badEllFlows := make([]int, 15)
	for i := range badEllFlows {
		badEllFlows[i] = 3 + i
	}
	badEll, err := monitor.New(monitor.Config{
		ID: "bad-ell", Family: sketch.FamilyFD, FlowIDs: badEllFlows,
		WindowLen: testWindow, FDEll: testFDEll + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := badEll.Connect(fdSvc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer badEll.Close()

	time.Sleep(200 * time.Millisecond)
	if got := rpSvc.Monitors(); len(got) != 0 {
		t.Fatalf("randproj NOC registered FD monitor: %v", got)
	}
	if got := fdSvc.Monitors(); len(got) != 0 {
		t.Fatalf("FD NOC registered mismatched monitors: %v", got)
	}
}

func TestFDSelfCheckRejected(t *testing.T) {
	cfg := fdNocConfig()
	cfg.SelfCheckEvery = 8
	if _, err := New(cfg); err == nil {
		t.Fatal("FD family with the randproj-only oracle self-check must fail")
	}
}
