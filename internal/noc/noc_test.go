package noc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/monitor"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

const (
	testFlows  = 9
	testWindow = 64
	testSketch = 32
	testSeed   = 4242
)

func nocConfig() Config {
	return Config{
		Detector: core.DetectorConfig{
			NumFlows:  testFlows,
			WindowLen: testWindow,
			SketchLen: testSketch,
			Alpha:     0.01,
			Mode:      core.RankFixed,
			FixedRank: 2,
		},
		Seed:         testSeed,
		FetchTimeout: 2 * time.Second,
	}
}

// startNOC boots a NOC with a decision recorder.
func startNOC(t *testing.T, cfg Config) (*Service, <-chan Decision) {
	t.Helper()
	decisions := make(chan Decision, 1024)
	cfg.OnDecision = func(d Decision) { decisions <- d }
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Shutdown)
	return svc, decisions
}

// startMonitors spins nMon monitor services partitioning testFlows flows and
// connects them to addr.
func startMonitors(t *testing.T, addr string, nMon int) []*monitor.Service {
	t.Helper()
	assign := make([][]int, nMon)
	for f := 0; f < testFlows; f++ {
		assign[f%nMon] = append(assign[f%nMon], f)
	}
	mons := make([]*monitor.Service, nMon)
	for i := range mons {
		svc, err := monitor.New(monitor.Config{
			ID:        "mon-" + string(rune('a'+i)),
			FlowIDs:   assign[i],
			WindowLen: testWindow,
			Epsilon:   0.05,
			Sketch:    randproj.Config{Seed: testSeed, SketchLen: testSketch},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Connect(addr, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		mons[i] = svc
	}
	return mons
}

// feedInterval pushes one interval's volumes through all monitors.
func feedInterval(t *testing.T, mons []*monitor.Service, interval int64, volumes []float64) {
	t.Helper()
	for i, mon := range mons {
		// Rebuild each monitor's slice per its flow assignment.
		var local []float64
		for f := i; f < testFlows; f += len(mons) {
			local = append(local, volumes[f])
		}
		if err := mon.ReportInterval(interval, local); err != nil {
			t.Fatalf("monitor %d interval %d: %v", i, interval, err)
		}
	}
}

// nextDecision waits for the decision of a specific interval.
func nextDecision(t *testing.T, decisions <-chan Decision, interval int64) Decision {
	t.Helper()
	for {
		select {
		case d := <-decisions:
			if d.Interval == interval {
				return d
			}
			// Skip stale decisions (earlier intervals).
		case <-time.After(5 * time.Second):
			t.Fatalf("no decision for interval %d", interval)
		}
	}
}

// trafficRow synthesizes a rank-2-plus-noise volume vector.
func trafficRow(rng *rand.Rand, t int64) []float64 {
	f1 := 1000 + 200*rng.NormFloat64()
	f2 := 500 + 100*rng.NormFloat64()
	row := make([]float64, testFlows)
	for j := range row {
		w1 := float64(j%3) + 1
		w2 := float64(j%4) + 1
		row[j] = w1*f1 + w2*f2 + 10*rng.NormFloat64()
	}
	return row
}

func TestNewValidation(t *testing.T) {
	cfg := nocConfig()
	cfg.Detector.NumFlows = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad detector config must fail")
	}
}

func TestEndToEndDetection(t *testing.T) {
	svc, decisions := startNOC(t, nocConfig())
	mons := startMonitors(t, svc.Addr(), 3)

	// Allow registrations to land.
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("monitors registered: %v", svc.Monitors())
		}
		time.Sleep(10 * time.Millisecond)
	}

	rng := rand.New(rand.NewSource(50))
	var interval int64
	// Warm-up: fill the window.
	for i := 0; i < testWindow+10; i++ {
		interval++
		feedInterval(t, mons, interval, trafficRow(rng, interval))
		nextDecision(t, decisions, interval)
	}
	if !svc.HasModel() {
		t.Fatal("NOC must have built a model")
	}
	obs0, fetches0, _ := svc.DetectorStats()
	if obs0 == 0 || fetches0 == 0 {
		t.Fatalf("stats = %d obs, %d fetches", obs0, fetches0)
	}

	// Steady traffic: mostly normal decisions, few fetches.
	var alarms int
	for i := 0; i < 20; i++ {
		interval++
		feedInterval(t, mons, interval, trafficRow(rng, interval))
		if d := nextDecision(t, decisions, interval); d.Result.Anomalous {
			alarms++
		}
	}
	if alarms > 5 {
		t.Fatalf("%d/20 alarms on normal traffic", alarms)
	}

	// Inject a structured anomaly: big, low-rank-breaking shift.
	interval++
	bad := trafficRow(rng, interval)
	bad[0] += 5e5
	bad[5] += 3e5
	feedInterval(t, mons, interval, bad)
	d := nextDecision(t, decisions, interval)
	if !d.Result.Anomalous {
		t.Fatalf("injected anomaly missed: %+v", d.Result)
	}
}

func TestAlarmBroadcastToMonitors(t *testing.T) {
	svc, decisions := startNOC(t, nocConfig())

	var alarmMu sync.Mutex
	var gotAlarms []transport.Alarm
	// One bespoke monitor with an alarm callback plus two plain ones.
	assign := [][]int{{0, 3, 6}, {1, 4, 7}, {2, 5, 8}}
	var mons []*monitor.Service
	for i, flows := range assign {
		cfg := monitor.Config{
			ID:        "m" + string(rune('0'+i)),
			FlowIDs:   flows,
			WindowLen: testWindow,
			Epsilon:   0.05,
			Sketch:    randproj.Config{Seed: testSeed, SketchLen: testSketch},
		}
		if i == 0 {
			cfg.OnAlarm = func(a transport.Alarm) {
				alarmMu.Lock()
				gotAlarms = append(gotAlarms, a)
				alarmMu.Unlock()
			}
		}
		m, err := monitor.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(svc.Addr(), 2*time.Second); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = m.Close() })
		mons = append(mons, m)
	}

	rng := rand.New(rand.NewSource(51))
	var interval int64
	feed := func(volumes []float64) Decision {
		interval++
		for i, mon := range mons {
			var local []float64
			for _, f := range assign[i] {
				local = append(local, volumes[f])
			}
			if err := mon.ReportInterval(interval, local); err != nil {
				t.Fatal(err)
			}
		}
		return nextDecision(t, decisions, interval)
	}

	for i := 0; i < testWindow+5; i++ {
		feed(trafficRow(rng, interval))
	}
	// Moderate, structure-breaking shift: large enough to clear the
	// threshold, small enough that it cannot hijack a top principal
	// component after the lazy refresh absorbs the interval.
	bad := trafficRow(rng, interval)
	bad[2] += 4000
	bad[7] += 3000
	if d := feed(bad); !d.Result.Anomalous {
		t.Fatalf("anomaly missed: %+v", d.Result)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		alarmMu.Lock()
		n := len(gotAlarms)
		alarmMu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alarm never reached the monitor")
		}
		time.Sleep(10 * time.Millisecond)
	}
	alarmMu.Lock()
	a := gotAlarms[0]
	alarmMu.Unlock()
	if a.Distance <= a.Threshold {
		t.Fatalf("alarm payload = %+v", a)
	}
}

func TestRejectsMismatchedMonitor(t *testing.T) {
	svc, _ := startNOC(t, nocConfig())

	// Wrong seed: rejected at hello.
	bad, err := monitor.New(monitor.Config{
		ID: "bad", FlowIDs: []int{0}, WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: 1, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer bad.Close()

	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("mismatched monitor registered: %v", svc.Monitors())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Overlapping flows: second registration rejected.
	ok1, err := monitor.New(monitor.Config{
		ID: "ok1", FlowIDs: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: testSeed, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ok1.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer ok1.Close()
	deadline = time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first monitor never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	dup, err := monitor.New(monitor.Config{
		ID: "dup", FlowIDs: []int{3}, WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: testSeed, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dup.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer dup.Close()
	time.Sleep(100 * time.Millisecond)
	if got := svc.Monitors(); len(got) != 1 || got[0] != "ok1" {
		t.Fatalf("monitors = %v, want only ok1", got)
	}
}

func TestMonitorChurnRecovery(t *testing.T) {
	// With a monitor gone, complete intervals never assemble, so no
	// detections happen; after it reconnects, detection resumes.
	cfg := nocConfig()
	cfg.FetchTimeout = 500 * time.Millisecond
	svc, decisions := startNOC(t, cfg)
	mons := startMonitors(t, svc.Addr(), 3)

	rng := rand.New(rand.NewSource(52))
	var interval int64
	for i := 0; i < testWindow+5; i++ {
		interval++
		feedInterval(t, mons, interval, trafficRow(rng, interval))
		nextDecision(t, decisions, interval)
	}

	// Kill one monitor; its flows go uncovered.
	_ = mons[2].Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("monitor departure not noticed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Feed from the survivors: intervals stay incomplete → no decision.
	interval++
	row := trafficRow(rng, interval)
	for i := 0; i < 2; i++ {
		var local []float64
		for f := i; f < testFlows; f += 3 {
			local = append(local, row[f])
		}
		if err := mons[i].ReportInterval(interval, local); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-decisions:
		t.Fatalf("unexpected decision %+v with a monitor down", d)
	case <-time.After(300 * time.Millisecond):
	}

	// Reconnect a replacement for the dead monitor's flows.
	replacement, err := monitor.New(monitor.Config{
		ID: "replacement", FlowIDs: []int{2, 5, 8}, WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: testSeed, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := replacement.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = replacement.Close() })
	deadline = time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) != 3 {
		if time.Now().After(deadline) {
			t.Fatal("replacement never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Warm the replacement's window, then detection resumes end to end.
	for i := 0; i < testWindow+2; i++ {
		interval++
		row := trafficRow(rng, interval)
		for mi := 0; mi < 2; mi++ {
			var local []float64
			for f := mi; f < testFlows; f += 3 {
				local = append(local, row[f])
			}
			if err := mons[mi].ReportInterval(interval, local); err != nil {
				t.Fatal(err)
			}
		}
		var local []float64
		for _, f := range []int{2, 5, 8} {
			local = append(local, row[f])
		}
		if err := replacement.ReportInterval(interval, local); err != nil {
			t.Fatal(err)
		}
		nextDecision(t, decisions, interval)
	}
}

func TestLocalSketchesMode(t *testing.T) {
	// §V-A variant: the NOC maintains the histograms itself; monitors act
	// as volume reporters only and never receive sketch requests.
	cfg := nocConfig()
	cfg.LocalSketches = true
	svc, decisions := startNOC(t, cfg)
	mons := startMonitors(t, svc.Addr(), 3)

	rng := rand.New(rand.NewSource(53))
	var interval int64
	for i := 0; i < testWindow+10; i++ {
		interval++
		feedInterval(t, mons, interval, trafficRow(rng, interval))
		nextDecision(t, decisions, interval)
	}
	if !svc.HasModel() {
		t.Fatal("NOC must build a model from its own histograms")
	}
	// Anomaly detection still works.
	interval++
	bad := trafficRow(rng, interval)
	bad[1] += 4000
	bad[6] += 3000
	feedInterval(t, mons, interval, bad)
	d := nextDecision(t, decisions, interval)
	if !d.Result.Anomalous {
		t.Fatalf("anomaly missed in local-sketch mode: %+v", d.Result)
	}
	// And detection keeps working even after every monitor disconnects
	// mid-stream — the NOC's own state is self-sufficient for sketches
	// (volume reports must still arrive, so reconnect a full-coverage one).
	for _, m := range mons {
		_ = m.Close()
	}
	// Wait for the NOC to release the dead monitors' flow ownership before
	// a full-coverage replacement can register.
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("old monitors never unregistered: %v", svc.Monitors())
		}
		time.Sleep(10 * time.Millisecond)
	}
	all := make([]int, testFlows)
	for f := range all {
		all[f] = f
	}
	solo, err := monitor.New(monitor.Config{
		ID: "solo", FlowIDs: all, WindowLen: testWindow, Epsilon: 0.05,
		Sketch: randproj.Config{Seed: testSeed, SketchLen: testSketch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Connect(svc.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = solo.Close() })
	deadline = time.Now().Add(2 * time.Second)
	for len(svc.Monitors()) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("solo monitor never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		interval++
		if err := solo.ReportInterval(interval, trafficRow(rng, interval)); err != nil {
			t.Fatal(err)
		}
		nextDecision(t, decisions, interval)
	}
}

func TestFetchErrors(t *testing.T) {
	// Exercise fetchSketches failure paths directly.
	svc, err := New(nocConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.fetchSketches(nil); !errors.Is(err, ErrCoverage) {
		t.Fatalf("no monitors: %v", err)
	}
}
