// Package faults is a stdlib-only fault-injection layer for the
// monitor↔NOC transport. A Plan is an ordered list of rules matching
// messages by direction and payload type; each firing rule can drop the
// message, delay it, corrupt its payload, or disconnect the connection.
// Decisions are deterministic for a given seed and message sequence, so
// chaos tests replay exactly.
//
// The transport consults the injector on every Send and Recv; the no-op
// default (a nil Injector) costs one pointer check per message, so
// production builds pay nothing for the capability.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Directions a rule can match. An empty Dir matches both.
const (
	DirSend = "send"
	DirRecv = "recv"
)

// Outcome is the injector's verdict for one message. The zero value passes
// the message through untouched.
type Outcome struct {
	// Drop silently discards the message (the sender believes it was sent;
	// the receiver never sees it).
	Drop bool
	// Delay stalls delivery for the given duration before proceeding.
	Delay time.Duration
	// Corrupt mutates the payload in a way the peer's validators can
	// detect (e.g. a non-finite sketch value), exercising bad-report paths.
	Corrupt bool
	// Disconnect closes the connection instead of delivering the message.
	Disconnect bool
}

// Zero reports whether the outcome leaves the message untouched.
func (o Outcome) Zero() bool {
	return !o.Drop && o.Delay == 0 && !o.Corrupt && !o.Disconnect
}

// Injector decides the fate of each message. Implementations must be safe
// for concurrent use: every connection sharing the injector calls Decide
// from its own goroutines.
type Injector interface {
	// Decide is consulted once per message with the transport direction
	// (DirSend or DirRecv, from the perspective of the consulting
	// connection) and the envelope's payload type name ("hello", "volume",
	// "sketch_request", "sketch_response", "alarm", "error").
	Decide(dir, msgType string) Outcome
}

// Rule matches a subset of messages and applies an action. Fields compose:
// a rule with both Drop and Delay set delays, then drops.
type Rule struct {
	// Dir restricts the rule to DirSend or DirRecv; empty matches both.
	Dir string
	// Type restricts the rule to one payload type name; empty matches all.
	Type string
	// After skips the first After matching messages before the rule can
	// fire (deterministic fault windows: "break the 3rd response").
	After int
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Prob is the firing probability once After/Count allow; values <= 0
	// or >= 1 mean "always". Draws come from the plan's seeded generator.
	Prob float64

	// Actions applied when the rule fires.
	Drop       bool
	Delay      time.Duration
	Corrupt    bool
	Disconnect bool
}

func (r Rule) outcome() Outcome {
	return Outcome{Drop: r.Drop, Delay: r.Delay, Corrupt: r.Corrupt, Disconnect: r.Disconnect}
}

// ruleState tracks one rule's match/fire counters.
type ruleState struct {
	rule    Rule
	matched int
	fired   int
}

// Plan is a deterministic, thread-safe Injector built from rules. The first
// matching rule that fires wins; later rules are not consulted for that
// message.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
}

// NewPlan builds a plan. The seed drives the probabilistic draws; two plans
// with the same seed and rules make identical decisions for identical
// message sequences.
func NewPlan(seed uint64, rules ...Rule) (*Plan, error) {
	for i, r := range rules {
		if r.Dir != "" && r.Dir != DirSend && r.Dir != DirRecv {
			return nil, fmt.Errorf("faults: rule %d: bad direction %q", i, r.Dir)
		}
		if r.After < 0 || r.Count < 0 {
			return nil, fmt.Errorf("faults: rule %d: negative After/Count", i)
		}
		if r.Delay < 0 {
			return nil, fmt.Errorf("faults: rule %d: negative delay", i)
		}
	}
	p := &Plan{rng: rand.New(rand.NewSource(int64(seed)))}
	for _, r := range rules {
		p.rules = append(p.rules, &ruleState{rule: r})
	}
	return p, nil
}

// MustPlan is NewPlan for tests; it panics on invalid rules.
func MustPlan(seed uint64, rules ...Rule) *Plan {
	p, err := NewPlan(seed, rules...)
	if err != nil {
		panic(err)
	}
	return p
}

// Decide implements Injector.
func (p *Plan) Decide(dir, msgType string) Outcome {
	if p == nil {
		return Outcome{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range p.rules {
		r := &st.rule
		if r.Dir != "" && r.Dir != dir {
			continue
		}
		if r.Type != "" && r.Type != msgType {
			continue
		}
		st.matched++
		if st.matched <= r.After {
			continue
		}
		if r.Count > 0 && st.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && p.rng.Float64() >= r.Prob {
			continue
		}
		st.fired++
		return r.outcome()
	}
	return Outcome{}
}

// Fired returns how many times rule i has fired (for test assertions).
func (p *Plan) Fired(i int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.rules) {
		return 0
	}
	return p.rules[i].fired
}

// String summarizes the plan's state, e.g. for chaos-test failure messages.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	for i, st := range p.rules {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "rule %d (%s %s): matched %d, fired %d",
			i, orAny(st.rule.Dir), orAny(st.rule.Type), st.matched, st.fired)
	}
	return b.String()
}

func orAny(s string) string {
	if s == "" {
		return "any"
	}
	return s
}
