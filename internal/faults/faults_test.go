package faults

import (
	"sync"
	"testing"
	"time"
)

func TestRuleMatching(t *testing.T) {
	p := MustPlan(1,
		Rule{Dir: DirSend, Type: "volume", Drop: true},
		Rule{Dir: DirRecv, Type: "sketch_response", Delay: 5 * time.Millisecond},
	)
	if o := p.Decide(DirSend, "volume"); !o.Drop {
		t.Fatalf("send volume should drop: %+v", o)
	}
	if o := p.Decide(DirRecv, "volume"); !o.Zero() {
		t.Fatalf("recv volume must pass: %+v", o)
	}
	if o := p.Decide(DirSend, "hello"); !o.Zero() {
		t.Fatalf("send hello must pass: %+v", o)
	}
	if o := p.Decide(DirRecv, "sketch_response"); o.Delay != 5*time.Millisecond {
		t.Fatalf("recv response should delay: %+v", o)
	}
}

func TestEmptyMatchersMatchAll(t *testing.T) {
	p := MustPlan(1, Rule{Disconnect: true})
	for _, dir := range []string{DirSend, DirRecv} {
		for _, typ := range []string{"hello", "volume", "alarm"} {
			if o := p.Decide(dir, typ); !o.Disconnect {
				t.Fatalf("%s %s should disconnect", dir, typ)
			}
		}
	}
}

func TestAfterAndCountWindows(t *testing.T) {
	// Fires only on the 3rd and 4th matching message.
	p := MustPlan(1, Rule{Type: "sketch_response", After: 2, Count: 2, Corrupt: true})
	var fired []int
	for i := 0; i < 8; i++ {
		if p.Decide(DirSend, "sketch_response").Corrupt {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("fired at %v, want [2 3]", fired)
	}
	if p.Fired(0) != 2 {
		t.Fatalf("Fired(0) = %d", p.Fired(0))
	}
}

func TestDeterministicProbability(t *testing.T) {
	run := func() []bool {
		p := MustPlan(99, Rule{Type: "volume", Prob: 0.5, Drop: true})
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.Decide(DirSend, "volume").Drop
		}
		return out
	}
	a, b := run(), run()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical plans", i)
		}
		if a[i] {
			drops++
		}
	}
	// ~100 expected; sanity-check it is genuinely probabilistic.
	if drops < 60 || drops > 140 {
		t.Fatalf("%d/200 drops for p=0.5", drops)
	}
}

func TestFirstMatchWins(t *testing.T) {
	p := MustPlan(1,
		Rule{Type: "volume", Count: 1, Drop: true},
		Rule{Type: "volume", Delay: time.Millisecond},
	)
	if o := p.Decide(DirSend, "volume"); !o.Drop || o.Delay != 0 {
		t.Fatalf("first message: %+v", o)
	}
	// First rule exhausted: second rule takes over.
	if o := p.Decide(DirSend, "volume"); o.Drop || o.Delay != time.Millisecond {
		t.Fatalf("second message: %+v", o)
	}
}

func TestInvalidRules(t *testing.T) {
	if _, err := NewPlan(1, Rule{Dir: "sideways"}); err == nil {
		t.Fatal("bad direction must be rejected")
	}
	if _, err := NewPlan(1, Rule{After: -1}); err == nil {
		t.Fatal("negative After must be rejected")
	}
	if _, err := NewPlan(1, Rule{Delay: -time.Second}); err == nil {
		t.Fatal("negative delay must be rejected")
	}
}

func TestNilPlanIsNoOp(t *testing.T) {
	var p *Plan
	if o := p.Decide(DirSend, "volume"); !o.Zero() {
		t.Fatalf("nil plan: %+v", o)
	}
}

func TestConcurrentDecide(t *testing.T) {
	p := MustPlan(7, Rule{Prob: 0.3, Drop: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Decide(DirRecv, "volume")
			}
		}()
	}
	wg.Wait()
	if p.Fired(0) == 0 {
		t.Fatal("rule never fired across 8000 messages at p=0.3")
	}
}
