// Package filter implements communication-efficient local filtering in the
// style of Huang et al. (INFOCOM'07), one of the distributed-monitoring
// baselines the paper discusses (§II): a local monitor transmits its volume
// vector only when it deviates from the last transmitted one by more than a
// user-specified tolerance, and the NOC carries the last received values
// forward for silent monitors. This trades detection fidelity for volume-
// report bandwidth — an axis orthogonal to the sketch method, which reduces
// the *model* (sketch) traffic instead; the two compose.
package filter

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid filter configuration.
	ErrConfig = errors.New("filter: invalid configuration")
	// ErrInput indicates structurally invalid input.
	ErrInput = errors.New("filter: invalid input")
)

// Config parameterizes the monitor-side filter.
type Config struct {
	// NumFlows is the local flow count.
	NumFlows int
	// Tolerance is the relative per-flow deviation that forces a send;
	// e.g. 0.05 sends when any flow moved ≥ 5% from its last sent value.
	Tolerance float64
	// MaxSilence forces a send after this many suppressed intervals, so a
	// silent monitor is distinguishable from a dead one. Defaults to 16.
	MaxSilence int
}

// Monitor is the monitor-side filter state.
type Monitor struct {
	cfg        Config
	lastSent   []float64
	haveSent   bool
	silent     int
	sent       int64
	suppressed int64
}

// NewMonitor validates cfg and returns an empty filter.
func NewMonitor(cfg Config) (*Monitor, error) {
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, cfg.NumFlows)
	}
	if math.IsNaN(cfg.Tolerance) || cfg.Tolerance <= 0 {
		return nil, fmt.Errorf("%w: tolerance %v", ErrConfig, cfg.Tolerance)
	}
	if cfg.MaxSilence == 0 {
		cfg.MaxSilence = 16
	}
	if cfg.MaxSilence < 1 {
		return nil, fmt.Errorf("%w: max silence %d", ErrConfig, cfg.MaxSilence)
	}
	return &Monitor{cfg: cfg, lastSent: make([]float64, cfg.NumFlows)}, nil
}

// Observe decides whether this interval's vector must be transmitted. When
// it returns true the caller sends x and the filter records it as the new
// reference; on false the interval is suppressed.
func (m *Monitor) Observe(x []float64) (send bool, err error) {
	if len(x) != m.cfg.NumFlows {
		return false, fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(x), m.cfg.NumFlows)
	}
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false, fmt.Errorf("%w: non-finite volume for flow %d", ErrInput, j)
		}
	}
	send = !m.haveSent || m.silent >= m.cfg.MaxSilence
	if !send {
		for j, v := range x {
			ref := m.lastSent[j]
			scale := math.Max(math.Abs(ref), 1)
			if math.Abs(v-ref)/scale > m.cfg.Tolerance {
				send = true
				break
			}
		}
	}
	if send {
		copy(m.lastSent, x)
		m.haveSent = true
		m.silent = 0
		m.sent++
	} else {
		m.silent++
		m.suppressed++
	}
	return send, nil
}

// Stats returns how many intervals were sent vs suppressed.
func (m *Monitor) Stats() (sent, suppressed int64) { return m.sent, m.suppressed }

// Reconstructor is the NOC-side carry-forward state for one monitor's flows.
type Reconstructor struct {
	last []float64
	have bool
}

// NewReconstructor returns carry-forward state for numFlows flows.
func NewReconstructor(numFlows int) (*Reconstructor, error) {
	if numFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, numFlows)
	}
	return &Reconstructor{last: make([]float64, numFlows)}, nil
}

// Apply folds an interval's (possibly absent) report into the reconstructed
// stream: pass the received vector, or nil for a suppressed interval, and
// get back the vector the NOC should use. Returns ErrInput if the first
// interval is already suppressed (nothing to carry forward).
func (r *Reconstructor) Apply(report []float64) ([]float64, error) {
	if report == nil {
		if !r.have {
			return nil, fmt.Errorf("%w: suppressed interval before any report", ErrInput)
		}
		out := make([]float64, len(r.last))
		copy(out, r.last)
		return out, nil
	}
	if len(report) != len(r.last) {
		return nil, fmt.Errorf("%w: report of %d for %d flows", ErrInput, len(report), len(r.last))
	}
	copy(r.last, report)
	r.have = true
	out := make([]float64, len(report))
	copy(out, report)
	return out, nil
}
