package filter

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streampca/internal/pca"
	"streampca/internal/traffic"
)

func TestNewMonitorValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{name: "valid", cfg: Config{NumFlows: 2, Tolerance: 0.05}, ok: true},
		{name: "no flows", cfg: Config{Tolerance: 0.05}},
		{name: "zero tolerance", cfg: Config{NumFlows: 2}},
		{name: "NaN tolerance", cfg: Config{NumFlows: 2, Tolerance: math.NaN()}},
		{name: "bad silence", cfg: Config{NumFlows: 2, Tolerance: 0.05, MaxSilence: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMonitor(tt.cfg)
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestObserveFirstAlwaysSends(t *testing.T) {
	m, err := NewMonitor(Config{NumFlows: 2, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	send, err := m.Observe([]float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if !send {
		t.Fatal("first interval must be sent")
	}
}

func TestSuppressionAndTrigger(t *testing.T) {
	m, err := NewMonitor(Config{NumFlows: 2, Tolerance: 0.10, MaxSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe([]float64{100, 200}); err != nil {
		t.Fatal(err)
	}
	// 5% drift: suppressed.
	send, err := m.Observe([]float64{105, 205})
	if err != nil {
		t.Fatal(err)
	}
	if send {
		t.Fatal("within-tolerance interval must be suppressed")
	}
	// Deviation is measured from the LAST SENT vector, not the previous
	// observation, so drift accumulates until it crosses the tolerance.
	send, err = m.Observe([]float64{112, 205})
	if err != nil {
		t.Fatal(err)
	}
	if !send {
		t.Fatal("accumulated 12% drift must trigger a send")
	}
	sent, suppressed := m.Stats()
	if sent != 2 || suppressed != 1 {
		t.Fatalf("stats = %d/%d", sent, suppressed)
	}
}

func TestMaxSilenceHeartbeat(t *testing.T) {
	m, err := NewMonitor(Config{NumFlows: 1, Tolerance: 0.5, MaxSilence: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe([]float64{100}); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 8; i++ {
		send, err := m.Observe([]float64{100})
		if err != nil {
			t.Fatal(err)
		}
		pattern = append(pattern, send)
	}
	// Three suppressions then a forced heartbeat, repeating.
	want := []bool{false, false, false, true, false, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("heartbeat pattern = %v", pattern)
		}
	}
}

func TestObserveErrors(t *testing.T) {
	m, _ := NewMonitor(Config{NumFlows: 2, Tolerance: 0.05})
	if _, err := m.Observe([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short: %v", err)
	}
	if _, err := m.Observe([]float64{1, math.Inf(1)}); !errors.Is(err, ErrInput) {
		t.Fatalf("Inf: %v", err)
	}
}

func TestReconstructor(t *testing.T) {
	if _, err := NewReconstructor(0); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero flows: %v", err)
	}
	r, err := NewReconstructor(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(nil); !errors.Is(err, ErrInput) {
		t.Fatalf("suppressed before first report: %v", err)
	}
	got, err := r.Apply([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 {
		t.Fatalf("apply = %v", got)
	}
	carried, err := r.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if carried[0] != 10 || carried[1] != 20 {
		t.Fatalf("carry-forward = %v", carried)
	}
	// The returned slice is a copy.
	carried[0] = 999
	again, _ := r.Apply(nil)
	if again[0] == 999 {
		t.Fatal("carry-forward must not alias internal state")
	}
	if _, err := r.Apply([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short report: %v", err)
	}
}

// The bandwidth/fidelity trade-off: filtering saves a large fraction of the
// volume reports while the subspace detector on the reconstructed stream
// still catches a coordinated anomaly.
func TestFilteredStreamStillDetects(t *testing.T) {
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		Routers: []string{"A", "B", "C", "D"}, NumIntervals: 500,
		IntervalsPerDay: 96, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	start, end := 430, 436
	if err := tr.InjectCoordinated([]int{1, 6, 11}, start, end, 1.2); err != nil {
		t.Fatal(err)
	}
	m := tr.NumFlows()

	// Tolerance must sit above the per-interval noise+drift of the fastest
	// flow (else every interval triggers) but far below the injected shift.
	filt, err := NewMonitor(Config{NumFlows: m, Tolerance: 0.25, MaxSilence: 12})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := NewReconstructor(m)
	if err != nil {
		t.Fatal(err)
	}
	det, err := pca.NewSlidingDetector(pca.SlidingConfig{
		WindowLen: 128, NumFlows: m, Rank: 4, Alpha: 0.01, RefitEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	var hits int
	for i := 0; i < tr.NumIntervals(); i++ {
		row := tr.Volumes.Row(i)
		send, err := filt.Observe(row)
		if err != nil {
			t.Fatal(err)
		}
		var report []float64
		if send {
			report = row
		}
		seen, err := recon.Apply(report)
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.Observe(seen)
		if err != nil {
			t.Fatal(err)
		}
		if i >= start && i < end && res.Ready && res.Anomalous {
			hits++
		}
	}
	sent, suppressed := filt.Stats()
	if suppressed == 0 {
		t.Fatal("tolerance filter never suppressed anything")
	}
	saving := float64(suppressed) / float64(sent+suppressed)
	if saving < 0.2 {
		t.Fatalf("bandwidth saving only %v", saving)
	}
	if hits == 0 {
		t.Fatalf("coordinated anomaly lost to filtering (saved %v of reports)", saving)
	}
}

// Property: tolerance zero-suppression — with a huge tolerance everything
// after the first interval is suppressed until the heartbeat; with a tiny
// tolerance every changing interval is sent.
func TestQuickToleranceExtremes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loose, err := NewMonitor(Config{NumFlows: 1, Tolerance: 1e9, MaxSilence: 1000})
		if err != nil {
			return false
		}
		tight, err := NewMonitor(Config{NumFlows: 1, Tolerance: 1e-12, MaxSilence: 1000})
		if err != nil {
			return false
		}
		prev := -1.0
		for i := 0; i < 50; i++ {
			v := r.Float64()*100 + 1
			for v == prev {
				v = r.Float64()*100 + 1
			}
			sendLoose, err := loose.Observe([]float64{v})
			if err != nil {
				return false
			}
			sendTight, err := tight.Observe([]float64{v})
			if err != nil {
				return false
			}
			if i == 0 {
				if !sendLoose || !sendTight {
					return false
				}
			} else {
				if sendLoose || !sendTight {
					return false
				}
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
