package transport

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"streampca/internal/core"
)

func TestEnvelopeValidate(t *testing.T) {
	if err := (&Envelope{}).Validate(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty envelope: %v", err)
	}
	two := &Envelope{Hello: &Hello{}, Alarm: &Alarm{}}
	if err := two.Validate(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("two payloads: %v", err)
	}
	one := &Envelope{Request: &SketchRequest{RequestID: 1}}
	if err := one.Validate(); err != nil {
		t.Fatalf("single payload: %v", err)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	want := Envelope{Volume: &VolumeReport{
		MonitorID: "mon-1",
		Interval:  42,
		FlowIDs:   []int{3, 7},
		Volumes:   []float64{1.5, 2.5},
	}}
	done := make(chan error, 1)
	go func() { done <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Volume == nil || got.Volume.Interval != 42 || got.Volume.Volumes[1] != 2.5 {
		t.Fatalf("got %+v", got.Volume)
	}
}

func TestSketchResponseCarriesReport(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	rep := core.SketchReport{
		Interval: 9,
		FlowIDs:  []int{0, 1},
		Sketches: [][]float64{{1, 2, 3}, {4, 5, 6}},
		Means:    []float64{10, 20},
		Counts:   []int64{9, 9},
		Buckets:  []int{4, 4},
	}
	go func() {
		_ = a.Send(Envelope{Response: &SketchResponse{RequestID: 7, MonitorID: "m", Report: rep}})
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	r := got.Response
	if r == nil || r.RequestID != 7 || len(r.Report.Sketches) != 2 || r.Report.Sketches[1][2] != 6 {
		t.Fatalf("got %+v", got)
	}
}

func TestSendRejectsInvalidEnvelope(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send(Envelope{}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("invalid send: %v", err)
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	a, b := Pipe()
	_ = a.Close()
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on closed: %v", err)
	}
	// Double close is safe.
	if err := a.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentSendsAreSerialized(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = a.Send(Envelope{Volume: &VolumeReport{Interval: int64(i)}})
		}(i)
	}
	seen := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Volume == nil {
			t.Fatal("non-volume frame")
		}
		if seen[got.Volume.Interval] {
			t.Fatalf("duplicate frame %d", got.Volume.Interval)
		}
		seen[got.Volume.Interval] = true
	}
	wg.Wait()
}

func TestServerAcceptAndShutdown(t *testing.T) {
	type echoResult struct {
		got Envelope
		err error
	}
	results := make(chan echoResult, 4)
	srv, err := Listen("127.0.0.1:0", func(c *Conn) {
		for {
			e, err := c.Recv()
			if err != nil {
				return
			}
			results <- echoResult{got: e}
			if err := c.Send(e); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	cl, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	want := Envelope{Hello: &Hello{MonitorID: "m1", FlowIDs: []int{1, 2}, SketchLen: 4, WindowLen: 10, Seed: 99}}
	if err := cl.Send(want); err != nil {
		t.Fatal(err)
	}
	echo, err := cl.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if echo.Hello == nil || echo.Hello.MonitorID != "m1" || echo.Hello.Seed != 99 {
		t.Fatalf("echo = %+v", echo)
	}
	select {
	case r := <-results:
		if r.got.Hello == nil {
			t.Fatal("server saw wrong frame")
		}
	case <-time.After(time.Second):
		t.Fatal("server never handled the frame")
	}

	srv.Shutdown()
	// After shutdown the client connection dies.
	if _, err := cl.Recv(); err == nil {
		t.Fatal("recv after server shutdown must fail")
	}
	// Shutdown is idempotent.
	srv.Shutdown()
}

func TestRecvRejectsGarbageStream(t *testing.T) {
	// A peer writing junk bytes must produce an error, not a hang or panic.
	srv, err := Listen("127.0.0.1:0", func(c *Conn) {
		_, err := c.Recv()
		if err == nil {
			t.Error("garbage frame decoded successfully")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("this is not gob\xff\x00\x01")); err != nil {
		t.Fatal(err)
	}
	_ = raw.Close()
	srv.Shutdown() // waits for the handler, surfacing t.Error if any
}

func TestServerShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		srv, err := Listen("127.0.0.1:0", func(c *Conn) {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var conns []*Conn
		for i := 0; i < 4; i++ {
			cl, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, cl)
			if err := cl.Send(Envelope{Alarm: &Alarm{Interval: int64(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		srv.Shutdown()
		for _, c := range conns {
			_ = c.Close()
		}
	}
	// Allow the runtime to reap finished goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestListenRejectsNilHandler(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("nil handler: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Fatal("dial to closed port must fail")
	}
}
