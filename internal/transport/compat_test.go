package transport

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// legacyEnvelope mirrors the pre-TraceContext wire frame: same payload
// fields, no Trace. gob matches struct fields by name, so this stands in
// for a peer built from an older checkout — the mixed-version scenario of
// a tracing rollout done one monitor at a time.
type legacyEnvelope struct {
	Hello    *Hello
	Volume   *VolumeReport
	Request  *SketchRequest
	Response *SketchResponse
	Alarm    *Alarm
	Error    *ProtocolError
}

// TestTraceContextNewToOldPeer checks that envelopes carrying a
// TraceContext decode cleanly on a peer that has never heard of the field:
// the payload arrives intact and the trace metadata is silently dropped.
func TestTraceContextNewToOldPeer(t *testing.T) {
	frames := []Envelope{
		{Request: &SketchRequest{RequestID: 42},
			Trace: &TraceContext{TraceID: 0xdeadbeef, SpanID: 7}},
		{Volume: &VolumeReport{MonitorID: "m1", Interval: 9,
			FlowIDs: []int{0, 1}, Volumes: []float64{1.5, 2.5}},
			Trace: &TraceContext{TraceID: 1, SpanID: 2}},
		{Alarm: &Alarm{Interval: 9, Distance: 3.5, Threshold: 1.25},
			Trace: &TraceContext{TraceID: 3}},
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	dec := gob.NewDecoder(&buf)
	for i := range frames {
		var got legacyEnvelope
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("old peer failed to decode traced frame %d: %v", i, err)
		}
		switch i {
		case 0:
			if got.Request == nil || got.Request.RequestID != 42 {
				t.Fatalf("frame 0 payload mangled: %+v", got)
			}
		case 1:
			if got.Volume == nil || got.Volume.MonitorID != "m1" || len(got.Volume.Volumes) != 2 {
				t.Fatalf("frame 1 payload mangled: %+v", got)
			}
		case 2:
			if got.Alarm == nil || got.Alarm.Distance != 3.5 {
				t.Fatalf("frame 2 payload mangled: %+v", got)
			}
		}
	}
}

// TestTraceContextOldToNewPeer checks the reverse direction: frames from a
// peer built without the field decode into the current Envelope with a nil
// Trace and pass Validate.
func TestTraceContextOldToNewPeer(t *testing.T) {
	frames := []legacyEnvelope{
		{Hello: &Hello{MonitorID: "m2", FlowIDs: []int{3}, SketchLen: 8, WindowLen: 16, Seed: 99}},
		{Response: &SketchResponse{RequestID: 5, MonitorID: "m2"}},
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	dec := gob.NewDecoder(&buf)
	for i := range frames {
		var got Envelope
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("new peer failed to decode legacy frame %d: %v", i, err)
		}
		if got.Trace != nil {
			t.Fatalf("frame %d grew a trace context from nowhere: %+v", i, got.Trace)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("frame %d invalid after decode: %v", i, err)
		}
	}
	if frames[0].Hello.Seed != 99 {
		t.Fatal("sanity")
	}
}

// TestTraceContextOverConn checks the live transport path: a TraceContext
// attached on one Conn end arrives intact on the other, and untraced frames
// still round-trip with a nil Trace.
func TestTraceContextOverConn(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		_ = a.Send(Envelope{Request: &SketchRequest{RequestID: 1},
			Trace: &TraceContext{TraceID: 0xabc, SpanID: 0xdef}})
		_ = a.Send(Envelope{Request: &SketchRequest{RequestID: 2}})
	}()
	env, err := b.Recv()
	if err != nil {
		t.Fatalf("recv traced: %v", err)
	}
	if env.Trace == nil || env.Trace.TraceID != 0xabc || env.Trace.SpanID != 0xdef {
		t.Fatalf("trace context lost in transit: %+v", env.Trace)
	}
	env, err = b.Recv()
	if err != nil {
		t.Fatalf("recv untraced: %v", err)
	}
	if env.Trace != nil {
		t.Fatalf("untraced frame carries context: %+v", env.Trace)
	}
}
