package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"streampca/internal/core"
	"streampca/internal/sketch"
)

// legacyEnvelope mirrors the pre-TraceContext wire frame: same payload
// fields, no Trace. gob matches struct fields by name, so this stands in
// for a peer built from an older checkout — the mixed-version scenario of
// a tracing rollout done one monitor at a time.
type legacyEnvelope struct {
	Hello    *Hello
	Volume   *VolumeReport
	Request  *SketchRequest
	Response *SketchResponse
	Alarm    *Alarm
	Error    *ProtocolError
}

// TestTraceContextNewToOldPeer checks that envelopes carrying a
// TraceContext decode cleanly on a peer that has never heard of the field:
// the payload arrives intact and the trace metadata is silently dropped.
func TestTraceContextNewToOldPeer(t *testing.T) {
	frames := []Envelope{
		{Request: &SketchRequest{RequestID: 42},
			Trace: &TraceContext{TraceID: 0xdeadbeef, SpanID: 7}},
		{Volume: &VolumeReport{MonitorID: "m1", Interval: 9,
			FlowIDs: []int{0, 1}, Volumes: []float64{1.5, 2.5}},
			Trace: &TraceContext{TraceID: 1, SpanID: 2}},
		{Alarm: &Alarm{Interval: 9, Distance: 3.5, Threshold: 1.25},
			Trace: &TraceContext{TraceID: 3}},
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	dec := gob.NewDecoder(&buf)
	for i := range frames {
		var got legacyEnvelope
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("old peer failed to decode traced frame %d: %v", i, err)
		}
		switch i {
		case 0:
			if got.Request == nil || got.Request.RequestID != 42 {
				t.Fatalf("frame 0 payload mangled: %+v", got)
			}
		case 1:
			if got.Volume == nil || got.Volume.MonitorID != "m1" || len(got.Volume.Volumes) != 2 {
				t.Fatalf("frame 1 payload mangled: %+v", got)
			}
		case 2:
			if got.Alarm == nil || got.Alarm.Distance != 3.5 {
				t.Fatalf("frame 2 payload mangled: %+v", got)
			}
		}
	}
}

// TestTraceContextOldToNewPeer checks the reverse direction: frames from a
// peer built without the field decode into the current Envelope with a nil
// Trace and pass Validate.
func TestTraceContextOldToNewPeer(t *testing.T) {
	frames := []legacyEnvelope{
		{Hello: &Hello{MonitorID: "m2", FlowIDs: []int{3}, SketchLen: 8, WindowLen: 16, Seed: 99}},
		{Response: &SketchResponse{RequestID: 5, MonitorID: "m2"}},
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	dec := gob.NewDecoder(&buf)
	for i := range frames {
		var got Envelope
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("new peer failed to decode legacy frame %d: %v", i, err)
		}
		if got.Trace != nil {
			t.Fatalf("frame %d grew a trace context from nowhere: %+v", i, got.Trace)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("frame %d invalid after decode: %v", i, err)
		}
	}
	if frames[0].Hello.Seed != 99 {
		t.Fatal("sanity")
	}
}

// TestTraceContextOverConn checks the live transport path: a TraceContext
// attached on one Conn end arrives intact on the other, and untraced frames
// still round-trip with a nil Trace.
func TestTraceContextOverConn(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		_ = a.Send(Envelope{Request: &SketchRequest{RequestID: 1},
			Trace: &TraceContext{TraceID: 0xabc, SpanID: 0xdef}})
		_ = a.Send(Envelope{Request: &SketchRequest{RequestID: 2}})
	}()
	env, err := b.Recv()
	if err != nil {
		t.Fatalf("recv traced: %v", err)
	}
	if env.Trace == nil || env.Trace.TraceID != 0xabc || env.Trace.SpanID != 0xdef {
		t.Fatalf("trace context lost in transit: %+v", env.Trace)
	}
	env, err = b.Recv()
	if err != nil {
		t.Fatalf("recv untraced: %v", err)
	}
	if env.Trace != nil {
		t.Fatalf("untraced frame carries context: %+v", env.Trace)
	}
}

// legacyHello and legacySketchReport mirror the pre-Family wire structs: a
// Hello without the Family field and a sketch snapshot without the FD
// payload. They stand in for a monitor built from an older checkout during a
// family rollout.
type legacyHello struct {
	MonitorID string
	FlowIDs   []int
	SketchLen int
	WindowLen int
	Seed      uint64
}

type legacySketchReport struct {
	Interval int64
	FlowIDs  []int
	Sketches [][]float64
	Means    []float64
	Counts   []int64
	Buckets  []int
}

type legacySketchResponse struct {
	RequestID uint64
	MonitorID string
	Report    legacySketchReport
}

// TestFamilyFieldOldToNewPeer: frames from a pre-Family monitor must decode
// on the current NOC as the randproj family (the enum's zero value) with the
// snapshot passing validation — the rollout invariant that lets families be
// deployed one monitor at a time.
func TestFamilyFieldOldToNewPeer(t *testing.T) {
	old := struct {
		Hello    *legacyHello
		Response *legacySketchResponse
	}{
		Hello: &legacyHello{MonitorID: "m3", FlowIDs: []int{0, 1}, SketchLen: 2, WindowLen: 8, Seed: 7},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode legacy hello: %v", err)
	}
	if got.Hello == nil || got.Hello.Family != sketch.FamilyRandProj {
		t.Fatalf("legacy hello family = %+v, want randproj zero value", got.Hello)
	}

	buf.Reset()
	resp := legacySketchResponse{RequestID: 1, MonitorID: "m3", Report: legacySketchReport{
		Interval: 4, FlowIDs: []int{0, 1},
		Sketches: [][]float64{{1, 2}, {3, 4}},
		Means:    []float64{5, 6}, Counts: []int64{4, 4}, Buckets: []int{3, 3},
	}}
	if err := gob.NewEncoder(&buf).Encode(&struct{ Response *legacySketchResponse }{&resp}); err != nil {
		t.Fatal(err)
	}
	got = Envelope{}
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode legacy response: %v", err)
	}
	if got.Response == nil || got.Response.Report.Family != sketch.FamilyRandProj {
		t.Fatalf("legacy report family = %+v", got.Response)
	}
	if err := got.Response.Report.Validate(2); err != nil {
		t.Fatalf("legacy report failed validation: %v", err)
	}
}

// legacyFederationEnvelope mirrors the pre-federation frame: Hello without
// Role, SketchResponse without Degraded/StaleFlows, no Shards payload.
type legacyFederationEnvelope struct {
	Hello    *legacyHello
	Response *legacySketchResponse
	Trace    *TraceContext
}

// TestFederationFieldsCompat pins the rollout invariant for the aggregator
// tier: pre-federation peers decode the new frames keeping the fields they
// know, and frames from such peers decode on the current build with the
// zero-value role (monitor) and a clean (non-degraded) response.
func TestFederationFieldsCompat(t *testing.T) {
	// New → old: a Role-tagged, degraded response frame.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	frames := []Envelope{
		{Hello: &Hello{MonitorID: "agg-0", FlowIDs: []int{0, 1, 2}, SketchLen: 4,
			WindowLen: 16, Role: RoleAggregator}},
		{Response: &SketchResponse{RequestID: 3, MonitorID: "agg-0",
			Degraded: true, StaleFlows: 2}},
	}
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	dec := gob.NewDecoder(&buf)
	var oldHello, oldResp legacyFederationEnvelope
	if err := dec.Decode(&oldHello); err != nil {
		t.Fatalf("old peer failed on role-tagged hello: %v", err)
	}
	if oldHello.Hello == nil || oldHello.Hello.MonitorID != "agg-0" || len(oldHello.Hello.FlowIDs) != 3 {
		t.Fatalf("hello shared fields mangled for old peer: %+v", oldHello.Hello)
	}
	if err := dec.Decode(&oldResp); err != nil {
		t.Fatalf("old peer failed on degraded response: %v", err)
	}
	if oldResp.Response == nil || oldResp.Response.RequestID != 3 {
		t.Fatalf("response shared fields mangled for old peer: %+v", oldResp.Response)
	}

	// Old → new: a legacy frame must come out as a plain, non-degraded
	// monitor and pass Validate.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&legacyFederationEnvelope{
		Hello: &legacyHello{MonitorID: "m9", FlowIDs: []int{4}, SketchLen: 4, WindowLen: 16},
	}); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("new peer failed on legacy hello: %v", err)
	}
	if got.Hello == nil || got.Hello.Role != RoleMonitor {
		t.Fatalf("legacy hello role = %+v, want monitor zero value", got.Hello)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardMapOverConn: the aggregator-candidate map survives the live
// transport, counts as a payload for Validate, and an old peer decoding the
// frame sees an empty (payload-less) envelope rather than an error.
func TestShardMapOverConn(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	sm := &ShardMap{Aggregators: []string{"127.0.0.1:7001", "127.0.0.1:7002"}, Epoch: 5}
	if err := (&Envelope{Shards: sm}).Validate(); err != nil {
		t.Fatalf("shard-map envelope invalid: %v", err)
	}
	go func() { _ = a.Send(Envelope{Shards: sm}) }()
	env, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Shards == nil || env.Shards.Epoch != 5 || len(env.Shards.Aggregators) != 2 {
		t.Fatalf("shard map mangled in transit: %+v", env.Shards)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Envelope{Shards: sm}); err != nil {
		t.Fatal(err)
	}
	var old legacyFederationEnvelope
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer failed on shard-map frame: %v", err)
	}
	if old.Hello != nil || old.Response != nil {
		t.Fatalf("shard-map frame grew a payload for old peer: %+v", old)
	}
}

// TestFDSnapshotOverConn: an FD snapshot (the new wire fields) survives the
// live transport intact and an old peer decoding the same frame keeps the
// fields it knows while dropping the FD payload cleanly.
func TestFDSnapshotOverConn(t *testing.T) {
	rep := core.SketchReport{
		Interval: 9, FlowIDs: []int{2, 5},
		Means: []float64{10, 20}, Counts: []int64{9, 9},
		Family:  sketch.FamilyFD,
		FDRows:  [][]float64{{1, -1}, {0.5, 0.25}},
		FDDelta: 3.5, FDEll: 2,
	}
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = a.Send(Envelope{Response: &SketchResponse{RequestID: 8, MonitorID: "fd1", Report: rep}})
	}()
	env, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got := env.Response.Report
	if got.Family != sketch.FamilyFD || got.FDEll != 2 || got.FDDelta != 3.5 || len(got.FDRows) != 2 {
		t.Fatalf("FD payload mangled in transit: %+v", got)
	}
	if err := got.Validate(2); err != nil {
		t.Fatalf("validate after transit: %v", err)
	}

	// Old peer direction: the frame decodes into the legacy shape, keeping
	// the shared fields.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Envelope{
		Response: &SketchResponse{RequestID: 8, MonitorID: "fd1", Report: rep},
	}); err != nil {
		t.Fatal(err)
	}
	var old struct{ Response *legacySketchResponse }
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer failed to decode fd frame: %v", err)
	}
	if old.Response == nil || old.Response.Report.Interval != 9 || len(old.Response.Report.Means) != 2 {
		t.Fatalf("shared fields mangled for old peer: %+v", old.Response)
	}
}

// legacyAlarm mirrors the pre-identification Alarm: same fields, no
// Identified list — a subscriber built before the anomography rollout.
type legacyAlarm struct {
	Interval  int64
	Distance  float64
	Threshold float64
	Degraded  bool
}

// TestIdentifiedAlarmNewToOldPeer checks that alarms carrying anomography
// culprits decode on a pre-identification peer: the alarm fields arrive
// intact and the culprit list is silently dropped.
func TestIdentifiedAlarmNewToOldPeer(t *testing.T) {
	frame := Envelope{Alarm: &Alarm{
		Interval: 12, Distance: 9.5, Threshold: 2.25, Degraded: true,
		Identified: []IdentifiedFlow{
			{Flow: 41, Amount: 5e5, Confidence: 0.93},
			{Flow: 7, Amount: -1e4, Confidence: 0.04},
		},
	}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&frame); err != nil {
		t.Fatalf("encode identified alarm: %v", err)
	}
	var got struct{ Alarm *legacyAlarm }
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("old peer failed to decode identified alarm: %v", err)
	}
	if got.Alarm == nil || got.Alarm.Interval != 12 || got.Alarm.Distance != 9.5 ||
		got.Alarm.Threshold != 2.25 || !got.Alarm.Degraded {
		t.Fatalf("alarm fields mangled for old peer: %+v", got.Alarm)
	}
}

// TestIdentifiedAlarmOldToNewPeer checks the reverse: a legacy alarm
// decodes into the current Envelope with an empty culprit list and passes
// Validate.
func TestIdentifiedAlarmOldToNewPeer(t *testing.T) {
	legacy := struct{ Alarm *legacyAlarm }{
		Alarm: &legacyAlarm{Interval: 3, Distance: 4.5, Threshold: 1.5},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatalf("encode legacy alarm: %v", err)
	}
	var got Envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("new peer failed to decode legacy alarm: %v", err)
	}
	if got.Alarm == nil || got.Alarm.Distance != 4.5 || len(got.Alarm.Identified) != 0 {
		t.Fatalf("legacy alarm mangled: %+v", got.Alarm)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("legacy alarm invalid after decode: %v", err)
	}
}
