package transport

import (
	"io"

	"streampca/internal/obs"
)

// Message-type label values used by the per-type counters; TypeName maps an
// envelope to one of these.
const (
	typeHello    = "hello"
	typeVolume   = "volume"
	typeRequest  = "sketch_request"
	typeResponse = "sketch_response"
	typeAlarm    = "alarm"
	typeError    = "error"
	typeInvalid  = "invalid"
)

// TypeName returns the metric label for the envelope's payload type.
func (e *Envelope) TypeName() string {
	switch {
	case e.Hello != nil:
		return typeHello
	case e.Volume != nil:
		return typeVolume
	case e.Request != nil:
		return typeRequest
	case e.Response != nil:
		return typeResponse
	case e.Alarm != nil:
		return typeAlarm
	case e.Error != nil:
		return typeError
	default:
		return typeInvalid
	}
}

// Metrics holds the wire-level counters for a set of connections. One
// Metrics instance is shared by every Conn a service owns, so /metrics
// reports aggregate traffic; nil Metrics disables instrumentation with no
// overhead beyond a pointer check.
//
// Exposition names (all under the streampca_transport_ prefix):
//
//	messages_total{direction,type}  counter
//	bytes_total{direction}          counter
//	errors_total{op}                counter (op: encode, decode)
//	connections_total{event}        counter (event: opened, closed)
//	connections_active              gauge
type Metrics struct {
	sent map[string]*obs.Counter
	recv map[string]*obs.Counter

	bytesSent *obs.Counter
	bytesRecv *obs.Counter

	encodeErrors *obs.Counter
	decodeErrors *obs.Counter

	connsOpened *obs.Counter
	connsClosed *obs.Counter
	connsActive *obs.Gauge
}

// NewMetrics registers the transport metric families on reg and returns the
// handle services attach to their connections. All series are registered
// eagerly so /metrics shows zeros before any traffic flows.
func NewMetrics(reg *obs.Registry) *Metrics {
	const (
		msgName   = "streampca_transport_messages_total"
		msgHelp   = "Envelopes moved on monitor-NOC connections, by direction and payload type."
		bytesName = "streampca_transport_bytes_total"
		bytesHelp = "Gob-encoded bytes moved on monitor-NOC connections, by direction."
		errName   = "streampca_transport_errors_total"
		errHelp   = "Envelope codec failures, by operation."
		connName  = "streampca_transport_connections_total"
		connHelp  = "Connection lifecycle events."
	)
	m := &Metrics{
		sent: make(map[string]*obs.Counter),
		recv: make(map[string]*obs.Counter),
	}
	for _, t := range []string{typeHello, typeVolume, typeRequest, typeResponse, typeAlarm, typeError, typeInvalid} {
		m.sent[t] = reg.Counter(msgName, msgHelp, obs.L("direction", "sent"), obs.L("type", t))
		m.recv[t] = reg.Counter(msgName, msgHelp, obs.L("direction", "recv"), obs.L("type", t))
	}
	m.bytesSent = reg.Counter(bytesName, bytesHelp, obs.L("direction", "sent"))
	m.bytesRecv = reg.Counter(bytesName, bytesHelp, obs.L("direction", "recv"))
	m.encodeErrors = reg.Counter(errName, errHelp, obs.L("op", "encode"))
	m.decodeErrors = reg.Counter(errName, errHelp, obs.L("op", "decode"))
	m.connsOpened = reg.Counter(connName, connHelp, obs.L("event", "opened"))
	m.connsClosed = reg.Counter(connName, connHelp, obs.L("event", "closed"))
	m.connsActive = reg.Gauge("streampca_transport_connections_active", "Currently open monitor-NOC connections.")
	return m
}

func (m *Metrics) connOpened() {
	if m == nil {
		return
	}
	m.connsOpened.Inc()
	m.connsActive.Add(1)
}

func (m *Metrics) connClosed() {
	if m == nil {
		return
	}
	m.connsClosed.Inc()
	m.connsActive.Add(-1)
}

func (m *Metrics) sentMsg(t string) {
	if m == nil {
		return
	}
	m.sent[t].Inc()
}

func (m *Metrics) recvMsg(t string) {
	if m == nil {
		return
	}
	m.recv[t].Inc()
}

func (m *Metrics) encodeError() {
	if m == nil {
		return
	}
	m.encodeErrors.Inc()
}

func (m *Metrics) decodeError() {
	if m == nil {
		return
	}
	m.decodeErrors.Inc()
}

// countingStream wraps the raw byte stream so gob traffic is measured where
// it actually hits the wire, framing included.
type countingStream struct {
	raw io.ReadWriteCloser
	m   *Metrics
}

func (c *countingStream) Read(p []byte) (int, error) {
	n, err := c.raw.Read(p)
	if n > 0 {
		c.m.bytesRecv.Add(int64(n))
	}
	return n, err
}

func (c *countingStream) Write(p []byte) (int, error) {
	n, err := c.raw.Write(p)
	if n > 0 {
		c.m.bytesSent.Add(int64(n))
	}
	return n, err
}

func (c *countingStream) Close() error { return c.raw.Close() }
