package transport

import (
	"testing"
	"time"

	"streampca/internal/obs"
)

// counter pulls a registered counter back out of the registry (get-or-create
// identity makes this a read).
func counter(reg *obs.Registry, name string, labels ...obs.Label) int64 {
	return reg.Counter(name, "", labels...).Value()
}

func TestPipeMetricsCounters(t *testing.T) {
	regA := obs.NewRegistry()
	regB := obs.NewRegistry()
	a, b := PipeWithMetrics(NewMetrics(regA), NewMetrics(regB))

	recvCh := make(chan Envelope, 4)
	go func() {
		defer close(recvCh)
		for {
			env, err := b.Recv()
			if err != nil {
				return
			}
			recvCh <- env
		}
	}()

	for i := 0; i < 3; i++ {
		if err := a.Send(Envelope{Volume: &VolumeReport{MonitorID: "m", Interval: int64(i), FlowIDs: []int{0}, Volumes: []float64{1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send(Envelope{Alarm: &Alarm{Interval: 9}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		select {
		case <-recvCh:
		case <-time.After(2 * time.Second):
			t.Fatal("frame never arrived")
		}
	}

	const msgs = "streampca_transport_messages_total"
	if got := counter(regA, msgs, obs.L("direction", "sent"), obs.L("type", "volume")); got != 3 {
		t.Fatalf("A sent volume = %d", got)
	}
	if got := counter(regA, msgs, obs.L("direction", "sent"), obs.L("type", "alarm")); got != 1 {
		t.Fatalf("A sent alarm = %d", got)
	}
	if got := counter(regB, msgs, obs.L("direction", "recv"), obs.L("type", "volume")); got != 3 {
		t.Fatalf("B recv volume = %d", got)
	}
	if got := counter(regA, "streampca_transport_bytes_total", obs.L("direction", "sent")); got == 0 {
		t.Fatal("A counted no sent bytes")
	}
	if got := counter(regB, "streampca_transport_bytes_total", obs.L("direction", "recv")); got == 0 {
		t.Fatal("B counted no received bytes")
	}

	gaugeA := regA.Gauge("streampca_transport_connections_active", "")
	if gaugeA.Value() != 1 {
		t.Fatalf("A active connections = %v", gaugeA.Value())
	}
	_ = a.Close()
	_ = a.Close() // double close must not double-count
	_ = b.Close()
	if got := counter(regA, "streampca_transport_connections_total", obs.L("event", "closed")); got != 1 {
		t.Fatalf("A closed = %d", got)
	}
	if gaugeA.Value() != 0 {
		t.Fatalf("A active connections after close = %v", gaugeA.Value())
	}
}

func TestEncodeErrorCounted(t *testing.T) {
	reg := obs.NewRegistry()
	a, b := PipeWithMetrics(NewMetrics(reg), nil)
	_ = b.Close()
	// Sends into a closed pipe fail in the encoder.
	if err := a.Send(Envelope{Alarm: &Alarm{Interval: 1}}); err == nil {
		t.Fatal("send on closed pipe must fail")
	}
	if got := counter(reg, "streampca_transport_errors_total", obs.L("op", "encode")); got != 1 {
		t.Fatalf("encode errors = %d", got)
	}
	if got := counter(reg, "streampca_transport_messages_total", obs.L("direction", "sent"), obs.L("type", "alarm")); got != 0 {
		t.Fatalf("failed send still counted: %d", got)
	}
	_ = a.Close()
}

func TestServerMetricsOnAcceptedConns(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := ListenWithMetrics("127.0.0.1:0", func(c *Conn) {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}, NewMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Envelope{Alarm: &Alarm{Interval: 1}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the server-side counters see the frame.
	deadline := time.Now().Add(2 * time.Second)
	for counter(reg, "streampca_transport_messages_total", obs.L("direction", "recv"), obs.L("type", "alarm")) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never counted the received alarm")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = cl.Close()
	srv.Shutdown()
	if got := counter(reg, "streampca_transport_connections_total", obs.L("event", "opened")); got != 1 {
		t.Fatalf("server opened = %d", got)
	}
	if got := counter(reg, "streampca_transport_connections_total", obs.L("event", "closed")); got != 1 {
		t.Fatalf("server closed = %d", got)
	}
}
