// Package transport defines the wire protocol between local monitors and the
// NOC (Fig. 1): gob-encoded messages over a single duplex TCP connection per
// monitor. Monitors push per-interval volume reports; the NOC pulls sketches
// on demand (the lazy protocol of §IV-C); alarms flow back for visibility.
//
// An in-memory pipe transport with identical semantics backs the integration
// tests, so protocol logic is exercised without sockets.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"

	"streampca/internal/core"
	"streampca/internal/sketch"
)

// Errors returned by the package.
var (
	// ErrClosed indicates the connection was closed.
	ErrClosed = errors.New("transport: connection closed")
	// ErrBadMessage indicates a structurally invalid message.
	ErrBadMessage = errors.New("transport: bad message")
)

// Role distinguishes the kinds of downstream peers a NOC-side server
// accepts. Wire compatibility: the zero value is a plain monitor, so Hellos
// from binaries built before the field existed decode as monitors.
type Role int

const (
	// RoleMonitor is a leaf monitor owning raw flow sketches.
	RoleMonitor Role = iota
	// RoleAggregator is a mid-tier aggregator fronting a shard of monitors:
	// its Hello's FlowIDs are the union of its monitors' flows and its
	// sketch responses are interval-aligned merges (sketch.Merge).
	RoleAggregator
)

func (r Role) String() string {
	switch r {
	case RoleMonitor:
		return "monitor"
	case RoleAggregator:
		return "aggregator"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Hello announces a monitor to the NOC. It must be the first message on a
// connection.
type Hello struct {
	// MonitorID names the monitor for logs and routing.
	MonitorID string
	// FlowIDs lists the global flow indices the monitor owns.
	FlowIDs []int
	// SketchLen and WindowLen let the NOC verify configuration agreement.
	// SketchLen carries the family's sketch parameter: l for randproj, the
	// basis budget ℓ for FD.
	SketchLen int
	WindowLen int
	// Seed lets the NOC verify the shared randomness agreement (randproj
	// only; FD monitors send 0).
	Seed uint64
	// Family is the sketcher family the monitor runs. Wire compatibility:
	// the zero value is randproj, so a Hello from a monitor built before the
	// field existed decodes as randproj (gob omits zero and unknown fields),
	// and an old NOC decoding a new randproj Hello sees an identical message.
	Family sketch.Family
	// Role tags the peer kind (zero value: monitor). An aggregator re-sends
	// Hello on the same connection when its flow union grows or shrinks —
	// the NOC treats a repeat Hello from an aggregator as re-registration.
	Role Role
}

// VolumeReport carries one interval's volumes for a monitor's flows
// (the volume counter's per-interval report to the NOC, §IV-A).
type VolumeReport struct {
	MonitorID string
	Interval  int64
	FlowIDs   []int
	Volumes   []float64
}

// SketchRequest asks a monitor for its current sketch state.
type SketchRequest struct {
	RequestID uint64
}

// SketchResponse answers a SketchRequest.
type SketchResponse struct {
	RequestID uint64
	MonitorID string
	Report    core.SketchReport
	// Degraded / StaleFlows: set by an aggregator whose merged report had to
	// substitute cached snapshots for StaleFlows flows of unreachable
	// monitors. The NOC folds them into core.Fetch so degraded federated
	// models are flagged exactly like degraded flat ones. Leaf monitors
	// leave both zero.
	Degraded   bool
	StaleFlows int
}

// IdentifiedFlow names one culprit OD flow attached to an alarm by the
// NOC's anomography pursuit.
type IdentifiedFlow struct {
	// Flow is the global flow index.
	Flow int
	// Amount is the estimated injected volume (signed, measurement units).
	Amount float64
	// Confidence is the flow's marginal explained-energy fraction, in [0,1].
	Confidence float64
}

// Alarm notifies monitors (or other subscribers) of a detected anomaly.
type Alarm struct {
	Interval  int64
	Distance  float64
	Threshold float64
	// Degraded marks alarms raised on substituted inputs (cached volumes
	// or a stale-sketch model) — see the NOC's DegradedPolicy.
	Degraded bool
	// Identified carries the anomography culprits, ranked by Confidence
	// descending. Empty when identification is disabled or found nothing.
	// Gob drops unknown fields, so pre-identification peers decode alarms
	// carrying it and post-identification peers accept legacy alarms
	// without it (see compat_test.go).
	Identified []IdentifiedFlow
}

// ShardMap is pushed by an aggregator to its monitors: the full candidate
// list of aggregators fronting the same NOC, so a monitor whose aggregator
// dies can re-place itself (rendezvous hash over the survivors) without any
// central coordination.
type ShardMap struct {
	// Aggregators lists the dial addresses of every aggregator candidate,
	// including the sender. Order is not significant; placement hashes it.
	Aggregators []string
	// Epoch lets receivers discard stale maps: a monitor keeps only the
	// highest epoch it has seen.
	Epoch uint64
}

// ProtocolError reports a fatal protocol-level problem to the peer before
// the connection is dropped.
type ProtocolError struct {
	Msg string
}

// TraceContext carries interval-lineage tracing across the wire (see
// internal/trace): the trace this frame belongs to and the sender-side span
// that caused it, so a sketch pull served on a monitor parents correctly
// under the NOC's fetch span. It is optional metadata, not a payload —
// a peer built without tracing decodes the envelope cleanly (gob ignores
// unknown fields) and simply never sets it.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Envelope is the single message frame exchanged on the wire; exactly one
// payload field is set. Trace is optional metadata that may accompany any
// payload.
type Envelope struct {
	Hello    *Hello
	Volume   *VolumeReport
	Request  *SketchRequest
	Response *SketchResponse
	Alarm    *Alarm
	Error    *ProtocolError
	Shards   *ShardMap
	Trace    *TraceContext
}

// Validate checks that exactly one payload is present.
func (e *Envelope) Validate() error {
	count := 0
	if e.Hello != nil {
		count++
	}
	if e.Volume != nil {
		count++
	}
	if e.Request != nil {
		count++
	}
	if e.Response != nil {
		count++
	}
	if e.Alarm != nil {
		count++
	}
	if e.Error != nil {
		count++
	}
	if e.Shards != nil {
		count++
	}
	if count != 1 {
		return fmt.Errorf("%w: %d payloads set", ErrBadMessage, count)
	}
	return nil
}

// registerTypes makes the payload types known to gob; called from the codec
// constructors so importing the package has no side effects beyond gob's own
// registry (which is append-only and idempotent for identical types).
func registerTypes() {
	gob.Register(Hello{})
	gob.Register(VolumeReport{})
	gob.Register(SketchRequest{})
	gob.Register(SketchResponse{})
	gob.Register(Alarm{})
	gob.Register(ProtocolError{})
	gob.Register(ShardMap{})
	gob.Register(TraceContext{})
}
