package transport

import (
	"errors"
	"math"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/faults"
)

// recvOne reads a single envelope on its own goroutine (net.Pipe is
// unbuffered, so Send blocks until the peer reads).
func recvOne(c *Conn) (<-chan Envelope, <-chan error) {
	envCh := make(chan Envelope, 1)
	errCh := make(chan error, 1)
	go func() {
		e, err := c.Recv()
		if err != nil {
			errCh <- err
			return
		}
		envCh <- e
	}()
	return envCh, errCh
}

func TestFaultDropOnSend(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.SetFaults(faults.MustPlan(1, faults.Rule{Dir: faults.DirSend, Type: "volume", Count: 1, Drop: true}))

	envCh, errCh := recvOne(b)
	// First volume is dropped; the alarm that follows is what arrives.
	if err := a.Send(Envelope{Volume: &VolumeReport{MonitorID: "m", Interval: 1}}); err != nil {
		t.Fatalf("dropped send must look successful: %v", err)
	}
	if err := a.Send(Envelope{Alarm: &Alarm{Interval: 7}}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-envCh:
		if e.Alarm == nil || e.Alarm.Interval != 7 {
			t.Fatalf("got %+v, want the alarm (volume dropped)", e)
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("receiver starved")
	}
}

func TestFaultDropOnRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.SetFaults(faults.MustPlan(1, faults.Rule{Dir: faults.DirRecv, Type: "volume", Count: 1, Drop: true}))

	envCh, errCh := recvOne(b)
	if err := a.Send(Envelope{Volume: &VolumeReport{MonitorID: "m", Interval: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Envelope{Alarm: &Alarm{Interval: 9}}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-envCh:
		if e.Alarm == nil || e.Alarm.Interval != 9 {
			t.Fatalf("got %+v, want the alarm (volume swallowed by recv)", e)
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("receiver starved")
	}
}

func TestFaultDelay(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const d = 60 * time.Millisecond
	a.SetFaults(faults.MustPlan(1, faults.Rule{Dir: faults.DirSend, Delay: d}))

	envCh, errCh := recvOne(b)
	start := time.Now()
	if err := a.Send(Envelope{Alarm: &Alarm{Interval: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-envCh:
		if el := time.Since(start); el < d {
			t.Fatalf("delivered after %v, want >= %v", el, d)
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("receiver starved")
	}
}

func TestFaultCorruptResponse(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.SetFaults(faults.MustPlan(1, faults.Rule{Dir: faults.DirSend, Type: "sketch_response", Corrupt: true}))

	orig := [][]float64{{1, 2}, {3, 4}}
	resp := SketchResponse{
		RequestID: 5,
		MonitorID: "m",
		Report: core.SketchReport{
			Interval: 3,
			FlowIDs:  []int{0, 1},
			Sketches: orig,
			Means:    []float64{1, 1},
		},
	}
	envCh, errCh := recvOne(b)
	if err := a.Send(Envelope{Response: &resp}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-envCh:
		got := e.Response.Report.Sketches
		if !math.IsNaN(got[0][0]) {
			t.Fatalf("sketch not corrupted: %v", got)
		}
		if e.Response.Report.Validate(2) == nil {
			t.Fatal("corrupted report must fail validation")
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("receiver starved")
	}
	// The sender's own backing arrays must be untouched.
	if orig[0][0] != 1 {
		t.Fatalf("corruption leaked into the sender's report: %v", orig)
	}
}

func TestFaultDisconnect(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.SetFaults(faults.MustPlan(1, faults.Rule{Dir: faults.DirSend, Type: "volume", Disconnect: true}))

	err := a.Send(Envelope{Volume: &VolumeReport{MonitorID: "m", Interval: 1}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("disconnect fault: %v", err)
	}
	if err := a.Send(Envelope{Alarm: &Alarm{}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("conn must stay closed: %v", err)
	}
}

func TestServerInstallsInjector(t *testing.T) {
	// A server-side recv-drop plan swallows the first volume the handler
	// would otherwise see.
	seen := make(chan string, 16)
	plan := faults.MustPlan(1, faults.Rule{Dir: faults.DirRecv, Type: "volume", Count: 1, Drop: true})
	srv, err := ListenWithOptions("127.0.0.1:0", func(c *Conn) {
		for {
			e, err := c.Recv()
			if err != nil {
				return
			}
			seen <- e.TypeName()
		}
	}, nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(Envelope{Volume: &VolumeReport{MonitorID: "m", Interval: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Envelope{Alarm: &Alarm{Interval: 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case typ := <-seen:
		if typ != "alarm" {
			t.Fatalf("handler saw %q first, want the volume dropped", typ)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler starved")
	}
	if plan.Fired(0) != 1 {
		t.Fatalf("plan fired %d times: %s", plan.Fired(0), plan)
	}
}
