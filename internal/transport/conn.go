package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is a framed, bidirectional message connection. Sends are serialized
// internally; Recv must be called from a single reader goroutine.
type Conn struct {
	raw io.ReadWriteCloser
	m   *Metrics

	sendMu sync.Mutex
	enc    *gob.Encoder
	dec    *gob.Decoder

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps an established stream (net.Conn or an in-memory pipe).
func NewConn(raw io.ReadWriteCloser) *Conn {
	return NewConnWithMetrics(raw, nil)
}

// NewConnWithMetrics wraps an established stream and records wire traffic on
// m (nil disables instrumentation).
func NewConnWithMetrics(raw io.ReadWriteCloser, m *Metrics) *Conn {
	registerTypes()
	stream := raw
	if m != nil {
		stream = &countingStream{raw: raw, m: m}
	}
	m.connOpened()
	return &Conn{
		raw: stream,
		m:   m,
		enc: gob.NewEncoder(stream),
		dec: gob.NewDecoder(stream),
	}
}

// Dial connects to a NOC or monitor endpoint over TCP.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	return DialWithMetrics(addr, timeout, nil)
}

// DialWithMetrics is Dial with wire instrumentation on m.
func DialWithMetrics(addr string, timeout time.Duration, m *Metrics) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return NewConnWithMetrics(c, m), nil
}

// Send writes one envelope. It is safe for concurrent use.
func (c *Conn) Send(e Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(&e); err != nil {
		c.m.encodeError()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
			return fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return fmt.Errorf("send: %w", err)
	}
	c.m.sentMsg(e.TypeName())
	return nil
}

// Recv reads the next envelope. Only one goroutine may call Recv.
func (c *Conn) Recv() (Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
			return Envelope{}, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		c.m.decodeError()
		return Envelope{}, fmt.Errorf("recv: %w", err)
	}
	if err := e.Validate(); err != nil {
		c.m.decodeError()
		return Envelope{}, err
	}
	c.m.recvMsg(e.TypeName())
	return e, nil
}

// Close tears the connection down; subsequent Sends and Recvs fail.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.raw.Close()
		c.m.connClosed()
	})
	return c.closeErr
}

// Pipe returns two in-memory connected Conns with the same semantics as a
// TCP pair — the test transport.
func Pipe() (*Conn, *Conn) {
	return PipeWithMetrics(nil, nil)
}

// PipeWithMetrics is Pipe with per-end instrumentation (either may be nil).
func PipeWithMetrics(ma, mb *Metrics) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConnWithMetrics(a, ma), NewConnWithMetrics(b, mb)
}
