package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"streampca/internal/faults"
)

// Conn is a framed, bidirectional message connection. Sends are serialized
// internally; Recv must be called from a single reader goroutine.
type Conn struct {
	raw io.ReadWriteCloser
	m   *Metrics
	inj faults.Injector

	sendMu sync.Mutex
	enc    *gob.Encoder
	dec    *gob.Decoder

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps an established stream (net.Conn or an in-memory pipe).
func NewConn(raw io.ReadWriteCloser) *Conn {
	return NewConnWithMetrics(raw, nil)
}

// NewConnWithMetrics wraps an established stream and records wire traffic on
// m (nil disables instrumentation).
func NewConnWithMetrics(raw io.ReadWriteCloser, m *Metrics) *Conn {
	registerTypes()
	stream := raw
	if m != nil {
		stream = &countingStream{raw: raw, m: m}
	}
	m.connOpened()
	return &Conn{
		raw: stream,
		m:   m,
		enc: gob.NewEncoder(stream),
		dec: gob.NewDecoder(stream),
	}
}

// SetFaults installs a fault injector consulted on every subsequent Send
// and Recv (chaos testing); nil restores the no-op default. Install it
// before traffic flows — the injector pointer itself is not synchronized
// with in-flight messages.
func (c *Conn) SetFaults(inj faults.Injector) { c.inj = inj }

// Dial connects to a NOC or monitor endpoint over TCP.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	return DialWithMetrics(addr, timeout, nil)
}

// DialWithMetrics is Dial with wire instrumentation on m.
func DialWithMetrics(addr string, timeout time.Duration, m *Metrics) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return NewConnWithMetrics(c, m), nil
}

// Send writes one envelope. It is safe for concurrent use.
func (c *Conn) Send(e Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if c.inj != nil {
		o := c.inj.Decide(faults.DirSend, e.TypeName())
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Disconnect {
			_ = c.Close()
			return fmt.Errorf("%w: fault injection", ErrClosed)
		}
		if o.Drop {
			return nil // the caller believes the message was sent
		}
		if o.Corrupt {
			e = corruptEnvelope(e)
		}
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(&e); err != nil {
		c.m.encodeError()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
			return fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return fmt.Errorf("send: %w", err)
	}
	c.m.sentMsg(e.TypeName())
	return nil
}

// Recv reads the next envelope. Only one goroutine may call Recv.
func (c *Conn) Recv() (Envelope, error) {
	for {
		var e Envelope
		if err := c.dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return Envelope{}, fmt.Errorf("%w: %v", ErrClosed, err)
			}
			c.m.decodeError()
			return Envelope{}, fmt.Errorf("recv: %w", err)
		}
		if err := e.Validate(); err != nil {
			c.m.decodeError()
			return Envelope{}, err
		}
		if c.inj != nil {
			o := c.inj.Decide(faults.DirRecv, e.TypeName())
			if o.Delay > 0 {
				time.Sleep(o.Delay)
			}
			if o.Disconnect {
				_ = c.Close()
				return Envelope{}, fmt.Errorf("%w: fault injection", ErrClosed)
			}
			if o.Drop {
				continue // the message is never seen by the caller
			}
			if o.Corrupt {
				e = corruptEnvelope(e)
			}
		}
		c.m.recvMsg(e.TypeName())
		return e, nil
	}
}

// corruptEnvelope returns a copy of e with its payload damaged in a way the
// receiver's validators detect (non-finite values, mismatched arrays, bogus
// ids) — never in a way that breaks gob framing, so the connection itself
// survives. Mutated fields are deep-copied first: payload slices may be
// shared with live sketch state on the sending side.
func corruptEnvelope(e Envelope) Envelope {
	switch {
	case e.Hello != nil:
		h := *e.Hello
		h.Seed = ^h.Seed
		e.Hello = &h
	case e.Volume != nil:
		v := *e.Volume
		// Mismatch the parallel arrays; the NOC drops such reports.
		if len(v.Volumes) > 0 {
			v.Volumes = append([]float64(nil), v.Volumes[:len(v.Volumes)-1]...)
		}
		e.Volume = &v
	case e.Request != nil:
		r := *e.Request
		r.RequestID = ^r.RequestID
		e.Request = &r
	case e.Response != nil:
		r := *e.Response
		if len(r.Report.Sketches) > 0 && len(r.Report.Sketches[0]) > 0 {
			sk := make([][]float64, len(r.Report.Sketches))
			for i, s := range r.Report.Sketches {
				sk[i] = append([]float64(nil), s...)
			}
			sk[0][0] = math.NaN()
			r.Report.Sketches = sk
		}
		e.Response = &r
	case e.Alarm != nil:
		a := *e.Alarm
		a.Distance = math.NaN()
		e.Alarm = &a
	}
	return e
}

// Close tears the connection down; subsequent Sends and Recvs fail.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.raw.Close()
		c.m.connClosed()
	})
	return c.closeErr
}

// Pipe returns two in-memory connected Conns with the same semantics as a
// TCP pair — the test transport.
func Pipe() (*Conn, *Conn) {
	return PipeWithMetrics(nil, nil)
}

// PipeWithMetrics is Pipe with per-end instrumentation (either may be nil).
func PipeWithMetrics(ma, mb *Metrics) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConnWithMetrics(a, ma), NewConnWithMetrics(b, mb)
}
