package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is a framed, bidirectional message connection. Sends are serialized
// internally; Recv must be called from a single reader goroutine.
type Conn struct {
	raw io.ReadWriteCloser

	sendMu sync.Mutex
	enc    *gob.Encoder
	dec    *gob.Decoder

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps an established stream (net.Conn or an in-memory pipe).
func NewConn(raw io.ReadWriteCloser) *Conn {
	registerTypes()
	return &Conn{
		raw: raw,
		enc: gob.NewEncoder(raw),
		dec: gob.NewDecoder(raw),
	}
}

// Dial connects to a NOC or monitor endpoint over TCP.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return NewConn(c), nil
}

// Send writes one envelope. It is safe for concurrent use.
func (c *Conn) Send(e Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(&e); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
			return fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return fmt.Errorf("send: %w", err)
	}
	return nil
}

// Recv reads the next envelope. Only one goroutine may call Recv.
func (c *Conn) Recv() (Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
			return Envelope{}, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return Envelope{}, fmt.Errorf("recv: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// Close tears the connection down; subsequent Sends and Recvs fail.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.raw.Close()
	})
	return c.closeErr
}

// Pipe returns two in-memory connected Conns with the same semantics as a
// TCP pair — the test transport.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
