package transport

import (
	"fmt"
	"net"
	"sync"

	"streampca/internal/faults"
)

// Handler processes one accepted connection. It should return when the
// connection fails or the server shuts down (the conn is closed under it).
type Handler func(*Conn)

// Server accepts TCP connections and hands each to a Handler. Shutdown
// closes the listener and every live connection, then waits for handlers.
type Server struct {
	listener net.Listener
	handler  Handler
	metrics  *Metrics
	faults   faults.Injector

	mu    sync.Mutex
	conns map[*Conn]struct{}
	done  bool

	wg sync.WaitGroup
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, handler Handler) (*Server, error) {
	return ListenWithMetrics(addr, handler, nil)
}

// ListenWithMetrics is Listen with wire instrumentation: every accepted
// connection records its traffic on m (nil disables).
func ListenWithMetrics(addr string, handler Handler, m *Metrics) (*Server, error) {
	return ListenWithOptions(addr, handler, m, nil)
}

// ListenWithOptions is Listen with wire instrumentation on m and a fault
// injector installed on every accepted connection (both may be nil; a nil
// injector is the production no-op).
func ListenWithOptions(addr string, handler Handler, m *Metrics, inj faults.Injector) (*Server, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrBadMessage)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &Server{
		listener: ln,
		handler:  handler,
		metrics:  m,
		faults:   inj,
		conns:    make(map[*Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		conn := NewConnWithMetrics(raw, s.metrics)
		if s.faults != nil {
			conn.SetFaults(s.faults)
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handler(conn)
		}()
	}
}

// Shutdown stops accepting, closes all connections and waits for handlers to
// return.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.done = true
	_ = s.listener.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
