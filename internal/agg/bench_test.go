package agg

import (
	"fmt"
	"math/rand"
	"testing"

	"streampca/internal/randproj"
	"streampca/internal/sketch"
)

// BenchmarkAggregatorMerge measures the per-interval cost of the merge an
// aggregator performs in serveFetch: combining the sketch reports of its
// registered monitors (4 shards here) into the single upstream snapshot.
// Cells sweep the shared sketch parameter l ∈ {64, 128} for both families;
// the sketches/s metric is shard snapshots consumed per second, the number
// the BENCHCHECK_MERGE_FLOOR gate in scripts/benchcheck.sh guards.
//
// Each shard is 2l+64 flows wide so the FD cells respect the 2ℓ < w
// compression bound at the same parameter values as randproj.
func BenchmarkAggregatorMerge(b *testing.B) {
	const shards = 4
	const window = 64
	for _, family := range []sketch.Family{sketch.FamilyRandProj, sketch.FamilyFD} {
		for _, l := range []int{64, 128} {
			name := fmt.Sprintf("family=%s/l=%d", family, l)
			b.Run(name, func(b *testing.B) {
				snaps := benchShardSnapshots(b, family, shards, 2*l+64, l, window)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sketch.Merge(snaps, l, 1); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(shards)*float64(b.N)/b.Elapsed().Seconds(), "sketches/s")
			})
		}
	}
}

// benchShardSnapshots builds `shards` disjoint per-monitor sketchers of
// `width` flows each, streams `window` intervals of synthetic traffic
// through them, and returns their snapshots — the merge inputs an
// aggregator would gather in one fetch round.
func benchShardSnapshots(b *testing.B, family sketch.Family, shards, width, sketchParam, window int) []sketch.Snapshot {
	b.Helper()
	var gen *randproj.Generator
	if family == sketch.FamilyRandProj {
		var err error
		gen, err = randproj.NewGenerator(randproj.Config{Seed: 7, SketchLen: sketchParam, WindowLen: window})
		if err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	snaps := make([]sketch.Snapshot, shards)
	for si := 0; si < shards; si++ {
		ids := make([]int, width)
		for i := range ids {
			ids[i] = si*width + i
		}
		sk, err := sketch.New(sketch.Config{
			Family: family, FlowIDs: ids, WindowLen: window,
			Epsilon: 0.1, Gen: gen, Ell: sketchParam, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		local := make([]float64, width)
		for t := 1; t <= window; t++ {
			for i := range local {
				local[i] = 500 + 50*rng.NormFloat64()
			}
			if err := sk.Update(int64(t), local); err != nil {
				b.Fatal(err)
			}
		}
		snaps[si] = sk.Snapshot()
	}
	return snaps
}
