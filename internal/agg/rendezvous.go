package agg

import (
	"hash/fnv"
	"sort"
)

// Rendezvous orders aggregator candidates by highest-random-weight (HRW)
// preference for the given monitor ID: every monitor, hashing independently,
// agrees on which live candidate owns it, and the death of one candidate
// re-places only that candidate's monitors — the survivors' assignments are
// untouched. Ties (identical hashes) break on the address string so the
// order is total and deterministic. The input slice is not modified.
//
// The raw FNV-1a digest avalanches poorly over the short, near-identical
// strings aggregator addresses tend to be ("agg-a:7101" vs "agg-b:7101"),
// which skews placement badly; the murmur3 fmix64 finalizer restores full
// bit diffusion.
func Rendezvous(monitorID string, candidates []string) []string {
	out := append([]string(nil), candidates...)
	weight := func(addr string) uint64 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(addr))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(monitorID))
		x := h.Sum64()
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		return x
	}
	sort.SliceStable(out, func(i, j int) bool {
		wi, wj := weight(out[i]), weight(out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}
