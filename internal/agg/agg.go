// Package agg implements the mid-tier aggregator of the federated topology:
// a daemon that owns one shard of the flow space, fronting a set of local
// monitors exactly like a NOC (registrations, volume reports, sketch pulls)
// while presenting itself to the real NOC exactly like one big monitor.
//
// The tier rests on sketch linearity (Theorem 1): Ẑ = (1/√l)·RᵀY is linear
// in the data, so sketches over disjoint flow shards merge losslessly by
// column union (randproj) or with a composed deterministic bound (FD, see
// sketch.Merge). Per interval the aggregator forwards upward one merged
// volume report and, on demand, one merged sketch — the root NOC's fetch
// path, circuit breakers, degraded mode and tracing all work unchanged
// because the aggregator speaks the existing monitor wire protocol, only
// tagging its Hello with transport.RoleAggregator.
//
// Fault model: a dead downstream monitor is served from the aggregator's
// snapshot cache (the response is tagged Degraded/StaleFlows, which the NOC
// folds into core.Fetch); a dead aggregator's monitors re-place themselves
// onto surviving candidates via the ShardMap it pushed (Rendezvous), and the
// survivor re-announces its grown flow union with a repeat Hello on its live
// NOC connection.
package agg

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"streampca/internal/core"
	"streampca/internal/obs"
	"streampca/internal/sketch"
	"streampca/internal/transport"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid service configuration.
	ErrConfig = errors.New("agg: invalid configuration")
	// ErrNotConnected indicates an operation requiring a live NOC link.
	ErrNotConnected = errors.New("agg: not connected")
	// ErrAlreadyConnected indicates a second ConnectNOC/AttachNOC.
	ErrAlreadyConnected = errors.New("agg: already connected")
)

// DegradedPolicy mirrors the NOC's: substitute an unresponsive monitor's
// cached snapshot into the merge when it is no staler than MaxStaleness
// intervals (symmetric distance) from the fetch reference point.
type DegradedPolicy struct {
	Enabled      bool
	MaxStaleness int64
}

// Config parameterizes an aggregator service.
type Config struct {
	// ID names the aggregator; it is the MonitorID the NOC sees.
	ID string
	// Family, NumFlows, WindowLen, SketchLen and Seed must agree with the
	// NOC's detector configuration; monitors are validated against them on
	// registration exactly as the NOC would. SketchLen carries the family's
	// sketch parameter (l for randproj, the basis budget ℓ for FD).
	Family    sketch.Family
	NumFlows  int
	WindowLen int
	SketchLen int
	Seed      uint64
	// Workers bounds the goroutines sketch.Merge shards FD rebuild work
	// across; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Peers is the full list of aggregator candidate addresses fronting the
	// same NOC (including this one's advertised address). It is pushed to
	// every registering monitor as a transport.ShardMap so monitors can
	// re-place themselves when this aggregator dies. Empty disables the
	// push (single-aggregator or test topologies).
	Peers []string
	// ShardEpoch versions the pushed map; monitors keep the highest epoch
	// seen. Defaults to 1 when Peers is set.
	ShardEpoch uint64
	// FetchTimeout bounds one downstream sketch-pull round (default 2s);
	// FetchRetries extra rounds re-ask only the missing monitors, with
	// capped exponential backoff between rounds (defaults 0, 50ms, 1s).
	FetchTimeout    time.Duration
	FetchRetries    int
	FetchBackoff    time.Duration
	FetchBackoffMax time.Duration
	// Degraded controls cached-snapshot substitution for unresponsive
	// monitors.
	Degraded DegradedPolicy
	// MaxPendingIntervals bounds partially-reported intervals held for the
	// merged volume forward (default 8; oldest is dropped).
	MaxPendingIntervals int
	// Reconnect enables automatic redial of the NOC link with capped
	// exponential backoff (defaults 200ms, 5s). Unlike a leaf monitor, an
	// aggregator retries even after an explicit NOC rejection: a flow-claim
	// conflict during a re-shard clears once the stale owner drops.
	Reconnect           bool
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// Obs is the metrics registry the service instruments into; nil creates
	// a private registry. Log receives structured logs; nil discards.
	Obs *obs.Registry
	Log *slog.Logger
	// MetricsAddr, when non-empty, serves /metrics and /healthz for this
	// aggregator's registry until Close.
	MetricsAddr string
}

// metrics is the aggregator's instrumentation surface, under streampca_agg_.
type metrics struct {
	monitors       *obs.Gauge
	rejects        *obs.Counter
	volumeForwards *obs.Counter
	intervalDrops  *obs.Counter
	fetches        *obs.Counter
	fetchRetries   *obs.Counter
	mergeErrors    *obs.Counter
	degradedMerges *obs.Counter
	staleFlows     *obs.Gauge
	alarmsRelayed  *obs.Counter
	rehellos       *obs.Counter
	reconnects     *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		monitors: reg.Gauge("streampca_agg_monitors_connected",
			"Currently registered downstream monitors."),
		rejects: reg.Counter("streampca_agg_registrations_rejected_total",
			"Monitor registrations refused (config or flow-ownership conflicts)."),
		volumeForwards: reg.Counter("streampca_agg_volume_forwards_total",
			"Merged per-interval volume reports forwarded to the NOC."),
		intervalDrops: reg.Counter("streampca_agg_interval_drops_total",
			"Partially-reported intervals evicted by the pending bound."),
		fetches: reg.Counter("streampca_agg_fetches_served_total",
			"Upstream sketch pulls answered with a merged snapshot."),
		fetchRetries: reg.Counter("streampca_agg_fetch_retries_total",
			"Extra downstream pull rounds after an incomplete first round."),
		mergeErrors: reg.Counter("streampca_agg_merge_errors_total",
			"Sketch merges that failed validation (no response sent upstream)."),
		degradedMerges: reg.Counter("streampca_agg_degraded_merges_total",
			"Merged responses that substituted cached snapshots for unresponsive monitors."),
		staleFlows: reg.Gauge("streampca_agg_stale_flows",
			"Flows served from the snapshot cache in the most recent merge."),
		alarmsRelayed: reg.Counter("streampca_agg_alarms_relayed_total",
			"NOC alarm broadcasts re-broadcast to downstream monitors."),
		rehellos: reg.Counter("streampca_agg_rehellos_total",
			"Flow-union re-announcements sent on the live NOC connection."),
		reconnects: reg.Counter("streampca_agg_reconnects_total",
			"Successful automatic redials after the NOC link dropped."),
	}
}

// monitorEntry tracks one registered downstream monitor.
type monitorEntry struct {
	id    string
	flows []int
	conn  *transport.Conn
}

// intervalAccum collects one interval's volumes across monitors.
type intervalAccum struct {
	vol map[int]float64
}

// pendingFetch routes downstream sketch responses to the waiting fan-out.
type pendingFetch struct {
	respCh chan *transport.SketchResponse
}

// Service is a mid-tier aggregator. Create with New, expose to monitors with
// Serve, wire upstream with ConnectNOC, stop with Close.
type Service struct {
	cfg     Config
	log     *slog.Logger
	reg     *obs.Registry
	health  *obs.Health
	met     *metrics
	wireMet *transport.Metrics
	diag    *obs.Server
	server  *transport.Server

	// helloMu serializes upstream Hello (re-)announcements so a stale union
	// can never overtake a fresher one on the wire. Lock order: helloMu
	// before mu, never the reverse.
	helloMu sync.Mutex

	mu        sync.Mutex
	monitors  map[*transport.Conn]*monitorEntry
	flowOwner map[int]*transport.Conn
	intervals map[int64]*intervalAccum
	pending   map[uint64]*pendingFetch
	nextReq   uint64
	// snapCache holds each monitor's last validated snapshot for the
	// degraded substitution path, keyed by monitor ID.
	snapCache    map[string]core.SketchReport
	lastInterval int64
	rng          *rand.Rand

	up          *transport.Conn
	upAddr      string
	dialTimeout time.Duration
	closed      bool
}

// New validates cfg and builds the service.
func New(cfg Config) (*Service, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("%w: empty aggregator id", ErrConfig)
	}
	if cfg.Family != sketch.FamilyRandProj && cfg.Family != sketch.FamilyFD {
		return nil, fmt.Errorf("%w: unknown sketcher family %v", ErrConfig, cfg.Family)
	}
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, cfg.NumFlows)
	}
	if cfg.WindowLen < 1 {
		return nil, fmt.Errorf("%w: window length %d", ErrConfig, cfg.WindowLen)
	}
	if cfg.SketchLen < 1 {
		return nil, fmt.Errorf("%w: sketch parameter %d", ErrConfig, cfg.SketchLen)
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	if cfg.FetchRetries < 0 {
		return nil, fmt.Errorf("%w: %d fetch retries", ErrConfig, cfg.FetchRetries)
	}
	if cfg.FetchBackoff <= 0 {
		cfg.FetchBackoff = 50 * time.Millisecond
	}
	if cfg.FetchBackoffMax <= 0 {
		cfg.FetchBackoffMax = time.Second
	}
	if cfg.MaxPendingIntervals <= 0 {
		cfg.MaxPendingIntervals = 8
	}
	if cfg.ShardEpoch == 0 {
		cfg.ShardEpoch = 1
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	s := &Service{
		cfg:       cfg,
		log:       log.With("agg", cfg.ID),
		reg:       reg,
		health:    obs.NewHealth(),
		met:       newMetrics(reg),
		wireMet:   transport.NewMetrics(reg),
		monitors:  make(map[*transport.Conn]*monitorEntry),
		flowOwner: make(map[int]*transport.Conn),
		intervals: make(map[int64]*intervalAccum),
		pending:   make(map[uint64]*pendingFetch),
		snapCache: make(map[string]core.SketchReport),
		rng:       rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x5bd1e995)),
	}
	s.health.Set("agg", obs.StatusOK, "ready")
	s.health.Set("noc-link", obs.StatusDegraded, "not connected")
	if cfg.MetricsAddr != "" {
		diag, err := obs.StartServer(cfg.MetricsAddr, reg, s.health, s.log)
		if err != nil {
			return nil, err
		}
		s.diag = diag
	}
	return s, nil
}

// Registry exposes the metrics registry.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Health exposes the component health tracker.
func (s *Service) Health() *obs.Health { return s.health }

// ID returns the aggregator's identifier.
func (s *Service) ID() string { return s.cfg.ID }

// Serve starts accepting downstream monitor connections on addr.
func (s *Service) Serve(addr string) error {
	srv, err := transport.ListenWithMetrics(addr, s.handleMonitor, s.wireMet)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.server = srv
	s.mu.Unlock()
	s.log.Info("aggregator listening", "addr", srv.Addr(), "peers", len(s.cfg.Peers))
	return nil
}

// Addr returns the downstream listen address ("" before Serve).
func (s *Service) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.server == nil {
		return ""
	}
	return s.server.Addr()
}

// Monitors lists the registered downstream monitor IDs, sorted.
func (s *Service) Monitors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.monitors))
	for _, e := range s.monitors {
		out = append(out, e.id)
	}
	sort.Strings(out)
	return out
}

// FlowUnion returns the sorted union of registered monitors' flows — the
// shard this aggregator currently announces upstream.
func (s *Service) FlowUnion() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flowUnionLocked()
}

func (s *Service) flowUnionLocked() []int {
	out := make([]int, 0, len(s.flowOwner))
	for f := range s.flowOwner {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// ConnectNOC dials the NOC, announces the current flow union with a
// Role-tagged Hello and starts serving its sketch pulls. With
// Config.Reconnect, a later link loss redials automatically.
func (s *Service) ConnectNOC(addr string, timeout time.Duration) error {
	s.mu.Lock()
	s.upAddr = addr
	s.dialTimeout = timeout
	s.mu.Unlock()
	conn, err := transport.DialWithMetrics(addr, timeout, s.wireMet)
	if err != nil {
		s.health.Set("noc-link", obs.StatusDown, err.Error())
		return fmt.Errorf("connect NOC: %w", err)
	}
	if err := s.AttachNOC(conn); err != nil {
		_ = conn.Close()
		return err
	}
	return nil
}

// AttachNOC adopts an established upstream connection (tests, embedders).
func (s *Service) AttachNOC(conn *transport.Conn) error {
	s.helloMu.Lock()
	defer s.helloMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: service closed", ErrNotConnected)
	}
	if s.up != nil {
		s.mu.Unlock()
		return ErrAlreadyConnected
	}
	s.up = conn
	hello := s.helloLocked()
	s.mu.Unlock()

	if err := conn.Send(transport.Envelope{Hello: &hello}); err != nil {
		s.mu.Lock()
		if s.up == conn {
			s.up = nil
		}
		s.mu.Unlock()
		s.health.Set("noc-link", obs.StatusDown, err.Error())
		return fmt.Errorf("hello: %w", err)
	}
	s.health.Set("noc-link", obs.StatusOK, "registered with NOC")
	s.log.Info("attached to NOC", "flows", len(hello.FlowIDs))
	go s.upReadLoop(conn)
	return nil
}

// helloLocked builds the upstream announcement for the current flow union.
// Caller holds s.mu.
func (s *Service) helloLocked() transport.Hello {
	h := transport.Hello{
		MonitorID: s.cfg.ID,
		FlowIDs:   s.flowUnionLocked(),
		SketchLen: s.cfg.SketchLen,
		WindowLen: s.cfg.WindowLen,
		Family:    s.cfg.Family,
		Role:      transport.RoleAggregator,
	}
	if s.cfg.Family == sketch.FamilyRandProj {
		h.Seed = s.cfg.Seed
	}
	return h
}

// announce re-sends the Hello on the live upstream connection after the flow
// union changed (the NOC treats a repeat Hello as re-registration). A send
// failure is left to the read loop: it observes the dead link and redials.
func (s *Service) announce() {
	s.helloMu.Lock()
	defer s.helloMu.Unlock()
	s.mu.Lock()
	conn := s.up
	hello := s.helloLocked()
	s.mu.Unlock()
	if conn == nil {
		return
	}
	if err := conn.Send(transport.Envelope{Hello: &hello}); err != nil {
		s.log.Warn("re-hello send failed", "err", err)
		return
	}
	s.met.rehellos.Inc()
	s.log.Info("re-announced flow union", "flows", len(hello.FlowIDs))
}

// upReadLoop serves the NOC until the link dies, then hands off to the
// reconnect loop when enabled. A ProtocolError (e.g. a flow-claim conflict
// while a dead peer's registration lingers) is retried like any link loss —
// the conflict clears once the NOC drops the stale owner.
func (s *Service) upReadLoop(conn *transport.Conn) {
	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		switch {
		case env.Request != nil:
			req := *env.Request
			tc := env.Trace
			go s.serveFetch(conn, req.RequestID, tc)
		case env.Alarm != nil:
			s.broadcastAlarm(*env.Alarm, env.Trace)
		case env.Error != nil:
			s.log.Warn("NOC rejected registration; will retry", "err", env.Error.Msg)
			s.health.Set("noc-link", obs.StatusDegraded, env.Error.Msg)
		default:
			// Tolerate well-formed but unexpected frames.
		}
	}

	s.mu.Lock()
	current := s.up == conn && !s.closed
	if current {
		s.up = nil
	}
	addr := s.upAddr
	s.mu.Unlock()
	if !current {
		return
	}
	_ = conn.Close()
	if s.cfg.Reconnect && addr != "" {
		s.health.Set("noc-link", obs.StatusDegraded, "link lost; reconnecting")
		s.log.Warn("NOC link lost, reconnecting", "addr", addr)
		go s.reconnectLoop(addr)
		return
	}
	s.health.Set("noc-link", obs.StatusDown, "link lost")
	s.log.Warn("NOC link lost")
}

// reconnectLoop redials the NOC with capped exponential backoff until it
// succeeds, the service closes, or another connection appears.
func (s *Service) reconnectLoop(addr string) {
	backoff := s.cfg.ReconnectBackoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	max := s.cfg.ReconnectBackoffMax
	if max <= 0 {
		max = 5 * time.Second
	}
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		stop := s.closed || s.up != nil
		timeout := s.dialTimeout
		s.mu.Unlock()
		if stop {
			return
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > max {
			backoff = max
		}
		err := s.ConnectNOC(addr, timeout)
		if err == nil {
			s.met.reconnects.Inc()
			s.log.Info("reconnected to NOC", "addr", addr, "attempts", attempt)
			return
		}
		if errors.Is(err, ErrAlreadyConnected) || errors.Is(err, ErrNotConnected) {
			return
		}
		s.log.Warn("reconnect attempt failed", "attempt", attempt, "err", err)
	}
}

// handleMonitor owns one downstream monitor connection: Hello handshake,
// then volume reports and sketch responses until the link dies.
func (s *Service) handleMonitor(conn *transport.Conn) {
	env, err := conn.Recv()
	if err != nil {
		return
	}
	if env.Hello == nil {
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: "first frame must be hello"}})
		return
	}
	if err := s.register(conn, env.Hello); err != nil {
		s.met.rejects.Inc()
		s.log.Warn("monitor rejected", "monitor", env.Hello.MonitorID, "err", err)
		_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: err.Error()}})
		return
	}
	defer s.unregister(conn)
	s.pushShardMap(conn)
	s.announce()

	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		switch {
		case env.Volume != nil:
			s.addVolumes(env.Volume)
		case env.Response != nil:
			s.routeResponse(env.Response)
		case env.Hello != nil:
			if err := s.register(conn, env.Hello); err != nil {
				s.met.rejects.Inc()
				_ = conn.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: err.Error()}})
				return
			}
			s.announce()
		default:
			// Tolerate well-formed but unexpected frames.
		}
	}
}

// register validates a monitor's announced configuration against the shared
// deployment parameters and claims its flows within this shard. A repeat
// Hello on a live connection first releases the old claim (re-registration).
func (s *Service) register(conn *transport.Conn, h *transport.Hello) error {
	if h.Family != s.cfg.Family {
		return fmt.Errorf("%w: monitor %q runs sketcher family %v, aggregator %v", ErrConfig, h.MonitorID, h.Family, s.cfg.Family)
	}
	if h.SketchLen != s.cfg.SketchLen {
		return fmt.Errorf("%w: monitor %q sketch length %d, aggregator %d", ErrConfig, h.MonitorID, h.SketchLen, s.cfg.SketchLen)
	}
	if h.WindowLen != s.cfg.WindowLen {
		return fmt.Errorf("%w: monitor %q window %d, aggregator %d", ErrConfig, h.MonitorID, h.WindowLen, s.cfg.WindowLen)
	}
	if s.cfg.Family == sketch.FamilyRandProj && h.Seed != s.cfg.Seed {
		return fmt.Errorf("%w: monitor %q seed mismatch", ErrConfig, h.MonitorID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.monitors[conn]; ok {
		delete(s.monitors, conn)
		for _, f := range old.flows {
			if s.flowOwner[f] == conn {
				delete(s.flowOwner, f)
			}
		}
	}
	for _, f := range h.FlowIDs {
		if f < 0 || f >= s.cfg.NumFlows {
			return fmt.Errorf("%w: monitor %q flow %d of %d", ErrConfig, h.MonitorID, f, s.cfg.NumFlows)
		}
		if owner, taken := s.flowOwner[f]; taken && owner != conn {
			return fmt.Errorf("%w: flow %d already owned", ErrConfig, f)
		}
	}
	entry := &monitorEntry{id: h.MonitorID, flows: append([]int(nil), h.FlowIDs...), conn: conn}
	s.monitors[conn] = entry
	for _, f := range h.FlowIDs {
		s.flowOwner[f] = conn
	}
	s.met.monitors.Set(float64(len(s.monitors)))
	s.log.Info("monitor registered", "monitor", h.MonitorID, "flows", len(h.FlowIDs),
		"union", len(s.flowOwner))
	return nil
}

func (s *Service) unregister(conn *transport.Conn) {
	s.mu.Lock()
	entry, ok := s.monitors[conn]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.monitors, conn)
	for _, f := range entry.flows {
		if s.flowOwner[f] == conn {
			delete(s.flowOwner, f)
		}
	}
	s.met.monitors.Set(float64(len(s.monitors)))
	// A shrunken union can complete pending intervals (the dead monitor's
	// flows are no longer required); flush oldest-first.
	ready := s.completePendingLocked()
	up := s.up
	s.mu.Unlock()
	s.log.Info("monitor dropped", "monitor", entry.id, "flows", len(entry.flows))
	for i := range ready {
		s.forwardVolumes(up, &ready[i])
	}
	s.announce()
}

// SetPeers replaces the aggregator-candidate list pushed to monitors, for
// embedders whose listen addresses are only known after Serve (dynamic
// ports). Already-registered monitors receive the new map immediately.
func (s *Service) SetPeers(peers []string, epoch uint64) {
	s.mu.Lock()
	s.cfg.Peers = append([]string(nil), peers...)
	s.cfg.ShardEpoch = epoch
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		s.pushShardMap(c)
	}
}

// pushShardMap sends the aggregator-candidate list so the monitor can
// re-place itself if this aggregator dies.
func (s *Service) pushShardMap(conn *transport.Conn) {
	s.mu.Lock()
	sm := transport.ShardMap{
		Aggregators: append([]string(nil), s.cfg.Peers...),
		Epoch:       s.cfg.ShardEpoch,
	}
	s.mu.Unlock()
	if len(sm.Aggregators) == 0 {
		return
	}
	if err := conn.Send(transport.Envelope{Shards: &sm}); err != nil {
		s.log.Warn("shard map push failed", "err", err)
	}
}

// addVolumes folds a monitor's report into its interval accumulator and
// forwards one merged VolumeReport upstream once every currently-owned flow
// has reported.
func (s *Service) addVolumes(v *transport.VolumeReport) {
	if len(v.FlowIDs) != len(v.Volumes) {
		return // malformed; drop
	}
	s.mu.Lock()
	if v.Interval > s.lastInterval {
		s.lastInterval = v.Interval
	}
	acc, ok := s.intervals[v.Interval]
	if !ok {
		if len(s.intervals) >= s.cfg.MaxPendingIntervals {
			var oldest int64 = 1<<63 - 1
			for iv := range s.intervals {
				if iv < oldest {
					oldest = iv
				}
			}
			delete(s.intervals, oldest)
			s.met.intervalDrops.Inc()
		}
		acc = &intervalAccum{vol: make(map[int]float64)}
		s.intervals[v.Interval] = acc
	}
	for i, f := range v.FlowIDs {
		if f < 0 || f >= s.cfg.NumFlows {
			continue
		}
		if _, dup := acc.vol[f]; !dup {
			acc.vol[f] = v.Volumes[i]
		}
	}
	report, complete := s.tryCompleteLocked(v.Interval, acc)
	up := s.up
	s.mu.Unlock()
	if complete {
		s.forwardVolumes(up, &report)
	}
}

// tryCompleteLocked checks whether every currently-owned flow has reported
// for interval iv; on success the accumulator is removed and the merged
// report returned. Caller holds s.mu.
func (s *Service) tryCompleteLocked(iv int64, acc *intervalAccum) (transport.VolumeReport, bool) {
	if len(s.flowOwner) == 0 || len(acc.vol) == 0 {
		return transport.VolumeReport{}, false
	}
	for f := range s.flowOwner {
		if _, ok := acc.vol[f]; !ok {
			return transport.VolumeReport{}, false
		}
	}
	delete(s.intervals, iv)
	flows := make([]int, 0, len(acc.vol))
	for f := range acc.vol {
		flows = append(flows, f)
	}
	sort.Ints(flows)
	vols := make([]float64, len(flows))
	for i, f := range flows {
		vols[i] = acc.vol[f]
	}
	return transport.VolumeReport{
		MonitorID: s.cfg.ID, Interval: iv, FlowIDs: flows, Volumes: vols,
	}, true
}

// completePendingLocked re-examines pending intervals after an ownership
// change, returning newly completable reports in interval order. Caller
// holds s.mu.
func (s *Service) completePendingLocked() []transport.VolumeReport {
	var ready []transport.VolumeReport
	for iv, acc := range s.intervals {
		if rep, ok := s.tryCompleteLocked(iv, acc); ok {
			ready = append(ready, rep)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].Interval < ready[j].Interval })
	return ready
}

func (s *Service) forwardVolumes(up *transport.Conn, rep *transport.VolumeReport) {
	if up == nil {
		return
	}
	if err := up.Send(transport.Envelope{Volume: rep}); err != nil {
		s.log.Warn("volume forward failed", "interval", rep.Interval, "err", err)
		return
	}
	s.met.volumeForwards.Inc()
}

// routeResponse hands a downstream sketch response to the waiting fan-out.
func (s *Service) routeResponse(r *transport.SketchResponse) {
	s.mu.Lock()
	p, ok := s.pending[r.RequestID]
	s.mu.Unlock()
	if !ok {
		return // stale or unknown round
	}
	select {
	case p.respCh <- r:
	default:
	}
}

// serveFetch answers one upstream sketch pull: fan the request out to the
// registered monitors (with retry rounds), substitute cached snapshots for
// the unresponsive under the degraded policy, merge, and send one response.
func (s *Service) serveFetch(up *transport.Conn, upReqID uint64, tc *transport.TraceContext) {
	reports := make(map[string]core.SketchReport)
	rounds := 1 + s.cfg.FetchRetries
	backoff := s.cfg.FetchBackoff
	for round := 0; round < rounds; round++ {
		if round > 0 {
			s.met.fetchRetries.Inc()
			d := backoff
			s.mu.Lock()
			if j := int64(backoff / 2); j > 0 {
				d += time.Duration(s.rng.Int63n(j))
			}
			s.mu.Unlock()
			time.Sleep(d)
			if backoff *= 2; backoff > s.cfg.FetchBackoffMax {
				backoff = s.cfg.FetchBackoffMax
			}
		}
		if s.fetchRound(reports, tc) == 0 {
			break
		}
		s.mu.Lock()
		missing := false
		for _, e := range s.monitors {
			if _, ok := reports[e.id]; !ok {
				missing = true
				break
			}
		}
		s.mu.Unlock()
		if !missing {
			break
		}
	}

	// Degraded substitution: cached snapshots stand in for monitors that
	// did not answer, as long as they are fresh enough and their flows do
	// not collide with anything already gathered (or owned by another
	// monitor since). Sorted iteration keeps substitution deterministic.
	stale := 0
	s.mu.Lock()
	if s.cfg.Degraded.Enabled {
		ref := s.lastInterval
		for _, rep := range reports {
			if rep.Interval > ref {
				ref = rep.Interval
			}
		}
		covered := make(map[int]string)
		for id, rep := range reports {
			for _, f := range rep.FlowIDs {
				covered[f] = id
			}
		}
		ids := make([]string, 0, len(s.snapCache))
		for id := range s.snapCache {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if _, fresh := reports[id]; fresh {
				continue
			}
			snap := s.snapCache[id]
			age := ref - snap.Interval
			if age < 0 {
				age = -age
			}
			if age > s.cfg.Degraded.MaxStaleness {
				continue
			}
			usable := len(snap.FlowIDs) > 0
			for _, f := range snap.FlowIDs {
				if _, seen := covered[f]; seen {
					usable = false
					break
				}
				if owner, owned := s.flowOwner[f]; owned && s.monitors[owner] != nil && s.monitors[owner].id != id {
					usable = false
					break
				}
			}
			if !usable {
				continue
			}
			for _, f := range snap.FlowIDs {
				covered[f] = id
			}
			reports[id] = snap
			stale += len(snap.FlowIDs)
		}
	}
	s.mu.Unlock()

	if len(reports) == 0 {
		s.log.Warn("sketch pull unanswerable: no live or cached snapshots", "request", upReqID)
		return
	}
	snaps := make([]sketch.Snapshot, 0, len(reports))
	for _, rep := range reports {
		snaps = append(snaps, rep)
	}
	merged, err := sketch.Merge(snaps, s.cfg.SketchLen, s.cfg.Workers)
	if err != nil {
		s.met.mergeErrors.Inc()
		s.log.Warn("sketch merge failed", "request", upReqID, "inputs", len(snaps), "err", err)
		return
	}
	s.met.fetches.Inc()
	s.met.staleFlows.Set(float64(stale))
	if stale > 0 {
		s.met.degradedMerges.Inc()
		s.log.Warn("degraded merge", "request", upReqID, "stale_flows", stale)
	}
	resp := transport.SketchResponse{
		RequestID:  upReqID,
		MonitorID:  s.cfg.ID,
		Report:     merged,
		Degraded:   stale > 0,
		StaleFlows: stale,
	}
	if err := up.Send(transport.Envelope{Response: &resp, Trace: tc}); err != nil {
		s.log.Warn("merged response send failed", "request", upReqID, "err", err)
	}
}

// fetchRound asks every registered monitor without a gathered report for its
// sketch and folds validated responses into reports (and the snapshot
// cache). Returns the number of monitors successfully asked.
func (s *Service) fetchRound(reports map[string]core.SketchReport, tc *transport.TraceContext) int {
	s.mu.Lock()
	targets := make(map[*transport.Conn]*monitorEntry)
	for c, e := range s.monitors {
		if _, done := reports[e.id]; !done {
			targets[c] = e
		}
	}
	if len(targets) == 0 {
		s.mu.Unlock()
		return 0
	}
	s.nextReq++
	id := s.nextReq
	p := &pendingFetch{respCh: make(chan *transport.SketchResponse, len(targets))}
	s.pending[id] = p
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}()

	awaiting := make(map[string]bool, len(targets))
	for c, e := range targets {
		if err := c.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: id}, Trace: tc}); err != nil {
			s.log.Warn("sketch request send failed", "monitor", e.id, "err", err)
			continue
		}
		awaiting[e.id] = true
	}
	asked := len(awaiting)
	if asked == 0 {
		return 0
	}

	timer := time.NewTimer(s.cfg.FetchTimeout)
	defer timer.Stop()
	for remaining := asked; remaining > 0; {
		select {
		case r := <-p.respCh:
			if !awaiting[r.MonitorID] {
				continue
			}
			awaiting[r.MonitorID] = false
			remaining--
			if err := r.Report.Validate(s.cfg.SketchLen); err != nil {
				s.log.Warn("invalid sketch report", "monitor", r.MonitorID, "err", err)
				continue
			}
			if r.Report.Family != s.cfg.Family {
				s.log.Warn("sketch report from wrong family", "monitor", r.MonitorID)
				continue
			}
			ok := true
			for _, f := range r.Report.FlowIDs {
				if f < 0 || f >= s.cfg.NumFlows {
					ok = false
					break
				}
			}
			if !ok {
				s.log.Warn("sketch report names unknown flow", "monitor", r.MonitorID)
				continue
			}
			reports[r.MonitorID] = r.Report
			s.mu.Lock()
			s.snapCache[r.MonitorID] = r.Report
			if r.Report.Interval > s.lastInterval {
				s.lastInterval = r.Report.Interval
			}
			s.mu.Unlock()
		case <-timer.C:
			for mid, waiting := range awaiting {
				if waiting {
					s.log.Warn("sketch response timed out", "monitor", mid, "timeout", s.cfg.FetchTimeout)
				}
			}
			return asked
		}
	}
	return asked
}

// broadcastAlarm re-broadcasts a NOC alarm to every downstream monitor.
func (s *Service) broadcastAlarm(a transport.Alarm, tc *transport.TraceContext) {
	s.mu.Lock()
	conns := make([]*transport.Conn, 0, len(s.monitors))
	for c := range s.monitors {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if err := c.Send(transport.Envelope{Alarm: &a, Trace: tc}); err == nil {
			s.met.alarmsRelayed.Inc()
		}
	}
}

// Stats is a snapshot of the aggregator's counters for periodic summaries.
type Stats struct {
	Monitors       int
	VolumeForwards int64
	Fetches        int64
	MergeErrors    int64
	DegradedMerges int64
	AlarmsRelayed  int64
	Reconnects     int64
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	n := len(s.monitors)
	s.mu.Unlock()
	return Stats{
		Monitors:       n,
		VolumeForwards: s.met.volumeForwards.Value(),
		Fetches:        s.met.fetches.Value(),
		MergeErrors:    s.met.mergeErrors.Value(),
		DegradedMerges: s.met.degradedMerges.Value(),
		AlarmsRelayed:  s.met.alarmsRelayed.Value(),
		Reconnects:     s.met.reconnects.Value(),
	}
}

// LogSummary emits the one-line slog summary the daemon prints periodically.
func (s *Service) LogSummary() {
	st := s.Stats()
	s.log.Info("aggregator stats",
		"monitors", st.Monitors,
		"volume_forwards", st.VolumeForwards,
		"fetches", st.Fetches,
		"merge_errors", st.MergeErrors,
		"degraded_merges", st.DegradedMerges,
		"alarms_relayed", st.AlarmsRelayed,
		"reconnects", st.Reconnects)
}

// Close tears down the downstream server, the NOC link and the diagnostics
// endpoint. Safe to call multiple times.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	up := s.up
	s.up = nil
	srv := s.server
	s.server = nil
	s.mu.Unlock()
	if srv != nil {
		srv.Shutdown()
	}
	var err error
	if up != nil {
		err = up.Close()
	}
	if s.diag != nil {
		_ = s.diag.Close()
	}
	s.health.Set("agg", obs.StatusDown, "closed")
	s.health.Set("noc-link", obs.StatusDown, "closed")
	return err
}
