package agg

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/sketch"
	"streampca/internal/transport"
)

const (
	testSketchLen = 4
	testFlows     = 8
	testSeed      = 99
)

func TestRendezvousDeterministic(t *testing.T) {
	cands := []string{"agg-a:1", "agg-b:1", "agg-c:1"}
	a := Rendezvous("mon-1", cands)
	b := Rendezvous("mon-1", cands)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs ordered differently: %v vs %v", a, b)
	}
	if len(a) != len(cands) {
		t.Fatalf("lost candidates: %v", a)
	}
	if reflect.DeepEqual(cands, []string{}) {
		t.Fatal("unreachable")
	}
	// Input must not be modified.
	if !reflect.DeepEqual(cands, []string{"agg-a:1", "agg-b:1", "agg-c:1"}) {
		t.Fatalf("input mutated: %v", cands)
	}
}

// TestRendezvousStability pins HRW's minimal-disruption property: removing
// one candidate re-places only the monitors that preferred it; every other
// monitor's first choice is unchanged.
func TestRendezvousStability(t *testing.T) {
	cands := []string{"agg-a:1", "agg-b:1", "agg-c:1", "agg-d:1"}
	const nMon = 60
	first := make(map[string]string, nMon)
	for i := 0; i < nMon; i++ {
		id := fmt.Sprintf("mon-%d", i)
		first[id] = Rendezvous(id, cands)[0]
	}
	// All candidates should win at least once over 60 monitors — a grossly
	// skewed hash would defeat the sharding.
	won := make(map[string]bool)
	for _, c := range first {
		won[c] = true
	}
	if len(won) != len(cands) {
		t.Fatalf("placement skew: only %d of %d candidates chosen: %v", len(won), len(cands), won)
	}
	// Kill agg-b; survivors' monitors must keep their assignment.
	survivors := []string{"agg-a:1", "agg-c:1", "agg-d:1"}
	for i := 0; i < nMon; i++ {
		id := fmt.Sprintf("mon-%d", i)
		got := Rendezvous(id, survivors)[0]
		if first[id] != "agg-b:1" && got != first[id] {
			t.Fatalf("monitor %s moved from %s to %s though its aggregator survived", id, first[id], got)
		}
		if first[id] == "agg-b:1" && got == "agg-b:1" {
			t.Fatalf("monitor %s still placed on the dead aggregator", id)
		}
	}
}

func testConfig() Config {
	return Config{
		ID:           "agg-test",
		Family:       sketch.FamilyRandProj,
		NumFlows:     testFlows,
		WindowLen:    16,
		SketchLen:    testSketchLen,
		Seed:         testSeed,
		FetchTimeout: 300 * time.Millisecond,
		Degraded:     DegradedPolicy{Enabled: true, MaxStaleness: 4},
	}
}

func newTestAgg(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// attachMonitor wires an in-memory monitor connection through the real
// handshake and waits for registration. The returned conn plays the monitor.
func attachMonitor(t *testing.T, s *Service, id string, flows []int) *transport.Conn {
	t.Helper()
	mon, srv := transport.Pipe()
	go s.handleMonitor(srv)
	hello := transport.Hello{
		MonitorID: id, FlowIDs: flows,
		SketchLen: s.cfg.SketchLen, WindowLen: s.cfg.WindowLen,
		Family: s.cfg.Family, Seed: s.cfg.Seed,
	}
	if s.cfg.Family == sketch.FamilyFD {
		hello.Seed = 0
	}
	if err := mon.Send(transport.Envelope{Hello: &hello}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	waitFor(t, func() bool {
		for _, m := range s.Monitors() {
			if m == id {
				return true
			}
		}
		return false
	}, "monitor "+id+" registered")
	t.Cleanup(func() { _ = mon.Close() })
	return mon
}

// attachFakeNOC gives the service an in-memory upstream and returns the
// NOC-side conn after consuming the initial Hello.
func attachFakeNOC(t *testing.T, s *Service) (*transport.Conn, transport.Hello) {
	t.Helper()
	noc, aggSide := transport.Pipe()
	// The pipe is unbuffered, so AttachNOC's synchronous Hello send needs a
	// concurrent reader.
	errCh := make(chan error, 1)
	go func() { errCh <- s.AttachNOC(aggSide) }()
	env := recvEnvelope(t, noc)
	if err := <-errCh; err != nil {
		t.Fatalf("AttachNOC: %v", err)
	}
	if env.Hello == nil {
		t.Fatalf("first upstream frame not a hello: %+v", env)
	}
	t.Cleanup(func() { _ = noc.Close() })
	return noc, *env.Hello
}

func recvEnvelope(t *testing.T, c *transport.Conn) transport.Envelope {
	t.Helper()
	type result struct {
		env transport.Envelope
		err error
	}
	ch := make(chan result, 1)
	go func() {
		env, err := c.Recv()
		ch <- result{env, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.env
	case <-time.After(5 * time.Second):
		t.Fatal("recv timed out")
		return transport.Envelope{}
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// randprojReport builds a valid randproj snapshot with recognizable values.
func randprojReport(interval int64, flows []int) core.SketchReport {
	rep := core.SketchReport{
		Interval: interval,
		FlowIDs:  append([]int(nil), flows...),
		Family:   sketch.FamilyRandProj,
	}
	for _, f := range flows {
		col := make([]float64, testSketchLen)
		for j := range col {
			col[j] = float64(f*100+j) + float64(interval)/10
		}
		rep.Sketches = append(rep.Sketches, col)
		rep.Means = append(rep.Means, float64(f))
		rep.Counts = append(rep.Counts, interval)
		rep.Buckets = append(rep.Buckets, 1)
	}
	return rep
}

// serveOneFetch answers the next downstream SketchRequest on mon with the
// given report, echoing the request id. Safe from any goroutine; the caller
// reports the returned error.
func serveOneFetch(mon *transport.Conn, monitorID string, rep core.SketchReport) error {
	env, err := mon.Recv()
	if err != nil {
		return err
	}
	if env.Request == nil {
		return fmt.Errorf("expected sketch request, got %+v", env)
	}
	resp := transport.SketchResponse{
		RequestID: env.Request.RequestID, MonitorID: monitorID, Report: rep,
	}
	return mon.Send(transport.Envelope{Response: &resp})
}

// goServe runs serveOneFetch in a goroutine, reporting failures via Errorf
// (legal off the test goroutine).
func goServe(t *testing.T, mon *transport.Conn, monitorID string, rep core.SketchReport) {
	t.Helper()
	go func() {
		if err := serveOneFetch(mon, monitorID, rep); err != nil {
			t.Errorf("serveOneFetch(%s): %v", monitorID, err)
		}
	}()
}

func TestHelloCarriesAggregatorRoleAndUnion(t *testing.T) {
	s := newTestAgg(t, testConfig())
	m1 := attachMonitor(t, s, "m1", []int{0, 2})
	defer m1.Close()
	m2 := attachMonitor(t, s, "m2", []int{5, 1})
	defer m2.Close()
	_, hello := attachFakeNOC(t, s)
	if hello.Role != transport.RoleAggregator {
		t.Fatalf("role = %v, want aggregator", hello.Role)
	}
	if hello.MonitorID != "agg-test" {
		t.Fatalf("upstream id = %q", hello.MonitorID)
	}
	if want := []int{0, 1, 2, 5}; !reflect.DeepEqual(hello.FlowIDs, want) {
		t.Fatalf("announced union = %v, want %v", hello.FlowIDs, want)
	}
	if hello.Seed != testSeed || hello.SketchLen != testSketchLen {
		t.Fatalf("config echo wrong: %+v", hello)
	}
}

func TestVolumeMergeForward(t *testing.T) {
	s := newTestAgg(t, testConfig())
	m1 := attachMonitor(t, s, "m1", []int{0, 1})
	m2 := attachMonitor(t, s, "m2", []int{2, 3})
	noc, _ := attachFakeNOC(t, s)

	send := func(c *transport.Conn, id string, iv int64, flows []int, vols []float64) {
		t.Helper()
		v := transport.VolumeReport{MonitorID: id, Interval: iv, FlowIDs: flows, Volumes: vols}
		if err := c.Send(transport.Envelope{Volume: &v}); err != nil {
			t.Fatalf("volume send: %v", err)
		}
	}
	// Half an interval: nothing may be forwarded yet.
	send(m1, "m1", 1, []int{0, 1}, []float64{10, 11})
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.intervals) == 1
	}, "partial interval buffered")
	if got := s.Stats().VolumeForwards; got != 0 {
		t.Fatalf("forwarded a partial interval (%d forwards)", got)
	}
	// Second half completes it.
	send(m2, "m2", 1, []int{2, 3}, []float64{12, 13})
	env := recvEnvelope(t, noc)
	if env.Volume == nil {
		t.Fatalf("expected merged volume report, got %+v", env)
	}
	if env.Volume.MonitorID != "agg-test" || env.Volume.Interval != 1 {
		t.Fatalf("merged header wrong: %+v", env.Volume)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(env.Volume.FlowIDs, want) {
		t.Fatalf("merged flows = %v, want %v", env.Volume.FlowIDs, want)
	}
	if want := []float64{10, 11, 12, 13}; !reflect.DeepEqual(env.Volume.Volumes, want) {
		t.Fatalf("merged volumes = %v, want %v", env.Volume.Volumes, want)
	}
}

func TestFetchMergesMonitorSketches(t *testing.T) {
	s := newTestAgg(t, testConfig())
	m1 := attachMonitor(t, s, "m1", []int{0, 1})
	m2 := attachMonitor(t, s, "m2", []int{4, 5})
	noc, _ := attachFakeNOC(t, s)

	if err := noc.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: 42}}); err != nil {
		t.Fatalf("request send: %v", err)
	}
	r1 := randprojReport(3, []int{0, 1})
	r2 := randprojReport(3, []int{4, 5})
	goServe(t, m1, "m1", r1)
	goServe(t, m2, "m2", r2)

	env := recvEnvelope(t, noc)
	if env.Response == nil {
		t.Fatalf("expected merged response, got %+v", env)
	}
	resp := env.Response
	if resp.RequestID != 42 || resp.MonitorID != "agg-test" {
		t.Fatalf("response header wrong: id %d monitor %q", resp.RequestID, resp.MonitorID)
	}
	if resp.Degraded || resp.StaleFlows != 0 {
		t.Fatalf("clean merge flagged degraded: %+v", resp)
	}
	if want := []int{0, 1, 4, 5}; !reflect.DeepEqual(resp.Report.FlowIDs, want) {
		t.Fatalf("merged flows = %v, want %v", resp.Report.FlowIDs, want)
	}
	if resp.Report.Interval != 3 {
		t.Fatalf("merged interval = %d, want 3", resp.Report.Interval)
	}
	// Column union must be byte-exact: flow 4's column comes straight from m2.
	if !reflect.DeepEqual(resp.Report.Sketches[2], r2.Sketches[0]) {
		t.Fatalf("flow 4 column altered by merge: %v vs %v", resp.Report.Sketches[2], r2.Sketches[0])
	}
	if err := resp.Report.Validate(testSketchLen); err != nil {
		t.Fatalf("merged report invalid: %v", err)
	}
}

func TestFetchSubstitutesCachedSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.FetchTimeout = 150 * time.Millisecond
	s := newTestAgg(t, cfg)
	m1 := attachMonitor(t, s, "m1", []int{0, 1})
	m2 := attachMonitor(t, s, "m2", []int{4, 5})
	noc, _ := attachFakeNOC(t, s)

	// First pull: both respond; the cache now holds both snapshots.
	if err := noc.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: 1}}); err != nil {
		t.Fatal(err)
	}
	goServe(t, m1, "m1", randprojReport(2, []int{0, 1}))
	goServe(t, m2, "m2", randprojReport(2, []int{4, 5}))
	if env := recvEnvelope(t, noc); env.Response == nil || env.Response.Degraded {
		t.Fatalf("warm-up pull failed: %+v", env)
	}

	// Second pull: m2 reads the request (the pipe is unbuffered, so someone
	// must — over TCP the kernel buffer would) but never answers. Its cached
	// interval-2 snapshot (age 1 against m1's fresh interval-3 report,
	// within MaxStaleness 4) fills in.
	go func() { _, _ = m2.Recv() }()
	if err := noc.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: 2}}); err != nil {
		t.Fatal(err)
	}
	goServe(t, m1, "m1", randprojReport(3, []int{0, 1}))
	env := recvEnvelope(t, noc)
	if env.Response == nil {
		t.Fatalf("expected degraded response, got %+v", env)
	}
	if !env.Response.Degraded || env.Response.StaleFlows != 2 {
		t.Fatalf("degraded = %v stale = %d, want true/2", env.Response.Degraded, env.Response.StaleFlows)
	}
	if want := []int{0, 1, 4, 5}; !reflect.DeepEqual(env.Response.Report.FlowIDs, want) {
		t.Fatalf("degraded merge flows = %v, want %v", env.Response.Report.FlowIDs, want)
	}
	if env.Response.Report.Interval != 3 {
		t.Fatalf("degraded merge interval = %d, want 3 (max of live + cached)", env.Response.Report.Interval)
	}
	_ = m2 // kept open but silent
}

func TestRegisterRejections(t *testing.T) {
	s := newTestAgg(t, testConfig())
	good := attachMonitor(t, s, "good", []int{0, 1})
	defer good.Close()

	cases := []struct {
		name  string
		hello transport.Hello
	}{
		{"family mismatch", transport.Hello{MonitorID: "bad", FlowIDs: []int{6}, SketchLen: testSketchLen, WindowLen: 16, Family: sketch.FamilyFD}},
		{"sketch len mismatch", transport.Hello{MonitorID: "bad", FlowIDs: []int{6}, SketchLen: testSketchLen + 1, WindowLen: 16, Family: sketch.FamilyRandProj, Seed: testSeed}},
		{"window mismatch", transport.Hello{MonitorID: "bad", FlowIDs: []int{6}, SketchLen: testSketchLen, WindowLen: 99, Family: sketch.FamilyRandProj, Seed: testSeed}},
		{"seed mismatch", transport.Hello{MonitorID: "bad", FlowIDs: []int{6}, SketchLen: testSketchLen, WindowLen: 16, Family: sketch.FamilyRandProj, Seed: testSeed + 1}},
		{"flow out of range", transport.Hello{MonitorID: "bad", FlowIDs: []int{testFlows}, SketchLen: testSketchLen, WindowLen: 16, Family: sketch.FamilyRandProj, Seed: testSeed}},
		{"flow conflict", transport.Hello{MonitorID: "bad", FlowIDs: []int{1}, SketchLen: testSketchLen, WindowLen: 16, Family: sketch.FamilyRandProj, Seed: testSeed}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mon, srv := transport.Pipe()
			defer mon.Close()
			go s.handleMonitor(srv)
			if err := mon.Send(transport.Envelope{Hello: &tc.hello}); err != nil {
				t.Fatal(err)
			}
			env := recvEnvelope(t, mon)
			if env.Error == nil {
				t.Fatalf("expected rejection, got %+v", env)
			}
		})
	}
	if got := s.Monitors(); len(got) != 1 || got[0] != "good" {
		t.Fatalf("registry polluted by rejects: %v", got)
	}
}

func TestShardMapPushedOnRegistration(t *testing.T) {
	cfg := testConfig()
	cfg.Peers = []string{"a:1", "b:1", "c:1"}
	cfg.ShardEpoch = 7
	s := newTestAgg(t, cfg)
	mon := attachMonitor(t, s, "m1", []int{0})
	env := recvEnvelope(t, mon)
	if env.Shards == nil {
		t.Fatalf("expected shard map after registration, got %+v", env)
	}
	if !reflect.DeepEqual(env.Shards.Aggregators, cfg.Peers) || env.Shards.Epoch != 7 {
		t.Fatalf("shard map = %+v, want %v epoch 7", env.Shards, cfg.Peers)
	}
}

func TestUnionChangeTriggersReHello(t *testing.T) {
	s := newTestAgg(t, testConfig())
	m1 := attachMonitor(t, s, "m1", []int{0, 1})
	defer m1.Close()
	noc, hello := attachFakeNOC(t, s)
	if want := []int{0, 1}; !reflect.DeepEqual(hello.FlowIDs, want) {
		t.Fatalf("initial union %v", hello.FlowIDs)
	}
	// A second monitor joining must re-announce the grown union upstream.
	m2 := attachMonitor(t, s, "m2", []int{6, 7})
	env := recvEnvelope(t, noc)
	if env.Hello == nil {
		t.Fatalf("expected re-hello, got %+v", env)
	}
	if want := []int{0, 1, 6, 7}; !reflect.DeepEqual(env.Hello.FlowIDs, want) {
		t.Fatalf("re-hello union = %v, want %v", env.Hello.FlowIDs, want)
	}
	// The monitor leaving must shrink it again.
	_ = m2.Close()
	env = recvEnvelope(t, noc)
	if env.Hello == nil {
		t.Fatalf("expected shrink re-hello, got %+v", env)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(env.Hello.FlowIDs, want) {
		t.Fatalf("post-drop union = %v, want %v", env.Hello.FlowIDs, want)
	}
}

// TestMonitorDropCompletesPendingInterval pins the flush path: an interval
// stuck waiting on a monitor that dies becomes complete the moment its flows
// leave the union, and the merged report goes upstream.
func TestMonitorDropCompletesPendingInterval(t *testing.T) {
	s := newTestAgg(t, testConfig())
	m1 := attachMonitor(t, s, "m1", []int{0, 1})
	m2 := attachMonitor(t, s, "m2", []int{2})
	noc, _ := attachFakeNOC(t, s)

	v := transport.VolumeReport{MonitorID: "m1", Interval: 5, FlowIDs: []int{0, 1}, Volumes: []float64{1, 2}}
	if err := m1.Send(transport.Envelope{Volume: &v}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.intervals) == 1
	}, "interval 5 pending")

	_ = m2.Close() // m2 never reports; its departure releases flow 2
	var vol *transport.VolumeReport
	for vol == nil {
		env := recvEnvelope(t, noc)
		if env.Volume != nil {
			vol = env.Volume
		}
		// A shrink re-hello may arrive before or after the flush.
	}
	if vol.Interval != 5 || !reflect.DeepEqual(vol.FlowIDs, []int{0, 1}) {
		t.Fatalf("flushed report = %+v", vol)
	}
}

func TestAlarmRebroadcast(t *testing.T) {
	s := newTestAgg(t, testConfig())
	m1 := attachMonitor(t, s, "m1", []int{0})
	m2 := attachMonitor(t, s, "m2", []int{1})
	noc, _ := attachFakeNOC(t, s)

	a := transport.Alarm{Interval: 9, Distance: 3.5, Threshold: 1.25}
	if err := noc.Send(transport.Envelope{Alarm: &a}); err != nil {
		t.Fatal(err)
	}
	for _, mon := range []*transport.Conn{m1, m2} {
		env := recvEnvelope(t, mon)
		if env.Alarm == nil {
			t.Fatalf("expected relayed alarm, got %+v", env)
		}
		if env.Alarm.Interval != 9 || env.Alarm.Distance != 3.5 {
			t.Fatalf("alarm mangled: %+v", env.Alarm)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{ID: "a", Family: sketch.FamilyRandProj, NumFlows: 0, WindowLen: 1, SketchLen: 1},
		{ID: "a", Family: sketch.FamilyRandProj, NumFlows: 1, WindowLen: 0, SketchLen: 1},
		{ID: "a", Family: sketch.FamilyRandProj, NumFlows: 1, WindowLen: 1, SketchLen: 0},
		{ID: "a", Family: sketch.Family(99), NumFlows: 1, WindowLen: 1, SketchLen: 1},
		{ID: "a", Family: sketch.FamilyRandProj, NumFlows: 1, WindowLen: 1, SketchLen: 1, FetchRetries: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
