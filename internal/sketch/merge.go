package sketch

import (
	"fmt"
	"math"
	"sort"
)

// Merge combines same-family snapshots over pairwise-disjoint flow sets into
// one snapshot covering the union — the column-shard merge a mid-tier
// aggregator applies before forwarding a single report upstream.
//
//   - RandProj: the sketch Ẑ = (1/√l)RᵀY is columnwise per flow, so the merge
//     is an exact column union — the merged snapshot carries byte-identical
//     per-flow vectors to the inputs', which is what makes a federated
//     topology's alarm decisions byte-identical to a flat NOC's.
//   - FD: the inputs are column shards of the same row stream, so the merged
//     buffer summarizes the block-diagonal union matrix: every input row is
//     zero-padded to the union width and inserted into a fresh FD with the
//     same budget ℓ. The deterministic guarantee composes additively:
//     ‖AᵀA − BᵀB‖₂ ≤ Σ inputs' Δ + the merge's own shrinkage. Per-flow means
//     and counts come from the owning input (each input centered its own
//     columns; FD.Absorb's count summing is for row shards and must not be
//     used here).
//
// The result is independent of input order: inputs are sorted by their
// smallest flow id before merging (flow sets are disjoint, so the order is
// total), the randproj union is additionally sorted by flow id, and the FD
// insertion path is bit-deterministic for any worker count. sketchParam is
// the family's shared parameter (l for RandProj, ℓ for FD); workers bounds
// the FD merge's kernel goroutines.
//
// A single input is passed through as a deep copy, byte-identical — an
// aggregator fronting one monitor adds no approximation.
func Merge(snaps []Snapshot, sketchParam, workers int) (Snapshot, error) {
	if len(snaps) == 0 {
		return Snapshot{}, fmt.Errorf("%w: merge of no snapshots", ErrInput)
	}
	family := snaps[0].Family
	seen := make(map[int]struct{})
	for i := range snaps {
		s := &snaps[i]
		if s.Family != family {
			return Snapshot{}, fmt.Errorf("%w: merge mixes families %v and %v", ErrInput, family, s.Family)
		}
		if err := s.Validate(sketchParam); err != nil {
			return Snapshot{}, fmt.Errorf("merge input %d: %w", i, err)
		}
		if len(s.FlowIDs) == 0 {
			return Snapshot{}, fmt.Errorf("%w: merge input %d covers no flows", ErrInput, i)
		}
		for _, id := range s.FlowIDs {
			if _, dup := seen[id]; dup {
				return Snapshot{}, fmt.Errorf("%w: flow %d reported by two merge inputs", ErrInput, id)
			}
			seen[id] = struct{}{}
		}
	}
	if len(snaps) == 1 {
		return copySnapshot(&snaps[0]), nil
	}
	// Canonical input order: ascending smallest flow id. Disjointness makes
	// this a total order, so any arrival order merges identically.
	order := make([]int, len(snaps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return minFlow(&snaps[order[a]]) < minFlow(&snaps[order[b]])
	})
	switch family {
	case FamilyRandProj:
		return mergeRandProj(snaps, order), nil
	case FamilyFD:
		return mergeFD(snaps, order, sketchParam, workers)
	default:
		return Snapshot{}, fmt.Errorf("%w: merge of unknown family %d", ErrInput, int(family))
	}
}

func minFlow(s *Snapshot) int {
	min := s.FlowIDs[0]
	for _, id := range s.FlowIDs[1:] {
		if id < min {
			min = id
		}
	}
	return min
}

// copySnapshot deep-copies a snapshot so the merge result never aliases an
// input's slices (inputs may be cached and reused by the caller).
func copySnapshot(s *Snapshot) Snapshot {
	out := *s
	out.FlowIDs = append([]int(nil), s.FlowIDs...)
	out.Means = append([]float64(nil), s.Means...)
	out.Counts = append([]int64(nil), s.Counts...)
	out.Buckets = append([]int(nil), s.Buckets...)
	if s.Sketches != nil {
		out.Sketches = make([][]float64, len(s.Sketches))
		for i, v := range s.Sketches {
			out.Sketches[i] = append([]float64(nil), v...)
		}
	}
	if s.FDRows != nil {
		out.FDRows = make([][]float64, len(s.FDRows))
		for i, v := range s.FDRows {
			out.FDRows[i] = append([]float64(nil), v...)
		}
	}
	return out
}

// mergeRandProj performs the exact column union, sorted by global flow id.
// Buckets and Counts are carried when the input provides them (they are
// diagnostics, not part of Validate's contract).
func mergeRandProj(snaps []Snapshot, order []int) Snapshot {
	type column struct {
		id      int
		sketch  []float64
		mean    float64
		count   int64
		buckets int
	}
	var cols []column
	var interval int64
	for _, si := range order {
		s := &snaps[si]
		if s.Interval > interval {
			interval = s.Interval
		}
		for i, id := range s.FlowIDs {
			c := column{id: id, sketch: append([]float64(nil), s.Sketches[i]...), mean: s.Means[i]}
			if i < len(s.Counts) {
				c.count = s.Counts[i]
			}
			if i < len(s.Buckets) {
				c.buckets = s.Buckets[i]
			}
			cols = append(cols, c)
		}
	}
	sort.Slice(cols, func(a, b int) bool { return cols[a].id < cols[b].id })
	out := Snapshot{
		Interval: interval,
		Family:   FamilyRandProj,
		FlowIDs:  make([]int, len(cols)),
		Sketches: make([][]float64, len(cols)),
		Means:    make([]float64, len(cols)),
		Counts:   make([]int64, len(cols)),
		Buckets:  make([]int, len(cols)),
	}
	for i, c := range cols {
		out.FlowIDs[i] = c.id
		out.Sketches[i] = c.sketch
		out.Means[i] = c.mean
		out.Counts[i] = c.count
		out.Buckets[i] = c.buckets
	}
	return out
}

// mergeFD summarizes the block-diagonal union of column-sharded FD buffers:
// a fresh FD over the sorted union flow set ingests every input row
// zero-padded to the union width (shrinking as it fills), and the inputs' Δ
// are added on top of the merge's own shrinkage.
func mergeFD(snaps []Snapshot, order []int, ell, workers int) (Snapshot, error) {
	var union []int
	for i := range snaps {
		union = append(union, snaps[i].FlowIDs...)
	}
	sort.Ints(union)
	pos := make(map[int]int, len(union))
	for i, id := range union {
		pos[id] = i
	}
	fd, err := NewFD(Config{Family: FamilyFD, FlowIDs: union, Ell: ell, Workers: workers})
	if err != nil {
		return Snapshot{}, fmt.Errorf("fd merge: %w", err)
	}
	w := len(union)
	row := make([]float64, w)
	means := make([]float64, w)
	counts := make([]int64, w)
	var childDelta float64
	var interval int64
	for _, si := range order {
		s := &snaps[si]
		if s.Interval > interval {
			interval = s.Interval
		}
		childDelta += s.FDDelta
		cols := make([]int, len(s.FlowIDs))
		for i, id := range s.FlowIDs {
			cols[i] = pos[id]
			means[pos[id]] = s.Means[i]
			if i < len(s.Counts) {
				counts[pos[id]] = s.Counts[i]
			}
		}
		for _, r := range s.FDRows {
			for i := range row {
				row[i] = 0
			}
			for i, v := range r {
				row[cols[i]] = v
			}
			if err := fd.insertRow(row); err != nil {
				return Snapshot{}, fmt.Errorf("fd merge: %w", err)
			}
		}
	}
	delta := fd.delta + childDelta
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return Snapshot{}, fmt.Errorf("%w: fd merge overflows Δ", ErrInput)
	}
	out := Snapshot{
		Interval: interval,
		Family:   FamilyFD,
		FlowIDs:  union,
		Means:    means,
		Counts:   counts,
		FDRows:   make([][]float64, fd.used),
		FDDelta:  delta,
		FDEll:    ell,
	}
	for i := 0; i < fd.used; i++ {
		out.FDRows[i] = append([]float64(nil), fd.buf.RowView(i)...)
	}
	return out, nil
}
