package sketch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/randproj"
)

// centerStream replays FD's running-mean centering over raw rows, returning
// the rows exactly as the sketcher inserted them.
func centerStream(rows [][]float64) *mat.Matrix {
	w := len(rows[0])
	sums := make([]float64, w)
	out := mat.NewMatrix(len(rows), w)
	for t, row := range rows {
		dst := out.RowView(t)
		for i, v := range row {
			mean := 0.0
			if t > 0 {
				mean = sums[i] / float64(t)
			}
			dst[i] = v - mean
			sums[i] += v
		}
	}
	return out
}

// spectralNorm returns ‖s‖₂ for a symmetric matrix via its eigenvalues.
func spectralNorm(t *testing.T, s *mat.Matrix) float64 {
	t.Helper()
	eig, err := mat.SymEigen(s)
	if err != nil {
		t.Fatalf("SymEigen: %v", err)
	}
	mx := 0.0
	for _, l := range eig.Values {
		if a := math.Abs(l); a > mx {
			mx = a
		}
	}
	return mx
}

// covGap returns ‖AᵀA − BᵀB‖₂ where b holds the sketch rows.
func covGap(t *testing.T, a *mat.Matrix, fdRows [][]float64, w int) float64 {
	t.Helper()
	b := mat.NewMatrix(len(fdRows), w)
	for i, row := range fdRows {
		copy(b.RowView(i), row)
	}
	diff, err := a.Gram().Sub(b.Gram())
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	return spectralNorm(t, diff)
}

func randRows(seed int64, n, w int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for t := range rows {
		rows[t] = make([]float64, w)
		for i := range rows[t] {
			rows[t][i] = 100 + 10*rng.NormFloat64()
		}
	}
	return rows
}

func flowIDs(w int) []int {
	ids := make([]int, w)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestParseFamily(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Family
	}{{"", FamilyRandProj}, {"randproj", FamilyRandProj}, {"fd", FamilyFD}} {
		got, err := ParseFamily(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFamily(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseFamily("nope"); !errors.Is(err, ErrConfig) {
		t.Fatalf("ParseFamily(nope) err = %v, want ErrConfig", err)
	}
	if FamilyRandProj.String() != "randproj" || FamilyFD.String() != "fd" {
		t.Fatalf("Family strings: %v %v", FamilyRandProj, FamilyFD)
	}
}

func TestNewFactorySelectsFamily(t *testing.T) {
	gen, err := randproj.NewGenerator(randproj.Config{Seed: 1, SketchLen: 8, WindowLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := New(Config{FlowIDs: flowIDs(3), WindowLen: 64, Epsilon: 0.1, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Family() != FamilyRandProj {
		t.Fatalf("default family %v", sk.Family())
	}
	sk, err = New(Config{Family: FamilyFD, FlowIDs: flowIDs(9), Ell: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Family() != FamilyFD {
		t.Fatalf("fd family %v", sk.Family())
	}
	if _, err := New(Config{Family: Family(9), FlowIDs: flowIDs(3)}); !errors.Is(err, ErrConfig) {
		t.Fatalf("unknown family err = %v", err)
	}
}

func TestFDDeterministicBound(t *testing.T) {
	const w, n, ell = 12, 400, 5
	rows := randRows(7, n, w)
	fd, err := NewFD(Config{Family: FamilyFD, FlowIDs: flowIDs(w), Ell: ell})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if err := fd.Update(int64(i+1), row); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	a := centerStream(rows)
	snap := fd.Snapshot()
	if err := snap.Validate(ell); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	gap := covGap(t, a, snap.FDRows, w)
	// Numerical slack: the bound is exact in real arithmetic.
	tol := 1e-6 * a.Gram().FrobeniusNorm()
	if gap > fd.Delta()+tol {
		t.Fatalf("‖AᵀA−BᵀB‖₂ = %v exceeds Δ = %v", gap, fd.Delta())
	}
	fro := a.FrobeniusNorm()
	if fd.Delta() > fro*fro/float64(ell)+tol {
		t.Fatalf("Δ = %v exceeds ‖A‖²_F/ℓ = %v", fd.Delta(), fro*fro/float64(ell))
	}
	if fd.Delta() == 0 {
		t.Fatal("Δ stayed 0 over 400 rows: shrink never ran")
	}
	if snap.Interval != int64(n) || fd.Now() != int64(n) {
		t.Fatalf("interval %d, want %d", snap.Interval, n)
	}
	if got := snap.Counts[0]; got != int64(n) {
		t.Fatalf("count %d, want %d", got, n)
	}
}

func TestFDMeansTrackStream(t *testing.T) {
	const w, n = 8, 50
	rows := randRows(11, n, w)
	fd, err := NewFD(Config{FlowIDs: flowIDs(w), Ell: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, w)
	for i, row := range rows {
		if err := fd.Update(int64(i+1), row); err != nil {
			t.Fatal(err)
		}
		for j, v := range row {
			want[j] += v
		}
	}
	snap := fd.Snapshot()
	for j := range want {
		if got := snap.Means[j]; math.Abs(got-want[j]/n) > 1e-9 {
			t.Fatalf("mean[%d] = %v, want %v", j, got, want[j]/n)
		}
	}
}

func TestFDUpdateErrors(t *testing.T) {
	fd, err := NewFD(Config{FlowIDs: flowIDs(5), Ell: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Update(1, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatalf("short row err = %v", err)
	}
	if err := fd.Update(1, []float64{1, 2, 3, 4, math.NaN()}); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN err = %v", err)
	}
	if err := fd.Update(1, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := fd.Update(1, []float64{1, 2, 3, 4, 5}); !errors.Is(err, ErrInput) {
		t.Fatalf("repeated interval err = %v", err)
	}
	if _, err := NewFD(Config{FlowIDs: nil, Ell: 2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty flows err = %v", err)
	}
	if _, err := NewFD(Config{FlowIDs: flowIDs(5), Ell: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative ell err = %v", err)
	}
}

// TestNewFDRejectsVacuousBudget covers the 2ℓ < w boundary: at 2ℓ = w the
// buffer already costs as much as the exact Gram matrix, so NewFD refuses
// with the typed ErrFDBudget (which still satisfies errors.Is ErrConfig).
func TestNewFDRejectsVacuousBudget(t *testing.T) {
	if _, err := NewFD(Config{FlowIDs: flowIDs(12), Ell: 6}); !errors.Is(err, ErrFDBudget) {
		t.Fatalf("2ℓ = w err = %v, want ErrFDBudget", err)
	}
	if _, err := NewFD(Config{FlowIDs: flowIDs(12), Ell: 7}); !errors.Is(err, ErrConfig) {
		t.Fatalf("2ℓ > w err = %v, want ErrConfig via ErrFDBudget", err)
	}
	if _, err := NewFD(Config{FlowIDs: flowIDs(13), Ell: 6}); err != nil {
		t.Fatalf("2ℓ = w−1 must be accepted: %v", err)
	}
	// w ≤ 2 admits no budget at all (even ℓ = 1 has 2ℓ ≥ w).
	for w := 1; w <= 2; w++ {
		if _, err := NewFD(Config{FlowIDs: flowIDs(w), Ell: 1}); !errors.Is(err, ErrFDBudget) {
			t.Fatalf("w = %d err = %v, want ErrFDBudget", w, err)
		}
		if _, err := NewFD(Config{FlowIDs: flowIDs(w)}); !errors.Is(err, ErrFDBudget) {
			t.Fatalf("w = %d defaulted err = %v, want ErrFDBudget", w, err)
		}
	}
	// The defaulted budget always clears the bound for any usable width.
	for w := 3; w <= 64; w++ {
		if _, err := NewFD(Config{FlowIDs: flowIDs(w)}); err != nil {
			t.Fatalf("defaulted ell at w = %d: %v", w, err)
		}
	}
}

func TestFDAbsorbRowShards(t *testing.T) {
	const w, n, ell = 10, 300, 4
	rows := randRows(23, n, w)
	// Monolithic reference over all rows.
	mono, err := NewFD(Config{FlowIDs: flowIDs(w), Ell: ell})
	if err != nil {
		t.Fatal(err)
	}
	// Two row shards: even and odd intervals.
	shards := [2]*FD{}
	for s := range shards {
		shards[s], err = NewFD(Config{FlowIDs: flowIDs(w), Ell: ell})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, row := range rows {
		if err := mono.Update(int64(i+1), row); err != nil {
			t.Fatal(err)
		}
		if err := shards[i%2].Update(int64(i+1), row); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := NewFD(Config{FlowIDs: flowIDs(w), Ell: ell})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		if err := merged.Absorb(s.Snapshot()); err != nil {
			t.Fatalf("Absorb: %v", err)
		}
	}
	// The merged sketch's guarantee is against the union of rows as each
	// shard inserted them (each shard centered by its own running means).
	union := make([][]float64, 0, n)
	for s := range shards {
		sums := make([]float64, w)
		c := 0
		for i, row := range rows {
			if i%2 != s {
				continue
			}
			cr := make([]float64, w)
			for j, v := range row {
				mean := 0.0
				if c > 0 {
					mean = sums[j] / float64(c)
				}
				cr[j] = v - mean
				sums[j] += v
			}
			c++
			union = append(union, cr)
		}
	}
	a := mat.NewMatrix(len(union), w)
	for i, r := range union {
		copy(a.RowView(i), r)
	}
	snap := merged.Snapshot()
	gap := covGap(t, a, snap.FDRows, w)
	tol := 1e-6 * a.Gram().FrobeniusNorm()
	if gap > merged.Delta()+tol {
		t.Fatalf("merged ‖AᵀA−BᵀB‖₂ = %v exceeds Δ = %v", gap, merged.Delta())
	}
	// Count/means merge: every row was seen exactly once.
	if got := snap.Counts[0]; got != int64(n) {
		t.Fatalf("merged count %d, want %d", got, n)
	}
	monoSnap := mono.Snapshot()
	for j := range snap.Means {
		if math.Abs(snap.Means[j]-monoSnap.Means[j]) > 1e-9 {
			t.Fatalf("merged mean[%d] = %v, mono %v", j, snap.Means[j], monoSnap.Means[j])
		}
	}
}

func TestFDAbsorbRejectsMismatch(t *testing.T) {
	fd, err := NewFD(Config{FlowIDs: flowIDs(5), Ell: 2})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewFD(Config{FlowIDs: []int{7, 8, 9, 10, 11}, Ell: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Absorb(other.Snapshot()); !errors.Is(err, ErrInput) {
		t.Fatalf("flow mismatch err = %v", err)
	}
	rp := Snapshot{Family: FamilyRandProj}
	if err := fd.Absorb(rp); !errors.Is(err, ErrInput) {
		t.Fatalf("family mismatch err = %v", err)
	}
	wrongEll, err := NewFD(Config{FlowIDs: flowIDs(9), Ell: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Absorb(wrongEll.Snapshot()); !errors.Is(err, ErrInput) {
		t.Fatalf("ell mismatch err = %v", err)
	}
}

func TestSnapshotValidateFD(t *testing.T) {
	good := Snapshot{
		FlowIDs: []int{0, 1},
		Means:   []float64{1, 2},
		Family:  FamilyFD,
		FDRows:  [][]float64{{1, 2}, {3, 4}},
		FDEll:   2,
	}
	if err := good.Validate(2); err != nil {
		t.Fatalf("good snapshot: %v", err)
	}
	for name, mut := range map[string]func(s *Snapshot){
		"wrong ell":      func(s *Snapshot) { s.FDEll = 3 },
		"too many rows":  func(s *Snapshot) { s.FDRows = make([][]float64, 5); s.fillRows(2) },
		"ragged row":     func(s *Snapshot) { s.FDRows = [][]float64{{1}} },
		"nan row":        func(s *Snapshot) { s.FDRows = [][]float64{{math.NaN(), 0}} },
		"negative delta": func(s *Snapshot) { s.FDDelta = -1 },
		"nan mean":       func(s *Snapshot) { s.Means = []float64{math.Inf(1), 0} },
		"short means":    func(s *Snapshot) { s.Means = []float64{1} },
		"bad family":     func(s *Snapshot) { s.Family = Family(9) },
	} {
		s := good
		mut(&s)
		if err := s.Validate(2); !errors.Is(err, ErrInput) {
			t.Fatalf("%s: err = %v, want ErrInput", name, err)
		}
	}
}

// fillRows populates FDRows with zero rows of width w (test helper for the
// too-many-rows case).
func (s *Snapshot) fillRows(w int) {
	for i := range s.FDRows {
		s.FDRows[i] = make([]float64, w)
	}
}

func TestRandProjSnapshotMatchesValidate(t *testing.T) {
	const w, l, window = 5, 8, 32
	gen, err := randproj.NewGenerator(randproj.Config{Seed: 3, SketchLen: l, WindowLen: window})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewRandProj(Config{FlowIDs: flowIDs(w), WindowLen: window, Epsilon: 0.1, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	rows := randRows(5, 20, w)
	for i, row := range rows {
		if err := sk.Update(int64(i+1), row); err != nil {
			t.Fatal(err)
		}
	}
	snap := sk.Snapshot()
	if err := snap.Validate(l); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if snap.Family != FamilyRandProj {
		t.Fatalf("family %v", snap.Family)
	}
	if err := snap.Validate(l + 1); !errors.Is(err, ErrInput) {
		t.Fatalf("wrong-l err = %v", err)
	}
	if sk.StateSize() <= 0 {
		t.Fatal("StateSize must count histogram buckets")
	}
	if sk.Histogram(0) == nil || sk.Histogram(-1) != nil || sk.Histogram(w) != nil {
		t.Fatal("Histogram accessor bounds")
	}
	if snap.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive")
	}
}

func TestDefaultEll(t *testing.T) {
	if got := DefaultEll(81); got != 18 {
		t.Fatalf("DefaultEll(81) = %d, want 18", got)
	}
	if got := DefaultEll(0); got != 2 {
		t.Fatalf("DefaultEll(0) = %d, want 2", got)
	}
	if got := DefaultEll(256); got != 32 {
		t.Fatalf("DefaultEll(256) = %d, want 32", got)
	}
	// Narrow shards clamp to MaxEll so the default clears the 2ℓ < w bound:
	// 2·⌈√20⌉ = 10 would tie the width, (20−1)/2 = 9 does not.
	if got := DefaultEll(20); got != 9 {
		t.Fatalf("DefaultEll(20) = %d, want 9", got)
	}
	if got := DefaultEll(4); got != 1 {
		t.Fatalf("DefaultEll(4) = %d, want 1", got)
	}
	for w := 3; w <= 512; w++ {
		if ell := DefaultEll(w); 2*ell >= w {
			t.Fatalf("DefaultEll(%d) = %d violates 2ℓ < w", w, ell)
		}
	}
}

// TestRandProjAdditiveLinearity: the randproj sketch is linear in the volume
// stream — ẑ(A+B) = ẑ(A) + ẑ(B) for streams over the same intervals (eq. 17
// is a linear functional of x once the shared r_tk are fixed). This is the
// property the NOC's merge-by-addition aggregation of same-flow shards rests
// on; it holds exactly while no interval has expired from the window.
func TestRandProjAdditiveLinearity(t *testing.T) {
	const w, l, window = 4, 8, 64
	gen, err := randproj.NewGenerator(randproj.Config{Seed: 17, SketchLen: l, WindowLen: window})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *RandProj {
		sk, err := NewRandProj(Config{FlowIDs: flowIDs(w), WindowLen: window, Epsilon: 0.1, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		return sk
	}
	skA, skB, skSum := mk(), mk(), mk()
	a := randRows(100, 48, w)
	b := randRows(200, 48, w)
	sum := make([]float64, w)
	for i := range a {
		tt := int64(i + 1)
		if err := skA.Update(tt, a[i]); err != nil {
			t.Fatal(err)
		}
		if err := skB.Update(tt, b[i]); err != nil {
			t.Fatal(err)
		}
		for j := range sum {
			sum[j] = a[i][j] + b[i][j]
		}
		if err := skSum.Update(tt, sum); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb, ss := skA.Snapshot(), skB.Snapshot(), skSum.Snapshot()
	for j := 0; j < w; j++ {
		if diff := math.Abs(sa.Means[j] + sb.Means[j] - ss.Means[j]); diff > 1e-9 {
			t.Fatalf("means not additive at flow %d (diff %v)", j, diff)
		}
		for k := 0; k < l; k++ {
			got := sa.Sketches[j][k] + sb.Sketches[j][k]
			want := ss.Sketches[j][k]
			if diff := math.Abs(got - want); diff > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("sketch not additive at flow %d k %d: %v vs %v", j, k, got, want)
			}
		}
	}
}
