package sketch

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"math"
	"testing"
)

// FuzzFDAbsorbSnapshot drives hostile FD snapshots through the same path a
// NOC-side aggregator would: gob round-trip (the wire format) followed by
// Validate and Absorb. The invariants: no panics, Absorb only ever fails
// with typed ErrInput, and a snapshot that Absorb accepts leaves the
// sketcher in a state whose own Snapshot still validates.
func FuzzFDAbsorbSnapshot(f *testing.F) {
	// Seed corpus: a well-formed two-flow snapshot and a few mutations.
	seed := func(ell, flows, rows int, delta float64, vals ...float64) []byte {
		var buf bytes.Buffer
		w := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
		w(uint64(ell))
		w(uint64(flows))
		w(uint64(rows))
		w(math.Float64bits(delta))
		for _, v := range vals {
			w(math.Float64bits(v))
		}
		return buf.Bytes()
	}
	f.Add(seed(2, 2, 2, 0.5, 1, 2, 3, 4, 5, 6))
	f.Add(seed(2, 2, 5, -1, 1))
	f.Add(seed(0, 0, 0, math.NaN()))
	f.Add(seed(2, 3, 1, math.Inf(1), 1, 2, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the fuzz input into a snapshot shape.
		rd := bytes.NewReader(data)
		next := func() uint64 {
			var v uint64
			if err := binary.Read(rd, binary.LittleEndian, &v); err != nil {
				return 0
			}
			return v
		}
		ell := int(next() % 8)
		flows := int(next() % 8)
		rows := int(next() % 24)
		snap := Snapshot{
			Family:  FamilyFD,
			FDEll:   ell,
			FDDelta: math.Float64frombits(next()),
			FlowIDs: make([]int, flows),
			Means:   make([]float64, flows),
			Counts:  make([]int64, flows),
			FDRows:  make([][]float64, rows),
		}
		for i := range snap.FlowIDs {
			snap.FlowIDs[i] = i
			snap.Means[i] = math.Float64frombits(next())
			snap.Counts[i] = int64(next() % 1000)
		}
		for i := range snap.FDRows {
			snap.FDRows[i] = make([]float64, flows)
			for j := range snap.FDRows[i] {
				snap.FDRows[i][j] = math.Float64frombits(next())
			}
		}

		// Wire round-trip: what the aggregator decodes must be what was sent.
		var wire bytes.Buffer
		if err := gob.NewEncoder(&wire).Encode(snap); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var back Snapshot
		if err := gob.NewDecoder(&wire).Decode(&back); err != nil {
			t.Fatalf("gob decode: %v", err)
		}

		fd, err := NewFD(Config{FlowIDs: []int{0, 1, 2, 3, 4, 5, 6}, Ell: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Update(1, []float64{1, 2, 3, 4, 5, 6, 7}); err != nil {
			t.Fatal(err)
		}
		if err := fd.Absorb(back); err != nil {
			if !errors.Is(err, ErrInput) {
				t.Fatalf("Absorb error not typed ErrInput: %v", err)
			}
			return
		}
		// Accepted: the merged state must still be a valid snapshot.
		out := fd.Snapshot()
		if err := out.Validate(fd.Ell()); err != nil {
			t.Fatalf("post-absorb snapshot invalid: %v", err)
		}
	})
}
