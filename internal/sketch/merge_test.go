package sketch

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/randproj"
)

// shardSnapshots feeds one shared stream through per-shard sketchers of the
// given family and returns their snapshots. assign holds each shard's global
// flow ids; rows[t][j] is the volume of global flow j at interval t+1.
func shardSnapshots(t *testing.T, family Family, assign [][]int, sketchParam, window int, rows [][]float64) []Snapshot {
	t.Helper()
	var gen *randproj.Generator
	if family == FamilyRandProj {
		var err error
		gen, err = randproj.NewGenerator(randproj.Config{Seed: 12, SketchLen: sketchParam, WindowLen: window})
		if err != nil {
			t.Fatal(err)
		}
	}
	out := make([]Snapshot, len(assign))
	for si, ids := range assign {
		sk, err := New(Config{
			Family: family, FlowIDs: ids, WindowLen: window,
			Epsilon: 0.1, Gen: gen, Ell: sketchParam,
		})
		if err != nil {
			t.Fatal(err)
		}
		local := make([]float64, len(ids))
		for ti, row := range rows {
			for i, id := range ids {
				local[i] = row[id]
			}
			if err := sk.Update(int64(ti+1), local); err != nil {
				t.Fatal(err)
			}
		}
		out[si] = sk.Snapshot()
	}
	return out
}

func globalRows(seed int64, n, m int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for t := range rows {
		rows[t] = make([]float64, m)
		for j := range rows[t] {
			rows[t][j] = 500 + 50*rng.NormFloat64()
		}
	}
	return rows
}

// TestMergeRandProjExactUnion: the randproj merge is a per-flow column union —
// every merged column is byte-identical to the owning shard's, sorted by
// global flow id.
func TestMergeRandProjExactUnion(t *testing.T) {
	const m, l, window, n = 12, 8, 64, 40
	assign := [][]int{{0, 3, 6, 9}, {1, 4, 7, 10}, {2, 5, 8, 11}}
	rows := globalRows(31, n, m)
	snaps := shardSnapshots(t, FamilyRandProj, assign, l, window, rows)

	merged, err := Merge(snaps, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(l); err != nil {
		t.Fatalf("merged snapshot invalid: %v", err)
	}
	if len(merged.FlowIDs) != m {
		t.Fatalf("merged covers %d flows, want %d", len(merged.FlowIDs), m)
	}
	for i, id := range merged.FlowIDs {
		if id != i {
			t.Fatalf("merged flow order %v not sorted", merged.FlowIDs)
		}
	}
	if merged.Interval != int64(n) {
		t.Fatalf("merged interval %d, want %d", merged.Interval, n)
	}
	// Locate each flow in its owning shard and demand byte identity.
	for si, ids := range assign {
		for i, id := range ids {
			if !reflect.DeepEqual(merged.Sketches[id], snaps[si].Sketches[i]) {
				t.Fatalf("flow %d sketch differs from shard %d", id, si)
			}
			if merged.Means[id] != snaps[si].Means[i] || merged.Counts[id] != snaps[si].Counts[i] {
				t.Fatalf("flow %d mean/count differ from shard %d", id, si)
			}
		}
	}
}

// TestMergeOrderIndependence (the S3 determinism bugfix): any arrival order
// of the shard snapshots must produce a byte-identical merged snapshot, for
// both families — federated decisions cannot be allowed to drift with the
// order aggregator responses happen to land in.
func TestMergeOrderIndependence(t *testing.T) {
	const m, window, n = 15, 64, 60
	assign := [][]int{{0, 3, 6, 9, 12}, {1, 4, 7, 10, 13}, {2, 5, 8, 11, 14}}
	rows := globalRows(32, n, m)
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}, {0, 2, 1}, {1, 0, 2}}

	for _, tc := range []struct {
		family Family
		param  int
	}{{FamilyRandProj, 8}, {FamilyFD, 2}} {
		snaps := shardSnapshots(t, tc.family, assign, tc.param, window, rows)
		base, err := Merge(snaps, tc.param, 0)
		if err != nil {
			t.Fatalf("%v: %v", tc.family, err)
		}
		for _, p := range perms {
			shuffled := make([]Snapshot, len(p))
			for i, idx := range p {
				shuffled[i] = snaps[idx]
			}
			got, err := Merge(shuffled, tc.param, 0)
			if err != nil {
				t.Fatalf("%v perm %v: %v", tc.family, p, err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%v: merge of order %v differs from canonical", tc.family, p)
			}
		}
		// Worker count must not affect the result either (FD shrink kernels
		// are bit-deterministic by construction).
		for _, workers := range []int{1, 2, 4} {
			got, err := Merge(snaps, tc.param, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%v: merge at %d workers differs", tc.family, workers)
			}
		}
	}
}

// TestMergeFDGuarantee: the merged FD buffer keeps the composed deterministic
// bound ‖AᵀA − BᵀB‖₂ ≤ Δ_merged over the block-diagonal union matrix of the
// shards' (individually centered) row streams.
func TestMergeFDGuarantee(t *testing.T) {
	const m, ell, n = 14, 2, 120
	assign := [][]int{{0, 1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12, 13}}
	rows := globalRows(33, n, m)
	snaps := shardSnapshots(t, FamilyFD, assign, ell, 0, rows)
	merged, err := Merge(snaps, ell, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(ell); err != nil {
		t.Fatalf("merged snapshot invalid: %v", err)
	}
	var wantDelta float64
	for _, s := range snaps {
		wantDelta += s.FDDelta
	}
	if merged.FDDelta < wantDelta {
		t.Fatalf("merged Δ = %v below the sum of inputs' %v", merged.FDDelta, wantDelta)
	}
	// The union matrix: each shard's centered rows zero-padded to width m.
	// Row order is irrelevant to AᵀA.
	var union [][]float64
	for si, ids := range assign {
		local := make([][]float64, n)
		for ti := range rows {
			local[ti] = make([]float64, len(ids))
			for i, id := range ids {
				local[ti][i] = rows[ti][id]
			}
		}
		centered := centerStream(local)
		for ti := 0; ti < n; ti++ {
			full := make([]float64, m)
			for i, id := range ids {
				full[id] = centered.At(ti, i)
			}
			union = append(union, full)
		}
		_ = si
	}
	a := mat.NewMatrix(len(union), m)
	for i, r := range union {
		copy(a.RowView(i), r)
	}
	gap := covGap(t, a, merged.FDRows, m)
	tol := 1e-6 * a.Gram().FrobeniusNorm()
	if gap > merged.FDDelta+tol {
		t.Fatalf("merged ‖AᵀA−BᵀB‖₂ = %v exceeds Δ = %v", gap, merged.FDDelta)
	}
	// Per-flow means come from the owning shard, never averaged across shards.
	for si, ids := range assign {
		for i, id := range ids {
			idx := -1
			for k, fid := range merged.FlowIDs {
				if fid == id {
					idx = k
					break
				}
			}
			if idx < 0 {
				t.Fatalf("flow %d missing from merge", id)
			}
			if math.Abs(merged.Means[idx]-snaps[si].Means[i]) > 0 {
				t.Fatalf("flow %d mean %v, want shard's %v", id, merged.Means[idx], snaps[si].Means[i])
			}
			if merged.Counts[idx] != int64(n) {
				t.Fatalf("flow %d count %d, want %d", id, merged.Counts[idx], n)
			}
		}
	}
}

// TestMergeSingleInputPassThrough: an aggregator fronting one monitor must
// forward its snapshot byte-identically (deep copy, no re-sketching) — the
// property the FD flat-vs-federated differential test rests on.
func TestMergeSingleInputPassThrough(t *testing.T) {
	const n = 50
	assign := [][]int{{4, 1, 9, 6, 2, 0, 3}}
	rows := globalRows(34, n, 10)
	for _, tc := range []struct {
		family Family
		param  int
	}{{FamilyRandProj, 8}, {FamilyFD, 3}} {
		snaps := shardSnapshots(t, tc.family, assign, tc.param, 64, rows)
		got, err := Merge(snaps, tc.param, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, snaps[0]) {
			t.Fatalf("%v: single-input merge not a pass-through", tc.family)
		}
		// Deep copy: mutating the result must not reach the input.
		if len(got.Means) > 0 {
			got.Means[0]++
			if got.Means[0] == snaps[0].Means[0] {
				t.Fatalf("%v: merge result aliases its input", tc.family)
			}
		}
	}
}

func TestMergeRejects(t *testing.T) {
	const n = 20
	rows := globalRows(35, n, 10)
	rp := shardSnapshots(t, FamilyRandProj, [][]int{{0, 1, 2}, {3, 4, 5}}, 4, 32, rows)
	fd := shardSnapshots(t, FamilyFD, [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, 2, 0, rows)

	if _, err := Merge(nil, 4, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("empty merge err = %v", err)
	}
	if _, err := Merge([]Snapshot{rp[0], fd[0]}, 4, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("mixed families err = %v", err)
	}
	dup := []Snapshot{rp[0], rp[0]}
	if _, err := Merge(dup, 4, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("duplicate flows err = %v", err)
	}
	if _, err := Merge(rp, 5, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("wrong sketch param err = %v", err)
	}
	empty := rp[1]
	empty.FlowIDs = nil
	empty.Sketches = nil
	empty.Means = nil
	if _, err := Merge([]Snapshot{rp[0], empty}, 4, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("empty input err = %v", err)
	}
}
