package sketch

import (
	"fmt"

	"streampca/internal/par"
	"streampca/internal/randproj"
	"streampca/internal/vh"
)

// RandProj is the paper's sketcher: one variance histogram per assigned flow
// carrying random-projection partial sums, O(w·log n) update time and
// O(w·log² n) space for w flows (§IV-A/B). Internally Update shards the
// per-flow histogram work across Workers goroutines — each flow's histogram
// is touched by exactly one shard, so the resulting state is identical for
// any worker count.
type RandProj struct {
	flowIDs []int
	hists   []*vh.Histogram
	gen     *randproj.Generator
	workers int
	// rowScratch holds the interval's shared projection row r_{t,·}; reused
	// across updates to keep the per-interval path allocation-free.
	rowScratch []float64
	now        int64
}

// NewRandProj validates cfg and builds the per-flow histograms.
func NewRandProj(cfg Config) (*RandProj, error) {
	if err := validateFlowIDs(cfg.FlowIDs); err != nil {
		return nil, err
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("%w: nil random generator", ErrConfig)
	}
	hists := make([]*vh.Histogram, len(cfg.FlowIDs))
	for i := range cfg.FlowIDs {
		h, err := vh.New(vh.Config{WindowLen: cfg.WindowLen, Epsilon: cfg.Epsilon, Gen: cfg.Gen})
		if err != nil {
			return nil, fmt.Errorf("histogram for flow %d: %w", cfg.FlowIDs[i], err)
		}
		hists[i] = h
	}
	return &RandProj{
		flowIDs:    append([]int(nil), cfg.FlowIDs...),
		hists:      hists,
		gen:        cfg.Gen,
		workers:    par.Workers(cfg.Workers),
		rowScratch: make([]float64, cfg.Gen.SketchLen()),
	}, nil
}

// Family implements Sketcher.
func (m *RandProj) Family() Family { return FamilyRandProj }

// FlowIDs returns a copy of the assigned global flow indices.
func (m *RandProj) FlowIDs() []int {
	return append([]int(nil), m.flowIDs...)
}

// NumFlows returns w, the number of flows this sketcher handles.
func (m *RandProj) NumFlows() int { return len(m.flowIDs) }

// Now returns the interval of the most recent update.
func (m *RandProj) Now() int64 { return m.now }

// Histogram returns the variance histogram of the i-th assigned flow
// (FlowIDs()[i]). The histogram is live state owned by the sketcher; callers
// must only read it (Aggregate, Sketch, …) between updates — internal/oracle
// uses this for differential self-checks.
func (m *RandProj) Histogram(i int) *vh.Histogram {
	if i < 0 || i >= len(m.hists) {
		return nil
	}
	return m.hists[i]
}

// StateSize sums the variance-histogram bucket counts across all assigned
// flows — the O(w·log² n) sketch-state size the paper bounds, cheap enough
// to poll every interval for a state-size gauge.
func (m *RandProj) StateSize() int {
	total := 0
	for _, h := range m.hists {
		total += h.NumBuckets()
	}
	return total
}

// updateGrain is the minimum flows per shard in Update; below it the
// per-flow histogram work cannot amortize fork/join.
const updateGrain = 32

// Update ingests the volumes of interval t; volumes[i] belongs to
// FlowIDs()[i]. Intervals must be strictly increasing.
//
// On error the lowest-indexed failing flow is reported and flows in other
// shards may already have absorbed the interval; callers treat an Update
// error as fatal for the sketcher (all current ones do).
func (m *RandProj) Update(t int64, volumes []float64) error {
	if len(volumes) != len(m.flowIDs) {
		return fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(volumes), len(m.flowIDs))
	}
	// The random row r_{t,·} is shared by every flow at interval t; compute
	// it once into the reusable scratch buffer.
	m.gen.RowInto(t, m.rowScratch)
	row := m.rowScratch
	err := par.ForErr(m.workers, len(volumes), updateGrain, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := m.hists[i].UpdateWithRow(t, volumes[i], row); err != nil {
				return fmt.Errorf("flow %d: %w", m.flowIDs[i], err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.now = t
	return nil
}

// Snapshot extracts the current sketches for all assigned flows.
func (m *RandProj) Snapshot() Snapshot {
	rep := Snapshot{
		Interval: m.now,
		FlowIDs:  append([]int(nil), m.flowIDs...),
		Sketches: make([][]float64, len(m.flowIDs)),
		Means:    make([]float64, len(m.flowIDs)),
		Counts:   make([]int64, len(m.flowIDs)),
		Buckets:  make([]int, len(m.flowIDs)),
		Family:   FamilyRandProj,
	}
	for i, h := range m.hists {
		rep.Sketches[i] = h.Sketch()
		rep.Means[i] = h.EstimateMean()
		rep.Counts[i] = h.Count()
		rep.Buckets[i] = h.NumBuckets()
	}
	return rep
}
