package sketch

import (
	"fmt"
	"math"

	"streampca/internal/mat"
	"streampca/internal/par"
)

// FD is a Frequent Directions sketcher (Liberty's algorithm, analyzed for
// anomaly detection by Sharan/Gopalan/Wieder — PAPERS.md): it maintains a
// buffer B of at most 2ℓ rows over the w assigned flows. Each interval's
// volume vector is centered by the running stream mean and appended; when
// the buffer fills, it is shrunk back to ℓ rows by the smallest retained
// squared singular value δ: B ← diag(√(λᵢ−δ)/√λᵢ)·UᵀB for the top-ℓ
// eigenpairs of B·Bᵀ. The accumulated Δ = Σδ yields the deterministic
// guarantee ‖AᵀA − BᵀB‖₂ ≤ Δ ≤ ‖A‖²_F/ℓ over the centered row stream A.
//
// Unlike the variance-histogram sketch, FD summarizes the full stream prefix
// — rows never expire. The shrink runs on the small side: B·Bᵀ is 2ℓ×2ℓ, so
// one shrink costs O(ℓ²·w + ℓ³) via the blocked-tile Gram/Mul kernels and
// the parallel Jacobi eigensolver, amortized over ℓ appends.
//
// FD is not safe for concurrent use; callers serialize.
type FD struct {
	flowIDs []int
	ell     int
	workers int
	// buf is the 2ℓ×w row buffer; rows [0, used) are live.
	buf  *mat.Matrix
	used int
	// delta is the accumulated shrinkage Δ.
	delta float64
	// Running mean state: sums[i] = Σ volumes[i], count = rows seen.
	sums  []float64
	count int64
	now   int64
	// rowScratch holds the centered row during Update.
	rowScratch []float64
}

// NewFD validates cfg and allocates the row buffer.
func NewFD(cfg Config) (*FD, error) {
	if err := validateFlowIDs(cfg.FlowIDs); err != nil {
		return nil, err
	}
	ell := cfg.Ell
	if ell == 0 {
		ell = DefaultEll(len(cfg.FlowIDs))
	}
	if ell < 1 {
		return nil, fmt.Errorf("%w: fd ell %d", ErrConfig, ell)
	}
	w := len(cfg.FlowIDs)
	if 2*ell >= w {
		return nil, fmt.Errorf("%w: ell %d over %d flows (2ℓ = %d ≥ w; the buffer would cost at least the exact %d×%d Gram — keep ℓ ≤ %d or widen the flow shard)",
			ErrFDBudget, ell, w, 2*ell, w, w, MaxEll(w))
	}
	return &FD{
		flowIDs:    append([]int(nil), cfg.FlowIDs...),
		ell:        ell,
		workers:    par.Workers(cfg.Workers),
		buf:        mat.NewMatrix(2*ell, w),
		sums:       make([]float64, w),
		rowScratch: make([]float64, w),
	}, nil
}

// Family implements Sketcher.
func (m *FD) Family() Family { return FamilyFD }

// FlowIDs returns a copy of the assigned global flow indices.
func (m *FD) FlowIDs() []int { return append([]int(nil), m.flowIDs...) }

// NumFlows returns w, the number of flows this sketcher handles.
func (m *FD) NumFlows() int { return len(m.flowIDs) }

// Now returns the interval of the most recent update.
func (m *FD) Now() int64 { return m.now }

// Ell returns the basis budget ℓ.
func (m *FD) Ell() int { return m.ell }

// Delta returns the accumulated shrinkage Δ bounding ‖AᵀA − BᵀB‖₂.
func (m *FD) Delta() float64 { return m.delta }

// StateSize returns the number of live buffer rows (≤ 2ℓ).
func (m *FD) StateSize() int { return m.used }

// Update ingests the volumes of interval t; volumes[i] belongs to
// FlowIDs()[i]. Intervals must be strictly increasing. The row is centered
// by the running mean over all previously ingested intervals (the stream
// analogue of the batch model's column centering) before insertion.
func (m *FD) Update(t int64, volumes []float64) error {
	if len(volumes) != len(m.flowIDs) {
		return fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(volumes), len(m.flowIDs))
	}
	if t <= m.now {
		return fmt.Errorf("%w: interval %d not after %d", ErrInput, t, m.now)
	}
	for i, v := range volumes {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite volume for flow %d", ErrInput, m.flowIDs[i])
		}
	}
	// Center by the pre-update running mean so the very first row (mean 0 of
	// an empty stream) is kept verbatim; the oracle replays this exactly.
	for i, v := range volumes {
		mean := 0.0
		if m.count > 0 {
			mean = m.sums[i] / float64(m.count)
		}
		m.rowScratch[i] = v - mean
	}
	if err := m.insertRow(m.rowScratch); err != nil {
		return err
	}
	for i, v := range volumes {
		m.sums[i] += v
	}
	m.count++
	m.now = t
	return nil
}

// insertRow appends one (already centered) row, shrinking when the buffer
// fills.
func (m *FD) insertRow(row []float64) error {
	copy(m.buf.RowView(m.used), row)
	m.used++
	if m.used == 2*m.ell {
		return m.shrink()
	}
	return nil
}

// shrink halves the full buffer: eigendecompose the small side B·Bᵀ
// (2ℓ×2ℓ), drop δ = λ_ℓ from every retained squared singular value, and
// rebuild the top-ℓ rows as scaled left-projections of B.
func (m *FD) shrink() error {
	// B·Bᵀ = (Bᵀ)ᵀ·(Bᵀ): the transpose feeds the blocked-tile Gram kernel,
	// which exploits symmetry and shards across workers deterministically.
	g := m.buf.T().GramWorkers(m.workers)
	if !g.IsFinite() {
		// Finite rows whose squared sums overflow float64; hostile payloads
		// can construct this, so fail typed instead of via the eigensolver.
		return fmt.Errorf("%w: fd shrink overflow (non-finite Gram product)", ErrInput)
	}
	eig, err := mat.SymEigenWorkers(g, m.workers)
	if err != nil {
		return fmt.Errorf("fd shrink eigendecomposition: %w", err)
	}
	delta := eig.Values[m.ell]
	if delta < 0 {
		delta = 0
	}
	// P = U_ℓᵀ·B (ℓ×w): row i is uᵢᵀB = σᵢ·vᵢᵀ, rescaled below to the
	// shrunk singular value √(λᵢ−δ).
	ut := mat.NewMatrix(m.ell, 2*m.ell)
	for i := 0; i < m.ell; i++ {
		for j := 0; j < 2*m.ell; j++ {
			ut.Set(i, j, eig.Vectors.At(j, i))
		}
	}
	p, err := ut.MulWorkers(m.buf, m.workers)
	if err != nil {
		return fmt.Errorf("fd shrink projection: %w", err)
	}
	w := len(m.flowIDs)
	for i := 0; i < m.ell; i++ {
		dst := m.buf.RowView(i)
		lam := eig.Values[i]
		if lam <= delta || lam <= 0 {
			for j := 0; j < w; j++ {
				dst[j] = 0
			}
			continue
		}
		scale := math.Sqrt((lam - delta) / lam)
		src := p.RowView(i)
		for j := 0; j < w; j++ {
			dst[j] = scale * src[j]
		}
	}
	for i := m.ell; i < 2*m.ell; i++ {
		dst := m.buf.RowView(i)
		for j := 0; j < w; j++ {
			dst[j] = 0
		}
	}
	m.used = m.ell
	m.delta += delta
	return nil
}

// Snapshot extracts the current buffer rows and running means.
func (m *FD) Snapshot() Snapshot {
	w := len(m.flowIDs)
	rep := Snapshot{
		Interval: m.now,
		FlowIDs:  append([]int(nil), m.flowIDs...),
		Means:    make([]float64, w),
		Counts:   make([]int64, w),
		Family:   FamilyFD,
		FDRows:   make([][]float64, m.used),
		FDDelta:  m.delta,
		FDEll:    m.ell,
	}
	for i := 0; i < m.used; i++ {
		rep.FDRows[i] = append([]float64(nil), m.buf.RowView(i)...)
	}
	if m.count > 0 {
		for i := range rep.Means {
			rep.Means[i] = m.sums[i] / float64(m.count)
			rep.Counts[i] = m.count
		}
	}
	return rep
}

// Absorb merges another FD sketch over the same flow set into this one (the
// row-shard merge: both summarize disjoint subsets of the same row stream).
// The merged sketch carries the standard additive guarantee: its Δ is the
// sum of both inputs' Δ plus any shrinkage the merge itself triggers.
func (m *FD) Absorb(snap Snapshot) error {
	if snap.Family != FamilyFD {
		return fmt.Errorf("%w: absorb of %v snapshot into fd", ErrInput, snap.Family)
	}
	if err := snap.Validate(m.ell); err != nil {
		return err
	}
	if len(snap.FlowIDs) != len(m.flowIDs) {
		return fmt.Errorf("%w: absorb across flow sets (%d vs %d flows)",
			ErrInput, len(snap.FlowIDs), len(m.flowIDs))
	}
	for i, id := range snap.FlowIDs {
		if id != m.flowIDs[i] {
			return fmt.Errorf("%w: absorb flow mismatch at column %d (%d vs %d)",
				ErrInput, i, id, m.flowIDs[i])
		}
	}
	// Stage the scalar merges before touching the buffer so the overflow
	// checks run on hostile payloads without poisoning state.
	if d := m.delta + snap.FDDelta; math.IsInf(d, 0) || math.IsNaN(d) {
		return fmt.Errorf("%w: absorb overflows Δ", ErrInput)
	}
	var c int64
	if len(snap.Counts) > 0 {
		c = snap.Counts[0]
	}
	sums := m.sums
	if c > 0 {
		sums = make([]float64, len(m.sums))
		for i := range sums {
			sums[i] = m.sums[i] + snap.Means[i]*float64(c)
			if math.IsInf(sums[i], 0) || math.IsNaN(sums[i]) {
				return fmt.Errorf("%w: absorb overflows mean sums", ErrInput)
			}
		}
	}
	// insertRow may shrink, growing m.delta; the snapshot's own Δ is added
	// on top (the merged guarantee sums both inputs' Δ plus merge shrinkage).
	for _, row := range snap.FDRows {
		if err := m.insertRow(row); err != nil {
			return err
		}
	}
	m.delta += snap.FDDelta
	if math.IsInf(m.delta, 0) || math.IsNaN(m.delta) {
		return fmt.Errorf("%w: absorb overflows Δ", ErrInput)
	}
	m.sums = sums
	if c > 0 {
		m.count += c
	}
	if snap.Interval > m.now {
		m.now = snap.Interval
	}
	return nil
}
