package sketch

import (
	"fmt"
	"math"
)

// Snapshot carries a sketcher's current state to the NOC. It is the wire
// payload of transport.SketchResponse (via the core.SketchReport alias).
//
// Wire compatibility: gob matches struct fields by name, so payloads encoded
// before the Family/FD* fields existed decode with their zero values —
// Family's zero value is FamilyRandProj, which is exactly what such payloads
// carry — and newer payloads decode on older binaries with the unknown
// fields dropped (same versioning stance as transport.TraceContext).
type Snapshot struct {
	// Interval is the time of the most recent update covered.
	Interval int64
	// FlowIDs[i] is the global flow index of column i.
	FlowIDs []int
	// Sketches[i] is the l-vector ẑ for flow FlowIDs[i] (RandProj only).
	Sketches [][]float64
	// Means[i] is the per-flow mean estimate for FlowIDs[i]: μ_all from the
	// variance histograms (RandProj) or the running stream mean (FD).
	Means []float64
	// Counts[i] is the number of summarized intervals for the flow.
	Counts []int64
	// Buckets[i] is the current bucket count (RandProj space diagnostics).
	Buckets []int

	// Family identifies the producing sketcher; zero is FamilyRandProj.
	Family Family
	// FDRows are the live buffer rows of an FD sketch: each row is a
	// w-vector over FlowIDs, at most 2·FDEll of them (FD only).
	FDRows [][]float64
	// FDDelta is the accumulated shrinkage Δ = Σ δ_shrink; the deterministic
	// guarantee is ‖AᵀA − BᵀB‖₂ ≤ FDDelta (FD only).
	FDDelta float64
	// FDEll is the basis budget ℓ the producer ran with (FD only).
	FDEll int
}

// Validate checks a snapshot for structural consistency against the
// family-specific sketch parameter: l (sketch length) for RandProj, ℓ (basis
// budget) for FD — the same single value Hello.SketchLen carries on the wire.
func (r *Snapshot) Validate(sketchParam int) error {
	n := len(r.FlowIDs)
	switch r.Family {
	case FamilyRandProj:
		if len(r.Sketches) != n || len(r.Means) != n {
			return fmt.Errorf("%w: report arrays disagree (%d flows, %d sketches, %d means)",
				ErrInput, n, len(r.Sketches), len(r.Means))
		}
		for i, s := range r.Sketches {
			if len(s) != sketchParam {
				return fmt.Errorf("%w: sketch %d has length %d, want %d", ErrInput, i, len(s), sketchParam)
			}
			for _, v := range s {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("%w: non-finite sketch value for flow %d", ErrInput, r.FlowIDs[i])
				}
			}
		}
	case FamilyFD:
		if len(r.Means) != n {
			return fmt.Errorf("%w: report arrays disagree (%d flows, %d means)", ErrInput, n, len(r.Means))
		}
		if r.FDEll < 1 || r.FDEll != sketchParam {
			return fmt.Errorf("%w: fd ell %d, want %d", ErrInput, r.FDEll, sketchParam)
		}
		if len(r.FDRows) > 2*r.FDEll {
			return fmt.Errorf("%w: %d fd rows exceed the 2ℓ=%d buffer", ErrInput, len(r.FDRows), 2*r.FDEll)
		}
		for i, row := range r.FDRows {
			if len(row) != n {
				return fmt.Errorf("%w: fd row %d has %d columns for %d flows", ErrInput, i, len(row), n)
			}
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("%w: non-finite fd row value in row %d", ErrInput, i)
				}
			}
		}
		if math.IsNaN(r.FDDelta) || math.IsInf(r.FDDelta, 0) || r.FDDelta < 0 {
			return fmt.Errorf("%w: fd delta %v", ErrInput, r.FDDelta)
		}
	default:
		return fmt.Errorf("%w: unknown sketch family %d", ErrInput, int(r.Family))
	}
	for i, v := range r.Means {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite mean for flow %d", ErrInput, r.FlowIDs[i])
		}
	}
	return nil
}

// MemoryBytes estimates the payload's retained sketch-state size: the
// float64 cells of the per-flow sketches (RandProj) or buffer rows (FD).
// Used by the three-way shoot-out's space column.
func (r *Snapshot) MemoryBytes() int {
	cells := 0
	for _, s := range r.Sketches {
		cells += len(s)
	}
	for _, row := range r.FDRows {
		cells += len(row)
	}
	cells += len(r.Means)
	return 8 * cells
}
