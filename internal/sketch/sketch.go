// Package sketch defines the Sketcher abstraction behind the monitor's
// streaming summaries and provides the two families the system ships:
//
//   - RandProj — the paper's random-projection sketch Ẑ = (1/√l)RᵀY carried
//     by per-flow variance histograms (§IV-A/B). Sketches are linear in the
//     data, so per-flow columns from disjoint flow shards assemble exactly at
//     the NOC; the error bound is probabilistic (Lemma 5/6, Theorem 2).
//   - FD — a Frequent Directions sketch (Liberty; Sharan/Gopalan/Wieder in
//     PAPERS.md): a 2ℓ-row buffer over the centered measurement rows,
//     periodically shrunk by the smallest retained squared singular value.
//     Space is O(ℓ·w) for ℓ = O(√m) and the error bound is deterministic:
//     ‖AᵀA − BᵀB‖₂ ≤ Δ ≤ ‖A‖²_F/ℓ, where Δ is the accumulated shrinkage
//     the sketch tracks explicitly.
//
// A Snapshot is the wire form of either family; internal/core aliases it as
// SketchReport, so transport payloads and the NOC fetch path are generic
// over the family. Family selection is threaded from the daemons' -sketcher
// flag through MonitorConfig/ClusterConfig down to New.
package sketch

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/randproj"
)

// Sentinel errors. They intentionally carry a package-neutral prefix:
// internal/core re-exports them as its own ErrConfig/ErrInput so existing
// errors.Is checks hold across the package boundary.
var (
	// ErrConfig indicates an invalid configuration.
	ErrConfig = errors.New("streampca: invalid configuration")
	// ErrInput indicates structurally invalid runtime input.
	ErrInput = errors.New("streampca: invalid input")
)

// ErrFDBudget reports an FD basis budget outside the useful range 2ℓ < w:
// with 2ℓ ≥ w the 2ℓ×w row buffer costs at least as much memory as the exact
// w×w Gram matrix it approximates, and once ℓ ≥ w every shrink is lossless so
// the sketch silently degenerates into a full-rank copy. NewFD rejects such
// configurations instead of accepting them (the trap shipped until PR 9).
// Wraps ErrConfig, so errors.Is(err, ErrConfig) holds too.
var ErrFDBudget = fmt.Errorf("%w: fd basis budget needs 2ℓ < w", ErrConfig)

// Family identifies a sketcher implementation. The zero value is the
// random-projection family so that wire payloads and configurations written
// before the field existed keep their meaning.
type Family int

const (
	// FamilyRandProj is the paper's random-projection sketch.
	FamilyRandProj Family = iota
	// FamilyFD is the Frequent Directions sketch.
	FamilyFD
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyRandProj:
		return "randproj"
	case FamilyFD:
		return "fd"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// ParseFamily maps the -sketcher flag spelling to a Family.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "", "randproj":
		return FamilyRandProj, nil
	case "fd":
		return FamilyFD, nil
	default:
		return 0, fmt.Errorf("%w: unknown sketcher family %q (want randproj or fd)", ErrConfig, s)
	}
}

// Sketcher is the streaming summary a local monitor maintains per assigned
// flow set. Implementations are not safe for concurrent use; callers
// (internal/monitor, internal/noc) serialize.
type Sketcher interface {
	// Family identifies the implementation.
	Family() Family
	// FlowIDs returns a copy of the assigned global flow indices.
	FlowIDs() []int
	// NumFlows returns w, the number of assigned flows.
	NumFlows() int
	// Now returns the interval of the most recent update.
	Now() int64
	// Update ingests the volumes of interval t; volumes[i] belongs to
	// FlowIDs()[i]. Intervals must be strictly increasing.
	Update(t int64, volumes []float64) error
	// Snapshot extracts the current sketch state in wire form.
	Snapshot() Snapshot
	// StateSize returns the retained-state cell count for gauges: total
	// variance-histogram buckets for RandProj, live buffer rows for FD.
	StateSize() int
}

// Config parameterizes New.
type Config struct {
	// Family selects the implementation; the zero value is FamilyRandProj.
	Family Family
	// FlowIDs lists the global flow indices this sketcher is responsible
	// for. Required, non-empty, unique, non-negative.
	FlowIDs []int
	// WindowLen is n, the sliding-window length in intervals (RandProj; FD
	// summarizes the full stream prefix and ignores it).
	WindowLen int
	// Epsilon is the VH approximation parameter ε ∈ (0, 1) (RandProj only).
	Epsilon float64
	// Gen is the shared projection generator (RandProj only; required so
	// sketches from different monitors combine at the NOC).
	Gen *randproj.Generator
	// Ell is the FD basis budget ℓ ≥ 1 (FD only); see DefaultEll.
	Ell int
	// Workers bounds the goroutines used by per-flow update sharding
	// (RandProj) and the FD shrink's matrix kernels; 0 (or negative)
	// selects runtime.GOMAXPROCS(0). Results are identical for any value.
	Workers int
}

// DefaultEll is the FD basis budget used when none is configured:
// ℓ = 2·⌈√m⌉ — the O(√m) working point the Sharan/Gopalan/Wieder analysis
// recommends, doubled for slack against shrink-induced bias — clamped to
// MaxEll so the default always satisfies the 2ℓ < w compression bound NewFD
// enforces (see ErrFDBudget).
func DefaultEll(numFlows int) int {
	if numFlows < 1 {
		return 2
	}
	ell := 2 * int(math.Ceil(math.Sqrt(float64(numFlows))))
	if ell < 2 {
		ell = 2
	}
	if max := MaxEll(numFlows); ell > max {
		ell = max
	}
	return ell
}

// MaxEll returns the largest FD basis budget satisfying 2ℓ < w for a flow set
// of the given width, never below 1. For w ≤ 2 no budget satisfies the bound
// and NewFD rejects the family outright; MaxEll still returns 1 so callers
// can report the violation through NewFD's typed error.
func MaxEll(numFlows int) int {
	max := (numFlows - 1) / 2
	if max < 1 {
		max = 1
	}
	return max
}

// validateFlowIDs enforces the shared flow-set rules.
func validateFlowIDs(flowIDs []int) error {
	if len(flowIDs) == 0 {
		return fmt.Errorf("%w: no flows assigned", ErrConfig)
	}
	seen := make(map[int]struct{}, len(flowIDs))
	for _, id := range flowIDs {
		if id < 0 {
			return fmt.Errorf("%w: negative flow id %d", ErrConfig, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: duplicate flow id %d", ErrConfig, id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// New builds the configured sketcher family.
func New(cfg Config) (Sketcher, error) {
	switch cfg.Family {
	case FamilyRandProj:
		return NewRandProj(cfg)
	case FamilyFD:
		return NewFD(cfg)
	default:
		return nil, fmt.Errorf("%w: unknown sketcher family %d", ErrConfig, int(cfg.Family))
	}
}
