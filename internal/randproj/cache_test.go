package randproj

import (
	"sync"
	"testing"
)

func newTestGen(t testing.TB, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRowCacheMatchesAt: cached rows must equal entry-wise derivation, on
// both the miss and hit path, and Row must hand out independent copies.
func TestRowCacheMatchesAt(t *testing.T) {
	g := newTestGen(t, Config{Seed: 5, SketchLen: 32})
	for pass := 0; pass < 2; pass++ { // pass 0 misses, pass 1 hits
		for tt := int64(0); tt < 20; tt++ {
			row := g.Row(tt)
			for k, v := range row {
				if want := g.At(tt, k); v != want {
					t.Fatalf("pass %d t=%d k=%d: %v != %v", pass, tt, k, want, v)
				}
			}
		}
	}
	hits, misses := g.CacheStats()
	if misses != 20 || hits != 20 {
		t.Fatalf("want 20 misses and 20 hits, got %d/%d", misses, hits)
	}
	// Mutating a returned row must not poison the cache.
	row := g.Row(3)
	row[0] += 1e9
	if again := g.Row(3); again[0] == row[0] {
		t.Fatal("cache entry aliased into caller's slice")
	}
}

// TestRowCacheEviction: capacity bounds the cache; evicted rows re-derive
// correctly.
func TestRowCacheEviction(t *testing.T) {
	g := newTestGen(t, Config{Seed: 5, SketchLen: 8, RowCache: 4})
	for tt := int64(0); tt < 10; tt++ {
		g.Row(tt)
	}
	if g.lru.Len() != 4 || len(g.rows) != 4 {
		t.Fatalf("cache holds %d/%d entries, want 4", g.lru.Len(), len(g.rows))
	}
	// t=0 was evicted long ago; it must still derive correctly (a new miss).
	_, missesBefore := g.CacheStats()
	row := g.Row(0)
	for k, v := range row {
		if want := g.At(0, k); v != want {
			t.Fatalf("evicted row k=%d: %v != %v", k, want, v)
		}
	}
	if _, misses := g.CacheStats(); misses != missesBefore+1 {
		t.Fatalf("re-deriving an evicted row should miss (misses %d -> %d)", missesBefore, misses)
	}
}

// TestRowCacheDisabled: RowCache < 0 turns the cache off entirely.
func TestRowCacheDisabled(t *testing.T) {
	g := newTestGen(t, Config{Seed: 5, SketchLen: 8, RowCache: -1})
	for i := 0; i < 5; i++ {
		row := g.Row(7)
		for k, v := range row {
			if want := g.At(7, k); v != want {
				t.Fatalf("k=%d: %v != %v", k, want, v)
			}
		}
	}
	if hits, misses := g.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded %d hits %d misses", hits, misses)
	}
}

// TestRowIntoConcurrent hammers the cache from several goroutines (run with
// -race); every reader must see the correct row.
func TestRowIntoConcurrent(t *testing.T) {
	g := newTestGen(t, Config{Seed: 11, SketchLen: 16, RowCache: 8})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, g.SketchLen())
			for i := 0; i < 200; i++ {
				tt := int64((w + i) % 16)
				g.RowInto(tt, dst)
				for k, v := range dst {
					if want := g.At(tt, k); v != want {
						errCh <- &rowMismatch{tt, k}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

type rowMismatch struct {
	t int64
	k int
}

func (e *rowMismatch) Error() string { return "row mismatch" }

// BenchmarkRowHit measures the cache hit path: repeated requests for rows
// already resident (the monitor-update pattern, where every flow shares the
// interval's row).
func BenchmarkRowHit(b *testing.B) {
	g := newTestGen(b, Config{Seed: 5, SketchLen: 100})
	dst := make([]float64, g.SketchLen())
	g.RowInto(1, dst) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RowInto(1, dst)
	}
}

// BenchmarkRowMiss measures the uncached derivation for contrast.
func BenchmarkRowMiss(b *testing.B) {
	g := newTestGen(b, Config{Seed: 5, SketchLen: 100, RowCache: -1})
	dst := make([]float64, g.SketchLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RowInto(int64(i), dst)
	}
}
