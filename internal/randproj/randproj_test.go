package randproj

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streampca/internal/mat"
)

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "default gaussian", cfg: Config{Seed: 1, SketchLen: 8}},
		{name: "tug of war", cfg: Config{Seed: 1, SketchLen: 8, Dist: TugOfWar}},
		{name: "sparse s=3", cfg: Config{Seed: 1, SketchLen: 8, Dist: Sparse, SparseS: 3}},
		{name: "very sparse", cfg: Config{Seed: 1, SketchLen: 8, Dist: VerySparse, WindowLen: 100}},
		{name: "zero sketch len", cfg: Config{Seed: 1}, wantErr: true},
		{name: "sparse s=0", cfg: Config{Seed: 1, SketchLen: 8, Dist: Sparse}, wantErr: true},
		{name: "very sparse no window", cfg: Config{Seed: 1, SketchLen: 8, Dist: VerySparse}, wantErr: true},
		{name: "unknown dist", cfg: Config{Seed: 1, SketchLen: 8, Dist: Distribution(99)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGenerator(tt.cfg)
			if tt.wantErr {
				if !errors.Is(err, ErrConfig) {
					t.Fatalf("want ErrConfig, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestDistributionString(t *testing.T) {
	for d, want := range map[Distribution]string{
		Gaussian:          "gaussian",
		TugOfWar:          "tug-of-war",
		Sparse:            "sparse",
		VerySparse:        "very-sparse",
		Distribution(123): "unknown",
	} {
		if got := d.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestGeneratorDeterministicAndSeedSensitive(t *testing.T) {
	g1 := mustGen(t, Config{Seed: 7, SketchLen: 16})
	g2 := mustGen(t, Config{Seed: 7, SketchLen: 16})
	g3 := mustGen(t, Config{Seed: 8, SketchLen: 16})
	var differ bool
	for tIdx := int64(0); tIdx < 50; tIdx++ {
		for k := 0; k < 16; k++ {
			a, b, c := g1.At(tIdx, k), g2.At(tIdx, k), g3.At(tIdx, k)
			if a != b {
				t.Fatalf("same seed diverged at (%d,%d): %v vs %v", tIdx, k, a, b)
			}
			if a != c {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatal("different seeds must produce different streams")
	}
}

func TestTugOfWarValues(t *testing.T) {
	g := mustGen(t, Config{Seed: 3, SketchLen: 4, Dist: TugOfWar})
	var plus, minus int
	for tIdx := int64(0); tIdx < 1000; tIdx++ {
		for k := 0; k < 4; k++ {
			switch g.At(tIdx, k) {
			case 1:
				plus++
			case -1:
				minus++
			default:
				t.Fatalf("tug-of-war produced %v", g.At(tIdx, k))
			}
		}
	}
	total := plus + minus
	ratio := float64(plus) / float64(total)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("sign balance %v, want ≈0.5", ratio)
	}
}

func TestSparseSupportAndDensity(t *testing.T) {
	s := 3
	g := mustGen(t, Config{Seed: 5, SketchLen: 8, Dist: Sparse, SparseS: s})
	want := math.Sqrt(float64(s))
	var nonzero, total int
	for tIdx := int64(0); tIdx < 2000; tIdx++ {
		for k := 0; k < 8; k++ {
			v := g.At(tIdx, k)
			total++
			switch {
			case v == 0:
			case math.Abs(math.Abs(v)-want) < 1e-12:
				nonzero++
			default:
				t.Fatalf("sparse produced %v, want 0 or ±√%d", v, s)
			}
		}
	}
	density := float64(nonzero) / float64(total)
	if math.Abs(density-1.0/float64(s)) > 0.03 {
		t.Fatalf("density %v, want ≈%v", density, 1.0/float64(s))
	}
}

func TestVerySparseDensity(t *testing.T) {
	n := 10000
	g := mustGen(t, Config{Seed: 5, SketchLen: 8, Dist: VerySparse, WindowLen: n})
	var nonzero, total int
	for tIdx := int64(0); tIdx < 5000; tIdx++ {
		for k := 0; k < 8; k++ {
			total++
			if g.At(tIdx, k) != 0 {
				nonzero++
			}
		}
	}
	density := float64(nonzero) / float64(total)
	want := 1 / math.Sqrt(float64(n))
	if density < want/3 || density > want*3 {
		t.Fatalf("very sparse density %v, want ≈%v", density, want)
	}
}

func TestGaussianMoments(t *testing.T) {
	g := mustGen(t, Config{Seed: 11, SketchLen: 32})
	var sum, sumSq float64
	var count int
	for tIdx := int64(0); tIdx < 2000; tIdx++ {
		for k := 0; k < 32; k++ {
			v := g.At(tIdx, k)
			sum += v
			sumSq += v * v
			count++
		}
	}
	mean := sum / float64(count)
	variance := sumSq/float64(count) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("gaussian variance %v, want ≈1", variance)
	}
}

func TestRowAndMatrixAgreeWithAt(t *testing.T) {
	g := mustGen(t, Config{Seed: 2, SketchLen: 6})
	row := g.Row(42)
	for k, v := range row {
		if v != g.At(42, k) {
			t.Fatalf("Row mismatch at k=%d", k)
		}
	}
	m := g.Matrix(40, 5)
	if m.Rows() != 5 || m.Cols() != 6 {
		t.Fatalf("Matrix shape %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 5; i++ {
		for k := 0; k < 6; k++ {
			if m.At(i, k) != g.At(40+int64(i), k) {
				t.Fatalf("Matrix mismatch at (%d,%d)", i, k)
			}
		}
	}
}

func TestProjectMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := mustGen(t, Config{Seed: 9, SketchLen: 10})
	n, m := 20, 4
	y := mat.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			y.Set(i, j, rng.NormFloat64())
		}
	}
	z, err := g.Project(100, y)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Matrix(100, n)
	want, err := r.T().Mul(y)
	if err != nil {
		t.Fatal(err)
	}
	want.Scale(1 / math.Sqrt(10))
	if !z.Equal(want, 1e-10) {
		t.Fatal("Project disagrees with explicit (1/√l)RᵀY")
	}
}

// Lemma 2/3 property: E(‖z‖²) = ‖y‖², checked empirically over seeds.
func TestNormPreservationInExpectation(t *testing.T) {
	for _, dist := range []Distribution{Gaussian, TugOfWar, Sparse} {
		cfg := Config{SketchLen: 64, Dist: dist, SparseS: 3}
		n := 50
		y := mat.NewMatrix(n, 1)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < n; i++ {
			y.Set(i, 0, rng.NormFloat64())
		}
		yNorm2 := math.Pow(mat.Norm(y.Col(0)), 2)

		var acc float64
		trials := 200
		for s := 0; s < trials; s++ {
			cfg.Seed = uint64(s + 1)
			g, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			z, err := g.Project(0, y)
			if err != nil {
				t.Fatal(err)
			}
			acc += math.Pow(mat.Norm(z.Col(0)), 2)
		}
		mean := acc / float64(trials)
		if math.Abs(mean-yNorm2)/yNorm2 > 0.15 {
			t.Fatalf("%v: E‖z‖² = %v, want ≈ ‖y‖² = %v", dist, mean, yNorm2)
		}
	}
}

// Property: every generated value is finite for all families.
func TestQuickValuesFinite(t *testing.T) {
	f := func(seed uint64, tIdx int64, k uint8) bool {
		for _, cfg := range []Config{
			{Seed: seed, SketchLen: 256},
			{Seed: seed, SketchLen: 256, Dist: TugOfWar},
			{Seed: seed, SketchLen: 256, Dist: Sparse, SparseS: 2},
			{Seed: seed, SketchLen: 256, Dist: VerySparse, WindowLen: 50},
		} {
			g, err := NewGenerator(cfg)
			if err != nil {
				return false
			}
			v := g.At(tIdx, int(k))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
