// Package randproj implements the random-projection machinery of the
// sketch-based streaming PCA algorithm (paper §IV-B, §V-B).
//
// A sketch column is z_j = (1/√l)·Rᵀ·y_j where R is an n×l random matrix.
// The paper supports four distributions for the entries r_{tk}:
//
//   - standard normal (the classical Johnson–Lindenstrauss projection);
//   - tug-of-war ±1 with probability 1/2 each (Alon, Gibbons, Matias, Szegedy);
//   - Achlioptas sparse: {−1, 0, +1} with probabilities {1/2s, 1−1/s, 1/2s};
//   - Li very sparse: the Achlioptas family with s = √n.
//
// Distributed operation requires every local monitor and the NOC to see the
// *same* r_{tk} without exchanging them. Generator therefore derives each
// entry deterministically from (seed, interval t, sketch index k) with a
// counter-based SplitMix64 hash — any party holding the shared seed
// reproduces the full matrix on demand in O(1) per entry.
package randproj

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"sync"

	"streampca/internal/mat"
	"streampca/internal/stats"
)

// Distribution selects the random-projection family.
type Distribution int

const (
	// Gaussian draws r from the standard normal distribution.
	Gaussian Distribution = iota + 1
	// TugOfWar draws r uniformly from {−1, +1} (Alon et al.).
	TugOfWar
	// Sparse draws r from {−1, 0, +1} with probabilities
	// {1/2s, 1−1/s, 1/2s} for a configured integer s ≥ 1 (Achlioptas).
	Sparse
	// VerySparse is the Sparse family with s = √n chosen from the window
	// length (Li, Hastie, Church).
	VerySparse
)

// String implements fmt.Stringer for diagnostics and logs.
func (d Distribution) String() string {
	switch d {
	case Gaussian:
		return "gaussian"
	case TugOfWar:
		return "tug-of-war"
	case Sparse:
		return "sparse"
	case VerySparse:
		return "very-sparse"
	default:
		return "unknown"
	}
}

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid generator configuration.
	ErrConfig = errors.New("randproj: invalid configuration")
)

// Config parameterizes a Generator.
type Config struct {
	// Seed is the shared seed; all monitors and the NOC must agree on it.
	Seed uint64
	// SketchLen is l, the number of projection directions.
	SketchLen int
	// Dist selects the distribution family. Zero value defaults to Gaussian.
	Dist Distribution
	// SparseS is the s parameter of the Sparse family (ignored otherwise);
	// must be ≥ 1. Achlioptas' classic choices are s = 1 and s = 3.
	SparseS int
	// WindowLen is n, used only by VerySparse to set s = √n.
	WindowLen int
	// RowCache bounds the LRU cache of materialized rows r_{t,·}. The hot
	// paths (monitor updates, exact projections) ask for the same row once
	// per flow or column; caching turns l hash evaluations into a copy.
	// 0 selects the default (128 rows); negative disables caching.
	RowCache int
}

// defaultRowCache is the row-cache capacity when Config.RowCache is 0. At
// typical sketch lengths (l ≈ 50–100) this is well under 128 KiB.
const defaultRowCache = 128

// Generator deterministically produces the shared random numbers r_{tk}.
//
// A Generator is safe for concurrent use: the derivation is pure and the row
// cache is mutex-protected.
type Generator struct {
	seed      uint64
	sketchLen int
	dist      Distribution
	// sparseInv is 1/s for the sparse families; 0 for dense families.
	sparseInv float64
	// sparseScale is √s, the variance-restoring scale of sparse entries.
	sparseScale float64

	// Bounded LRU cache of materialized rows, keyed by interval t. Entries
	// are immutable once inserted; Row/RowInto copy out under the lock.
	mu       sync.Mutex
	cacheCap int
	rows     map[int64]*list.Element
	lru      *list.List // front = most recent; values are *cachedRow
	hits     uint64
	misses   uint64
}

// cachedRow is one LRU entry.
type cachedRow struct {
	t   int64
	row []float64
}

// NewGenerator validates cfg and returns a Generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.SketchLen <= 0 {
		return nil, fmt.Errorf("%w: sketch length %d", ErrConfig, cfg.SketchLen)
	}
	dist := cfg.Dist
	if dist == 0 {
		dist = Gaussian
	}
	g := &Generator{seed: cfg.Seed, sketchLen: cfg.SketchLen, dist: dist}
	switch {
	case cfg.RowCache > 0:
		g.cacheCap = cfg.RowCache
	case cfg.RowCache == 0:
		g.cacheCap = defaultRowCache
	}
	if g.cacheCap > 0 {
		g.rows = make(map[int64]*list.Element, g.cacheCap)
		g.lru = list.New()
	}
	switch dist {
	case Gaussian, TugOfWar:
		// No extra parameters.
	case Sparse:
		if cfg.SparseS < 1 {
			return nil, fmt.Errorf("%w: sparse s = %d, want >= 1", ErrConfig, cfg.SparseS)
		}
		g.sparseInv = 1 / float64(cfg.SparseS)
		g.sparseScale = math.Sqrt(float64(cfg.SparseS))
	case VerySparse:
		if cfg.WindowLen < 1 {
			return nil, fmt.Errorf("%w: very-sparse requires window length, got %d", ErrConfig, cfg.WindowLen)
		}
		s := math.Max(1, math.Sqrt(float64(cfg.WindowLen)))
		g.sparseInv = 1 / s
		g.sparseScale = math.Sqrt(s)
	default:
		return nil, fmt.Errorf("%w: unknown distribution %d", ErrConfig, int(dist))
	}
	return g, nil
}

// SketchLen returns l, the number of projection directions.
func (g *Generator) SketchLen() int { return g.sketchLen }

// Dist returns the configured distribution family.
func (g *Generator) Dist() Distribution { return g.dist }

// Seed returns the shared seed.
func (g *Generator) Seed() uint64 { return g.seed }

// At returns r_{tk} for interval index t and direction k ∈ [0, l).
// The value depends only on (seed, t, k), so any party reproduces it.
func (g *Generator) At(t int64, k int) float64 {
	u := splitmix64(g.seed ^ mix(uint64(t), uint64(k)))
	switch g.dist {
	case Gaussian:
		return gaussianFromBits(u)
	case TugOfWar:
		if u&1 == 0 {
			return 1
		}
		return -1
	default: // Sparse, VerySparse
		// First uniform decides zero vs nonzero; a second decides sign.
		u01 := uniform01(u)
		if u01 >= g.sparseInv {
			return 0
		}
		if splitmix64(u)&1 == 0 {
			return g.sparseScale
		}
		return -g.sparseScale
	}
}

// Row returns the l-vector (r_{t,0}, …, r_{t,l−1}) for interval t. The
// returned slice is a fresh copy the caller owns.
func (g *Generator) Row(t int64) []float64 {
	out := make([]float64, g.sketchLen)
	g.RowInto(t, out)
	return out
}

// RowInto fills dst (which must have length ≥ l) with the row for interval t
// without allocating. Rows are served from a bounded LRU cache when enabled;
// a miss derives the row entry-by-entry and inserts it.
func (g *Generator) RowInto(t int64, dst []float64) {
	dst = dst[:g.sketchLen]
	if g.cacheCap <= 0 {
		g.fillRow(t, dst)
		return
	}
	g.mu.Lock()
	if el, ok := g.rows[t]; ok {
		g.lru.MoveToFront(el)
		copy(dst, el.Value.(*cachedRow).row)
		g.hits++
		g.mu.Unlock()
		return
	}
	g.misses++
	g.mu.Unlock()

	// Derive outside the lock: misses are the expensive path and deriving is
	// pure, so concurrent misses for the same t just race to insert equal rows.
	g.fillRow(t, dst)
	stored := append([]float64(nil), dst...)

	g.mu.Lock()
	if _, ok := g.rows[t]; !ok {
		for g.lru.Len() >= g.cacheCap {
			oldest := g.lru.Back()
			g.lru.Remove(oldest)
			delete(g.rows, oldest.Value.(*cachedRow).t)
		}
		g.rows[t] = g.lru.PushFront(&cachedRow{t: t, row: stored})
	}
	g.mu.Unlock()
}

// fillRow derives the row for interval t directly into dst.
func (g *Generator) fillRow(t int64, dst []float64) {
	for k := range dst {
		dst[k] = g.At(t, k)
	}
}

// CacheStats reports cumulative row-cache hits and misses (both zero when
// the cache is disabled).
func (g *Generator) CacheStats() (hits, misses uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}

// Matrix materializes the n×l random matrix R for intervals
// t0, t0+1, …, t0+n−1. Intended for tests and the exact-projection
// reference; the streaming algorithm never builds it.
func (g *Generator) Matrix(t0 int64, n int) *mat.Matrix {
	r := mat.NewMatrix(n, g.sketchLen)
	for i := 0; i < n; i++ {
		g.RowInto(t0+int64(i), r.RowView(i))
	}
	return r
}

// Project computes the exact sketch matrix Z = (1/√l)·Rᵀ·Y for the window
// starting at interval t0, where Y is n×m. This is the reference the
// variance-histogram sketches approximate (paper eq. 24).
func (g *Generator) Project(t0 int64, y *mat.Matrix) (*mat.Matrix, error) {
	n, m := y.Rows(), y.Cols()
	l := g.sketchLen
	z := mat.NewMatrix(l, m)
	scale := 1 / math.Sqrt(float64(l))
	scratch := make([]float64, l)
	for i := 0; i < n; i++ {
		yrow := y.RowView(i)
		t := t0 + int64(i)
		g.RowInto(t, scratch)
		for k := 0; k < l; k++ {
			r := scratch[k]
			if r == 0 {
				continue
			}
			zrow := z.RowView(k)
			for j, yv := range yrow {
				zrow[j] += r * yv
			}
		}
	}
	z.Scale(scale)
	return z, nil
}

// mix combines two 64-bit words into one with good avalanche behaviour.
func mix(a, b uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 + b
	h ^= h >> 32
	h *= 0xd6e8feb86659fd93
	h ^= h >> 32
	return h
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixing
// function usable as a counter-based PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform01 maps 64 random bits to a uniform in [0, 1).
func uniform01(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// gaussianFromBits converts 64 random bits into a standard normal deviate by
// inverting the normal CDF on a uniform sample. Deterministic and
// branch-light: exactly one hash per deviate.
func gaussianFromBits(u uint64) float64 {
	p := uniform01(u)
	// Clamp away from the endpoints so the quantile stays finite.
	if p < 1e-17 {
		p = 1e-17
	}
	q, err := stats.NormalQuantile(p)
	if err != nil {
		// Unreachable given the clamp; keep the generator total anyway.
		return 0
	}
	return q
}
