package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][2]int{{1, 1}, {4, 4}, {10, 3}, {30, 8}} {
		a := randomMatrix(rng, sh[0], sh[1])
		qr, err := ComputeQR(a)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		back, err := qr.Q.Mul(qr.R)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a, 1e-9*math.Max(1, a.MaxAbs())) {
			t.Fatalf("%v: QR does not reconstruct A", sh)
		}
		checkOrthonormalColumns(t, qr.Q, 1e-10)
		// R upper triangular.
		for i := 0; i < qr.R.Rows(); i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Fatalf("%v: R not upper triangular at (%d,%d)", sh, i, j)
				}
			}
		}
	}
}

func TestQRErrors(t *testing.T) {
	if _, err := ComputeQR(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("wide matrix: %v", err)
	}
	bad := NewMatrix(3, 2)
	bad.Set(0, 0, math.NaN())
	if _, err := ComputeQR(bad); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("NaN: %v", err)
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r, _ := NewMatrixFromRows([][]float64{{2, 1}, {0, 4}})
	x, err := SolveUpperTriangular(r, []float64{5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1.5, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v", x)
	}
	sing, _ := NewMatrixFromRows([][]float64{{1, 1}, {0, 0}})
	if _, err := SolveUpperTriangular(sing, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular: %v", err)
	}
	if _, err := SolveUpperTriangular(r, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape: %v", err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: b = A·[1 2]ᵀ.
	a, _ := NewMatrixFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{1, 2, 3}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Fatalf("x = %v, want [1 2]", x)
	}
	if _, err := LeastSquares(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape: %v", err)
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestQuickLeastSquaresNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		m := 1 + r.Intn(3)
		a := randomMatrix(r, n, m)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // singular random draw: skip
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		for i := range res {
			res[i] = b[i] - ax[i]
		}
		atr, err := a.TMulVec(res)
		if err != nil {
			return false
		}
		for _, v := range atr {
			if math.Abs(v) > 1e-8*math.Max(1, Norm(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
