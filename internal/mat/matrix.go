// Package mat provides the dense linear-algebra substrate used by the
// streaming-PCA library: column-major-free dense matrices, vectors,
// Householder QR, a cyclic Jacobi symmetric eigensolver and a one-sided
// Jacobi (Hestenes) singular value decomposition.
//
// The package is deliberately small and dependency-free (stdlib only). It is
// tuned for the matrix sizes that occur in network-wide PCA detection —
// tens-to-hundreds of aggregated flows — where the robustness of Jacobi
// methods matters more than raw LAPACK-style throughput.
//
// All matrices use row-major storage. Dimensions are validated eagerly;
// functions return errors rather than panicking for user-reachable failure
// modes, per the project style guide.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Common errors returned by the package.
var (
	// ErrShape indicates incompatible or invalid matrix dimensions.
	ErrShape = errors.New("mat: incompatible matrix shape")
	// ErrSingular indicates a numerically singular system.
	ErrSingular = errors.New("mat: singular matrix")
	// ErrNoConverge indicates an iterative method exhausted its sweep budget.
	ErrNoConverge = errors.New("mat: iteration did not converge")
	// ErrNotFinite indicates a NaN or Inf was found where finite data is required.
	ErrNotFinite = errors.New("mat: non-finite value")
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use NewMatrix or NewMatrixFromRows
// to construct one with content.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns an r×c matrix of zeros.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		r, c = 0, 0
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from a slice of equally sized rows. The
// data is copied, so the caller retains ownership of rows.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// NewMatrixFromData wraps a row-major backing slice as an r×c matrix. The
// slice is used directly (not copied); len(data) must equal r*c.
func NewMatrixFromData(r, c int, data []float64) (*Matrix, error) {
	if r < 0 || c < 0 || len(data) != r*c {
		return nil, fmt.Errorf("%w: %d values for %dx%d matrix", ErrShape, len(data), r, c)
	}
	return &Matrix{rows: r, cols: c, data: data}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice sharing the matrix's backing storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	m.ColInto(j, out)
	return out
}

// ColInto copies column j into dst, which must have length Rows. It is the
// allocation-free variant of Col for hot loops that scan many columns (e.g.
// the detector's 3σ rank scan reusing one scratch column).
func (m *Matrix) ColInto(j int, dst []float64) error {
	if len(dst) != m.rows {
		return fmt.Errorf("%w: column of %d rows into buffer of %d", ErrShape, m.rows, len(dst))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
	return nil
}

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Matrix) SetRow(i int, v []float64) error {
	if len(v) != m.cols {
		return fmt.Errorf("%w: row of length %d into %d columns", ErrShape, len(v), m.cols)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
	return nil
}

// SetCol copies v into column j. len(v) must equal Rows.
func (m *Matrix) SetCol(j int, v []float64) error {
	if len(v) != m.rows {
		return fmt.Errorf("%w: column of length %d into %d rows", ErrShape, len(v), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Equal reports whether m and o have the same shape and elementwise values
// within absolute tolerance tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN/Inf).
func (m *Matrix) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Add returns m + o as a new matrix.
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i, v := range o.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns m − o as a new matrix.
func (m *Matrix) Sub(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i, v := range o.data {
		out.data[i] -= v
	}
	return out, nil
}

// Mul returns the matrix product m·o as a new matrix.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	return m.MulWorkers(o, 1)
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecTo(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecTo computes m·v into dst (length Rows) without allocating. dst must
// not alias v.
func (m *Matrix) MulVecTo(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("%w: mulvec %dx%d by vector of %d", ErrShape, m.rows, m.cols, len(v))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("%w: mulvec %dx%d into buffer of %d", ErrShape, m.rows, m.cols, len(dst))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
	return nil
}

// TMulVec returns mᵀ·v without materializing the transpose.
func (m *Matrix) TMulVec(v []float64) ([]float64, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("%w: tmulvec %dx%d by vector of %d", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, rv := range row {
			out[j] += vi * rv
		}
	}
	return out, nil
}

// Gram returns mᵀ·m (the c×c Gram matrix) exploiting symmetry.
func (m *Matrix) Gram() *Matrix {
	return m.GramWorkers(1)
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	// Scaled accumulation to avoid overflow for large entries.
	var scale, ssq float64 = 0, 1
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	return mx
}

// Trace returns the sum of diagonal elements; the matrix must be square.
func (m *Matrix) Trace() (float64, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("%w: trace of %dx%d", ErrShape, m.rows, m.cols)
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s, nil
}

// CenterColumns subtracts each column's mean from the column in place and
// returns the vector of removed means. This is the Y = X − x̄ adjustment the
// PCA methods require.
func (m *Matrix) CenterColumns() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxShow = 8
	var b strings.Builder
	b.WriteString(strconv.Itoa(m.rows))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(m.cols))
	b.WriteString(" [")
	for i := 0; i < m.rows && i < maxShow; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols && j < maxShow; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(m.At(i, j), 'g', 5, 64))
		}
		if m.cols > maxShow {
			b.WriteString(" …")
		}
	}
	if m.rows > maxShow {
		b.WriteString("; …")
	}
	b.WriteByte(']')
	return b.String()
}
