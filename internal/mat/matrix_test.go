package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestNewMatrixFromRows(t *testing.T) {
	tests := []struct {
		name    string
		rows    [][]float64
		wantErr bool
		r, c    int
	}{
		{name: "empty", rows: nil, r: 0, c: 0},
		{name: "rect", rows: [][]float64{{1, 2, 3}, {4, 5, 6}}, r: 2, c: 3},
		{name: "ragged", rows: [][]float64{{1, 2}, {3}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewMatrixFromRows(tt.rows)
			if tt.wantErr {
				if !errors.Is(err, ErrShape) {
					t.Fatalf("want ErrShape, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if m.Rows() != tt.r || m.Cols() != tt.c {
				t.Fatalf("shape = %dx%d, want %dx%d", m.Rows(), m.Cols(), tt.r, tt.c)
			}
		})
	}
}

func TestNewMatrixFromData(t *testing.T) {
	if _, err := NewMatrixFromData(2, 2, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	m, err := NewMatrixFromData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestMatrixRowColAccess(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	row := m.Row(1)
	row[0] = 99 // copy: must not affect m
	if m.At(1, 0) != 4 {
		t.Fatalf("Row returned a view, want copy")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col(2) = %v", col)
	}
	view := m.RowView(0)
	view[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatalf("RowView must share storage")
	}
	if err := m.SetRow(0, []float64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 9 {
		t.Fatalf("SetRow did not write")
	}
	if err := m.SetRow(0, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for short row, got %v", err)
	}
	if err := m.SetCol(1, []float64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 11 {
		t.Fatalf("SetCol did not write")
	}
	if err := m.SetCol(1, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for long col, got %v", err)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("double transpose must be identity")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("a·b = %v, want %v", got, want)
	}
	if _, err := a.Mul(NewMatrix(3, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMatrixAddSub(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMatrixFromRows([][]float64{{5, 5}, {5, 5}})
	if !sum.Equal(want, 0) {
		t.Fatalf("a+b = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a, 0) {
		t.Fatalf("(a+b)−b = %v, want a", diff)
	}
	if _, err := a.Add(NewMatrix(1, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("Add must reject shape mismatch")
	}
	if _, err := a.Sub(NewMatrix(1, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("Sub must reject shape mismatch")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	gotT, err := a.TMulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if gotT[0] != 5 || gotT[1] != 7 || gotT[2] != 9 {
		t.Fatalf("TMulVec = %v", gotT)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("MulVec must reject shape mismatch")
	}
	if _, err := a.TMulVec([]float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatal("TMulVec must reject shape mismatch")
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(rng, 1+rng.Intn(12), 1+rng.Intn(8))
		want, err := a.T().Mul(a)
		if err != nil {
			t.Fatal(err)
		}
		got := a.Gram()
		if !got.Equal(want, 1e-10) {
			t.Fatalf("Gram mismatch for %dx%d", a.Rows(), a.Cols())
		}
	}
}

func TestCenterColumns(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 10}, {3, 20}, {5, 30}})
	means := m.CenterColumns()
	if !almostEqual(means[0], 3, 1e-12) || !almostEqual(means[1], 20, 1e-12) {
		t.Fatalf("means = %v", means)
	}
	for j := 0; j < m.Cols(); j++ {
		var s float64
		for i := 0; i < m.Rows(); i++ {
			s += m.At(i, j)
		}
		if !almostEqual(s, 0, 1e-12) {
			t.Fatalf("column %d not centered: sum %v", j, s)
		}
	}
	empty := NewMatrix(0, 3)
	if got := empty.CenterColumns(); len(got) != 3 {
		t.Fatalf("empty matrix means length = %d", len(got))
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("‖m‖F = %v, want 5", got)
	}
	if got := NewMatrix(0, 0).FrobeniusNorm(); got != 0 {
		t.Fatalf("empty norm = %v", got)
	}
	big := NewMatrix(1, 2)
	big.Set(0, 0, 1e200)
	big.Set(0, 1, 1e200)
	if got := big.FrobeniusNorm(); math.IsInf(got, 0) {
		t.Fatal("scaled accumulation must not overflow")
	}
}

func TestTraceAndMaxAbs(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, -9}, {2, 3}})
	tr, err := m.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr != 4 {
		t.Fatalf("trace = %v", tr)
	}
	if m.MaxAbs() != 9 {
		t.Fatalf("maxabs = %v", m.MaxAbs())
	}
	if _, err := NewMatrix(2, 3).Trace(); !errors.Is(err, ErrShape) {
		t.Fatal("trace of non-square must fail")
	}
}

func TestIsFinite(t *testing.T) {
	m := NewMatrix(2, 2)
	if !m.IsFinite() {
		t.Fatal("zero matrix is finite")
	}
	m.Set(1, 1, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN must be detected")
	}
	m.Set(1, 1, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf must be detected")
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 5, 5)
	got, err := Identity(5).Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestMatrixString(t *testing.T) {
	small, _ := NewMatrixFromRows([][]float64{{1, 2}})
	if s := small.String(); s == "" {
		t.Fatal("String must render")
	}
	big := NewMatrix(20, 20)
	if s := big.String(); len(s) > 2000 {
		t.Fatalf("String of large matrix not elided: %d bytes", len(s))
	}
}

func TestMatrixBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, sh := range [][2]int{{0, 0}, {1, 1}, {3, 5}, {10, 2}} {
		a := randomMatrix(rng, sh[0], sh[1])
		blob, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var b Matrix
		if err := b.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if !b.Equal(a, 0) {
			t.Fatalf("%v: round trip changed values", sh)
		}
	}
}

func TestMatrixUnmarshalRejectsCorruption(t *testing.T) {
	a := NewMatrix(2, 2)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m Matrix
	if err := m.UnmarshalBinary(blob[:5]); !errors.Is(err, ErrShape) {
		t.Fatalf("truncated: %v", err)
	}
	if err := m.UnmarshalBinary(append(blob, 0)); !errors.Is(err, ErrShape) {
		t.Fatalf("trailing bytes: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99 // version
	if err := m.UnmarshalBinary(bad); !errors.Is(err, ErrShape) {
		t.Fatalf("bad version: %v", err)
	}
	huge := append([]byte(nil), blob...)
	for i := 4; i < 12; i++ {
		huge[i] = 0xff // implausible row count
	}
	if err := m.UnmarshalBinary(huge); !errors.Is(err, ErrShape) {
		t.Fatalf("huge dims: %v", err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestQuickTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, k, m)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		return ab.T().Equal(btat, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under transposition.
func TestQuickFrobeniusTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 1+r.Intn(10), 1+r.Intn(10))
		return almostEqual(a.FrobeniusNorm(), a.T().FrobeniusNorm(), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
