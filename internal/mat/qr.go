package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR decomposition A = Q·R with Q n×m having
// orthonormal columns (thin form, n ≥ m) and R m×m upper triangular.
type QR struct {
	Q *Matrix
	R *Matrix
}

// ComputeQR computes the thin QR decomposition of a (requires Rows ≥ Cols)
// using Householder reflections.
func ComputeQR(a *Matrix) (*QR, error) {
	n, m := a.rows, a.cols
	if n < m {
		return nil, fmt.Errorf("%w: qr of %dx%d requires rows >= cols", ErrShape, n, m)
	}
	if !a.IsFinite() {
		return nil, fmt.Errorf("%w: qr input", ErrNotFinite)
	}
	r := a.Clone()
	// Accumulate Q as a full n×n product, then trim to thin form.
	q := Identity(n)

	for k := 0; k < m; k++ {
		// Build the Householder vector for column k below the diagonal.
		var normX float64
		for i := k; i < n; i++ {
			x := r.data[i*m+k]
			normX += x * x
		}
		normX = math.Sqrt(normX)
		if normX == 0 {
			continue
		}
		alpha := -math.Copysign(normX, r.data[k*m+k])
		v := make([]float64, n-k)
		v[0] = r.data[k*m+k] - alpha
		for i := k + 1; i < n; i++ {
			v[i-k] = r.data[i*m+k]
		}
		vnorm := Norm(v)
		if vnorm == 0 {
			continue
		}
		ScaleVec(v, 1/vnorm)

		// R ← (I − 2vvᵀ)R on the trailing block.
		for j := k; j < m; j++ {
			var dot float64
			for i := k; i < n; i++ {
				dot += v[i-k] * r.data[i*m+j]
			}
			dot *= 2
			for i := k; i < n; i++ {
				r.data[i*m+j] -= dot * v[i-k]
			}
		}
		// Q ← Q(I − 2vvᵀ).
		for i := 0; i < n; i++ {
			var dot float64
			for j := k; j < n; j++ {
				dot += q.data[i*n+j] * v[j-k]
			}
			dot *= 2
			for j := k; j < n; j++ {
				q.data[i*n+j] -= dot * v[j-k]
			}
		}
	}

	thinQ := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		copy(thinQ.data[i*m:(i+1)*m], q.data[i*n:i*n+m])
	}
	thinR := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			thinR.data[i*m+j] = r.data[i*m+j]
		}
	}
	return &QR{Q: thinQ, R: thinR}, nil
}

// SolveUpperTriangular solves R·x = b for upper-triangular R by back
// substitution. Returns ErrSingular when a diagonal entry is (near) zero.
func SolveUpperTriangular(r *Matrix, b []float64) ([]float64, error) {
	m := r.rows
	if r.cols != m || len(b) != m {
		return nil, fmt.Errorf("%w: triangular solve %dx%d with rhs %d", ErrShape, r.rows, r.cols, len(b))
	}
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < m; j++ {
			s -= r.data[i*m+j] * x[j]
		}
		d := r.data[i*m+i]
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("%w: zero pivot at %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min ‖a·x − b‖₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("%w: least squares %dx%d with rhs %d", ErrShape, a.rows, a.cols, len(b))
	}
	qr, err := ComputeQR(a)
	if err != nil {
		return nil, err
	}
	qtb, err := qr.Q.TMulVec(b)
	if err != nil {
		return nil, err
	}
	return SolveUpperTriangular(qr.R, qtb)
}
