package mat

import (
	"fmt"
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U·diag(Values)·Vᵀ.
// For an n×m input with n ≥ m, U is n×m with orthonormal columns, Values
// has length m sorted descending, and V is m×m orthogonal. Inputs with
// n < m are handled by decomposing the transpose and swapping U and V.
type SVD struct {
	// U has orthonormal columns (left singular vectors).
	U *Matrix
	// Values are the singular values, descending, all ≥ 0.
	Values []float64
	// V is orthogonal; its columns are the right singular vectors.
	V *Matrix
}

// maxHestenesSweeps bounds the one-sided Jacobi iteration.
const maxHestenesSweeps = 64

// ComputeSVD computes the thin SVD of a via the one-sided Jacobi (Hestenes)
// method: columns of a working copy are repeatedly rotated until they are
// mutually orthogonal; the column norms are the singular values and the
// accumulated rotations form V. The input is not modified.
func ComputeSVD(a *Matrix) (*SVD, error) {
	if !a.IsFinite() {
		return nil, fmt.Errorf("%w: svd input", ErrNotFinite)
	}
	if a.rows < a.cols {
		// Decompose Aᵀ = U'ΣV'ᵀ, then A = V'ΣU'ᵀ.
		st, err := ComputeSVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: st.V, Values: st.Values, V: st.U}, nil
	}
	n, m := a.rows, a.cols
	if m == 0 {
		return &SVD{U: NewMatrix(n, 0), Values: nil, V: NewMatrix(0, 0)}, nil
	}

	w := a.Clone()
	v := Identity(m)

	// Column dot products are recomputed per rotation; for the m ≤ a few
	// hundred regime this library targets, the simple formulation wins on
	// clarity and is fast enough.
	colDot := func(p, q int) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += w.data[i*m+p] * w.data[i*m+q]
		}
		return s
	}

	eps := 1e-15
	for sweep := 0; sweep < maxHestenesSweeps; sweep++ {
		rotated := false
		for p := 0; p < m-1; p++ {
			for q := p + 1; q < m; q++ {
				alpha := colDot(p, p)
				beta := colDot(q, q)
				gamma := colDot(p, q)
				if gamma == 0 {
					continue
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				rotated = true
				// Rotation that orthogonalizes columns p and q
				// (Hestenes; Golub & Van Loan §8.6.3).
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < n; i++ {
					wip := w.data[i*m+p]
					wiq := w.data[i*m+q]
					w.data[i*m+p] = c*wip - s*wiq
					w.data[i*m+q] = s*wip + c*wiq
				}
				applyRightRotation(v, p, q, c, s)
			}
		}
		if !rotated {
			return finishSVD(w, v), nil
		}
	}
	// Columns may have stopped improving at machine precision without the
	// no-rotation sweep firing; verify residual orthogonality before failing.
	var worst float64
	for p := 0; p < m-1; p++ {
		for q := p + 1; q < m; q++ {
			alpha := colDot(p, p)
			beta := colDot(q, q)
			gamma := colDot(p, q)
			if alpha > 0 && beta > 0 {
				r := math.Abs(gamma) / math.Sqrt(alpha*beta)
				if r > worst {
					worst = r
				}
			}
		}
	}
	if worst < 1e-10 {
		return finishSVD(w, v), nil
	}
	return nil, fmt.Errorf("%w: hestenes svd after %d sweeps", ErrNoConverge, maxHestenesSweeps)
}

// finishSVD extracts singular values as column norms of w, normalizes the
// columns into U and sorts the triplets by descending singular value.
func finishSVD(w, v *Matrix) *SVD {
	n, m := w.rows, w.cols
	type trip struct {
		sv  float64
		idx int
	}
	trips := make([]trip, m)
	for j := 0; j < m; j++ {
		var s float64
		for i := 0; i < n; i++ {
			x := w.data[i*m+j]
			s += x * x
		}
		trips[j] = trip{sv: math.Sqrt(s), idx: j}
	}
	sort.Slice(trips, func(a, b int) bool { return trips[a].sv > trips[b].sv })

	u := NewMatrix(n, m)
	vv := NewMatrix(m, m)
	values := make([]float64, m)
	for jOut, t := range trips {
		values[jOut] = t.sv
		inv := 0.0
		if t.sv > 0 {
			inv = 1 / t.sv
		}
		for i := 0; i < n; i++ {
			u.data[i*m+jOut] = w.data[i*m+t.idx] * inv
		}
		for i := 0; i < m; i++ {
			vv.data[i*m+jOut] = v.data[i*m+t.idx]
		}
	}
	return &SVD{U: u, Values: values, V: vv}
}

// Reconstruct multiplies U·diag(Values)·Vᵀ back into a dense matrix; useful
// for testing and for low-rank truncation when values beyond rank are zeroed.
func (s *SVD) Reconstruct() (*Matrix, error) {
	n := s.U.rows
	k := len(s.Values)
	m := s.V.rows
	if s.U.cols != k || s.V.cols != k {
		return nil, fmt.Errorf("%w: svd reconstruct with U %dx%d, %d values, V %dx%d",
			ErrShape, s.U.rows, s.U.cols, k, s.V.rows, s.V.cols)
	}
	out := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			var acc float64
			for t := 0; t < k; t++ {
				acc += s.U.data[i*k+t] * s.Values[t] * s.V.data[j*k+t]
			}
			out.data[i*m+j] = acc
		}
	}
	return out, nil
}

// Rank returns the number of singular values exceeding tol·max(value).
func (s *SVD) Rank(tol float64) int {
	if len(s.Values) == 0 {
		return 0
	}
	thresh := tol * s.Values[0]
	r := 0
	for _, v := range s.Values {
		if v > thresh {
			r++
		}
	}
	return r
}
