package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// lowRankPlusNoise builds an n×m matrix with a planted rank-r spectrum well
// above the noise floor.
func lowRankPlusNoise(rng *rand.Rand, n, m, r int, noise float64) *Matrix {
	out := NewMatrix(n, m)
	for k := 0; k < r; k++ {
		u := make([]float64, n)
		v := make([]float64, m)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		Normalize(u)
		Normalize(v)
		s := 100.0 / float64(k+1)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				out.Set(i, j, out.At(i, j)+s*u[i]*v[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.Set(i, j, out.At(i, j)+noise*rng.NormFloat64())
		}
	}
	return out
}

func TestRandomizedSVDMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, m, r = 60, 40, 5
	a := lowRankPlusNoise(rng, n, m, r, 1e-3)
	exact, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RandomizedSVD(a, r, 10, 1, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Values) != r+10 {
		t.Fatalf("got %d values, want %d", len(approx.Values), r+10)
	}
	for k := 0; k < r; k++ {
		rel := math.Abs(approx.Values[k]-exact.Values[k]) / exact.Values[k]
		if rel > 1e-6 {
			t.Fatalf("singular value %d: %v vs exact %v (rel %v)", k, approx.Values[k], exact.Values[k], rel)
		}
		// Right singular vectors match up to sign.
		dot := 0.0
		for i := 0; i < m; i++ {
			dot += approx.V.At(i, k) * exact.V.At(i, k)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("right vector %d: |<v,v*>| = %v", k, math.Abs(dot))
		}
	}
	// The returned V must have orthonormal columns.
	g := approx.V.Gram()
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-8 {
				t.Fatalf("VᵀV[%d,%d] = %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestRandomizedSVDDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := lowRankPlusNoise(rng, 50, 30, 4, 0.1)
	ref, err := RandomizedSVD(a, 6, 4, 2, 123, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7} {
		got, err := RandomizedSVD(a, 6, 4, 2, 123, w)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref.Values {
			if got.Values[k] != ref.Values[k] {
				t.Fatalf("workers=%d: value %d differs bitwise (%v vs %v)", w, k, got.Values[k], ref.Values[k])
			}
		}
		if !got.V.Equal(ref.V, 0) {
			t.Fatalf("workers=%d: V differs bitwise", w)
		}
	}
	// A different seed must change the sample (sanity that seeding works).
	other, err := RandomizedSVD(a, 6, 4, 0, 124, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range ref.Values {
		if other.Values[k] != ref.Values[k] {
			same = false
		}
	}
	if same {
		t.Fatal("seed change left all singular values bitwise identical")
	}
}

func TestRandomizedSVDWideAndTall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{20, 64}, {64, 20}, {8, 8}} {
		a := lowRankPlusNoise(rng, dims[0], dims[1], 3, 1e-4)
		got, err := RandomizedSVD(a, 3, 5, 1, 1, 0)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		p := 8
		if lim := dims[0]; p > lim {
			p = lim
		}
		if lim := dims[1]; p > lim {
			p = lim
		}
		if len(got.Values) != p {
			t.Fatalf("%v: %d values, want %d", dims, len(got.Values), p)
		}
		exact, err := ComputeSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got.Values[0]-exact.Values[0]) / exact.Values[0]; rel > 1e-6 {
			t.Fatalf("%v: top value rel err %v", dims, rel)
		}
	}
}

func TestRandomizedSVDErrors(t *testing.T) {
	a := NewMatrix(4, 4)
	a.Set(0, 0, 1)
	if _, err := RandomizedSVD(a, -1, 2, 0, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("negative rank: %v", err)
	}
	if _, err := RandomizedSVD(a, 0, 0, 0, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("zero sample: %v", err)
	}
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, math.NaN())
	if _, err := RandomizedSVD(bad, 1, 1, 0, 1, 1); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("non-finite: %v", err)
	}
}
