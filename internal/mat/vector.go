package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; a mismatched call is a programming error and panics via the
// bounds check, so callers should validate shapes at their boundary.
func Dot(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v using scaled accumulation to avoid
// overflow and underflow.
func Norm(v []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// AddScaled computes dst += s·src in place.
func AddScaled(dst []float64, s float64, src []float64) {
	for i, v := range src {
		dst[i] += s * v
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// SubVec returns a − b as a new slice.
func SubVec(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: sub vectors of %d and %d", ErrShape, len(a), len(b))
	}
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av - b[i]
	}
	return out, nil
}

// Normalize scales v to unit Euclidean norm in place and returns the
// original norm. A zero vector is left untouched and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm(v)
	if n == 0 {
		return 0
	}
	ScaleVec(v, 1/n)
	return n
}

// VecIsFinite reports whether every element of v is finite.
func VecIsFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance Σ(x−mean)² of v (not divided by
// n), matching the paper's definition (10). An empty slice yields 0.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mean := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mean
		s += d * d
	}
	return s
}
