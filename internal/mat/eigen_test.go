package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkOrthonormalColumns verifies QᵀQ ≈ I.
func checkOrthonormalColumns(t *testing.T, q *Matrix, tol float64) {
	t.Helper()
	prod, err := q.T().Mul(q)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(Identity(q.Cols()), tol) {
		t.Fatalf("columns not orthonormal: QᵀQ deviates by up to %v", func() float64 {
			d, _ := prod.Sub(Identity(q.Cols()))
			return d.MaxAbs()
		}())
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2 1],[1 2]] has eigenvalues 3 and 1.
	a, _ := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(eig.Values[0], 3, 1e-12) || !almostEqual(eig.Values[1], 1, 1e-12) {
		t.Fatalf("eigenvalues = %v, want [3 1]", eig.Values)
	}
	checkOrthonormalColumns(t, eig.Vectors, 1e-12)
}

func TestSymEigenDiagonal(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{5, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, -1}
	for i, w := range want {
		if !almostEqual(eig.Values[i], w, 1e-12) {
			t.Fatalf("values = %v, want %v", eig.Values, want)
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := randomSymmetric(rng, n)
		eig, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkOrthonormalColumns(t, eig.Vectors, 1e-9)
		// Rebuild VΛVᵀ.
		lam := NewMatrix(n, n)
		for i, v := range eig.Values {
			lam.Set(i, i, v)
		}
		vl, err := eig.Vectors.Mul(lam)
		if err != nil {
			t.Fatal(err)
		}
		back, err := vl.Mul(eig.Vectors.T())
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a, 1e-8*math.Max(1, a.MaxAbs())) {
			t.Fatalf("n=%d: VΛVᵀ does not reconstruct A", n)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if eig.Values[i] > eig.Values[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not descending: %v", n, eig.Values)
			}
		}
	}
}

func TestSymEigenPSDGramIsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 30, 8)
	g := a.Gram()
	eig, err := SymEigen(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if v < -1e-8 {
			t.Fatalf("gram matrix eigenvalue negative: %v", v)
		}
	}
}

func TestSymEigenErrors(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square: %v", err)
	}
	bad := NewMatrix(2, 2)
	bad.Set(0, 1, math.NaN())
	if _, err := SymEigen(bad); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("NaN input: %v", err)
	}
	empty, err := SymEigen(NewMatrix(0, 0))
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if len(empty.Values) != 0 {
		t.Fatal("empty must yield no eigenvalues")
	}
	zero, err := SymEigen(NewMatrix(3, 3))
	if err != nil {
		t.Fatalf("zero matrix: %v", err)
	}
	for _, v := range zero.Values {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", zero.Values)
		}
	}
}

// Property: trace(A) == Σ eigenvalues and ‖A‖F² == Σ λ².
func TestQuickEigenInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSymmetric(r, n)
		eig, err := SymEigen(a)
		if err != nil {
			return false
		}
		tr, _ := a.Trace()
		var sum, sumSq float64
		for _, v := range eig.Values {
			sum += v
			sumSq += v * v
		}
		fn := a.FrobeniusNorm()
		return almostEqual(tr, sum, 1e-8*math.Max(1, math.Abs(tr))) &&
			almostEqual(fn*fn, sumSq, 1e-7*math.Max(1, fn*fn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: A·v_j == λ_j·v_j for every eigenpair.
func TestQuickEigenPairsSatisfyDefinition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		a := randomSymmetric(r, n)
		eig, err := SymEigen(a)
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			v := eig.Vectors.Col(j)
			av, err := a.MulVec(v)
			if err != nil {
				return false
			}
			for i := range av {
				if !almostEqual(av[i], eig.Values[j]*v[i], 1e-7*math.Max(1, a.MaxAbs())) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
