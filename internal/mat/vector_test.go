package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("dot = %v", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("empty dot = %v", got)
	}
}

func TestNorm(t *testing.T) {
	tests := []struct {
		name string
		v    []float64
		want float64
	}{
		{name: "pythagorean", v: []float64{3, 4}, want: 5},
		{name: "empty", v: nil, want: 0},
		{name: "zeros", v: []float64{0, 0}, want: 0},
		{name: "single", v: []float64{-7}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Norm(tt.v); !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("norm = %v, want %v", got, tt.want)
			}
		})
	}
	// Overflow safety.
	if got := Norm([]float64{1e300, 1e300}); math.IsInf(got, 0) {
		t.Fatal("norm must not overflow")
	}
	// Underflow safety.
	if got := Norm([]float64{1e-300, 1e-300}); got == 0 {
		t.Fatal("norm must not underflow to zero")
	}
}

func TestAddScaledAndScaleVec(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Fatalf("AddScaled = %v", dst)
	}
	ScaleVec(dst, 0.5)
	if dst[0] != 10.5 || dst[1] != 21 {
		t.Fatalf("ScaleVec = %v", dst)
	}
}

func TestSubVec(t *testing.T) {
	got, err := SubVec([]float64{5, 7}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("SubVec = %v", got)
	}
	if _, err := SubVec([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape: %v", err)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if !almostEqual(n, 5, 1e-12) {
		t.Fatalf("returned norm = %v", n)
	}
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("zero vector norm must be 0")
	}
}

func TestVecIsFinite(t *testing.T) {
	if !VecIsFinite([]float64{1, 2}) {
		t.Fatal("finite vector")
	}
	if VecIsFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN must fail")
	}
	if VecIsFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf must fail")
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("mean = %v", got)
	}
	// Population sum-of-squares variance per paper eq. (10): Σ(x−x̄)² = 32.
	if got := Variance(v); !almostEqual(got, 32, 1e-12) {
		t.Fatalf("variance = %v, want 32", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty stats must be 0")
	}
}

// Property: Cauchy–Schwarz |a·b| ≤ ‖a‖‖b‖.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		return math.Abs(Dot(a, b)) <= Norm(a)*Norm(b)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Variance is translation invariant and quadratic under scaling.
func TestQuickVarianceProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64() * 10
		}
		shift := r.NormFloat64() * 100
		scale := 1 + r.Float64()*3
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i := range v {
			shifted[i] = v[i] + shift
			scaled[i] = v[i] * scale
		}
		base := Variance(v)
		tol := 1e-7 * math.Max(1, base)
		return almostEqual(Variance(shifted), base, tol*10) &&
			almostEqual(Variance(scaled), base*scale*scale, tol*scale*scale*10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
