package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDKnownDiagonal(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, -4}, {0, 0}})
	svd, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(svd.Values[0], 4, 1e-12) || !almostEqual(svd.Values[1], 3, 1e-12) {
		t.Fatalf("singular values = %v, want [4 3]", svd.Values)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	shapes := [][2]int{{1, 1}, {3, 2}, {2, 3}, {10, 4}, {4, 10}, {20, 20}, {50, 7}}
	for _, sh := range shapes {
		a := randomMatrix(rng, sh[0], sh[1])
		svd, err := ComputeSVD(a)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		back, err := svd.Reconstruct()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a, 1e-9*math.Max(1, a.MaxAbs())) {
			t.Fatalf("%v: UΣVᵀ does not reconstruct A", sh)
		}
		checkOrthonormalColumns(t, svd.U, 1e-9)
		checkOrthonormalColumns(t, svd.V, 1e-9)
		for i := 1; i < len(svd.Values); i++ {
			if svd.Values[i] > svd.Values[i-1]+1e-12 {
				t.Fatalf("%v: singular values not descending: %v", sh, svd.Values)
			}
		}
		for _, v := range svd.Values {
			if v < 0 {
				t.Fatalf("%v: negative singular value %v", sh, v)
			}
		}
	}
}

func TestSVDMatchesEigenOfGram(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 40, 12)
	svd, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := SymEigen(a.Gram())
	if err != nil {
		t.Fatal(err)
	}
	for j := range svd.Values {
		ev := eig.Values[j]
		if ev < 0 {
			ev = 0
		}
		if !almostEqual(svd.Values[j], math.Sqrt(ev), 1e-8*math.Max(1, svd.Values[0])) {
			t.Fatalf("σ_%d = %v but sqrt(λ_%d) = %v", j, svd.Values[j], j, math.Sqrt(ev))
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewMatrix(5, 4)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	svd, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := svd.Rank(1e-10); got != 1 {
		t.Fatalf("rank = %d, want 1 (values %v)", got, svd.Values)
	}
}

func TestSVDZeroAndEmpty(t *testing.T) {
	z, err := ComputeSVD(NewMatrix(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range z.Values {
		if v != 0 {
			t.Fatalf("zero matrix singular values = %v", z.Values)
		}
	}
	if z.Rank(1e-12) != 0 {
		t.Fatal("zero matrix must have rank 0")
	}
	e, err := ComputeSVD(NewMatrix(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Values) != 0 {
		t.Fatal("empty matrix must have no singular values")
	}
}

func TestSVDNotFinite(t *testing.T) {
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, math.Inf(-1))
	if _, err := ComputeSVD(bad); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("want ErrNotFinite, got %v", err)
	}
}

func TestSVDReconstructShapeError(t *testing.T) {
	s := &SVD{U: NewMatrix(3, 2), Values: []float64{1}, V: NewMatrix(2, 2)}
	if _, err := s.Reconstruct(); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

// Property: ‖A‖F² == Σ σ² (singular values capture all energy).
func TestQuickSVDEnergy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 1+r.Intn(12), 1+r.Intn(12))
		svd, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		var sumSq float64
		for _, v := range svd.Values {
			sumSq += v * v
		}
		fn := a.FrobeniusNorm()
		return almostEqual(fn*fn, sumSq, 1e-7*math.Max(1, fn*fn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: A·v_j == σ_j·u_j (definition of singular pairs).
func TestQuickSVDSingularPairs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 2+r.Intn(8), 1+r.Intn(6)
		a := randomMatrix(r, n, m)
		svd, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		for j := range svd.Values {
			av, err := a.MulVec(svd.V.Col(j))
			if err != nil {
				return false
			}
			u := svd.U.Col(j)
			for i := range av {
				if !almostEqual(av[i], svd.Values[j]*u[i], 1e-7*math.Max(1, a.MaxAbs())) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
