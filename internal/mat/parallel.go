package mat

import (
	"fmt"
	"math"

	"streampca/internal/par"
)

// Parallel kernel tuning. The thresholds pick the serial path when the total
// work is too small to amortize goroutine fork/join (~1–2µs); they are in
// units of inner-loop multiply-adds.
const (
	// minParWork is the smallest kernel size worth forking for.
	minParWork = 1 << 15
	// shardWork is the target multiply-add count per shard; grain values are
	// derived from it so shards stay coarse enough to be cache- and
	// scheduling-friendly.
	shardWork = 1 << 13
)

// MulWorkers is Mul with the output rows sharded across up to workers
// goroutines (0 = auto, see par.Workers). Every worker runs the identical
// inner loops over its disjoint range of output rows, so the product is
// bit-identical to the serial result for any worker count.
func (m *Matrix) MulWorkers(o *Matrix, workers int) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	out := NewMatrix(m.rows, o.cols)
	w := par.Workers(workers)
	rowWork := m.cols * o.cols
	if w > 1 && m.rows*rowWork < minParWork {
		w = 1
	}
	grain := 1
	if rowWork > 0 {
		grain = 1 + shardWork/rowWork
	}
	par.For(w, m.rows, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mrow := m.data[i*m.cols : (i+1)*m.cols]
			orow := out.data[i*o.cols : (i+1)*o.cols]
			for k, mv := range mrow {
				if mv == 0 {
					continue
				}
				okrow := o.data[k*o.cols : (k+1)*o.cols]
				for j, ov := range okrow {
					orow[j] += mv * ov
				}
			}
		}
	})
	return out, nil
}

// triangularBounds splits the output rows [0, c) of an upper-triangular
// accumulation into at most maxShards contiguous ranges of roughly equal
// work, where row a costs proportionally to c−a (low rows own long
// triangle tails). The bounds depend only on (c, maxShards), keeping the
// sharding deterministic.
func triangularBounds(c, maxShards int) []int {
	if maxShards < 1 {
		maxShards = 1
	}
	bounds := []int{0}
	total := float64(c) * float64(c+1) / 2
	for k := 1; k < maxShards; k++ {
		// Row a* where the cumulative triangular area hits k/maxShards:
		// solve c² − (c−a)² = (k/maxShards)·c² approximately.
		frac := float64(k) / float64(maxShards)
		rem := (1 - frac) * total
		// rows [a, c) hold (c−a)(c−a+1)/2 ≈ (c−a)²/2 work.
		a := c - int(math.Sqrt(2*rem))
		if last := bounds[len(bounds)-1]; a < last {
			a = last
		}
		if a > c {
			a = c
		}
		bounds = append(bounds, a)
	}
	bounds = append(bounds, c)
	return bounds
}

// GramWorkers is Gram with the output rows sharded across up to workers
// goroutines (0 = auto). Each worker owns a contiguous range of output rows
// and accumulates input rows in the same ascending order as the serial
// kernel, so the Gram matrix is bit-identical for any worker count. Shard
// boundaries follow the triangular work profile (row a costs ∝ c−a), keeping
// the load balanced.
func (m *Matrix) GramWorkers(workers int) *Matrix {
	out := NewMatrix(m.cols, m.cols)
	c := m.cols
	w := par.Workers(workers)
	if w > 1 && m.rows*c*c/2 < minParWork {
		w = 1
	}
	if w <= 1 || c == 0 {
		gramRows(m, out, 0, c)
	} else {
		bounds := triangularBounds(c, w)
		par.For(w, len(bounds)-1, 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				gramRows(m, out, bounds[s], bounds[s+1])
			}
		})
	}
	// Mirror the upper triangle into the lower one, sharded by destination
	// row (disjoint writes; the upper triangle is complete after the barrier
	// above).
	par.For(w, c, 1+shardWork/(c+1), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			brow := out.data[b*c : (b+1)*c]
			for a := 0; a < b; a++ {
				brow[a] = out.data[a*c+b]
			}
		}
	})
	return out
}

// gramRows accumulates the upper-triangular Gram rows [rowLo, rowHi): for
// each input row, out[a][b] += row[a]·row[b] for a in range, b ≥ a. The
// per-entry accumulation order over input rows matches the serial kernel
// exactly.
func gramRows(m, out *Matrix, rowLo, rowHi int) {
	c := m.cols
	for i := 0; i < m.rows; i++ {
		row := m.data[i*c : (i+1)*c]
		for a := rowLo; a < rowHi; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			orow := out.data[a*c : (a+1)*c]
			for b := a; b < c; b++ {
				orow[b] += ra * row[b]
			}
		}
	}
}
