package mat

import (
	"fmt"
	"math"

	"streampca/internal/par"
)

// Parallel kernel tuning. The thresholds pick the serial path when the total
// work is too small to amortize goroutine fork/join (~1–2µs); they are in
// units of inner-loop multiply-adds.
const (
	// minParWork is the smallest kernel size worth forking for.
	minParWork = 1 << 15
	// shardWork is the target multiply-add count per shard; grain values are
	// derived from it so shards stay coarse enough to be cache- and
	// scheduling-friendly.
	shardWork = 1 << 13
	// tileBytes is the input footprint one Gram/Mul tile targets: half of a
	// conservative 256KB per-core L2, leaving the other half for the output
	// panel the tile streams against.
	tileBytes = 128 << 10
)

// gramTileRows returns the input-row tile height for a rows×cols Gram. It is
// a pure function of the matrix shape — never of the worker count — because
// the tile boundaries fix the floating-point summation order: every per-entry
// sum is "accumulate rows within a tile in ascending order, then combine
// tiles in a fixed binary tree", so the result is bit-identical no matter how
// many workers the tiles are spread across.
func gramTileRows(rows, cols int) int {
	if rows < 1 || cols < 1 {
		return 1
	}
	// One tile when the whole kernel is below the fork threshold: the single
	// tile degenerates to the plain serial accumulation order.
	if rows*cols*(cols+1)/2 < minParWork {
		return rows
	}
	t := tileBytes / (8 * cols)
	if t < 16 {
		t = 16
	}
	if t > rows {
		t = rows
	}
	return t
}

// MulWorkers is Mul with the output rows sharded across up to workers
// goroutines (0 = auto, see par.Workers) and the inner dimension blocked into
// L2-sized tiles of o's rows, so each worker streams a hot panel of o across
// its whole output range instead of re-streaming all of o per output row.
// Per output entry the k-summation order is ascending regardless of blocking
// or sharding, so the product is bit-identical to the serial result for any
// worker count.
func (m *Matrix) MulWorkers(o *Matrix, workers int) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	out := NewMatrix(m.rows, o.cols)
	w := par.Workers(workers)
	rowWork := m.cols * o.cols
	if w > 1 && m.rows*rowWork < minParWork {
		w = 1
	}
	grain := 1
	if rowWork > 0 {
		grain = 1 + shardWork/rowWork
	}
	// Block o's rows so the panel o[k0:k1) stays cache-resident while the
	// worker sweeps its output rows. Pure function of the shapes.
	kb := o.rows
	if o.cols > 0 {
		if kb = tileBytes / (8 * o.cols); kb < 16 {
			kb = 16
		}
		if kb > o.rows {
			kb = o.rows
		}
	}
	par.For(w, m.rows, grain, func(lo, hi int) {
		for k0 := 0; k0 < m.cols; k0 += kb {
			k1 := k0 + kb
			if k1 > m.cols {
				k1 = m.cols
			}
			for i := lo; i < hi; i++ {
				mrow := m.data[i*m.cols+k0 : i*m.cols+k1]
				orow := out.data[i*o.cols : (i+1)*o.cols]
				for kk, mv := range mrow {
					if mv == 0 {
						continue
					}
					k := k0 + kk
					okrow := o.data[k*o.cols : (k+1)*o.cols]
					for j, ov := range okrow {
						orow[j] += mv * ov
					}
				}
			}
		}
	})
	return out, nil
}

// triangularBounds splits the rows [0, c) of a triangular workload into at
// most maxShards contiguous non-empty ranges of roughly equal work, where row
// a costs proportionally to c−a (low rows own long triangle tails). Fewer
// than maxShards ranges are returned when c is small — every returned shard
// is non-empty and their union is exactly [0, c). The bounds depend only on
// (c, maxShards), keeping the sharding deterministic.
func triangularBounds(c, maxShards int) []int {
	if maxShards < 1 {
		maxShards = 1
	}
	if maxShards > c {
		maxShards = c
	}
	if c == 0 {
		return []int{0, 0}
	}
	bounds := []int{0}
	total := float64(c) * float64(c+1) / 2
	for k := 1; k < maxShards; k++ {
		// Row a* where the cumulative triangular area hits k/maxShards:
		// solve c² − (c−a)² = (k/maxShards)·c² approximately.
		frac := float64(k) / float64(maxShards)
		rem := (1 - frac) * total
		// rows [a, c) hold (c−a)(c−a+1)/2 ≈ (c−a)²/2 work.
		a := c - int(math.Sqrt(2*rem))
		// Every shard owns at least one row: maxShards ≤ c guarantees there
		// is room both below (strictly increasing bounds) and above (the
		// remaining shards each still get a row).
		if lo := bounds[len(bounds)-1] + 1; a < lo {
			a = lo
		}
		if hi := c - (maxShards - k); a > hi {
			a = hi
		}
		bounds = append(bounds, a)
	}
	bounds = append(bounds, c)
	return bounds
}

// GramWorkers computes mᵀ·m with the *input* rows partitioned into L2-sized
// tiles (see gramTileRows): each tile accumulates a private partial Gram
// panel, tiles are distributed across up to workers goroutines (0 = auto),
// and the partial panels are reduced in a fixed binary tree over the tile
// index. Both the tile boundaries and the reduction tree depend only on the
// matrix shape, so the result is bit-identical for any worker count — only
// *which goroutine* computes a tile changes, never what is summed in which
// order. Unlike output-sharded designs, every worker streams only its own
// tiles' input rows, so the kernel's memory traffic shrinks with the worker
// count instead of being re-paid per worker.
func (m *Matrix) GramWorkers(workers int) *Matrix {
	c := m.cols
	out := NewMatrix(c, c)
	if c == 0 || m.rows == 0 {
		return out
	}
	w := par.Workers(workers)
	if w > 1 && m.rows*c*(c+1)/2 < minParWork {
		w = 1 // run inline: forking costs more than the whole kernel
	}
	tile := gramTileRows(m.rows, c)
	nt := (m.rows + tile - 1) / tile
	if nt == 1 {
		gramAccumulate(m, out.data, 0, m.rows)
	} else {
		// Tile t accumulates rows [t·tile, (t+1)·tile) into its own panel;
		// tile 0 owns the output itself, the rest scratch panels.
		scratch := make([]float64, (nt-1)*c*c)
		panel := func(t int) []float64 {
			if t == 0 {
				return out.data
			}
			return scratch[(t-1)*c*c : t*c*c]
		}
		par.For(w, nt, 1, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				rowHi := (t + 1) * tile
				if rowHi > m.rows {
					rowHi = m.rows
				}
				gramAccumulate(m, panel(t), t*tile, rowHi)
			}
		})
		// Fixed-tree reduction: level s merges panel t+s into panel t for
		// every t ≡ 0 (mod 2s). The tree shape is a pure function of nt, and
		// within a level the destinations are disjoint, so the per-entry
		// summation order never depends on scheduling. Sharded by output row
		// (disjoint writes).
		rowGrain := 1 + shardWork/(c+1)
		for stride := 1; stride < nt; stride *= 2 {
			var pairs [][2][]float64
			for t := 0; t+stride < nt; t += 2 * stride {
				pairs = append(pairs, [2][]float64{panel(t), panel(t + stride)})
			}
			par.For(w, c, rowGrain, func(lo, hi int) {
				for _, pr := range pairs {
					dst, src := pr[0], pr[1]
					for a := lo; a < hi; a++ {
						drow := dst[a*c+a : (a+1)*c]
						srow := src[a*c+a : (a+1)*c]
						for b := range drow {
							drow[b] += srow[b]
						}
					}
				}
			})
		}
	}
	// Mirror the upper triangle into the lower one (disjoint writes; the
	// upper triangle is complete after the barrier above). Destination row b
	// copies b entries, so the work profile is triangular: reuse the
	// triangular partition with the row index reversed.
	mb := triangularBounds(c, w)
	par.For(w, len(mb)-1, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			for b := c - mb[s+1]; b < c-mb[s]; b++ {
				brow := out.data[b*c : b*c+b]
				for a := range brow {
					brow[a] = out.data[a*c+b]
				}
			}
		}
	})
	return out
}

// gramAccumulate folds input rows [rowLo, rowHi) into the upper triangle of
// the c×c panel: out[a][b] += row[a]·row[b] for b ≥ a. Rows are consumed in
// pairs — the panel is streamed once per pair instead of once per row, and
// the two accumulation chains pipeline — with the pairing fixed by the tile
// boundary, so the per-entry summation order is a pure function of the row
// range. Zero entries skip their inner sweep entirely (the sketch matrices
// this kernel serves are sparse for the sparse projection families); the
// skip only elides adding ra·row[b] terms that are exactly ±0, and both rows
// of a pair take the same path, so the fast path is deterministic too.
func gramAccumulate(m *Matrix, out []float64, rowLo, rowHi int) {
	c := m.cols
	i := rowLo
	for ; i+1 < rowHi; i += 2 {
		row0 := m.data[i*c : (i+1)*c]
		row1 := m.data[(i+1)*c : (i+2)*c]
		for a := 0; a < c; a++ {
			r0, r1 := row0[a], row1[a]
			orow := out[a*c+a : (a+1)*c]
			switch {
			case r0 != 0 && r1 != 0:
				for b := range orow {
					orow[b] += r0*row0[a+b] + r1*row1[a+b]
				}
			case r0 != 0:
				for b := range orow {
					orow[b] += r0 * row0[a+b]
				}
			case r1 != 0:
				for b := range orow {
					orow[b] += r1 * row1[a+b]
				}
			}
		}
	}
	for ; i < rowHi; i++ {
		row := m.data[i*c : (i+1)*c]
		for a := 0; a < c; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			orow := out[a*c+a : (a+1)*c]
			for b := range orow {
				orow[b] += ra * row[a+b]
			}
		}
	}
}
