package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym holds the eigendecomposition A = V·diag(Values)·Vᵀ of a symmetric
// matrix. Values are sorted in descending order and Vectors' column j is the
// unit eigenvector for Values[j].
type EigenSym struct {
	// Values are the eigenvalues in descending order.
	Values []float64
	// Vectors is the n×n orthonormal matrix whose columns are eigenvectors.
	Vectors *Matrix
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence for
// symmetric matrices is quadratic; well-conditioned problems finish in a
// handful of sweeps and 64 is far beyond any realistic need.
const maxJacobiSweeps = 64

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. Only the upper triangle is read; the matrix is
// not modified. It returns ErrShape for non-square input, ErrNotFinite for
// NaN/Inf entries and ErrNoConverge if the off-diagonal mass does not vanish
// within the sweep budget.
func SymEigen(a *Matrix) (*EigenSym, error) {
	n := a.rows
	if n != a.cols {
		return nil, fmt.Errorf("%w: eigendecomposition of %dx%d", ErrShape, a.rows, a.cols)
	}
	if !a.IsFinite() {
		return nil, fmt.Errorf("%w: eigendecomposition input", ErrNotFinite)
	}
	if n == 0 {
		return &EigenSym{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	// Work on a symmetrized copy so the caller's matrix stays intact and
	// slight asymmetries from floating-point accumulation are averaged out.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.data[i*n+j] = 0.5 * (a.data[i*n+j] + a.data[j*n+i])
		}
	}
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.data[i*n+j]
				s += x * x
			}
		}
		return s
	}

	normA := w.FrobeniusNorm()
	if normA == 0 {
		return finishEigen(w, v), nil
	}
	tol := 1e-28 * normA * normA

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= tol {
			return finishEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Skip rotations that cannot change the result at
				// machine precision.
				if math.Abs(apq) <= 1e-17*(math.Abs(app)+math.Abs(aqq)) {
					w.data[p*n+q] = 0
					w.data[q*n+p] = 0
					continue
				}
				c, s := jacobiRotation(app, aqq, apq)
				applySymRotation(w, p, q, c, s)
				applyRightRotation(v, p, q, c, s)
			}
		}
	}
	if offDiag() <= tol*1e4 {
		// Accept a slightly looser residual rather than fail outright;
		// Jacobi stagnation this close to convergence is a rounding artifact.
		return finishEigen(w, v), nil
	}
	return nil, fmt.Errorf("%w: jacobi eigendecomposition after %d sweeps", ErrNoConverge, maxJacobiSweeps)
}

// jacobiRotation returns (cos θ, sin θ) of the Givens rotation that
// annihilates the (p,q) element of a symmetric 2×2 block
// [[app apq],[apq aqq]], following Golub & Van Loan (8.4).
func jacobiRotation(app, aqq, apq float64) (c, s float64) {
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c = 1 / math.Sqrt(1+t*t)
	s = t * c
	return c, s
}

// applySymRotation applies the two-sided rotation Jᵀ·W·J on rows/cols p, q.
func applySymRotation(w *Matrix, p, q int, c, s float64) {
	n := w.cols
	app := w.data[p*n+p]
	aqq := w.data[q*n+q]
	apq := w.data[p*n+q]
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		akp := w.data[k*n+p]
		akq := w.data[k*n+q]
		w.data[k*n+p] = c*akp - s*akq
		w.data[p*n+k] = w.data[k*n+p]
		w.data[k*n+q] = s*akp + c*akq
		w.data[q*n+k] = w.data[k*n+q]
	}
	w.data[p*n+p] = c*c*app - 2*s*c*apq + s*s*aqq
	w.data[q*n+q] = s*s*app + 2*s*c*apq + c*c*aqq
	w.data[p*n+q] = 0
	w.data[q*n+p] = 0
}

// applyRightRotation applies V ← V·J where J rotates columns p and q.
func applyRightRotation(v *Matrix, p, q int, c, s float64) {
	n := v.cols
	for k := 0; k < v.rows; k++ {
		vkp := v.data[k*n+p]
		vkq := v.data[k*n+q]
		v.data[k*n+p] = c*vkp - s*vkq
		v.data[k*n+q] = s*vkp + c*vkq
	}
}

// finishEigen extracts the diagonal, sorts eigenpairs in descending
// eigenvalue order and packages the result.
func finishEigen(w, v *Matrix) *EigenSym {
	n := w.rows
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: w.data[i*n+i], idx: i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })

	values := make([]float64, n)
	vectors := NewMatrix(n, n)
	for j, p := range pairs {
		values[j] = p.val
		for i := 0; i < n; i++ {
			vectors.data[i*n+j] = v.data[i*n+p.idx]
		}
	}
	return &EigenSym{Values: values, Vectors: vectors}
}
