package mat

import (
	"fmt"
	"math"
	"sort"

	"streampca/internal/par"
)

// EigenSym holds the eigendecomposition A = V·diag(Values)·Vᵀ of a symmetric
// matrix. Values are sorted in descending order and Vectors' column j is the
// unit eigenvector for Values[j].
type EigenSym struct {
	// Values are the eigenvalues in descending order.
	Values []float64
	// Vectors is the n×n orthonormal matrix whose columns are eigenvectors.
	Vectors *Matrix
}

// maxJacobiSweeps bounds the Jacobi iteration. Convergence for symmetric
// matrices is quadratic; well-conditioned problems finish in a handful of
// sweeps and 64 is far beyond any realistic need.
const maxJacobiSweeps = 64

// parEigenMinN is the smallest dimension for which the rotation rounds are
// sharded across workers; below it the per-round work (≈4n² flops) is too
// small to amortize a fork/join barrier and the rounds run inline.
const parEigenMinN = 96

// SymEigen computes the eigendecomposition of the symmetric matrix a. It is
// SymEigenWorkers with a single worker; the two share every code path, so
// results are identical.
func SymEigen(a *Matrix) (*EigenSym, error) {
	return SymEigenWorkers(a, 1)
}

// SymEigenWorkers computes the eigendecomposition of the symmetric matrix a
// using a round-robin (parallel-ordering) Jacobi method: each sweep visits
// every pivot pair once, organized into n−1 rounds of ⌊n/2⌋ mutually
// disjoint pairs. Within a round all rotation angles are computed from the
// round-start matrix, then applied in two phases — first to columns, then to
// rows — so rotations of disjoint pairs touch disjoint memory and shard
// across up to `workers` goroutines (0 = auto). The schedule, the angles and
// the application order are all independent of the worker count, making the
// result bit-identical for any value of workers.
//
// Only the upper triangle is read; the matrix is not modified. It returns
// ErrShape for non-square input, ErrNotFinite for NaN/Inf entries and
// ErrNoConverge if the off-diagonal mass does not vanish within the sweep
// budget.
func SymEigenWorkers(a *Matrix, workers int) (*EigenSym, error) {
	n := a.rows
	if n != a.cols {
		return nil, fmt.Errorf("%w: eigendecomposition of %dx%d", ErrShape, a.rows, a.cols)
	}
	if !a.IsFinite() {
		return nil, fmt.Errorf("%w: eigendecomposition input", ErrNotFinite)
	}
	if n == 0 {
		return &EigenSym{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	// Work on a symmetrized copy so the caller's matrix stays intact and
	// slight asymmetries from floating-point accumulation are averaged out.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.data[i*n+j] = 0.5 * (a.data[i*n+j] + a.data[j*n+i])
		}
	}
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.data[i*n+j]
				s += x * x
			}
		}
		return s
	}

	normA := w.FrobeniusNorm()
	if normA == 0 {
		return finishEigen(w, v), nil
	}
	tol := 1e-28 * normA * normA

	// Small-input fallback: the rounds still run, but strictly inline.
	if n < parEigenMinN {
		workers = 1
	}
	pool := par.NewPool(workers)
	defer pool.Close()
	// Grain in pairs: each pair costs ≈8n multiply-adds per phase.
	grain := 1 + shardWork/(8*n)
	// Grain in rows for the row-sharded column phase: each row pays ≈6 flops
	// per rotation and a round carries up to n/2 rotations.
	rowGrain := 1 + shardWork/(3*n)

	// Round-robin tournament schedule. slots is n rounded up to even; the
	// extra slot (index ≥ n) is a bye. Position 0 is fixed, the rest rotate.
	slots := n
	if slots%2 == 1 {
		slots++
	}
	idx := make([]int, slots)
	rots := make([]rotation, 0, slots/2)

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= tol {
			return finishEigen(w, v), nil
		}
		// Reset the schedule each sweep so the pivot order is a pure
		// function of n.
		for i := range idx {
			idx[i] = i
		}
		for round := 0; round < slots-1; round++ {
			rots = planRound(w, idx, rots[:0])
			if len(rots) > 0 {
				// Phase 1: column rotations of W and V, sharded by matrix
				// row. The round's pairs touch disjoint column pairs, so for
				// a fixed row every rotation updates disjoint entries —
				// applying them row-major touches each cache line once per
				// round (the pair-major order re-streamed every row n/16
				// times) and the per-entry arithmetic is unchanged, keeping
				// results bit-identical for any worker count. Rows [0, n)
				// are W's, rows [n, 2n) are V's: one barrier covers both.
				pool.For(2*n, rowGrain, func(lo, hi int) {
					for k := lo; k < hi; k++ {
						if k < n {
							rotateRowEntries(w.data[k*n:(k+1)*n], rots)
						} else {
							rotateRowEntries(v.data[(k-n)*n:(k-n+1)*n], rots)
						}
					}
				})
				// Phase 2: row rotations of W (disjoint row pairs per
				// rotation; two contiguous rows each — already streaming).
				pool.For(len(rots), grain, func(lo, hi int) {
					for _, r := range rots[lo:hi] {
						rotateRows(w, r)
					}
				})
				// The pivot entries are annihilated analytically; zero them
				// exactly rather than keeping rounding residue.
				for _, r := range rots {
					w.data[r.p*n+r.q] = 0
					w.data[r.q*n+r.p] = 0
				}
			}
			advanceRoundRobin(idx)
		}
	}
	if offDiag() <= tol*1e4 {
		// Accept a slightly looser residual rather than fail outright;
		// Jacobi stagnation this close to convergence is a rounding artifact.
		return finishEigen(w, v), nil
	}
	return nil, fmt.Errorf("%w: jacobi eigendecomposition after %d sweeps", ErrNoConverge, maxJacobiSweeps)
}

// rotation is one planned Jacobi rotation on the (disjoint) pair p < q.
type rotation struct {
	p, q int
	c, s float64
}

// planRound computes the rotation angles for the current round's disjoint
// pairs from the round-start matrix, appending to dst. Pairs whose pivot is
// negligible at machine precision are zeroed in place and skipped.
func planRound(w *Matrix, idx []int, dst []rotation) []rotation {
	n := w.cols
	slots := len(idx)
	for i := 0; i < slots/2; i++ {
		p, q := idx[i], idx[slots-1-i]
		if p >= n || q >= n {
			continue // bye slot on odd n
		}
		if p > q {
			p, q = q, p
		}
		apq := w.data[p*n+q]
		if apq == 0 {
			continue
		}
		app := w.data[p*n+p]
		aqq := w.data[q*n+q]
		// Skip rotations that cannot change the result at machine precision.
		if math.Abs(apq) <= 1e-17*(math.Abs(app)+math.Abs(aqq)) {
			w.data[p*n+q] = 0
			w.data[q*n+p] = 0
			continue
		}
		c, s := jacobiRotation(app, aqq, apq)
		dst = append(dst, rotation{p: p, q: q, c: c, s: s})
	}
	return dst
}

// advanceRoundRobin rotates the schedule one step: position 0 stays fixed,
// the remaining entries shift cyclically (the classic tournament scheme that
// pairs every index with every other exactly once per n−1 rounds).
func advanceRoundRobin(idx []int) {
	last := idx[len(idx)-1]
	copy(idx[2:], idx[1:len(idx)-1])
	idx[1] = last
}

// jacobiRotation returns (cos θ, sin θ) of the Givens rotation that
// annihilates the (p,q) element of a symmetric 2×2 block
// [[app apq],[apq aqq]], following Golub & Van Loan (8.4).
func jacobiRotation(app, aqq, apq float64) (c, s float64) {
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c = 1 / math.Sqrt(1+t*t)
	s = t * c
	return c, s
}

// rotateRowEntries applies every rotation of a round to one matrix row:
// entry-wise this is exactly M ← M·J for each disjoint column pair J, in a
// row-major order that streams the matrix once per round.
func rotateRowEntries(row []float64, rots []rotation) {
	for _, r := range rots {
		mp, mq := row[r.p], row[r.q]
		row[r.p] = r.c*mp - r.s*mq
		row[r.q] = r.s*mp + r.c*mq
	}
}

// rotateRows applies M ← Jᵀ·M in place, where Jᵀ mixes rows p and q.
func rotateRows(m *Matrix, r rotation) {
	n := m.cols
	prow := m.data[r.p*n : r.p*n+n]
	qrow := m.data[r.q*n : r.q*n+n]
	for k := 0; k < n; k++ {
		mp, mq := prow[k], qrow[k]
		prow[k] = r.c*mp - r.s*mq
		qrow[k] = r.s*mp + r.c*mq
	}
}

// applyRightRotation applies V ← V·J where J rotates columns p and q (shared
// with the one-sided Jacobi SVD).
func applyRightRotation(v *Matrix, p, q int, c, s float64) {
	n := v.cols
	for k := 0; k < v.rows; k++ {
		vkp := v.data[k*n+p]
		vkq := v.data[k*n+q]
		v.data[k*n+p] = c*vkp - s*vkq
		v.data[k*n+q] = s*vkp + c*vkq
	}
}

// finishEigen extracts the diagonal, sorts eigenpairs in descending
// eigenvalue order and packages the result.
func finishEigen(w, v *Matrix) *EigenSym {
	n := w.rows
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: w.data[i*n+i], idx: i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })

	values := make([]float64, n)
	vectors := NewMatrix(n, n)
	for j, p := range pairs {
		values[j] = p.val
		for i := 0; i < n; i++ {
			vectors.data[i*n+j] = v.data[i*n+p.idx]
		}
	}
	return &EigenSym{Values: values, Vectors: vectors}
}
