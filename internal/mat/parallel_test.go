package mat

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// workerCounts is the grid the determinism property tests sweep, per the
// parallel-layer contract: results must be identical for any worker count.
var workerCounts = []int{1, 2, 3, 7, 8, runtime.GOMAXPROCS(0)}

func randomSparseMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			m.data[i] = 0 // exercise the sparse skip paths
		}
	}
	return m
}

// TestGramWorkersBitIdentical: the parallel Gram must equal the serial one
// bit for bit, for every worker count and across shapes (tall, wide, tiny,
// above and below the serial-fallback threshold).
func TestGramWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// The taller shapes split into several input-row tiles (gramTileRows), so
	// the sweep covers the tree reduction as well as the single-tile path.
	shapes := [][2]int{{1, 1}, {3, 2}, {17, 33}, {64, 64}, {50, 200}, {256, 81}, {128, 256}, {300, 256}, {1200, 64}}
	for _, sh := range shapes {
		m := randomSparseMatrix(rng, sh[0], sh[1])
		ref := m.GramWorkers(1)
		for _, w := range workerCounts[1:] {
			got := m.GramWorkers(w)
			if !bitIdentical(ref, got) {
				t.Fatalf("%dx%d workers=%d: Gram differs from serial", sh[0], sh[1], w)
			}
		}
		// The legacy entry point must be the workers=1 path.
		if !bitIdentical(ref, m.Gram()) {
			t.Fatalf("%dx%d: Gram() differs from GramWorkers(1)", sh[0], sh[1])
		}
	}
}

// TestGramWorkersZeroHeavy: the zero-skip fast path must stay bit-identical
// across worker counts on matrices dominated by zeros (whole zero rows, zero
// columns, and isolated nonzeros — the shapes the sparse projection families
// actually produce).
func TestGramWorkersZeroHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for _, sh := range [][2]int{{256, 81}, {600, 64}, {37, 21}} {
		m := NewMatrix(sh[0], sh[1])
		for i := 0; i < sh[0]; i++ {
			if rng.Intn(4) == 0 {
				continue // whole zero row
			}
			for j := 0; j < sh[1]; j++ {
				if j%7 == 3 {
					continue // structurally zero column stripe
				}
				if rng.Intn(10) == 0 {
					m.Set(i, j, rng.NormFloat64())
				}
			}
		}
		ref := m.GramWorkers(1)
		for _, w := range workerCounts[1:] {
			if got := m.GramWorkers(w); !bitIdentical(ref, got) {
				t.Fatalf("%dx%d workers=%d: zero-heavy Gram differs from serial", sh[0], sh[1], w)
			}
		}
	}
}

// TestGramWorkersMatchesTranspose pins the tiled kernel to the naive mᵀ·m on
// a multi-tile shape: the tree reduction reorders the per-entry sums, so the
// comparison is tolerance-based, not bit-exact.
func TestGramWorkersMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	m := randomSparseMatrix(rng, 700, 96)
	want, err := m.T().Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		got := m.GramWorkers(w)
		if !got.Equal(want, 1e-9*math.Max(1, want.MaxAbs())) {
			t.Fatalf("workers=%d: tiled Gram deviates from mᵀ·m", w)
		}
	}
}

// TestGramWorkersSymmetric: the mirrored lower triangle must exactly equal
// the upper one at every worker count.
func TestGramWorkersSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := randomSparseMatrix(rng, 100, 130)
	for _, w := range workerCounts {
		g := m.GramWorkers(w)
		for a := 0; a < g.Rows(); a++ {
			for b := a + 1; b < g.Cols(); b++ {
				if g.At(a, b) != g.At(b, a) {
					t.Fatalf("workers=%d: asymmetry at (%d,%d)", w, a, b)
				}
			}
		}
	}
}

// TestMulWorkersBitIdentical: parallel Mul equals serial Mul exactly.
func TestMulWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// {64, 600, 64} forces several k-blocks (the inner dimension exceeds one
	// L2 panel of o's rows), exercising the blocked accumulation order.
	shapes := [][3]int{{1, 1, 1}, {5, 3, 4}, {33, 17, 29}, {81, 81, 81}, {128, 200, 64}, {256, 128, 256}, {64, 600, 64}}
	for _, sh := range shapes {
		a := randomSparseMatrix(rng, sh[0], sh[1])
		b := randomSparseMatrix(rng, sh[1], sh[2])
		ref, err := a.MulWorkers(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts[1:] {
			got, err := a.MulWorkers(b, w)
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(ref, got) {
				t.Fatalf("%v workers=%d: Mul differs from serial", sh, w)
			}
		}
	}
}

func TestMulWorkersShapeError(t *testing.T) {
	a := NewMatrix(3, 4)
	b := NewMatrix(5, 2)
	if _, err := a.MulWorkers(b, 4); err == nil {
		t.Fatal("want shape error")
	}
}

// TestSymEigenWorkersDeterministic: the eigensolver must return identical
// results for every worker count (the schedule, angles and two-phase
// application are worker-count independent). Exact equality is expected; the
// test enforces the documented ≤1e-12 bound plus bit-equality as a stricter
// regression signal on eigenvalues.
func TestSymEigenWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{2, 7, 64, 120, 160} {
		a := randomSymmetric(rng, n)
		ref, err := SymEigenWorkers(a, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, w := range workerCounts[1:] {
			got, err := SymEigenWorkers(a, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			for i := range ref.Values {
				if math.Abs(ref.Values[i]-got.Values[i]) > 1e-12 {
					t.Fatalf("n=%d workers=%d: eigenvalue %d deviates %g", n, w, i,
						math.Abs(ref.Values[i]-got.Values[i]))
				}
				if ref.Values[i] != got.Values[i] {
					t.Errorf("n=%d workers=%d: eigenvalue %d not bit-identical", n, w, i)
				}
			}
			if !bitIdentical(ref.Vectors, got.Vectors) {
				t.Fatalf("n=%d workers=%d: eigenvectors differ from serial", n, w)
			}
		}
	}
}

// TestSymEigenWorkersCorrect checks the decomposition itself at a dimension
// that exercises the sharded rotation path: orthonormal V, A·V ≈ V·Λ.
func TestSymEigenWorkersCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{96, 150} {
		a := randomSymmetric(rng, n)
		eig, err := SymEigenWorkers(a, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkOrthonormalColumns(t, eig.Vectors, 1e-9)
		av, err := a.Mul(eig.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		lam := NewMatrix(n, n)
		for i, v := range eig.Values {
			lam.Set(i, i, v)
		}
		vl, err := eig.Vectors.Mul(lam)
		if err != nil {
			t.Fatal(err)
		}
		if !av.Equal(vl, 1e-8*math.Max(1, a.MaxAbs())) {
			t.Fatalf("n=%d: A·V does not match V·Λ", n)
		}
		for i := 1; i < n; i++ {
			if eig.Values[i] > eig.Values[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not descending at %d", n, i)
			}
		}
	}
}

// TestTriangularBounds: the Gram shard boundaries must be monotone, cover
// [0, c] and depend only on (c, shards).
func TestTriangularBounds(t *testing.T) {
	// The grid deliberately includes maxShards > c (small sketch, many
	// workers): historically that produced empty trailing shards; every
	// returned shard must now be non-empty with the union exactly [0, c).
	for _, c := range []int{1, 2, 3, 5, 7, 16, 81, 256, 1000} {
		for _, k := range []int{1, 2, 4, 7, 16, 64, 1024} {
			b := triangularBounds(c, k)
			if b[0] != 0 || b[len(b)-1] != c {
				t.Fatalf("c=%d k=%d: bounds %v do not cover [0,%d]", c, k, b, c)
			}
			want := k
			if want > c {
				want = c
			}
			if len(b)-1 != want {
				t.Fatalf("c=%d k=%d: %d shards, want %d: %v", c, k, len(b)-1, want, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] {
					t.Fatalf("c=%d k=%d: empty or non-monotone shard at %d: %v", c, k, i, b)
				}
			}
		}
	}
	if b := triangularBounds(0, 8); len(b) != 2 || b[0] != 0 || b[1] != 0 {
		t.Fatalf("c=0: bounds %v", b)
	}
	// Balance sanity: for a large triangle, no shard should own more than
	// ~2× its fair share of the triangular area.
	c, k := 1024, 4
	b := triangularBounds(c, k)
	total := float64(c) * float64(c+1) / 2
	for i := 0; i < k; i++ {
		lo, hi := b[i], b[i+1]
		area := float64(c-lo)*float64(c-lo+1)/2 - float64(c-hi)*float64(c-hi+1)/2
		if area > 2*total/float64(k) {
			t.Fatalf("shard %d owns %.0f of %.0f (fair %f)", i, area, total, total/float64(k))
		}
	}
}

func TestColInto(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m := randomSparseMatrix(rng, 13, 9)
	dst := make([]float64, 13)
	for j := 0; j < 9; j++ {
		if err := m.ColInto(j, dst); err != nil {
			t.Fatal(err)
		}
		want := m.Col(j)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("col %d row %d: %v != %v", j, i, dst[i], want[i])
			}
		}
	}
	if err := m.ColInto(0, make([]float64, 5)); err == nil {
		t.Fatal("want shape error for short buffer")
	}
}

func TestMulVecTo(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := randomSparseMatrix(rng, 11, 17)
	v := make([]float64, 17)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	want, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 11)
	if err := m.MulVecTo(dst, v); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVecTo(make([]float64, 3), v); err == nil {
		t.Fatal("want shape error for short dst")
	}
	if err := m.MulVecTo(dst, make([]float64, 4)); err == nil {
		t.Fatal("want shape error for short v")
	}
}

// bitIdentical reports exact elementwise equality (no tolerance).
func bitIdentical(a, b *Matrix) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

func BenchmarkGramWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(48))
	for _, c := range []int{64, 256} {
		m := randomSparseMatrix(rng, 256, c)
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("m=%d/workers=%d", c, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = m.GramWorkers(w)
				}
			})
		}
	}
}
