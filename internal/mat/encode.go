package mat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// matrixWireVersion tags the binary layout for forward compatibility.
const matrixWireVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler (and therefore gob
// support): version, dimensions, then row-major float64 data, all
// little-endian.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+8+8+8*len(m.data))
	out = binary.LittleEndian.AppendUint32(out, matrixWireVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.rows))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.cols))
	for _, v := range m.data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	const header = 4 + 8 + 8
	if len(data) < header {
		return fmt.Errorf("%w: %d bytes, want at least %d", ErrShape, len(data), header)
	}
	if v := binary.LittleEndian.Uint32(data); v != matrixWireVersion {
		return fmt.Errorf("%w: unsupported matrix wire version %d", ErrShape, v)
	}
	rows := binary.LittleEndian.Uint64(data[4:])
	cols := binary.LittleEndian.Uint64(data[12:])
	const maxDim = 1 << 24 // guards against corrupt headers allocating GiBs
	if rows > maxDim || cols > maxDim {
		return fmt.Errorf("%w: implausible dimensions %dx%d", ErrShape, rows, cols)
	}
	n := int(rows) * int(cols)
	if len(data) != header+8*n {
		return fmt.Errorf("%w: %d bytes for %dx%d matrix", ErrShape, len(data), rows, cols)
	}
	buf := make([]float64, n)
	for i := 0; i < n; i++ {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[header+8*i:]))
	}
	m.rows = int(rows)
	m.cols = int(cols)
	m.data = buf
	return nil
}
