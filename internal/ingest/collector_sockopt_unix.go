//go:build linux || darwin

package ingest

import (
	"context"
	"net"
	"syscall"
)

// reusePortSupported reports whether this platform can bind multiple UDP
// sockets to one address via SO_REUSEPORT (kernel-hashed datagram fan-out).
const reusePortSupported = true

// listenReusePort binds one UDP socket to addr with SO_REUSEPORT set before
// bind, so further sockets can join the same address.
func listenReusePort(addr string) (net.PacketConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET,
					soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.ListenPacket(context.Background(), "udp", addr)
}
