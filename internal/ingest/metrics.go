package ingest

import "streampca/internal/obs"

// Metrics is the ingest instrumentation surface. All names are under
// streampca_ingest_ and documented in README.md "Live ingestion".
type Metrics struct {
	// datagrams/records/bytes count successfully decoded traffic.
	Datagrams *obs.Counter
	Records   *obs.Counter
	Bytes     *obs.Counter
	// DecodeErrors counts datagrams rejected by the v5 decoder.
	DecodeErrors *obs.Counter
	// SeqGapRecords counts records lost upstream, inferred from
	// FlowSequence gaps (per engine).
	SeqGapRecords *obs.Counter
	// LateRecords counts records that arrived after their epoch was sealed
	// (beyond the lateness slack); FutureDrops counts records whose
	// timestamp jumped implausibly far ahead of the watermark.
	LateRecords *obs.Counter
	FutureDrops *obs.Counter
	// DroppedOldest/DroppedNewest count records shed by the backpressure
	// policy.
	DroppedOldest *obs.Counter
	DroppedNewest *obs.Counter
	// Unroutable counts records whose addresses matched no prefix in the
	// routing table.
	Unroutable *obs.Counter
	// FaultDrops counts datagrams suppressed by the fault injector (chaos
	// testing only; zero in production).
	FaultDrops *obs.Counter
	// QueueDepth is the instantaneous sum of the shard queue depths.
	QueueDepth *obs.Gauge
	// EpochsSealed counts sealed intervals; PartialEpochs the subset sealed
	// early by shutdown drain.
	EpochsSealed  *obs.Counter
	PartialEpochs *obs.Counter
	// SinkErrors counts sealed rows the sink rejected.
	SinkErrors *obs.Counter
	// RolloverSeconds times an interval rollover: from the seal broadcast
	// to sink completion (queue drain + shard merge + delivery).
	RolloverSeconds *obs.Histogram
	// Shards exposes the resolved shard count.
	Shards *obs.Gauge
}

// NewMetrics registers the ingest metric family on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Datagrams: reg.Counter("streampca_ingest_datagrams_total",
			"NetFlow v5 datagrams decoded."),
		Records: reg.Counter("streampca_ingest_records_total",
			"NetFlow v5 flow records decoded."),
		Bytes: reg.Counter("streampca_ingest_bytes_total",
			"Raw datagram bytes decoded."),
		DecodeErrors: reg.Counter("streampca_ingest_decode_errors_total",
			"Datagrams rejected by the NetFlow v5 decoder."),
		SeqGapRecords: reg.Counter("streampca_ingest_seq_gap_records_total",
			"Records lost upstream of the collector (FlowSequence gaps)."),
		LateRecords: reg.Counter("streampca_ingest_late_records_total",
			"Records arriving after their interval was sealed (beyond the lateness slack)."),
		FutureDrops: reg.Counter("streampca_ingest_future_drop_records_total",
			"Records dropped for timestamps implausibly far ahead of the watermark."),
		DroppedOldest: reg.Counter("streampca_ingest_dropped_records_total",
			"Records shed by the backpressure policy.", obs.L("policy", "drop-oldest")),
		DroppedNewest: reg.Counter("streampca_ingest_dropped_records_total",
			"Records shed by the backpressure policy.", obs.L("policy", "drop-newest")),
		Unroutable: reg.Counter("streampca_ingest_unroutable_records_total",
			"Records whose addresses matched no routing-table prefix."),
		FaultDrops: reg.Counter("streampca_ingest_fault_dropped_datagrams_total",
			"Datagrams suppressed by the fault injector (chaos tests)."),
		QueueDepth: reg.Gauge("streampca_ingest_queue_depth",
			"Queued batches summed over the shard queues."),
		EpochsSealed: reg.Counter("streampca_ingest_epochs_sealed_total",
			"Intervals sealed and delivered to the sink."),
		PartialEpochs: reg.Counter("streampca_ingest_partial_epochs_total",
			"Intervals sealed early by shutdown drain."),
		SinkErrors: reg.Counter("streampca_ingest_sink_errors_total",
			"Sealed interval rows the sink rejected."),
		RolloverSeconds: reg.Histogram("streampca_ingest_rollover_seconds",
			"Interval rollover latency: seal broadcast to sink completion.", nil),
		Shards: reg.Gauge("streampca_ingest_shards",
			"Resolved shard count of the ingest pipeline."),
	}
}
