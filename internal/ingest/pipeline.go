package ingest

import (
	"fmt"
	"log/slog"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"streampca/internal/faults"
	"streampca/internal/flow"
	"streampca/internal/obs"
	"streampca/internal/par"
	"streampca/internal/trace"
)

// Clock selects how records are assigned to intervals.
type Clock int

const (
	// ClockRecord derives the epoch from the datagram header's export
	// timestamp (UnixSecs/UnixNsecs) — deterministic, replay-friendly, the
	// default. Intervals roll when the record stream's time advances past
	// the boundary plus the lateness slack.
	ClockRecord Clock = iota
	// ClockWall assigns records to the wall-clock interval of their
	// arrival; a ticker rolls intervals even when traffic stops.
	ClockWall
)

// String returns the flag spelling.
func (c Clock) String() string {
	switch c {
	case ClockRecord:
		return "record"
	case ClockWall:
		return "wall"
	}
	return fmt.Sprintf("clock(%d)", int(c))
}

// ParseClock maps the flag spellings "record" and "wall" to a Clock.
func ParseClock(s string) (Clock, error) {
	switch s {
	case "record", "":
		return ClockRecord, nil
	case "wall":
		return ClockWall, nil
	}
	return 0, fmt.Errorf("%w: unknown clock %q (want record or wall)", ErrConfig, s)
}

// Interval is one sealed measurement interval delivered to the sink.
type Interval struct {
	// Epoch is the absolute interval index (unix time / interval length).
	Epoch int64
	// Seq is the 1-based consecutive interval number since the pipeline's
	// first sealed epoch — the monitor-facing interval index (empty epochs
	// are delivered too, so Seq never skips).
	Seq int64
	// Volumes is the network-wide OD volume row, indexed like the
	// aggregator's flow ids (length NumFlows).
	Volumes []float64
	// Records is the number of flow records folded into this interval.
	Records int64
	// Partial marks an interval sealed early by shutdown drain, before its
	// lateness slack elapsed.
	Partial bool
}

// Config parameterizes a Pipeline.
type Config struct {
	// Aggregator maps record addresses to OD flow indices. It is read
	// concurrently by every shard and must not be mutated after Start.
	Aggregator *flow.Aggregator
	// Interval is the measurement interval length (the paper's 5-minute
	// bins). Required, ≥ 1ms.
	Interval time.Duration
	// Shards is the number of parallel aggregation shards; values < 1
	// resolve like internal/par worker counts (all CPUs).
	Shards int
	// QueueLen is the per-shard bounded queue capacity in batches
	// (datagrams); default 256.
	QueueLen int
	// Policy is the backpressure policy when a shard queue fills.
	Policy Policy
	// Clock selects record-timestamp or wall-clock interval assignment.
	Clock Clock
	// Lateness is the slack for late/out-of-order records: an interval is
	// sealed only once the clock passes its end plus this slack, and
	// records older than the last sealed interval are dropped (counted).
	Lateness time.Duration
	// MaxEpochJump bounds how far ahead of the watermark a record
	// timestamp may jump (in intervals) before it is rejected as a clock
	// anomaly rather than sealing an unbounded run of empty intervals.
	// Default 64.
	MaxEpochJump int64
	// Sink receives each sealed interval, in strictly increasing Seq
	// order, from a single goroutine. A Sink error is counted and logged;
	// the pipeline keeps running.
	Sink func(Interval) error
	// Faults, when non-nil, is consulted once per datagram (direction
	// "recv", type "netflow") so chaos suites can drop, delay or corrupt
	// the measurement stream. Nil costs one pointer check.
	Faults faults.Injector
	// Obs is the metrics registry; nil creates a private one.
	Obs *obs.Registry
	// Log receives structured logs; nil discards them.
	Log *slog.Logger
	// Trace, when non-nil, emits one "ingest.seal" span per delivered
	// interval (trace id trace.ForInterval(Seq)) carrying the drop/partial/
	// lateness counters at seal time — the first hop of the interval's
	// lineage. Nil costs one pointer check per interval.
	Trace *trace.Tracer
}

// sealed is one shard's contribution to a sealed epoch.
type sealed struct {
	epoch    int64
	row      []float64 // nil when the shard saw no records for the epoch
	records  int64
	partial  bool
	sealedAt time.Time
}

// shard owns one private volume accumulator set, fed by its bounded queue.
type shard struct {
	q   *queue
	agg *flow.Aggregator
	// acc/recCount hold the open epochs' accumulator rows (at most
	// slack+2 epochs are open at once).
	acc      map[int64][]float64
	recCount map[int64]int64
	done     chan struct{}
}

// Pipeline is the ingest subsystem: decode → shard queues → accumulate →
// seal → merge → sink. Create with NewPipeline, feed with HandleDatagram
// (or a Collector), stop with Close — Close drains every queued batch and
// seals open intervals before returning, so no accepted record is lost.
type Pipeline struct {
	cfg         Config
	agg         *flow.Aggregator
	met         *Metrics
	log         *slog.Logger
	intervalNs  int64
	slackEpochs int64
	maxJump     int64

	shards  []*shard
	mergeCh chan sealed
	depth   atomic.Int64 // queued data batches across shards

	// mu serializes the front end's bookkeeping: sequence tracking,
	// watermark/seal state, round-robin shard selection, and the queue
	// pushes themselves (so a seal token can never overtake the data it
	// must follow). Datagram decode happens *before* the lock, into a
	// pooled slab, so concurrent collector sockets pay the lock only for
	// the cheap ordered tail of the path.
	mu            sync.Mutex
	seq           SeqTracker
	started       bool
	watermark     int64
	sealedThrough int64
	rr            int
	closed        bool

	slabPool sync.Pool

	mergerDone chan struct{}
	wallStop   chan struct{}
	wallDone   chan struct{}
}

// NewPipeline validates cfg and starts the shard, merger and (for
// ClockWall) ticker goroutines.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Aggregator == nil {
		return nil, fmt.Errorf("%w: nil aggregator", ErrConfig)
	}
	if cfg.Interval < time.Millisecond {
		return nil, fmt.Errorf("%w: interval %v below 1ms", ErrConfig, cfg.Interval)
	}
	if cfg.Sink == nil {
		return nil, fmt.Errorf("%w: nil sink", ErrConfig)
	}
	if cfg.Lateness < 0 {
		return nil, fmt.Errorf("%w: negative lateness %v", ErrConfig, cfg.Lateness)
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 256
	}
	if cfg.QueueLen < 1 {
		return nil, fmt.Errorf("%w: queue length %d", ErrConfig, cfg.QueueLen)
	}
	if cfg.MaxEpochJump == 0 {
		cfg.MaxEpochJump = 64
	}
	if cfg.MaxEpochJump < 1 {
		return nil, fmt.Errorf("%w: max epoch jump %d", ErrConfig, cfg.MaxEpochJump)
	}
	switch cfg.Policy {
	case PolicyBlock, PolicyDropOldest, PolicyDropNewest:
	default:
		return nil, fmt.Errorf("%w: policy %v", ErrConfig, cfg.Policy)
	}
	switch cfg.Clock {
	case ClockRecord, ClockWall:
	default:
		return nil, fmt.Errorf("%w: clock %v", ErrConfig, cfg.Clock)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	n := par.Workers(cfg.Shards)
	p := &Pipeline{
		cfg:         cfg,
		agg:         cfg.Aggregator,
		met:         NewMetrics(reg),
		log:         log.With("component", "ingest"),
		intervalNs:  cfg.Interval.Nanoseconds(),
		slackEpochs: (cfg.Lateness.Nanoseconds() + cfg.Interval.Nanoseconds() - 1) / cfg.Interval.Nanoseconds(),
		maxJump:     cfg.MaxEpochJump,
		mergeCh:     make(chan sealed, 4*n),
		mergerDone:  make(chan struct{}),
	}
	p.slabPool.New = func() any { return new(recSlab) }
	p.met.Shards.Set(float64(n))
	for i := 0; i < n; i++ {
		sh := &shard{
			q:        newQueue(cfg.QueueLen, cfg.Policy),
			agg:      cfg.Aggregator,
			acc:      make(map[int64][]float64),
			recCount: make(map[int64]int64),
			done:     make(chan struct{}),
		}
		p.shards = append(p.shards, sh)
		go p.shardLoop(sh)
	}
	go p.mergerLoop()
	if cfg.Clock == ClockWall {
		p.wallStop = make(chan struct{})
		p.wallDone = make(chan struct{})
		go p.wallLoop()
	}
	p.log.Info("ingest pipeline started",
		"shards", n, "queue", cfg.QueueLen, "policy", cfg.Policy.String(),
		"interval", cfg.Interval, "lateness", cfg.Lateness, "clock", cfg.Clock)
	return p, nil
}

// Metrics exposes the pipeline's instrumentation (e.g. for tests).
func (p *Pipeline) Metrics() *Metrics { return p.met }

// NumShards returns the resolved shard count.
func (p *Pipeline) NumShards() int { return len(p.shards) }

// HandleDatagram ingests one raw NetFlow v5 datagram. Malformed datagrams
// are counted and dropped, never fatal. The only error returns are
// ErrClosed — after Close, or when the fault injector demands a disconnect
// — which tell a collector to stop reading. Safe for concurrent use; buf
// is not retained.
func (p *Pipeline) HandleDatagram(buf []byte) error {
	if inj := p.cfg.Faults; inj != nil {
		o := inj.Decide(faults.DirRecv, "netflow")
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Drop {
			p.met.FaultDrops.Inc()
			return nil
		}
		if o.Disconnect {
			return ErrClosed
		}
		if o.Corrupt && len(buf) > 1 {
			// Flip the version's low byte: deterministically detectable.
			c := append([]byte(nil), buf...)
			c[1] ^= 0xFF
			buf = c
		}
	}

	// Batch decode before taking the front-end lock: the expensive per-record
	// parse runs concurrently across collector sockets, straight into a
	// pooled slab in the compact shard-facing layout.
	slab := p.slabPool.Get().(*recSlab)
	var h Header
	if err := decodeRecords(buf, &h, slab); err != nil {
		p.slabPool.Put(slab)
		p.met.DecodeErrors.Inc()
		return nil
	}
	count := int64(h.Count)
	var ns int64
	if p.cfg.Clock == ClockWall {
		ns = time.Now().UnixNano()
	} else {
		ns = int64(h.UnixSecs)*int64(time.Second) + int64(h.UnixNsecs)
	}
	epoch := ns / p.intervalNs

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.slabPool.Put(slab)
		return ErrClosed
	}
	p.met.Datagrams.Inc()
	p.met.Records.Add(count)
	p.met.Bytes.Add(int64(len(buf)))
	if gap := p.seq.Observe(&h); gap > 0 {
		p.met.SeqGapRecords.Add(int64(gap))
	}
	if !p.started {
		// The stream starts at the first observed epoch; anything older is
		// late regardless of slack (no leading empty intervals).
		p.started = true
		p.watermark = epoch
		p.sealedThrough = epoch - 1
	}
	if epoch <= p.sealedThrough {
		p.met.LateRecords.Add(count)
		p.mu.Unlock()
		p.slabPool.Put(slab)
		return nil
	}
	if epoch > p.watermark+p.maxJump {
		p.met.FutureDrops.Add(count)
		p.mu.Unlock()
		p.slabPool.Put(slab)
		return nil
	}
	if epoch > p.watermark {
		p.watermark = epoch
	}
	p.sealThroughLocked(p.watermark-1-p.slackEpochs, false)

	// Round-robin the datagram's slab to a shard.
	sh := p.shards[p.rr%len(p.shards)]
	p.rr++
	admitted, evicted := sh.q.pushData(batch{epoch: epoch, slab: slab})
	if admitted {
		p.met.QueueDepth.Set(float64(p.depth.Add(1)))
	} else {
		p.met.DroppedNewest.Add(int64(slab.n))
		p.slabPool.Put(slab)
	}
	if evicted != nil {
		p.met.DroppedOldest.Add(int64(evicted.n))
		p.met.QueueDepth.Set(float64(p.depth.Add(-1)))
		p.slabPool.Put(evicted)
	}
	p.mu.Unlock()
	return nil
}

// sealThroughLocked broadcasts seal tokens for every unsealed epoch up to
// and including target. Seal tokens follow all data batches already queued
// for those epochs (same queues, same producer lock), so a shard sees the
// seal only after folding everything in.
func (p *Pipeline) sealThroughLocked(target int64, partial bool) {
	if !p.started || target <= p.sealedThrough {
		return
	}
	now := time.Now()
	for e := p.sealedThrough + 1; e <= target; e++ {
		for _, sh := range p.shards {
			sh.q.pushCtl(batch{ctl: ctlSeal, epoch: e, partial: partial, sealedAt: now})
		}
	}
	p.sealedThrough = target
}

// shardLoop drains one shard's queue: data batches fold into the shard's
// private per-epoch accumulator; seal tokens hand the finished row to the
// merger; stop tokens exit after everything queued has been processed.
func (p *Pipeline) shardLoop(sh *shard) {
	defer close(sh.done)
	for {
		b := sh.q.pop()
		switch b.ctl {
		case ctlData:
			p.met.QueueDepth.Set(float64(p.depth.Add(-1)))
			row := sh.acc[b.epoch]
			if row == nil {
				row = make([]float64, p.agg.NumFlows())
				sh.acc[b.epoch] = row
			}
			var unroutable int64
			recs := b.slab.recs[:b.slab.n]
			for i := range recs {
				r := &recs[i]
				id, err := sh.agg.FlowID(flow.Packet{
					Src: netip.AddrFrom4(r.src),
					Dst: netip.AddrFrom4(r.dst),
				})
				if err != nil {
					unroutable++
					continue
				}
				row[id] += float64(r.octets)
			}
			sh.recCount[b.epoch] += int64(len(recs)) - unroutable
			if unroutable > 0 {
				p.met.Unroutable.Add(unroutable)
			}
			p.slabPool.Put(b.slab)
		case ctlSeal:
			row := sh.acc[b.epoch]
			records := sh.recCount[b.epoch]
			delete(sh.acc, b.epoch)
			delete(sh.recCount, b.epoch)
			p.mergeCh <- sealed{epoch: b.epoch, row: row, records: records,
				partial: b.partial, sealedAt: b.sealedAt}
		case ctlStop:
			return
		}
	}
}

// mergeState accumulates the shard contributions for one sealing epoch.
type mergeState struct {
	rows     [][]float64
	records  int64
	seen     int
	partial  bool
	sealedAt time.Time
}

// mergerLoop collects the per-shard rows of each sealed epoch, sums them
// (via the internal/par kernels) and delivers the interval to the sink.
// Per-shard seal order plus channel FIFO guarantee epochs complete in
// increasing order (see DESIGN.md §12).
func (p *Pipeline) mergerLoop() {
	defer close(p.mergerDone)
	pending := make(map[int64]*mergeState)
	var baseEpoch, deliveredTo int64
	first := true
	for s := range p.mergeCh {
		st := pending[s.epoch]
		if st == nil {
			st = &mergeState{sealedAt: s.sealedAt}
			pending[s.epoch] = st
		}
		st.seen++
		st.records += s.records
		st.partial = st.partial || s.partial
		if s.row != nil {
			st.rows = append(st.rows, s.row)
		}
		if st.seen < len(p.shards) {
			continue
		}
		delete(pending, s.epoch)
		if first {
			baseEpoch = s.epoch
			deliveredTo = s.epoch - 1
			first = false
		}
		if s.epoch != deliveredTo+1 {
			// Cannot happen given the seal-ordering invariant; surface
			// loudly rather than feeding the monitor out of order.
			p.log.Error("ingest merger: epoch out of order",
				"epoch", s.epoch, "expected", deliveredTo+1)
		}
		deliveredTo = s.epoch
		p.deliver(s.epoch, s.epoch-baseEpoch+1, st)
	}
	if len(pending) > 0 {
		p.log.Error("ingest merger: undelivered epochs at shutdown", "count", len(pending))
	}
}

// deliver merges st's shard rows into one volume vector and hands it to
// the sink.
func (p *Pipeline) deliver(epoch, seq int64, st *mergeState) {
	sp := p.cfg.Trace.Start(trace.ForInterval(seq), 0, "ingest.seal",
		trace.I("interval", seq),
		trace.I("epoch", epoch),
		trace.I("records", st.records),
		trace.B("partial", st.partial))
	m := p.agg.NumFlows()
	volumes := make([]float64, m)
	if len(st.rows) == 1 {
		copy(volumes, st.rows[0])
	} else if len(st.rows) > 1 {
		rows := st.rows
		par.For(len(p.shards), m, 2048, func(lo, hi int) {
			for _, row := range rows {
				for j := lo; j < hi; j++ {
					volumes[j] += row[j]
				}
			}
		})
	}
	iv := Interval{
		Epoch:   epoch,
		Seq:     seq,
		Volumes: volumes,
		Records: st.records,
		Partial: st.partial,
	}
	if err := p.cfg.Sink(iv); err != nil {
		p.met.SinkErrors.Inc()
		p.log.Warn("ingest sink rejected interval", "seq", seq, "epoch", epoch, "err", err)
		sp.Event("sink_error", trace.S("err", err.Error()))
	}
	p.met.EpochsSealed.Inc()
	if st.partial {
		p.met.PartialEpochs.Inc()
	}
	p.met.RolloverSeconds.Observe(time.Since(st.sealedAt).Seconds())
	if sp != nil {
		// Cumulative pipeline counters at seal time: diffing consecutive
		// seal spans localizes drops and late arrivals to an interval.
		sp.SetAttr(
			trace.I("late_records", p.met.LateRecords.Value()),
			trace.I("future_drops", p.met.FutureDrops.Value()),
			trace.I("dropped_oldest", p.met.DroppedOldest.Value()),
			trace.I("dropped_newest", p.met.DroppedNewest.Value()),
			trace.I("partial_epochs", p.met.PartialEpochs.Value()),
			trace.F("queue_depth", p.met.QueueDepth.Value()),
		)
		sp.End()
	}
}

// wallLoop rolls intervals on wall time so epochs seal even when traffic
// pauses (ClockWall only).
func (p *Pipeline) wallLoop() {
	defer close(p.wallDone)
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.wallStop:
			return
		case <-ticker.C:
			p.mu.Lock()
			if !p.closed {
				p.sealThroughLocked(time.Now().UnixNano()/p.intervalNs-1-p.slackEpochs, false)
			}
			p.mu.Unlock()
		}
	}
}

// Close drains the pipeline: it stops accepting datagrams, seals every
// open epoch (marking intervals whose slack had not elapsed as Partial),
// waits for the shards to fold every queued batch, and delivers the final
// intervals to the sink before returning. No accepted record is discarded.
// Safe to call multiple times.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	onTime := p.watermark - 1 - p.slackEpochs
	p.sealThroughLocked(onTime, false)
	p.sealThroughLocked(p.watermark, true)
	for _, sh := range p.shards {
		sh.q.pushCtl(batch{ctl: ctlStop})
	}
	p.mu.Unlock()

	if p.wallStop != nil {
		close(p.wallStop)
		<-p.wallDone
	}
	for _, sh := range p.shards {
		<-sh.done
	}
	close(p.mergeCh)
	<-p.mergerDone
	p.log.Info("ingest pipeline drained",
		"records", p.met.Records.Value(),
		"epochs", p.met.EpochsSealed.Value(),
		"partial", p.met.PartialEpochs.Value())
	return nil
}
