//go:build darwin

package ingest

import "syscall"

// soReusePort is SO_REUSEPORT on Darwin.
const soReusePort = syscall.SO_REUSEPORT
