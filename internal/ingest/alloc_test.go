package ingest

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// TestIngestHotPathZeroAlloc pins the steady-state decode+aggregate path to
// zero heap allocations per datagram: decodeRecords parses into a pooled
// slab, the shard folds it and returns the slab to the pool, and nothing in
// between boxes, copies or grows. The run disables GC so the pool cannot be
// purged mid-measurement, and each measured iteration drains the shard queue
// so the slab round-trips back to the pool before the next Get.
func TestIngestHotPathZeroAlloc(t *testing.T) {
	p, _ := newTestPipeline(t, func(c *Config) {
		c.Shards = 1
		c.QueueLen = 64
	})
	defer func() { _ = p.Close() }()
	met := p.Metrics()

	base := int64(1_200_000_000)
	// Same epoch throughout: the shard's accumulator row and record-count map
	// entries exist after warm-up, so the measured runs only fold.
	bufs := make([][]byte, 64)
	for i := range bufs {
		bufs[i] = dgram(t, uint32(i+1), base, i%3, (i+1)%3, 100)
	}
	drain := func() {
		for met.QueueDepth.Value() != 0 {
			runtime.Gosched()
		}
	}
	// Warm-up: seed the slab pool with enough slabs that one still being
	// folded never forces a fresh allocation, and materialize the epoch row.
	for _, b := range bufs {
		if err := p.HandleDatagram(b); err != nil {
			t.Fatal(err)
		}
	}
	drain()

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		if err := p.HandleDatagram(bufs[i%len(bufs)]); err != nil {
			t.Fatal(err)
		}
		i++
		drain()
	})
	if avg != 0 {
		t.Fatalf("ingest hot path allocates %.2f per datagram, want 0", avg)
	}
}
