//go:build !linux && !darwin

package ingest

import (
	"errors"
	"net"
)

// reusePortSupported: without SO_REUSEPORT the collector shares one socket
// across its reader goroutines instead of binding several.
const reusePortSupported = false

func listenReusePort(addr string) (net.PacketConn, error) {
	return nil, errors.New("ingest: SO_REUSEPORT not supported on this platform")
}
