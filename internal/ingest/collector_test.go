package ingest

import (
	"net"
	"testing"
	"time"

	"streampca/internal/faults"
)

func TestCollectorReceivesOverUDP(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	c, err := Listen("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if _, err := conn.Write(dgram(t, uint32(i), 42, 0, 1, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Loopback UDP is reliable in practice but asynchronous; wait on the
	// decode counter rather than sleeping.
	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, 10)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 1 || got[0].Volumes[1] != 1000 {
		t.Fatalf("collected volumes wrong: %+v", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // double Close is a no-op
	}
}

func TestCollectorSurvivesGarbageAndStopsOnDisconnectFault(t *testing.T) {
	plan := faults.MustPlan(3,
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", After: 3, Disconnect: true})
	p, _ := newTestPipeline(t, func(c *Config) { c.Faults = plan })
	c, err := Listen("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("not netflow")); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, func() int64 { return p.Metrics().DecodeErrors.Value() }, 1)
	if _, err := conn.Write(dgram(t, 0, 42, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, 1)

	// Keep sending until the disconnect rule fires and the collector
	// closes its socket. Once that happens a connected UDP sender can see
	// ICMP-induced write errors — those are expected, not failures.
	deadline := time.Now().Add(5 * time.Second)
	for plan.Fired(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect rule never fired")
		}
		_, _ = conn.Write(dgram(t, 1, 42, 0, 1, 1))
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
