package ingest

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"streampca/internal/faults"
)

func TestCollectorReceivesOverUDP(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	c, err := Listen("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if _, err := conn.Write(dgram(t, uint32(i), 42, 0, 1, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Loopback UDP is reliable in practice but asynchronous; wait on the
	// decode counter rather than sleeping.
	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, 10)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 1 || got[0].Volumes[1] != 1000 {
		t.Fatalf("collected volumes wrong: %+v", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // double Close is a no-op
	}
}

// TestCollectorListenNMultiSocket: four collectors on one ephemeral address
// must all bind the same port (SO_REUSEPORT group) and jointly deliver every
// datagram, from several sender sockets, exactly once.
func TestCollectorListenNMultiSocket(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	c, err := ListenN("127.0.0.1:0", 4, p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if reusePortSupported && c.Sockets() != 4 {
		t.Fatalf("bound %d sockets, want 4", c.Sockets())
	}

	const senders, per = 4, 25
	for s := 0; s < senders; s++ {
		conn, err := net.Dial("udp", c.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < per; i++ {
			if _, err := conn.Write(dgram(t, uint32(s*per+i), 42, 0, 1, 100)); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
	}
	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, senders*per)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 1 || got[0].Volumes[1] != senders*per*100 {
		t.Fatalf("collected volumes wrong: %+v", got)
	}
}

// TestCollectorListenNSingleReaderFallback: n readers sharing one socket is
// the portable layout; it must deliver everything too.
func TestCollectorListenNSingleReaderFallback(t *testing.T) {
	p, _ := newTestPipeline(t, nil)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &Collector{pcs: []net.PacketConn{pc}, p: p}
	for i := 0; i < 3; i++ {
		c.wg.Add(1)
		go c.readLoop(pc)
	}
	defer c.Close()

	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 30; i++ {
		if _, err := conn.Write(dgram(t, uint32(i), 42, 0, 1, 100)); err != nil {
			t.Fatal(err)
		}
	}
	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, 30)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// flakyConn is a PacketConn whose ReadFrom fails transiently a fixed number
// of times before delivering one datagram and then behaving closed.
type flakyConn struct {
	net.PacketConn // embeds a real (unused for reads) socket for LocalAddr
	failures       int32
	payload        []byte
	delivered      atomic.Bool
	closed         chan struct{}
}

func (f *flakyConn) ReadFrom(b []byte) (int, net.Addr, error) {
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		return 0, nil, errors.New("simulated ICMP port unreachable")
	}
	if f.delivered.CompareAndSwap(false, true) {
		return copy(b, f.payload), f.PacketConn.LocalAddr(), nil
	}
	<-f.closed
	return 0, nil, net.ErrClosed
}

func (f *flakyConn) Close() error {
	select {
	case <-f.closed:
	default:
		close(f.closed)
	}
	return f.PacketConn.Close()
}

// TestCollectorReadLoopBacksOffOnTransientErrors: a storm of transient read
// errors must not spin the loop — with k consecutive failures the loop sleeps
// the geometric backoff series, so total elapsed time is bounded below; the
// datagram after the storm must still be delivered.
func TestCollectorReadLoopBacksOffOnTransientErrors(t *testing.T) {
	p, _ := newTestPipeline(t, nil)
	real, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const failures = 4
	fc := &flakyConn{
		PacketConn: real,
		failures:   failures,
		payload:    dgram(t, 1, 42, 0, 1, 100),
		closed:     make(chan struct{}),
	}
	c := &Collector{pcs: []net.PacketConn{fc}, p: p}
	start := time.Now()
	c.wg.Add(1)
	go c.readLoop(fc)

	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, 1)
	// 4 consecutive failures sleep 1+2+4+8 ms before the successful read.
	if min := 15 * time.Millisecond; time.Since(start) < min {
		t.Fatalf("read loop recovered in %v; backoff should enforce ≥ %v", time.Since(start), min)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorSurvivesGarbageAndStopsOnDisconnectFault(t *testing.T) {
	plan := faults.MustPlan(3,
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", After: 3, Disconnect: true})
	p, _ := newTestPipeline(t, func(c *Config) { c.Faults = plan })
	c, err := Listen("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("not netflow")); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, func() int64 { return p.Metrics().DecodeErrors.Value() }, 1)
	if _, err := conn.Write(dgram(t, 0, 42, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, func() int64 { return p.Metrics().Records.Value() }, 1)

	// Keep sending until the disconnect rule fires and the collector
	// closes its socket. Once that happens a connected UDP sender can see
	// ICMP-induced write errors — those are expected, not failures.
	deadline := time.Now().Add(5 * time.Second)
	for plan.Fired(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect rule never fired")
		}
		_, _ = conn.Write(dgram(t, 1, 42, 0, 1, 1))
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
