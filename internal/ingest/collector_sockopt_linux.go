//go:build linux

package ingest

// soReusePort is SO_REUSEPORT on Linux (supported since 3.9). The frozen
// syscall package predates the option, so the value is spelled out here.
const soReusePort = 0xf
