package ingest

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"streampca/internal/faults"
	"streampca/internal/flow"
	"streampca/internal/traffic"
)

// testAggregator builds the synthetic 3-router (9-flow) aggregation plane.
func testAggregator(t testing.TB) *flow.Aggregator {
	t.Helper()
	tbl, err := traffic.BuildRoutingTable(3)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := flow.NewAggregator(tbl, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// sinkRecorder collects sealed intervals (the merger delivers from its own
// goroutine).
type sinkRecorder struct {
	mu        sync.Mutex
	intervals []Interval
	err       error // returned to the pipeline when set
}

func (s *sinkRecorder) sink(iv Interval) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intervals = append(s.intervals, iv)
	return s.err
}

func (s *sinkRecorder) snapshot() []Interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Interval(nil), s.intervals...)
}

// dgram builds a single-record datagram: flow (o→d), octets bytes, epoch
// given in seconds (1s test interval).
func dgram(t testing.TB, seq uint32, unixSecs int64, o, d int, octets uint32) []byte {
	t.Helper()
	src, err := traffic.RouterAddr(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := traffic.RouterAddr(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendDatagram(nil, Header{
		UnixSecs:     uint32(unixSecs),
		FlowSequence: seq,
	}, []Record{{SrcAddr: src, DstAddr: dst, Packets: 1, Octets: octets}})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func newTestPipeline(t testing.TB, mod func(*Config)) (*Pipeline, *sinkRecorder) {
	t.Helper()
	rec := &sinkRecorder{}
	cfg := Config{
		Aggregator: testAggregator(t),
		Interval:   time.Second,
		Shards:     2,
		QueueLen:   16,
		Sink:       rec.sink,
	}
	if mod != nil {
		mod(&cfg)
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, rec
}

func TestPipelineSealsAndMerges(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	base := int64(1_200_000_000)
	// Epoch base: flows 0→1 (100 B) and 1→2 (50 B); epoch base+1: 0→1
	// again; then an epoch base+2 datagram forces base and base+1 sealed.
	feed := [][]byte{
		dgram(t, 0, base, 0, 1, 100),
		dgram(t, 1, base, 1, 2, 50),
		dgram(t, 2, base+1, 0, 1, 75),
		dgram(t, 3, base+2, 2, 2, 10),
	}
	for _, b := range feed {
		if err := p.HandleDatagram(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 3 {
		t.Fatalf("sealed %d intervals, want 3: %+v", len(got), got)
	}
	for i, iv := range got {
		if iv.Seq != int64(i+1) {
			t.Fatalf("interval %d: seq %d, want %d", i, iv.Seq, i+1)
		}
		if iv.Epoch != base+int64(i) {
			t.Fatalf("interval %d: epoch %d, want %d", i, iv.Epoch, base+int64(i))
		}
		if len(iv.Volumes) != 9 {
			t.Fatalf("interval %d: %d volumes", i, len(iv.Volumes))
		}
	}
	// Flow 0→1 is index 1, 1→2 index 5, 2→2 index 8.
	if got[0].Volumes[1] != 100 || got[0].Volumes[5] != 50 {
		t.Fatalf("epoch 0 volumes wrong: %v", got[0].Volumes)
	}
	if got[0].Records != 2 || got[0].Partial {
		t.Fatalf("epoch 0 meta wrong: %+v", got[0])
	}
	if got[1].Volumes[1] != 75 {
		t.Fatalf("epoch 1 volumes wrong: %v", got[1].Volumes)
	}
	if got[2].Volumes[8] != 10 || !got[2].Partial {
		t.Fatalf("final interval should be partial with the 2→2 record: %+v", got[2])
	}
	if v := p.Metrics().Records.Value(); v != 4 {
		t.Fatalf("records metric = %d, want 4", v)
	}
	if v := p.Metrics().EpochsSealed.Value(); v != 3 {
		t.Fatalf("epochs sealed = %d, want 3", v)
	}
	if v := p.Metrics().PartialEpochs.Value(); v != 1 {
		t.Fatalf("partial epochs = %d, want 1", v)
	}
}

func TestPipelineEmptyEpochsKeepSeqContiguous(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	base := int64(1_000_000)
	if err := p.HandleDatagram(dgram(t, 0, base, 0, 0, 5)); err != nil {
		t.Fatal(err)
	}
	// Jump 4 epochs ahead: the 3 quiet epochs must still be delivered so
	// the monitor's interval index never skips.
	if err := p.HandleDatagram(dgram(t, 1, base+4, 0, 0, 7)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 5 {
		t.Fatalf("sealed %d intervals, want 5", len(got))
	}
	for i, iv := range got {
		if iv.Seq != int64(i+1) || iv.Epoch != base+int64(i) {
			t.Fatalf("interval %d: seq %d epoch %d", i, iv.Seq, iv.Epoch)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if got[i].Records != 0 {
			t.Fatalf("quiet epoch %d has %d records", i, got[i].Records)
		}
	}
}

func TestPipelineLatenessSlack(t *testing.T) {
	p, rec := newTestPipeline(t, func(c *Config) {
		c.Lateness = 2 * time.Second // 2 epochs of slack at 1s intervals
	})
	base := int64(500_000)
	seq := uint32(0)
	send := func(sec int64, o, d int, octets uint32) {
		t.Helper()
		if err := p.HandleDatagram(dgram(t, seq, sec, o, d, octets)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	send(base, 0, 1, 10)
	send(base+2, 0, 1, 1) // watermark base+2: base not yet sealed (slack 2)
	if v := p.Metrics().EpochsSealed.Value(); v != 0 {
		t.Fatalf("sealed %d epochs before slack elapsed", v)
	}
	send(base, 1, 2, 20)  // late but within slack: accepted
	send(base+3, 0, 1, 1) // watermark base+3 = base+1+slack: seals base
	waitCounter(t, func() int64 { return p.Metrics().EpochsSealed.Value() }, 1)
	send(base, 2, 1, 99) // now beyond slack: dropped late
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 4 {
		t.Fatalf("sealed %d intervals, want 4", len(got))
	}
	if got[0].Volumes[1] != 10 || got[0].Volumes[5] != 20 {
		t.Fatalf("slack-window merge wrong: %v", got[0].Volumes)
	}
	if v := p.Metrics().LateRecords.Value(); v != 1 {
		t.Fatalf("late records = %d, want 1", v)
	}
}

func TestPipelineFutureJumpRejected(t *testing.T) {
	p, rec := newTestPipeline(t, func(c *Config) { c.MaxEpochJump = 8 })
	base := int64(900_000)
	if err := p.HandleDatagram(dgram(t, 0, base, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDatagram(dgram(t, 1, base+1000, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if v := p.Metrics().FutureDrops.Value(); v != 1 {
		t.Fatalf("future drops = %d, want 1", v)
	}
	if got := rec.snapshot(); len(got) != 1 {
		t.Fatalf("sealed %d intervals, want 1 (no empty-epoch flood)", len(got))
	}
}

func TestPipelineCountsDecodeErrorsAndUnroutable(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	if err := p.HandleDatagram([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Address 192.0.2.1 matches no 10.r/16 prefix.
	buf, err := AppendDatagram(nil, Header{UnixSecs: 77777}, []Record{{
		SrcAddr: mustAddr(t, 192, 0, 2, 1),
		DstAddr: mustAddr(t, 10, 0, 0, 1),
		Octets:  123,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDatagram(buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if v := p.Metrics().DecodeErrors.Value(); v != 1 {
		t.Fatalf("decode errors = %d, want 1", v)
	}
	if v := p.Metrics().Unroutable.Value(); v != 1 {
		t.Fatalf("unroutable = %d, want 1", v)
	}
	got := rec.snapshot()
	if len(got) != 1 || got[0].Records != 0 {
		t.Fatalf("unroutable record leaked into volumes: %+v", got)
	}
}

func TestPipelineSequenceGaps(t *testing.T) {
	p, _ := newTestPipeline(t, nil)
	if err := p.HandleDatagram(dgram(t, 100, 1000, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDatagram(dgram(t, 131, 1000, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if v := p.Metrics().SeqGapRecords.Value(); v != 30 {
		t.Fatalf("sequence gap records = %d, want 30", v)
	}
}

func TestPipelineDropNewestPolicy(t *testing.T) {
	rec := &sinkRecorder{}
	p, err := NewPipeline(Config{
		Aggregator: testAggregator(t),
		Interval:   time.Second,
		Shards:     1,
		QueueLen:   1,
		Policy:     PolicyDropNewest,
		Sink:       rec.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flood the single-slot queue; the shard drains concurrently, so the
	// exact split is timing-dependent — the invariant is accounting:
	// every record is either folded in or counted dropped.
	for i := 0; i < 200; i++ {
		if err := p.HandleDatagram(dgram(t, uint32(i), 42, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	kept := rec.snapshot()[0].Records
	dropped := p.Metrics().DroppedNewest.Value()
	if kept+dropped != 200 {
		t.Fatalf("kept %d + dropped %d != 200", kept, dropped)
	}
	if kept < 1 {
		t.Fatalf("kept = %d", kept)
	}
}

func TestPipelineDropOldestPolicy(t *testing.T) {
	rec := &sinkRecorder{}
	p, err := NewPipeline(Config{
		Aggregator: testAggregator(t),
		Interval:   time.Second,
		Shards:     1,
		QueueLen:   1,
		Policy:     PolicyDropOldest,
		Sink:       rec.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := p.HandleDatagram(dgram(t, uint32(i), 42, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	kept := rec.snapshot()[0].Records
	dropped := p.Metrics().DroppedOldest.Value()
	if kept+dropped != 200 {
		t.Fatalf("kept %d + dropped %d != 200", kept, dropped)
	}
}

func TestPipelineBlockPolicyLossless(t *testing.T) {
	rec := &sinkRecorder{}
	p, err := NewPipeline(Config{
		Aggregator: testAggregator(t),
		Interval:   time.Second,
		Shards:     2,
		QueueLen:   1,
		Policy:     PolicyBlock,
		Sink:       rec.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := p.HandleDatagram(dgram(t, uint32(i), 42, 0, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) != 1 {
		t.Fatalf("sealed %d intervals, want 1", len(got))
	}
	if got[0].Records != n || got[0].Volumes[1] != float64(2*n) {
		t.Fatalf("block policy lost records: %+v", got[0])
	}
	m := p.Metrics()
	if m.DroppedNewest.Value()+m.DroppedOldest.Value() != 0 {
		t.Fatal("block policy dropped records")
	}
}

func TestPipelineFaultInjection(t *testing.T) {
	plan := faults.MustPlan(1,
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", After: 2, Count: 3, Drop: true},
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", After: 8, Count: 2, Corrupt: true},
	)
	p, rec := newTestPipeline(t, func(c *Config) { c.Faults = plan })
	for i := 0; i < 20; i++ {
		if err := p.HandleDatagram(dgram(t, uint32(i), 42, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if v := m.FaultDrops.Value(); v != 3 {
		t.Fatalf("fault drops = %d, want 3", v)
	}
	if v := m.DecodeErrors.Value(); v != 2 {
		t.Fatalf("decode errors = %d, want 2 (corrupted)", v)
	}
	got := rec.snapshot()
	if len(got) != 1 || got[0].Records != 15 {
		t.Fatalf("surviving records = %+v, want 15", got)
	}
}

func TestPipelineFaultDisconnect(t *testing.T) {
	plan := faults.MustPlan(1,
		faults.Rule{Dir: faults.DirRecv, Type: "netflow", After: 1, Disconnect: true})
	p, _ := newTestPipeline(t, func(c *Config) { c.Faults = plan })
	if err := p.HandleDatagram(dgram(t, 0, 42, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDatagram(dgram(t, 1, 42, 0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("disconnect outcome: got %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineClosedRejectsDatagrams(t *testing.T) {
	p, _ := newTestPipeline(t, nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDatagram(dgram(t, 0, 42, 0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // double Close is a no-op
	}
}

func TestPipelineSinkErrorsCounted(t *testing.T) {
	p, rec := newTestPipeline(t, nil)
	rec.err = fmt.Errorf("sink says no")
	if err := p.HandleDatagram(dgram(t, 0, 42, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if v := p.Metrics().SinkErrors.Value(); v != 1 {
		t.Fatalf("sink errors = %d, want 1", v)
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	agg := testAggregator(t)
	sink := func(Interval) error { return nil }
	bad := []Config{
		{Interval: time.Second, Sink: sink},                                          // nil aggregator
		{Aggregator: agg, Sink: sink},                                                // zero interval
		{Aggregator: agg, Interval: time.Microsecond, Sink: sink},                    // sub-ms interval
		{Aggregator: agg, Interval: time.Second},                                     // nil sink
		{Aggregator: agg, Interval: time.Second, Sink: sink, Lateness: -time.Second}, // negative slack
		{Aggregator: agg, Interval: time.Second, Sink: sink, QueueLen: -1},           // bad queue
		{Aggregator: agg, Interval: time.Second, Sink: sink, MaxEpochJump: -1},       // bad jump
		{Aggregator: agg, Interval: time.Second, Sink: sink, Policy: Policy(99)},     // bad policy
		{Aggregator: agg, Interval: time.Second, Sink: sink, Clock: Clock(99)},       // bad clock
	}
	for i, cfg := range bad {
		if _, err := NewPipeline(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %d: got %v, want ErrConfig", i, err)
		}
	}
}

func TestPipelineWallClockSealsWithoutTraffic(t *testing.T) {
	p, rec := newTestPipeline(t, func(c *Config) {
		c.Clock = ClockWall
		c.Interval = 20 * time.Millisecond
	})
	if err := p.HandleDatagram(dgram(t, 0, 42, 0, 1, 9)); err != nil {
		t.Fatal(err)
	}
	// No further traffic: the wall ticker must still seal the interval.
	waitCounter(t, func() int64 { return p.Metrics().EpochsSealed.Value() }, 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.snapshot()
	if len(got) == 0 || got[0].Volumes[1] != 9 {
		t.Fatalf("wall clock lost the record: %+v", got)
	}
}

func waitCounter(t testing.TB, get func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want ≥ %d", get(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustAddr(t testing.TB, a, b, c, d byte) netip.Addr {
	t.Helper()
	return netip.AddrFrom4([4]byte{a, b, c, d})
}
