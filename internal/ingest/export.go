package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"streampca/internal/traffic"
)

// ExportOptions parameterizes ExportTrace.
type ExportOptions struct {
	// BaseTime is the unix-seconds timestamp of interval 0's start.
	// Defaults to 1200000000 (early 2008, the paper's measurement period).
	BaseTime int64
	// IntervalSec is the trace's seconds-per-interval; default 300
	// (5-minute bins).
	IntervalSec int
	// RecordsPerFlow splits each flow's per-interval volume across this
	// many records (diversified host addresses), exercising the
	// aggregation path; default 1. Volumes split exactly — the records of
	// one flow sum to round(volume) regardless of the split.
	RecordsPerFlow int
	// MaxRecords caps records per datagram; default (and ceiling) 30.
	MaxRecords int
	// Seed drives host-address diversification.
	Seed int64
	// EngineID tags the synthetic exporter.
	EngineID uint8
	// FlowFilter, when non-nil, selects which OD flows to export (e.g. one
	// monitor's slice); nil exports all.
	FlowFilter func(flowID int) bool
}

// ExportTrace serializes tr into NetFlow v5 datagrams and hands each to
// emit, in interval order with cumulative FlowSequence numbers — exactly
// what a line exporter would send. Each flow's per-interval volume is
// rounded to whole bytes (math.Round) and split exactly across
// RecordsPerFlow records, so an ingest pipeline replaying the datagrams
// reconstructs round(volume) per flow per interval.
//
// The trace must carry its router topology (RouterNames) to map flow
// indices back to addresses.
func ExportTrace(tr *traffic.Trace, opts ExportOptions, emit func(datagram []byte) error) error {
	nR := len(tr.RouterNames)
	if nR == 0 {
		return fmt.Errorf("%w: trace has no router topology", ErrConfig)
	}
	if nR*nR != tr.NumFlows() {
		return fmt.Errorf("%w: %d flows for %d routers", ErrConfig, tr.NumFlows(), nR)
	}
	if opts.BaseTime == 0 {
		opts.BaseTime = 1_200_000_000
	}
	if opts.BaseTime < 0 || opts.BaseTime > math.MaxUint32 {
		return fmt.Errorf("%w: base time %d outside uint32", ErrConfig, opts.BaseTime)
	}
	if opts.IntervalSec == 0 {
		opts.IntervalSec = 300
	}
	if opts.IntervalSec < 1 {
		return fmt.Errorf("%w: interval %ds", ErrConfig, opts.IntervalSec)
	}
	if opts.RecordsPerFlow == 0 {
		opts.RecordsPerFlow = 1
	}
	if opts.RecordsPerFlow < 1 {
		return fmt.Errorf("%w: %d records per flow", ErrConfig, opts.RecordsPerFlow)
	}
	if opts.MaxRecords == 0 {
		opts.MaxRecords = MaxRecords
	}
	if opts.MaxRecords < 1 || opts.MaxRecords > MaxRecords {
		return fmt.Errorf("%w: %d records per datagram outside [1, %d]", ErrConfig, opts.MaxRecords, MaxRecords)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var (
		pending  []Record
		buf      []byte
		sequence uint32
	)
	flush := func(unixSecs uint32, uptime uint32) error {
		if len(pending) == 0 {
			return nil
		}
		h := Header{
			SysUptime:    uptime,
			UnixSecs:     unixSecs,
			FlowSequence: sequence,
			EngineID:     opts.EngineID,
		}
		var err error
		buf, err = AppendDatagram(buf[:0], h, pending)
		if err != nil {
			return err
		}
		sequence += uint32(len(pending))
		pending = pending[:0]
		return emit(buf)
	}

	for i := 0; i < tr.NumIntervals(); i++ {
		unixSecs := uint32(opts.BaseTime + int64(i)*int64(opts.IntervalSec))
		uptime := uint32(i+1) * uint32(opts.IntervalSec) * 1000
		row := tr.Volumes.RowView(i)
		for j, vol := range row {
			if opts.FlowFilter != nil && !opts.FlowFilter(j) {
				continue
			}
			total := uint64(math.Round(vol))
			if total == 0 {
				continue
			}
			o, d := j/nR, j%nR
			// Split exactly: base share per record, remainder spread over
			// the first records, and any share beyond uint32 spills into
			// extra records.
			k := uint64(opts.RecordsPerFlow)
			base, rem := total/k, total%k
			for r := uint64(0); r < k; r++ {
				share := base
				if r < rem {
					share++
				}
				for share > 0 {
					octets := share
					if octets > math.MaxUint32 {
						octets = math.MaxUint32
					}
					share -= octets
					src, err := traffic.RouterAddr(o, uint16(rng.Intn(1<<16)))
					if err != nil {
						return err
					}
					dst, err := traffic.RouterAddr(d, uint16(rng.Intn(1<<16)))
					if err != nil {
						return err
					}
					pending = append(pending, Record{
						SrcAddr: src,
						DstAddr: dst,
						Packets: 1,
						Octets:  uint32(octets),
						First:   uptime - uint32(opts.IntervalSec)*1000,
						Last:    uptime,
						Proto:   6, // TCP
					})
					if len(pending) == opts.MaxRecords {
						if err := flush(unixSecs, uptime); err != nil {
							return err
						}
					}
				}
			}
		}
		// Seal the interval's tail datagram so every datagram's timestamp
		// lies inside its interval.
		if err := flush(unixSecs, uptime); err != nil {
			return err
		}
	}
	return nil
}

// ReadDatagrams parses a stream of concatenated NetFlow v5 datagrams (the
// trafficgen -netflow file format: no framing — each datagram's length
// follows from its header's record count) and hands each raw datagram to
// fn. Returns ErrDecode on a malformed stream.
func ReadDatagrams(r io.Reader, fn func(datagram []byte) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	buf := make([]byte, MaxDatagramLen)
	for {
		if _, err := io.ReadFull(br, buf[:HeaderLen]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("%w: truncated header: %v", ErrDecode, err)
		}
		version := binary.BigEndian.Uint16(buf[0:2])
		count := binary.BigEndian.Uint16(buf[2:4])
		if version != Version || count == 0 || count > MaxRecords {
			return fmt.Errorf("%w: header version %d count %d", ErrDecode, version, count)
		}
		n := HeaderLen + int(count)*RecordLen
		if _, err := io.ReadFull(br, buf[HeaderLen:n]); err != nil {
			return fmt.Errorf("%w: truncated records: %v", ErrDecode, err)
		}
		if err := fn(buf[:n]); err != nil {
			return err
		}
	}
}
