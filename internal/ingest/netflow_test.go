package ingest

import (
	"errors"
	"net/netip"
	"testing"
)

func testRecord(i int) Record {
	return Record{
		SrcAddr:  netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		DstAddr:  netip.AddrFrom4([4]byte{10, 1, 0, byte(i)}),
		NextHop:  netip.AddrFrom4([4]byte{10, 2, 0, 1}),
		Input:    1,
		Output:   2,
		Packets:  uint32(10 + i),
		Octets:   uint32(1000 + i),
		First:    100,
		Last:     200,
		SrcPort:  uint16(1024 + i),
		DstPort:  443,
		TCPFlags: 0x18,
		Proto:    6,
		Tos:      0,
		SrcAS:    64512,
		DstAS:    64513,
		SrcMask:  16,
		DstMask:  16,
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	h := Header{
		SysUptime:        123456,
		UnixSecs:         1200000000,
		UnixNsecs:        789,
		FlowSequence:     42,
		EngineType:       1,
		EngineID:         7,
		SamplingInterval: 0x0100,
	}
	recs := make([]Record, 5)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	buf, err := AppendDatagram(nil, h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen+5*RecordLen {
		t.Fatalf("encoded %d bytes, want %d", len(buf), HeaderLen+5*RecordLen)
	}
	var d Datagram
	if err := DecodeDatagram(buf, &d); err != nil {
		t.Fatal(err)
	}
	wantH := h
	wantH.Version = Version
	wantH.Count = 5
	if d.Header != wantH {
		t.Fatalf("header round trip: got %+v want %+v", d.Header, wantH)
	}
	for i := range recs {
		if d.Records[i] != recs[i] {
			t.Fatalf("record %d round trip: got %+v want %+v", i, d.Records[i], recs[i])
		}
	}
}

func TestDecodeDatagramRejectsMalformed(t *testing.T) {
	valid, err := AppendDatagram(nil, Header{UnixSecs: 1}, []Record{testRecord(0), testRecord(1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     valid[:HeaderLen-1],
		"truncated record": valid[:HeaderLen+RecordLen-1],
		"trailing bytes":   append(append([]byte(nil), valid...), 0),
		"bad version": func() []byte {
			b := append([]byte(nil), valid...)
			b[1] = 9
			return b
		}(),
		"zero count": func() []byte {
			b := append([]byte(nil), valid...)
			b[2], b[3] = 0, 0
			return b
		}(),
		"oversized count": func() []byte {
			b := append([]byte(nil), valid...)
			b[2], b[3] = 0, MaxRecords+1
			return b
		}(),
	}
	var d Datagram
	for name, buf := range cases {
		if err := DecodeDatagram(buf, &d); !errors.Is(err, ErrDecode) {
			t.Errorf("%s: got %v, want ErrDecode", name, err)
		}
	}
	if err := DecodeDatagram(valid, &d); err != nil {
		t.Fatalf("valid datagram rejected: %v", err)
	}
}

func TestDecodeDatagramReusesRecordSlice(t *testing.T) {
	big, _ := AppendDatagram(nil, Header{}, make([]Record, 20))
	small, _ := AppendDatagram(nil, Header{}, make([]Record, 3))
	var d Datagram
	if err := DecodeDatagram(big, &d); err != nil {
		t.Fatal(err)
	}
	ptr := &d.Records[0]
	if err := DecodeDatagram(small, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Records) != 3 {
		t.Fatalf("len = %d, want 3", len(d.Records))
	}
	if &d.Records[0] != ptr {
		t.Fatal("small decode reallocated the record slice")
	}
}

func TestAppendDatagramRejectsBadCounts(t *testing.T) {
	if _, err := AppendDatagram(nil, Header{}, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := AppendDatagram(nil, Header{}, make([]Record, MaxRecords+1)); !errors.Is(err, ErrConfig) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestSeqTracker(t *testing.T) {
	var s SeqTracker
	h := func(engine uint8, seq uint32, count uint16) *Header {
		return &Header{EngineID: engine, FlowSequence: seq, Count: count}
	}
	if gap := s.Observe(h(0, 100, 10)); gap != 0 {
		t.Fatalf("first datagram gap = %d", gap)
	}
	if gap := s.Observe(h(0, 110, 5)); gap != 0 {
		t.Fatalf("in-order gap = %d", gap)
	}
	if gap := s.Observe(h(0, 145, 5)); gap != 30 {
		t.Fatalf("gap = %d, want 30", gap)
	}
	// Independent engines track independently.
	if gap := s.Observe(h(1, 7, 1)); gap != 0 {
		t.Fatalf("new engine gap = %d", gap)
	}
	if gap := s.Observe(h(0, 150, 1)); gap != 0 {
		t.Fatalf("post-gap in-order gap = %d", gap)
	}
	// An exporter restart (sequence far below expected) reports no gap.
	if gap := s.Observe(h(0, 0, 1)); gap != 0 {
		t.Fatalf("restart gap = %d", gap)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{PolicyBlock, PolicyDropOldest, PolicyDropNewest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); !errors.Is(err, ErrConfig) {
		t.Fatalf("bogus policy: %v", err)
	}
}

func TestParseClock(t *testing.T) {
	for _, c := range []Clock{ClockRecord, ClockWall} {
		got, err := ParseClock(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseClock("bogus"); !errors.Is(err, ErrConfig) {
		t.Fatalf("bogus clock: %v", err)
	}
}
