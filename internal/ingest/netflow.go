// Package ingest is the high-throughput measurement front end of the
// monitor daemon: it turns raw NetFlow v5 datagrams — collected from a UDP
// socket or handed in directly — into the per-interval OD volume vectors
// monitor.Service.Update expects. The paper specifies the local monitor as
// consuming a live measurement stream ("each monitoring point observes the
// traffic ... and updates its summary per arrival"); this package is that
// stream's aggregation stage, built to sustain millions of flow records per
// second (see DESIGN.md §12).
//
// The pipeline is: Collector (UDP read loop, reusable buffers) →
// Pipeline.HandleDatagram (decode, sequence tracking, epoch assignment,
// fault injection) → N shard queues (bounded, explicit backpressure
// policy) → shard accumulators (private per-shard volume rows, keyed by
// epoch) → epoch rollover (seal tokens, shard-row merge) → Sink (the
// monitor core). Everything is stdlib-only and instrumented via
// internal/obs.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the package.
var (
	// ErrDecode indicates a malformed NetFlow v5 datagram.
	ErrDecode = errors.New("ingest: malformed NetFlow v5 datagram")
	// ErrConfig indicates an invalid pipeline or export configuration.
	ErrConfig = errors.New("ingest: invalid configuration")
	// ErrClosed indicates an operation on a closed pipeline or collector.
	ErrClosed = errors.New("ingest: closed")
)

// NetFlow v5 wire-format constants.
const (
	// Version is the NetFlow version this package speaks.
	Version = 5
	// HeaderLen is the fixed v5 header size in bytes.
	HeaderLen = 24
	// RecordLen is the fixed v5 flow-record size in bytes.
	RecordLen = 48
	// MaxRecords is the record-count ceiling per datagram (the v5 export
	// format caps at 30 so a full datagram fits a 1500-byte MTU).
	MaxRecords = 30
	// MaxDatagramLen is the largest well-formed datagram.
	MaxDatagramLen = HeaderLen + MaxRecords*RecordLen
)

// Header is the 24-byte NetFlow v5 export header.
type Header struct {
	// Version must be 5.
	Version uint16
	// Count is the number of flow records in this datagram (1..30).
	Count uint16
	// SysUptime is the exporter's uptime in milliseconds.
	SysUptime uint32
	// UnixSecs/UnixNsecs timestamp the export at the source; the record
	// clock (ClockRecord) derives the epoch index from UnixSecs.
	UnixSecs  uint32
	UnixNsecs uint32
	// FlowSequence is the cumulative count of records exported before this
	// datagram; gaps reveal datagrams lost in flight.
	FlowSequence uint32
	// EngineType/EngineID identify the exporting slot; sequence tracking is
	// per engine.
	EngineType uint8
	EngineID   uint8
	// SamplingInterval packs the sampling mode and rate.
	SamplingInterval uint16
}

// Record is one 48-byte NetFlow v5 flow record. Address and counter fields
// are decoded; the remaining fields are carried so re-encoding round-trips.
type Record struct {
	// SrcAddr/DstAddr key the OD aggregation via the routing table.
	SrcAddr netip.Addr
	DstAddr netip.Addr
	// NextHop is the next-hop router address.
	NextHop netip.Addr
	// Input/Output are SNMP interface indices.
	Input  uint16
	Output uint16
	// Packets and Octets are the flow's totals; Octets feeds the volume
	// accumulators (the paper's per-interval byte counts).
	Packets uint32
	Octets  uint32
	// First/Last are SysUptime timestamps of the flow's first/last packet.
	First uint32
	Last  uint32
	// Transport header fields.
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Proto    uint8
	Tos      uint8
	// Routing metadata.
	SrcAS   uint16
	DstAS   uint16
	SrcMask uint8
	DstMask uint8
}

// Datagram is one decoded NetFlow v5 export packet. The Records slice is
// reused across DecodeDatagram calls on the same Datagram, so a zero-value
// Datagram decoded in a loop allocates only on the first (largest) packet.
type Datagram struct {
	Header  Header
	Records []Record
}

// DecodeDatagram parses buf into d. It never panics on hostile input:
// truncated buffers, bad versions, zero or oversized counts, and
// count/length mismatches all return ErrDecode. On error d's contents are
// unspecified.
func DecodeDatagram(buf []byte, d *Datagram) error {
	if len(buf) < HeaderLen {
		return fmt.Errorf("%w: %d bytes, header needs %d", ErrDecode, len(buf), HeaderLen)
	}
	h := &d.Header
	h.Version = binary.BigEndian.Uint16(buf[0:2])
	if h.Version != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrDecode, h.Version, Version)
	}
	h.Count = binary.BigEndian.Uint16(buf[2:4])
	if h.Count == 0 || h.Count > MaxRecords {
		return fmt.Errorf("%w: record count %d outside [1, %d]", ErrDecode, h.Count, MaxRecords)
	}
	if want := HeaderLen + int(h.Count)*RecordLen; len(buf) != want {
		return fmt.Errorf("%w: %d bytes for %d records, want %d", ErrDecode, len(buf), h.Count, want)
	}
	h.SysUptime = binary.BigEndian.Uint32(buf[4:8])
	h.UnixSecs = binary.BigEndian.Uint32(buf[8:12])
	h.UnixNsecs = binary.BigEndian.Uint32(buf[12:16])
	h.FlowSequence = binary.BigEndian.Uint32(buf[16:20])
	h.EngineType = buf[20]
	h.EngineID = buf[21]
	h.SamplingInterval = binary.BigEndian.Uint16(buf[22:24])

	n := int(h.Count)
	if cap(d.Records) < n {
		d.Records = make([]Record, n)
	}
	d.Records = d.Records[:n]
	for i := 0; i < n; i++ {
		b := buf[HeaderLen+i*RecordLen:]
		r := &d.Records[i]
		r.SrcAddr = netip.AddrFrom4([4]byte(b[0:4]))
		r.DstAddr = netip.AddrFrom4([4]byte(b[4:8]))
		r.NextHop = netip.AddrFrom4([4]byte(b[8:12]))
		r.Input = binary.BigEndian.Uint16(b[12:14])
		r.Output = binary.BigEndian.Uint16(b[14:16])
		r.Packets = binary.BigEndian.Uint32(b[16:20])
		r.Octets = binary.BigEndian.Uint32(b[20:24])
		r.First = binary.BigEndian.Uint32(b[24:28])
		r.Last = binary.BigEndian.Uint32(b[28:32])
		r.SrcPort = binary.BigEndian.Uint16(b[32:34])
		r.DstPort = binary.BigEndian.Uint16(b[34:36])
		r.TCPFlags = b[37]
		r.Proto = b[38]
		r.Tos = b[39]
		r.SrcAS = binary.BigEndian.Uint16(b[40:42])
		r.DstAS = binary.BigEndian.Uint16(b[42:44])
		r.SrcMask = b[44]
		r.DstMask = b[45]
	}
	return nil
}

// decodeRecords is the pipeline's batch-decode hot path: it validates buf
// exactly like DecodeDatagram (same length, version and count checks, so the
// two paths accept and reject identical inputs — pinned by FuzzDecodeDatagram)
// but parses only the fields the aggregation shards consume — endpoint
// addresses and octet counts — straight into a pooled record slab, skipping
// the netip.Addr conversions and the ten unused per-record fields. It
// allocates nothing, whatever the input.
func decodeRecords(buf []byte, h *Header, slab *recSlab) error {
	if len(buf) < HeaderLen {
		return fmt.Errorf("%w: %d bytes, header needs %d", ErrDecode, len(buf), HeaderLen)
	}
	h.Version = binary.BigEndian.Uint16(buf[0:2])
	if h.Version != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrDecode, h.Version, Version)
	}
	h.Count = binary.BigEndian.Uint16(buf[2:4])
	if h.Count == 0 || h.Count > MaxRecords {
		return fmt.Errorf("%w: record count %d outside [1, %d]", ErrDecode, h.Count, MaxRecords)
	}
	if want := HeaderLen + int(h.Count)*RecordLen; len(buf) != want {
		return fmt.Errorf("%w: %d bytes for %d records, want %d", ErrDecode, len(buf), h.Count, want)
	}
	h.SysUptime = binary.BigEndian.Uint32(buf[4:8])
	h.UnixSecs = binary.BigEndian.Uint32(buf[8:12])
	h.UnixNsecs = binary.BigEndian.Uint32(buf[12:16])
	h.FlowSequence = binary.BigEndian.Uint32(buf[16:20])
	h.EngineType = buf[20]
	h.EngineID = buf[21]
	h.SamplingInterval = binary.BigEndian.Uint16(buf[22:24])

	n := int(h.Count)
	for i := 0; i < n; i++ {
		b := buf[HeaderLen+i*RecordLen : HeaderLen+(i+1)*RecordLen]
		r := &slab.recs[i]
		r.src = [4]byte(b[0:4])
		r.dst = [4]byte(b[4:8])
		r.octets = binary.BigEndian.Uint32(b[20:24])
	}
	slab.n = n
	return nil
}

// AppendDatagram serializes a header and records into dst and returns the
// extended slice. h.Count and h.Version are forced to match; other header
// fields are taken as given. Non-IPv4 record addresses encode as 0.0.0.0
// (the v5 format is IPv4-only).
func AppendDatagram(dst []byte, h Header, recs []Record) ([]byte, error) {
	if len(recs) == 0 || len(recs) > MaxRecords {
		return dst, fmt.Errorf("%w: %d records outside [1, %d]", ErrConfig, len(recs), MaxRecords)
	}
	h.Version = Version
	h.Count = uint16(len(recs))
	var hb [HeaderLen]byte
	binary.BigEndian.PutUint16(hb[0:2], h.Version)
	binary.BigEndian.PutUint16(hb[2:4], h.Count)
	binary.BigEndian.PutUint32(hb[4:8], h.SysUptime)
	binary.BigEndian.PutUint32(hb[8:12], h.UnixSecs)
	binary.BigEndian.PutUint32(hb[12:16], h.UnixNsecs)
	binary.BigEndian.PutUint32(hb[16:20], h.FlowSequence)
	hb[20] = h.EngineType
	hb[21] = h.EngineID
	binary.BigEndian.PutUint16(hb[22:24], h.SamplingInterval)
	dst = append(dst, hb[:]...)
	for i := range recs {
		r := &recs[i]
		var rb [RecordLen]byte
		putAddr4(rb[0:4], r.SrcAddr)
		putAddr4(rb[4:8], r.DstAddr)
		putAddr4(rb[8:12], r.NextHop)
		binary.BigEndian.PutUint16(rb[12:14], r.Input)
		binary.BigEndian.PutUint16(rb[14:16], r.Output)
		binary.BigEndian.PutUint32(rb[16:20], r.Packets)
		binary.BigEndian.PutUint32(rb[20:24], r.Octets)
		binary.BigEndian.PutUint32(rb[24:28], r.First)
		binary.BigEndian.PutUint32(rb[28:32], r.Last)
		binary.BigEndian.PutUint16(rb[32:34], r.SrcPort)
		binary.BigEndian.PutUint16(rb[34:36], r.DstPort)
		rb[37] = r.TCPFlags
		rb[38] = r.Proto
		rb[39] = r.Tos
		binary.BigEndian.PutUint16(rb[40:42], r.SrcAS)
		binary.BigEndian.PutUint16(rb[42:44], r.DstAS)
		rb[44] = r.SrcMask
		rb[45] = r.DstMask
		dst = append(dst, rb[:]...)
	}
	return dst, nil
}

func putAddr4(b []byte, a netip.Addr) {
	if a.Is4() {
		v := a.As4()
		copy(b, v[:])
	}
}

// SeqTracker detects export-sequence gaps per engine. NetFlow v5's
// FlowSequence is the cumulative record count, so the expected sequence of
// datagram k+1 is datagram k's sequence plus its record count; a positive
// difference is the number of records lost in flight.
//
// SeqTracker is not safe for concurrent use; the pipeline serializes calls
// under its ingest lock.
type SeqTracker struct {
	// next[e] is the expected FlowSequence for engine e; present only after
	// the first datagram from that engine.
	next map[uint16]uint32
}

// Observe folds one datagram header in and returns the number of records
// skipped since the previous datagram from the same engine (0 when in
// order; restarts and wraparounds also report 0 rather than a huge gap).
func (s *SeqTracker) Observe(h *Header) (gap uint32) {
	if s.next == nil {
		s.next = make(map[uint16]uint32)
	}
	engine := uint16(h.EngineType)<<8 | uint16(h.EngineID)
	if want, ok := s.next[engine]; ok {
		diff := h.FlowSequence - want // wraparound-safe modular difference
		// Treat a huge forward jump as an exporter restart, not loss.
		if diff > 0 && diff < 1<<30 {
			gap = diff
		}
	}
	s.next[engine] = h.FlowSequence + uint32(h.Count)
	return gap
}
