package ingest

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Collector is the UDP front door of the ingest pipeline: one goroutine
// reading datagrams into a reusable buffer and handing each to
// Pipeline.HandleDatagram. NetFlow exporters are fire-and-forget UDP
// senders, so the collector's only flow control is the kernel socket
// buffer; overload beyond that surfaces as sequence gaps.
type Collector struct {
	pc net.PacketConn
	p  *Pipeline

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Listen opens a UDP socket on addr (e.g. "127.0.0.1:2055", port 0 for
// ephemeral) and starts the read loop.
func Listen(addr string, p *Pipeline) (*Collector, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil pipeline", ErrConfig)
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen %s: %w", addr, err)
	}
	c := &Collector{pc: pc, p: p, done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

// Addr returns the bound socket address.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

// readLoop reads datagrams until the socket closes. The buffer is reused
// across reads; HandleDatagram copies what it keeps.
func (c *Collector) readLoop() {
	defer close(c.done)
	buf := make([]byte, 65536)
	for {
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			if c.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read errors (e.g. ICMP-induced) are survivable.
			c.p.log.Warn("collector read error", "err", err)
			continue
		}
		if err := c.p.HandleDatagram(buf[:n]); err != nil {
			// ErrClosed: the pipeline shut down (or a fault plan demanded
			// a disconnect) — stop reading.
			_ = c.pc.Close()
			return
		}
	}
}

func (c *Collector) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close stops the read loop and closes the socket. It does not close the
// pipeline — callers drain it separately so queued records survive
// shutdown. Safe to call multiple times.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.pc.Close()
	<-c.done
	if errors.Is(err, net.ErrClosed) {
		// The read loop already closed the socket (pipeline shutdown or a
		// disconnect fault); that is not a caller-visible failure.
		return nil
	}
	return err
}
