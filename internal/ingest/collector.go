package ingest

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// readBufferBytes is the kernel receive buffer requested per collector
// socket. NetFlow exporters are fire-and-forget UDP senders, so this buffer
// is the only slack between an export burst and datagram loss; 4 MiB absorbs
// roughly a second of a saturated gigabit export stream. SetReadBuffer is
// best-effort — the kernel may clamp it (rmem_max) — so failure is logged,
// not fatal.
const readBufferBytes = 4 << 20

// Backoff bounds for transient socket read errors. A broken exporter (or an
// ICMP port-unreachable storm reflected back at the socket) can make ReadFrom
// fail continuously; without a backoff the read loop would spin-log at 100%
// CPU. Errors sleep exponentially from readBackoffMin up to readBackoffMax
// and any successful read resets the backoff.
const (
	readBackoffMin = time.Millisecond
	readBackoffMax = time.Second
)

// Collector is the UDP front door of the ingest pipeline: one or more
// sockets, each with a goroutine reading datagrams into a private reusable
// buffer and handing each to Pipeline.HandleDatagram. NetFlow exporters are
// fire-and-forget UDP senders, so the collector's only flow control is the
// kernel socket buffer; overload beyond that surfaces as sequence gaps.
//
// With n > 1 the collector prefers n independent SO_REUSEPORT sockets bound
// to the same address — the kernel then hashes datagrams across them, giving
// each reader a private socket buffer and lock — and falls back to n reader
// goroutines sharing one socket where the option is unavailable (ReadFrom is
// concurrency-safe).
type Collector struct {
	pcs []net.PacketConn
	p   *Pipeline

	mu     sync.Mutex
	closed bool
	// teardown closes every socket exactly once when any read loop observes
	// pipeline shutdown (the loops share the pipeline, so one seeing ErrClosed
	// means all must stop).
	teardown sync.Once
	wg       sync.WaitGroup
}

// Listen opens a UDP socket on addr (e.g. "127.0.0.1:2055", port 0 for
// ephemeral) and starts the read loop. It is ListenN with one socket.
func Listen(addr string, p *Pipeline) (*Collector, error) {
	return ListenN(addr, 1, p)
}

// ListenN opens up to n UDP sockets on addr and starts one read loop per
// socket (n < 1 is treated as 1). For n > 1 it attempts SO_REUSEPORT
// sockets; if the platform or kernel refuses, it falls back to a single
// socket read by n goroutines. Ephemeral addresses (port 0) work with
// either: the first socket binds the concrete port the rest then share.
func ListenN(addr string, n int, p *Pipeline) (*Collector, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil pipeline", ErrConfig)
	}
	if n < 1 {
		n = 1
	}
	c := &Collector{p: p}
	if n == 1 || !reusePortSupported {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("ingest: listen %s: %w", addr, err)
		}
		c.pcs = []net.PacketConn{pc}
	} else {
		pcs, err := listenReusePortGroup(addr, n)
		if err != nil {
			// SO_REUSEPORT can fail even where compiled in (old kernels,
			// exotic socket filters); degrade to the shared-socket layout
			// rather than refuse to start.
			p.log.Warn("collector: SO_REUSEPORT unavailable, sharing one socket",
				"sockets", n, "err", err)
			pc, lerr := net.ListenPacket("udp", addr)
			if lerr != nil {
				return nil, fmt.Errorf("ingest: listen %s: %w", addr, lerr)
			}
			c.pcs = []net.PacketConn{pc}
		} else {
			c.pcs = pcs
		}
	}
	for _, pc := range c.pcs {
		if uc, ok := pc.(*net.UDPConn); ok {
			if err := uc.SetReadBuffer(readBufferBytes); err != nil {
				p.log.Warn("collector: SetReadBuffer failed",
					"bytes", readBufferBytes, "err", err)
			}
		}
	}
	// With one socket, n loops share it; with SO_REUSEPORT, one loop each.
	loops := n
	if len(c.pcs) > 1 {
		loops = len(c.pcs)
	}
	for i := 0; i < loops; i++ {
		pc := c.pcs[i%len(c.pcs)]
		c.wg.Add(1)
		go c.readLoop(pc)
	}
	return c, nil
}

// listenReusePortGroup binds count SO_REUSEPORT UDP sockets to addr. For an
// ephemeral request (port 0) the first bind picks the concrete port and the
// remaining sockets join it — binding each to port 0 independently would
// scatter them across different ports.
func listenReusePortGroup(addr string, count int) ([]net.PacketConn, error) {
	pcs := make([]net.PacketConn, 0, count)
	first, err := listenReusePort(addr)
	if err != nil {
		return nil, err
	}
	pcs = append(pcs, first)
	bound := first.LocalAddr().String()
	for len(pcs) < count {
		pc, err := listenReusePort(bound)
		if err != nil {
			for _, prev := range pcs {
				_ = prev.Close()
			}
			return nil, err
		}
		pcs = append(pcs, pc)
	}
	return pcs, nil
}

// Addr returns the bound socket address (all sockets share it).
func (c *Collector) Addr() string { return c.pcs[0].LocalAddr().String() }

// Sockets reports how many UDP sockets the collector bound (1 when
// SO_REUSEPORT was unavailable and readers share a socket).
func (c *Collector) Sockets() int { return len(c.pcs) }

// readLoop reads datagrams from pc until the socket closes. The buffer is
// private to the loop and reused across reads; HandleDatagram copies what it
// keeps before returning.
func (c *Collector) readLoop(pc net.PacketConn) {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	backoff := time.Duration(0)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			if c.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read errors (e.g. ICMP-induced) are survivable, but
			// they can arrive in storms: back off exponentially so a wedged
			// socket logs once per second instead of spinning.
			if backoff == 0 {
				backoff = readBackoffMin
			} else if backoff *= 2; backoff > readBackoffMax {
				backoff = readBackoffMax
			}
			c.p.log.Warn("collector read error", "err", err, "backoff", backoff)
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		if err := c.p.HandleDatagram(buf[:n]); err != nil {
			// ErrClosed: the pipeline shut down (or a fault plan demanded a
			// disconnect) — every loop must stop, so close all sockets.
			c.closeSockets()
			return
		}
	}
}

func (c *Collector) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// closeSockets closes every socket exactly once (read loops racing Close).
func (c *Collector) closeSockets() (err error) {
	c.teardown.Do(func() {
		for _, pc := range c.pcs {
			if cerr := pc.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Close stops the read loops and closes the sockets. It does not close the
// pipeline — callers drain it separately so queued records survive
// shutdown. Safe to call multiple times.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.closeSockets()
	c.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		// A read loop already closed the sockets (pipeline shutdown or a
		// disconnect fault); that is not a caller-visible failure.
		return nil
	}
	return err
}
