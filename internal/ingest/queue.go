package ingest

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Policy selects what happens when a shard queue is full and another batch
// arrives. Control tokens (epoch seals, flushes) are exempt: they are never
// dropped, whatever the policy, because losing one would wedge an epoch.
type Policy int

const (
	// PolicyBlock stalls the producer until the shard drains — lossless,
	// and the backpressure propagates to the UDP socket (the kernel then
	// drops, which sequence tracking surfaces as gaps).
	PolicyBlock Policy = iota
	// PolicyDropOldest evicts the oldest queued data batch to admit the
	// new one — keeps the freshest measurements under overload.
	PolicyDropOldest
	// PolicyDropNewest discards the incoming batch — cheapest, keeps the
	// oldest measurements.
	PolicyDropNewest
)

// ParsePolicy maps the flag spellings "block", "drop-oldest" and
// "drop-newest" to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "block":
		return PolicyBlock, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	case "drop-newest":
		return PolicyDropNewest, nil
	}
	return 0, fmt.Errorf("%w: unknown policy %q (want block, drop-oldest or drop-newest)", ErrConfig, s)
}

// String returns the flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyDropNewest:
		return "drop-newest"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ctlKind discriminates batch payloads from pipeline control tokens.
type ctlKind uint8

const (
	ctlData ctlKind = iota
	// ctlSeal asks the shard to hand epoch Epoch's accumulator to the
	// merger. It is ordered after every data batch for that epoch.
	ctlSeal
	// ctlStop asks the shard goroutine to exit after processing everything
	// already queued.
	ctlStop
)

// rec is the compact per-record view shards aggregate: the OD lookup needs
// only the endpoint addresses, and the volume accumulators only the bytes.
type rec struct {
	src, dst [4]byte
	octets   uint32
}

// recSlab is a fixed-capacity arena one datagram's records decode into. The
// front end pulls slabs from a pool, the owning shard returns them after
// folding, and because the pooled value is the *recSlab pointer itself (not
// an interface-boxed slice header) the steady-state hand-off allocates
// nothing — asserted by TestIngestHotPathZeroAlloc.
type recSlab struct {
	n    int
	recs [MaxRecords]rec
}

// batch is one unit of shard work: a datagram's decoded records stamped with
// their epoch, or a control token.
type batch struct {
	ctl   ctlKind
	epoch int64
	slab  *recSlab
	// partial marks a ctlSeal forced by shutdown before the epoch's
	// lateness slack elapsed.
	partial bool
	// sealedAt timestamps a ctlSeal broadcast (rollover latency).
	sealedAt time.Time
}

// queue is the bounded ring buffer between the ingest front end and one
// shard. A plain channel cannot implement drop-oldest without racing the
// consumer, nor exempt control tokens from eviction, so this is a
// mutex+cond ring: one producer (the pipeline front end), one consumer
// (the shard goroutine).
//
// Control tokens may transiently exceed the configured capacity (the ring
// grows) — they are rare (one per epoch per shard) and must never block a
// producer that is also the party draining the shards during shutdown.
type queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []batch
	head     int // index of the oldest element
	n        int // number of queued elements
	capacity int // soft cap for data batches
	policy   Policy
}

func newQueue(capacity int, policy Policy) *queue {
	q := &queue{
		buf:      make([]batch, capacity),
		capacity: capacity,
		policy:   policy,
	}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// grow doubles the ring (control-token overflow only).
func (q *queue) grow() {
	next := make([]batch, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = next, 0
}

func (q *queue) appendLocked(b batch) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = b
	q.n++
	q.notEmpty.Signal()
}

// pushData enqueues a data batch under the queue's policy. It reports
// whether the batch was admitted and, for drop-oldest, returns the evicted
// batch's record slab so the caller can account (and recycle) it.
func (q *queue) pushData(b batch) (admitted bool, evicted *recSlab) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n >= q.capacity {
		switch q.policy {
		case PolicyBlock:
			q.notFull.Wait()
		case PolicyDropNewest:
			return false, nil
		case PolicyDropOldest:
			if dropped, ok := q.evictOldestDataLocked(); ok {
				evicted = dropped
			} else {
				// Only control tokens are queued; admit over capacity.
				q.appendLocked(b)
				return true, evicted
			}
		}
		if q.policy == PolicyDropOldest {
			break
		}
	}
	q.appendLocked(b)
	return true, evicted
}

// pushCtl enqueues a control token unconditionally (the ring grows if
// needed).
func (q *queue) pushCtl(b batch) {
	q.mu.Lock()
	q.appendLocked(b)
	q.mu.Unlock()
}

// evictOldestDataLocked removes the oldest data batch, skipping control
// tokens. Returns false when no data batch is queued.
func (q *queue) evictOldestDataLocked() (*recSlab, bool) {
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) % len(q.buf)
		if q.buf[idx].ctl != ctlData {
			continue
		}
		slab := q.buf[idx].slab
		// Shift the (rare, control-only) prefix forward one slot.
		for j := i; j > 0; j-- {
			q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j-1)%len(q.buf)]
		}
		q.buf[q.head] = batch{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		return slab, true
	}
	return nil, false
}

// pop blocks until a batch is available and returns it.
func (q *queue) pop() batch {
	q.mu.Lock()
	for q.n == 0 {
		q.notEmpty.Wait()
	}
	b := q.buf[q.head]
	q.buf[q.head] = batch{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
	q.mu.Unlock()
	return b
}

// depth returns the current number of queued batches.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
