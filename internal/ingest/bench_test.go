package ingest

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"streampca/internal/traffic"
)

// benchDatagrams encodes a ring of full (30-record) datagrams whose
// addresses all route through the Abilene topology, every record carrying
// the given export timestamp. Cycling the ring keeps the benchmark's
// working set out of cache-resident triviality without paying encode cost
// in the timed loop.
func benchDatagrams(b *testing.B, n int, unixSecs uint32) [][]byte {
	b.Helper()
	numRouters := len(traffic.AbileneRouters)
	out := make([][]byte, 0, n)
	var seq uint32
	for k := 0; k < n; k++ {
		recs := make([]Record, MaxRecords)
		for i := range recs {
			o := (k*MaxRecords + i) % numRouters
			d := (k + i) % numRouters
			src, err := traffic.RouterAddr(o, uint16(k*31+i))
			if err != nil {
				b.Fatal(err)
			}
			dst, err := traffic.RouterAddr(d, uint16(k*17+i))
			if err != nil {
				b.Fatal(err)
			}
			recs[i] = Record{
				SrcAddr: src,
				DstAddr: dst,
				Packets: 1,
				Octets:  1500,
				Proto:   6,
			}
		}
		buf, err := AppendDatagram(nil, Header{
			UnixSecs:     unixSecs,
			FlowSequence: seq,
		}, recs)
		if err != nil {
			b.Fatal(err)
		}
		seq += MaxRecords
		out = append(out, buf)
	}
	return out
}

// BenchmarkIngestDecode measures the raw NetFlow v5 decode path on full
// 30-record datagrams, reusing one Datagram so the steady state is
// allocation-free.
func BenchmarkIngestDecode(b *testing.B) {
	grams := benchDatagrams(b, 64, 1_200_000_000)
	var d Datagram
	b.SetBytes(int64(len(grams[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeDatagram(grams[i%len(grams)], &d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*MaxRecords/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkIngestPipeline measures end-to-end datagram throughput —
// decode, sequence tracking, shard dispatch and OD aggregation — through a
// running pipeline at 1, 2 and 4 shards. One iteration ingests one full
// datagram (30 records); the reported records/s is the aggregate rate the
// producer sustained, with PolicyBlock coupling it to the shards'
// consumption. All datagrams land in a single epoch so the timed loop
// measures the per-record hot path; sealing is exercised once at Close,
// outside the timer (rollover is a once-per-interval event, not a
// throughput factor).
// BenchmarkIngestCollectors measures front-end scalability: N concurrent
// producers (standing in for N SO_REUSEPORT collector read loops, minus the
// kernel socket — loopback UDP would add loss and jitter, not signal) feed
// HandleDatagram simultaneously. Decode runs outside the pipeline lock, so
// added collectors should raise aggregate throughput until the lock or the
// shards saturate; the reported records/s across the collectors cells is the
// ingest-scaling curve scripts/bench.sh records.
func BenchmarkIngestCollectors(b *testing.B) {
	agg, err := traffic.NewAbileneAggregator()
	if err != nil {
		b.Fatal(err)
	}
	grams := benchDatagrams(b, 64, 1_200_000_000)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("collectors=%d", n), func(b *testing.B) {
			p, err := NewPipeline(Config{
				Aggregator: agg,
				Interval:   300 * time.Second,
				Shards:     4,
				QueueLen:   256,
				Sink:       func(Interval) error { return nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			var fed atomic.Int64
			b.SetBytes(int64(len(grams[0])))
			b.ReportAllocs()
			b.SetParallelism(n)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if err := p.HandleDatagram(grams[i%len(grams)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
				fed.Add(int64(i))
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*MaxRecords/b.Elapsed().Seconds(), "records/s")
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			if got := p.Metrics().Records.Value(); got != fed.Load()*MaxRecords {
				b.Fatalf("pipeline folded %d records, fed %d", got, fed.Load()*MaxRecords)
			}
			if un := p.Metrics().Unroutable.Value(); un != 0 {
				b.Fatalf("%d unroutable records", un)
			}
		})
	}
}

func BenchmarkIngestPipeline(b *testing.B) {
	agg, err := traffic.NewAbileneAggregator()
	if err != nil {
		b.Fatal(err)
	}
	grams := benchDatagrams(b, 64, 1_200_000_000)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := NewPipeline(Config{
				Aggregator: agg,
				Interval:   300 * time.Second,
				Shards:     shards,
				Sink:       func(Interval) error { return nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(grams[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.HandleDatagram(grams[i%len(grams)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			rate := float64(b.N) * MaxRecords / b.Elapsed().Seconds()
			b.ReportMetric(rate, "records/s")
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			if got := p.Metrics().Records.Value(); got != int64(b.N)*MaxRecords {
				b.Fatalf("pipeline folded %d records, fed %d", got, int64(b.N)*MaxRecords)
			}
			if un := p.Metrics().Unroutable.Value(); un != 0 {
				b.Fatalf("%d unroutable records: the benchmark must exercise the full aggregation path", un)
			}
		})
	}
}
