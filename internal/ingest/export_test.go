package ingest

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"streampca/internal/traffic"
)

func testTrace(t testing.TB) *traffic.Trace {
	t.Helper()
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		Routers:      []string{"A", "B", "C"},
		NumIntervals: 4,
		Seed:         7,
		TotalVolume:  9e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// replayTrace pushes every exported datagram through a fresh record-clock
// pipeline and returns the sealed intervals.
func replayTrace(t testing.TB, tr *traffic.Trace, opts ExportOptions) []Interval {
	t.Helper()
	p, rec := newTestPipeline(t, func(c *Config) {
		c.Interval = time.Duration(300) * time.Second
	})
	if err := ExportTrace(tr, opts, func(d []byte) error {
		return p.HandleDatagram(d)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return rec.snapshot()
}

func assertReplayMatches(t *testing.T, tr *traffic.Trace, got []Interval) {
	t.Helper()
	if len(got) != tr.NumIntervals() {
		t.Fatalf("replayed %d intervals, want %d", len(got), tr.NumIntervals())
	}
	for i, iv := range got {
		if iv.Seq != int64(i+1) {
			t.Fatalf("interval %d: Seq = %d, want %d", i, iv.Seq, i+1)
		}
		row := tr.Volumes.RowView(i)
		for j, vol := range row {
			if want := math.Round(vol); iv.Volumes[j] != want {
				t.Fatalf("interval %d flow %d: got %v, want %v", i, j, iv.Volumes[j], want)
			}
		}
	}
}

func TestExportTraceReplayReconstructsVolumes(t *testing.T) {
	tr := testTrace(t)
	assertReplayMatches(t, tr, replayTrace(t, tr, ExportOptions{}))
}

func TestExportTraceSplitsFlowsExactly(t *testing.T) {
	tr := testTrace(t)
	// Splitting each flow across several diversified records must not
	// change any reconstructed volume.
	assertReplayMatches(t, tr, replayTrace(t, tr, ExportOptions{
		RecordsPerFlow: 7,
		MaxRecords:     5,
		Seed:           99,
	}))
}

func TestExportTraceFlowFilter(t *testing.T) {
	tr := testTrace(t)
	got := replayTrace(t, tr, ExportOptions{
		FlowFilter: func(flowID int) bool { return flowID%2 == 0 },
	})
	if len(got) != tr.NumIntervals() {
		t.Fatalf("replayed %d intervals, want %d", len(got), tr.NumIntervals())
	}
	for i, iv := range got {
		row := tr.Volumes.RowView(i)
		for j, vol := range row {
			want := math.Round(vol)
			if j%2 != 0 {
				want = 0
			}
			if iv.Volumes[j] != want {
				t.Fatalf("interval %d flow %d: got %v, want %v", i, j, iv.Volumes[j], want)
			}
		}
	}
}

func TestExportTraceSequenceIsCumulative(t *testing.T) {
	tr := testTrace(t)
	var s SeqTracker
	var d Datagram
	n := 0
	err := ExportTrace(tr, ExportOptions{}, func(buf []byte) error {
		if err := DecodeDatagram(buf, &d); err != nil {
			return err
		}
		if gap := s.Observe(&d.Header); gap != 0 {
			t.Fatalf("datagram %d: sequence gap %d", n, gap)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no datagrams exported")
	}
}

func TestExportTraceRejectsBadConfig(t *testing.T) {
	tr := testTrace(t)
	noEmit := func([]byte) error { return nil }
	bare := &traffic.Trace{Volumes: tr.Volumes}
	if err := ExportTrace(bare, ExportOptions{}, noEmit); !errors.Is(err, ErrConfig) {
		t.Fatalf("no topology: %v", err)
	}
	for name, opts := range map[string]ExportOptions{
		"negative base":     {BaseTime: -1},
		"huge base":         {BaseTime: math.MaxUint32 + 1},
		"negative interval": {IntervalSec: -1},
		"negative rpf":      {RecordsPerFlow: -1},
		"oversized batch":   {MaxRecords: MaxRecords + 1},
	} {
		if err := ExportTrace(tr, opts, noEmit); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestReadDatagramsRoundTrip(t *testing.T) {
	tr := testTrace(t)
	var file bytes.Buffer
	var wrote int
	if err := ExportTrace(tr, ExportOptions{}, func(d []byte) error {
		wrote++
		_, err := file.Write(d)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	p, rec := newTestPipeline(t, func(c *Config) {
		c.Interval = time.Duration(300) * time.Second
	})
	var read int
	if err := ReadDatagrams(&file, func(d []byte) error {
		read++
		return p.HandleDatagram(d)
	}); err != nil {
		t.Fatal(err)
	}
	if read != wrote {
		t.Fatalf("read %d datagrams, wrote %d", read, wrote)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplayMatches(t, tr, rec.snapshot())
}

func TestReadDatagramsRejectsMalformed(t *testing.T) {
	valid, err := AppendDatagram(nil, Header{UnixSecs: 1}, []Record{testRecord(0)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage header":   []byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		"truncated header": valid[:HeaderLen-1],
		"truncated body":   valid[:len(valid)-1],
		"trailing partial": append(append([]byte(nil), valid...), valid[:10]...),
	}
	for name, stream := range cases {
		err := ReadDatagrams(bytes.NewReader(stream), func([]byte) error { return nil })
		if !errors.Is(err, ErrDecode) {
			t.Errorf("%s: got %v, want ErrDecode", name, err)
		}
	}
	// Callback errors propagate unchanged.
	sentinel := errors.New("sentinel")
	if err := ReadDatagrams(bytes.NewReader(valid), func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: %v", err)
	}
}
