package ingest

import (
	"testing"
)

// FuzzDecodeDatagram asserts the decoder's contract on arbitrary input:
// malformed datagrams (bad versions, count/length mismatches, truncated
// records, trailing bytes) must return an error — never panic — and
// accepted datagrams must survive a semantic re-encode/re-decode round
// trip.
func FuzzDecodeDatagram(f *testing.F) {
	valid, err := AppendDatagram(nil, Header{
		SysUptime:    1000,
		UnixSecs:     1_200_000_000,
		FlowSequence: 7,
	}, []Record{testRecord(0), testRecord(1)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:HeaderLen])
	f.Add(valid[:HeaderLen+RecordLen-1])
	f.Add(append(append([]byte(nil), valid...), 0xff))
	corrupt := append([]byte(nil), valid...)
	corrupt[1] = 9 // bad version
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, buf []byte) {
		var d Datagram
		if err := DecodeDatagram(buf, &d); err != nil {
			return
		}
		// Semantic round trip: whatever decodes must re-encode to a
		// same-length datagram that decodes to identical contents. (Byte
		// equality is too strong — the v5 pad bytes are not represented in
		// Record and re-encode as zero.)
		out, err := AppendDatagram(nil, d.Header, d.Records)
		if err != nil {
			t.Fatalf("accepted datagram failed to re-encode: %v", err)
		}
		if len(out) != len(buf) {
			t.Fatalf("re-encode changed length: %d -> %d", len(buf), len(out))
		}
		var d2 Datagram
		if err := DecodeDatagram(out, &d2); err != nil {
			t.Fatalf("re-encoded datagram rejected: %v", err)
		}
		if d2.Header != d.Header {
			t.Fatalf("header round trip: %+v vs %+v", d.Header, d2.Header)
		}
		for i := range d.Records {
			if d2.Records[i] != d.Records[i] {
				t.Fatalf("record %d round trip: %+v vs %+v", i, d.Records[i], d2.Records[i])
			}
		}
	})
}
