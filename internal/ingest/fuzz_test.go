package ingest

import (
	"testing"
)

// FuzzDecodeDatagram asserts the decoder's contract on arbitrary input:
// malformed datagrams (bad versions, count/length mismatches, truncated
// records, trailing bytes) must return an error — never panic — and
// accepted datagrams must survive a semantic re-encode/re-decode round
// trip.
func FuzzDecodeDatagram(f *testing.F) {
	valid, err := AppendDatagram(nil, Header{
		SysUptime:    1000,
		UnixSecs:     1_200_000_000,
		FlowSequence: 7,
	}, []Record{testRecord(0), testRecord(1)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:HeaderLen])
	f.Add(valid[:HeaderLen+RecordLen-1])
	f.Add(append(append([]byte(nil), valid...), 0xff))
	corrupt := append([]byte(nil), valid...)
	corrupt[1] = 9 // bad version
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, buf []byte) {
		// The pipeline's batch decoder must agree with the reference decoder
		// on accept/reject and, for accepted datagrams, on every field the
		// shards consume (header, endpoint addresses, octet counts).
		var slab recSlab
		var sh Header
		serr := decodeRecords(buf, &sh, &slab)
		var d Datagram
		if err := DecodeDatagram(buf, &d); err != nil {
			if serr == nil {
				t.Fatalf("decodeRecords accepted what DecodeDatagram rejected: %v", err)
			}
			return
		}
		if serr != nil {
			t.Fatalf("decodeRecords rejected what DecodeDatagram accepted: %v", serr)
		}
		if sh != d.Header {
			t.Fatalf("decodeRecords header %+v vs %+v", sh, d.Header)
		}
		if slab.n != len(d.Records) {
			t.Fatalf("decodeRecords %d records, DecodeDatagram %d", slab.n, len(d.Records))
		}
		for i := range d.Records {
			r, want := &slab.recs[i], &d.Records[i]
			if r.src != want.SrcAddr.As4() || r.dst != want.DstAddr.As4() || r.octets != want.Octets {
				t.Fatalf("record %d: slab %v/%v/%d vs %v/%v/%d", i,
					r.src, r.dst, r.octets, want.SrcAddr.As4(), want.DstAddr.As4(), want.Octets)
			}
		}
		// Semantic round trip: whatever decodes must re-encode to a
		// same-length datagram that decodes to identical contents. (Byte
		// equality is too strong — the v5 pad bytes are not represented in
		// Record and re-encode as zero.)
		out, err := AppendDatagram(nil, d.Header, d.Records)
		if err != nil {
			t.Fatalf("accepted datagram failed to re-encode: %v", err)
		}
		if len(out) != len(buf) {
			t.Fatalf("re-encode changed length: %d -> %d", len(buf), len(out))
		}
		var d2 Datagram
		if err := DecodeDatagram(out, &d2); err != nil {
			t.Fatalf("re-encoded datagram rejected: %v", err)
		}
		if d2.Header != d.Header {
			t.Fatalf("header round trip: %+v vs %+v", d.Header, d2.Header)
		}
		for i := range d.Records {
			if d2.Records[i] != d.Records[i] {
				t.Fatalf("record %d round trip: %+v vs %+v", i, d.Records[i], d2.Records[i])
			}
		}
	})
}
