package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count    int
	Mean     float64
	Variance float64 // unbiased sample variance (divides by n−1)
	StdDev   float64
	Min      float64
	Max      float64
}

// Summarize computes descriptive statistics of data in a single pass using
// Welford's algorithm for numerical stability.
func Summarize(data []float64) (Summary, error) {
	if len(data) == 0 {
		return Summary{}, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	s := Summary{Count: len(data), Min: data[0], Max: data[0]}
	var m2 float64
	for i, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Summary{}, fmt.Errorf("%w: non-finite sample value at %d", ErrBadInput, i)
		}
		delta := x - s.Mean
		s.Mean += delta / float64(i+1)
		m2 += delta * (x - s.Mean)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.Count > 1 {
		s.Variance = m2 / float64(s.Count-1)
	}
	s.StdDev = math.Sqrt(s.Variance)
	return s, nil
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(data []float64, q float64) (float64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: quantile %v", ErrBadInput, q)
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the sample median.
func Median(data []float64) (float64, error) {
	v, err := Quantile(data, 0.5)
	if err != nil {
		return 0, fmt.Errorf("median: %w", err)
	}
	return v, nil
}
