package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerate reports a residual spectrum on which the Jackson–Mudholkar
// expansion breaks down (h0 ≤ 0 or a non-finite Q): no trustworthy threshold
// exists. Callers must treat this as "threshold unavailable" — compare
// against nothing, never against NaN (NaN comparisons are always false, which
// silently disables alarming).
var ErrDegenerate = errors.New("stats: degenerate residual spectrum, Q threshold unavailable")

// QStatistic computes the Jackson–Mudholkar control limit Q_α for the
// squared prediction error of a PCA residual (paper eqs. 7–9 and 22–23).
//
// Inputs:
//   - singularValues: the full set of singular values η_1 ≥ … ≥ η_m of the
//     (centered) measurement matrix, or λ̂ of the sketch matrix;
//   - windowLen: the window length n used to convert singular values to
//     residual variances σ_j² = η_j²/(n−1);
//   - normalRank: r, the number of leading principal components spanning the
//     normal subspace (the residual uses components r+1 … m);
//   - alpha: the false-alarm rate, e.g. 0.01.
//
// The returned threshold is on the *distance* scale: a measurement y is
// flagged when ‖(I−PPᵀ)y‖ > threshold, matching d(y) > Q_ε in eq. (6).
func QStatistic(singularValues []float64, windowLen, normalRank int, alpha float64) (float64, error) {
	m := len(singularValues)
	if m == 0 {
		return 0, fmt.Errorf("%w: no singular values", ErrBadInput)
	}
	if normalRank < 0 || normalRank > m {
		return 0, fmt.Errorf("%w: normal rank %d with %d components", ErrBadInput, normalRank, m)
	}
	if windowLen < 2 {
		return 0, fmt.Errorf("%w: window length %d", ErrBadInput, windowLen)
	}
	if normalRank == m {
		// Empty residual subspace: everything projects into the normal
		// space, so the only consistent threshold is zero.
		return 0, nil
	}

	ca, err := UpperQuantile(alpha)
	if err != nil {
		return 0, err
	}

	// φ_k = Σ_{j>r} σ_j^{2k} with σ_j² = η_j²/(n−1)  (eqs. 8/23).
	denom := float64(windowLen - 1)
	var phi1, phi2, phi3 float64
	for _, eta := range singularValues[normalRank:] {
		s2 := eta * eta / denom
		phi1 += s2
		phi2 += s2 * s2
		phi3 += s2 * s2 * s2
	}
	if phi1 <= 0 {
		// Residual components carry no energy — the normal subspace
		// explains everything, so any nonzero residual is anomalous.
		return 0, nil
	}
	if phi2 <= 0 {
		// Degenerate: a single tiny residual direction. Fall back to a
		// Gaussian tail on the lone variance.
		return math.Sqrt(math.Max(0, phi1*(1+ca))), nil
	}

	h0 := 1 - 2*phi1*phi3/(3*phi2*phi2)
	if h0 <= 0 || math.IsNaN(h0) {
		// Jackson & Mudholkar note h0 ≤ 0 can occur for pathological
		// spectra. The exponent 1/h0 then blows Pow(inner, 1/h0) up to
		// +Inf or collapses it to 0 — there is no meaningful threshold on
		// such a spectrum, so report it instead of clamping (the old 1e-3
		// clamp produced astronomically large thresholds that never alarm).
		return 0, fmt.Errorf("%w: h0 = %v (phi1=%v phi2=%v phi3=%v)", ErrDegenerate, h0, phi1, phi2, phi3)
	}

	inner := ca*math.Sqrt(2*phi2*h0*h0)/phi1 + 1 + phi2*h0*(h0-1)/(phi1*phi1)
	if inner <= 0 {
		// Extremely heavy left tail; clamp at zero so everything with a
		// positive residual trips the detector rather than returning NaN.
		return 0, nil
	}
	q2 := phi1 * math.Pow(inner, 1/h0)
	if math.IsNaN(q2) || math.IsInf(q2, 0) {
		return 0, fmt.Errorf("%w: non-finite Q statistic", ErrDegenerate)
	}
	return math.Sqrt(q2), nil
}

// QStatisticCapped is QStatistic with residual-rank capping: when the full
// residual spectrum is degenerate for the Jackson–Mudholkar expansion
// (h0 ≤ 0 or a non-finite Q), it retries on sv[r:r+k] for k = full−1 … 1 —
// keeping only the k largest residual variances and treating the trailing
// tail, whose near-zero eigenvalues are what drive the φ ratios pathological,
// as numerically zero. Dropping trailing variance can only shrink φ1 and the
// threshold with it, so the capped limit alarms at least as readily as an
// exact one would — conservative in the direction that matters for
// detection. A single positive variance gives h0 = 1/3 > 0, so capping
// terminates with a usable limit whenever the leading residual component
// carries any energy; ErrDegenerate escapes only when no cap admits one.
//
// The second return is the number of trailing residual components dropped
// (0 means the exact uncapped threshold was usable).
func QStatisticCapped(singularValues []float64, windowLen, normalRank int, alpha float64) (float64, int, error) {
	q, err := QStatistic(singularValues, windowLen, normalRank, alpha)
	if err == nil || !errors.Is(err, ErrDegenerate) {
		return q, 0, err
	}
	full := len(singularValues) - normalRank
	lastErr := err
	for k := full - 1; k >= 1; k-- {
		q, err := QStatistic(singularValues[normalRank:normalRank+k], windowLen, 0, alpha)
		if err == nil {
			return q, full - k, nil
		}
		if !errors.Is(err, ErrDegenerate) {
			return 0, 0, err
		}
		lastErr = err
	}
	return 0, 0, lastErr
}

// ResidualVariances converts singular values to the per-component variances
// σ_j² = η_j²/(n−1) of eq. (9), for all components.
func ResidualVariances(singularValues []float64, windowLen int) ([]float64, error) {
	if windowLen < 2 {
		return nil, fmt.Errorf("%w: window length %d", ErrBadInput, windowLen)
	}
	out := make([]float64, len(singularValues))
	denom := float64(windowLen - 1)
	for i, eta := range singularValues {
		out[i] = eta * eta / denom
	}
	return out, nil
}
