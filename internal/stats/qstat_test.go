package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// decayingSpectrum builds a plausible singular-value profile η_j ~ c·ρ^j.
func decayingSpectrum(m int, top, decay float64) []float64 {
	out := make([]float64, m)
	v := top
	for i := range out {
		out[i] = v
		v *= decay
	}
	return out
}

func TestQStatisticBasic(t *testing.T) {
	sv := decayingSpectrum(10, 100, 0.6)
	q, err := QStatistic(sv, 500, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("threshold = %v", q)
	}
}

func TestQStatisticErrors(t *testing.T) {
	sv := decayingSpectrum(5, 10, 0.5)
	if _, err := QStatistic(nil, 100, 1, 0.01); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := QStatistic(sv, 100, -1, 0.01); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative rank: %v", err)
	}
	if _, err := QStatistic(sv, 100, 6, 0.01); !errors.Is(err, ErrBadInput) {
		t.Fatalf("rank > m: %v", err)
	}
	if _, err := QStatistic(sv, 1, 1, 0.01); !errors.Is(err, ErrBadInput) {
		t.Fatalf("window 1: %v", err)
	}
	if _, err := QStatistic(sv, 100, 1, 2); !errors.Is(err, ErrProbRange) {
		t.Fatalf("alpha 2: %v", err)
	}
}

// TestQStatisticDegenerate pins the typed error on spectra where the
// Jackson–Mudholkar expansion breaks down: one dominant residual variance
// plus many small ones pushes φ1φ3/φ2² past 3/2, making h0 negative. The old
// behavior clamped h0 to 1e-3, which raised the threshold astronomically
// (Pow(inner, 1000)) and silently disabled alarming.
func TestQStatisticDegenerate(t *testing.T) {
	sv := make([]float64, 101)
	sv[0] = 1
	for i := 1; i < len(sv); i++ {
		// 100 tail variances of 0.01 sum to the dominant variance 1:
		// φ1φ3/φ2² ≈ 2·1/1.01² ≈ 1.96 > 3/2 ⇒ h0 ≈ −0.31.
		sv[i] = 0.1
	}
	_, err := QStatistic(sv, 100, 0, 0.01)
	if !errors.Is(err, ErrDegenerate) {
		t.Fatalf("want ErrDegenerate, got %v", err)
	}
	// Shifting the heavy component into the normal subspace leaves an
	// equal-variance residual (h0 = 1/3): a valid threshold again.
	q, err := QStatistic(sv, 100, 1, 0.01)
	if err != nil {
		t.Fatalf("rank 1: %v", err)
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("rank 1 threshold = %v", q)
	}
}

// TestQStatisticCapped pins the residual-rank capping bugfix: the h0 ≤ 0
// spectrum above must yield a usable (capped) threshold instead of leaving
// the detector threshold-less, well-conditioned spectra must pass through
// uncapped and bit-identical, and only a spectrum no cap can salvage keeps
// the typed error.
func TestQStatisticCapped(t *testing.T) {
	// Well-conditioned: identical to QStatistic, zero components dropped.
	sv := decayingSpectrum(10, 100, 0.6)
	exact, err := QStatistic(sv, 500, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q, capped, err := QStatisticCapped(sv, 500, 3, 0.01)
	if err != nil || capped != 0 || q != exact {
		t.Fatalf("well-conditioned: q=%v capped=%d err=%v, want exactly %v", q, capped, err, exact)
	}

	// The degenerate spectrum of TestQStatisticDegenerate: capping must
	// recover a finite positive threshold by dropping trailing components,
	// and the value must match QStatistic over the kept slice.
	sv = make([]float64, 101)
	sv[0] = 1
	for i := 1; i < len(sv); i++ {
		sv[i] = 0.1
	}
	q, capped, err = QStatisticCapped(sv, 100, 0, 0.01)
	if err != nil {
		t.Fatalf("degenerate spectrum not salvaged: %v", err)
	}
	if capped <= 0 {
		t.Fatalf("capped = %d, want > 0 on an h0-degenerate residual", capped)
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("capped threshold = %v", q)
	}
	kept := len(sv) - capped
	want, err := QStatistic(sv[:kept], 100, 0, 0.01)
	if err != nil || q != want {
		t.Fatalf("capped q = %v, want QStatistic over %d kept components = %v (%v)", q, kept, want, err)
	}
	// Dropping trailing variance only shrinks φ1: the capped limit must sit
	// at or below what the same expansion would give with more tail energy,
	// i.e. it alarms at least as readily — never less.
	if more, err := QStatistic(sv[:kept+1], 100, 0, 0.01); err == nil && q > more {
		t.Fatalf("capped threshold %v above the longer slice's %v", q, more)
	}

	// ErrBadInput passes through unsalvaged.
	if _, _, err := QStatisticCapped(nil, 100, 1, 0.01); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty: %v", err)
	}
	// A spectrum no cap salvages (non-finite leading variance poisons every
	// slice) keeps the typed degenerate error.
	bad := []float64{math.Inf(1), 1, 0.5}
	if _, _, err := QStatisticCapped(bad, 100, 0, 0.01); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("unsalvageable spectrum: %v", err)
	}
}

// A single-component residual has h0 = 1 − 2φ1φ3/(3φ2²) = 1 − 2/3 = 1/3 > 0,
// so capping always terminates with a usable limit when the leading residual
// variance is positive and finite — for any spectrum shape.
func TestQStatisticCappedAlwaysTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(40)
		r := rng.Intn(m)
		sv := make([]float64, m)
		for i := range sv {
			// Wildly skewed magnitudes to provoke h0 ≤ 0 shapes.
			sv[i] = math.Pow(10, 4*rng.Float64()-2) * rng.Float64()
		}
		sortDescending(sv)
		q, capped, err := QStatisticCapped(sv, 64, r, 0.01)
		if err != nil {
			t.Fatalf("trial %d (m=%d r=%d sv=%v): %v", trial, m, r, sv, err)
		}
		if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
			t.Fatalf("trial %d: q = %v", trial, q)
		}
		if capped < 0 || capped >= m-r && capped != 0 {
			t.Fatalf("trial %d: capped = %d of %d residual components", trial, capped, m-r)
		}
	}
}

func sortDescending(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestQStatisticFullRankResidualEmpty(t *testing.T) {
	sv := decayingSpectrum(4, 10, 0.5)
	q, err := QStatistic(sv, 100, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("empty residual threshold = %v, want 0", q)
	}
}

func TestQStatisticZeroResidualEnergy(t *testing.T) {
	sv := []float64{10, 5, 0, 0}
	q, err := QStatistic(sv, 100, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("zero-energy residual threshold = %v, want 0", q)
	}
}

// The threshold must shrink as alpha grows (a 10% false-alarm budget accepts
// a lower bar than a 0.1% budget).
func TestQStatisticMonotoneInAlpha(t *testing.T) {
	sv := decayingSpectrum(12, 50, 0.7)
	prev := math.Inf(1)
	for _, alpha := range []float64{0.001, 0.01, 0.05, 0.1, 0.2} {
		q, err := QStatistic(sv, 1000, 4, alpha)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if q > prev {
			t.Fatalf("threshold not monotone: Q(%v) = %v > previous %v", alpha, q, prev)
		}
		prev = q
	}
}

// The threshold should grow with the residual energy.
func TestQStatisticGrowsWithResidualEnergy(t *testing.T) {
	small := []float64{100, 50, 1, 0.5, 0.25}
	large := []float64{100, 50, 10, 5, 2.5}
	qs, err := QStatistic(small, 200, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ql, err := QStatistic(large, 200, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ql <= qs {
		t.Fatalf("Q(large residual) = %v should exceed Q(small residual) = %v", ql, qs)
	}
}

// Empirical false-alarm calibration: for Gaussian residual data the SPE of
// held-out samples should exceed Q_alpha at roughly rate alpha.
func TestQStatisticCalibrationOnGaussianData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m, r := 4000, 8, 0
	// All components are residual (r = 0), unit variance everywhere.
	sv := make([]float64, m)
	for j := range sv {
		sv[j] = math.Sqrt(float64(n - 1)) // σ_j² = 1
	}
	q, err := QStatistic(sv, n, r, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var exceed int
	trials := 20000
	for i := 0; i < trials; i++ {
		var d2 float64
		for j := 0; j < m; j++ {
			x := rng.NormFloat64()
			d2 += x * x
		}
		if math.Sqrt(d2) > q {
			exceed++
		}
	}
	rate := float64(exceed) / float64(trials)
	if rate < 0.02 || rate > 0.10 {
		t.Fatalf("empirical exceedance %v, want ≈0.05", rate)
	}
}

func TestResidualVariances(t *testing.T) {
	out, err := ResidualVariances([]float64{3, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 1e-12 || math.Abs(out[1]-4.0/9) > 1e-12 {
		t.Fatalf("variances = %v", out)
	}
	if _, err := ResidualVariances([]float64{1}, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("window 1: %v", err)
	}
}

// Property: Q is finite and non-negative for arbitrary decaying spectra.
func TestQuickQStatisticFinite(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(20)
		sv := make([]float64, m)
		v := 1 + r.Float64()*1000
		for i := range sv {
			sv[i] = v
			v *= 0.3 + 0.6*r.Float64()
		}
		rank := r.Intn(m)
		alpha := 0.001 + 0.3*r.Float64()
		q, err := QStatistic(sv, 2+r.Intn(5000), rank, alpha)
		if err != nil {
			return false
		}
		return q >= 0 && !math.IsNaN(q) && !math.IsInf(q, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
