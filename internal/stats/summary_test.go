package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample variance = 32/7.
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Summarize([]float64{1, math.NaN()}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN: %v", err)
	}
	if _, err := Summarize([]float64{math.Inf(1)}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("Inf: %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, tt := range tests {
		got, err := Quantile(data, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be reordered.
	shuffled := []float64{5, 1, 4, 2, 3}
	if _, err := Quantile(shuffled, 0.5); err != nil {
		t.Fatal(err)
	}
	if shuffled[0] != 5 {
		t.Fatal("Quantile must not mutate input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("q<0: %v", err)
	}
	if _, err := Quantile([]float64{1}, math.NaN()); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN q: %v", err)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("median = %v", got)
	}
	got, err = Median([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

// Property: Welford summary agrees with the naive two-pass computation.
func TestQuickSummarizeMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		data := make([]float64, n)
		for i := range data {
			data[i] = r.NormFloat64() * 100
		}
		s, err := Summarize(data)
		if err != nil {
			return false
		}
		var mean float64
		for _, x := range data {
			mean += x
		}
		mean /= float64(n)
		var varSum float64
		for _, x := range data {
			d := x - mean
			varSum += d * d
		}
		wantVar := 0.0
		if n > 1 {
			wantVar = varSum / float64(n-1)
		}
		tol := 1e-8 * math.Max(1, wantVar)
		return math.Abs(s.Mean-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Variance-wantVar) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotoneBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		data := make([]float64, n)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		q1, q2 := r.Float64(), r.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, err1 := Quantile(data, q1)
		v2, err2 := Quantile(data, q2)
		if err1 != nil || err2 != nil {
			return false
		}
		s, _ := Summarize(data)
		return v1 <= v2+1e-12 && v1 >= s.Min-1e-12 && v2 <= s.Max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
