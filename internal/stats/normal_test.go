package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{2.326347874040841, 0.99},
		{-8, 6.220960574271786e-16},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); math.Abs(got-0.3989422804014327) > 1e-15 {
		t.Fatalf("PDF(0) = %v", got)
	}
	if NormalPDF(3) >= NormalPDF(0) {
		t.Fatal("PDF must decrease away from 0")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.99, 2.326347874040841},
		{0.025, -1.959963984540054},
		{1e-10, -6.361340902404056},
	}
	for _, tt := range tests {
		got, err := NormalQuantile(tt.p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestNormalQuantileErrors(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); !errors.Is(err, ErrProbRange) {
			t.Fatalf("Quantile(%v) must fail, got %v", p, err)
		}
	}
}

func TestUpperQuantile(t *testing.T) {
	got, err := UpperQuantile(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.326347874040841) > 1e-9 {
		t.Fatalf("UpperQuantile(0.01) = %v", got)
	}
	if _, err := UpperQuantile(1); !errors.Is(err, ErrProbRange) {
		t.Fatalf("alpha=1 must fail, got %v", err)
	}
}

// Property: quantile inverts the CDF across the full range.
func TestQuickQuantileInvertsCDF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := math.Min(math.Max(r.Float64(), 1e-12), 1-1e-12)
		x, err := NormalQuantile(p)
		if err != nil {
			return false
		}
		return math.Abs(NormalCDF(x)-p) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quantile function is monotone increasing.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1 := 0.001 + 0.998*r.Float64()
		p2 := 0.001 + 0.998*r.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if p2-p1 < 1e-9 {
			return true
		}
		q1, err1 := NormalQuantile(p1)
		q2, err2 := NormalQuantile(p2)
		return err1 == nil && err2 == nil && q1 <= q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
