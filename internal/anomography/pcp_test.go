package anomography

import (
	"math"
	"math/rand"
	"testing"

	"streampca/internal/mat"
)

// synthLowRankPlusSparse builds D = L0 + S0 with L0 of the given rank and
// nnz large sparse spikes, returning D, L0 and the spike coordinates.
func synthLowRankPlusSparse(n, m, rank, nnz int, seed int64) (*mat.Matrix, *mat.Matrix, map[[2]int]float64) {
	rng := rand.New(rand.NewSource(seed))
	u := mat.NewMatrix(n, rank)
	v := mat.NewMatrix(m, rank)
	for i := 0; i < n; i++ {
		for j := 0; j < rank; j++ {
			u.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < rank; j++ {
			v.Set(i, j, rng.NormFloat64())
		}
	}
	l0, _ := u.Mul(v.T())
	d := l0.Clone()
	spikes := make(map[[2]int]float64)
	for len(spikes) < nnz {
		i, j := rng.Intn(n), rng.Intn(m)
		if _, dup := spikes[[2]int{i, j}]; dup {
			continue
		}
		amp := 50 + 10*rng.Float64()
		if rng.Intn(2) == 0 {
			amp = -amp
		}
		spikes[[2]int{i, j}] = amp
		d.Set(i, j, d.At(i, j)+amp)
	}
	return d, l0, spikes
}

func TestPCPRecoversLowRankPlusSparse(t *testing.T) {
	const n, m, rank, nnz = 60, 40, 2, 20
	d, l0, spikes := synthLowRankPlusSparse(n, m, rank, nnz, 42)
	res, err := PCP(d, PCPConfig{MaxIter: 300, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pcp did not converge in %d iterations (rel residual %g)", res.Iterations, res.RelResidual)
	}
	diff, err := res.L.Sub(l0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := diff.FrobeniusNorm() / l0.FrobeniusNorm(); rel > 0.05 {
		t.Fatalf("low-rank part off by %g relative", rel)
	}
	// Every injected spike must dominate its row's sparse part.
	rows := map[int][]int{}
	for at := range spikes {
		rows[at[0]] = append(rows[at[0]], at[1])
	}
	for row, flows := range rows {
		got := RowCulprits(res.S, row, len(flows), 1.0)
		found := map[int]bool{}
		for _, f := range got {
			found[f] = true
		}
		for _, f := range flows {
			if !found[f] {
				t.Fatalf("row %d: spike at flow %d missing from culprits %v", row, f, got)
			}
		}
	}
}

func TestPCPWideMatrixTranspose(t *testing.T) {
	// Wider than tall exercises the transpose route; results must come back
	// in the original orientation.
	const n, m = 30, 50
	d, _, _ := synthLowRankPlusSparse(n, m, 2, 8, 7)
	res, err := PCP(d, PCPConfig{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.L.Rows() != n || res.L.Cols() != m || res.S.Rows() != n || res.S.Cols() != m {
		t.Fatalf("shape: L %dx%d S %dx%d, want %dx%d", res.L.Rows(), res.L.Cols(), res.S.Rows(), res.S.Cols(), n, m)
	}
	sum, err := res.L.Add(res.S)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := sum.Sub(d)
	if err != nil {
		t.Fatal(err)
	}
	if rel := diff.FrobeniusNorm() / d.FrobeniusNorm(); rel > 1e-5 {
		t.Fatalf("L+S misses D by %g relative", rel)
	}
}

func TestPCPDeterministicAcrossWorkers(t *testing.T) {
	d, _, _ := synthLowRankPlusSparse(40, 30, 2, 10, 9)
	ref, err := PCP(d, PCPConfig{MaxIter: 60, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		res, err := PCP(d, PCPConfig{MaxIter: 60, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !res.L.Equal(ref.L, 0) || !res.S.Equal(ref.S, 0) {
			t.Fatalf("workers=%d: pcp not bit-identical", w)
		}
	}
}

func TestPCPBadInput(t *testing.T) {
	if _, err := PCP(nil, PCPConfig{}); err == nil {
		t.Fatal("nil input must error")
	}
	bad := mat.NewMatrix(3, 3)
	bad.Set(1, 1, math.Inf(1))
	if _, err := PCP(bad, PCPConfig{}); err == nil {
		t.Fatal("non-finite input must error")
	}
	zero := mat.NewMatrix(4, 3)
	res, err := PCP(zero, PCPConfig{})
	if err != nil || !res.Converged {
		t.Fatalf("zero matrix: %v %+v", err, res)
	}
}
