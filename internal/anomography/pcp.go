package anomography

import (
	"fmt"
	"math"
	"sort"

	"streampca/internal/mat"
)

// PCPConfig tunes the relaxed Principal Component Pursuit decomposition.
type PCPConfig struct {
	// Lambda weights the sparse term (0 → 1/√max(n,m), the standard PCP
	// choice that recovers sparse corruptions of a low-rank matrix).
	Lambda float64
	// Tol is the convergence bound on ‖D−L−S‖_F/‖D‖_F (0 → 1e-6).
	Tol float64
	// MaxIter bounds the ALM iterations (0 → 100).
	MaxIter int
	// Workers is forwarded to the blocked-tile kernels (0 = auto).
	Workers int
}

// PCPResult is a low-rank + sparse decomposition D ≈ L + S.
type PCPResult struct {
	// L is the low-rank (normal traffic) part, S the sparse (anomaly) part;
	// both have D's shape.
	L, S *mat.Matrix
	// RankL is the rank of L at the final iteration.
	RankL int
	// Iterations is the number of ALM iterations run.
	Iterations int
	// Converged reports whether RelResidual reached Tol within MaxIter.
	Converged bool
	// RelResidual is the final ‖D−L−S‖_F/‖D‖_F.
	RelResidual float64
}

// PCP decomposes the traffic-matrix window d (rows = intervals, columns =
// flows) into low-rank + sparse via the inexact augmented Lagrange
// multiplier method for relaxed Principal Component Pursuit (Wang et al.,
// arXiv:1104.2156; the IALM scheme of Lin, Chen & Ma). Each iteration
// soft-thresholds the singular values of D − S + Y/μ and then the entries
// of D − L + Y/μ. The singular-value step runs entirely on the §14
// blocked-tile kernels — Gram via GramWorkers, eigenvectors via
// SymEigenWorkers, and the reconstruction via MulWorkers — so the
// decomposition is bit-identical at any worker count. It is an offline
// comparator for the online pursuit, not a streaming component.
func PCP(d *mat.Matrix, cfg PCPConfig) (*PCPResult, error) {
	if d == nil || d.Rows() == 0 || d.Cols() == 0 {
		return nil, fmt.Errorf("%w: empty pcp input", ErrInput)
	}
	if !d.IsFinite() {
		return nil, fmt.Errorf("%w: non-finite pcp input", ErrInput)
	}
	// The SVT step eigensolves the c×c Gram; run on the transpose when the
	// matrix is wider than tall so the small side pays for it.
	if d.Cols() > d.Rows() {
		res, err := PCP(d.T(), cfg)
		if err != nil {
			return nil, err
		}
		res.L, res.S = res.L.T(), res.S.T()
		return res, nil
	}
	n, m := d.Rows(), d.Cols()
	lambda := cfg.Lambda
	if lambda <= 0 {
		lambda = 1 / math.Sqrt(float64(n))
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}

	dNorm := d.FrobeniusNorm()
	if dNorm == 0 {
		return &PCPResult{L: mat.NewMatrix(n, m), S: mat.NewMatrix(n, m), Converged: true}, nil
	}
	spec, err := spectralNorm(d, cfg.Workers)
	if err != nil {
		return nil, err
	}
	maxAbs := d.MaxAbs()

	// Y₀ = D/J(D) with J(D) = max(‖D‖₂, ‖D‖_∞/λ) keeps the dual feasible
	// from the start (Lin et al. §4).
	j := spec
	if v := maxAbs / lambda; v > j {
		j = v
	}
	if j == 0 {
		j = 1
	}
	y := d.Clone().Scale(1 / j)
	mu := 1.25 / spec
	if spec == 0 {
		mu = 1.25
	}
	muMax := mu * 1e7
	const rho = 1.5

	l := mat.NewMatrix(n, m)
	s := mat.NewMatrix(n, m)
	work := mat.NewMatrix(n, m)
	res := &PCPResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		// L = SVT_{1/μ}(D − S + Y/μ)
		for i := 0; i < n; i++ {
			dr, sr, yr, wr := d.RowView(i), s.RowView(i), y.RowView(i), work.RowView(i)
			for jj := range wr {
				wr[jj] = dr[jj] - sr[jj] + yr[jj]/mu
			}
		}
		l, res.RankL, err = svt(work, 1/mu, cfg.Workers)
		if err != nil {
			return nil, err
		}
		// S = shrink_{λ/μ}(D − L + Y/μ)
		thr := lambda / mu
		for i := 0; i < n; i++ {
			dr, lr, yr, sr := d.RowView(i), l.RowView(i), y.RowView(i), s.RowView(i)
			for jj := range sr {
				sr[jj] = shrink(dr[jj]-lr[jj]+yr[jj]/mu, thr)
			}
		}
		// Y += μ(D − L − S); converged when the primal residual is tiny.
		var z2 float64
		for i := 0; i < n; i++ {
			dr, lr, sr, yr := d.RowView(i), l.RowView(i), s.RowView(i), y.RowView(i)
			for jj := range yr {
				z := dr[jj] - lr[jj] - sr[jj]
				z2 += z * z
				yr[jj] += mu * z
			}
		}
		res.RelResidual = math.Sqrt(z2) / dNorm
		if res.RelResidual < tol {
			res.Converged = true
			break
		}
		if mu = rho * mu; mu > muMax {
			mu = muMax
		}
	}
	res.L, res.S = l, s
	return res, nil
}

// svt soft-thresholds the singular values of a (n×m, n ≥ m) at tau via the
// Gram route: G = AᵀA = VΣ²Vᵀ, so A = (AV)Σ⁻¹·Σ·Vᵀ and
// SVT_τ(A) = A·V·diag((σ−τ)₊/σ)·Vᵀ — one Gram, one symmetric eigensolve
// and two MulWorkers, never forming U explicitly.
func svt(a *mat.Matrix, tau float64, workers int) (*mat.Matrix, int, error) {
	g := a.GramWorkers(workers)
	eig, err := mat.SymEigenWorkers(g, workers)
	if err != nil {
		return nil, 0, err
	}
	m := a.Cols()
	kept := 0
	w := make([]float64, m)
	for j := 0; j < m; j++ {
		lam := eig.Values[j]
		if lam <= 0 {
			continue
		}
		sigma := math.Sqrt(lam)
		if sigma > tau {
			w[j] = (sigma - tau) / sigma
			kept++
		}
	}
	if kept == 0 {
		return mat.NewMatrix(a.Rows(), m), 0, nil
	}
	// W = V·diag(w)·Vᵀ via a scaled copy of V, then L = A·W.
	vw := eig.Vectors.Clone()
	for i := 0; i < m; i++ {
		row := vw.RowView(i)
		for j := 0; j < m; j++ {
			row[j] *= w[j]
		}
	}
	wm, err := vw.MulWorkers(eig.Vectors.T(), workers)
	if err != nil {
		return nil, 0, err
	}
	l, err := a.MulWorkers(wm, workers)
	if err != nil {
		return nil, 0, err
	}
	return l, kept, nil
}

// shrink is the scalar soft-threshold sign(v)·max(|v|−t, 0).
func shrink(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// spectralNorm estimates ‖a‖₂ by power iteration on the Gram matrix with a
// fixed all-ones start, so the estimate is deterministic.
func spectralNorm(a *mat.Matrix, workers int) (float64, error) {
	g := a.GramWorkers(workers)
	m := g.Cols()
	v := make([]float64, m)
	for i := range v {
		v[i] = 1
	}
	mat.Normalize(v)
	var lam float64
	for it := 0; it < 60; it++ {
		vCol, err := mat.NewMatrixFromData(m, 1, v)
		if err != nil {
			return 0, err
		}
		gv, err := g.MulWorkers(vCol, workers)
		if err != nil {
			return 0, err
		}
		next := gv.Col(0)
		nl := mat.Norm(next)
		if nl == 0 {
			return 0, nil
		}
		mat.ScaleVec(next, 1/nl)
		if math.Abs(nl-lam) <= 1e-12*nl && it > 2 {
			lam = nl
			break
		}
		lam = nl
		v = next
	}
	return math.Sqrt(lam), nil
}

// RowCulprits ranks the flows of one sparse-part row by |S[row,j]|
// descending and returns those exceeding minAbs, at most k of them — the
// PCP comparator's answer to "which flows caused interval row's anomaly".
func RowCulprits(s *mat.Matrix, row, k int, minAbs float64) []int {
	if s == nil || row < 0 || row >= s.Rows() {
		return nil
	}
	type fc struct {
		flow int
		abs  float64
	}
	var out []fc
	for j, v := range s.RowView(row) {
		if a := math.Abs(v); a > minAbs {
			out = append(out, fc{j, a})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].abs > out[b].abs })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	flows := make([]int, len(out))
	for i, f := range out {
		flows[i] = f.flow
	}
	return flows
}
