package anomography

import (
	"math"
	"math/rand"
	"testing"

	"streampca/internal/mat"
)

// randomBasis returns an m×r matrix with orthonormal columns, seeded.
func randomBasis(t *testing.T, m, r int, seed int64) *mat.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := mat.NewMatrix(m, r)
	for i := 0; i < m; i++ {
		for j := 0; j < r; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	svd, err := mat.ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	basis := mat.NewMatrix(m, r)
	for i := 0; i < m; i++ {
		for j := 0; j < r; j++ {
			basis.Set(i, j, svd.U.At(i, j))
		}
	}
	return basis
}

func TestResidualOrthogonalToNormalSubspace(t *testing.T) {
	const m, r = 40, 4
	pr := randomBasis(t, m, r, 1)
	rng := rand.New(rand.NewSource(2))
	y := make([]float64, m)
	for i := range y {
		y[i] = rng.NormFloat64() * 100
	}
	res, err := Residual(pr, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < r; j++ {
		if d := math.Abs(mat.Dot(res, pr.Col(j))); d > 1e-8*mat.Norm(y) {
			t.Fatalf("residual not orthogonal to component %d: %g", j, d)
		}
	}
}

func TestPursueSingleFlow(t *testing.T) {
	const m, r, flow = 60, 5, 17
	const amount = 5000.0
	pr := randomBasis(t, m, r, 3)
	y := make([]float64, m)
	y[flow] = amount
	r0, err := Residual(pr, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pursue(pr, r0, Config{MaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Culprits) != 1 {
		t.Fatalf("want exactly the injected flow, got %d culprits: %+v", len(res.Culprits), res.Culprits)
	}
	c := res.Culprits[0]
	if c.Flow != flow {
		t.Fatalf("identified flow %d, want %d", c.Flow, flow)
	}
	if math.Abs(c.Amount-amount)/amount > 1e-9 {
		t.Fatalf("amount %g, want %g", c.Amount, amount)
	}
	if res.ExplainedFrac < 1-1e-9 {
		t.Fatalf("single-flow injection must be fully explained, got frac %g", res.ExplainedFrac)
	}
	if res.ResidualSPE > 1e-6*res.InitialSPE {
		t.Fatalf("residual SPE %g did not vanish (initial %g)", res.ResidualSPE, res.InitialSPE)
	}
}

// TestPursueBeatsRawResidualSort reproduces the misattribution the solver
// exists to fix: when a principal component correlates the spiked flow with
// others, the projection smears the spike's residual across the correlated
// flows, and a raw |residual| sort can rank an innocent flow first. The
// pursuit divides by the signature norm ‖s_j‖, undoing the smear.
func TestPursueBeatsRawResidualSort(t *testing.T) {
	const m = 12
	// One component splitting its mass between flows 0 and 1, heavier on 0:
	// a spike on flow 0 leaks residual onto flow 1 through the projection.
	pr := mat.NewMatrix(m, 1)
	pr.Set(0, 0, math.Sqrt(0.9))
	pr.Set(1, 0, -math.Sqrt(0.1))
	y := make([]float64, m)
	y[0] = 1000
	r0, err := Residual(pr, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The raw residual sort misattributes: |r[1]| ≈ 300 vs |r[0]| ≈ 100.
	if math.Abs(r0[1]) < math.Abs(r0[0]) {
		t.Fatalf("test premise broken: raw residual favors the true flow (r0=%v)", r0[:2])
	}
	res, err := Pursue(pr, r0, Config{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Culprits) == 0 || res.Culprits[0].Flow != 0 {
		t.Fatalf("pursuit must identify flow 0 first, got %+v", res.Culprits)
	}
	if math.Abs(res.Culprits[0].Amount-1000)/1000 > 1e-9 {
		t.Fatalf("amount %g, want 1000", res.Culprits[0].Amount)
	}
}

func TestPursueMultiFlow(t *testing.T) {
	const m, r = 80, 6
	pr := randomBasis(t, m, r, 7)
	truth := map[int]float64{5: 9000, 33: 6000, 61: 3000}
	y := make([]float64, m)
	for f, a := range truth {
		y[f] = a
	}
	r0, err := Residual(pr, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pursue(pr, r0, Config{MaxK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Culprits) != len(truth) {
		t.Fatalf("want %d culprits, got %+v", len(truth), res.Culprits)
	}
	for _, c := range res.Culprits {
		want, ok := truth[c.Flow]
		if !ok {
			t.Fatalf("identified innocent flow %d", c.Flow)
		}
		if math.Abs(c.Amount-want)/want > 1e-6 {
			t.Fatalf("flow %d amount %g, want %g", c.Flow, c.Amount, want)
		}
	}
	if res.ExplainedFrac < 1-1e-9 {
		t.Fatalf("explained frac %g", res.ExplainedFrac)
	}
	// Ranked by explained energy: the 9000 injection outranks the 3000 one.
	if res.Culprits[0].Confidence < res.Culprits[len(res.Culprits)-1].Confidence {
		t.Fatal("culprits not ranked by confidence")
	}
}

func TestPursueStopsAtThreshold(t *testing.T) {
	const m, r = 50, 4
	pr := randomBasis(t, m, r, 11)
	y := make([]float64, m)
	y[9] = 10000
	y[27] = 10 // far below any alarm-worthy residual
	r0, err := Residual(pr, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pursue(pr, r0, Config{MaxK: 8, MinResidual: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopThreshold {
		t.Fatalf("stop %q, want %q", res.Stop, StopThreshold)
	}
	if len(res.Culprits) != 1 || res.Culprits[0].Flow != 9 {
		t.Fatalf("want only the dominant flow, got %+v", res.Culprits)
	}
	if res.ResidualSPE > 500 {
		t.Fatalf("residual SPE %g above the stop threshold", res.ResidualSPE)
	}

	// A residual already under the threshold identifies nothing.
	quiet, err := Pursue(pr, make([]float64, m), Config{MinResidual: 500})
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Stop != StopEmpty || len(quiet.Culprits) != 0 {
		t.Fatalf("quiet residual: %+v", quiet)
	}
}

func TestPursueGainStopDiscardsNoise(t *testing.T) {
	const m, r = 50, 4
	pr := randomBasis(t, m, r, 13)
	rng := rand.New(rand.NewSource(14))
	y := make([]float64, m)
	y[21] = 50000
	for i := range y {
		y[i] += rng.NormFloat64() // tiny background noise on every flow
	}
	r0, err := Residual(pr, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pursue(pr, r0, Config{MaxK: 8, MinGainFrac: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopGain {
		t.Fatalf("stop %q, want %q", res.Stop, StopGain)
	}
	if len(res.Culprits) != 1 || res.Culprits[0].Flow != 21 {
		t.Fatalf("noise flows must be discarded, got %+v", res.Culprits)
	}
}

func TestPursueNoModelSubspace(t *testing.T) {
	// rank 0: the residual is the raw centered measurement and every flow's
	// signature is e_j, so pursuit degenerates to exact coordinate picking.
	y := []float64{0, 0, 7000, 0, -250, 0}
	res, err := Pursue(nil, y, Config{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Culprits) != 2 || res.Culprits[0].Flow != 2 || res.Culprits[1].Flow != 4 {
		t.Fatalf("got %+v", res.Culprits)
	}
	if res.Culprits[0].Amount != 7000 || res.Culprits[1].Amount != -250 {
		t.Fatalf("amounts %+v", res.Culprits)
	}
}

func TestPursueDeterministicAcrossWorkers(t *testing.T) {
	const m, r = 96, 8
	pr := randomBasis(t, m, r, 17)
	rng := rand.New(rand.NewSource(18))
	y := make([]float64, m)
	for i := range y {
		y[i] = rng.NormFloat64() * 50
	}
	y[40] += 20000
	y[71] += 12000
	var ref Result
	for i, w := range []int{1, 2, 4, 7} {
		r0, err := Residual(pr, y, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Pursue(pr, r0, Config{MaxK: 6, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if len(res.Culprits) != len(ref.Culprits) ||
			res.InitialSPE != ref.InitialSPE || res.ResidualSPE != ref.ResidualSPE {
			t.Fatalf("workers=%d diverged: %+v vs %+v", w, res, ref)
		}
		for j := range res.Culprits {
			if res.Culprits[j] != ref.Culprits[j] {
				t.Fatalf("workers=%d culprit %d: %+v vs %+v", w, j, res.Culprits[j], ref.Culprits[j])
			}
		}
	}
}

func TestPursueBadInput(t *testing.T) {
	pr := randomBasis(t, 10, 2, 19)
	if _, err := Pursue(pr, make([]float64, 7), Config{}); err == nil {
		t.Fatal("shape mismatch must error")
	}
	bad := make([]float64, 10)
	bad[3] = math.NaN()
	if _, err := Pursue(pr, bad, Config{}); err == nil {
		t.Fatal("non-finite residual must error")
	}
	if _, err := Residual(pr, bad, 0); err == nil {
		t.Fatal("non-finite measurement must error")
	}
}
