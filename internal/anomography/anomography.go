// Package anomography identifies which OD flows caused a network-wide
// volume alarm. The subspace detector (paper §3) answers only *whether* an
// interval is anomalous; this package answers *which flows*, the framing
// Kasai et al. (arXiv:1608.05493) call anomography.
//
// The core solver, Pursue, is a greedy sparse-residual pursuit in the style
// of orthogonal matching pursuit, run over the anomalous subspace. A unit
// injection on flow j perturbs the measurement by e_j, whose anomalous-
// subspace signature is s_j = (I − P_rP_rᵀ)e_j with P_r the top-r principal
// components. Because the working residual r stays orthogonal to the normal
// subspace throughout, the matching inner product collapses to a coordinate
// read — ⟨r, s_j⟩ = r[j] — and the per-flow selection score is
// |r[j]| / ‖s_j‖ with ‖s_j‖² = 1 − ‖p_j‖² (p_j = row j of P_r). Each
// iteration re-solves the small least-squares fit over all selected
// signatures and re-projects, so earlier amounts are corrected as new flows
// join (the "orthogonal" in OMP). This is strictly better than ranking raw
// residual coordinates: when PCA smears a single-flow spike across
// correlated flows, the smear lives in the selected flow's signature and is
// explained away rather than misattributed.
//
// PCP (pcp.go) is the offline comparator: relaxed Principal Component
// Pursuit via inexact ALM (Wang et al., arXiv:1104.2156), decomposing a
// traffic-matrix window into low-rank + sparse on the same blocked-tile
// kernels.
package anomography

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"streampca/internal/mat"
)

// ErrInput flags malformed solver inputs (shape mismatch, non-finite data).
var ErrInput = errors.New("anomography: invalid input")

const (
	// DefaultMaxK bounds the culprit set when the caller does not.
	DefaultMaxK = 8
	// DefaultMinGainFrac stops the pursuit when the next flow explains less
	// than this fraction of the initial residual energy.
	DefaultMinGainFrac = 1e-3
	// minSignatureEnergy guards flows whose anomalous signature is
	// numerically empty (the flow lies inside the normal subspace, e.g. a
	// rank-capped FD block): such flows are unidentifiable and excluded
	// rather than allowed to blow up the normalized score.
	minSignatureEnergy = 1e-9
)

// DefaultMinSignature returns the selection floor Identify-style callers
// should pass as Config.MinSignature: a third of the mean signature energy
// 1 − rank/m (trace(P_rP_rᵀ) = rank, so signatures average to exactly that).
// A flow far below the mean has been rotated into the normal subspace —
// typically by a window that retrained on the anomaly itself — and its
// residual coordinate must be amplified by 1/‖s_j‖² ≫ 1 to be read as an
// injection, which turns noise into confident misattribution.
func DefaultMinSignature(m, rank int) float64 {
	if m <= 0 || rank <= 0 || rank >= m {
		return 0
	}
	return (1 - float64(rank)/float64(m)) / 3
}

// Config tunes one Pursue call.
type Config struct {
	// MaxK caps the number of culprits (≤ 0 → DefaultMaxK).
	MaxK int
	// MinSignature excludes flows whose anomalous-signature energy
	// ‖s_j‖² = 1 − ‖p_j‖² falls below it: such flows live (almost) inside
	// the normal subspace and cannot be identified from the residual.
	// ≤ 0 keeps only the numeric minSignatureEnergy guard; detector-backed
	// callers should pass DefaultMinSignature(m, rank).
	MinSignature float64
	// MinResidual stops the pursuit once the residual SPE distance drops to
	// or below it — pass the detector's Q-threshold δ_α so identification
	// stops exactly when the remaining residual would no longer alarm.
	// ≤ 0 disables the threshold stop.
	MinResidual float64
	// MinGainFrac stops when a selection's marginal explained-energy
	// fraction falls below it (≤ 0 → DefaultMinGainFrac).
	MinGainFrac float64
	// Workers is forwarded to the blocked-tile kernels (0 = auto).
	Workers int
}

// StopReason records why the pursuit terminated.
type StopReason string

const (
	// StopThreshold: residual SPE fell to or below Config.MinResidual.
	StopThreshold StopReason = "threshold"
	// StopMaxK: the culprit cap was reached with residual still above it.
	StopMaxK StopReason = "max_k"
	// StopGain: the best remaining flow explained a negligible fraction of
	// the initial energy; it was discarded and the pursuit ended.
	StopGain StopReason = "gain"
	// StopExhausted: no identifiable flow remained (all selected,
	// signature-degenerate, or zero residual coordinates).
	StopExhausted StopReason = "exhausted"
	// StopEmpty: the input residual was already at or below the threshold,
	// so there was nothing to identify.
	StopEmpty StopReason = "empty"
)

// Culprit is one identified flow.
type Culprit struct {
	// Flow is the global flow index.
	Flow int
	// Amount is the estimated injected volume on the flow (signed, in the
	// measurement's units), from the final joint least-squares fit.
	Amount float64
	// Confidence is the flow's marginal explained-energy fraction at
	// selection time: the drop in residual energy it caused, divided by the
	// initial residual energy. In [0, 1]; the culprits sum to at most 1.
	Confidence float64
}

// Result is a full identification.
type Result struct {
	// Culprits are ranked by Confidence descending (selection order breaks
	// ties), so Culprits[:k] is the top-k set for precision@k.
	Culprits []Culprit
	// InitialSPE and ResidualSPE are the residual's SPE distance (the same
	// √SPE the detector compares against δ_α) before and after explanation.
	InitialSPE  float64
	ResidualSPE float64
	// ExplainedFrac is 1 − ResidualSPE²/InitialSPE².
	ExplainedFrac float64
	// Iterations counts accepted selections (== len(Culprits)).
	Iterations int
	// Stop is the termination reason.
	Stop StopReason
}

// Residual projects the centered measurement y onto the anomalous subspace:
// r = y − P_r(P_rᵀy). Both products run through mat.MulWorkers, so the
// result is bit-identical at any worker count. pr is m×rank (nil or zero
// columns → the model has no normal subspace and r = y).
func Residual(pr *mat.Matrix, y []float64, workers int) ([]float64, error) {
	m := len(y)
	if !mat.VecIsFinite(y) {
		return nil, fmt.Errorf("%w: non-finite measurement", ErrInput)
	}
	r := append([]float64(nil), y...)
	if pr == nil || pr.Cols() == 0 {
		return r, nil
	}
	if pr.Rows() != m {
		return nil, fmt.Errorf("%w: %d components rows for %d flows", ErrInput, pr.Rows(), m)
	}
	yRow, err := mat.NewMatrixFromData(1, m, y)
	if err != nil {
		return nil, err
	}
	coeff, err := yRow.MulWorkers(pr, workers) // 1×rank, entries â_jᵀy
	if err != nil {
		return nil, err
	}
	normal, err := projectUp(pr, coeff.RowView(0), workers)
	if err != nil {
		return nil, err
	}
	for i := range r {
		r[i] -= normal[i]
	}
	return r, nil
}

// projectUp maps rank-space coefficients back to flow space: P_r·q.
func projectUp(pr *mat.Matrix, q []float64, workers int) ([]float64, error) {
	qCol, err := mat.NewMatrixFromData(len(q), 1, q)
	if err != nil {
		return nil, err
	}
	up, err := pr.MulWorkers(qCol, workers)
	if err != nil {
		return nil, err
	}
	return up.Col(0), nil
}

// Pursue runs the greedy sparse-residual pursuit. pr is the m×rank matrix
// of principal components (column j = â_j); residual is the anomalous-
// subspace residual r₀ = (I − P_rP_rᵀ)(x − μ), e.g. from Residual. The
// input slices are not modified.
func Pursue(pr *mat.Matrix, residual []float64, cfg Config) (Result, error) {
	m := len(residual)
	rank := 0
	if pr != nil {
		rank = pr.Cols()
	}
	if rank > 0 && pr.Rows() != m {
		return Result{}, fmt.Errorf("%w: %d components rows for %d flows", ErrInput, pr.Rows(), m)
	}
	if !mat.VecIsFinite(residual) {
		return Result{}, fmt.Errorf("%w: non-finite residual", ErrInput)
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	if maxK > m {
		maxK = m
	}
	gainFrac := cfg.MinGainFrac
	if gainFrac <= 0 {
		gainFrac = DefaultMinGainFrac
	}
	minSig := cfg.MinSignature
	if minSig < minSignatureEnergy {
		minSig = minSignatureEnergy
	}

	// ‖s_j‖² = 1 − ‖p_j‖², precomputed once: the selection loop reads it
	// every iteration for every flow.
	sig := make([]float64, m)
	for j := 0; j < m; j++ {
		e := 1.0
		if rank > 0 {
			row := pr.RowView(j)
			e = 1 - mat.Dot(row, row)
		}
		sig[j] = e
	}

	r0 := append([]float64(nil), residual...)
	r := append([]float64(nil), residual...)
	init2 := mat.Dot(r0, r0)
	res := Result{InitialSPE: math.Sqrt(init2), ResidualSPE: math.Sqrt(init2)}
	if init2 == 0 || (cfg.MinResidual > 0 && res.InitialSPE <= cfg.MinResidual) {
		res.Stop = StopEmpty
		return res, nil
	}

	var (
		selected []int
		amounts  []float64
		confs    []float64
		inSet    = make([]bool, m)
		prev2    = init2
		rPrev    = make([]float64, m)
	)
	res.Stop = StopMaxK
	for len(selected) < maxK {
		// Match: argmax over unselected identifiable flows of the
		// normalized score r[j]²/‖s_j‖². Strict > keeps ties deterministic
		// (lowest flow index wins).
		best, bestScore := -1, 0.0
		for j := 0; j < m; j++ {
			if inSet[j] || sig[j] < minSig {
				continue
			}
			if sc := r[j] * r[j] / sig[j]; sc > bestScore {
				best, bestScore = j, sc
			}
		}
		if best < 0 || bestScore == 0 {
			res.Stop = StopExhausted
			break
		}
		selected = append(selected, best)
		inSet[best] = true

		// Orthogonal step: jointly re-fit all selected amounts. The Gram of
		// the signatures is G[u,v] = ⟨s_u, s_v⟩ = δ_uv − p_u·p_v and the
		// right-hand side is b_u = ⟨r₀, s_u⟩ = r₀[u].
		k := len(selected)
		g := mat.NewMatrix(k, k)
		b := make([]float64, k)
		for u, fu := range selected {
			b[u] = r0[fu]
			for v, fv := range selected {
				val := 0.0
				if rank > 0 {
					val = -mat.Dot(pr.RowView(fu), pr.RowView(fv))
				}
				if u == v {
					val++
				}
				g.Set(u, v, val)
			}
		}
		a, err := mat.LeastSquares(g, b)
		if err != nil {
			// Degenerate signature set (near-collinear flows): drop the
			// flow that broke it and keep what is already explained.
			selected = selected[:k-1]
			inSet[best] = false
			res.Stop = StopExhausted
			break
		}

		// Re-project: r = r₀ − Σ_u a_u s_u. The scatter part is k coordinate
		// updates; the normal-subspace correction P_r(Σ_u a_u p_u) goes
		// through the blocked-tile kernel like every other projection.
		copy(rPrev, r)
		copy(r, r0)
		for u, fu := range selected {
			r[fu] -= a[u]
		}
		if rank > 0 {
			q := make([]float64, rank)
			for u, fu := range selected {
				mat.AddScaled(q, a[u], pr.RowView(fu))
			}
			up, err := projectUp(pr, q, cfg.Workers)
			if err != nil {
				return res, err
			}
			for i := 0; i < m; i++ {
				r[i] += up[i]
			}
		}
		cur2 := mat.Dot(r, r)
		gain := (prev2 - cur2) / init2

		if cfg.MinResidual > 0 && math.Sqrt(cur2) <= cfg.MinResidual {
			// The remaining residual would no longer alarm: accept the flow
			// and stop, regardless of how small its marginal gain was.
			amounts, confs = a, append(confs, gain)
			prev2 = cur2
			res.Stop = StopThreshold
			break
		}
		if gain < gainFrac {
			// The best remaining flow explains ~nothing — it is noise, not
			// a culprit. Revert the selection and stop.
			selected = selected[:k-1]
			inSet[best] = false
			copy(r, rPrev)
			res.Stop = StopGain
			break
		}
		amounts, confs = a, append(confs, gain)
		prev2 = cur2
	}

	res.Iterations = len(selected)
	res.ResidualSPE = math.Sqrt(prev2)
	if init2 > 0 {
		res.ExplainedFrac = 1 - prev2/init2
	}
	res.Culprits = make([]Culprit, len(selected))
	for i, f := range selected {
		res.Culprits[i] = Culprit{Flow: f, Amount: amounts[i], Confidence: confs[i]}
	}
	// Rank by explained energy; selection order breaks ties so the ranking
	// is deterministic.
	sort.SliceStable(res.Culprits, func(a, b int) bool {
		return res.Culprits[a].Confidence > res.Culprits[b].Confidence
	})
	return res, nil
}
