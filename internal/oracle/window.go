package oracle

import (
	"math"

	"streampca/internal/mat"
	"streampca/internal/randproj"
)

// Window is the exact sliding-window reference for one flow: the raw
// (t, x) pairs still inside the time window [now−n+1, now], evicted by
// timestamp with exactly the rule vh.Histogram uses. Everything the variance
// histogram estimates is recomputed from this buffer with straightforward
// two-pass arithmetic.
type Window struct {
	n     int
	times []int64
	vals  []float64
}

// NewWindow returns an exact window of length n intervals.
func NewWindow(n int) *Window {
	return &Window{n: n}
}

// Push ingests the measurement x for interval t. Pushes must have strictly
// increasing t (matching the histogram's contract); elements whose time falls
// out of [t−n+1, t] are evicted.
func (w *Window) Push(t int64, x float64) {
	w.times = append(w.times, t)
	w.vals = append(w.vals, x)
	cut := 0
	expireBefore := t - int64(w.n)
	for cut < len(w.times) && w.times[cut] <= expireBefore {
		cut++
	}
	if cut > 0 {
		w.times = w.times[:copy(w.times, w.times[cut:])]
		w.vals = w.vals[:copy(w.vals, w.vals[cut:])]
	}
}

// Len returns the number of retained elements.
func (w *Window) Len() int { return len(w.vals) }

// TrailingStats computes the exact mean and sum of squared deviations over
// the k most recent elements (k ≤ Len), two-pass.
func (w *Window) TrailingStats(k int) (mean, ss float64) {
	if k <= 0 || k > len(w.vals) {
		return 0, 0
	}
	tail := w.vals[len(w.vals)-k:]
	for _, x := range tail {
		mean += x
	}
	mean /= float64(k)
	for _, x := range tail {
		d := x - mean
		ss += d * d
	}
	return mean, ss
}

// Stats computes the exact mean and sum of squared deviations over every
// retained element (the full current window).
func (w *Window) Stats() (mean, ss float64) {
	return w.TrailingStats(len(w.vals))
}

// TrailingSumSquares returns Σx² over the k most recent elements — the
// magnitude scale the exactness tolerances are anchored to.
func (w *Window) TrailingSumSquares(k int) float64 {
	if k <= 0 || k > len(w.vals) {
		return 0
	}
	var s float64
	for _, x := range w.vals[len(w.vals)-k:] {
		s += x * x
	}
	return s
}

// TrailingSketch recomputes the sketch ẑ_k = (1/√l)·Σ (x_i − mean)·r_{t_i,k}
// exactly over the k most recent elements, using the centering mean the
// caller supplies (pass the histogram's own μ̂ to isolate the partial-sum
// arithmetic from the mean estimate). The second return carries a per-
// direction magnitude scale for tolerance normalization: it includes the raw
// |x_i| and |mean| alongside the deviation, because the histogram computes
// ẑ as Z − μ̂·R from partial sums whose roundoff scales with the raw
// magnitudes even when the deviations cancel exactly (constant flows).
func (w *Window) TrailingSketch(g *randproj.Generator, k int, mean float64) (sketch, scale []float64) {
	l := g.SketchLen()
	sketch = make([]float64, l)
	scale = make([]float64, l)
	if k <= 0 || k > len(w.vals) {
		return sketch, scale
	}
	row := make([]float64, l)
	lo := len(w.vals) - k
	for i := lo; i < len(w.vals); i++ {
		g.RowInto(w.times[i], row)
		d := w.vals[i] - mean
		mag := abs(d) + abs(w.vals[i]) + abs(mean)
		for j, r := range row {
			sketch[j] += d * r
			scale[j] += mag * abs(r)
		}
	}
	inv := 1 / math.Sqrt(float64(l))
	for j := range sketch {
		sketch[j] *= inv
		scale[j] *= inv
	}
	return sketch, scale
}

// VectorWindow retains the recent network-wide measurement vectors the NOC
// assembled, so spectral checks can rebuild the exact n×m window matrix a
// model was fitted on. It keeps extra history beyond n because the model in
// force was built a few intervals in the past.
type VectorWindow struct {
	n, m  int
	keep  int
	times []int64
	rows  [][]float64
}

// NewVectorWindow returns a vector window for n-interval models over m flows,
// retaining extra intervals of history beyond n (extra ≤ 0 selects 64).
func NewVectorWindow(n, m, extra int) *VectorWindow {
	if extra <= 0 {
		extra = 64
	}
	return &VectorWindow{n: n, m: m, keep: n + extra}
}

// Push records the completed vector of interval t (copied). Out-of-order or
// wrong-width rows are ignored — a gap simply makes the affected windows
// non-reconstructible, which downstream checks treat as "skip".
func (w *VectorWindow) Push(t int64, row []float64) {
	if len(row) != w.m {
		return
	}
	if len(w.times) > 0 && t <= w.times[len(w.times)-1] {
		return
	}
	w.times = append(w.times, t)
	w.rows = append(w.rows, append([]float64(nil), row...))
	if over := len(w.times) - w.keep; over > 0 {
		w.times = w.times[:copy(w.times, w.times[over:])]
		w.rows = w.rows[:copy(w.rows, w.rows[over:])]
	}
}

// MatrixEnding reconstructs the exact n×m window matrix for the window
// [t−n+1, t]. It succeeds only when every one of those n contiguous
// intervals was pushed — any gap (dropped interval, degraded substitution)
// returns ok=false and the caller skips the check.
func (w *VectorWindow) MatrixEnding(t int64) (y *mat.Matrix, t0 int64, ok bool) {
	// Locate t from the back.
	hi := len(w.times) - 1
	for hi >= 0 && w.times[hi] > t {
		hi--
	}
	if hi < 0 || w.times[hi] != t || hi+1 < w.n {
		return nil, 0, false
	}
	lo := hi - w.n + 1
	if w.times[lo] != t-int64(w.n)+1 {
		return nil, 0, false // gap somewhere inside: times strictly increase
	}
	y = mat.NewMatrix(w.n, w.m)
	for i := 0; i < w.n; i++ {
		copy(y.RowView(i), w.rows[lo+i])
	}
	return y, w.times[lo], true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
