package oracle

import (
	"fmt"
	"log/slog"

	"streampca/internal/core"
	"streampca/internal/obs"
	"streampca/internal/randproj"
)

// CheckerConfig parameterizes a sampling Checker embedded in a daemon.
type CheckerConfig struct {
	// Every samples one full oracle pass out of every Every intervals; must
	// be ≥ 1. The shadow state (exact windows) is maintained on every
	// interval regardless — sampling only gates the check itself.
	Every int
	// WindowLen is n.
	WindowLen int
	// Epsilon is the pipeline's configured ε.
	Epsilon float64
	// Alpha is the detector's false-alarm rate (NOC side; ignored by the
	// monitor side).
	Alpha float64
	// Gen is the shared projection generator (monitor side; the NOC side
	// only needs l and may leave Gen nil and set SketchLen instead).
	Gen *randproj.Generator
	// SketchLen is l for the spectral checks' EffectiveEpsilon widening when
	// Gen is nil; ignored otherwise.
	SketchLen int
	// NumFlows is the per-daemon flow count: w assigned flows for a monitor,
	// m network-wide flows for the NOC.
	NumFlows int
	// Component names the daemon for metrics ("monitor" or "noc").
	Component string
	// Log receives one structured warning per violation; nil disables.
	Log *slog.Logger
	// Reg receives the oracle metrics; nil disables.
	Reg *obs.Registry
}

// Checker maintains exact shadow state alongside a running daemon and
// periodically differentially validates the streaming pipeline against it.
// It is not safe for concurrent use; callers hold the same lock that guards
// the state being checked.
type Checker struct {
	cfg     CheckerConfig
	log     *slog.Logger
	windows []*Window     // monitor side: one exact window per assigned flow
	vectors *VectorWindow // NOC side: recent network-wide vectors

	maxRelErr  float64
	checks     *obs.Counter
	violations *obs.Counter
	maxErr     *obs.Gauge
}

// NewChecker validates cfg and allocates the shadow state for one daemon
// side: monitors get per-flow exact windows, the NOC a vector window.
func NewChecker(cfg CheckerConfig) (*Checker, error) {
	if cfg.Every < 1 {
		return nil, fmt.Errorf("oracle: sampling period %d, want >= 1", cfg.Every)
	}
	if cfg.WindowLen < 2 {
		return nil, fmt.Errorf("oracle: window length %d, want >= 2", cfg.WindowLen)
	}
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("oracle: %d flows", cfg.NumFlows)
	}
	if cfg.Component == "" {
		cfg.Component = "oracle"
	}
	c := &Checker{cfg: cfg, log: cfg.Log}
	if c.log == nil {
		c.log = obs.Nop()
	}
	if cfg.Reg != nil {
		p := "streampca_" + cfg.Component
		c.checks = cfg.Reg.Counter(p+"_oracle_checks_total",
			"Oracle bound assertions evaluated by the -selfcheck differential validator.")
		c.violations = cfg.Reg.Counter(p+"_oracle_violations_total",
			"Oracle bound assertions that failed — any nonzero value is a numerical-correctness bug.")
		c.maxErr = cfg.Reg.Gauge(p+"_oracle_max_rel_err",
			"Largest oracle bound utilization (err/bound) observed so far; values near 1 warn of drift toward a violation.")
	}
	return c, nil
}

// Due reports whether interval t is a sampled one.
func (c *Checker) Due(t int64) bool {
	return t%int64(c.cfg.Every) == 0
}

// ObserveMonitor records interval t's volumes into the exact shadow windows
// and, on sampled intervals, validates every per-flow histogram of mon.
// volumes is indexed like mon's FlowIDs. The returned Result is empty on
// non-sampled intervals.
func (c *Checker) ObserveMonitor(t int64, volumes []float64, mon *core.Monitor) Result {
	if c.windows == nil {
		c.windows = make([]*Window, c.cfg.NumFlows)
		for i := range c.windows {
			c.windows[i] = NewWindow(c.cfg.WindowLen)
		}
	}
	var res Result
	if len(volumes) != len(c.windows) {
		res.Checks++
		res.Violations = append(res.Violations, Violation{
			Check: "shadow-shape", Bound: 0,
			Detail: fmt.Sprintf("%d volumes for %d shadow windows", len(volumes), len(c.windows)),
		})
		c.record(res)
		return res
	}
	for i, x := range volumes {
		c.windows[i].Push(t, x)
	}
	if !c.Due(t) || mon == nil {
		return Result{}
	}
	for i := range c.windows {
		h := mon.Histogram(i)
		if h == nil {
			continue
		}
		res.Merge(CheckHistogram(h, c.windows[i], c.cfg.Gen, c.cfg.Epsilon))
	}
	c.record(res)
	return res
}

// ObserveNOC records the completed network-wide vector of interval t and, on
// sampled intervals, validates the decision's model against the exact batch
// reference. Callers must skip degraded intervals (vectors assembled from
// cached sketches) — pushing them would poison the exact window. The second
// return is false when the check was skipped (unsampled interval, or the
// exact window was not reconstructible).
func (c *Checker) ObserveNOC(t int64, x []float64, dec core.Decision, model *core.Model) (Result, bool) {
	if c.vectors == nil {
		c.vectors = NewVectorWindow(c.cfg.WindowLen, c.cfg.NumFlows, 0)
	}
	c.vectors.Push(t, x)
	if !c.Due(t) {
		return Result{}, false
	}
	l := c.cfg.SketchLen
	if c.cfg.Gen != nil {
		l = c.cfg.Gen.SketchLen()
	}
	res, ok := CheckModel(model, dec, x, c.vectors, ModelCheckConfig{
		Epsilon:   c.cfg.Epsilon,
		Alpha:     c.cfg.Alpha,
		SketchLen: l,
	})
	if ok {
		c.record(res)
	}
	return res, ok
}

// record folds one pass into the metrics and logs its violations.
func (c *Checker) record(res Result) {
	if res.MaxRelErr > c.maxRelErr {
		c.maxRelErr = res.MaxRelErr
	}
	if c.checks != nil {
		c.checks.Add(int64(res.Checks))
		c.violations.Add(int64(len(res.Violations)))
		c.maxErr.Set(c.maxRelErr)
	}
	for _, v := range res.Violations {
		c.log.Warn("oracle bound violated",
			"check", v.Check, "err", v.Err, "bound", v.Bound, "detail", v.Detail)
	}
}
