package oracle

import (
	"math"
	"math/rand"
	"testing"

	"streampca/internal/core"
	"streampca/internal/obs"
	"streampca/internal/randproj"
	"streampca/internal/vh"
)

// traffic families for the adversarial Lemma 1 / exactness property suite.
type trafficGen struct {
	name string
	next func(r *rand.Rand, t int64) float64
}

func trafficGens() []trafficGen {
	return []trafficGen{
		{"random-walk", func(r *rand.Rand, t int64) float64 {
			return 100 + 10*math.Sin(float64(t)/17) + r.NormFloat64()
		}},
		{"constant", func(r *rand.Rand, t int64) float64 {
			return 42.5
		}},
		{"step-change", func(r *rand.Rand, t int64) float64 {
			// Level shifts by three orders of magnitude every 50 intervals.
			base := 1.0
			if (t/50)%2 == 1 {
				base = 1000
			}
			return base * (1 + 0.01*r.Float64())
		}},
		{"heavy-tail", func(r *rand.Rand, t int64) float64 {
			x := 1 + r.Float64()
			if r.Float64() < 0.02 {
				x *= 1e6 // volume spike
			}
			return x
		}},
	}
}

func newGen(t *testing.T, dist randproj.Distribution, l, n int, seed uint64) *randproj.Generator {
	t.Helper()
	g, err := randproj.NewGenerator(randproj.Config{
		Seed: seed, SketchLen: l, Dist: dist, SparseS: 3, WindowLen: n,
	})
	if err != nil {
		t.Fatalf("generator(%v): %v", dist, err)
	}
	return g
}

// TestCheckHistogramProperty sweeps all four projection families, ε values
// (including the adversarial sweep ε ∈ {0.05, 0.1, 0.3}) and window/sketch
// sizes over the adversarial traffic families, asserting the full histogram
// check — exactness to rounding error plus Lemma 1 — on every sampled
// interval.
func TestCheckHistogramProperty(t *testing.T) {
	dists := []randproj.Distribution{
		randproj.Gaussian, randproj.TugOfWar, randproj.Sparse, randproj.VerySparse,
	}
	for _, dist := range dists {
		for _, eps := range []float64{0.05, 0.1, 0.3} {
			for _, dims := range []struct{ n, l int }{{64, 8}, {256, 32}} {
				for _, tg := range trafficGens() {
					g := newGen(t, dist, dims.l, dims.n, 0x5eed)
					h, err := vh.New(vh.Config{WindowLen: dims.n, Epsilon: eps, Gen: g})
					if err != nil {
						t.Fatal(err)
					}
					w := NewWindow(dims.n)
					r := rand.New(rand.NewSource(int64(dims.n)*31 + int64(eps*1000)))
					steps := int64(3*dims.n + 17)
					for ti := int64(1); ti <= steps; ti++ {
						x := tg.next(r, ti)
						if err := h.Update(ti, x); err != nil {
							t.Fatal(err)
						}
						w.Push(ti, x)
						if ti%13 != 0 && ti != steps {
							continue
						}
						res := CheckHistogram(h, w, g, eps)
						if res.Checks == 0 {
							t.Fatalf("%v/%s eps=%v: no checks ran", dist, tg.name, eps)
						}
						if !res.OK() {
							t.Fatalf("%v/%s eps=%v n=%d l=%d t=%d: %v",
								dist, tg.name, eps, dims.n, dims.l, ti, res.Worst())
						}
					}
				}
			}
		}
	}
}

// TestCheckHistogramDetectsMutations asserts the oracle actually has teeth:
// plausible implementation bugs must produce violations, not silent passes.
func TestCheckHistogramDetectsMutations(t *testing.T) {
	const n, l, eps = 128, 16, 0.3

	// run merges checks over many intervals: bucket expiry (the lossy step)
	// only intermittently leaves the covered set short of the full window, so
	// a single end-of-run probe can land on a fully-covered interval.
	run := func(g, oracleGen *randproj.Generator, checkEps float64) Result {
		h, err := vh.New(vh.Config{WindowLen: n, Epsilon: eps, Gen: g})
		if err != nil {
			t.Fatal(err)
		}
		w := NewWindow(n)
		r := rand.New(rand.NewSource(11))
		var res Result
		for ti := int64(1); ti <= 3*n; ti++ {
			x := 50 + 40*math.Sin(float64(ti)/9) + r.NormFloat64()
			if err := h.Update(ti, x); err != nil {
				t.Fatal(err)
			}
			w.Push(ti, x)
			if ti > n && ti%5 == 0 {
				res.Merge(CheckHistogram(h, w, oracleGen, checkEps))
			}
		}
		return res
	}

	g := newGen(t, randproj.Gaussian, l, n, 1)
	if res := run(g, g, eps); !res.OK() {
		t.Fatalf("control run violated: %v", res.Worst())
	}

	// Mutation 1: the pipeline and the oracle disagree on the projection
	// (models a dropped/duplicated scale factor or a seed mismatch — any
	// corruption of the partial sums). The sketch exactness check must fire.
	wrong := newGen(t, randproj.Gaussian, l, n, 2)
	res := run(g, wrong, eps)
	found := false
	for _, v := range res.Violations {
		if v.Check == "vh-sketch-exact" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupted projection not detected: %+v", res.Violations)
	}

	// Mutation 2: claiming a tighter ε than the histogram honors. The merge
	// rules only fire once n_A ≤ (ε/10)·n_B is satisfiable under the
	// half-window cap — i.e. for n > 40/ε — so use a window large enough
	// that constant stretches actually merge into multi-element buckets.
	// When a step change then crosses the window, expiry drops several
	// still-covered elements at once: V̂ < V by a real margin the ε = 0.3
	// bound allows but an ε = 0 claim must flag.
	const n2 = 512
	g2 := newGen(t, randproj.Gaussian, l, n2, 1)
	h, err := vh.New(vh.Config{WindowLen: n2, Epsilon: eps, Gen: g2})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindow(n2)
	var strict, honest Result
	for ti := int64(1); ti <= 4*n2; ti++ {
		x := 1.0
		if (ti/n2)%2 == 1 {
			x = 1001
		}
		if err := h.Update(ti, x); err != nil {
			t.Fatal(err)
		}
		w.Push(ti, x)
		if ti > n2 {
			strict.Merge(CheckHistogram(h, w, g2, 0))
			honest.Merge(CheckHistogram(h, w, g2, eps))
		}
	}
	if !honest.OK() {
		t.Fatalf("true-eps control violated on step traffic: %v", honest.Worst())
	}
	found = false
	for _, v := range strict.Violations {
		if v.Check == "lemma1-lower" {
			found = true
		} else {
			t.Fatalf("eps=0 claim tripped an unexpected check: %v", v)
		}
	}
	if !found {
		t.Fatal("eps=0 claim against a lossy histogram not detected")
	}
}

// pipeline is one end-to-end sketch-PCA stack over synthetic correlated
// traffic, plus the oracle shadow state, for the spectral checks.
type pipeline struct {
	m, n, l int
	gen     *randproj.Generator
	mon     *core.Monitor
	det     *core.Detector
	vw      *VectorWindow
	r       *rand.Rand
}

func newPipeline(t *testing.T, m, n, l, rank int) *pipeline {
	t.Helper()
	gen := newGen(t, randproj.Gaussian, l, n, 7)
	flowIDs := make([]int, m)
	for i := range flowIDs {
		flowIDs[i] = i
	}
	mon, err := core.NewMonitor(core.MonitorConfig{
		FlowIDs: flowIDs, WindowLen: n, Epsilon: 0.1, Gen: gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(core.DetectorConfig{
		NumFlows: m, WindowLen: n, SketchLen: l,
		Alpha: 0.01, Mode: core.RankFixed, FixedRank: rank,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{
		m: m, n: n, l: l, gen: gen, mon: mon, det: det,
		vw: NewVectorWindow(n, m, 0),
		r:  rand.New(rand.NewSource(23)),
	}
}

// vector draws one network-wide measurement: a few shared low-rank factors
// plus per-flow noise, so the window has a meaningful normal subspace.
func (p *pipeline) vector(ti int64) []float64 {
	f1 := math.Sin(float64(ti) / 11)
	f2 := math.Cos(float64(ti) / 29)
	x := make([]float64, p.m)
	for j := range x {
		x[j] = 100 + 40*f1*float64(1+j%3) + 25*f2*float64(1+j%5) + 2*p.r.NormFloat64()
	}
	return x
}

func (p *pipeline) fetch() (core.Fetch, error) {
	rep := p.mon.Report()
	return core.Fetch{Sketches: rep.Sketches, Means: rep.Means, Interval: rep.Interval}, nil
}

// TestCheckModelEndToEnd drives the full stack and asserts the spectral
// bounds (Lemmas 5–6), Theorem 2 and alarm agreement hold on sampled
// intervals, and that a deliberate mutation — dropping the 1/√l sketch scale,
// i.e. every singular value inflated by √l — is caught.
func TestCheckModelEndToEnd(t *testing.T) {
	const m, n, l, rank = 24, 48, 24, 2
	p := newPipeline(t, m, n, l, rank)
	cfg := ModelCheckConfig{Epsilon: 0.1, Alpha: 0.01, SketchLen: l}

	checked := 0
	var lastDec core.Decision
	var lastX []float64
	for ti := int64(1); ti <= int64(4*n); ti++ {
		x := p.vector(ti)
		if err := p.mon.Update(ti, x); err != nil {
			t.Fatal(err)
		}
		p.vw.Push(ti, x)
		if ti < int64(n) {
			continue
		}
		dec, err := p.det.Observe(x, p.fetch)
		if err != nil {
			t.Fatal(err)
		}
		lastDec, lastX = dec, x
		if ti%7 != 0 {
			continue
		}
		res, ok := CheckModel(p.det.Model(), dec, x, p.vw, cfg)
		if !ok {
			continue
		}
		checked++
		if !res.OK() {
			t.Fatalf("t=%d: %v", ti, res.Worst())
		}
		if res.Checks < 3 {
			t.Fatalf("t=%d: only %d spectral checks ran", ti, res.Checks)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d model checks completed", checked)
	}

	// Mutation: drop the 1/√l normalization — every λ̂ inflates by √l.
	// Lemma 5 (and 6) must catch it.
	mut := *p.det.Model()
	mut.Singular = append([]float64(nil), mut.Singular...)
	for j := range mut.Singular {
		mut.Singular[j] *= math.Sqrt(float64(l))
	}
	res, ok := CheckModel(&mut, lastDec, lastX, p.vw, cfg)
	if !ok {
		t.Fatal("mutated model check skipped")
	}
	hit := map[string]bool{}
	for _, v := range res.Violations {
		hit[v.Check] = true
	}
	if !hit["lemma5"] || !hit["lemma6"] {
		t.Fatalf("dropped 1/√l scale not detected (violations: %+v)", res.Violations)
	}
}

// TestCheckerSampling exercises the daemon-embedded Checker: shadow state on
// every interval, checks only on sampled ones, metrics wired, violations
// surfaced through the counters when the pipeline is corrupted.
func TestCheckerSampling(t *testing.T) {
	const m, n, l = 8, 32, 8
	gen := newGen(t, randproj.TugOfWar, l, n, 3)
	flowIDs := make([]int, m)
	for i := range flowIDs {
		flowIDs[i] = i
	}
	mon, err := core.NewMonitor(core.MonitorConfig{
		FlowIDs: flowIDs, WindowLen: n, Epsilon: 0.1, Gen: gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	chk, err := NewChecker(CheckerConfig{
		Every: 5, WindowLen: n, Epsilon: 0.1, Gen: gen,
		NumFlows: m, Component: "monitor", Reg: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for ti := int64(1); ti <= 3*n; ti++ {
		x := make([]float64, m)
		for j := range x {
			x[j] = 10 + r.NormFloat64()
		}
		if err := mon.Update(ti, x); err != nil {
			t.Fatal(err)
		}
		res := chk.ObserveMonitor(ti, x, mon)
		if !chk.Due(ti) && res.Checks != 0 {
			t.Fatalf("t=%d: unsampled interval ran %d checks", ti, res.Checks)
		}
	}
	checks := reg.Counter("streampca_monitor_oracle_checks_total", "").Value()
	viol := reg.Counter("streampca_monitor_oracle_violations_total", "").Value()
	if checks == 0 {
		t.Fatal("no oracle checks recorded")
	}
	if viol != 0 {
		t.Fatalf("healthy pipeline recorded %d violations", viol)
	}

	// A checker shadowing with the wrong generator must count violations.
	bad, err := NewChecker(CheckerConfig{
		Every: 5, WindowLen: n, Epsilon: 0.1,
		Gen:      newGen(t, randproj.TugOfWar, l, n, 99),
		NumFlows: m, Component: "noc", Reg: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := int64(1); ti <= 2*n; ti++ {
		x := make([]float64, m)
		for j := range x {
			x[j] = 10 + r.NormFloat64()
		}
		if err := mon.Update(3*n+ti, x); err != nil {
			t.Fatal(err)
		}
		bad.ObserveMonitor(3*n+ti, x, mon)
	}
	if v := reg.Counter("streampca_noc_oracle_violations_total", "").Value(); v == 0 {
		t.Fatal("wrong-generator checker recorded no violations")
	}
	if g := reg.Gauge("streampca_noc_oracle_max_rel_err", "").Value(); g <= 0 {
		t.Fatalf("max_rel_err gauge = %v, want > 0", g)
	}
}

// TestCheckerNOCObserve wires the NOC side of the Checker through the full
// detector and asserts sampled intervals produce clean spectral checks.
func TestCheckerNOCObserve(t *testing.T) {
	const m, n, l, rank = 16, 40, 16, 2
	p := newPipeline(t, m, n, l, rank)
	reg := obs.NewRegistry()
	chk, err := NewChecker(CheckerConfig{
		Every: 4, WindowLen: n, Epsilon: 0.1, Alpha: 0.01,
		Gen: p.gen, NumFlows: m, Component: "noc", Reg: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for ti := int64(1); ti <= int64(4*n); ti++ {
		x := p.vector(ti)
		if err := p.mon.Update(ti, x); err != nil {
			t.Fatal(err)
		}
		if ti < int64(n) {
			chk.ObserveNOC(ti, x, core.Decision{}, nil)
			continue
		}
		dec, err := p.det.Observe(x, p.fetch)
		if err != nil {
			t.Fatal(err)
		}
		if res, ok := chk.ObserveNOC(ti, x, dec, p.det.Model()); ok {
			ran++
			if !res.OK() {
				t.Fatalf("t=%d: %v", ti, res.Worst())
			}
		}
	}
	if ran < 5 {
		t.Fatalf("only %d NOC oracle passes ran", ran)
	}
	if reg.Counter("streampca_noc_oracle_checks_total", "").Value() == 0 {
		t.Fatal("no NOC oracle checks recorded")
	}
}

// TestEffectiveEpsilon pins the widening behavior: the JL floor dominates at
// small l, the configured ε at large l, and it shrinks monotonically in l.
func TestEffectiveEpsilon(t *testing.T) {
	if got := EffectiveEpsilon(0.1, 256, 1<<20); got != 0.1 {
		t.Fatalf("huge l: %v, want the configured eps", got)
	}
	small := EffectiveEpsilon(0.1, 256, 8)
	large := EffectiveEpsilon(0.1, 256, 64)
	if !(small > large && large >= 0.1) {
		t.Fatalf("not monotone: eps(8)=%v eps(64)=%v", small, large)
	}
}

// TestVectorWindowContiguity pins the skip semantics: a gap in the pushed
// intervals makes every window spanning it non-reconstructible.
func TestVectorWindowContiguity(t *testing.T) {
	vw := NewVectorWindow(4, 2, 0)
	for ti := int64(1); ti <= 10; ti++ {
		if ti == 6 {
			continue // dropped interval
		}
		vw.Push(ti, []float64{float64(ti), -float64(ti)})
	}
	if _, _, ok := vw.MatrixEnding(5); !ok {
		t.Fatal("pre-gap window should reconstruct")
	}
	for _, end := range []int64{6, 7, 8, 9} {
		if _, _, ok := vw.MatrixEnding(end); ok {
			t.Fatalf("window ending %d spans the gap but reconstructed", end)
		}
	}
	y, t0, ok := vw.MatrixEnding(10)
	if !ok || t0 != 7 || y.Rows() != 4 || y.At(0, 0) != 7 {
		t.Fatalf("post-gap window: ok=%v t0=%d", ok, t0)
	}
}
