package oracle

import (
	"errors"
	"math"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/stats"
)

// ModelCheckConfig parameterizes the spectral and detection checks.
type ModelCheckConfig struct {
	// Epsilon is the VH approximation parameter the pipeline was configured
	// with; the checks widen it to EffectiveEpsilon for the sketch length.
	Epsilon float64
	// Alpha is the detector's false-alarm rate, used to fit the exact
	// reference threshold.
	Alpha float64
	// SketchLen is l, for the EffectiveEpsilon widening. 0 falls back to the
	// window length (the JL term at its smallest — conservative).
	SketchLen int
	// DeadBand is the relative margin around the thresholds inside which
	// alarm disagreement is tolerated (the bounds allow the two detectors to
	// land on opposite sides of δ for borderline distances). 0 selects 0.2.
	DeadBand float64
}

// svSignificance gates the per-component Lemma 5 ratio check: components
// carrying less than this fraction of the total spectral energy are skipped
// (their relative error is dominated by the JL noise floor, which the paper's
// multiplicative bound does not model for vanishing singular values).
const svSignificance = 1e-3

// gapSignificance gates the Theorem 2 check: the additive bound divides by
// the eigengap λ²_r − λ²_{r+1}, so it is vacuous (astronomically large) when
// the gap is a negligible fraction of the spectral energy.
const gapSignificance = 1e-6

// CheckModel differentially validates one NOC model and the decision it
// produced against an exact batch-PCA reference fitted on the true window
// matrix.
//
// model must be the detector's model in force for the decision, x the raw
// measurement vector the decision classified, and vw a VectorWindow that was
// fed every completed interval vector. The exact reference window is the one
// ending at model.BuiltAt; if it cannot be reconstructed (gaps, insufficient
// history) or the model was built from a degraded fetch (the paper's bounds
// do not cover cache-substituted sketches), the check is skipped and ok is
// false.
//
// Checks, in order: Lemma 5 (eq. 25) — squared singular values of the sketch
// model within (1±3ε) of the exact window's, for energy-significant
// components; Lemma 6 (eq. 26) — the model's implied covariance
// V·diag(λ̂²)·Vᵀ within √6·ε·‖Yc‖²_F of YcᵀYc in Frobenius norm; Theorem 2 —
// the sketch anomaly distance within the additive bound of the exact one; and
// alarm agreement with an exact Q-statistic detector outside a dead band.
func CheckModel(model *core.Model, dec core.Decision, x []float64, vw *VectorWindow, cfg ModelCheckConfig) (Result, bool) {
	var res Result
	if model == nil || model.Degraded || model.Components == nil {
		return res, false
	}
	m := len(model.Singular)
	if m == 0 || len(x) != m || model.Components.Rows() != m || model.Components.Cols() != m {
		return res, false
	}
	y, _, okWin := vw.MatrixEnding(model.BuiltAt)
	if !okWin || y.Cols() != m {
		return res, false
	}
	n := y.Rows()
	l := cfg.SketchLen
	if l <= 0 {
		l = n
	}
	eps := EffectiveEpsilon(cfg.Epsilon, n, l)
	deadBand := cfg.DeadBand
	if deadBand == 0 {
		deadBand = 0.2
	}

	// Exact reference spectrum: center the true window column-wise and
	// eigendecompose its Gram matrix — same kernel, same ordering convention
	// (descending) as the detector applies to the sketch matrix.
	exactMeans := y.CenterColumns()
	frob2 := 0.0
	for i := 0; i < n; i++ {
		for _, v := range y.RowView(i) {
			frob2 += v * v
		}
	}
	eig, err := mat.SymEigen(y.Gram())
	if err != nil {
		res.Checks++
		res.Violations = append(res.Violations, Violation{
			Check: "exact-eigen", Err: math.Inf(1), Bound: 0,
			Detail: "exact window eigendecomposition failed: " + err.Error(),
		})
		return res, true
	}
	exactVals := eig.Values // λ²_j descending
	total := 0.0
	for _, lam := range exactVals {
		if lam > 0 {
			total += lam
		}
	}

	// Lemma 5 — per-component squared-singular-value ratios.
	worst, worstJ := 0.0, -1
	for j := 0; j < m; j++ {
		exact := exactVals[j]
		if exact <= svSignificance*total || total == 0 {
			break // descending: everything after is insignificant too
		}
		hat := model.Singular[j] * model.Singular[j]
		if hat == 0 {
			// Truncated spectra (the rSVD sampling budget, FD's ≤ Σ2ℓ basis
			// rows) carry exact-zero tail values by construction; the energy
			// they omit is still covered by Lemma 6's global covariance bound
			// below, so only estimated components face the ratio check.
			continue
		}
		if e := math.Abs(hat-exact) / exact; e > worst {
			worst, worstJ = e, j
		}
	}
	if worstJ >= 0 {
		res.check("lemma5", worst, 3*eps,
			"component %d: sketch λ̂² %.6g vs exact λ² %.6g", worstJ,
			model.Singular[worstJ]*model.Singular[worstJ], exactVals[worstJ])
	}

	// Lemma 6 — ‖Â − A‖_F ≤ √6·ε·‖Yc‖²_F with Â from the model's own
	// eigenpairs and A = YcᵀYc exactly.
	if frob2 > 0 {
		diffF := covarianceDiffFrob(model, y.Gram())
		res.check("lemma6", diffF/frob2, math.Sqrt(6)*eps,
			"‖Ahat−A‖_F = %.6g, ‖Yc‖²_F = %.6g", diffF, frob2)
	}

	// Exact batch detector: distance of x against the exact subspace at the
	// model's rank, threshold from the exact spectrum.
	rank := model.Rank
	if rank < 0 || rank > m {
		return res, true
	}
	exactDist := exactDistance(x, exactMeans, eig.Vectors, rank)

	// Theorem 2 — additive distance bound, meaningful only with a real
	// eigengap at the subspace cut. allow is carried into the alarm-agreement
	// gate: classification differences the distance bound permits are not
	// violations.
	allow := math.Inf(1)
	if rank >= 1 && rank < m {
		gap := exactVals[rank-1] - exactVals[rank]
		if gap > gapSignificance*total && total > 0 {
			yNorm := 0.0
			for j, v := range x {
				d := v - exactMeans[j]
				yNorm += d * d
			}
			yNorm = math.Sqrt(yNorm)
			allow = 2 * math.Sqrt(3*eps) * frob2 * yNorm / gap
			res.check("theorem2", math.Abs(dec.Distance-exactDist), allow,
				"sketch distance %.6g vs exact %.6g (gap %.3g, ‖y‖ %.3g)",
				dec.Distance, exactDist, gap, yNorm)
		}
	}

	// Decision consistency — with a usable threshold, the alarm bit must be
	// exactly Distance > Threshold on the decision's own final numbers. This
	// catches inverted comparisons and stale-threshold bookkeeping bugs
	// regardless of how loose the approximation bounds are.
	if !dec.ThresholdUnavailable {
		if dec.Anomalous != (dec.Distance > dec.Threshold) {
			res.check("decision-consistent", 1, 0,
				"Anomalous=%v but d %.6g vs δ %.6g", dec.Anomalous, dec.Distance, dec.Threshold)
		} else {
			res.Checks++
		}
	}

	// Alarm agreement — the sketch and exact detectors must classify
	// identically whenever the disagreement cannot be explained by the
	// approximation bounds: the exact margin exceeds the dead band AND the
	// sketch-exact distance gap exceeds the Theorem 2 allowance.
	if !dec.ThresholdUnavailable && !model.ThresholdUnavailable {
		exactSV := make([]float64, m)
		for j, lam := range exactVals {
			if lam < 0 {
				lam = 0
			}
			exactSV[j] = math.Sqrt(lam)
		}
		exactTh, err := stats.QStatistic(exactSV, n, rank, cfg.Alpha)
		switch {
		case err == nil:
			gapExplains := math.Abs(dec.Distance-exactDist) <= allow
			if dec.Anomalous && exactDist < (1-deadBand)*exactTh && !gapExplains {
				res.check("alarm-agreement", 1, 0,
					"sketch alarmed (d %.6g > δ %.6g) but exact is clearly normal (d %.6g, δ %.6g)",
					dec.Distance, dec.Threshold, exactDist, exactTh)
			} else if !dec.Anomalous && exactDist > (1+deadBand)*exactTh && !gapExplains {
				res.check("alarm-agreement", 1, 0,
					"sketch stayed quiet (d %.6g ≤ δ %.6g) but exact clearly alarms (d %.6g, δ %.6g)",
					dec.Distance, dec.Threshold, exactDist, exactTh)
			} else {
				res.Checks++ // agreement evaluated, no violation
			}
		case !errors.Is(err, stats.ErrDegenerate):
			res.Checks++
			res.Violations = append(res.Violations, Violation{
				Check: "exact-threshold", Err: math.Inf(1), Bound: 0,
				Detail: "exact Q-statistic failed: " + err.Error(),
			})
		}
	}
	return res, true
}

// covarianceDiffFrob computes ‖V·diag(λ̂²)·Vᵀ − A‖_F without materializing
// the m×m reconstruction: row i of Â is Σ_j λ̂²_j·V[i][j]·V[·][j].
func covarianceDiffFrob(model *core.Model, a *mat.Matrix) float64 {
	m := len(model.Singular)
	v := model.Components
	row := make([]float64, m)
	sum := 0.0
	for i := 0; i < m; i++ {
		for k := range row {
			row[k] = 0
		}
		for j := 0; j < m; j++ {
			w := model.Singular[j] * model.Singular[j] * v.At(i, j)
			if w == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				row[k] += w * v.At(k, j)
			}
		}
		for k := 0; k < m; k++ {
			d := row[k] - a.At(i, k)
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// exactDistance is the batch anomaly distance of x against the exact
// subspace: ‖(I − PPᵀ)(x − μ)‖ with P the first rank exact components.
func exactDistance(x, means []float64, components *mat.Matrix, rank int) float64 {
	m := len(x)
	y := make([]float64, m)
	for j, v := range x {
		y[j] = v - means[j]
	}
	total := mat.Dot(y, y)
	var normal float64
	for j := 0; j < rank; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += components.At(i, j) * y[i]
		}
		normal += s * s
	}
	rem := total - normal
	if rem < 0 {
		rem = 0
	}
	return math.Sqrt(rem)
}
