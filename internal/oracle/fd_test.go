package oracle

import (
	"math/rand"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/sketch"
)

// fdTrace builds a T×m trace with mild diurnal structure and returns it next
// to an FD sketcher fed every row (columns cols, basis budget ell).
func fdTrace(t *testing.T, T, m, ell int, cols []int) (*mat.Matrix, sketch.Snapshot) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	tr := mat.NewMatrix(T, m)
	for i := 0; i < T; i++ {
		row := tr.RowView(i)
		for j := range row {
			row[j] = 1000*float64(1+j%3) + 200*rng.NormFloat64()
		}
	}
	fd, err := sketch.NewFD(sketch.Config{FlowIDs: cols, Ell: ell})
	if err != nil {
		t.Fatal(err)
	}
	local := make([]float64, len(cols))
	for i := 0; i < T; i++ {
		row := tr.RowView(i)
		for j, id := range cols {
			local[j] = row[id]
		}
		if err := fd.Update(int64(i+1), local); err != nil {
			t.Fatal(err)
		}
	}
	return tr, fd.Snapshot()
}

// fdCols is a 10-wide shard of the 12-column trace: wider than the 2ℓ=6
// buffer, so shrinks discard real energy and Δ grows.
var fdCols = []int{0, 1, 2, 4, 5, 6, 7, 9, 10, 11}

func TestCheckFDPasses(t *testing.T) {
	// Long enough to force many shrinks (T ≫ 2ℓ) and narrow enough a budget
	// (2ℓ < w) that each shrink genuinely discards energy, on a column
	// subset like a sharded monitor's.
	tr, snap := fdTrace(t, 300, 12, 3, fdCols)
	res := CheckFD(tr, snap)
	if !res.OK() {
		t.Fatalf("honest FD snapshot violated the oracle: %v", res.Violations)
	}
	if res.Checks < 4 {
		t.Fatalf("only %d checks ran", res.Checks)
	}
}

func TestCheckFDCatchesUnderstatedDelta(t *testing.T) {
	tr, snap := fdTrace(t, 300, 12, 3, fdCols)
	if snap.FDDelta <= 0 {
		t.Fatal("trace too short to accumulate shrinkage")
	}
	// A sketcher that under-reports its shrinkage claims a tighter guarantee
	// than its rows support.
	snap.FDDelta = 0
	res := CheckFD(tr, snap)
	if res.OK() {
		t.Fatal("zeroed Δ must violate fd-guarantee")
	}
}

func TestCheckFDCatchesCorruptRows(t *testing.T) {
	tr, snap := fdTrace(t, 300, 12, 3, fdCols)
	for i := range snap.FDRows[0] {
		snap.FDRows[0][i] *= 25
	}
	res := CheckFD(tr, snap)
	if res.OK() {
		t.Fatal("corrupted basis row must violate fd-guarantee")
	}
}

func TestCheckFDCatchesDriftedMeans(t *testing.T) {
	tr, snap := fdTrace(t, 300, 12, 3, fdCols)
	snap.Means[2] *= 1.5
	res := CheckFD(tr, snap)
	if res.OK() {
		t.Fatal("drifted running mean must violate fd-mean-exact")
	}
}
