// Package oracle is a differential-validation harness: it runs exact
// reference computations side-by-side with the streaming pipeline and asserts
// the paper's approximation guarantees, so silent numerical regressions
// (accumulated drift, dropped scale factors, degenerate thresholds) fail a
// check instead of quietly degrading detection quality.
//
// Three layers of checks, from tight to probabilistic:
//
//   - Exactness (tolerance ~1e-9 relative): the variance histogram's merge
//     step is algebraically exact — only dropping whole buckets at expiry
//     approximates — so the VH's count/mean/variance/sketch over its covered
//     element set must match an exact recomputation over the same trailing
//     elements to rounding error. This is the tier that catches the
//     incremental-totals drift class of bug.
//   - Lemma 1 (eq. 10): (1−ε)·V ≤ V̂ ≤ V against the exact sliding-window
//     variance.
//   - Spectral / detection (Lemmas 5–6, Theorem 2): the sketch model's
//     singular values within (1±3ε) of the exact window's (eq. 25), the
//     sketched covariance within √6·ε·‖Y‖²_F in Frobenius norm (eq. 26), the
//     anomaly distance within the additive Theorem 2 bound, and alarm
//     agreement with an exact batch detector outside a dead band. These hold
//     with the paper's ε only for l = Ω(log n/ε²) (Lemma 4), so the checks
//     widen ε to EffectiveEpsilon at small l.
//
// The package is consumed three ways: the seeded property suite in this
// package's tests (run in CI), the sampling Checker embedded in the monitor
// and NOC daemons behind -selfcheck, and the abilene-eval -oracle report.
package oracle

import (
	"fmt"
	"math"
)

// Violation is one failed bound.
type Violation struct {
	// Check names the bound, e.g. "vh-sketch-exact", "lemma1-lower", "lemma5".
	Check string
	// Err is the observed dimensionless error measure and Bound the value it
	// was required to stay below.
	Err, Bound float64
	// Detail is a human-readable account with the raw numbers.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: err %.3e > bound %.3e (%s)", v.Check, v.Err, v.Bound, v.Detail)
}

// Result accumulates the outcome of one or more oracle passes.
type Result struct {
	// Checks counts individual bound assertions evaluated.
	Checks int
	// Violations lists the assertions that failed.
	Violations []Violation
	// MaxRelErr is the largest bound utilization (err/bound) observed
	// across all checks, violated or not. Values approaching 1 mean the
	// pipeline is drifting toward a bound violation — the early-warning
	// signal the oracle gauges export.
	MaxRelErr float64
}

// OK reports whether every check passed.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Merge folds another result into r.
func (r *Result) Merge(o Result) {
	r.Checks += o.Checks
	r.Violations = append(r.Violations, o.Violations...)
	if o.MaxRelErr > r.MaxRelErr {
		r.MaxRelErr = o.MaxRelErr
	}
}

// check records one assertion: err must not exceed bound. MaxRelErr tracks
// err/bound so checks with different units (relative exactness, Frobenius
// ratios, raw distance gaps) contribute comparably.
func (r *Result) check(name string, err, bound float64, format string, args ...any) {
	r.Checks++
	if bound > 0 && !math.IsNaN(err) {
		if u := err / bound; u > r.MaxRelErr {
			r.MaxRelErr = u
		}
	} else if err > 0 && r.MaxRelErr < 1 {
		r.MaxRelErr = 1 // zero-bound check violated: fully utilized
	}
	if err > bound || math.IsNaN(err) {
		r.Violations = append(r.Violations, Violation{
			Check: name, Err: err, Bound: bound, Detail: fmt.Sprintf(format, args...),
		})
	}
}

// Worst returns the violation with the largest Err/Bound overshoot, or nil.
func (r *Result) Worst() *Violation {
	var worst *Violation
	worstRatio := 0.0
	for i := range r.Violations {
		v := &r.Violations[i]
		ratio := v.Err / math.Max(v.Bound, 1e-300)
		if worst == nil || ratio > worstRatio {
			worst, worstRatio = v, ratio
		}
	}
	return worst
}

// jlConstant calibrates the Johnson–Lindenstrauss term of EffectiveEpsilon.
// Lemma 4 gives l = O(log n/ε²) with an unspecified constant; this value is
// set empirically so the seeded property scenarios pass with headroom while a
// gross error (a dropped 1/√l scale, a sign flip) still violates.
const jlConstant = 1.0

// EffectiveEpsilon widens the configured ε with the projection error floor
// √(c·ln n / l): the paper's spectral bounds assume l = Ω(log n/ε²)
// (Lemma 4), so for small sketch lengths the JL term dominates whatever ε the
// variance histogram was configured with.
func EffectiveEpsilon(eps float64, windowLen, sketchLen int) float64 {
	if sketchLen < 1 {
		return eps
	}
	n := math.Max(2, float64(windowLen))
	jl := math.Sqrt(jlConstant * math.Log(n) / float64(sketchLen))
	return math.Max(eps, jl)
}

// relTo returns |a−b| normalized by the larger of |b| and floor — the shared
// shape of the exactness comparisons (floor keeps near-zero references from
// exploding the ratio; pick it proportional to the data's magnitude).
func relTo(a, b, floor float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(math.Abs(b), floor)
	if den <= 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d / den
}
