package oracle

import (
	"math"

	"streampca/internal/mat"
	"streampca/internal/sketch"
)

// CheckFD differentially validates a Frequent Directions snapshot against an
// exact replay of the centered row stream its sketcher consumed. volumes is
// the full trace (one row per interval, in feed order, every interval the
// sketcher saw); the sketcher's columns are selected by snap.FlowIDs.
//
// Unlike the randproj checks, nothing here is probabilistic: FD carries the
// deterministic guarantee ‖AᵀA − BᵀB‖₂ ≤ Δ ≤ ‖A‖²_F/ℓ over the centered
// stream A, and the running means replay bit-for-bit. The checks, in order:
//
//   - fd-count-exact / fd-mean-exact: the snapshot's row count and running
//     means match the replay (the exactness tier — catches drift bugs).
//   - fd-guarantee: the sketch covariance BᵀB is within the accumulated
//     shrinkage Δ of the exact AᵀA in spectral norm.
//   - fd-delta-bound: Δ itself respects the worst-case ‖A‖²_F/ℓ budget.
//
// Both spectral checks allow a rounding slack proportional to ‖A‖²_F, since
// the replay accumulates AᵀA in a different order than the blocked Gram
// kernel.
func CheckFD(volumes *mat.Matrix, snap sketch.Snapshot) Result {
	var res Result
	w := len(snap.FlowIDs)
	if snap.Family != sketch.FamilyFD || w == 0 || snap.FDEll < 1 {
		res.check("fd-snapshot", 1, 0,
			"not a checkable FD snapshot (family %v, %d flows, ell %d)",
			snap.Family, w, snap.FDEll)
		return res
	}
	for _, id := range snap.FlowIDs {
		if id < 0 || id >= volumes.Cols() {
			res.check("fd-snapshot", 1, 0,
				"flow %d outside the %d-column trace", id, volumes.Cols())
			return res
		}
	}
	rows := volumes.Rows()
	if rows < 1 {
		res.check("fd-snapshot", 1, 0, "empty trace")
		return res
	}

	// Replay FD.Update's centering exactly: each row is centered by the
	// running mean over the rows before it, then the raw row joins the sums.
	sums := make([]float64, w)
	row := make([]float64, w)
	ata := mat.NewMatrix(w, w)
	frob := 0.0
	for i := 0; i < rows; i++ {
		full := volumes.RowView(i)
		for j, id := range snap.FlowIDs {
			mean := 0.0
			if i > 0 {
				mean = sums[j] / float64(i)
			}
			row[j] = full[id] - mean
		}
		for j := 0; j < w; j++ {
			cj := row[j]
			frob += cj * cj
			if cj == 0 {
				continue
			}
			dst := ata.RowView(j)
			for k := 0; k < w; k++ {
				dst[k] += cj * row[k]
			}
		}
		for j, id := range snap.FlowIDs {
			sums[j] += full[id]
		}
	}

	var count int64
	if len(snap.Counts) > 0 {
		count = snap.Counts[0]
	}
	res.check("fd-count-exact", math.Abs(float64(count-int64(rows))), 0,
		"snapshot covers %d rows, replay fed %d", count, rows)
	worstMean := 0.0
	for j := range sums {
		if e := relTo(snap.Means[j], sums[j]/float64(rows), 1); e > worstMean {
			worstMean = e
		}
	}
	res.check("fd-mean-exact", worstMean, 1e-9,
		"running means diverge from the exact replay over %d rows", rows)

	// BᵀB from the snapshot's basis rows, AᵀA − BᵀB in spectral norm.
	b := mat.NewMatrix(len(snap.FDRows), w)
	for i, r := range snap.FDRows {
		copy(b.RowView(i), r)
	}
	diff := ata
	if len(snap.FDRows) > 0 {
		btb := b.Gram()
		for i := 0; i < w; i++ {
			dr, br := diff.RowView(i), btb.RowView(i)
			for k := 0; k < w; k++ {
				dr[k] -= br[k]
			}
		}
	}
	eig, err := mat.SymEigen(diff)
	if err != nil {
		res.Checks++
		res.Violations = append(res.Violations, Violation{
			Check: "fd-guarantee", Err: math.Inf(1), Bound: 0,
			Detail: "difference eigendecomposition failed: " + err.Error(),
		})
		return res
	}
	spec := math.Max(math.Abs(eig.Values[0]), math.Abs(eig.Values[w-1]))
	slack := 1e-9 * math.Max(frob, 1)
	res.check("fd-guarantee", spec, snap.FDDelta+slack,
		"‖AᵀA−BᵀB‖₂ %.6g vs Δ %.6g (ℓ=%d, %d basis rows, %d intervals)",
		spec, snap.FDDelta, snap.FDEll, len(snap.FDRows), rows)
	res.check("fd-delta-bound", snap.FDDelta, frob/float64(snap.FDEll)+slack,
		"Δ %.6g vs ‖A‖²_F/ℓ = %.6g/%d", snap.FDDelta, frob, snap.FDEll)
	return res
}
