package oracle

import (
	"fmt"
	"math"

	"streampca/internal/randproj"
	"streampca/internal/vh"
)

// exactTolPerElement scales the exactness tolerances: incremental float error
// grows with the number of elements folded, so the allowed relative error is
// exactTolPerElement·count with a floor of exactTolFloor. At a 4032-interval
// window this allows ~4e-9 — anything past it means a real arithmetic bug
// (the pre-rebase totals drift exceeded 1e-1).
const (
	exactTolPerElement = 1e-12
	exactTolFloor      = 1e-9
)

func exactTol(count int) float64 {
	return math.Max(exactTolFloor, exactTolPerElement*float64(count))
}

// CheckHistogram differentially validates one variance histogram against the
// exact window w, which must have been fed exactly the same (t, x) updates.
//
// The VH's merge step is algebraically exact; only expiry (dropping a whole
// bucket whose oldest element left the window) approximates, and buckets are
// time-ordered, so the histogram's covered element set is precisely the
// Count() most recent elements. Stats over that set are checked to rounding
// error; the variance is additionally checked against the full window per
// Lemma 1: (1−ε)·V ≤ V̂ ≤ V.
func CheckHistogram(h *vh.Histogram, w *Window, g *randproj.Generator, eps float64) Result {
	var res Result
	k := int(h.Count())

	// Coverage: covered ⊆ window, never empty while the window has data.
	if k > w.Len() || (k == 0 && w.Len() > 0) {
		res.Checks++
		res.Violations = append(res.Violations, Violation{
			Check: "vh-coverage", Err: math.Inf(1), Bound: 0,
			Detail: fmt.Sprintf("histogram covers %d elements, window retains %d", k, w.Len()),
		})
		return res
	}
	if k == 0 {
		return res
	}
	tol := exactTol(k)
	meanX, ssX := w.TrailingStats(k)
	sumSq := w.TrailingSumSquares(k)
	rms := math.Sqrt(sumSq / float64(k))

	// Tier 1 — float exactness over the covered set.
	meanHat := h.EstimateMean()
	res.check("vh-mean-exact", relTo(meanHat, meanX, rms), tol,
		"mean %.17g vs exact %.17g over %d covered elements", meanHat, meanX, k)

	varHat := h.EstimateVariance()
	// Anchor the deviation scale to Σx²: roundoff in either computation grows
	// with the raw magnitudes, not with the (possibly cancelling) deviations.
	res.check("vh-var-exact", relTo(varHat, ssX, sumSq), tol,
		"variance %.17g vs exact %.17g (sumsq %.3g, %d covered)", varHat, ssX, sumSq, k)

	if g != nil {
		sk := h.Sketch()
		exact, scale := w.TrailingSketch(g, k, meanHat)
		worst, worstK := 0.0, -1
		for j := range exact {
			e := relTo(sk[j], exact[j], scale[j])
			if e > worst {
				worst, worstK = e, j
			}
		}
		res.check("vh-sketch-exact", worst, tol,
			"sketch direction %d: %.17g vs exact %.17g (%d covered)",
			worstK, at(sk, worstK), at(exact, worstK), k)
	}

	// Lemma 1 — V̂ against the exact full-window variance, relative to V with
	// an absolute slack anchored to Σx²: both sides compute sums of squared
	// deviations whose roundoff scales with the raw magnitudes, so V cannot
	// be resolved below ~ulp·Σx² (constant flows have V = 0 but V̂ ~ ulp²).
	_, fullSS := w.Stats()
	fullSumSq := w.TrailingSumSquares(w.Len())
	denom := math.Max(fullSS, 1e-300)
	slack := 1e-12 * float64(w.Len()) * fullSumSq
	res.check("lemma1-upper", (varHat-fullSS-slack)/denom, tol,
		"Vhat %.17g exceeds exact window V %.17g", varHat, fullSS)
	res.check("lemma1-lower", ((1-eps)*fullSS-slack-varHat)/denom, tol,
		"Vhat %.17g under (1-eps)V = %.17g (eps %.3g)", varHat, (1-eps)*fullSS, eps)
	return res
}

func at(s []float64, i int) float64 {
	if i < 0 || i >= len(s) {
		return math.NaN()
	}
	return s[i]
}
