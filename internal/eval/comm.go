package eval

import "fmt"

// CommModel estimates the communication cost of the distributed deployment,
// quantifying the lazy protocol's contribution (the paper's point that the
// design lets ISPs "balance the computation and the storage … and other
// resources"). Sizes follow the wire types in internal/transport with an
// 8-byte float/int encoding and a small per-message overhead.
type CommModel struct {
	// NumFlows is m, NumMonitors the number of monitors, SketchLen l.
	NumFlows    int
	NumMonitors int
	SketchLen   int
	// PerMessageOverhead models framing/headers; defaults to 64 bytes.
	PerMessageOverhead int
}

// CommCost is the byte count breakdown over an evaluation horizon.
type CommCost struct {
	// VolumeBytes is the mandatory per-interval volume reporting (common
	// to the exact and sketch methods — the NOC needs each x_t either way).
	VolumeBytes int64
	// LazyBytes is the sketch traffic under the lazy protocol (requests +
	// responses for the observed number of fetches).
	LazyBytes int64
	// EagerBytes is the sketch traffic if monitors pushed sketches every
	// interval instead.
	EagerBytes int64
}

// Bytes computes the cost breakdown for a horizon of intervals during which
// the lazy protocol performed fetches sketch pulls.
func (m CommModel) Bytes(intervals, fetches int64) (CommCost, error) {
	if m.NumFlows < 1 || m.NumMonitors < 1 || m.SketchLen < 1 {
		return CommCost{}, fmt.Errorf("%w: comm model %+v", ErrConfig, m)
	}
	if intervals < 0 || fetches < 0 {
		return CommCost{}, fmt.Errorf("%w: intervals %d, fetches %d", ErrConfig, intervals, fetches)
	}
	overhead := int64(m.PerMessageOverhead)
	if overhead == 0 {
		overhead = 64
	}

	// One volume report per monitor per interval: w flow ids + w volumes.
	wPerMon := (m.NumFlows + m.NumMonitors - 1) / m.NumMonitors
	volumeMsg := overhead + int64(wPerMon)*16
	volume := int64(m.NumMonitors) * intervals * volumeMsg

	// One fetch: a request to every monitor plus a response carrying each
	// owned flow's sketch (l floats), mean and id.
	requestMsg := overhead
	responseMsg := overhead + int64(wPerMon)*(int64(m.SketchLen)*8+16)
	perFetch := int64(m.NumMonitors) * (requestMsg + responseMsg)

	return CommCost{
		VolumeBytes: volume,
		LazyBytes:   fetches * perFetch,
		EagerBytes:  intervals * perFetch,
	}, nil
}
