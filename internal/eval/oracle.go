package eval

import (
	"fmt"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/oracle"
	"streampca/internal/randproj"
)

// OracleConfig parameterizes the differential-validation sweep.
type OracleConfig struct {
	// WindowLen is n, SketchLen l, Rank r, Epsilon ε and Alpha the
	// false-alarm rate — the same knobs the streaming pipeline takes.
	WindowLen int
	SketchLen int
	Rank      int
	Epsilon   float64
	Alpha     float64
	// Seed feeds the shared projection generator.
	Seed uint64
	// Every samples one oracle pass out of this many intervals; ≤ 0
	// selects 16.
	Every int
}

// OracleRow is the outcome of one oracle scenario: a full streaming stack
// (per-flow variance histograms plus the lazy detector) driven over the
// workload under one projection family, differentially validated against
// the exact references on sampled intervals.
type OracleRow struct {
	Dist       randproj.Distribution
	SketchLen  int
	Checks     int
	Violations int
	MaxRelErr  float64
	// Worst is the worst violation's description, empty when all passed.
	Worst string
}

// OracleSweep runs the oracle scenario for every projection family and
// returns one row each. Any violation marks a numerical-correctness bug in
// the pipeline (or a miscalibrated bound), not a statistical miss.
func OracleSweep(volumes *mat.Matrix, cfg OracleConfig) ([]OracleRow, error) {
	if cfg.Every <= 0 {
		cfg.Every = 16
	}
	dists := []randproj.Distribution{
		randproj.Gaussian, randproj.TugOfWar, randproj.Sparse, randproj.VerySparse,
	}
	rows := make([]OracleRow, 0, len(dists))
	for _, dist := range dists {
		res, err := oracleScenario(volumes, cfg, dist)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", dist, err)
		}
		row := OracleRow{
			Dist:       dist,
			SketchLen:  cfg.SketchLen,
			Checks:     res.Checks,
			Violations: len(res.Violations),
			MaxRelErr:  res.MaxRelErr,
		}
		if w := res.Worst(); w != nil {
			row.Worst = w.String()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// oracleScenario drives one full pipeline over the workload and merges every
// sampled oracle pass. It reuses the same Checker type the -selfcheck
// daemons embed, so the eval exercises the production validation path.
func oracleScenario(volumes *mat.Matrix, cfg OracleConfig, dist randproj.Distribution) (oracle.Result, error) {
	var total oracle.Result
	T, m := volumes.Rows(), volumes.Cols()
	gen, err := randproj.NewGenerator(randproj.Config{
		Seed: cfg.Seed, SketchLen: cfg.SketchLen, Dist: dist,
		SparseS: 3, WindowLen: cfg.WindowLen,
	})
	if err != nil {
		return total, err
	}
	flowIDs := make([]int, m)
	for j := range flowIDs {
		flowIDs[j] = j
	}
	mon, err := core.NewMonitor(core.MonitorConfig{
		FlowIDs: flowIDs, WindowLen: cfg.WindowLen, Epsilon: cfg.Epsilon, Gen: gen,
	})
	if err != nil {
		return total, err
	}
	det, err := core.NewDetector(core.DetectorConfig{
		NumFlows: m, WindowLen: cfg.WindowLen, SketchLen: cfg.SketchLen,
		Alpha: cfg.Alpha, Mode: core.RankFixed, FixedRank: cfg.Rank,
	})
	if err != nil {
		return total, err
	}
	monChk, err := oracle.NewChecker(oracle.CheckerConfig{
		Every: cfg.Every, WindowLen: cfg.WindowLen, Epsilon: cfg.Epsilon,
		Gen: gen, NumFlows: m, Component: "monitor",
	})
	if err != nil {
		return total, err
	}
	nocChk, err := oracle.NewChecker(oracle.CheckerConfig{
		Every: cfg.Every, WindowLen: cfg.WindowLen, Epsilon: cfg.Epsilon,
		Alpha: cfg.Alpha, Gen: gen, NumFlows: m, Component: "noc",
	})
	if err != nil {
		return total, err
	}
	fetch := func() (core.Fetch, error) {
		rep := mon.Report()
		return core.Fetch{Sketches: rep.Sketches, Means: rep.Means, Interval: rep.Interval}, nil
	}
	x := make([]float64, m)
	for i := 0; i < T; i++ {
		t := int64(i + 1)
		copy(x, volumes.RowView(i))
		if err := mon.Update(t, x); err != nil {
			return total, err
		}
		total.Merge(monChk.ObserveMonitor(t, x, mon))
		if t < int64(cfg.WindowLen) {
			nocChk.ObserveNOC(t, x, core.Decision{ThresholdUnavailable: true}, nil)
			continue
		}
		dec, err := det.Observe(x, fetch)
		if err != nil {
			return total, err
		}
		if res, ok := nocChk.ObserveNOC(t, x, dec, det.Model()); ok {
			total.Merge(res)
		}
	}
	return total, nil
}
