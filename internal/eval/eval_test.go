package eval

import (
	"errors"
	"math"
	"testing"

	"streampca/internal/randproj"
	"streampca/internal/traffic"
)

// testTrace builds a small-network trace with injected anomalies: a few
// coordinated shifts plus one high-profile spike.
func testTrace(t *testing.T) *traffic.Trace {
	t.Helper()
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		Routers:         []string{"A", "B", "C", "D"},
		NumIntervals:    480,
		IntervalsPerDay: 96,
		Seed:            77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectCoordinated([]int{1, 6, 11}, 300, 305, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectSpike(2, 380, 382, 6); err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectCoordinated([]int{3, 7, 13, 14}, 430, 434, 1.2); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGroundTruthBasics(t *testing.T) {
	tr := testTrace(t)
	truth, err := GroundTruth(tr.Volumes, TruthConfig{
		WindowLen: 128, Rank: 4, Alpha: 0.01, RefitEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Ready) != tr.NumIntervals() {
		t.Fatalf("ready len = %d", len(truth.Ready))
	}
	for i := 0; i < 127; i++ {
		if truth.Ready[i] {
			t.Fatalf("ready during warmup at %d", i)
		}
	}
	if !truth.Ready[127] || !truth.Ready[tr.NumIntervals()-1] {
		t.Fatal("truth must be ready once the window fills")
	}
	if truth.NumAnomalous+truth.NumNormal != tr.NumIntervals()-127 {
		t.Fatal("counts must cover all ready intervals")
	}
	if truth.NumAnomalous == 0 {
		t.Fatal("injected anomalies produced no exact detections")
	}
	// The exact method should flag at least part of each injection window.
	covered := 0
	for _, inj := range tr.Injections {
		for i := inj.Start; i < inj.End; i++ {
			if truth.Ready[i] && truth.Anomalous[i] {
				covered++
				break
			}
		}
	}
	if covered < 2 {
		t.Fatalf("exact method flagged only %d of %d injections", covered, len(tr.Injections))
	}
	// Alarm rate on un-injected intervals stays moderate.
	labels := tr.Labels()
	var fp, normals int
	for i, ready := range truth.Ready {
		if !ready || labels[i] {
			continue
		}
		normals++
		if truth.Anomalous[i] {
			fp++
		}
	}
	if rate := float64(fp) / float64(normals); rate > 0.2 {
		t.Fatalf("exact false-positive rate vs injections = %v", rate)
	}
}

func TestGroundTruthValidation(t *testing.T) {
	tr := testTrace(t)
	cases := []TruthConfig{
		{WindowLen: 1, Rank: 2, Alpha: 0.01},
		{WindowLen: 100000, Rank: 2, Alpha: 0.01},
		{WindowLen: 64, Rank: -1, Alpha: 0.01},
		{WindowLen: 64, Rank: 99, Alpha: 0.01},
		{WindowLen: 64, Rank: 2, Alpha: 0},
		{WindowLen: 64, Rank: 2, Alpha: 0.01, RefitEvery: -2},
	}
	for i, cfg := range cases {
		if _, err := GroundTruth(tr.Volumes, cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: want ErrConfig, got %v", i, err)
		}
	}
}

func TestSweepErrorsAgainstTruth(t *testing.T) {
	tr := testTrace(t)
	truth, err := GroundTruth(tr.Volumes, TruthConfig{
		WindowLen: 128, Rank: 4, Alpha: 0.01, RefitEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepErrors(tr.Volumes, truth, SweepConfig{
		WindowLen:  128,
		Epsilon:    0.01,
		Alpha:      0.01,
		Seed:       9,
		Ranks:      []int{1, 2, 3, 4, 5, 6},
		SketchLens: []int{8, 32, 128},
		RefitEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 18 {
		t.Fatalf("points = %d, want 18", len(points))
	}
	byKey := make(map[[2]int]ErrorPoint, len(points))
	for _, p := range points {
		if p.TypeI < 0 || p.TypeI > 1 || p.TypeII < 0 || p.TypeII > 1 {
			t.Fatalf("error rates out of range: %+v", p)
		}
		if p.TrueAnomalies != truth.NumAnomalous || p.TrueNormals != truth.NumNormal {
			t.Fatalf("count mismatch: %+v vs truth %d/%d", p, truth.NumAnomalous, truth.NumNormal)
		}
		byKey[[2]int{p.Rank, p.SketchLen}] = p
	}
	// The paper's Fig. 9 shape: with r matching the truth rank, a longer
	// sketch should not be (much) worse than a tiny one, and at l = 128 the
	// approximation should track the exact method closely.
	small := byKey[[2]int{4, 8}]
	large := byKey[[2]int{4, 128}]
	if large.TypeI+large.TypeII > small.TypeI+small.TypeII+0.1 {
		t.Fatalf("errors grew with sketch length: l=8 %v/%v, l=128 %v/%v",
			small.TypeI, small.TypeII, large.TypeI, large.TypeII)
	}
	if large.TypeI > 0.15 || large.TypeII > 0.5 {
		t.Fatalf("large-sketch errors too high: TypeI=%v TypeII=%v", large.TypeI, large.TypeII)
	}
}

// §V-B claims the Gaussian and sparse families "give the same result": the
// error rates across projection distributions must agree closely at a
// moderate sketch length.
func TestSweepDistributionEquivalence(t *testing.T) {
	tr := testTrace(t)
	truth, err := GroundTruth(tr.Volumes, TruthConfig{
		WindowLen: 128, Rank: 4, Alpha: 0.01, RefitEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SweepConfig{
		WindowLen: 128, Epsilon: 0.01, Alpha: 0.01, Seed: 77,
		Ranks: []int{4}, SketchLens: []int{96}, RefitEvery: 8,
	}
	results := make(map[randproj.Distribution]ErrorPoint, 4)
	for _, dist := range []randproj.Distribution{
		randproj.Gaussian, randproj.TugOfWar, randproj.Sparse, randproj.VerySparse,
	} {
		cfg := base
		cfg.Dist = dist
		points, err := SweepErrors(tr.Volumes, truth, cfg)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		results[dist] = points[0]
	}
	ref := results[randproj.Gaussian]
	for dist, p := range results {
		if math.Abs(p.TypeI-ref.TypeI) > 0.12 || math.Abs(p.TypeII-ref.TypeII) > 0.25 {
			t.Fatalf("%v diverges from gaussian: TypeI %v vs %v, TypeII %v vs %v",
				dist, p.TypeI, ref.TypeI, p.TypeII, ref.TypeII)
		}
	}
}

func TestSweepErrorsValidation(t *testing.T) {
	tr := testTrace(t)
	truth, err := GroundTruth(tr.Volumes, TruthConfig{WindowLen: 128, Rank: 4, Alpha: 0.01, RefitEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := SweepConfig{
		WindowLen: 128, Epsilon: 0.01, Alpha: 0.01, Seed: 1,
		Ranks: []int{2}, SketchLens: []int{8},
	}
	if _, err := SweepErrors(tr.Volumes, nil, base); !errors.Is(err, ErrInput) {
		t.Fatalf("nil truth: %v", err)
	}
	bad := base
	bad.Ranks = nil
	if _, err := SweepErrors(tr.Volumes, truth, bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("no ranks: %v", err)
	}
	bad = base
	bad.Ranks = []int{99}
	if _, err := SweepErrors(tr.Volumes, truth, bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("rank too big: %v", err)
	}
	bad = base
	bad.RefitEvery = -1
	if _, err := SweepErrors(tr.Volumes, truth, bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad cadence: %v", err)
	}
}

func TestOverhead(t *testing.T) {
	pts, err := Overhead(81, 4032, []int{10, 100, 1000}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.LakhinaOps != 81*81*4032 {
			t.Fatalf("lakhina ops = %v", p.LakhinaOps)
		}
		if p.SketchOps != 81*81*float64(p.SketchLen) {
			t.Fatalf("sketch ops = %v", p.SketchOps)
		}
		if p.SketchOps >= p.LakhinaOps {
			t.Fatal("sketch must be cheaper for l < n")
		}
	}
	// Measured mode produces timings with the same ordering.
	m, err := Overhead(20, 500, []int{10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if m[0].LakhinaNs <= 0 || m[0].SketchNs <= 0 {
		t.Fatalf("timings = %+v", m[0])
	}
	if _, err := Overhead(0, 10, []int{1}, false); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad m: %v", err)
	}
	if _, err := Overhead(5, 10, nil, false); !errors.Is(err, ErrConfig) {
		t.Fatalf("no lengths: %v", err)
	}
	if _, err := Overhead(5, 10, []int{0}, false); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad length: %v", err)
	}
}

func TestCheckBounds(t *testing.T) {
	tr := testTrace(t)
	rep, err := CheckBounds(tr.Volumes, 128, 256, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range rep.SingularRatios {
		if r < 0.6 || r > 1.4 {
			t.Fatalf("singular ratio %d = %v, want ≈1", j, r)
		}
	}
	if rep.CovRelError < 0 || rep.CovRelError > 1 {
		t.Fatalf("covariance relative error = %v", rep.CovRelError)
	}
	if rep.MeanDistRelError > 0.5 {
		t.Fatalf("mean distance error = %v", rep.MeanDistRelError)
	}
	if rep.MaxDistRelError < rep.MeanDistRelError {
		t.Fatal("max must dominate mean")
	}
	if math.IsNaN(rep.SpectralGap) {
		t.Fatal("spectral gap NaN")
	}
	if _, err := CheckBounds(tr.Volumes, 1, 10, 2, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad window: %v", err)
	}
	if _, err := CheckBounds(tr.Volumes, 64, 10, 0, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad rank: %v", err)
	}
}

func TestBoundsTightenWithSketchLength(t *testing.T) {
	tr := testTrace(t)
	loose, err := CheckBounds(tr.Volumes, 128, 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := CheckBounds(tr.Volumes, 128, 512, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tight.MeanDistRelError > loose.MeanDistRelError+0.05 {
		t.Fatalf("distance error did not tighten: l=8 %v, l=512 %v",
			loose.MeanDistRelError, tight.MeanDistRelError)
	}
}

func TestExtractSeriesAndFig5(t *testing.T) {
	tr, start, end, err := BuildFig5Trace(3, 960)
	if err != nil {
		t.Fatal(err)
	}
	if start <= 0 || end <= start || end > tr.NumIntervals() {
		t.Fatalf("anomaly window [%d,%d)", start, end)
	}
	series, err := ExtractSeries(tr, Fig5Flows, start-20, end+20)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Each flow's mean during the anomaly exceeds its mean before it.
	for _, s := range series {
		pre := s.Values[:20]
		mid := s.Values[20 : 20+(end-start)]
		var preMean, midMean float64
		for _, v := range pre {
			preMean += v
		}
		preMean /= float64(len(pre))
		for _, v := range mid {
			midMean += v
		}
		midMean /= float64(len(mid))
		if midMean <= preMean*1.2 {
			t.Fatalf("%s: anomaly not visible (pre %v, during %v)", s.Name, preMean, midMean)
		}
	}
	if _, err := ExtractSeries(tr, []string{"NOPE→X"}, 0, 10); err == nil {
		t.Fatal("unknown flow must fail")
	}
	if _, err := ExtractSeries(tr, Fig5Flows, 10, 5); !errors.Is(err, ErrInput) {
		t.Fatalf("bad range: %v", err)
	}
	if _, err := ExtractSeries(tr, nil, 0, 10); !errors.Is(err, ErrInput) {
		t.Fatalf("no flows: %v", err)
	}
}
