package eval

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCommModelBytes(t *testing.T) {
	m := CommModel{NumFlows: 81, NumMonitors: 9, SketchLen: 200}
	cost, err := m.Bytes(1000, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cost.VolumeBytes <= 0 || cost.LazyBytes <= 0 || cost.EagerBytes <= 0 {
		t.Fatalf("cost = %+v", cost)
	}
	// Lazy/eager ratio equals fetches/intervals.
	wantRatio := 25.0 / 1000.0
	gotRatio := float64(cost.LazyBytes) / float64(cost.EagerBytes)
	if gotRatio != wantRatio {
		t.Fatalf("lazy/eager = %v, want %v", gotRatio, wantRatio)
	}
}

func TestCommModelValidation(t *testing.T) {
	bad := []CommModel{
		{NumMonitors: 1, SketchLen: 1},
		{NumFlows: 1, SketchLen: 1},
		{NumFlows: 1, NumMonitors: 1},
	}
	for i, m := range bad {
		if _, err := m.Bytes(1, 1); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: want ErrConfig, got %v", i, err)
		}
	}
	ok := CommModel{NumFlows: 1, NumMonitors: 1, SketchLen: 1}
	if _, err := ok.Bytes(-1, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative intervals: %v", err)
	}
	if _, err := ok.Bytes(0, -1); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative fetches: %v", err)
	}
}

// Property: costs are monotone in every count and lazy ≤ eager whenever
// fetches ≤ intervals.
func TestQuickCommMonotone(t *testing.T) {
	f := func(flowsRaw, monsRaw, lRaw uint8, intervalsRaw, fetchesRaw uint16) bool {
		m := CommModel{
			NumFlows:    1 + int(flowsRaw)%100,
			NumMonitors: 1,
			SketchLen:   1 + int(lRaw)%500,
		}
		m.NumMonitors = 1 + int(monsRaw)%minOf(m.NumFlows, 16)
		if m.NumMonitors > m.NumFlows {
			m.NumMonitors = m.NumFlows
		}
		intervals := int64(intervalsRaw)
		fetches := int64(fetchesRaw)
		if fetches > intervals {
			fetches = intervals
		}
		cost, err := m.Bytes(intervals, fetches)
		if err != nil {
			return false
		}
		if cost.LazyBytes > cost.EagerBytes {
			return false
		}
		bigger, err := m.Bytes(intervals+1, fetches)
		if err != nil {
			return false
		}
		return bigger.VolumeBytes >= cost.VolumeBytes && bigger.EagerBytes >= cost.EagerBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func minOf(a, b int) int {
	if a < b {
		return a
	}
	return b
}
