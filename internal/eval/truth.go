// Package eval implements the paper's evaluation protocol (§VI) over the
// synthetic Abilene substrate:
//
//   - ground-truth labeling: run the exact Lakhina method with a fixed
//     reference rank r* and treat its detections as the "real" anomalies,
//     exactly as the paper does;
//   - Type I / Type II error computation for the sketch-based detector
//     across (r, l) grids (Figs. 7–9);
//   - the NOC computation-overhead comparison m²·n vs m²·l (Fig. 10),
//     both as the paper's operation counts and as measured wall time;
//   - empirical checks of the error bounds (Lemmas 5–6, Theorem 2).
package eval

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/mat"
	"streampca/internal/pca"
	"streampca/internal/stats"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid evaluation configuration.
	ErrConfig = errors.New("eval: invalid configuration")
	// ErrInput indicates structurally invalid data.
	ErrInput = errors.New("eval: invalid input")
)

// TruthConfig parameterizes ground-truth labeling with the exact method.
type TruthConfig struct {
	// WindowLen is n (the paper uses two weeks of intervals).
	WindowLen int
	// Rank is the reference normal-subspace size r* used to define truth.
	Rank int
	// Alpha is the Q-statistic false-alarm rate (paper: 0.01).
	Alpha float64
	// RefitEvery is the exact method's retraining cadence; 0 → 1 (every
	// interval, the paper's cost model).
	RefitEvery int
}

// Truth holds per-interval ground-truth labels from the exact method.
type Truth struct {
	// Ready[i] is true once the window was full at interval i; labels are
	// only meaningful where Ready.
	Ready []bool
	// Anomalous[i] is the exact method's verdict.
	Anomalous []bool
	// Distances and Thresholds record the exact detector's outputs.
	Distances  []float64
	Thresholds []float64
	// NumAnomalous and NumNormal count labeled intervals.
	NumAnomalous int
	NumNormal    int
}

// GroundTruth runs the exact Lakhina method over the volume matrix
// (rows = intervals) using incremental sliding-window PCA, producing the
// labels the sketch method is scored against.
func GroundTruth(volumes *mat.Matrix, cfg TruthConfig) (*Truth, error) {
	n := cfg.WindowLen
	rows, m := volumes.Rows(), volumes.Cols()
	if n < 2 || n > rows {
		return nil, fmt.Errorf("%w: window %d over %d intervals", ErrConfig, n, rows)
	}
	if cfg.Rank < 0 || cfg.Rank > m {
		return nil, fmt.Errorf("%w: rank %d with %d flows", ErrConfig, cfg.Rank, m)
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("%w: alpha %v", ErrConfig, cfg.Alpha)
	}
	refit := cfg.RefitEvery
	if refit == 0 {
		refit = 1
	}
	if refit < 0 {
		return nil, fmt.Errorf("%w: refit cadence %d", ErrConfig, cfg.RefitEvery)
	}

	inc, err := pca.NewIncremental(n, m)
	if err != nil {
		return nil, err
	}
	truth := &Truth{
		Ready:      make([]bool, rows),
		Anomalous:  make([]bool, rows),
		Distances:  make([]float64, rows),
		Thresholds: make([]float64, rows),
	}
	var det *pca.Detector
	sinceRefit := refit // force a fit at the first full window
	for i := 0; i < rows; i++ {
		row := volumes.RowView(i)
		if err := inc.Push(row); err != nil {
			return nil, fmt.Errorf("interval %d: %w", i, err)
		}
		if !inc.Full() {
			continue
		}
		sinceRefit++
		if det == nil || sinceRefit >= refit {
			model, err := inc.Model()
			if err != nil {
				return nil, fmt.Errorf("interval %d: %w", i, err)
			}
			det, err = pca.NewDetector(model, cfg.Rank, cfg.Alpha)
			if errors.Is(err, stats.ErrDegenerate) {
				// No usable control limit on this window's residual spectrum:
				// label the intervals "normal" via a +Inf threshold (recorded
				// as such in Thresholds) rather than aborting the labeling.
				det, err = pca.NewDetectorThreshold(model, cfg.Rank, math.Inf(1))
			}
			if err != nil {
				return nil, fmt.Errorf("interval %d: %w", i, err)
			}
			sinceRefit = 0
		}
		bad, dist, err := det.IsAnomalous(row)
		if err != nil {
			return nil, fmt.Errorf("interval %d: %w", i, err)
		}
		truth.Ready[i] = true
		truth.Anomalous[i] = bad
		truth.Distances[i] = dist
		truth.Thresholds[i] = det.Threshold()
		if bad {
			truth.NumAnomalous++
		} else {
			truth.NumNormal++
		}
	}
	return truth, nil
}
