package eval

import (
	"errors"
	"testing"

	"streampca/internal/traffic"
)

// identifyTestTrace builds the labeled attack workload at test scale:
// 4 routers (m=16), 480 intervals, warmup 128.
func identifyTestTrace(t *testing.T) *traffic.Trace {
	t.Helper()
	tr, err := BuildIdentifyTrace(31, 480, 96, 128, []string{"A", "B", "C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func identifyTestConfig() IdentifyConfig {
	return IdentifyConfig{
		WindowLen: 128, Epsilon: 0.01, Alpha: 0.01, Seed: 9,
		SketchLen: 64, Rank: 4, NumMonitors: 4, FDMonitors: 1, MaxK: 8,
		PCP: true, PCPFrom: 128,
	}
}

func TestIdentifySuiteScoresAllVariants(t *testing.T) {
	tr := identifyTestTrace(t)
	rows, err := IdentifySuite(tr, identifyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	wantVariants := []string{"randproj+jacobi", "fd", "pcp-offline"}
	for i, row := range rows {
		t.Logf("%s: scored=%d missed=%d false=%d p@1=%.3f p@3=%.3f recall=%.3f explained=%.3f culprits=%.1f",
			row.Variant, row.Scored, row.Missed, row.FalseAlarms,
			row.Precision1, row.Precision3, row.Recall, row.MeanExplained, row.MeanCulprits)
		for _, ks := range row.Kinds {
			t.Logf("  %s: scored=%d missed=%d p@3=%.3f recall=%.3f",
				ks.Kind, ks.Scored, ks.Missed, ks.Precision3, ks.Recall)
		}
		if row.Variant != wantVariants[i] {
			t.Fatalf("row %d variant %q, want %q", i, row.Variant, wantVariants[i])
		}
		if row.Scored == 0 {
			t.Fatalf("%s scored no intervals", row.Variant)
		}
		if row.Precision1 < 0 || row.Precision1 > 1 || row.Precision3 < 0 || row.Precision3 > 1 ||
			row.Recall < 0 || row.Recall > 1 {
			t.Fatalf("%s scores out of range: %+v", row.Variant, row)
		}
	}
}

// TestIdentifyPrecisionSingleFlowScenarios is the satellite property test:
// on single-flow injections (the spike/DDoS shape and the low-and-slow
// exfiltration) the pursuit must name the injected flow with precision@k
// ≥ 0.8, for both sketcher families.
func TestIdentifyPrecisionSingleFlowScenarios(t *testing.T) {
	tr := identifyTestTrace(t)
	rows, err := IdentifySuite(tr, identifyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[:2] { // the two online families
		kinds := map[string]IdentifyKindScore{}
		for _, ks := range row.Kinds {
			kinds[ks.Kind] = ks
		}
		for _, kind := range []string{"spike", "exfil"} {
			ks, ok := kinds[kind]
			if !ok || ks.Scored == 0 {
				t.Fatalf("%s never alarmed on a %s interval", row.Variant, kind)
			}
			if ks.Precision3 < 0.8 {
				t.Errorf("%s %s precision@3 = %.3f, want >= 0.8", row.Variant, kind, ks.Precision3)
			}
			if ks.Recall < 0.8 {
				t.Errorf("%s %s recall = %.3f, want >= 0.8", row.Variant, kind, ks.Recall)
			}
		}
	}
}

// TestIdentifyFlashCrowdDDoSSameCulprits asserts the disambiguation pair:
// flash crowd and DDoS hit the same destination, so identification must
// recover the same flow set for both (high recall on each).
func TestIdentifyFlashCrowdDDoSSameCulprits(t *testing.T) {
	tr := identifyTestTrace(t)
	rows, err := IdentifySuite(tr, identifyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[:2] {
		for _, ks := range row.Kinds {
			if ks.Kind != "ddos" && ks.Kind != "flash-crowd" {
				continue
			}
			if ks.Scored == 0 {
				t.Fatalf("%s never alarmed on a %s interval", row.Variant, ks.Kind)
			}
			if ks.Precision3 < 0.6 {
				t.Errorf("%s %s precision@3 = %.3f, want >= 0.6", row.Variant, ks.Kind, ks.Precision3)
			}
		}
	}
}

func TestIdentifySuiteValidation(t *testing.T) {
	tr := identifyTestTrace(t)
	cfg := identifyTestConfig()
	cfg.NumMonitors = 0
	if _, err := IdentifySuite(tr, cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero monitors: %v", err)
	}
	clean, err := traffic.Generate(traffic.GeneratorConfig{
		Routers: []string{"A", "B"}, NumIntervals: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IdentifySuite(clean, identifyTestConfig()); !errors.Is(err, ErrInput) {
		t.Fatalf("unlabeled trace: %v", err)
	}
	cfg = identifyTestConfig()
	cfg.PCPFrom = 10_000
	if _, err := IdentifySuite(tr, cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("pcp-from out of range: %v", err)
	}
	if _, err := BuildIdentifyTrace(1, 140, 96, 128, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("too-short trace: %v", err)
	}
}
