package eval

import (
	"fmt"

	"streampca/internal/traffic"
)

// Series is one named time series of a figure.
type Series struct {
	Name   string
	Values []float64
}

// ExtractSeries pulls per-interval volume series for the named OD flows over
// [from, to) — the Fig. 5 view of a coordinated anomaly.
func ExtractSeries(tr *traffic.Trace, flowNames []string, from, to int) ([]Series, error) {
	if from < 0 || to > tr.NumIntervals() || from >= to {
		return nil, fmt.Errorf("%w: range [%d,%d) of %d", ErrInput, from, to, tr.NumIntervals())
	}
	if len(flowNames) == 0 {
		return nil, fmt.Errorf("%w: no flows named", ErrInput)
	}
	out := make([]Series, 0, len(flowNames))
	for _, name := range flowNames {
		j, err := tr.FlowIndex(name)
		if err != nil {
			return nil, err
		}
		s := Series{Name: name, Values: make([]float64, 0, to-from)}
		for i := from; i < to; i++ {
			s.Values = append(s.Values, tr.Volumes.At(i, j))
		}
		out = append(out, s)
	}
	return out, nil
}

// BuildEvalTrace generates the workload used for the error-surface figures:
// a month-shaped trace with a deterministic schedule of injected anomalies —
// coordinated low-profile shifts (the paper's target), high-profile spikes
// and one flash crowd — spread across the post-warmup region.
func BuildEvalTrace(seed int64, numIntervals, perDay, warmup int) (*traffic.Trace, error) {
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		NumIntervals:    numIntervals,
		IntervalsPerDay: perDay,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	usable := numIntervals - warmup
	if usable < 40 {
		return nil, fmt.Errorf("%w: only %d post-warmup intervals", ErrConfig, usable)
	}
	m := tr.NumFlows()
	dur := perDay / 96 // ~15 min of anomaly per event
	if dur < 2 {
		dur = 2
	}
	// Eight events, evenly spaced through the evaluation region.
	for e := 0; e < 8; e++ {
		start := warmup + (e*2+1)*usable/17
		end := start + dur
		if end > numIntervals {
			break
		}
		switch e % 4 {
		case 0, 2:
			flows := []int{(7 * e) % m, (13*e + 5) % m, (29*e + 11) % m, (41*e + 17) % m}
			flows = dedupeInts(flows)
			if err := tr.InjectCoordinated(flows, start, end, 0.8); err != nil {
				return nil, err
			}
		case 1:
			if err := tr.InjectSpike((11*e+3)%m, start, end, 5); err != nil {
				return nil, err
			}
		case 3:
			if err := tr.InjectFlashCrowd(e%len(tr.RouterNames), start, end, 2); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}

// dedupeInts removes duplicates preserving order.
func dedupeInts(in []int) []int {
	seen := make(map[int]struct{}, len(in))
	out := in[:0]
	for _, v := range in {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Fig5Flows lists the OD flows the paper plots in Fig. 5.
var Fig5Flows = []string{"ATLA→CHIC", "CHIC→KANS", "CHIC→SALT", "SEAT→SALT"}

// BuildFig5Trace generates a trace with one coordinated low-profile anomaly
// across the Fig. 5 flows and returns it together with the anomaly window.
func BuildFig5Trace(seed int64, numIntervals int) (*traffic.Trace, int, int, error) {
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		NumIntervals: numIntervals,
		Seed:         seed,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	flows := make([]int, 0, len(Fig5Flows))
	for _, name := range Fig5Flows {
		j, err := tr.FlowIndex(name)
		if err != nil {
			return nil, 0, 0, err
		}
		flows = append(flows, j)
	}
	start := numIntervals * 3 / 4
	end := start + numIntervals/48
	if end <= start {
		end = start + 1
	}
	// Low-profile: +60% of each flow's baseline, simultaneous — individually
	// unremarkable, jointly a correlated shift (the paper's Fig. 5 shape).
	if err := tr.InjectCoordinated(flows, start, end, 0.6); err != nil {
		return nil, 0, 0, err
	}
	return tr, start, end, nil
}
