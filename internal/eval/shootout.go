package eval

import (
	"fmt"
	"time"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/oracle"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
)

// ShootoutConfig parameterizes the three-family comparison: the same trace
// and ground truth drive randproj+jacobi (the paper's pipeline),
// randproj+rsvd (randomized range-finder model build) and fd (Frequent
// Directions) once each.
type ShootoutConfig struct {
	// WindowLen, Epsilon, Alpha as in the paper.
	WindowLen int
	Epsilon   float64
	Alpha     float64
	// Seed feeds the shared projection generator and the rSVD test matrix.
	Seed uint64
	// SketchLen is the random-projection l (both randproj variants).
	SketchLen int
	// FDEll is the per-monitor Frequent Directions basis budget ℓ; 0 selects
	// sketch.DefaultEll of each monitor's flow count (NumMonitors must then
	// divide the flow count evenly).
	FDEll int
	// Rank is the fixed normal-subspace size r.
	Rank int
	// NumMonitors partitions the flows round-robin, as the cluster does.
	NumMonitors int
	// Workers bounds the retrain kernels' goroutines (0 = all CPUs).
	Workers int
	// Oracle enables the per-family differential validation: the randproj
	// variants run the sampled exact-batch model oracle (the -selfcheck
	// path), the FD variant replays every monitor's centered stream and
	// asserts the deterministic ‖AᵀA−BᵀB‖₂ ≤ Δ ≤ ‖A‖²_F/ℓ guarantee.
	Oracle bool
	// OracleEvery samples one randproj model check out of this many
	// intervals; ≤ 0 selects 16.
	OracleEvery int
}

// ShootoutRow is one variant's scorecard: detection accuracy against the
// ground truth, the space one full sketch pull costs, and the measured
// retrain bill of the lazy protocol.
type ShootoutRow struct {
	// Variant names the combination, e.g. "randproj+jacobi".
	Variant string
	Family  sketch.Family
	Builder core.ModelBuilder
	// SketchParam is the family's size knob: l for randproj, ℓ for fd.
	SketchParam int
	// TypeI = false alarms / true normals, TypeII = misses / true anomalies
	// (paper §VI definitions), with the raw counts backing them.
	TypeI, TypeII float64
	FalseAlarms   int
	Misses        int
	TrueNormals   int
	TrueAnomalies int
	// ThresholdUnavail counts scored intervals on which the variant was
	// blind (degenerate residual spectrum, no usable δ).
	ThresholdUnavail int
	// Retrains is the number of sketch pulls the lazy protocol issued;
	// RetrainNanos the wall time of the observations that included one
	// (fetch + model rebuild + re-evaluation).
	Retrains     int64
	RetrainNanos int64
	// SketchBytes sizes one full sketch pull at the end of the trace: every
	// float64 the monitors ship — the per-retrain network cost and the
	// NOC-side memory the model build reads.
	SketchBytes int64
	// Oracle outcome (zero unless ShootoutConfig.Oracle).
	OracleChecks     int
	OracleViolations int
	OracleMaxRelErr  float64
	OracleWorst      string
}

// Shootout runs the three sketcher/builder variants over the same trace
// against the same ground truth and returns one row each, in the fixed order
// randproj+jacobi, randproj+rsvd, fd.
func Shootout(volumes *mat.Matrix, truth *Truth, cfg ShootoutConfig) ([]ShootoutRow, error) {
	if truth == nil || len(truth.Ready) != volumes.Rows() {
		return nil, fmt.Errorf("%w: truth does not match the volume matrix", ErrInput)
	}
	if cfg.NumMonitors < 1 {
		return nil, fmt.Errorf("%w: %d monitors", ErrConfig, cfg.NumMonitors)
	}
	variants := []struct {
		name    string
		family  sketch.Family
		builder core.ModelBuilder
	}{
		{"randproj+jacobi", sketch.FamilyRandProj, core.BuildJacobi},
		{"randproj+rsvd", sketch.FamilyRandProj, core.BuildRSVD},
		{"fd", sketch.FamilyFD, core.BuildJacobi},
	}
	out := make([]ShootoutRow, 0, len(variants))
	for _, v := range variants {
		row, err := shootoutVariant(volumes, truth, cfg, v.name, v.family, v.builder)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// shootoutVariant drives one in-process cluster over the trace, scoring every
// truth-ready interval and timing the refresh observations.
func shootoutVariant(volumes *mat.Matrix, truth *Truth, cfg ShootoutConfig, name string, family sketch.Family, builder core.ModelBuilder) (ShootoutRow, error) {
	m := volumes.Cols()
	row := ShootoutRow{Variant: name, Family: family, Builder: builder}
	ccfg := core.ClusterConfig{
		NumFlows:    m,
		NumMonitors: cfg.NumMonitors,
		WindowLen:   cfg.WindowLen,
		Epsilon:     cfg.Epsilon,
		Alpha:       cfg.Alpha,
		Family:      family,
		Mode:        core.RankFixed,
		FixedRank:   cfg.Rank,
		Workers:     cfg.Workers,
	}
	if family == sketch.FamilyFD {
		ccfg.FDEll = cfg.FDEll
		row.SketchParam = cfg.FDEll
		if row.SketchParam == 0 && cfg.NumMonitors > 0 && m%cfg.NumMonitors == 0 {
			row.SketchParam = sketch.DefaultEll(m / cfg.NumMonitors)
		}
	} else {
		ccfg.Sketch = randproj.Config{Seed: cfg.Seed, SketchLen: cfg.SketchLen, WindowLen: cfg.WindowLen}
		ccfg.Builder = builder
		ccfg.RSVDSeed = cfg.Seed
		row.SketchParam = cfg.SketchLen
	}
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		return row, err
	}

	var chk *oracle.Checker
	var ores oracle.Result
	if cfg.Oracle && family == sketch.FamilyRandProj {
		every := cfg.OracleEvery
		if every <= 0 {
			every = 16
		}
		chk, err = oracle.NewChecker(oracle.CheckerConfig{
			Every: every, WindowLen: cfg.WindowLen, Epsilon: cfg.Epsilon,
			Alpha: cfg.Alpha, SketchLen: cfg.SketchLen, NumFlows: m,
			Component: "shootout",
		})
		if err != nil {
			return row, err
		}
	}

	det := cl.Detector()
	x := make([]float64, m)
	for i := 0; i < volumes.Rows(); i++ {
		t := int64(i + 1)
		copy(x, volumes.RowView(i))
		if err := cl.Update(t, x); err != nil {
			return row, err
		}
		if !cl.Warm() {
			if chk != nil {
				chk.ObserveNOC(t, x, core.Decision{ThresholdUnavailable: true}, nil)
			}
			continue
		}
		start := time.Now()
		dec, err := det.Observe(x, cl.Fetch)
		if err != nil {
			return row, err
		}
		if dec.Refreshed {
			row.RetrainNanos += time.Since(start).Nanoseconds()
		}
		if chk != nil {
			if r, ok := chk.ObserveNOC(t, x, dec, det.Model()); ok {
				ores.Merge(r)
			}
		}
		if !truth.Ready[i] {
			continue
		}
		if dec.ThresholdUnavailable {
			row.ThresholdUnavail++
		}
		isAnomaly := truth.Anomalous[i]
		switch {
		case dec.Anomalous && !isAnomaly:
			row.FalseAlarms++
		case !dec.Anomalous && isAnomaly:
			row.Misses++
		}
		if isAnomaly {
			row.TrueAnomalies++
		} else {
			row.TrueNormals++
		}
	}

	_, fetches, _ := det.Stats()
	row.Retrains = fetches
	f, err := cl.Fetch()
	if err != nil {
		return row, err
	}
	row.SketchBytes = fetchBytes(f)
	if cfg.Oracle && family == sketch.FamilyFD {
		for _, blk := range f.Blocks {
			ores.Merge(oracle.CheckFD(volumes, blk))
		}
	}
	if cfg.Oracle {
		row.OracleChecks = ores.Checks
		row.OracleViolations = len(ores.Violations)
		row.OracleMaxRelErr = ores.MaxRelErr
		if w := ores.Worst(); w != nil {
			row.OracleWorst = w.String()
		}
	}
	if row.TrueNormals > 0 {
		row.TypeI = float64(row.FalseAlarms) / float64(row.TrueNormals)
	}
	if row.TrueAnomalies > 0 {
		row.TypeII = float64(row.Misses) / float64(row.TrueAnomalies)
	}
	return row, nil
}

// fetchBytes sizes one full sketch pull: 8 bytes per float64 the monitors
// ship (per-flow sketch vectors and means for randproj; basis rows, means
// and Δ per block for fd).
func fetchBytes(f core.Fetch) int64 {
	var floats int64
	if len(f.Blocks) > 0 {
		for _, b := range f.Blocks {
			floats += int64(len(b.Means)) + 1 // running means + Δ
			for _, r := range b.FDRows {
				floats += int64(len(r))
			}
		}
		return 8 * floats
	}
	for _, s := range f.Sketches {
		floats += int64(len(s))
	}
	floats += int64(len(f.Means))
	return 8 * floats
}
