package eval

import (
	"errors"
	"testing"

	"streampca/internal/core"
	"streampca/internal/sketch"
)

func TestShootoutThreeWay(t *testing.T) {
	tr := testTrace(t)
	truth, err := GroundTruth(tr.Volumes, TruthConfig{
		WindowLen: 128, Rank: 4, Alpha: 0.01, RefitEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Shootout(tr.Volumes, truth, ShootoutConfig{
		WindowLen: 128, Epsilon: 0.01, Alpha: 0.01, Seed: 9,
		SketchLen: 64, Rank: 4, NumMonitors: 4, Oracle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	wantVariants := []string{"randproj+jacobi", "randproj+rsvd", "fd"}
	for i, row := range rows {
		t.Logf("%s: typeI=%.3f typeII=%.3f retrains=%d retrain_ns=%d bytes=%d unavail=%d oracle=%d/%d maxrel=%.3g %s",
			row.Variant, row.TypeI, row.TypeII, row.Retrains, row.RetrainNanos,
			row.SketchBytes, row.ThresholdUnavail, row.OracleViolations, row.OracleChecks,
			row.OracleMaxRelErr, row.OracleWorst)
		if row.Variant != wantVariants[i] {
			t.Fatalf("row %d variant %q, want %q", i, row.Variant, wantVariants[i])
		}
		// Every variant scores the same truth-ready intervals.
		if row.TrueAnomalies != truth.NumAnomalous || row.TrueNormals != truth.NumNormal {
			t.Fatalf("%s scored %d/%d intervals, truth has %d/%d",
				row.Variant, row.TrueAnomalies, row.TrueNormals, truth.NumAnomalous, truth.NumNormal)
		}
		if row.TypeI < 0 || row.TypeI > 1 || row.TypeII < 0 || row.TypeII > 1 {
			t.Fatalf("%s error rates out of range: %+v", row.Variant, row)
		}
		if row.Retrains < 1 {
			t.Fatalf("%s never pulled sketches", row.Variant)
		}
		if row.RetrainNanos <= 0 {
			t.Fatalf("%s retrain cost not measured", row.Variant)
		}
		if row.SketchBytes <= 0 {
			t.Fatalf("%s sketch pull has no size", row.Variant)
		}
		if row.OracleChecks < 1 {
			t.Fatalf("%s ran no oracle checks", row.Variant)
		}
	}
	rj, rs, fd := rows[0], rows[1], rows[2]
	if rj.SketchParam != 64 || rs.SketchParam != 64 {
		t.Fatalf("randproj sketch param %d/%d, want 64", rj.SketchParam, rs.SketchParam)
	}
	if fd.SketchParam != sketch.DefaultEll(tr.NumFlows()/4) {
		t.Fatalf("fd defaulted ℓ to %d", fd.SketchParam)
	}
	if fd.Family != sketch.FamilyFD || rs.Builder != core.BuildRSVD {
		t.Fatalf("family/builder labels wrong: %+v %+v", fd, rs)
	}
	// The paper's pipeline and the deterministic FD guarantee must both come
	// through the oracle clean; rSVD shares the randproj model oracle.
	if rj.OracleViolations != 0 {
		t.Fatalf("randproj+jacobi oracle violations: %s", rj.OracleWorst)
	}
	if fd.OracleViolations != 0 {
		t.Fatalf("fd oracle violations: %s", fd.OracleWorst)
	}
	// Space: FD blocks (≤ 2ℓ rows of w floats per monitor) must undercut the
	// randproj pull (l floats per flow) at these dimensions.
	if fd.SketchBytes >= rj.SketchBytes {
		t.Fatalf("fd pull (%d B) not smaller than randproj (%d B)", fd.SketchBytes, rj.SketchBytes)
	}
	if rs.OracleViolations != 0 {
		t.Fatalf("randproj+rsvd oracle violations: %s", rs.OracleWorst)
	}
	// Accuracy: the randproj variants run the lazy retrain-on-alarm protocol
	// (staler models than the sweep's fixed cadence), so the bounds are
	// looser than the sweep test's; a broken pipeline still lands well
	// outside them.
	for _, row := range []ShootoutRow{rj, rs} {
		if row.TypeI > 0.2 || row.TypeII > 0.8 {
			t.Fatalf("%s errors too high: TypeI=%v TypeII=%v", row.Variant, row.TypeI, row.TypeII)
		}
	}
}

func TestShootoutValidation(t *testing.T) {
	tr := testTrace(t)
	truth, err := GroundTruth(tr.Volumes, TruthConfig{
		WindowLen: 128, Rank: 4, Alpha: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Shootout(tr.Volumes, nil, ShootoutConfig{
		WindowLen: 128, Alpha: 0.01, SketchLen: 16, Rank: 4, NumMonitors: 4,
	}); !errors.Is(err, ErrInput) {
		t.Fatalf("nil truth: %v", err)
	}
	if _, err := Shootout(tr.Volumes, truth, ShootoutConfig{
		WindowLen: 128, Alpha: 0.01, SketchLen: 16, Rank: 4,
	}); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero monitors: %v", err)
	}
	// 16 flows across 5 monitors split unevenly: the FD variant cannot
	// default a shared ℓ and must fail loudly, not silently diverge.
	if _, err := Shootout(tr.Volumes, truth, ShootoutConfig{
		WindowLen: 128, Epsilon: 0.01, Alpha: 0.01, SketchLen: 16, Rank: 4,
		NumMonitors: 5,
	}); err == nil {
		t.Fatal("uneven FD split must fail")
	}
}
