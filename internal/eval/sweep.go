package eval

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/randproj"
	"streampca/internal/stats"
)

// SweepConfig parameterizes the sketch-method error sweep (Figs. 7–9).
type SweepConfig struct {
	// WindowLen, Epsilon, Alpha as in the paper (ε = 0.01, α = 0.01).
	WindowLen int
	Epsilon   float64
	Alpha     float64
	// Seed is the shared randomness seed.
	Seed uint64
	// Dist selects the projection family (0 → Gaussian).
	Dist randproj.Distribution
	// SparseS is the s parameter for Dist == Sparse (defaults to 3,
	// Achlioptas' classic choice).
	SparseS int
	// Ranks lists the r values to evaluate (paper: 1…10).
	Ranks []int
	// SketchLens lists the l values to evaluate (paper: 10, 20, …).
	SketchLens []int
	// RefitEvery is the sketch model's retraining cadence; 0 → 1.
	RefitEvery int
}

// ErrorPoint is one cell of the (r, l) error grid.
type ErrorPoint struct {
	Rank      int
	SketchLen int
	// TypeI = false anomalies / true normals;
	// TypeII = false normals / true anomalies (paper §VI definitions).
	TypeI  float64
	TypeII float64
	// Raw counts backing the rates.
	FalseAlarms   int
	Misses        int
	TrueNormals   int
	TrueAnomalies int
}

// SweepErrors runs the sketch-based detector across the (rank, sketch-length)
// grid against the given ground truth. For each sketch length the monitor
// side runs once; each retraining performs one sketch PCA whose scores are
// shared across all ranks, so the rank sweep is nearly free — mirroring how
// the paper evaluates all r for each l.
func SweepErrors(volumes *mat.Matrix, truth *Truth, cfg SweepConfig) ([]ErrorPoint, error) {
	rows, m := volumes.Rows(), volumes.Cols()
	if truth == nil || len(truth.Ready) != rows {
		return nil, fmt.Errorf("%w: truth does not match the volume matrix", ErrInput)
	}
	if len(cfg.Ranks) == 0 || len(cfg.SketchLens) == 0 {
		return nil, fmt.Errorf("%w: empty rank or sketch-length grid", ErrConfig)
	}
	for _, r := range cfg.Ranks {
		if r < 0 || r > m {
			return nil, fmt.Errorf("%w: rank %d with %d flows", ErrConfig, r, m)
		}
	}
	refit := cfg.RefitEvery
	if refit == 0 {
		refit = 1
	}
	if refit < 0 {
		return nil, fmt.Errorf("%w: refit cadence %d", ErrConfig, cfg.RefitEvery)
	}

	var out []ErrorPoint
	for _, l := range cfg.SketchLens {
		points, err := sweepOneSketchLen(volumes, truth, cfg, l, refit)
		if err != nil {
			return nil, fmt.Errorf("sketch length %d: %w", l, err)
		}
		out = append(out, points...)
	}
	return out, nil
}

// sweepOneSketchLen drives one monitor pass and the per-interval sketch PCA
// for a single l, scoring every configured rank.
func sweepOneSketchLen(volumes *mat.Matrix, truth *Truth, cfg SweepConfig, l, refit int) ([]ErrorPoint, error) {
	rows, m := volumes.Rows(), volumes.Cols()
	sparseS := cfg.SparseS
	if cfg.Dist == randproj.Sparse && sparseS == 0 {
		sparseS = 3
	}
	gen, err := randproj.NewGenerator(randproj.Config{
		Seed: cfg.Seed, SketchLen: l, Dist: cfg.Dist, WindowLen: cfg.WindowLen,
		SparseS: sparseS,
	})
	if err != nil {
		return nil, err
	}
	flowIDs := make([]int, m)
	for j := range flowIDs {
		flowIDs[j] = j
	}
	mon, err := core.NewMonitor(core.MonitorConfig{
		FlowIDs:   flowIDs,
		WindowLen: cfg.WindowLen,
		Epsilon:   cfg.Epsilon,
		Gen:       gen,
	})
	if err != nil {
		return nil, err
	}

	nRanks := len(cfg.Ranks)
	points := make([]ErrorPoint, nRanks)
	for ri, r := range cfg.Ranks {
		points[ri] = ErrorPoint{Rank: r, SketchLen: l}
	}

	// Per-refit model state.
	var components *mat.Matrix
	var means []float64
	thresholds := make([]float64, nRanks)
	sinceRefit := refit

	scores := make([]float64, m)
	y := make([]float64, m)

	for i := 0; i < rows; i++ {
		row := volumes.RowView(i)
		if err := mon.Update(int64(i+1), row); err != nil {
			return nil, err
		}
		if !truth.Ready[i] {
			continue
		}
		sinceRefit++
		if components == nil || sinceRefit >= refit {
			rep := mon.Report()
			z, err := core.AssembleSketchMatrix(rep.Sketches, l)
			if err != nil {
				return nil, err
			}
			eig, err := mat.SymEigen(z.Gram())
			if err != nil {
				return nil, err
			}
			sv := make([]float64, m)
			for j, lam := range eig.Values {
				if lam < 0 {
					lam = 0
				}
				sv[j] = math.Sqrt(lam)
			}
			components = eig.Vectors
			means = rep.Means
			for ri, r := range cfg.Ranks {
				th, err := stats.QStatistic(sv, cfg.WindowLen, r, cfg.Alpha)
				if err != nil {
					if !errors.Is(err, stats.ErrDegenerate) {
						return nil, err
					}
					// No usable threshold at this rank for this refit: +Inf
					// flags nothing (counted as misses, never false alarms)
					// instead of aborting the whole sweep.
					th = math.Inf(1)
				}
				thresholds[ri] = th
			}
			sinceRefit = 0
		}

		// Scores against every component, shared across ranks.
		var total float64
		for j := 0; j < m; j++ {
			y[j] = row[j] - means[j]
			total += y[j] * y[j]
		}
		if err := componentScores(components, y, scores); err != nil {
			return nil, err
		}
		isAnomaly := truth.Anomalous[i]
		cum := 0.0
		rankIdx := 0
		// Walk ranks in the caller's order but compute cumulative energy
		// once per distinct prefix; ranks are typically ascending.
		for ri, r := range cfg.Ranks {
			// Cumulative Σ_{j<r} score² — recompute prefix sums cheaply.
			if ri == 0 || r < cfg.Ranks[ri-1] {
				cum = 0
				rankIdx = 0
			}
			for rankIdx < r {
				cum += scores[rankIdx] * scores[rankIdx]
				rankIdx++
			}
			rem := total - cum
			if rem < 0 {
				rem = 0
			}
			dist := math.Sqrt(rem)
			flagged := dist > thresholds[ri]
			p := &points[ri]
			switch {
			case flagged && !isAnomaly:
				p.FalseAlarms++
			case !flagged && isAnomaly:
				p.Misses++
			}
			if isAnomaly {
				p.TrueAnomalies++
			} else {
				p.TrueNormals++
			}
		}
	}

	for ri := range points {
		p := &points[ri]
		if p.TrueNormals > 0 {
			p.TypeI = float64(p.FalseAlarms) / float64(p.TrueNormals)
		}
		if p.TrueAnomalies > 0 {
			p.TypeII = float64(p.Misses) / float64(p.TrueAnomalies)
		}
	}
	return points, nil
}

// componentScores computes scores[j] = column_j(components)·y.
func componentScores(components *mat.Matrix, y, scores []float64) error {
	m := len(y)
	if components.Rows() != m || components.Cols() != m || len(scores) != m {
		return fmt.Errorf("%w: score buffers mismatch", ErrInput)
	}
	for j := range scores {
		scores[j] = 0
	}
	for i := 0; i < m; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := components.RowView(i)
		for j, c := range row {
			scores[j] += yi * c
		}
	}
	return nil
}
