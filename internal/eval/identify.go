package eval

import (
	"fmt"
	"math"
	"sort"

	"streampca/internal/anomography"
	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
	"streampca/internal/traffic"
)

// IdentifyConfig parameterizes the identification scorecard: the same labeled
// attack trace drives the online pursuit (per sketcher family) and the
// offline relaxed-PCP comparator, all scored against per-flow ground truth.
type IdentifyConfig struct {
	// WindowLen, Epsilon, Alpha as in the paper.
	WindowLen int
	Epsilon   float64
	Alpha     float64
	// Seed feeds the shared projection generator.
	Seed uint64
	// SketchLen is the random-projection l; FDEll the per-monitor Frequent
	// Directions budget (0 defaults as in the shoot-out).
	SketchLen int
	FDEll     int
	// Rank is the fixed normal-subspace size r.
	Rank int
	// NumMonitors partitions the flows round-robin. FDMonitors overrides the
	// monitor count for the FD variant (0 → NumMonitors): Frequent Directions
	// needs 2ℓ < shard width, so narrow shards cannot hold the rank-r model
	// plus enough residual spectrum for a Q-threshold — the FD scorecard
	// typically runs wider shards than the randproj one.
	NumMonitors int
	FDMonitors  int
	// Workers bounds the kernels' goroutines (0 = all CPUs).
	Workers int
	// MaxK bounds the culprits the pursuit may select per alarm (0 → 16,
	// enough for an Abilene-scale fan-out scenario).
	MaxK int
	// PCP adds the offline relaxed-PCP comparator row; PCPFrom is the first
	// interval of the matrix it decomposes (typically the warmup boundary).
	PCP     bool
	PCPFrom int
}

// defaultIdentifyMaxK covers the widest injected scenario (a port-scan
// fan-out touches nR−1 = 10 flows on Abilene) with headroom.
const defaultIdentifyMaxK = 16

// IdentifyKindScore is the per-scenario breakdown of one variant's row.
type IdentifyKindScore struct {
	// Kind names the injected scenario ("spike", "exfil", "port-scan", ...).
	Kind string
	// Scored counts alarmed injected intervals of this kind; Missed the
	// injected intervals the detector slept through or the identification
	// abstained on.
	Scored int
	Missed int
	// Precision3 and Recall average over the scored intervals.
	Precision3 float64
	Recall     float64
}

// IdentifyRow is one identification scorecard: how precisely a method names
// the injected flows when it alarms.
type IdentifyRow struct {
	// Variant names the method: "randproj+jacobi", "fd" or "pcp-offline".
	Variant string
	Family  sketch.Family
	// SketchParam is the family's size knob (0 for the offline comparator).
	SketchParam int
	// Scored counts alarmed intervals with injected ground truth — the
	// intervals identification quality is judged on. Missed counts injected
	// intervals with no alarm plus alarmed ones where identification
	// abstained (nothing named, or the culprits explain under half the
	// anomalous energy); FalseAlarms alarmed intervals with no injection
	// (detection context, not an identification error).
	Scored      int
	Missed      int
	FalseAlarms int
	// Precision1/Precision3: of the top-min(k, named) identified flows, the
	// fraction truly injected, averaged over scored intervals. Recall: the
	// fraction of injected flows named, averaged likewise.
	Precision1 float64
	Precision3 float64
	Recall     float64
	// MeanExplained averages the pursuit's explained-energy fraction;
	// MeanCulprits the identified-set size (both over scored intervals).
	MeanExplained float64
	MeanCulprits  float64
	// Kinds breaks the score down per injected scenario, sorted by kind name.
	Kinds []IdentifyKindScore
}

// BuildIdentifyTrace generates the labeled attack workload: a diurnal trace
// with one event per scenario kind spread across the post-warmup region —
// a single-flow volume spike (the DDoS-from-one-source shape), a low-and-slow
// exfiltration, a port-scan fan-out, and the flash-crowd-vs-DDoS
// disambiguation pair on the same destination. Every injection carries its
// per-flow ground truth via Trace.AnomalousFlows.
func BuildIdentifyTrace(seed int64, numIntervals, perDay, warmup int, routers []string) (*traffic.Trace, error) {
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		Routers:         routers,
		NumIntervals:    numIntervals,
		IntervalsPerDay: perDay,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	usable := numIntervals - warmup
	if usable < 120 {
		return nil, fmt.Errorf("%w: only %d post-warmup intervals", ErrConfig, usable)
	}
	dur := perDay / 96 // ~15 min per burst event
	if dur < 3 {
		dur = 3
	}
	// Magnitudes sit in the detectable-but-not-absorbable band: large enough
	// to clear the Q-threshold against the residual noise floor, small enough
	// that one contaminated window (the lazy refresh re-pulls sketches that
	// already contain the anomalous interval) does not rotate the anomaly
	// direction into the rank-r normal subspace and blind the detector.
	// Injections scale with each flow's own baseline, so the busiest flows
	// and routers carry the scenarios.
	if len(tr.RouterNames) < 4 {
		return nil, fmt.Errorf("%w: %d routers, the scenario suite needs 4+", ErrConfig, len(tr.RouterNames))
	}
	spikeFlow, exfilFlow := busiestFlows(tr)
	psSrc, ddDest, fcDest := busiestRouters(tr)
	// Single-flow spike: one OD flow floods, the classic one-culprit alarm.
	if err := tr.InjectSpike(spikeFlow, warmup+usable/8, warmup+usable/8+dur, 0.8); err != nil {
		return nil, err
	}
	// Port-scan fan-out: one source probes every destination at once.
	psStart := warmup + usable/4
	if err := tr.InjectPortScan(psSrc, psStart, psStart+dur, 0.5); err != nil {
		return nil, err
	}
	// Flash-crowd vs DDoS: the same shape of flow set (every incoming flow
	// of one destination), flat surge vs linear ramp — identification must
	// name the destination's fan-in for both. Distinct destinations keep the
	// second event's direction out of the window the first contaminated.
	ddStart := warmup + usable*3/8
	if err := tr.InjectDDoS(ddDest, ddStart, ddStart+dur, 0.35); err != nil {
		return nil, err
	}
	fcStart := warmup + usable/2
	if err := tr.InjectFlashCrowd(fcDest, fcStart, fcStart+dur, 0.9); err != nil {
		return nil, err
	}
	// Low-and-slow exfiltration: one flow, modest surplus, long window — the
	// stealth corner. The sliding window gradually learns it, so alarms
	// concentrate at the onset; identification must catch it there. It runs
	// last: its long contaminated stretch inflates the threshold for a full
	// window after it, so nothing detectable may follow.
	exStart := warmup + usable*5/8
	if err := tr.InjectExfil(exfilFlow, exStart, exStart+usable/6, 0.4); err != nil {
		return nil, err
	}
	return tr, nil
}

// busiestFlows returns the two highest-baseline intra-router (o→o) flows for
// the spike and exfil scenarios. Injections scale with the victim flow's own
// mean, so busy flows give the best contrast against the residual noise
// floor — and self-loop flows are never part of a port-scan fan-out or a
// DDoS fan-in, keeping the single-flow scenarios' directions out of the
// window contamination the multi-flow events leave behind.
func busiestFlows(tr *traffic.Trace) (first, second int) {
	nR := len(tr.RouterNames)
	first, second = -1, -1
	var m1, m2 float64
	for r := 0; r < nR; r++ {
		j := r*nR + r
		b, err := tr.BaselineMean(j)
		if err != nil {
			continue
		}
		switch {
		case first < 0 || b > m1:
			second, m2 = first, m1
			first, m1 = j, b
		case second < 0 || b > m2:
			second, m2 = j, b
		}
	}
	return first, second
}

// busiestRouters picks the multi-flow scenario endpoints: the port-scan
// source is the router with the largest outgoing baseline mass, the DDoS
// destination is that same router (a fan-in {o→src} is disjoint from the
// scan's fan-out {src→d}, so neither event's window contamination covers the
// other's direction), and the flash crowd hits the busiest other destination.
func busiestRouters(tr *traffic.Trace) (src, ddDest, fcDest int) {
	nR := len(tr.RouterNames)
	outMass := make([]float64, nR)
	inMass := make([]float64, nR)
	for o := 0; o < nR; o++ {
		for d := 0; d < nR; d++ {
			b, err := tr.BaselineMean(o*nR + d)
			if err != nil {
				continue
			}
			outMass[o] += b
			inMass[d] += b
		}
	}
	for r := 1; r < nR; r++ {
		if outMass[r] > outMass[src] {
			src = r
		}
	}
	ddDest = src
	fcDest = -1
	for r := 0; r < nR; r++ {
		if r == src {
			continue
		}
		if fcDest < 0 || inMass[r] > inMass[fcDest] {
			fcDest = r
		}
	}
	return src, ddDest, fcDest
}

// IdentifySuite scores per-flow identification on a labeled trace: the online
// greedy pursuit once per sketcher family (randproj+jacobi and fd, the two
// CI-gated families), plus the offline relaxed-PCP comparator when
// cfg.PCP is set. Rows come back in that fixed order.
func IdentifySuite(tr *traffic.Trace, cfg IdentifyConfig) ([]IdentifyRow, error) {
	if tr == nil || len(tr.Injections) == 0 {
		return nil, fmt.Errorf("%w: trace carries no injected ground truth", ErrInput)
	}
	if cfg.NumMonitors < 1 {
		return nil, fmt.Errorf("%w: %d monitors", ErrConfig, cfg.NumMonitors)
	}
	variants := []struct {
		name   string
		family sketch.Family
	}{
		{"randproj+jacobi", sketch.FamilyRandProj},
		{"fd", sketch.FamilyFD},
	}
	out := make([]IdentifyRow, 0, len(variants)+1)
	for _, v := range variants {
		row, err := identifyVariant(tr, cfg, v.name, v.family)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		out = append(out, row)
	}
	if cfg.PCP {
		row, err := pcpIdentifyRow(tr, cfg)
		if err != nil {
			return nil, fmt.Errorf("pcp-offline: %w", err)
		}
		out = append(out, row)
	}
	return out, nil
}

// identifyScorer accumulates per-interval identification scores.
type identifyScorer struct {
	row    IdentifyRow
	kinds  map[string]*IdentifyKindScore
	p1Sum  float64
	p3Sum  float64
	recSum float64
	exSum  float64
	nSum   float64
}

func newIdentifyScorer(name string, family sketch.Family, param int) *identifyScorer {
	return &identifyScorer{
		row:   IdentifyRow{Variant: name, Family: family, SketchParam: param},
		kinds: map[string]*IdentifyKindScore{},
	}
}

// kindsAt names the scenario kinds injected at interval i.
func kindsAt(tr *traffic.Trace, i int) []string {
	var out []string
	seen := map[string]bool{}
	for _, inj := range tr.Injections {
		if i < inj.Start || i >= inj.End {
			continue
		}
		k := inj.Kind.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func (sc *identifyScorer) kind(name string) *IdentifyKindScore {
	ks := sc.kinds[name]
	if ks == nil {
		ks = &IdentifyKindScore{Kind: name}
		sc.kinds[name] = ks
	}
	return ks
}

// miss records an injected interval the detector slept through.
func (sc *identifyScorer) miss(tr *traffic.Trace, i int) {
	sc.row.Missed++
	for _, k := range kindsAt(tr, i) {
		sc.kind(k).Missed++
	}
}

// score records one alarmed injected interval: ranked identified flows
// against the ground-truth set.
func (sc *identifyScorer) score(tr *traffic.Trace, i int, ranked []int, explained float64) {
	truth := tr.AnomalousFlows(i)
	truthSet := make(map[int]bool, len(truth))
	for _, f := range truth {
		truthSet[f] = true
	}
	p1 := precisionAt(ranked, truthSet, 1)
	p3 := precisionAt(ranked, truthSet, 3)
	rec := recallOf(ranked, truthSet)
	sc.row.Scored++
	sc.p1Sum += p1
	sc.p3Sum += p3
	sc.recSum += rec
	sc.exSum += explained
	sc.nSum += float64(len(ranked))
	for _, k := range kindsAt(tr, i) {
		ks := sc.kind(k)
		ks.Scored++
		ks.Precision3 += p3
		ks.Recall += rec
	}
}

// finish averages the sums into the row.
func (sc *identifyScorer) finish() IdentifyRow {
	if n := float64(sc.row.Scored); n > 0 {
		sc.row.Precision1 = sc.p1Sum / n
		sc.row.Precision3 = sc.p3Sum / n
		sc.row.Recall = sc.recSum / n
		sc.row.MeanExplained = sc.exSum / n
		sc.row.MeanCulprits = sc.nSum / n
	}
	for _, ks := range sc.kinds {
		if ks.Scored > 0 {
			ks.Precision3 /= float64(ks.Scored)
			ks.Recall /= float64(ks.Scored)
		}
		sc.row.Kinds = append(sc.row.Kinds, *ks)
	}
	sort.Slice(sc.row.Kinds, func(a, b int) bool { return sc.row.Kinds[a].Kind < sc.row.Kinds[b].Kind })
	return sc.row
}

// precisionAt is the fraction of the top-min(k, |ranked|) flows that are
// truly injected; 0 when nothing was named.
func precisionAt(ranked []int, truth map[int]bool, k int) float64 {
	if len(ranked) < k {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, f := range ranked[:k] {
		if truth[f] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// recallOf is the fraction of injected flows the ranked set names.
func recallOf(ranked []int, truth map[int]bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	hits := 0
	for _, f := range ranked {
		if truth[f] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// identifyMinExplained is the abstention floor: an identification whose
// culprits explain less than this fraction of the anomalous energy is a
// shrug, not a naming. Such alarms come from intervals whose true direction
// a contaminated refresh already rotated into the normal subspace — the
// residual that remains points nowhere, and the pursuit's best pick is a
// low-confidence, often negative-amount artifact of the over-fit means.
// Scoring convention mirrors the PCP comparator's empty-culprit rule:
// an abstained interval counts as missed, never as a wrong identification.
const identifyMinExplained = 0.5

// identifyVariant drives one in-process cluster over the trace, running the
// pursuit on every alarmed interval and scoring against the injection labels.
func identifyVariant(tr *traffic.Trace, cfg IdentifyConfig, name string, family sketch.Family) (IdentifyRow, error) {
	volumes := tr.Volumes
	m := volumes.Cols()
	ccfg := core.ClusterConfig{
		NumFlows:    m,
		NumMonitors: cfg.NumMonitors,
		WindowLen:   cfg.WindowLen,
		Epsilon:     cfg.Epsilon,
		Alpha:       cfg.Alpha,
		Family:      family,
		Mode:        core.RankFixed,
		FixedRank:   cfg.Rank,
		Workers:     cfg.Workers,
	}
	param := cfg.SketchLen
	if family == sketch.FamilyFD {
		if cfg.FDMonitors > 0 {
			ccfg.NumMonitors = cfg.FDMonitors
		}
		ccfg.FDEll = cfg.FDEll
		param = cfg.FDEll
		if param == 0 && m%ccfg.NumMonitors == 0 {
			param = sketch.DefaultEll(m / ccfg.NumMonitors)
		}
	} else {
		ccfg.Sketch = randproj.Config{Seed: cfg.Seed, SketchLen: cfg.SketchLen, WindowLen: cfg.WindowLen}
	}
	sc := newIdentifyScorer(name, family, param)
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		return sc.row, err
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = defaultIdentifyMaxK
	}
	det := cl.Detector()
	x := make([]float64, m)
	for i := 0; i < volumes.Rows(); i++ {
		copy(x, volumes.RowView(i))
		if err := cl.Update(int64(i+1), x); err != nil {
			return sc.row, err
		}
		if !cl.Warm() {
			continue
		}
		dec, err := det.Observe(x, cl.Fetch)
		if err != nil {
			return sc.row, err
		}
		injected := len(tr.AnomalousFlows(i)) > 0
		if !dec.Anomalous {
			if injected {
				sc.miss(tr, i)
			}
			continue
		}
		if !injected {
			sc.row.FalseAlarms++
			continue
		}
		id, err := det.Identify(x, maxK)
		if err != nil {
			return sc.row, err
		}
		if len(id.Flows) == 0 || id.ExplainedFrac < identifyMinExplained {
			sc.miss(tr, i)
			continue
		}
		ranked := make([]int, len(id.Flows))
		for j, f := range id.Flows {
			ranked[j] = f.Flow
		}
		sc.score(tr, i, ranked, id.ExplainedFrac)
	}
	return sc.finish(), nil
}

// pcpRowRelFloor gates PCP culprit extraction: entries of S below this
// fraction of the row's largest magnitude are residual noise, not culprits.
const pcpRowRelFloor = 0.25

// pcpIdentifyRow decomposes the post-warmup traffic matrix with relaxed PCP
// and scores RowCulprits of the sparse part against the same ground truth.
// The comparator sees the whole matrix at once (offline, no sliding window,
// no sketch) — the quality ceiling the streaming pursuit is judged against.
func pcpIdentifyRow(tr *traffic.Trace, cfg IdentifyConfig) (IdentifyRow, error) {
	sc := newIdentifyScorer("pcp-offline", sketch.Family(0), 0)
	from := cfg.PCPFrom
	if from < 0 || from >= tr.NumIntervals() {
		return sc.row, fmt.Errorf("%w: pcp-from %d of %d intervals", ErrConfig, from, tr.NumIntervals())
	}
	volumes := tr.Volumes
	n, m := volumes.Rows()-from, volumes.Cols()
	d := mat.NewMatrix(n, m)
	for r := 0; r < n; r++ {
		copy(d.RowView(r), volumes.RowView(from+r))
	}
	res, err := anomography.PCP(d, anomography.PCPConfig{Workers: cfg.Workers})
	if err != nil {
		return sc.row, err
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = defaultIdentifyMaxK
	}
	for i := from; i < volumes.Rows(); i++ {
		if len(tr.AnomalousFlows(i)) == 0 {
			continue
		}
		r := i - from
		var rowMax float64
		for _, v := range res.S.RowView(r) {
			if a := math.Abs(v); a > rowMax {
				rowMax = a
			}
		}
		ranked := anomography.RowCulprits(res.S, r, maxK, pcpRowRelFloor*rowMax)
		if len(ranked) == 0 {
			sc.miss(tr, i)
			continue
		}
		sc.score(tr, i, ranked, 1-res.RelResidual)
	}
	return sc.finish(), nil
}
