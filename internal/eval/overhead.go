package eval

import (
	"fmt"
	"math/rand"
	"time"

	"streampca/internal/mat"
)

// OverheadPoint is one x-position of Fig. 10: the NOC's PCA computation cost
// for Lakhina's method (m²·n) vs the sketch method (m²·l), as the paper's
// operation counts plus optionally measured wall-clock time for the actual
// Gram + eigendecomposition pipeline.
type OverheadPoint struct {
	SketchLen int
	// LakhinaOps and SketchOps are the paper's m²·n and m²·l counts.
	LakhinaOps float64
	SketchOps  float64
	// LakhinaNs and SketchNs are measured nanoseconds for one model
	// rebuild (0 when measurement is disabled).
	LakhinaNs int64
	SketchNs  int64
}

// Overhead produces the Fig. 10 series for a network of m flows and a
// window of n intervals across the given sketch lengths. When measure is
// true it also times real rebuilds (random data; the cost depends only on
// shape).
func Overhead(m, n int, sketchLens []int, measure bool) ([]OverheadPoint, error) {
	if m < 1 || n < 2 {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrConfig, m, n)
	}
	if len(sketchLens) == 0 {
		return nil, fmt.Errorf("%w: no sketch lengths", ErrConfig)
	}

	var lakhinaNs int64
	if measure {
		var err error
		lakhinaNs, err = timeRebuild(n, m)
		if err != nil {
			return nil, err
		}
	}

	out := make([]OverheadPoint, 0, len(sketchLens))
	for _, l := range sketchLens {
		if l < 1 {
			return nil, fmt.Errorf("%w: sketch length %d", ErrConfig, l)
		}
		p := OverheadPoint{
			SketchLen:  l,
			LakhinaOps: float64(m) * float64(m) * float64(n),
			SketchOps:  float64(m) * float64(m) * float64(l),
			LakhinaNs:  lakhinaNs,
		}
		if measure {
			ns, err := timeRebuild(l, m)
			if err != nil {
				return nil, err
			}
			p.SketchNs = ns
		}
		out = append(out, p)
	}
	return out, nil
}

// timeRebuild measures one Gram + eigendecomposition on a rows×m matrix.
func timeRebuild(rows, m int) (int64, error) {
	rng := rand.New(rand.NewSource(1))
	x := mat.NewMatrix(rows, m)
	for i := 0; i < rows; i++ {
		r := x.RowView(i)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
	}
	start := time.Now()
	if _, err := mat.SymEigen(x.Gram()); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds(), nil
}
