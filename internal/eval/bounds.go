package eval

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/pca"
	"streampca/internal/randproj"
	"streampca/internal/stats"
)

// BoundsReport records an empirical check of the paper's error bounds on one
// window of data: Lemma 5 (singular values), Lemma 6 (covariance), and
// Theorem 2 (anomaly distance).
type BoundsReport struct {
	SketchLen int
	// SingularRatios[j] = λ̂_j / η_j for the leading components (Lemma 5
	// says they concentrate in (1−3ε, 1+3ε)).
	SingularRatios []float64
	// CovRelError = ‖V − Â‖F / ‖Y‖²F (Lemma 6 bounds it by √6ε).
	CovRelError float64
	// MeanDistRelError and MaxDistRelError summarize |d_Ẑ(y) − d_Y(y)| /
	// d_Y(y) over the window rows (Theorem 2 controls this through the
	// spectral gap).
	MeanDistRelError float64
	MaxDistRelError  float64
	// SpectralGap = η²_r − η²_{r+1}, the denominator of Theorem 2's bound.
	SpectralGap float64
}

// CheckBounds runs the exact and sketch decompositions on the trailing
// window of the volume matrix and reports the empirical error figures.
func CheckBounds(volumes *mat.Matrix, windowLen, sketchLen, rank int, seed uint64) (*BoundsReport, error) {
	rows, m := volumes.Rows(), volumes.Cols()
	if windowLen < 2 || windowLen > rows {
		return nil, fmt.Errorf("%w: window %d over %d rows", ErrConfig, windowLen, rows)
	}
	if rank < 1 || rank >= m {
		return nil, fmt.Errorf("%w: rank %d with %d flows", ErrConfig, rank, m)
	}

	// Exact PCA on the trailing window.
	win := mat.NewMatrix(windowLen, m)
	lo := rows - windowLen
	for i := 0; i < windowLen; i++ {
		copy(win.RowView(i), volumes.RowView(lo+i))
	}
	exact, err := pca.Fit(win)
	if err != nil {
		return nil, fmt.Errorf("exact fit: %w", err)
	}
	exactDet, err := pca.NewDetector(exact, rank, 0.01)
	if errors.Is(err, stats.ErrDegenerate) {
		// Only distances are read here; +Inf keeps the detector usable.
		exactDet, err = pca.NewDetectorThreshold(exact, rank, math.Inf(1))
	}
	if err != nil {
		return nil, err
	}

	// Sketch side: run a monitor over the same rows.
	gen, err := randproj.NewGenerator(randproj.Config{Seed: seed, SketchLen: sketchLen, WindowLen: windowLen})
	if err != nil {
		return nil, err
	}
	flowIDs := make([]int, m)
	for j := range flowIDs {
		flowIDs[j] = j
	}
	mon, err := core.NewMonitor(core.MonitorConfig{
		FlowIDs: flowIDs, WindowLen: windowLen, Epsilon: 0.01, Gen: gen,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < windowLen; i++ {
		if err := mon.Update(int64(lo+i+1), volumes.RowView(lo+i)); err != nil {
			return nil, err
		}
	}
	det, err := core.NewDetector(core.DetectorConfig{
		NumFlows: m, WindowLen: windowLen, SketchLen: sketchLen,
		Alpha: 0.01, Mode: core.RankFixed, FixedRank: rank,
	})
	if err != nil {
		return nil, err
	}
	rep := mon.Report()
	if err := det.RebuildModel(rep.Sketches, rep.Means, rep.Interval); err != nil {
		return nil, err
	}
	sk := det.Model()

	report := &BoundsReport{SketchLen: sketchLen}

	// Lemma 5: singular ratios for the leading rank components.
	report.SingularRatios = make([]float64, rank)
	for j := 0; j < rank; j++ {
		if exact.Singular[j] > 0 {
			report.SingularRatios[j] = sk.Singular[j] / exact.Singular[j]
		}
	}

	// Lemma 6: covariance error. V = YᵀY of the centered window; Â = ẐᵀẐ.
	y := win.Clone()
	y.CenterColumns()
	v := y.Gram()
	z, err := core.AssembleSketchMatrix(rep.Sketches, sketchLen)
	if err != nil {
		return nil, err
	}
	a := z.Gram()
	diff, err := v.Sub(a)
	if err != nil {
		return nil, err
	}
	yf := y.FrobeniusNorm()
	if yf > 0 {
		report.CovRelError = diff.FrobeniusNorm() / (yf * yf)
	}

	// Theorem 2: distance agreement across the window rows.
	var sum, worst float64
	var count int
	for i := 0; i < windowLen; i++ {
		row := win.Row(i)
		de, err := exactDet.Distance(row)
		if err != nil {
			return nil, err
		}
		ds, err := det.Distance(row)
		if err != nil {
			return nil, err
		}
		if de <= 1e-12 {
			continue
		}
		rel := math.Abs(ds-de) / de
		sum += rel
		if rel > worst {
			worst = rel
		}
		count++
	}
	if count > 0 {
		report.MeanDistRelError = sum / float64(count)
	}
	report.MaxDistRelError = worst
	report.SpectralGap = exact.Singular[rank-1]*exact.Singular[rank-1] -
		exact.Singular[rank]*exact.Singular[rank]
	return report, nil
}
