package markov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{name: "valid", cfg: Config{NumStates: 5, WindowLen: 100, MinProb: 0.02}, ok: true},
		{name: "one state", cfg: Config{NumStates: 1, WindowLen: 100, MinProb: 0.02}},
		{name: "tiny window", cfg: Config{NumStates: 5, WindowLen: 2, MinProb: 0.02}},
		{name: "prob 0", cfg: Config{NumStates: 5, WindowLen: 100}},
		{name: "prob 1", cfg: Config{NumStates: 5, WindowLen: 100, MinProb: 1}},
		{name: "bad lambda", cfg: Config{NumStates: 5, WindowLen: 100, MinProb: 0.02, Lambda: 2}},
		{name: "bad warmup", cfg: Config{NumStates: 5, WindowLen: 100, MinProb: 0.02, Warmup: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestObserveRejectsNonFinite(t *testing.T) {
	c, err := New(Config{NumStates: 3, WindowLen: 16, MinProb: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe(math.NaN()); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN: %v", err)
	}
	if _, err := c.Observe(math.Inf(1)); !errors.Is(err, ErrInput) {
		t.Fatalf("Inf: %v", err)
	}
}

func TestStationaryStreamRarelyFlags(t *testing.T) {
	c, err := New(Config{NumStates: 5, WindowLen: 256, MinProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var ready, alarms int
	for i := 0; i < 4000; i++ {
		res, err := c.Observe(100 + 5*rng.NormFloat64())
		if err != nil {
			t.Fatal(err)
		}
		if res.Ready {
			ready++
			if res.Anomalous {
				alarms++
			}
		}
	}
	if ready == 0 {
		t.Fatal("chain never became ready")
	}
	if rate := float64(alarms) / float64(ready); rate > 0.05 {
		t.Fatalf("false-alarm rate %v on stationary data", rate)
	}
	if c.Seen() != 4000 {
		t.Fatalf("seen = %d", c.Seen())
	}
}

func TestRegimeChangeFlagged(t *testing.T) {
	c, err := New(Config{NumStates: 5, WindowLen: 256, MinProb: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if _, err := c.Observe(100 + 3*rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	// Settle on the common central state so the jump is judged against a
	// well-populated transition row (a rare predecessor state would keep
	// the Laplace-smoothed probability above threshold by design).
	if _, err := c.Observe(100); err != nil {
		t.Fatal(err)
	}
	// A sudden jump far outside the learned band is a never-seen
	// transition into the extreme state.
	res, err := c.Observe(100 + 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ready || !res.Anomalous {
		t.Fatalf("regime change missed: %+v", res)
	}
	if res.State != 4 {
		t.Fatalf("jump quantized to state %d, want extreme state 4", res.State)
	}
}

func TestPeriodicPatternLearned(t *testing.T) {
	// A deterministic alternation low/high is learned as high-probability
	// transitions; breaking the alternation is flagged.
	c, err := New(Config{NumStates: 2, WindowLen: 128, MinProb: 0.05, Lambda: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	val := func(i int) float64 {
		if i%2 == 0 {
			return 10
		}
		return 20
	}
	for i := 0; i < 1000; i++ {
		if _, err := c.Observe(val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The learned matrix strongly prefers switching.
	m := c.TransitionMatrix()
	if m[0][1] < 0.8 || m[1][0] < 0.8 {
		t.Fatalf("alternation not learned: %v", m)
	}
	// Next value "should" be high (we ended on an odd index 999 → 20;
	// i=1000 → 10... feed a repeat of the previous value instead).
	res, err := c.Observe(val(999)) // stuck-at: repeats instead of switching
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ready || !res.Anomalous {
		t.Fatalf("stuck-at transition not flagged: %+v", res)
	}
}

func TestTransitionProbBounds(t *testing.T) {
	c, err := New(Config{NumStates: 3, WindowLen: 16, MinProb: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.TransitionProb(-1, 0); p != 0 {
		t.Fatalf("out-of-range prob = %v", p)
	}
	if p := c.TransitionProb(0, 3); p != 0 {
		t.Fatalf("out-of-range prob = %v", p)
	}
	// Empty chain: uniform smoothing.
	if p := c.TransitionProb(0, 1); math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("prior prob = %v, want 1/3", p)
	}
}

// Property: every row of the smoothed transition matrix sums to 1, for any
// observation stream.
func TestQuickRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		c, err := New(Config{NumStates: 4, WindowLen: 32, MinProb: 0.02})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if _, err := c.Observe(r.NormFloat64() * 100); err != nil {
				return false
			}
		}
		for _, row := range c.TransitionMatrix() {
			var s float64
			for _, p := range row {
				s += p
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: window eviction keeps total counts bounded by the window.
func TestQuickWindowedCounts(t *testing.T) {
	f := func(seed int64) bool {
		window := 16
		c, err := New(Config{NumStates: 3, WindowLen: window, MinProb: 0.02})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			if _, err := c.Observe(r.NormFloat64()); err != nil {
				return false
			}
		}
		var total int
		for _, row := range c.counts {
			for _, n := range row {
				if n < 0 {
					return false
				}
				total += n
			}
		}
		return total == window
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
