// Package markov implements the paper's stated future-work extension
// (§VII): layering a Markov-model anomaly detector on top of the
// sketch-based statistics. The chain consumes a scalar stream — typically
// the anomaly-distance series the sketch PCA detector emits each interval —
// quantizes it into states by robust z-score, learns the state-transition
// matrix over a sliding window, and flags transitions whose smoothed
// probability falls below a threshold. This catches *temporal* anomalies
// (sudden regime changes, oscillation, stuck-at behaviour) that a purely
// spatial threshold cannot express.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid chain configuration.
	ErrConfig = errors.New("markov: invalid configuration")
	// ErrInput indicates structurally invalid input.
	ErrInput = errors.New("markov: invalid input")
)

// Config parameterizes a Chain.
type Config struct {
	// NumStates is the number of quantization states (≥ 2); values are
	// bucketed by z-score against a running robust location/scale.
	NumStates int
	// WindowLen is the sliding window (in observations) over which
	// transition counts are maintained.
	WindowLen int
	// MinProb flags a transition when its Laplace-smoothed probability
	// under the learned matrix is below this value; typical 0.01–0.05.
	MinProb float64
	// Warmup is the number of observations before flagging starts;
	// defaults to WindowLen.
	Warmup int
	// Lambda is the smoothing factor of the running location/scale
	// estimates used by the quantizer; defaults to 0.05.
	Lambda float64
}

// Chain is a sliding-window Markov-chain anomaly detector over a scalar
// stream. It is not safe for concurrent use.
type Chain struct {
	cfg Config
	// counts[a][b] is the number of a→b transitions inside the window.
	counts [][]int
	// ring stores the windowed state sequence for count eviction.
	ring []int
	head int
	fill int
	// Quantizer state.
	mean  float64
	vari  float64
	seen  int
	last  int // previous state
	haveL bool
}

// New validates cfg and returns an empty chain.
func New(cfg Config) (*Chain, error) {
	if cfg.NumStates < 2 {
		return nil, fmt.Errorf("%w: %d states", ErrConfig, cfg.NumStates)
	}
	if cfg.WindowLen < 4 {
		return nil, fmt.Errorf("%w: window %d", ErrConfig, cfg.WindowLen)
	}
	if math.IsNaN(cfg.MinProb) || cfg.MinProb <= 0 || cfg.MinProb >= 1 {
		return nil, fmt.Errorf("%w: min probability %v", ErrConfig, cfg.MinProb)
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.WindowLen
	}
	if cfg.Warmup < 1 {
		return nil, fmt.Errorf("%w: warmup %d", ErrConfig, cfg.Warmup)
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.05
	}
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("%w: lambda %v", ErrConfig, cfg.Lambda)
	}
	counts := make([][]int, cfg.NumStates)
	for i := range counts {
		counts[i] = make([]int, cfg.NumStates)
	}
	return &Chain{
		cfg:    cfg,
		counts: counts,
		ring:   make([]int, cfg.WindowLen),
	}, nil
}

// Result reports one observation's outcome.
type Result struct {
	// Ready is false during warm-up.
	Ready bool
	// State is the quantized state of the observation.
	State int
	// Prob is the smoothed probability of the observed transition under
	// the current matrix (1 for the very first observation).
	Prob float64
	// Anomalous is Ready && Prob < MinProb.
	Anomalous bool
}

// Observe ingests one scalar (e.g. the current anomaly distance), returns
// the transition verdict, and folds the observation into the model.
func (c *Chain) Observe(x float64) (Result, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return Result{}, fmt.Errorf("%w: non-finite observation %v", ErrInput, x)
	}
	state := c.quantize(x)
	res := Result{State: state, Prob: 1}

	if c.haveL {
		res.Prob = c.TransitionProb(c.last, state)
		if c.seen >= c.cfg.Warmup {
			res.Ready = true
			res.Anomalous = res.Prob < c.cfg.MinProb
		}
		c.record(c.last, state)
	}

	// Update the quantizer after the verdict so the observation is judged
	// against the pre-existing model.
	c.updateScale(x)
	c.last = state
	c.haveL = true
	c.seen++
	return res, nil
}

// quantize maps x to a state by z-score: state 0 is z < −z0, the middle
// states tile [−z0, z0], and the last state is z ≥ z0. The extreme bands
// start at 3σ (matching the paper's 3σ convention), so they are genuinely
// rare under the learned behaviour.
func (c *Chain) quantize(x float64) int {
	sigma := math.Sqrt(c.vari)
	if c.seen < 2 || sigma == 0 {
		return c.cfg.NumStates / 2
	}
	z := (x - c.mean) / sigma
	const z0 = 3.0
	if z < -z0 {
		return 0
	}
	if z >= z0 {
		return c.cfg.NumStates - 1
	}
	inner := c.cfg.NumStates - 2
	if inner <= 0 {
		// Two states: split at the mean.
		if z < 0 {
			return 0
		}
		return 1
	}
	idx := int((z + z0) / (2 * z0) * float64(inner))
	if idx >= inner {
		idx = inner - 1
	}
	return 1 + idx
}

// updateScale advances the running location/scale estimates.
func (c *Chain) updateScale(x float64) {
	if c.seen == 0 {
		c.mean = x
		return
	}
	lam := c.cfg.Lambda
	dev := x - c.mean
	c.mean += lam * dev
	c.vari = (1 - lam) * (c.vari + lam*dev*dev)
}

// record adds transition a→b to the window, evicting the oldest.
func (c *Chain) record(a, b int) {
	if c.fill == c.cfg.WindowLen {
		// ring stores flattened a*NumStates+b codes.
		old := c.ring[c.head]
		c.counts[old/c.cfg.NumStates][old%c.cfg.NumStates]--
	}
	c.ring[c.head] = a*c.cfg.NumStates + b
	c.head = (c.head + 1) % c.cfg.WindowLen
	if c.fill < c.cfg.WindowLen {
		c.fill++
	}
	c.counts[a][b]++
}

// TransitionProb returns the Laplace-smoothed probability of a→b under the
// current window counts.
func (c *Chain) TransitionProb(a, b int) float64 {
	if a < 0 || a >= c.cfg.NumStates || b < 0 || b >= c.cfg.NumStates {
		return 0
	}
	var rowTotal int
	for _, n := range c.counts[a] {
		rowTotal += n
	}
	k := float64(c.cfg.NumStates)
	return (float64(c.counts[a][b]) + 1) / (float64(rowTotal) + k)
}

// TransitionMatrix returns a copy of the smoothed transition matrix.
func (c *Chain) TransitionMatrix() [][]float64 {
	out := make([][]float64, c.cfg.NumStates)
	for a := range out {
		row := make([]float64, c.cfg.NumStates)
		for b := range row {
			row[b] = c.TransitionProb(a, b)
		}
		out[a] = row
	}
	return out
}

// Seen returns the number of observations ingested.
func (c *Chain) Seen() int { return c.seen }
