// Package volume implements the Volume Counter module of the local monitor
// (paper §IV-A): a per-flow byte counter for the current measurement
// interval. The ISP's aggregation layer reports (FlowID, Size) pairs; at the
// end of each interval the counter emits the traffic-volume vector and
// resets.
package volume

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the package.
var (
	// ErrFlowRange indicates a flow index outside [0, NumFlows).
	ErrFlowRange = errors.New("volume: flow index out of range")
	// ErrConfig indicates an invalid counter configuration.
	ErrConfig = errors.New("volume: invalid configuration")
)

// Counter accumulates per-flow traffic volumes for one interval at a time.
// It is safe for concurrent use: packet ingestion may run on several
// goroutines while interval rollover happens on another.
type Counter struct {
	mu       sync.Mutex
	buckets  []float64
	packets  []int64
	interval int64
}

// NewCounter returns a counter for numFlows aggregated flows.
func NewCounter(numFlows int) (*Counter, error) {
	if numFlows <= 0 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, numFlows)
	}
	return &Counter{
		buckets: make([]float64, numFlows),
		packets: make([]int64, numFlows),
	}, nil
}

// NumFlows returns the number of aggregated flows tracked.
func (c *Counter) NumFlows() int { return len(c.buckets) }

// Interval returns the index of the interval currently accumulating.
func (c *Counter) Interval() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interval
}

// Add records size bytes for the given flow in the current interval.
func (c *Counter) Add(flowID int, size float64) error {
	if flowID < 0 || flowID >= len(c.buckets) {
		return fmt.Errorf("%w: %d of %d", ErrFlowRange, flowID, len(c.buckets))
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size %v", ErrConfig, size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets[flowID] += size
	c.packets[flowID]++
	return nil
}

// Snapshot holds the volumes accumulated during one closed interval.
type Snapshot struct {
	// Interval is the index of the interval the snapshot covers.
	Interval int64
	// Volumes[j] is the total bytes of flow j during the interval.
	Volumes []float64
	// Packets[j] is the packet count of flow j during the interval.
	Packets []int64
}

// Roll closes the current interval: it returns a snapshot of the accumulated
// volumes and resets every bucket to zero for the next interval, whose index
// becomes Interval+1.
func (c *Counter) Roll() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{
		Interval: c.interval,
		Volumes:  make([]float64, len(c.buckets)),
		Packets:  make([]int64, len(c.packets)),
	}
	copy(snap.Volumes, c.buckets)
	copy(snap.Packets, c.packets)
	for j := range c.buckets {
		c.buckets[j] = 0
		c.packets[j] = 0
	}
	c.interval++
	return snap
}

// Peek returns a copy of the volumes accumulated so far in the open interval
// without closing it.
func (c *Counter) Peek() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, len(c.buckets))
	copy(out, c.buckets)
	return out
}
