package volume

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewCounterValidation(t *testing.T) {
	if _, err := NewCounter(0); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero flows: %v", err)
	}
	if _, err := NewCounter(-3); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative flows: %v", err)
	}
	c, err := NewCounter(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFlows() != 5 {
		t.Fatalf("NumFlows = %d", c.NumFlows())
	}
}

func TestAddAndRoll(t *testing.T) {
	c, err := NewCounter(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(2, 7); err != nil {
		t.Fatal(err)
	}
	snap := c.Roll()
	if snap.Interval != 0 {
		t.Fatalf("interval = %d", snap.Interval)
	}
	if snap.Volumes[0] != 150 || snap.Volumes[1] != 0 || snap.Volumes[2] != 7 {
		t.Fatalf("volumes = %v", snap.Volumes)
	}
	if snap.Packets[0] != 2 || snap.Packets[2] != 1 {
		t.Fatalf("packets = %v", snap.Packets)
	}
	// After roll the buckets are empty and the interval advanced.
	if c.Interval() != 1 {
		t.Fatalf("interval after roll = %d", c.Interval())
	}
	next := c.Roll()
	if next.Interval != 1 || next.Volumes[0] != 0 {
		t.Fatalf("second snapshot = %+v", next)
	}
}

func TestAddErrors(t *testing.T) {
	c, _ := NewCounter(2)
	if err := c.Add(-1, 1); !errors.Is(err, ErrFlowRange) {
		t.Fatalf("negative flow: %v", err)
	}
	if err := c.Add(2, 1); !errors.Is(err, ErrFlowRange) {
		t.Fatalf("flow too large: %v", err)
	}
	if err := c.Add(0, -5); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative size: %v", err)
	}
}

func TestPeekDoesNotReset(t *testing.T) {
	c, _ := NewCounter(1)
	_ = c.Add(0, 10)
	if got := c.Peek(); got[0] != 10 {
		t.Fatalf("peek = %v", got)
	}
	if got := c.Peek(); got[0] != 10 {
		t.Fatal("peek must not reset")
	}
	p := c.Peek()
	p[0] = 999
	if got := c.Peek(); got[0] != 10 {
		t.Fatal("peek must return a copy")
	}
}

func TestConcurrentAdds(t *testing.T) {
	c, _ := NewCounter(4)
	var wg sync.WaitGroup
	workers, perWorker := 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := c.Add(w%4, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := c.Roll()
	var total float64
	for _, v := range snap.Volumes {
		total += v
	}
	if total != float64(workers*perWorker) {
		t.Fatalf("total = %v, want %d", total, workers*perWorker)
	}
}

// Property: the snapshot total equals the sum of added sizes, for any
// sequence of valid adds.
func TestQuickConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		c, err := NewCounter(7)
		if err != nil {
			return false
		}
		var want float64
		for i, s := range sizes {
			sz := float64(s)
			if err := c.Add(i%7, sz); err != nil {
				return false
			}
			want += sz
		}
		snap := c.Roll()
		var got float64
		for _, v := range snap.Volumes {
			got += v
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
