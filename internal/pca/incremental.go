package pca

import (
	"fmt"
	"math"

	"streampca/internal/mat"
)

// Incremental maintains the exact sliding-window PCA state in O(m²) per
// interval instead of O(n·m²): it keeps the window ring plus the running
// sums Σx and Σ(x−ref)(x−ref)ᵀ, from which the centered Gram matrix is
// reconstructed on demand. The reference shift (the first vector seen) keeps
// the second-moment accumulation numerically well conditioned for
// large-magnitude traffic volumes.
//
// Incremental produces bitwise-comparable results to Fit (same eigensolver,
// same Gram matrix up to rounding); the evaluation harness uses it to make
// per-interval Lakhina retraining affordable at the paper's scale.
type Incremental struct {
	n, m   int
	window *Window
	ref    []float64
	sum    []float64   // Σ (x − ref)
	moment *mat.Matrix // Σ (x − ref)(x − ref)ᵀ
	seeded bool
}

// NewIncremental returns an empty incremental PCA over windows of n vectors
// of m flows.
func NewIncremental(n, m int) (*Incremental, error) {
	w, err := NewWindow(n, m)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		n:      n,
		m:      m,
		window: w,
		sum:    make([]float64, m),
		moment: mat.NewMatrix(m, m),
	}, nil
}

// Len returns the number of vectors currently in the window.
func (inc *Incremental) Len() int { return inc.window.Len() }

// Full reports whether the window has n vectors.
func (inc *Incremental) Full() bool { return inc.window.Full() }

// Push ingests a measurement vector, evicting the oldest when full.
func (inc *Incremental) Push(x []float64) error {
	if len(x) != inc.m {
		return fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(x), inc.m)
	}
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite value at flow %d", ErrInput, j)
		}
	}
	if !inc.seeded {
		inc.ref = append([]float64(nil), x...)
		inc.seeded = true
	}
	if inc.window.Full() {
		// Evict the oldest row from the running sums before it is
		// overwritten in the ring.
		oldest, err := inc.window.Oldest()
		if err != nil {
			return err
		}
		inc.accumulate(oldest, -1)
	}
	if err := inc.window.Push(x); err != nil {
		return err
	}
	inc.accumulate(x, +1)
	return nil
}

// accumulate folds ±(x−ref) into the running first and second moments.
func (inc *Incremental) accumulate(x []float64, sign float64) {
	d := make([]float64, inc.m)
	for j := range d {
		d[j] = x[j] - inc.ref[j]
		inc.sum[j] += sign * d[j]
	}
	for a := 0; a < inc.m; a++ {
		da := d[a]
		if da == 0 {
			continue
		}
		row := inc.moment.RowView(a)
		for b := a; b < inc.m; b++ {
			row[b] += sign * da * d[b]
		}
	}
}

// Model computes the current PCA. The window must be full.
func (inc *Incremental) Model() (*Model, error) {
	if !inc.window.Full() {
		return nil, fmt.Errorf("%w: window has %d of %d rows", ErrInput, inc.window.Len(), inc.n)
	}
	nf := float64(inc.n)
	// Centered Gram: G = M − (1/n)·s·sᵀ where M and s are the shifted
	// moments (the reference shift cancels in both terms).
	g := mat.NewMatrix(inc.m, inc.m)
	for a := 0; a < inc.m; a++ {
		mrow := inc.moment.RowView(a)
		grow := g.RowView(a)
		sa := inc.sum[a]
		for b := a; b < inc.m; b++ {
			grow[b] = mrow[b] - sa*inc.sum[b]/nf
		}
	}
	for a := 0; a < inc.m; a++ {
		for b := a + 1; b < inc.m; b++ {
			g.Set(b, a, g.At(a, b))
		}
	}
	eig, err := mat.SymEigen(g)
	if err != nil {
		return nil, fmt.Errorf("incremental eigendecomposition: %w", err)
	}
	sv := make([]float64, inc.m)
	for j, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[j] = math.Sqrt(lam)
	}
	means := make([]float64, inc.m)
	for j := range means {
		means[j] = inc.ref[j] + inc.sum[j]/nf
	}
	return &Model{
		Components: eig.Vectors,
		Singular:   sv,
		Means:      means,
		WindowLen:  inc.n,
	}, nil
}
