package pca

import "streampca/internal/mat"

// newMatrixFromRowsForTest bridges test data into the mat type without the
// tests importing mat everywhere.
func newMatrixFromRowsForTest(rows [][]float64) (*mat.Matrix, error) {
	return mat.NewMatrixFromRows(rows)
}
